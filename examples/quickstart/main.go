// Quickstart: check a racy parallel loop with the one-shot API.
//
// The program below is the paper's running example — a worksharing loop
// with a loop-carried dependence, a[i] = a[i-1] — which races at every
// chunk boundary. SWORD collects each thread's accesses into bounded
// buffers during the run and finds the race in the offline phase.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sword"
)

func main() {
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		a, err := space.AllocF64(1000)
		if err != nil {
			log.Fatal(err)
		}
		pcRead := sword.Site("quickstart.go:a[i-1]")
		pcWrite := sword.Site("quickstart.go:a[i]=")

		rt.Parallel(4, func(th *sword.Thread) {
			// #pragma omp parallel for
			th.For(1, 1000, func(i int) {
				v := th.LoadF64(a, i-1, pcRead)
				th.StoreF64(a, i, v, pcWrite)
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	if rep.Len() > 0 {
		fmt.Println("(expected: the loop-carried dependence races at chunk boundaries)")
	}
}
