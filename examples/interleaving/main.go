// Interleaving: the Figure 1 experiment — the same racy program executed
// under two forced schedules. A happens-before detector (the ARCHER
// baseline) reports the race only when the reader's critical section runs
// first; when the writer's runs first, the release→acquire edge masks it.
// SWORD's semantic concurrency model reports it under both schedules.
//
// The forced schedules stand in for scheduler luck: on a production run
// you get whichever interleaving the machine happens to produce.
//
// Run with: go run ./examples/interleaving
package main

import (
	"fmt"

	"sword/internal/archer"
	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
)

// run executes the Figure 1 litmus under one tool and one schedule.
func run(useArcher, writerFirst bool) int {
	pcW := pcreg.Site("interleaving.go:write(a)")
	pcR := pcreg.Site("interleaving.go:read(a)")

	var at *archer.Tool
	var col *rt.Collector
	store := trace.NewMemStore()
	var opts []omp.Option
	if useArcher {
		at = archer.New(archer.Config{})
		opts = append(opts, omp.WithTool(at))
	} else {
		col = rt.New(store, rt.Config{})
		opts = append(opts, omp.WithTool(col))
	}
	rtm := omp.New(opts...)
	space := memsim.NewSpace(nil)
	a, _ := space.AllocF64(1)
	lock := rtm.NewLock()
	seq := omp.NewSequencer()

	rtm.Parallel(2, func(th *omp.Thread) {
		writerStep, readerStep := 1, 0
		if writerFirst {
			writerStep, readerStep = 0, 1
		}
		if th.ID() == 0 {
			seq.Do(writerStep, func() {
				th.StoreF64(a, 0, 1, pcW) // unprotected write
				th.WithLock(lock, func() {})
			})
		} else {
			seq.Do(readerStep, func() {
				th.WithLock(lock, func() {})
				th.LoadF64(a, 0, pcR) // unprotected read
			})
		}
	})

	if useArcher {
		return at.Report().Len()
	}
	if err := col.Close(); err != nil {
		panic(err)
	}
	rep, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		panic(err)
	}
	return rep.Len()
}

func main() {
	fmt.Println("Figure 1 — the same program, two schedules:")
	for _, sched := range []struct {
		name        string
		writerFirst bool
	}{
		{"(a) reader's critical section first (no happens-before path)", false},
		{"(b) writer's critical section first (release->acquire path)", true},
	} {
		fmt.Printf("\n%s\n", sched.name)
		fmt.Printf("  archer: %d race(s)\n", run(true, sched.writerFirst))
		fmt.Printf("  sword:  %d race(s)\n", run(false, sched.writerFirst))
	}
	fmt.Println("\nThe happens-before tool misses the race under schedule (b);")
	fmt.Println("SWORD reports it under both, as concurrency is derived from the")
	fmt.Println("barrier-interval semantics rather than the observed lock order.")
}
