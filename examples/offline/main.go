// Offline: the production-run workflow — collect a compressed trace to
// disk during execution, then analyze it later (here in-process; equally
// from another machine via cmd/swordoffline).
//
// This is SWORD's headline mode: the running application pays only the
// bounded per-thread buffers (N × (B + C) ≈ 3.3 MB/thread), writes its
// logs to the parallel file system, and the expensive race analysis moves
// off the production node entirely.
//
// Run with: go run ./examples/offline
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sword"
)

func main() {
	dir := filepath.Join(os.TempDir(), "sword-example-trace")
	if err := os.RemoveAll(dir); err != nil {
		log.Fatal(err)
	}

	// --- Production run: collect only. ---
	session, err := sword.NewSession(sword.WithLogDir(dir), sword.WithCodec("lzss"))
	if err != nil {
		log.Fatal(err)
	}
	space := session.Space()
	grid, err := space.AllocF64(4096)
	if err != nil {
		log.Fatal(err)
	}
	flux, err := space.AllocF64(1)
	if err != nil {
		log.Fatal(err)
	}
	pcG := sword.Site("offline.go:grid-update")
	pcF := sword.Site("offline.go:flux-store")

	session.Runtime().Parallel(8, func(th *sword.Thread) {
		// A stencil sweep (race-free) ...
		th.For(1, 4095, func(i int) {
			v := (th.LoadF64(grid, i-1, pcG) + th.LoadF64(grid, i+1, pcG)) / 2
			th.StoreF64(grid, i, v, pcG)
		})
		// ... hmm: the sweep reads neighbours written by other threads in
		// the same interval — and a shared diagnostic is stored by every
		// thread. Both race.
		th.StoreF64(flux, 0, float64(th.ID()), pcF)
	})
	if err := session.CollectOnly(); err != nil {
		log.Fatal(err)
	}

	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			log.Fatal(err)
		}
		total += info.Size()
	}
	fmt.Printf("collected %d trace files (%d bytes compressed) under %s\n",
		len(entries), total, dir)

	// --- Later, elsewhere: the offline analysis. ---
	rep, stats, err := sword.Analyze(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	fmt.Printf("offline phases: structure %v, trees %v, compare %v (total %v)\n",
		stats.Structure, stats.TreeBuild, stats.Compare, stats.AnalyzeTotal)
}
