// Tasking: the classic task-parallel Fibonacci, checked by the tasking
// extension (the paper lists tasking as future work, §III-C; this
// reproduction implements it: task concurrency windows in the offline
// analysis, spawn/taskwait happens-before edges in the baseline).
//
// Two variants run: a buggy one whose combine step reads the children's
// results before taskwait (racing with the still-running tasks), and the
// correct one that waits first. SWORD flags exactly the buggy variant.
//
// Run with: go run ./examples/tasking
package main

import (
	"fmt"
	"log"

	"sword"
)

// fib spawns child tasks per node of the call tree, storing results into a
// per-node slot of the results array. When buggy, the parent reads the
// children's slots before taskwait.
func fib(th *sword.Thread, results *sword.F64, node, n int, buggy bool,
	pcW, pcR uint64) {
	if n < 2 {
		th.StoreF64(results, node, float64(n), pcW)
		return
	}
	left, right := 2*node+1, 2*node+2
	th.Task(func(tt *sword.Thread) {
		fib(tt, results, left, n-1, buggy, pcW, pcR)
	})
	th.Task(func(tt *sword.Thread) {
		fib(tt, results, right, n-2, buggy, pcW, pcR)
	})
	if !buggy {
		th.TaskWait()
	}
	sum := th.LoadF64(results, left, pcR) + th.LoadF64(results, right, pcR)
	if buggy {
		th.TaskWait() // too late: the reads above raced
	}
	th.StoreF64(results, node, sum, pcW)
}

func run(buggy bool) {
	label := "correct (taskwait before combine)"
	if buggy {
		label = "buggy (combine before taskwait)"
	}
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		const depth = 8
		results, err := space.AllocF64(1 << (depth + 1))
		if err != nil {
			log.Fatal(err)
		}
		pcW := sword.Site("fib:store-result")
		pcR := sword.Site("fib:combine-read")
		rt.Parallel(2, func(th *sword.Thread) {
			th.Master(func() {
				fib(th, results, 0, depth, buggy, pcW, pcR)
			})
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d race(s)\n", label, rep.Len())
	for _, r := range rep.Races() {
		fmt.Printf("  %s\n", r)
	}
}

func main() {
	run(true)
	run(false)
}
