// AMG: the paper's production-scale scenario (§IV-C). The AMG2013
// analogue is run at growing problem sizes under the ARCHER baseline and
// under SWORD against a simulated node memory budget. ARCHER's 5–7×
// shadow memory exhausts the node at 40³ and the analysis dies; SWORD's
// bounded per-thread buffers complete every size — and find 14 races where
// ARCHER's shadow-cell eviction reports only 4.
//
// Run with: go run ./examples/amg
package main

import (
	"fmt"
	"log"

	"sword/internal/harness"
	"sword/internal/workloads"
)

func main() {
	amg, err := workloads.Get("amg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node memory budget: %d MB (scaled-down 32 GB node, DESIGN.md)\n\n",
		harness.DefaultNodeBudget>>20)
	fmt.Println("size   footprint   tool        outcome")
	for _, size := range []int{10, 20, 30, 40} {
		for _, tool := range []harness.Tool{harness.Archer, harness.Sword} {
			res, err := harness.Run(amg, tool, harness.Options{Threads: 4, Size: size})
			if err != nil {
				log.Fatal(err)
			}
			outcome := fmt.Sprintf("%d races, %3d MB total memory",
				res.Races, (res.Footprint+res.MemOverhead)>>20)
			if res.OOM {
				outcome = "OUT OF MEMORY — analysis did not complete"
			}
			fmt.Printf("%2d^3   %4d MB     %-10s  %s\n",
				size, res.Footprint>>20, tool, outcome)
		}
	}
	fmt.Println("\nSWORD's overhead is bounded (≈3.3 MB/thread) while ARCHER's tracks")
	fmt.Println("the application footprint — the Table IV / Figure 8 result.")
}
