package sword

import (
	"context"
	"net"
	"time"

	"sword/internal/core"
	"sword/internal/dist"
	"sword/internal/obs"
)

// DistConfig parameterizes the distributed analysis entry points
// (ServeCoordinator, JoinWorker, AnalyzeDistributed). The zero value is
// ready to use: adaptive batch sizing, one prefetched batch per worker,
// lzss-compressed frames, a 256 MiB resident-tree budget per worker. Like
// Config it remains a plain struct — pass it through WithDist — but the
// WithDist* options below are the primary surface.
type DistConfig struct {
	// BatchUnits fixes how many pair units one batch carries (0 = adaptive
	// from the plan's byte volume: tiny plans run as one batch, large
	// plans split to keep every worker's pipeline fed).
	BatchUnits int
	// Prefetch is how many batches the coordinator keeps queued at each
	// worker beyond the one it is analyzing (0 = the default 1; negative
	// disables prefetching).
	Prefetch int
	// WireCodec names the frame compressor offered in the handshake:
	// "lzss" (default), "flate", or "raw". Peers that cannot agree fall
	// back to raw frames, so mixed versions and mixed configurations
	// interoperate.
	WireCodec string
	// ResidentBudget bounds the trace volume (bytes) whose interval trees
	// a worker keeps resident across batches (0 = 256 MiB, negative
	// disables residency).
	ResidentBudget int64
	// WorkerTimeout is the liveness bound before a silent worker is
	// dropped and its batches requeued (0 = 10s).
	WorkerTimeout time.Duration
	// BatchTimeout is the per-batch deadline, heartbeats or not (0 = 2m).
	BatchTimeout time.Duration
	// MaxAttempts bounds dispatches per unit before the run fails rather
	// than returning a silently incomplete report (0 = 5).
	MaxAttempts int
	// WorkerName labels a JoinWorker in the coordinator's report notes.
	WorkerName string
	// DialRetries is how many times JoinWorker re-attempts the coordinator
	// connection after a dial failure or a torn session before giving up
	// (0 = dial exactly once). With retries a worker started before its
	// coordinator waits for it, and a worker surviving a coordinator
	// restart rejoins instead of dying.
	DialRetries int
	// DialBackoff is the base jittered exponential delay between
	// connection attempts (0 = 250ms).
	DialBackoff time.Duration
}

// WithDist overlays an explicit DistConfig — the bridge from the plain
// struct form. Later WithDist* options still apply on top.
func WithDist(dc DistConfig) Option {
	return func(c *Config) { c.Dist = dc }
}

// WithDistBatchUnits fixes the pair units per batch (0 = adaptive).
func WithDistBatchUnits(n int) Option {
	return func(c *Config) { c.Dist.BatchUnits = n }
}

// WithDistPrefetch sets how many batches stay queued at each worker
// beyond the active one (0 = the default 1; negative disables).
func WithDistPrefetch(n int) Option {
	return func(c *Config) { c.Dist.Prefetch = n }
}

// WithDistWireCodec selects the negotiated frame compressor: "lzss"
// (default), "flate", or "raw".
func WithDistWireCodec(name string) Option {
	return func(c *Config) { c.Dist.WireCodec = name }
}

// WithDistResidentBudget bounds the trace volume whose trees a worker
// keeps resident across batches (0 = 256 MiB, negative disables).
func WithDistResidentBudget(bytes int64) Option {
	return func(c *Config) { c.Dist.ResidentBudget = bytes }
}

// distOptions maps the public configuration onto the internal dist
// options: the analysis knobs shared with AnalyzeStore plus the
// distribution knobs from DistConfig.
func distOptions(cfg Config, m *obs.Metrics) []dist.Option {
	opts := []dist.Option{
		dist.WithCore(core.Config{
			Workers:      cfg.Workers,
			NoSolver:     cfg.NoSolver,
			NoCompact:    cfg.NoCompact,
			AllRaces:     cfg.AllRaces,
			Salvage:      cfg.Salvage,
			MemoryBudget: cfg.MemoryBudget,
			Obs:          m,
		}),
		dist.WithObs(m),
		dist.WithBatchUnits(cfg.Dist.BatchUnits),
		dist.WithPrefetch(cfg.Dist.Prefetch),
		dist.WithResidentBudget(cfg.Dist.ResidentBudget),
	}
	if cfg.Dist.WireCodec != "" {
		opts = append(opts, dist.WithWireCodec(cfg.Dist.WireCodec))
	}
	if cfg.Dist.WorkerTimeout > 0 {
		opts = append(opts, dist.WithWorkerTimeout(cfg.Dist.WorkerTimeout))
	}
	if cfg.Dist.BatchTimeout > 0 {
		opts = append(opts, dist.WithBatchTimeout(cfg.Dist.BatchTimeout))
	}
	if cfg.Dist.MaxAttempts > 0 {
		opts = append(opts, dist.WithMaxAttempts(cfg.Dist.MaxAttempts))
	}
	if cfg.Dist.WorkerName != "" {
		opts = append(opts, dist.WithName(cfg.Dist.WorkerName))
	}
	if cfg.Dist.DialRetries != 0 {
		opts = append(opts, dist.WithDialRetries(cfg.Dist.DialRetries))
	}
	if cfg.Dist.DialBackoff != 0 {
		opts = append(opts, dist.WithDialBackoff(cfg.Dist.DialBackoff))
	}
	return opts
}

// ServeCoordinator plans the analysis of store, serves batches to workers
// connecting on ln, and blocks until the plan drains (or fails), returning
// the merged report and observability summary. The trace behind store must
// be reachable by every worker — typically a directory store on a shared
// filesystem, the paper's cluster setting. Cancelling ctx closes the
// listener and aborts the run.
//
// The data plane is pipelined (each worker keeps Prefetch batches queued),
// frames are compressed with the negotiated codec, and worker death or
// overrun is survived by requeueing; see docs/FORMAT.md ("Distributed
// analysis") for the wire protocol and the dist.* metrics.
func ServeCoordinator(ctx context.Context, ln net.Listener, store Store, opts ...Option) (*Report, *RunStats, error) {
	cfg := applyOptions(opts)
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	coord, err := dist.NewCoordinator(store, distOptions(cfg, m)...)
	if err != nil {
		return nil, nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	done := make(chan struct{})
	var rep *Report
	var waitErr error
	go func() {
		rep, waitErr = coord.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		ln.Close()
		return nil, nil, ctx.Err()
	case <-done:
	}
	if waitErr != nil {
		return nil, nil, waitErr
	}
	if err := <-serveErr; err != nil {
		return nil, nil, err
	}
	st := newRunStats(m.Snapshot())
	st.Analysis = rep.Stats
	return rep, st, nil
}

// JoinWorker connects to the coordinator at addr and analyzes batches of
// the trace behind store (the same trace the coordinator planned from)
// until the coordinator shuts the connection down cleanly; it returns nil
// on a clean drain. Cancelling ctx aborts the current batch and the
// connection; the coordinator requeues the outstanding work elsewhere.
func JoinWorker(ctx context.Context, addr string, store Store, opts ...Option) error {
	cfg := applyOptions(opts)
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	return dist.Work(ctx, addr, store, distOptions(cfg, m)...)
}

// AnalyzeDistributed runs the distributed analysis over store in one
// process — a coordinator plus `workers` loopback TCP workers — and returns
// the merged report and observability summary; the race set matches
// AnalyzeStore on the same trace. Plans too small for the wire to pay for
// itself are analyzed inline (same engine, no sockets), so
// AnalyzeDistributed is safe to call unconditionally; it is also the
// single-process rehearsal of a real ServeCoordinator/JoinWorker
// deployment.
func AnalyzeDistributed(ctx context.Context, store Store, workers int, opts ...Option) (*Report, *RunStats, error) {
	cfg := applyOptions(opts)
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	rep, err := dist.Local(ctx, store, workers, distOptions(cfg, m)...)
	if err != nil {
		return nil, nil, err
	}
	st := newRunStats(m.Snapshot())
	st.Analysis = rep.Stats
	return rep, st, nil
}
