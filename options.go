package sword

import "time"

// Config parameterizes a Session or a standalone offline analysis. The
// zero value is ready to use: in-memory store, "lzss" codec, the paper's
// buffer bound, GOMAXPROCS analysis workers.
//
// Config remains fully supported as a plain struct — pass it through
// WithConfig — but the functional options below are the primary surface:
// they compose, keep call sites readable, and let the zero-value defaults
// evolve without breaking callers.
type Config struct {
	// LogDir, when non-empty, stores the trace as files under this
	// directory (sword_<slot>.log / .meta), enabling decoupled offline
	// analysis. Empty means an in-memory store (unless Store is set).
	LogDir string
	// Store, when non-nil, is used directly and takes precedence over
	// LogDir — for custom trace sinks or sharing one store between the
	// collection and analysis halves in-process. If the store implements
	// io.Closer it is closed when the session finishes.
	Store Store
	// Codec names the flush compressor: "lzss" (default), "flate", "raw".
	Codec string
	// MaxEvents bounds the per-thread buffer (0 = 25,000 events, the
	// paper's 2 MB default).
	MaxEvents int
	// FlushWorkers bounds the collector's asynchronous flush pipeline:
	// how many thread slots may compress and write concurrently
	// (0 = min(GOMAXPROCS, 4)). Per-slot block order is preserved for
	// any worker count, so the stored trace is identical.
	FlushWorkers int
	// Workers bounds offline analysis parallelism. Any non-positive value
	// means GOMAXPROCS — the same rule every layer applies (the analyzer,
	// the distributed workers, the CLI flags), so a -1 from a config file
	// behaves like the documented 0.
	Workers int
	// NoSolver replaces the precise strided-intersection decision with
	// the conservative bounding-box overlap (ablation of the paper's
	// Section III-B constraint solving; may report false positives).
	NoSolver bool
	// NoCompact skips interval-tree compaction after building (ablation
	// of the trace-summarization merge step).
	NoCompact bool
	// SubtreeBatch bounds offline resident memory by analyzing the run in
	// batches of top-level region subtrees (0 = whole run in one pass).
	SubtreeBatch int
	// MemoryBudget bounds, in bytes of trace volume, how much of the run
	// the offline analysis materializes at once — the per-job memory knob
	// the analysis service hands down. With SubtreeBatch unset the
	// analyzer derives the largest subtree batch that fits the budget
	// (never below one subtree), and distributed workers seed their
	// resident-tree budget from it. 0 disables; an explicit SubtreeBatch
	// or DistConfig.ResidentBudget wins.
	MemoryBudget int64
	// StaticFilter enables collection-time static filtering: worksharing
	// loops run through the affine capture API (Thread.ForAffine) whose
	// access shapes the runtime proves disjoint across threads are
	// certified, and the collector drops the covered accesses instead of
	// recording them (counted in rt.events_filtered). The offline analysis
	// consumes the published certificates to retire the proven pair
	// classes (core.pairs_retired_static) or, whenever anything casts
	// doubt on a certificate, to reconstruct the dropped accesses exactly
	// — the reported race set is identical with the filter on or off.
	// Loops not using the capture API are unaffected.
	StaticFilter bool
	// NoPrefilter disables the analyzer's summary-based pair pre-filter
	// (ablation): every concurrent unit pair reaches the comparison
	// engine. The race set is identical; only effort counters change.
	NoPrefilter bool
	// AllRaces disables the analyzer's race-site suppression: by default,
	// once a site pair is confirmed racy, further node pairs mapping to
	// the same race record skip the solver (the record they would merge
	// into already exists). AllRaces spends those extra solves so each
	// race's Count reflects every detected instance.
	AllRaces bool
	// Salvage switches the offline analysis into graceful-degradation mode
	// for damaged traces (a crashed run, a filled disk, bit rot): tolerant
	// readers recover the intact prefix of every log and meta stream,
	// intervals whose data was lost are quarantined, and every concurrent
	// pair whose data survived is still analyzed. The report's stats carry
	// the coverage (Partial reports whether anything was lost) and its
	// notes say what was lost and why. Off by default: an undamaged trace
	// should fail loudly when it doesn't parse.
	Salvage bool
	// LiveFlush makes the collector commit every closed fragment's log
	// data before publishing its meta record, so a concurrently tailing
	// analyzer (AnalyzeLive, cmd/swordwatch) can trust that a committed
	// record's data range is already durable. Implies synchronous
	// collection; costs one log flush per fragment close. Irrelevant to
	// post-mortem analysis.
	LiveFlush bool
	// OnRace, when non-nil, is invoked by AnalyzeLive once per distinct
	// race at the moment it is first detected, while the traced program may
	// still be running. Races reported before the run ends carry
	// placeholder source names (the collector persists its symbol table
	// only at close); the final report is fully symbolized.
	OnRace func(Race)
	// PollInterval is AnalyzeLive's tail poll cadence when a round finds
	// nothing new (0 = 2ms).
	PollInterval time.Duration
	// Obs, when non-nil, is the metrics registry both phases record into;
	// share one registry across sessions and analyses to aggregate. When
	// nil, a private registry is created so RunStats is always populated.
	Obs *Metrics
	// Dist parameterizes the distributed analysis entry points
	// (ServeCoordinator, JoinWorker, AnalyzeDistributed); the other entry
	// points ignore it. See DistConfig and the WithDist* options.
	Dist DistConfig
}

// Option configures a Session, Analyze, or AnalyzeStore.
type Option func(*Config)

// WithConfig overlays an explicit Config — the bridge from the plain
// struct form. Later options still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithLogDir stores the trace under dir for decoupled offline analysis.
func WithLogDir(dir string) Option {
	return func(c *Config) { c.LogDir = dir }
}

// WithStore uses store directly as the trace sink (takes precedence over
// WithLogDir). If it implements io.Closer, finishing the session closes it.
func WithStore(store Store) Option {
	return func(c *Config) { c.Store = store }
}

// WithCodec selects the flush compressor by name: "lzss" (default),
// "flate", "raw".
func WithCodec(name string) Option {
	return func(c *Config) { c.Codec = name }
}

// WithMaxEvents bounds the per-thread event buffer (0 = the paper's
// 25,000-event default).
func WithMaxEvents(n int) Option {
	return func(c *Config) { c.MaxEvents = n }
}

// WithWorkers bounds offline analysis parallelism (<= 0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithFlushWorkers bounds the collection-phase flush pipeline: how many
// thread slots may compress and write concurrently (0 = min(GOMAXPROCS,
// 4)). The stored trace is byte-identical for any worker count.
func WithFlushWorkers(n int) Option {
	return func(c *Config) { c.FlushWorkers = n }
}

// WithNoSolver toggles the bounding-box ablation: overlap is decided
// without the exact strided-intersection solver.
func WithNoSolver(on bool) Option {
	return func(c *Config) { c.NoSolver = on }
}

// WithNoCompact toggles the tree-compaction ablation.
func WithNoCompact(on bool) Option {
	return func(c *Config) { c.NoCompact = on }
}

// WithSubtreeBatch analyzes in batches of n top-level region subtrees to
// bound resident memory (0 = one pass).
func WithSubtreeBatch(n int) Option {
	return func(c *Config) { c.SubtreeBatch = n }
}

// WithMemoryBudget bounds the trace volume the offline analysis
// materializes at once, in bytes (0 = unbounded). The subtree batch size
// is derived from it; see Config.MemoryBudget.
func WithMemoryBudget(bytes int64) Option {
	return func(c *Config) { c.MemoryBudget = bytes }
}

// WithStaticFilter enables collection-time static filtering of certified
// worksharing loops (see Config.StaticFilter). The reported race set is
// identical with the filter on or off; only collection volume and
// analysis effort change.
func WithStaticFilter(on bool) Option {
	return func(c *Config) { c.StaticFilter = on }
}

// WithNoPrefilter disables the summary-based pair pre-filter in the
// offline analysis (ablation; see Config.NoPrefilter).
func WithNoPrefilter(on bool) Option {
	return func(c *Config) { c.NoPrefilter = on }
}

// WithAllRaces disables race-site suppression in the offline analysis:
// every node pair of a confirmed-racy site is still solved and counted
// into the race record's Count, instead of being skipped once the record
// exists. The set of reported races is identical either way; suppression
// only trades instance counts for solver work.
func WithAllRaces(on bool) Option {
	return func(c *Config) { c.AllRaces = on }
}

// WithSalvage toggles graceful-degradation analysis of damaged traces:
// the analyzer recovers what survived, quarantines what didn't, and the
// report says how much coverage was lost (see AnalysisStats.Partial).
func WithSalvage(on bool) Option {
	return func(c *Config) { c.Salvage = on }
}

// WithLiveFlush makes the collector durable enough to tail: every closed
// fragment's log data is committed before its meta record is published
// (see Config.LiveFlush). Enable it on sessions a live analyzer watches.
func WithLiveFlush(on bool) Option {
	return func(c *Config) { c.LiveFlush = on }
}

// WithOnRace installs AnalyzeLive's per-race callback (see Config.OnRace).
func WithOnRace(fn func(Race)) Option {
	return func(c *Config) { c.OnRace = fn }
}

// WithPollInterval sets AnalyzeLive's tail poll cadence (0 = 2ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Config) { c.PollInterval = d }
}

// WithObs records both phases' metrics into m, e.g. a registry shared
// with the rest of the application or exported via an expvar sink.
func WithObs(m *Metrics) Option {
	return func(c *Config) { c.Obs = m }
}

func applyOptions(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
