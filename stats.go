package sword

import (
	"time"

	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/rt"
)

// Observability re-exports: the metrics registry both SWORD phases record
// into, its snapshot/export types, and the per-phase stats structs.
type (
	// Metrics is a registry of atomic counters, gauges and phase timers
	// (see internal/obs); share one across sessions and analyses via
	// WithObs to aggregate.
	Metrics = obs.Metrics
	// Metric is one instrument's exported state.
	Metric = obs.Metric
	// Snapshot is a point-in-time, name-sorted export of a registry.
	Snapshot = obs.Snapshot
	// Sink exports snapshots (JSON, CSV, expvar — see internal/obs).
	Sink = obs.Sink
	// CollectStats aggregates dynamic-phase counters across all slots.
	CollectStats = rt.Stats
	// AnalysisStats aggregates offline-phase counters.
	AnalysisStats = report.Stats
)

// NewMetrics returns an empty metrics registry for WithObs.
func NewMetrics() *Metrics { return obs.New() }

// WriteMetrics exports a snapshot to path — CSV when the path ends in
// ".csv", indented JSON otherwise (schema in docs/FORMAT.md).
func WriteMetrics(path string, snap Snapshot) error { return obs.WriteFile(path, snap) }

// RunStats is the observability summary of a run: what each phase did and
// how long it took. Session.Finish, Analyze and AnalyzeStore return it
// alongside the report; the full Metrics snapshot is included for
// counters not broken out as fields.
type RunStats struct {
	// Collect holds dynamic-phase counters (zero for offline-only runs).
	Collect CollectStats
	// Analysis holds offline-phase counters (zero after CollectOnly).
	Analysis AnalysisStats
	// Per-phase wall times of the offline analysis.
	Structure    time.Duration // concurrency-structure recovery
	TreeBuild    time.Duration // interval-tree construction (all batches)
	Compare      time.Duration // pair comparison (all batches)
	AnalyzeTotal time.Duration // whole offline phase
	// Block-skipping effect of batched analysis (WithSubtreeBatch): how
	// many log blocks the reader flew over without decompressing, and
	// their compressed payload volume, summed across all batches. Zero in
	// single-pass analyses, which decode everything.
	BlocksSkipped uint64
	SkippedBytes  uint64
	// Comparison-engine effectiveness (core.solver_cache_hits /
	// core.solver_cache_misses / core.sites_suppressed): how many
	// strided-intersection decisions the solver memo answered from cache,
	// how many distinct shapes were actually solved, and how many node
	// pairs race-site suppression retired without any solve. SolverCalls
	// in Analysis equals the misses — the solves that actually ran.
	SolverCacheHits   uint64
	SolverCacheMisses uint64
	SitesSuppressed   uint64
	// Metrics is the registry snapshot the durations were read from.
	Metrics Snapshot
}

// Partial reports whether the analysis ran over a damaged trace in
// salvage mode: races found hold for the surviving data only, and the
// Analysis coverage fields say how much was lost.
func (s *RunStats) Partial() bool { return s.Analysis.Partial() }

// newRunStats folds a registry snapshot into the summary struct.
func newRunStats(snap Snapshot) *RunStats {
	return &RunStats{
		Structure:         snap.Duration("core.phase.structure"),
		TreeBuild:         snap.Duration("core.phase.trees"),
		Compare:           snap.Duration("core.phase.compare"),
		AnalyzeTotal:      snap.Duration("core.phase.total"),
		BlocksSkipped:     uint64(snap.Value("trace.blocks_skipped")),
		SkippedBytes:      uint64(snap.Value("trace.skipped_bytes")),
		SolverCacheHits:   uint64(snap.Value("core.solver_cache_hits")),
		SolverCacheMisses: uint64(snap.Value("core.solver_cache_misses")),
		SitesSuppressed:   uint64(snap.Value("core.sites_suppressed")),
		Metrics:           snap,
	}
}
