module sword

go 1.24
