# Development entry points. `make check` is the tier-1 gate: vet, format,
# build everything, and run the fast packages under the race detector
# (the harness package regenerates the paper's experiments and is
# exercised by plain `make test` instead — it is too slow for -race).

GO ?= go

# Every package except the experiment harness: those tests re-run the
# paper's timing sweeps and dominate wall time without adding race
# coverage beyond what the collector/analyzer tests already drive.
FAST_PKGS = . ./internal/archer ./internal/compress ./internal/core \
	./internal/ilp ./internal/itree ./internal/memsim ./internal/obs \
	./internal/omp ./internal/osl ./internal/pcreg ./internal/report \
	./internal/rt ./internal/trace ./internal/vc ./internal/workloads

.PHONY: build test check fmt vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race $(FAST_PKGS)

# Micro-benchmark suite (collector hot paths, flush pipeline, codecs);
# writes BENCH_2.json in the schema documented in EXPERIMENTS.md.
bench:
	$(GO) run ./cmd/swordbench -bench BENCH_2.json

check: vet fmt build race
	@echo "check: ok"
