# Development entry points. `make check` is the tier-1 gate: vet, format,
# build everything, and run the fast packages under the race detector
# (the harness package regenerates the paper's experiments and is
# exercised by plain `make test` instead — it is too slow for -race).

GO ?= go

# Every package except the experiment harness: those tests re-run the
# paper's timing sweeps and dominate wall time without adding race
# coverage beyond what the collector/analyzer tests already drive.
FAST_PKGS = . ./internal/archer ./internal/compress ./internal/core \
	./internal/dist ./internal/ilp ./internal/itree ./internal/memsim \
	./internal/obs ./internal/omp ./internal/osl ./internal/pcreg \
	./internal/report ./internal/rt ./internal/server ./internal/stream \
	./internal/trace ./internal/vc ./internal/workloads

.PHONY: build test check fmt vet race bench bench-smoke dist-smoke serve-smoke stream-smoke fuzz profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -w needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race $(FAST_PKGS)
	$(GO) test -race -short -run 'TestDifferentialSweepVsProbe|TestAnalyzerBenchSmoke|TestStaticFilterDifferential|TestStaticFilterSmoke|TestStreamDifferentialRandom|TestStreamDifferentialWorkloads' ./internal/harness

# Short fuzz pass over the trace readers: adversarial inputs must never
# panic or allocate unboundedly (seed corpus built in internal/trace).
# One invocation per target — go test allows a single -fuzz match.
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzLogReader$$' -fuzztime 10s
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzDecodeMeta$$' -fuzztime 10s
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzTailGrowingLog$$' -fuzztime 10s
	$(GO) test ./internal/server -run '^$$' -fuzz '^FuzzUploadHandler$$' -fuzztime 10s

# Micro-benchmark suite (collector hot paths, flush pipeline, codecs,
# analyzer phases); writes BENCH_7.json in the schema documented in
# EXPERIMENTS.md. DIST=1 additionally runs the distributed-analysis
# experiment (adaptive, forced-wire, and projected lanes) into
# BENCH_6.json; CHAOS=1 additionally runs the crash-tolerance chaos
# experiment (mid-run store failure, then salvage analysis of the
# wreckage); SERVE=1 additionally runs the analysis-service stress
# experiment (multi-tenant fairness, torn uploads, heap budget) into
# BENCH_8.json. The static-filter comparison (filter on vs off on the
# statically chunked workloads) always runs into BENCH_9.json — it is
# sub-second. The streaming-analysis comparison (first-race latency and
# frontier footprint, online vs post-mortem) always runs into
# BENCH_10.json for the same reason.
bench:
	$(GO) run ./cmd/swordbench -bench BENCH_7.json
	$(GO) run ./cmd/swordbench -filter BENCH_9.json
	$(GO) run ./cmd/swordbench -stream BENCH_10.json
ifdef DIST
	$(GO) run ./cmd/swordbench -dist BENCH_6.json
endif
ifdef CHAOS
	$(GO) run ./cmd/swordbench -chaos
endif
ifdef SERVE
	$(GO) run ./cmd/swordbench -serve BENCH_8.json
endif

# Distributed-analysis smoke: collect a racy trace, then assert that
# single-process swordoffline, `sworddist -local`, and a real coordinator
# plus two worker processes over loopback TCP all report the same races.
dist-smoke:
	GO="$(GO)" sh scripts/dist_smoke.sh

# Analysis-service smoke: collect a racy trace, start swordserve, upload
# the trace over HTTP with curl, poll the job to completion, and assert
# the served report matches single-process swordoffline — then SIGTERM
# and assert a clean drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# Streaming-analysis smoke: collect a racy workload with -live-flush while
# swordwatch tails the growing trace, then assert the live race set
# matches post-mortem swordoffline on the completed trace.
stream-smoke:
	GO="$(GO)" sh scripts/stream_smoke.sh

# Analyzer-engine regression guards: the solver memo and race-site
# suppression must keep answering at least half the requested decisions
# without a real solve, the pair pre-filter must retire the strided
# workload's provably race-free pairs, one full analysis must stay
# within the arena builder's allocation budget, and the static filter
# must cut collection volume and retire pair classes without changing
# any verdict.
bench-smoke:
	$(GO) test -short -run 'TestAnalyzerBenchSmoke|TestStaticFilterSmoke' ./internal/harness
	$(GO) test -run 'TestAnalyzerAllocSmoke' ./internal/harness

# CPU and heap profiles of the end-to-end analyzer benchmark (the
# c_jacobi-class workload the perf acceptance criteria measure). Inspect
# with `go tool pprof cpu.pprof` / `go tool pprof -sample_index=alloc_objects mem.pprof`.
profile:
	$(GO) test -run '^$$' -bench 'BenchmarkAnalyzerEndToEnd' -benchtime 5x \
		-cpuprofile cpu.pprof -memprofile mem.pprof ./internal/harness
	@echo "wrote cpu.pprof and mem.pprof"

check: vet fmt build race fuzz bench-smoke dist-smoke serve-smoke stream-smoke
	@echo "check: ok"
