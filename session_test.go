package sword_test

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"sword"
	"sword/internal/trace"
)

// collectSomething runs a small parallel store through the session so every
// slot produces log and meta data.
func collectSomething(t *testing.T, s *sword.Session) {
	t.Helper()
	x, err := s.Space().AllocF64(64)
	if err != nil {
		t.Fatal(err)
	}
	pc := sword.Site("session_test:store")
	s.Runtime().Parallel(2, func(th *sword.Thread) {
		th.For(0, 64, func(i int) { th.StoreF64(x, i, float64(i), pc) })
	})
}

func TestFinishClosesDirStoreWriters(t *testing.T) {
	store, err := trace.NewDirStore(filepath.Join(t.TempDir(), "trace"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sword.NewSession(sword.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	collectSomething(t, s)
	if _, _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if n := store.OpenWriters(); n != 0 {
		t.Fatalf("%d writers still open after Finish", n)
	}
}

func TestCollectOnlyClosesDirStoreWriters(t *testing.T) {
	store, err := trace.NewDirStore(filepath.Join(t.TempDir(), "trace"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sword.NewSession(sword.WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	collectSomething(t, s)
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	if n := store.OpenWriters(); n != 0 {
		t.Fatalf("%d writers still open after CollectOnly", n)
	}
	// The trace must remain readable after the deterministic close.
	rep, _, err := sword.AnalyzeStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("false alarms:\n%s", rep)
	}
}

// failingStore wraps a MemStore but refuses auxiliary files, making the
// collector's Close fail after the run.
type failingStore struct {
	*trace.MemStore
}

func (f failingStore) CreateAux(name string) (io.WriteCloser, error) {
	return nil, fmt.Errorf("injected aux failure for %q", name)
}

func TestDoubleFinishAfterErrorDoesNotLeak(t *testing.T) {
	s, err := sword.NewSession(sword.WithStore(failingStore{trace.NewMemStore()}))
	if err != nil {
		t.Fatal(err)
	}
	collectSomething(t, s)
	if _, _, err := s.Finish(); err == nil {
		t.Fatal("Finish succeeded despite failing store")
	}
	// The second Finish must report the session as finished — not retry the
	// close, not panic on an already-closed collector.
	if _, _, err := s.Finish(); !errors.Is(err, sword.ErrFinished) {
		t.Fatalf("second Finish after error: got %v, want ErrFinished", err)
	}
	// Close stays idempotent and keeps reporting the original failure.
	first := s.Close()
	if first == nil {
		t.Fatal("Close lost the close error")
	}
	if again := s.Close(); !errors.Is(again, first) && again.Error() != first.Error() {
		t.Fatalf("Close not idempotent: %v vs %v", first, again)
	}
}

// TestCollectorCountersMatchStoreBytes pins the observability layer to
// ground truth: the write-side rt.* counters must agree with the
// collector's Stats and with a byte-for-byte re-read of the stored logs,
// and the read-side trace.* counters recorded during analysis must agree
// with the write side.
func TestCollectorCountersMatchStoreBytes(t *testing.T) {
	store := trace.NewMemStore()
	m := sword.NewMetrics()
	s, err := sword.NewSession(sword.WithStore(store), sword.WithObs(m))
	if err != nil {
		t.Fatal(err)
	}
	collectSomething(t, s)
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	stats := s.RunStats().Collect

	// Re-stream every log and total what is actually on disk.
	var raw, comp, blocks uint64
	slots, err := store.Slots()
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range slots {
		src, err := store.OpenLog(slot)
		if err != nil {
			t.Fatal(err)
		}
		lr := trace.NewLogReader(src)
		for {
			if _, _, err := lr.Next(); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		raw += lr.RawBytes()
		comp += lr.CompressedBytes()
		blocks += lr.Blocks()
		lr.Close()
	}
	if stats.RawBytes != raw || stats.CompressedBytes != comp {
		t.Fatalf("collector stats (%d raw, %d comp) disagree with stored logs (%d raw, %d comp)",
			stats.RawBytes, stats.CompressedBytes, raw, comp)
	}
	snap := m.Snapshot()
	if got := uint64(snap.Value("rt.raw_bytes")); got != raw {
		t.Fatalf("rt.raw_bytes = %d, stored logs hold %d", got, raw)
	}
	if got := uint64(snap.Value("rt.compressed_bytes")); got != comp {
		t.Fatalf("rt.compressed_bytes = %d, stored logs hold %d", got, comp)
	}
	if got := uint64(snap.Value("rt.flushes")); got != blocks {
		t.Fatalf("rt.flushes = %d, stored logs hold %d blocks", got, blocks)
	}
	if got := uint64(snap.Value("rt.events")); got != stats.Events {
		t.Fatalf("rt.events = %d, collector counted %d", got, stats.Events)
	}

	// The offline phase reads the same volume the collector wrote.
	if _, _, err := sword.AnalyzeStore(store, sword.WithObs(m)); err != nil {
		t.Fatal(err)
	}
	snap = m.Snapshot()
	if w, r := snap.Value("rt.compressed_bytes"), snap.Value("trace.compressed_bytes"); w != r {
		t.Fatalf("write side compressed %d bytes, read side consumed %d", w, r)
	}
	if w, r := snap.Value("rt.raw_bytes"), snap.Value("trace.raw_bytes"); w != r {
		t.Fatalf("write side raw %d bytes, read side consumed %d", w, r)
	}
	if w, r := snap.Value("rt.flushes"), snap.Value("trace.blocks"); w != r {
		t.Fatalf("write side flushed %d blocks, read side consumed %d", w, r)
	}
}

// TestSessionObsCodecInstrumented checks that sessions route flushes
// through the instrumented codec: per-codec compress.* counters appear in
// the shared registry and agree with the rt.* byte totals.
func TestSessionObsCodecInstrumented(t *testing.T) {
	m := sword.NewMetrics()
	s, err := sword.NewSession(sword.WithCodec("flate"), sword.WithObs(m))
	if err != nil {
		t.Fatal(err)
	}
	collectSomething(t, s)
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if got, want := snap.Value("compress.flate.raw_bytes"), snap.Value("rt.raw_bytes"); got != want {
		t.Fatalf("compress.flate.raw_bytes = %d, rt.raw_bytes = %d", got, want)
	}
	if got, want := snap.Value("compress.flate.compressed_bytes"), snap.Value("rt.compressed_bytes"); got != want {
		t.Fatalf("compress.flate.compressed_bytes = %d, rt.compressed_bytes = %d", got, want)
	}
	if snap.Value("compress.flate.blocks") == 0 {
		t.Fatal("no compression blocks recorded")
	}
}
