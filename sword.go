// Package sword is a Go reproduction of SWORD (Atzeni et al., IPDPS
// 2018): a data race detector for OpenMP-style fork-join programs with a
// bounded, user-adjustable memory overhead.
//
// SWORD splits detection into two phases. During execution, every thread
// appends its instrumented memory accesses and synchronization events to a
// fixed-size buffer that is compressed and flushed to per-thread log
// files; memory overhead is N×(B+C) ≈ 3.3 MB per thread, independent of
// the application. Afterwards, an offline analyzer recovers the
// concurrency structure from the meta-data (barrier intervals,
// offset-span labels), builds augmented red-black interval trees over
// each thread's accesses, and reports conflicting concurrent accesses —
// deciding precise overlap of strided intervals with an exact
// integer-constraint solver.
//
// A minimal use:
//
//	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
//		a, _ := space.AllocF64(1000)
//		pcR, pcW := sword.Site("loop:read"), sword.Site("loop:write")
//		rt.Parallel(8, func(th *sword.Thread) {
//			th.For(1, 1000, func(i int) {
//				th.StoreF64(a, i, th.LoadF64(a, i-1, pcR), pcW)
//			})
//		})
//	})
//	fmt.Print(rep)   // the loop-carried dependence race
//
// For production-style runs that collect now and analyze later (or
// elsewhere), use a Session with a directory store; cmd/swordoffline can
// then analyze the directory independently.
package sword

import (
	"context"
	"errors"
	"fmt"
	"io"

	"sword/internal/compress"
	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/stream"
	"sword/internal/trace"
)

// Re-exported types: the runtime substrate programs are written against,
// the simulated memory arrays they allocate, and the race report the
// analysis produces.
type (
	// Runtime executes OpenMP-style programs (see internal/omp).
	Runtime = omp.Runtime
	// Thread is a team member's execution context.
	Thread = omp.Thread
	// Lock is an OpenMP-style lock.
	Lock = omp.Lock
	// ForOpts selects worksharing schedules and the nowait clause.
	ForOpts = omp.ForOpts
	// Schedule enumerates worksharing schedules.
	Schedule = omp.Schedule
	// AffineLoop declares a worksharing loop's affine access shapes for
	// static certification (run it with Thread.ForAffine; filtering
	// activates under WithStaticFilter).
	AffineLoop = omp.AffineLoop
	// AffineIter is the per-iteration accessor handle of ForAffine.
	AffineIter = omp.AffineIter
	// AffineRef names one declared access shape of an AffineLoop.
	AffineRef = omp.AffineRef
	// Space allocates instrumented arrays with simulated addresses.
	Space = memsim.Space
	// F64 is an instrumented float64 array.
	F64 = memsim.F64
	// I64 is an instrumented int64 array.
	I64 = memsim.I64
	// I32 is an instrumented int32 array.
	I32 = memsim.I32
	// Bytes is an instrumented byte array.
	Bytes = memsim.Bytes
	// Report is a deduplicated race report.
	Report = report.Report
	// Race is one reported data race.
	Race = report.Race
	// Store persists trace logs and meta-data.
	Store = trace.Store
)

// Worksharing schedules, re-exported.
const (
	ScheduleStatic       = omp.ScheduleStatic
	ScheduleStaticCyclic = omp.ScheduleStaticCyclic
	ScheduleDynamic      = omp.ScheduleDynamic
	ScheduleGuided       = omp.ScheduleGuided
)

// NewAffineLoop returns an empty affine loop declaration for static
// certification (see AffineLoop).
func NewAffineLoop() *AffineLoop { return omp.NewAffineLoop() }

// Here interns the caller's source location as an access-site id.
func Here() uint64 { return omp.Here() }

// Site interns a symbolic access-site name.
func Site(name string) uint64 { return omp.Site(name) }

// ErrFinished is returned by Finish and CollectOnly when the session has
// already been finished.
var ErrFinished = errors.New("sword: session already finished")

// Session couples a runtime with SWORD's dynamic collector and drives the
// offline analysis. Create with NewSession, run the program on Runtime(),
// then call Finish.
type Session struct {
	cfg       Config
	store     trace.Store
	collector *rt.Collector
	runtime   *omp.Runtime
	space     *memsim.Space
	metrics   *obs.Metrics
	finished  bool
	closed    bool
	closeErr  error
}

// NewSession prepares a collection session. With no options it collects
// into memory with the paper's defaults; see Config and the With*
// options for the knobs.
func NewSession(opts ...Option) (*Session, error) {
	cfg := applyOptions(opts)
	store := cfg.Store
	if store == nil {
		if cfg.LogDir != "" {
			ds, err := trace.NewDirStore(cfg.LogDir)
			if err != nil {
				return nil, fmt.Errorf("sword: %w", err)
			}
			store = ds
		} else {
			store = trace.NewMemStore()
		}
	}
	codecName := cfg.Codec
	if codecName == "" {
		codecName = "lzss"
	}
	codec, err := compress.ByName(codecName)
	if err != nil {
		return nil, fmt.Errorf("sword: %w", err)
	}
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	collector := rt.New(store, rt.Config{
		Codec:        compress.Instrument(codec, m),
		MaxEvents:    cfg.MaxEvents,
		FlushWorkers: cfg.FlushWorkers,
		StaticFilter: cfg.StaticFilter,
		LiveFlush:    cfg.LiveFlush,
		Obs:          m,
	})
	return &Session{
		cfg:       cfg,
		store:     store,
		collector: collector,
		runtime:   omp.New(omp.WithTool(collector)),
		space:     memsim.NewSpace(nil),
		metrics:   m,
	}, nil
}

// Runtime returns the instrumented runtime to run the program on.
func (s *Session) Runtime() *Runtime { return s.runtime }

// Space returns the session's address space for instrumented arrays.
func (s *Session) Space() *Space { return s.space }

// Store exposes the underlying trace store (for inspection or custom
// offline pipelines).
func (s *Session) Store() Store { return s.store }

// Metrics returns the session's observability registry — the one passed
// via WithObs, or the private registry created in its absence.
func (s *Session) Metrics() *Metrics { return s.metrics }

// Close flushes and closes the collector and, when the store implements
// io.Closer (DirStore does), closes the store — deterministically
// releasing every file handle even after an error mid-run. Idempotent:
// repeated calls return the first close error. Finish and CollectOnly
// call it; reaching for Close directly is only needed on error paths
// where neither ran.
func (s *Session) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	err := s.collector.Close()
	if c, ok := s.store.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.closeErr = err
	return err
}

// RunStats summarizes the session's observability state so far: dynamic
// counters plus any offline timings recorded into its registry. Finish
// returns the same summary with Analysis populated.
func (s *Session) RunStats() *RunStats {
	st := newRunStats(s.metrics.Snapshot())
	st.Collect = s.collector.Stats()
	return st
}

// Finish flushes and closes the trace, runs the offline analysis, and
// returns the race report and the run's observability summary. It may be
// called once; later calls return ErrFinished (the underlying resources
// are closed exactly once regardless).
func (s *Session) Finish() (*Report, *RunStats, error) {
	if s.finished {
		return nil, nil, ErrFinished
	}
	s.finished = true
	if err := s.Close(); err != nil {
		return nil, nil, fmt.Errorf("sword: close session: %w", err)
	}
	rep, err := core.New(s.store, core.Config{
		Workers:      s.cfg.Workers,
		NoSolver:     s.cfg.NoSolver,
		NoCompact:    s.cfg.NoCompact,
		SubtreeBatch: s.cfg.SubtreeBatch,
		MemoryBudget: s.cfg.MemoryBudget,
		NoPrefilter:  s.cfg.NoPrefilter,
		AllRaces:     s.cfg.AllRaces,
		Salvage:      s.cfg.Salvage,
		Obs:          s.metrics,
	}).Analyze()
	if err != nil {
		return nil, nil, fmt.Errorf("sword: offline analysis: %w", err)
	}
	st := newRunStats(s.metrics.Snapshot())
	st.Collect = s.collector.Stats()
	st.Analysis = rep.Stats
	return rep, st, nil
}

// CollectOnly flushes and closes the trace without analyzing — the
// production-run half of the pipeline; analyze later with Analyze or
// cmd/swordoffline. Like Finish it may be called once.
func (s *Session) CollectOnly() error {
	if s.finished {
		return ErrFinished
	}
	s.finished = true
	if err := s.Close(); err != nil {
		return fmt.Errorf("sword: close session: %w", err)
	}
	return nil
}

// Analyze runs the offline phase over a previously collected log
// directory, returning the report and the run's observability summary.
//
// Analyze is shorthand for AnalyzeContext with context.Background().
// AnalyzeContext is the canonical form — prefer it in new code; the
// context-less names are kept for compatibility and will eventually be
// marked deprecated once the ecosystem has moved.
func Analyze(logDir string, opts ...Option) (*Report, *RunStats, error) {
	return AnalyzeContext(context.Background(), logDir, opts...)
}

// AnalyzeContext runs the offline phase over a previously collected log
// directory, returning the report and the run's observability summary. A
// cancelled or expired ctx aborts the analysis mid-flight (between
// tree-build blocks and pair comparisons) and returns ctx.Err(); wire it
// to signal.NotifyContext to make long analyses respond to Ctrl-C.
//
// This is the canonical entry point; Analyze is the background-context
// shorthand.
func AnalyzeContext(ctx context.Context, logDir string, opts ...Option) (*Report, *RunStats, error) {
	store, err := trace.NewDirStore(logDir)
	if err != nil {
		return nil, nil, fmt.Errorf("sword: %w", err)
	}
	return AnalyzeStoreContext(ctx, store, opts...)
}

// AnalyzeStore runs the offline phase over an already-open trace store —
// the in-process variant of Analyze for custom pipelines and the
// experiment harness.
//
// AnalyzeStore is shorthand for AnalyzeStoreContext with
// context.Background(). AnalyzeStoreContext is the canonical form —
// prefer it in new code; the context-less names are kept for
// compatibility and will eventually be marked deprecated once the
// ecosystem has moved.
func AnalyzeStore(store Store, opts ...Option) (*Report, *RunStats, error) {
	return AnalyzeStoreContext(context.Background(), store, opts...)
}

// AnalyzeStoreContext runs the offline phase over an already-open trace
// store with cancellation, mirroring AnalyzeContext. This is the
// canonical entry point; AnalyzeStore is the background-context
// shorthand.
func AnalyzeStoreContext(ctx context.Context, store Store, opts ...Option) (*Report, *RunStats, error) {
	cfg := applyOptions(opts)
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	rep, err := core.New(store, core.Config{
		Workers:      cfg.Workers,
		NoSolver:     cfg.NoSolver,
		NoCompact:    cfg.NoCompact,
		SubtreeBatch: cfg.SubtreeBatch,
		MemoryBudget: cfg.MemoryBudget,
		NoPrefilter:  cfg.NoPrefilter,
		AllRaces:     cfg.AllRaces,
		Salvage:      cfg.Salvage,
		Obs:          m,
	}).AnalyzeContext(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("sword: offline analysis: %w", err)
	}
	st := newRunStats(m.Snapshot())
	st.Analysis = rep.Stats
	return rep, st, nil
}

// AnalyzeLive tails a trace directory that a collector may still be
// writing and analyzes it online, returning once the run ends with a
// report identical to what a post-mortem analysis of the finished trace
// would produce. Races are surfaced incrementally through WithOnRace as
// barrier episodes seal, while the analysis frontier stays bounded (the
// stream.* metrics measure it). The collector should run with
// WithLiveFlush so committed meta records imply durable log data;
// without it, analysis of an episode simply waits until its data lands.
// A cancelled ctx (the crashed-run case: the end-of-run marker never
// appears) returns the partial live report together with ctx.Err().
func AnalyzeLive(ctx context.Context, logDir string, opts ...Option) (*Report, *RunStats, error) {
	store, err := trace.NewDirStore(logDir)
	if err != nil {
		return nil, nil, fmt.Errorf("sword: %w", err)
	}
	return AnalyzeLiveStore(ctx, store, opts...)
}

// AnalyzeLiveStore is AnalyzeLive over an already-open trace store — the
// in-process variant for custom pipelines (a MemStore shared with a
// running session, the analysis service's upload directories).
func AnalyzeLiveStore(ctx context.Context, store Store, opts ...Option) (*Report, *RunStats, error) {
	cfg := applyOptions(opts)
	m := cfg.Obs
	if m == nil {
		m = obs.New()
	}
	rep, err := stream.New(store, stream.Config{
		Core: core.Config{
			Workers:      cfg.Workers,
			NoSolver:     cfg.NoSolver,
			NoCompact:    cfg.NoCompact,
			SubtreeBatch: cfg.SubtreeBatch,
			MemoryBudget: cfg.MemoryBudget,
			NoPrefilter:  cfg.NoPrefilter,
			AllRaces:     cfg.AllRaces,
			Obs:          m,
		},
		PollInterval: cfg.PollInterval,
		OnRace:       cfg.OnRace,
		Obs:          m,
	}).Run(ctx)
	if err != nil {
		if rep != nil {
			// Partial result (cancelled mid-run); hand both back.
			st := newRunStats(m.Snapshot())
			st.Analysis = rep.Stats
			return rep, st, fmt.Errorf("sword: live analysis: %w", err)
		}
		return nil, nil, fmt.Errorf("sword: live analysis: %w", err)
	}
	st := newRunStats(m.Snapshot())
	st.Analysis = rep.Stats
	return rep, st, nil
}

// Check runs program under SWORD with defaults and returns its race
// report — the one-shot entry point.
func Check(program func(rt *Runtime, space *Space)) (*Report, error) {
	s, err := NewSession()
	if err != nil {
		return nil, err
	}
	program(s.Runtime(), s.Space())
	rep, _, err := s.Finish()
	return rep, err
}

// ValidateTrace checks the structural integrity of a collected trace
// directory (see docs/FORMAT.md) without analyzing it — cheap to run
// before shipping logs off a production machine.
func ValidateTrace(logDir string) error {
	store, err := trace.NewDirStore(logDir)
	if err != nil {
		return fmt.Errorf("sword: %w", err)
	}
	if err := trace.Validate(store); err != nil {
		return fmt.Errorf("sword: %w", err)
	}
	return nil
}
