package sword_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sword"
)

func TestCheckFindsLoopRace(t *testing.T) {
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		a, err := space.AllocF64(1000)
		if err != nil {
			t.Fatal(err)
		}
		pcR, pcW := sword.Site("quick:read"), sword.Site("quick:write")
		rt.Parallel(4, func(th *sword.Thread) {
			th.For(1, 1000, func(i int) {
				th.StoreF64(a, i, th.LoadF64(a, i-1, pcR), pcW)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() == 0 {
		t.Fatal("loop-carried dependence race not reported")
	}
	if !strings.Contains(rep.String(), "quick:") {
		t.Fatalf("report not symbolized:\n%s", rep)
	}
}

func TestCheckCleanProgram(t *testing.T) {
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		a, _ := space.AllocF64(1000)
		pc := sword.Site("clean:site")
		rt.Parallel(4, func(th *sword.Thread) {
			th.For(0, 1000, func(i int) {
				th.StoreF64(a, i, float64(i), pc)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("false alarms:\n%s", rep)
	}
}

func TestSessionWithLogDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	s, err := sword.NewSession(sword.WithLogDir(dir), sword.WithCodec("flate"))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := s.Space().AllocF64(1)
	pc := sword.Site("session:store")
	s.Runtime().Parallel(2, func(th *sword.Thread) {
		th.StoreF64(x, 0, 1, pc)
	})
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	// Trace files must exist on disk.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) < 3 { // 2 logs + 2 metas + pctable
		t.Fatalf("trace dir: %v entries, err %v", len(entries), err)
	}
	// Decoupled offline analysis, as a separate process would do it.
	rep, stats, err := sword.Analyze(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 1 {
		t.Fatalf("got %d races, want 1:\n%s", rep.Len(), rep)
	}
	if stats == nil || stats.AnalyzeTotal <= 0 {
		t.Fatalf("offline RunStats not populated: %+v", stats)
	}
	if got := stats.Metrics.Value("trace.events"); got <= 0 {
		t.Fatalf("trace.events not recorded: %d", got)
	}
}

func TestSessionFinishTwiceFails(t *testing.T) {
	s, err := sword.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.Runtime().Parallel(1, func(th *sword.Thread) {})
	if _, _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Finish(); !errors.Is(err, sword.ErrFinished) {
		t.Fatalf("second Finish: got %v, want ErrFinished", err)
	}
}

func TestBadCodecRejected(t *testing.T) {
	if _, err := sword.NewSession(sword.WithCodec("zstd")); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestMutexProtectionPublicAPI(t *testing.T) {
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		x, _ := space.AllocF64(1)
		pc := sword.Site("locked:rmw")
		lock := rt.NewLock()
		rt.Parallel(8, func(th *sword.Thread) {
			th.WithLock(lock, func() {
				th.StoreF64(x, 0, th.LoadF64(x, 0, pc)+1, pc)
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("lock-protected updates reported racy:\n%s", rep)
	}
}

func TestTaskingPublicAPI(t *testing.T) {
	// Racy: the continuation reads what the task writes, before taskwait.
	rep, err := sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		x, _ := space.AllocF64(1)
		pcT, pcC := sword.Site("pub-task:write"), sword.Site("pub-task:read")
		rt.Parallel(2, func(th *sword.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *sword.Thread) {
					tt.StoreF64(x, 0, 1, pcT)
				})
				th.LoadF64(x, 0, pcC)
				th.TaskWait()
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 1 {
		t.Fatalf("task/continuation race: got %d races\n%s", rep.Len(), rep)
	}

	// Correct: taskwait before the read.
	rep, err = sword.Check(func(rt *sword.Runtime, space *sword.Space) {
		x, _ := space.AllocF64(1)
		pcT, pcC := sword.Site("pub-taskwait:write"), sword.Site("pub-taskwait:read")
		rt.Parallel(2, func(th *sword.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *sword.Thread) {
					tt.StoreF64(x, 0, 1, pcT)
				})
				th.TaskWait()
				th.LoadF64(x, 0, pcC)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatalf("waited task still racy:\n%s", rep)
	}
}

func TestValidateTracePublicAPI(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	s, err := sword.NewSession(sword.WithLogDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	x, _ := s.Space().AllocF64(1)
	s.Runtime().Parallel(2, func(th *sword.Thread) {
		th.StoreF64(x, 0, 1, sword.Site("validate:w"))
	})
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	if err := sword.ValidateTrace(dir); err != nil {
		t.Fatalf("clean trace invalid: %v", err)
	}
	// Damage a log file; validation must notice.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			if len(data) > 2 {
				if err := os.WriteFile(p, data[:len(data)-2], 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := sword.ValidateTrace(dir); err == nil {
		t.Fatal("truncated trace validated")
	}
}
