package sword_test

import (
	"context"
	"net"
	"testing"

	"sword"
)

// collectRacy collects a store with a known loop-carried dependence race.
func collectRacy(t *testing.T) sword.Store {
	t.Helper()
	s, err := sword.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Space().AllocF64(2000)
	if err != nil {
		t.Fatal(err)
	}
	pcR, pcW := sword.Site("dist:read"), sword.Site("dist:write")
	s.Runtime().Parallel(4, func(th *sword.Thread) {
		th.For(1, 2000, func(i int) {
			th.StoreF64(a, i, th.LoadF64(a, i-1, pcR), pcW)
		})
	})
	if err := s.CollectOnly(); err != nil {
		t.Fatal(err)
	}
	return s.Store()
}

// TestAnalyzeDistributedAgreement: the public one-process distributed
// entry point must report the same dedup'd race set as AnalyzeStore on
// the same trace, with analysis stats populated.
func TestAnalyzeDistributedAgreement(t *testing.T) {
	store := collectRacy(t)
	base, _, err := sword.AnalyzeStore(store)
	if err != nil {
		t.Fatal(err)
	}
	rep, st, err := sword.AnalyzeDistributed(context.Background(), store, 2,
		sword.WithDistBatchUnits(4), sword.WithDistPrefetch(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != base.Len() {
		t.Fatalf("distributed found %d races, single-process %d:\n%s\nvs\n%s",
			rep.Len(), base.Len(), rep, base)
	}
	if st == nil || st.Analysis.IntervalPairs == 0 {
		t.Error("distributed RunStats missing analysis effort")
	}
}

// TestServeJoinAgreement drives the split entry points the way a real
// deployment would — ServeCoordinator on a listener, JoinWorker dialing
// it, both over the same store — and checks the merged report against the
// single-process analysis.
func TestServeJoinAgreement(t *testing.T) {
	store := collectRacy(t)
	base, _, err := sword.AnalyzeStore(store)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() {
		werr <- sword.JoinWorker(context.Background(), ln.Addr().String(), store,
			sword.WithDist(sword.DistConfig{WorkerName: "w1", BatchUnits: 4}))
	}()
	rep, st, err := sword.ServeCoordinator(context.Background(), ln, store,
		sword.WithDistBatchUnits(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-werr; err != nil {
		t.Fatalf("JoinWorker: %v", err)
	}
	if rep.Len() != base.Len() {
		t.Fatalf("coordinator merged %d races, single-process %d", rep.Len(), base.Len())
	}
	if st == nil || st.Analysis.IntervalPairs == 0 {
		t.Error("coordinator RunStats missing analysis effort")
	}
}

// TestServeCoordinatorCancel: cancelling the context unblocks
// ServeCoordinator with ctx.Err even when no worker ever connects.
func TestServeCoordinatorCancel(t *testing.T) {
	store := collectRacy(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := sword.ServeCoordinator(ctx, ln, store)
		done <- err
	}()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("ServeCoordinator returned %v, want context.Canceled", err)
	}
}
