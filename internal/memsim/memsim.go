// Package memsim provides the simulated memory substrate of the
// reproduction: an address space that hands out stable addresses for
// instrumented arrays, application footprint accounting, and a node memory
// budget that decides out-of-memory outcomes.
//
// The paper's evaluation ran on 32 GB nodes where ARCHER's 5–7× shadow
// memory exhausted RAM on large inputs while SWORD's per-thread bound did
// not. Reproducing that on a laptop requires separating the *real* backing
// arrays (kept small so runs are fast) from the *accounted* footprint
// (scaled to paper-like magnitudes). Detection runs on real data and real
// addresses; memory verdicts run on the accounted model. DESIGN.md
// documents this substitution.
package memsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOOM is returned when a charge would exceed the node budget.
var ErrOOM = errors.New("memsim: out of memory")

// Budget models a compute node's memory. The zero value is unlimited.
type Budget struct {
	limit uint64
	used  atomic.Uint64
}

// NewBudget returns a budget of limit bytes; limit 0 means unlimited.
func NewBudget(limit uint64) *Budget { return &Budget{limit: limit} }

// Limit returns the configured limit in bytes (0 = unlimited).
func (b *Budget) Limit() uint64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Charge reserves n bytes, failing with ErrOOM if the budget would be
// exceeded. A nil or unlimited budget always succeeds.
func (b *Budget) Charge(n uint64) error {
	if b == nil {
		return nil
	}
	for {
		cur := b.used.Load()
		next := cur + n
		if b.limit != 0 && next > b.limit {
			return fmt.Errorf("%w: %d + %d exceeds %d-byte node", ErrOOM, cur, n, b.limit)
		}
		if b.used.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n uint64) {
	if b == nil {
		return
	}
	b.used.Add(^uint64(n - 1))
}

// Used returns the bytes currently charged.
func (b *Budget) Used() uint64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Space allocates simulated addresses for instrumented arrays and tracks
// the application's accounted footprint. Addresses are never reused and
// arrays never overlap; a guard gap separates allocations so off-by-one
// accesses surface as non-overlapping rather than false sharing.
type Space struct {
	mu        sync.Mutex
	next      uint64
	footprint uint64
	budget    *Budget
}

const (
	spaceBase = 0x0000_1000_0000 // leave low addresses unused, like a real heap
	guardGap  = 64
)

// NewSpace returns a fresh address space charging app memory to budget
// (which may be nil).
func NewSpace(budget *Budget) *Space {
	return &Space{next: spaceBase, budget: budget}
}

// Footprint returns the accounted application bytes allocated so far.
func (s *Space) Footprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.footprint
}

// Budget returns the budget this space charges, possibly nil.
func (s *Space) Budget() *Budget { return s.budget }

// reserve claims an address range of n bytes and accounts acct bytes of
// footprint.
func (s *Space) reserve(n, acct uint64) (uint64, error) {
	if err := s.budget.Charge(acct); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.next
	s.next += n + guardGap
	s.footprint += acct
	return base, nil
}

// Reserve accounts n bytes of application footprint without creating an
// addressable array — the bulk, non-racy memory of a scaled-down
// application (e.g. the fine-grid vectors of AMG at 40³). It fails with
// ErrOOM when the node budget is exhausted.
func (s *Space) Reserve(n uint64) error {
	_, err := s.reserve(0, n)
	return err
}

// F64 is an instrumented array of float64 values.
type F64 struct {
	base uint64
	Data []float64
}

// AllocF64 allocates an instrumented float64 array of n elements.
func (s *Space) AllocF64(n int) (*F64, error) {
	base, err := s.reserve(uint64(n)*8, uint64(n)*8)
	if err != nil {
		return nil, err
	}
	return &F64{base: base, Data: make([]float64, n)}, nil
}

// Base returns the first address of the array.
func (a *F64) Base() uint64 { return a.base }

// Addr returns the address of element i.
func (a *F64) Addr(i int) uint64 { return a.base + uint64(i)*8 }

// Len returns the element count.
func (a *F64) Len() int { return len(a.Data) }

// I64 is an instrumented array of int64 values.
type I64 struct {
	base uint64
	Data []int64
}

// AllocI64 allocates an instrumented int64 array of n elements.
func (s *Space) AllocI64(n int) (*I64, error) {
	base, err := s.reserve(uint64(n)*8, uint64(n)*8)
	if err != nil {
		return nil, err
	}
	return &I64{base: base, Data: make([]int64, n)}, nil
}

// Base returns the first address of the array.
func (a *I64) Base() uint64 { return a.base }

// Addr returns the address of element i.
func (a *I64) Addr(i int) uint64 { return a.base + uint64(i)*8 }

// Len returns the element count.
func (a *I64) Len() int { return len(a.Data) }

// I32 is an instrumented array of int32 values.
type I32 struct {
	base uint64
	Data []int32
}

// AllocI32 allocates an instrumented int32 array of n elements.
func (s *Space) AllocI32(n int) (*I32, error) {
	base, err := s.reserve(uint64(n)*4, uint64(n)*4)
	if err != nil {
		return nil, err
	}
	return &I32{base: base, Data: make([]int32, n)}, nil
}

// Base returns the first address of the array.
func (a *I32) Base() uint64 { return a.base }

// Addr returns the address of element i.
func (a *I32) Addr(i int) uint64 { return a.base + uint64(i)*4 }

// Len returns the element count.
func (a *I32) Len() int { return len(a.Data) }

// Bytes is an instrumented byte array.
type Bytes struct {
	base uint64
	Data []byte
}

// AllocBytes allocates an instrumented byte array of n elements.
func (s *Space) AllocBytes(n int) (*Bytes, error) {
	base, err := s.reserve(uint64(n), uint64(n))
	if err != nil {
		return nil, err
	}
	return &Bytes{base: base, Data: make([]byte, n)}, nil
}

// Base returns the first address of the array.
func (a *Bytes) Base() uint64 { return a.base }

// Addr returns the address of element i.
func (a *Bytes) Addr(i int) uint64 { return a.base + uint64(i) }

// Len returns the element count.
func (a *Bytes) Len() int { return len(a.Data) }
