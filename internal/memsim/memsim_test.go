package memsim

import (
	"errors"
	"sync"
	"testing"
)

func TestBudgetChargeRelease(t *testing.T) {
	b := NewBudget(100)
	if err := b.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Charge(41); !errors.Is(err, ErrOOM) {
		t.Fatalf("overcharge error = %v, want ErrOOM", err)
	}
	if err := b.Charge(40); err != nil {
		t.Fatal(err)
	}
	if b.Used() != 100 {
		t.Fatalf("Used = %d", b.Used())
	}
	b.Release(50)
	if b.Used() != 50 {
		t.Fatalf("Used after release = %d", b.Used())
	}
	if b.Limit() != 100 {
		t.Fatalf("Limit = %d", b.Limit())
	}
}

func TestBudgetUnlimitedAndNil(t *testing.T) {
	var nilB *Budget
	if err := nilB.Charge(1 << 60); err != nil {
		t.Fatal(err)
	}
	nilB.Release(5)
	if nilB.Used() != 0 || nilB.Limit() != 0 {
		t.Fatal("nil budget not inert")
	}
	b := NewBudget(0)
	if err := b.Charge(1 << 60); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := b.Charge(3); err != nil {
					t.Error(err)
					return
				}
				b.Release(1)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 8*1000*2 {
		t.Fatalf("Used = %d, want %d", b.Used(), 8*1000*2)
	}
}

func TestSpaceAllocationsDisjoint(t *testing.T) {
	s := NewSpace(nil)
	a, err := s.AllocF64(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AllocI64(100)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.AllocI32(100)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.AllocBytes(100)
	if err != nil {
		t.Fatal(err)
	}
	type rng struct{ lo, hi uint64 }
	ranges := []rng{
		{a.Base(), a.Addr(99) + 7},
		{b.Base(), b.Addr(99) + 7},
		{c.Base(), c.Addr(99) + 3},
		{d.Base(), d.Addr(99)},
	}
	for i := range ranges {
		for j := i + 1; j < len(ranges); j++ {
			if ranges[i].lo <= ranges[j].hi && ranges[j].lo <= ranges[i].hi {
				t.Fatalf("ranges %d and %d overlap: %+v %+v", i, j, ranges[i], ranges[j])
			}
		}
	}
	if s.Footprint() != 100*8+100*8+100*4+100 {
		t.Fatalf("Footprint = %d", s.Footprint())
	}
}

func TestSpaceAddressing(t *testing.T) {
	s := NewSpace(nil)
	a, _ := s.AllocF64(10)
	if a.Addr(3)-a.Addr(2) != 8 {
		t.Fatal("F64 element stride != 8")
	}
	if a.Len() != 10 || len(a.Data) != 10 {
		t.Fatal("length mismatch")
	}
	c, _ := s.AllocI32(10)
	if c.Addr(3)-c.Addr(2) != 4 {
		t.Fatal("I32 element stride != 4")
	}
	d, _ := s.AllocBytes(10)
	if d.Addr(3)-d.Addr(2) != 1 {
		t.Fatal("Bytes element stride != 1")
	}
}

func TestSpaceBudgetOOM(t *testing.T) {
	b := NewBudget(1000)
	s := NewSpace(b)
	if _, err := s.AllocF64(100); err != nil { // 800 bytes
		t.Fatal(err)
	}
	if _, err := s.AllocF64(100); !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if err := s.Reserve(200); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(1); !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM from Reserve, got %v", err)
	}
	if s.Budget() != b {
		t.Fatal("Budget accessor wrong")
	}
}

func TestReserveCountsFootprintOnly(t *testing.T) {
	s := NewSpace(nil)
	before := s.Footprint()
	if err := s.Reserve(1 << 30); err != nil { // a gigabyte, no backing
		t.Fatal(err)
	}
	if s.Footprint()-before != 1<<30 {
		t.Fatal("Reserve did not account footprint")
	}
}
