package archer

import (
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
)

func run(t *testing.T, cfg Config, program func(rtm *omp.Runtime, space *memsim.Space)) (*report.Report, *Tool) {
	t.Helper()
	tool := New(cfg)
	rtm := omp.New(omp.WithTool(tool))
	space := memsim.NewSpace(nil)
	program(rtm, space)
	return tool.Report(), tool
}

func TestDetectsWriteWriteRace(t *testing.T) {
	pc := pcreg.Site("archer-test:ww")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.StoreF64(x, 0, float64(th.ID()), pc)
		})
	})
	if rep.Len() != 1 {
		t.Fatalf("got %d races, want 1:\n%s", rep.Len(), rep.String())
	}
}

func TestNoFalsePositiveDisjoint(t *testing.T) {
	pc := pcreg.Site("archer-test:disjoint")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(256)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.For(0, 256, func(i int) {
				th.StoreF64(a, i, 1, pc)
			})
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("false positives:\n%s", rep.String())
	}
}

func TestBarrierOrdersAccesses(t *testing.T) {
	pcW := pcreg.Site("archer-test:barw")
	pcR := pcreg.Site("archer-test:barr")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(4, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.StoreF64(x, 0, 1, pcW)
			}
			th.Barrier()
			th.LoadF64(x, 0, pcR)
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("barrier not respected:\n%s", rep.String())
	}
}

func TestMutexOrdersAccesses(t *testing.T) {
	pc := pcreg.Site("archer-test:crit")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(8, func(th *omp.Thread) {
			th.Critical("c", func() {
				v := th.LoadF64(x, 0, pc)
				th.StoreF64(x, 0, v+1, pc)
			})
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("critical section not respected:\n%s", rep.String())
	}
}

func TestForkJoinEdges(t *testing.T) {
	pcSeq := pcreg.Site("archer-test:seq")
	pcPar := pcreg.Site("archer-test:par")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Run(func(initial *omp.Thread) {
			initial.Parallel(4, func(th *omp.Thread) {
				if th.ID() == 2 {
					th.StoreF64(x, 0, 1, pcPar)
				}
			})
			// Sequentially composed second region: join edge orders it.
			initial.Parallel(4, func(th *omp.Thread) {
				th.LoadF64(x, 0, pcSeq)
			})
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("fork/join edges missing:\n%s", rep.String())
	}
}

func TestAtomicsSynchronize(t *testing.T) {
	pc := pcreg.Site("archer-test:atomic")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(8, func(th *omp.Thread) {
			th.AtomicAddF64(x, 0, 1, pc)
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("atomics raced:\n%s", rep.String())
	}
}

// TestHBMaskingFigure1 reproduces Figure 1: the same racy program is
// caught or missed depending on the runtime order of the critical
// sections, because release→acquire order creates a happens-before path.
func TestHBMaskingFigure1(t *testing.T) {
	pcW := pcreg.Site("archer-test:fig1-write")
	pcR := pcreg.Site("archer-test:fig1-read")
	program := func(readerFirst bool) func(rtm *omp.Runtime, space *memsim.Space) {
		return func(rtm *omp.Runtime, space *memsim.Space) {
			a, _ := space.AllocF64(1)
			lock := rtm.NewLock()
			seq := omp.NewSequencer()
			rtm.Parallel(2, func(th *omp.Thread) {
				writerStep, readerStep := 0, 1
				if readerFirst {
					writerStep, readerStep = 1, 0
				}
				if th.ID() == 0 {
					seq.Do(writerStep, func() {
						th.StoreF64(a, 0, 1, pcW)
						th.WithLock(lock, func() {})
					})
				} else {
					seq.Do(readerStep, func() {
						th.WithLock(lock, func() {})
						th.LoadF64(a, 0, pcR)
					})
				}
			})
		}
	}
	// Schedule (b): writer's critical section first. The reader's acquire
	// joins the writer's release clock, masking the race.
	repMasked, _ := run(t, Config{}, program(false))
	if repMasked.Len() != 0 {
		t.Fatalf("writer-first schedule should mask the race for archer:\n%s", repMasked.String())
	}
	// Schedule (a): reader first. No happens-before path: race caught.
	repCaught, _ := run(t, Config{}, program(true))
	if repCaught.Len() != 1 {
		t.Fatalf("reader-first schedule should expose the race: got %d\n%s", repCaught.Len(), repCaught.String())
	}
}

// TestEvictionMiss reproduces the shadow-cell information loss: a thread
// writes a shared location and then re-reads it, overwriting its own write
// record; reads by other threads afterwards find only read cells and the
// write-read race is missed.
func TestEvictionMiss(t *testing.T) {
	pcW := pcreg.Site("archer-test:evict-write")
	pcR := pcreg.Site("archer-test:evict-selfread")
	pcO := pcreg.Site("archer-test:evict-otherread")
	rep, tool := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		seq := omp.NewSequencer()
		rtm.Parallel(4, func(th *omp.Thread) {
			if th.ID() == 0 {
				seq.Do(0, func() {
					th.StoreF64(x, 0, 1, pcW) // the racy write
					th.LoadF64(x, 0, pcR)     // same-thread re-read evicts it
				})
			} else {
				seq.Do(th.ID(), func() {
					th.LoadF64(x, 0, pcO) // racy reads, but the W cell is gone
				})
			}
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("eviction should hide this race from archer:\n%s", rep.String())
	}
	_ = tool
}

// TestWriteSurvivesWithoutSelfRead: without the re-read, the write cell
// persists and the race is caught — the pattern ARCHER does detect.
func TestWriteSurvivesWithoutSelfRead(t *testing.T) {
	pcW := pcreg.Site("archer-test:live-write")
	pcO := pcreg.Site("archer-test:live-read")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		seq := omp.NewSequencer()
		rtm.Parallel(4, func(th *omp.Thread) {
			if th.ID() == 0 {
				seq.Do(0, func() { th.StoreF64(x, 0, 1, pcW) })
			} else {
				seq.Do(th.ID(), func() { th.LoadF64(x, 0, pcO) })
			}
		})
	})
	if rep.Len() != 1 {
		t.Fatalf("got %d races, want 1:\n%s", rep.Len(), rep.String())
	}
}

// TestRoundRobinEviction: five different threads touching one word force a
// genuine eviction.
func TestRoundRobinEviction(t *testing.T) {
	pc := pcreg.Site("archer-test:rr")
	_, tool := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		seq := omp.NewSequencer()
		rtm.Parallel(5, func(th *omp.Thread) {
			seq.Do(th.ID(), func() { th.LoadF64(x, 0, pc) })
		})
	})
	if tool.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded with 5 threads on one word")
	}
}

func TestNestedConcurrentRegionsCaught(t *testing.T) {
	pc := pcreg.Site("archer-test:nested")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		y, _ := space.AllocF64(1)
		rtm.Parallel(2, func(outer *omp.Thread) {
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 0 {
					in.StoreF64(y, 0, 1, pc)
				}
			})
		})
	})
	if rep.Len() != 1 {
		t.Fatalf("nested concurrent regions: %d races, want 1:\n%s", rep.Len(), rep.String())
	}
}

func TestFlushShadowKeepsDetectionWithinRegion(t *testing.T) {
	pc := pcreg.Site("archer-test:flush")
	rep, tool := run(t, Config{FlushShadow: true}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		for i := 0; i < 3; i++ {
			rtm.Parallel(2, func(th *omp.Thread) {
				th.StoreF64(x, 0, 1, pc)
			})
		}
	})
	if rep.Len() != 1 {
		t.Fatalf("flush-shadow lost in-region detection: %d\n%s", rep.Len(), rep.String())
	}
	st := tool.Stats()
	if st.Flushes != 3 {
		t.Fatalf("flushes = %d, want 3", st.Flushes)
	}
	if st.ShadowWords != 0 {
		t.Fatalf("shadow words after final flush = %d", st.ShadowWords)
	}
}

func TestShadowWordAccounting(t *testing.T) {
	pc := pcreg.Site("archer-test:words")
	_, tool := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(1000)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.For(0, 1000, func(i int) {
				th.StoreF64(a, i, 1, pc)
			})
		})
	})
	if got := tool.Stats().ShadowWords; got != 1000 {
		t.Fatalf("shadow words = %d, want 1000", got)
	}
}

func TestUnalignedAccessSpansWords(t *testing.T) {
	pcA := pcreg.Site("archer-test:unaligned")
	pcB := pcreg.Site("archer-test:byte")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		b, _ := space.AllocBytes(32)
		// An 8-byte read crossing a word boundary vs a byte write in the
		// second word.
		base := (b.Base() + 7) &^ 7 // align to a word inside the array
		off := int(base - b.Base())
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Read(base+4, 8, pcA) // spans words [base, base+8) and [base+8, +16)
			} else {
				th.StoreByte(b, off+9, 1, pcB) // inside the second word
			}
		})
	})
	if rep.Len() != 1 {
		t.Fatalf("word-spanning access missed: %d races\n%s", rep.Len(), rep.String())
	}
}

func TestMemoryModel(t *testing.T) {
	if MemoryModel(1000, false) != 6000 {
		t.Fatal("default model not 6x")
	}
	if MemoryModel(1000, true) >= MemoryModel(1000, false) {
		t.Fatal("flush-shadow model not cheaper")
	}
}

func BenchmarkArcherAccess(b *testing.B) {
	tool := New(Config{})
	rtm := omp.New(omp.WithTool(tool))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(4096)
	pc := pcreg.Site("archer-bench")
	b.ReportAllocs()
	rtm.Parallel(1, func(th *omp.Thread) {
		for i := 0; i < b.N; i++ {
			th.StoreF64(arr, i&4095, 1, pc)
		}
	})
}

// TestAtomicSyncMasksPlainRace pins TSan's atomic-as-synchronization
// behaviour: a plain write, then an atomic release-acquire chain on a
// *different* location between the threads, then a plain read — the chain
// orders the accesses for the happens-before tool, masking the race.
// SWORD's semantic model (core package tests) still reports it.
func TestAtomicSyncMasksPlainRace(t *testing.T) {
	pcW := pcreg.Site("archer-test:atomic-mask-write")
	pcR := pcreg.Site("archer-test:atomic-mask-read")
	pcA := pcreg.Site("archer-test:atomic-flag")
	rep, _ := run(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		flag, _ := space.AllocF64(1)
		seq := omp.NewSequencer()
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				seq.Do(0, func() {
					th.StoreF64(x, 0, 1, pcW)          // unprotected write
					th.AtomicStoreF64(flag, 0, 1, pcA) // release
				})
			} else {
				seq.Do(1, func() {
					th.AtomicLoadF64(flag, 0, pcA) // acquire: HB edge
					th.LoadF64(x, 0, pcR)          // masked read
				})
			}
		})
	})
	if rep.Len() != 0 {
		t.Fatalf("atomic chain should mask the race for the HB tool:\n%s", rep.String())
	}
}
