// Package archer reimplements the ARCHER baseline: an online
// happens-before data race detector in the style of ThreadSanitizer with
// OpenMP-aware synchronization, the state of the art the paper compares
// SWORD against.
//
// The detector keeps, per 8-byte application word, up to four shadow cells
// — exactly TSan's design point — each remembering one access (thread
// slot, scalar clock, byte range, direction, atomicity, pc). Every
// instrumented access is checked against the word's cells under the
// current thread's vector clock; cells whose access is not
// happens-before-ordered and conflicts raise a race. A fifth access to a
// word evicts a cell, which is the documented source of ARCHER's missed
// races (Section II); lock release→acquire order observed at runtime
// creates happens-before edges that mask schedule-dependent races
// (Figure 1). Both weaknesses are reproduced faithfully.
//
// FlushShadow reproduces the "archer-low" configuration: shadow memory is
// released between top-level parallel regions, trading analysis time for
// memory.
package archer

import (
	"sync"
	"sync/atomic"

	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/vc"
)

// Config parameterizes the baseline.
type Config struct {
	// FlushShadow clears shadow memory between independent top-level
	// parallel regions — the paper's "archer-low" configuration.
	FlushShadow bool
	// PCs symbolizes race reports; nil means pcreg.Default.
	PCs *pcreg.Table
}

// CellsPerWord is TSan's shadow geometry: four access records per 8-byte
// application word.
const CellsPerWord = 4

// cell is one shadow access record.
type cell struct {
	clock  uint64
	pc     uint64
	slot   int32
	off    uint8 // first byte within the word
	size   uint8 // bytes covered (clipped to the word)
	write  bool
	atomic bool
	valid  bool
}

// word is the shadow of one 8-byte application word.
type word struct {
	cells [CellsPerWord]cell
	rr    uint8 // round-robin eviction cursor
}

const stripes = 128

// Tool is the ARCHER detector; attach with omp.WithTool. It is also the
// run's race report source via Report.
type Tool struct {
	omp.NopTool
	cfg Config
	pcs *pcreg.Table
	rep *report.Report

	// Per-slot vector clocks. Own-slot reads on the access path are
	// lock-free in effect (only the owning goroutine writes them), but the
	// map itself is guarded.
	mu    sync.Mutex
	vcs   map[int]*vc.Clock
	forks map[uint64]*vc.Clock // region id -> parent clock at fork
	joins map[uint64]*vc.Clock // region id -> merged end clocks
	bars  map[barKey]*vc.Clock // (region, bid) -> merged barrier clock
	locks map[uint64]*vc.Clock // mutex id -> release clock
	syncs map[uint64]*vc.Clock // atomic address -> release clock

	shadowMu [stripes]sync.Mutex
	shadow   [stripes]map[uint64]*word

	words     atomic.Uint64
	evictions atomic.Uint64
	checks    atomic.Uint64
	flushes   atomic.Uint64
}

type barKey struct {
	region uint64
	bid    uint64
}

// New returns a fresh detector.
func New(cfg Config) *Tool {
	t := &Tool{
		cfg:   cfg,
		pcs:   cfg.PCs,
		rep:   report.New(),
		vcs:   make(map[int]*vc.Clock),
		forks: make(map[uint64]*vc.Clock),
		joins: make(map[uint64]*vc.Clock),
		bars:  make(map[barKey]*vc.Clock),
		locks: make(map[uint64]*vc.Clock),
		syncs: make(map[uint64]*vc.Clock),
	}
	if t.pcs == nil {
		t.pcs = pcreg.Default
	}
	for i := range t.shadow {
		t.shadow[i] = make(map[uint64]*word)
	}
	return t
}

// Report returns the accumulated race report.
func (t *Tool) Report() *report.Report { return t.rep }

// Stats describes the detector's shadow-memory behaviour.
type Stats struct {
	ShadowWords uint64 // distinct application words shadowed
	Evictions   uint64 // shadow cells evicted (each a potential miss)
	Checks      uint64 // access-vs-cell comparisons
	Flushes     uint64 // shadow flushes (archer-low)
}

// Stats returns shadow counters.
func (t *Tool) Stats() Stats {
	return Stats{
		ShadowWords: t.words.Load(),
		Evictions:   t.evictions.Load(),
		Checks:      t.checks.Load(),
		Flushes:     t.flushes.Load(),
	}
}

// clockOf returns the slot's clock, creating it at zero.
func (t *Tool) clockOf(slot int) *vc.Clock {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clockOfLocked(slot)
}

func (t *Tool) clockOfLocked(slot int) *vc.Clock {
	c, ok := t.vcs[slot]
	if !ok {
		c = &vc.Clock{}
		c.Tick(slot)
		t.vcs[slot] = c
	}
	return c
}

// RegionFork implements omp.Tool: snapshot the parent's clock for the
// team's fork edge.
func (t *Tool) RegionFork(parent *omp.Thread, region omp.RegionInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pc := t.clockOfLocked(parent.Slot())
	t.forks[region.ID] = pc.Copy()
	pc.Tick(parent.Slot())
}

// ThreadBegin implements omp.Tool: team members inherit the fork clock.
// The master continues its encountering thread's clock (same logical
// thread); a worker is a fresh logical thread, so it starts from the fork
// snapshot rather than joining whatever clock the previous occupant of its
// pooled slot left behind — pool reuse order is a scheduler artifact, not
// synchronization. Only the slot's own epoch component stays monotonic, so
// shadow cells from earlier occupants remain correctly ordered for third
// parties.
func (t *Tool) ThreadBegin(th *omp.Thread) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot := th.Slot()
	fork := t.forks[th.Region().ID]
	if th.ID() == 0 && !th.Region().Async {
		// The master continues its encountering thread's clock; a task's
		// thread (also ID 0) is a fresh logical thread instead.
		c := t.clockOfLocked(slot)
		if fork != nil {
			c.Join(fork)
		}
		c.Tick(slot)
		return
	}
	prevEpoch := uint64(0)
	if old, ok := t.vcs[slot]; ok {
		prevEpoch = old.Get(slot)
	}
	fresh := &vc.Clock{}
	if fork != nil {
		fresh.Join(fork)
	}
	fresh.Set(slot, prevEpoch+1)
	t.vcs[slot] = fresh
}

// ThreadEnd implements omp.Tool: merge the member's clock for the join
// edge.
func (t *Tool) ThreadEnd(th *omp.Thread) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.clockOfLocked(th.Slot())
	j, ok := t.joins[th.Region().ID]
	if !ok {
		j = &vc.Clock{}
		t.joins[th.Region().ID] = j
	}
	j.Join(c)
	c.Tick(th.Slot())
}

// RegionJoin implements omp.Tool: the parent acquires the merged team
// clock; archer-low also flushes shadow memory here.
func (t *Tool) RegionJoin(parent *omp.Thread, region omp.RegionInfo) {
	t.mu.Lock()
	if j, ok := t.joins[region.ID]; ok {
		t.clockOfLocked(parent.Slot()).Join(j)
		delete(t.joins, region.ID)
	}
	delete(t.forks, region.ID)
	t.mu.Unlock()
	if t.cfg.FlushShadow && region.Level == 1 {
		t.flushShadow()
	}
}

// flushShadow releases all shadow memory — the archer-low trade: lower
// residency, extra time spent releasing and refaulting pages.
func (t *Tool) flushShadow() {
	for i := range t.shadow {
		t.shadowMu[i].Lock()
		t.shadow[i] = make(map[uint64]*word)
		t.shadowMu[i].Unlock()
	}
	t.words.Store(0)
	t.flushes.Add(1)
}

// BarrierArrive implements omp.Tool: merge into the episode clock. All
// arrivals strictly precede all departures (the runtime's barrier
// guarantees it), so the merged clock is complete when read.
func (t *Tool) BarrierArrive(th *omp.Thread, _ bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := barKey{region: th.Region().ID, bid: th.BID()}
	b, ok := t.bars[key]
	if !ok {
		b = &vc.Clock{}
		t.bars[key] = b
	}
	c := t.clockOfLocked(th.Slot())
	b.Join(c)
	c.Tick(th.Slot())
}

// BarrierDepart implements omp.Tool: acquire the episode clock.
func (t *Tool) BarrierDepart(th *omp.Thread, _ bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := barKey{region: th.Region().ID, bid: th.BID() - 1}
	if b, ok := t.bars[key]; ok {
		t.clockOfLocked(th.Slot()).Join(b)
	}
}

// MutexAcquired implements omp.Tool: acquire edge from the last release.
// This runtime-order edge is precisely what masks the Figure 1 race.
func (t *Tool) MutexAcquired(th *omp.Thread, mutex uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.locks[mutex]; ok {
		t.clockOfLocked(th.Slot()).Join(l)
	}
}

// MutexReleased implements omp.Tool: publish the clock on the mutex.
func (t *Tool) MutexReleased(th *omp.Thread, mutex uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.clockOfLocked(th.Slot())
	l, ok := t.locks[mutex]
	if !ok {
		l = &vc.Clock{}
		t.locks[mutex] = l
	}
	l.Join(c)
	c.Tick(th.Slot())
}

// Access implements omp.Tool: the shadow-cell check, TSan's hot path.
func (t *Tool) Access(th *omp.Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	slot := th.Slot()
	myClock := t.clockOf(slot)
	if atomic {
		// TSan models atomics as synchronization: acquire+release on a
		// per-address sync clock.
		t.mu.Lock()
		c := t.clockOfLocked(slot)
		s, ok := t.syncs[addr]
		if !ok {
			s = &vc.Clock{}
			t.syncs[addr] = s
		}
		c.Join(s)
		s.Join(c)
		c.Tick(slot)
		t.mu.Unlock()
	}
	// Split the access into 8-byte word pieces, as TSan does.
	end := addr + uint64(size)
	for wa := addr &^ 7; wa < end; wa += 8 {
		lo := max(wa, addr)
		hi := min(wa+8, end)
		t.checkWord(wa>>3, uint8(lo-wa), uint8(hi-lo), slot, myClock, write, atomic, pc)
	}
}

func (t *Tool) checkWord(wordIdx uint64, off, size uint8, slot int, myClock *vc.Clock, write, atomic bool, pc uint64) {
	stripe := wordIdx % stripes
	t.shadowMu[stripe].Lock()
	defer t.shadowMu[stripe].Unlock()
	w, ok := t.shadow[stripe][wordIdx]
	if !ok {
		w = &word{}
		t.shadow[stripe][wordIdx] = w
		t.words.Add(1)
	}
	myEpoch := myClock.Get(slot)
	replaceIdx := -1
	for i := range w.cells {
		c := &w.cells[i]
		if !c.valid {
			if replaceIdx < 0 {
				replaceIdx = i
			}
			continue
		}
		if int(c.slot) == slot {
			// Same-thread cell: a newer access from the same thread with
			// the same footprint replaces it regardless of direction — the
			// paper's "multiple reads by the same thread ... eventually
			// overwritten" information loss, made deterministic (real TSan
			// loses the cell through randomized eviction instead).
			if c.off == off && c.size == size {
				replaceIdx = i
			}
			continue
		}
		t.checks.Add(1)
		if c.off+c.size <= off || off+size <= c.off {
			continue // disjoint bytes within the word
		}
		if !c.write && !write {
			continue
		}
		if c.atomic && atomic {
			continue
		}
		if myClock.HappensBefore(int(c.slot), c.clock) {
			continue // ordered: no race
		}
		t.rep.Add(report.Race{
			First:  report.Side{PC: c.pc, Source: t.pcs.Name(c.pc), Write: c.write, Atomic: c.atomic},
			Second: report.Side{PC: pc, Source: t.pcs.Name(pc), Write: write, Atomic: atomic},
			Addr:   wordIdx<<3 + uint64(off),
		})
	}
	// Record the access: reuse a free or same-thread cell, else evict
	// round-robin — the bounded-shadow information loss.
	if replaceIdx < 0 {
		replaceIdx = int(w.rr)
		w.rr = (w.rr + 1) % CellsPerWord
		t.evictions.Add(1)
	}
	w.cells[replaceIdx] = cell{
		clock:  myEpoch,
		pc:     pc,
		slot:   int32(slot),
		off:    off,
		size:   size,
		write:  write,
		atomic: atomic,
		valid:  true,
	}
}

// MemoryModel returns the accounted memory overhead of the baseline for a
// given application footprint: shadow cells are 4 words per application
// word plus runtime bookkeeping, the 5–7× observed in the paper. The
// archer-low flush recovers roughly 30% on multi-region codes.
func MemoryModel(footprint uint64, flushShadow bool) uint64 {
	if flushShadow {
		return footprint * 42 / 10 // ≈ 4.2×
	}
	return footprint * 6 // ≈ 6×
}

// TaskSpawn implements omp.Tool (tasking extension): the task inherits the
// spawner's clock at the spawn point.
func (t *Tool) TaskSpawn(spawner *omp.Thread, task omp.RegionInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.clockOfLocked(spawner.Slot())
	t.forks[task.ID] = c.Copy()
	c.Tick(spawner.Slot())
}

// TaskWaited implements omp.Tool: taskwait joins the waited tasks' end
// clocks into the spawner.
func (t *Tool) TaskWaited(spawner *omp.Thread, taskIDs []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.clockOfLocked(spawner.Slot())
	for _, id := range taskIDs {
		if j, ok := t.joins[id]; ok {
			c.Join(j)
			delete(t.joins, id)
		}
		delete(t.forks, id)
	}
}

// BarrierTasksDone implements omp.Tool: tasks completing at a barrier join
// into the episode clock, ordering them before every departing thread.
func (t *Tool) BarrierTasksDone(th *omp.Thread, taskIDs []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := barKey{region: th.Region().ID, bid: th.BID()}
	b, ok := t.bars[key]
	if !ok {
		b = &vc.Clock{}
		t.bars[key] = b
	}
	for _, id := range taskIDs {
		if j, ok := t.joins[id]; ok {
			b.Join(j)
			delete(t.joins, id)
		}
		delete(t.forks, id)
	}
}
