// Package pcreg interns program counters. The LLVM pass in the original
// tool records real PCs that are later symbolized; here every
// instrumentation site registers once — capturing its Go source location —
// and accesses carry the small interned id through trace logs. The
// collector persists the table to an auxiliary trace file so the offline
// analyzer, possibly a different process, can symbolize race reports.
package pcreg

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Table maps interned ids to source locations. The zero value is invalid;
// use NewTable. A process-wide Default table serves the common case.
type Table struct {
	mu    sync.RWMutex
	names []string
	index map[string]uint64
}

// NewTable returns an empty table. Id 0 is reserved for "unknown".
func NewTable() *Table {
	t := &Table{index: make(map[string]uint64)}
	t.names = append(t.names, "unknown")
	t.index["unknown"] = 0
	return t
}

// Default is the process-wide table used by the runtime's instrumentation
// helpers.
var Default = NewTable()

// Register interns name and returns its id. Registering the same name
// twice returns the same id.
func (t *Table) Register(name string) uint64 {
	t.mu.RLock()
	id, ok := t.index[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.index[name]; ok {
		return id
	}
	id = uint64(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = id
	return id
}

// Name returns the source location for id, or "pc(N)" when unknown.
func (t *Table) Name(id uint64) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < uint64(len(t.names)) {
		return t.names[id]
	}
	return fmt.Sprintf("pc(%d)", id)
}

// Len returns the number of interned sites, including the reserved id 0.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Here registers the caller's source location (skip frames above the
// caller of Here) and returns its id. Call it once per instrumentation
// site, outside hot loops.
func (t *Table) Here(skip int) uint64 {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return 0
	}
	// Keep the last two path elements: pkg/file.go:NN.
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		if j := strings.LastIndexByte(file[:i], '/'); j >= 0 {
			file = file[j+1:]
		}
	}
	return t.Register(file + ":" + strconv.Itoa(line))
}

// Here registers the caller's location in the Default table.
func Here() uint64 { return Default.Here(1) }

// Site registers a symbolic site name in the Default table.
func Site(name string) uint64 { return Default.Register(name) }

// WriteTo serializes the table as "id<TAB>name" lines.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	for id, name := range t.names {
		k, err := fmt.Fprintf(bw, "%d\t%s\n", id, name)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTable parses a table previously written by WriteTo.
func ReadTable(r io.Reader) (*Table, error) {
	t := NewTable()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	entries := make(map[uint64]string)
	var maxID uint64
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		tab := strings.IndexByte(line, '\t')
		if tab < 0 {
			return nil, fmt.Errorf("pcreg: malformed line %q", line)
		}
		id, err := strconv.ParseUint(line[:tab], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pcreg: bad id in %q: %w", line, err)
		}
		entries[id] = line[tab+1:]
		if id > maxID {
			maxID = id
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.names = make([]string, maxID+1)
	t.index = make(map[string]uint64, len(entries))
	for id := range t.names {
		t.names[id] = fmt.Sprintf("pc(%d)", id)
	}
	ids := make([]uint64, 0, len(entries))
	for id := range entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t.names[id] = entries[id]
		t.index[entries[id]] = id
	}
	return t, nil
}
