package pcreg

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegisterIdempotent(t *testing.T) {
	tb := NewTable()
	a := tb.Register("x.go:1")
	b := tb.Register("x.go:2")
	if a == b {
		t.Fatal("distinct names share id")
	}
	if tb.Register("x.go:1") != a {
		t.Fatal("re-register changed id")
	}
	if tb.Name(a) != "x.go:1" {
		t.Fatalf("Name(%d) = %q", a, tb.Name(a))
	}
	if tb.Name(0) != "unknown" {
		t.Fatalf("Name(0) = %q", tb.Name(0))
	}
	if got := tb.Name(9999); got != "pc(9999)" {
		t.Fatalf("Name(9999) = %q", got)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestHereCapturesLocation(t *testing.T) {
	tb := NewTable()
	id := tb.Here(0)
	name := tb.Name(id)
	if !strings.Contains(name, "pcreg_test.go:") {
		t.Fatalf("Here captured %q", name)
	}
	if id2 := tb.Here(0); tb.Name(id2) == name {
		t.Fatalf("two Here calls on different lines interned same name %q", name)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tb := NewTable()
	tb.Register("a.go:10")
	tb.Register("b.go:20")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tb.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), tb.Len())
	}
	for _, name := range []string{"unknown", "a.go:10", "b.go:20"} {
		if got.Name(tb.Register(name)) != name {
			t.Fatalf("round trip lost %q", name)
		}
	}
}

func TestReadTableErrors(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("no tab here\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadTable(strings.NewReader("x\tname\n")); err == nil {
		t.Error("bad id accepted")
	}
	got, err := ReadTable(strings.NewReader(""))
	if err != nil || got.Len() == 0 {
		t.Errorf("empty table: %v, len %d", err, got.Len())
	}
}

func TestConcurrentRegister(t *testing.T) {
	tb := NewTable()
	var wg sync.WaitGroup
	ids := make([]uint64, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids[g] = tb.Register("shared")
				tb.Register("own-" + string(rune('a'+g)))
			}
		}(g)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatal("concurrent Register returned different ids for same name")
		}
	}
}
