package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sword/internal/obs"
)

// TestAbortRefundsExactlyOnce races many aborts of one session: exactly
// one may refund, or the double-decrement corrupts the admission
// accounting for the server's lifetime (negative usedBytes defeats the
// global byte budget).
func TestAbortRefundsExactlyOnce(t *testing.T) {
	s := newTestServer(t)
	u, err := s.newUpload("t1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.saveFile(u, "sword_0.log", strings.NewReader("junk")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.abortUpload(u)
		}()
	}
	wg.Wait()
	s.mu.Lock()
	used, live := s.usedBytes, s.tenantLive["t1"]
	s.mu.Unlock()
	if used != 0 || live != 0 {
		t.Fatalf("after concurrent aborts: usedBytes=%d tenantLive=%d, want 0/0", used, live)
	}
}

// TestAbortAfterCommitDoesNotRefund aborts a session that already
// committed: the job owns the charge now, and an extra refund would
// drive the accounting negative once the job releases it too.
func TestAbortAfterCommitDoesNotRefund(t *testing.T) {
	s := newTestServer(t)
	u, err := s.newUpload("t1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.saveFile(u, "sword_0.log", strings.NewReader("junk")); err != nil {
		t.Fatal(err)
	}
	j, err := s.commitUpload(u)
	if err != nil {
		t.Fatal(err)
	}
	s.abortUpload(u) // stale handle: must be a no-op

	deadline := time.Now().Add(30 * time.Second)
	for {
		if jj := s.lookupJob(j.ID); jj != nil {
			s.mu.Lock()
			done := jj.terminal()
			s.mu.Unlock()
			if done {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.mu.Lock()
	used := s.usedBytes
	s.mu.Unlock()
	if used != 0 {
		t.Fatalf("after job release: usedBytes=%d, want 0 (negative means double refund)", used)
	}
}

// TestSaveFileAfterAbortRefused verifies a closed session accepts no
// more data: the charge would otherwise never be refunded.
func TestSaveFileAfterAbortRefused(t *testing.T) {
	s := newTestServer(t)
	u, err := s.newUpload("t1")
	if err != nil {
		t.Fatal(err)
	}
	s.abortUpload(u)
	if err := s.saveFile(u, "sword_0.log", strings.NewReader("junk")); err == nil {
		t.Fatal("saveFile on an aborted session succeeded")
	}
	s.mu.Lock()
	used := s.usedBytes
	s.mu.Unlock()
	if used != 0 {
		t.Fatalf("aborted session charged %d bytes", used)
	}
}

// TestUploadSessionExpires starts a session and walks away: the reaper
// must abort it, refund the tenant slot and bytes, and free the quota
// for the next client.
func TestUploadSessionExpires(t *testing.T) {
	m := obs.New()
	s := newTestServer(t, WithTenantJobs(1), WithUploadTimeout(50*time.Millisecond), WithObs(m))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sess)
	resp.Body.Close()

	req, _ := http.NewRequest("PUT",
		ts.URL+"/api/v1/uploads/"+sess.ID+"/files/sword_0.log", strings.NewReader("junk"))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		gone := len(s.uploads) == 0 && s.usedBytes == 0 && len(s.tenantLive) == 0
		s.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned session never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.Counter("server.uploads_expired").Load() == 0 {
		t.Fatal("server.uploads_expired not incremented")
	}
	// The freed slot must admit the next session under the quota of 1.
	r3, _ := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	r3.Body.Close()
	if r3.StatusCode != http.StatusCreated {
		t.Fatalf("session after expiry: %d, want 201", r3.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "jobs", sess.ID)); !os.IsNotExist(err) {
		t.Fatalf("expired session directory survived: %v", err)
	}
}

// TestTerminalJobPruned runs a job to completion under a tiny JobTTL:
// the record and its DataDir directory must be pruned, bounding an
// always-on server's memory and disk.
func TestTerminalJobPruned(t *testing.T) {
	m := obs.New()
	s := newTestServer(t, WithJobTTL(50*time.Millisecond), WithObs(m))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "critical-no")
	j := postUpload(t, ts.URL, "", dir)
	waitTerminal(t, ts.URL, j.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.lookupJob(j.ID) == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never pruned")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m.Counter("server.jobs_pruned").Load() == 0 {
		t.Fatal("server.jobs_pruned not incremented")
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "jobs", j.ID)); !os.IsNotExist(err) {
		t.Fatalf("pruned job directory survived: %v", err)
	}
	resp, _ := http.Get(ts.URL + "/api/v1/jobs/" + j.ID)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pruned job status: %d, want 404", resp.StatusCode)
	}
}

// TestRecoverRemovesJoblessDirs seeds DataDir with a directory no
// job.json claims — the remains of an upload session interrupted by a
// crash — and expects startup recovery to delete it.
func TestRecoverRemovesJoblessDirs(t *testing.T) {
	data := t.TempDir()
	orphan := filepath.Join(data, "jobs", "deadbeef0000", "trace")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "sword_0.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, WithDataDir(data))
	_ = s
	if _, err := os.Stat(filepath.Join(data, "jobs", "deadbeef0000")); !os.IsNotExist(err) {
		t.Fatalf("jobless directory survived recovery: %v", err)
	}
}
