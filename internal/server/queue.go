package server

import (
	"time"
)

// scheduler is the fairness core: one FIFO per tenant, drained by
// deficit round robin over the tenants with work. Each visit to a tenant
// adds the byte quantum to its deficit; its head job dispatches only
// once the accumulated deficit covers the job's upload size. A tenant
// queueing one giant job therefore spends many visits saving up while
// other tenants' small jobs clear on their first visit — the bound the
// stress experiment asserts. An idle server with a single tenant
// degenerates to plain FIFO: deficits accumulate round after round in
// the same call, so nothing ever waits on fairness alone.
//
// The scheduler owns no lock; the Server's mutex guards every method.
type scheduler struct {
	quantum int64
	tenants map[string]*tenantQueue
	order   []string // round-robin visit order among tenants with work
	next    int      // index into order of the next tenant to visit
	depth   int      // queued jobs across all tenants
}

type tenantQueue struct {
	jobs    []*Job
	deficit int64
}

func newScheduler(quantum int64) *scheduler {
	return &scheduler{quantum: quantum, tenants: make(map[string]*tenantQueue)}
}

// push enqueues a job at its tenant's tail, registering the tenant into
// the round-robin order if it had no work.
func (sc *scheduler) push(j *Job) {
	tq := sc.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{}
		sc.tenants[j.Tenant] = tq
	}
	if len(tq.jobs) == 0 {
		sc.order = append(sc.order, j.Tenant)
	}
	tq.jobs = append(tq.jobs, j)
	sc.depth++
}

// cost is the deficit charge for dispatching j: its upload size, floored
// so zero-byte jobs still consume a visit.
func (sc *scheduler) cost(j *Job) int64 {
	if j.Bytes > 0 {
		return j.Bytes
	}
	return 1
}

// pop returns the next dispatchable job under DRR, or nil with the
// earliest time a backoff-delayed job becomes ready (zero if no job is
// waiting on time at all). Jobs whose RetryAt is in the future are held
// without consuming their tenant's turn.
//
// pop is work-conserving: as long as any head is ready it keeps running
// rounds — each ready tenant banks one quantum per round — until a
// deficit covers its head, so a lone giant job dispatches in one call
// while under competition it saves up across calls as other tenants'
// small jobs clear between its visits.
func (sc *scheduler) pop(now time.Time) (*Job, time.Time) {
	for {
		if len(sc.order) == 0 {
			return nil, time.Time{}
		}
		var wake time.Time
		ready := false
		for range sc.order { // one full round; order only mutates on dispatch
			sc.next %= len(sc.order)
			tq := sc.tenants[sc.order[sc.next]]
			head := tq.jobs[0]
			if !head.RetryAt.IsZero() && head.RetryAt.After(now) {
				if wake.IsZero() || head.RetryAt.Before(wake) {
					wake = head.RetryAt
				}
				sc.next++
				continue
			}
			ready = true
			tq.deficit += sc.quantum
			if tq.deficit < sc.cost(head) {
				sc.next++
				continue
			}
			tq.deficit -= sc.cost(head)
			tq.jobs = tq.jobs[1:]
			sc.depth--
			if len(tq.jobs) == 0 {
				tq.deficit = 0 // an emptied tenant must not bank credit
				sc.order = append(sc.order[:sc.next], sc.order[sc.next+1:]...)
			} else {
				sc.next++
			}
			return head, time.Time{}
		}
		if !ready {
			return nil, wake
		}
	}
}

// remove drops a queued job (cancellation) and reports whether it was
// found.
func (sc *scheduler) remove(j *Job) bool {
	tq := sc.tenants[j.Tenant]
	if tq == nil {
		return false
	}
	for i, q := range tq.jobs {
		if q == j {
			tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
			sc.depth--
			if len(tq.jobs) == 0 {
				tq.deficit = 0
				for k, name := range sc.order {
					if name == j.Tenant {
						sc.order = append(sc.order[:k], sc.order[k+1:]...)
						if sc.next > k {
							sc.next--
						}
						break
					}
				}
			}
			return true
		}
	}
	return false
}

// enqueue registers j with the scheduler and wakes a runner. Caller
// holds s.mu.
func (s *Server) enqueueLocked(j *Job) {
	j.State = StateQueued
	s.sched.push(j)
	s.m.Gauge("server.queue_depth").Set(int64(s.sched.depth))
	s.m.Gauge("server.queue_depth_peak").SetMax(int64(s.sched.depth))
	s.cond.Signal()
}

// nextJob blocks until a job is dispatchable, the server drains, or a
// backoff delay expires — the coordinator's takeBatch wait pattern.
// Returns nil when the runner should exit.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		j, wake := s.sched.pop(time.Now())
		if j != nil {
			j.State = StateRunning
			j.StartedAt = time.Now()
			s.m.Gauge("server.queue_depth").Set(int64(s.sched.depth))
			s.m.Counter("server.rr_dispatches").Inc()
			return j
		}
		if !wake.IsZero() {
			// Sleep until the earliest RetryAt, but stay wakeable: a new
			// upload or drain must interrupt the wait.
			t := time.AfterFunc(time.Until(wake), s.cond.Broadcast)
			s.cond.Wait()
			t.Stop()
			continue
		}
		s.cond.Wait()
	}
}
