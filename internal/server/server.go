// Package server is the always-on multi-tenant analysis service: an HTTP
// front end that ingests trace uploads from many concurrent client runs,
// queues one analysis job per upload, and serves reports — SWORD's
// production deployment shape, where detection is an ambient facility
// around the fleet rather than a batch tool.
//
// The robustness envelope is the point, not the routing. Admission
// control sheds load early (429 + Retry-After) against a global byte
// budget and per-tenant quotas instead of OOMing late; per-tenant FIFO
// queues drain under deficit-round-robin fairness so a tenant with one
// giant job cannot starve hundreds of small ones; jobs run under
// per-attempt timeouts with bounded exponential-backoff retries (the
// dist requeue discipline); damaged uploads degrade to salvage-mode
// analysis and partial reports; jobs that trip the heap guard retry
// under a reduced memory budget before failing loud; and SIGTERM drains
// cleanly — admission stops, in-flight jobs finish or requeue, and the
// queue survives restart through per-job persistence.
//
// See docs/FORMAT.md ("HTTP analysis service") for the API and the
// server.* metrics.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sword/internal/obs"
)

// Config parameterizes the service. The zero value is usable for tests:
// everything in-process, generous budgets, a temp-style DataDir still
// required (New creates it).
type Config struct {
	// DataDir is the persistence root: DataDir/jobs/<id>/ holds each
	// job's record (job.json), uploaded trace (trace/), and report
	// (report.json). Queued jobs found here at startup re-enqueue, which
	// is how the queue survives a restart.
	DataDir string
	// GlobalBytes bounds the total bytes of uploaded trace stored across
	// all live jobs; uploads beyond it are shed with 429 (0 = 4 GiB).
	GlobalBytes int64
	// TenantBytes bounds one tenant's stored upload bytes (0 = a quarter
	// of GlobalBytes).
	TenantBytes int64
	// TenantJobs bounds one tenant's live (queued or running) jobs
	// (0 = 256).
	TenantJobs int
	// Concurrency is how many jobs analyze at once (0 = 2).
	Concurrency int
	// JobMemBudget is the per-job memory budget in bytes of trace volume,
	// handed to the analyzer as core.Config.MemoryBudget and halved on
	// each heap-guard retry (0 = 256 MiB).
	JobMemBudget int64
	// MemBudget is the server-wide heap budget: when sampled heap use
	// exceeds it, the guard cancels the largest running job, which
	// retries under a reduced JobMemBudget (0 = disabled).
	MemBudget int64
	// JobTimeout is the per-attempt deadline (0 = 10m).
	JobTimeout time.Duration
	// MaxAttempts bounds how often one job may run before failing loud
	// (0 = 3).
	MaxAttempts int
	// RetryBackoff is the base requeue delay; attempt k waits
	// RetryBackoff·2^(k-1) — the dist discipline (0 = 500ms).
	RetryBackoff time.Duration
	// Quantum is the deficit-round-robin byte quantum per tenant visit:
	// the fairness grain. Smaller favors small jobs harder (0 = 64 KiB).
	Quantum int64
	// UploadTimeout is how long an upload session may sit idle (no chunk
	// received) before the reaper aborts it, refunding its job slot and
	// bytes — a client that starts a session and walks away cannot hold
	// quota forever (0 = 5m).
	UploadTimeout time.Duration
	// JobTTL is how long a terminal job's record and report stay around
	// after it finishes; the reaper then prunes them from memory and
	// DataDir so an always-on server does not grow without bound
	// (0 = 24h).
	JobTTL time.Duration
	// Workers is the per-job analysis parallelism (0 = GOMAXPROCS via the
	// core default).
	Workers int
	// Obs receives the server.* metrics (nil = a private registry, so
	// /api/v1/metrics always works).
	Obs *obs.Metrics
}

// Option configures New.
type Option func(*Config)

// WithDataDir sets the persistence root.
func WithDataDir(dir string) Option { return func(c *Config) { c.DataDir = dir } }

// WithGlobalBytes bounds total stored upload bytes across all live jobs.
func WithGlobalBytes(n int64) Option { return func(c *Config) { c.GlobalBytes = n } }

// WithTenantBytes bounds one tenant's stored upload bytes.
func WithTenantBytes(n int64) Option { return func(c *Config) { c.TenantBytes = n } }

// WithTenantJobs bounds one tenant's live jobs.
func WithTenantJobs(n int) Option { return func(c *Config) { c.TenantJobs = n } }

// WithConcurrency sets how many jobs analyze at once.
func WithConcurrency(n int) Option { return func(c *Config) { c.Concurrency = n } }

// WithJobMemBudget sets the per-job analyzer memory budget in bytes.
func WithJobMemBudget(n int64) Option { return func(c *Config) { c.JobMemBudget = n } }

// WithMemBudget sets the server-wide heap budget the guard enforces.
func WithMemBudget(n int64) Option { return func(c *Config) { c.MemBudget = n } }

// WithJobTimeout sets the per-attempt deadline.
func WithJobTimeout(d time.Duration) Option { return func(c *Config) { c.JobTimeout = d } }

// WithMaxAttempts bounds runs per job before failing loud.
func WithMaxAttempts(n int) Option { return func(c *Config) { c.MaxAttempts = n } }

// WithRetryBackoff sets the base exponential requeue delay.
func WithRetryBackoff(d time.Duration) Option { return func(c *Config) { c.RetryBackoff = d } }

// WithQuantum sets the round-robin byte quantum (the fairness grain).
func WithQuantum(n int64) Option { return func(c *Config) { c.Quantum = n } }

// WithUploadTimeout sets the idle deadline after which an abandoned
// upload session is reaped.
func WithUploadTimeout(d time.Duration) Option { return func(c *Config) { c.UploadTimeout = d } }

// WithJobTTL sets how long finished jobs and their reports are retained.
func WithJobTTL(d time.Duration) Option { return func(c *Config) { c.JobTTL = d } }

// WithWorkers sets per-job analysis parallelism.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithObs records the server.* metrics into m.
func WithObs(m *obs.Metrics) Option { return func(c *Config) { c.Obs = m } }

func (cfg *Config) fill() error {
	if cfg.DataDir == "" {
		return errors.New("server: DataDir is required")
	}
	if cfg.GlobalBytes == 0 {
		cfg.GlobalBytes = 4 << 30
	}
	if cfg.TenantBytes == 0 {
		cfg.TenantBytes = cfg.GlobalBytes / 4
	}
	if cfg.TenantJobs == 0 {
		cfg.TenantJobs = 256
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 2
	}
	if cfg.JobMemBudget == 0 {
		cfg.JobMemBudget = 256 << 20
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 500 * time.Millisecond
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 64 << 10
	}
	if cfg.UploadTimeout == 0 {
		cfg.UploadTimeout = 5 * time.Minute
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = 24 * time.Hour
	}
	for _, f := range []struct {
		name string
		bad  bool
	}{
		{"GlobalBytes", cfg.GlobalBytes < 0},
		{"TenantBytes", cfg.TenantBytes < 0},
		{"TenantJobs", cfg.TenantJobs < 0},
		{"Concurrency", cfg.Concurrency < 0},
		{"JobMemBudget", cfg.JobMemBudget < 0},
		{"MemBudget", cfg.MemBudget < 0},
		{"JobTimeout", cfg.JobTimeout < 0},
		{"MaxAttempts", cfg.MaxAttempts < 0},
		{"RetryBackoff", cfg.RetryBackoff < 0},
		{"Quantum", cfg.Quantum < 0},
		{"UploadTimeout", cfg.UploadTimeout < 0},
		{"JobTTL", cfg.JobTTL < 0},
	} {
		if f.bad {
			return fmt.Errorf("server: %s must be positive", f.name)
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	return nil
}

// Server is the analysis service. Create with New, mount Handler() on an
// http.Server (or call Run), and stop with Drain.
type Server struct {
	cfg Config
	m   *obs.Metrics

	mu       sync.Mutex
	cond     *sync.Cond // wakes runners when work or shutdown arrives
	jobs     map[string]*Job
	sched    *scheduler
	uploads  map[string]*uploadSession
	draining bool
	closed   bool

	usedBytes   int64            // admitted upload bytes not yet released
	tenantBytes map[string]int64 // per-tenant share of usedBytes
	tenantLive  map[string]int   // per-tenant queued+running jobs

	runnersWG sync.WaitGroup
	guardStop chan struct{}
	guardDone chan struct{}
}

// New builds the service, recovers persisted jobs from DataDir (queued
// and running jobs re-enqueue; finished ones serve their reports), and
// starts the runner pool and heap guard.
func New(opts ...Option) (*Server, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		m:           cfg.Obs,
		jobs:        make(map[string]*Job),
		sched:       newScheduler(cfg.Quantum),
		uploads:     make(map[string]*uploadSession),
		tenantBytes: make(map[string]int64),
		tenantLive:  make(map[string]int),
		guardStop:   make(chan struct{}),
		guardDone:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Concurrency; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	go s.memGuard()
	return s, nil
}

// newID returns a fresh 12-hex-digit job/upload id.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is broken
	}
	return hex.EncodeToString(b[:])
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission, cancels running jobs so they requeue, persists
// every queued job, and stops the runner pool and heap guard. It blocks
// until in-flight runners exit or ctx expires. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.closed = true
	s.m.Counter("server.drains").Inc()
	// Wake every idle runner so it observes the shutdown; cancel running
	// jobs with the drain cause so they requeue without burning attempts.
	for _, j := range s.jobs {
		if j.cancel != nil && j.State == StateRunning {
			j.cancel(errDraining)
		}
	}
	sessions := make([]*uploadSession, 0, len(s.uploads))
	for _, u := range s.uploads {
		sessions = append(sessions, u)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	// Stop the upload sessions' live-lane analyzers; the sessions
	// themselves stay (their bytes refund when the reaper or a client
	// abort reaches them, as before).
	for _, u := range sessions {
		u.stopLive()
	}

	close(s.guardStop)
	done := make(chan struct{})
	go func() {
		s.runnersWG.Wait()
		<-s.guardDone
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Runners are gone; persist the final queue state.
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, j := range s.jobs {
		if err := s.persistJob(j); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Run serves the API on srv until ctx is cancelled (SIGTERM in
// cmd/swordserve), then drains with the given grace period and shuts the
// listener down. srv.Handler is set to s.Handler().
func (s *Server) Run(ctx context.Context, srv *http.Server, grace time.Duration) error {
	srv.Handler = s.Handler()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	derr := s.Drain(dctx)
	serr := srv.Shutdown(dctx)
	if derr != nil {
		return derr
	}
	if errors.Is(serr, context.DeadlineExceeded) {
		serr = nil // stragglers past the grace period are expected
	}
	return serr
}
