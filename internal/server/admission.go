package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"time"

	"sword/internal/stream"
	"sword/internal/trace"
)

// Upload layout: files must be named exactly as a DirStore lays a trace
// out on disk — per-slot logs and metas plus named aux streams. The
// pattern is also the traversal guard: no separators, no absolute paths,
// nothing a client names reaches outside the job's trace directory.
var (
	reSlotFile = regexp.MustCompile(`^sword_(\d{1,6})\.(log|meta)$`)
	reAuxFile  = regexp.MustCompile(`^sword_[A-Za-z0-9._-]{1,64}\.aux$`)
)

// validUploadName reports whether name is an acceptable trace file name.
func validUploadName(name string) bool {
	return reSlotFile.MatchString(name) || reAuxFile.MatchString(name)
}

// admission errors map to the API's shed responses.
var (
	errShedBytes   = errors.New("byte budget exhausted")
	errShedTenant  = errors.New("tenant quota exhausted")
	errDrainReject = errors.New("server is draining")
)

// admitJob reserves a live-job slot for tenant. Shedding happens here,
// at the front door, not after the bytes are on disk.
func (s *Server) admitJob(tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return errDrainReject
	}
	if s.tenantLive[tenant] >= s.cfg.TenantJobs {
		s.m.Counter("server.jobs_shed").Inc()
		return fmt.Errorf("%w: %d live job(s)", errShedTenant, s.tenantLive[tenant])
	}
	s.tenantLive[tenant]++
	return nil
}

// chargeSession reserves n more upload bytes against the global and
// per-tenant budgets and counts them into the session, all under one
// lock. It is called per chunk while an upload streams, so a client
// lying about (or omitting) Content-Length still cannot overrun the
// budget — the stream is cut at the boundary instead. The liveness check
// makes commit/abort a hard cut-off: once the session leaves s.uploads
// its byte total is frozen, so a PUT racing a commit cannot charge bytes
// the job's eventual release would not refund.
func (s *Server) chargeSession(u *uploadSession, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.uploads[u.id]; !live {
		return errors.New("upload session closed")
	}
	if s.usedBytes+n > s.cfg.GlobalBytes {
		s.m.Counter("server.jobs_shed").Inc()
		return fmt.Errorf("%w: %d of %d global byte(s) in use", errShedBytes, s.usedBytes, s.cfg.GlobalBytes)
	}
	if s.tenantBytes[u.tenant]+n > s.cfg.TenantBytes {
		s.m.Counter("server.jobs_shed").Inc()
		return fmt.Errorf("%w: %d of %d tenant byte(s) in use", errShedBytes, s.tenantBytes[u.tenant], s.cfg.TenantBytes)
	}
	s.usedBytes += n
	s.tenantBytes[u.tenant] += n
	u.bytes += n
	u.lastActive = time.Now()
	s.m.Counter("server.bytes_admitted").Add(uint64(n))
	return nil
}

// refundLocked returns an upload's byte and live-job-slot charges to the
// admission budgets. Caller holds s.mu and must have already made the
// charge unrepeatable (session out of s.uploads, or job going terminal)
// so no path can refund twice.
func (s *Server) refundLocked(tenant string, bytes int64) {
	s.usedBytes -= bytes
	if s.tenantBytes[tenant] -= bytes; s.tenantBytes[tenant] <= 0 {
		delete(s.tenantBytes, tenant)
	}
	if s.tenantLive[tenant]--; s.tenantLive[tenant] <= 0 {
		delete(s.tenantLive, tenant)
	}
}

// releaseSlot undoes admitJob for an upload that never became a job.
func (s *Server) releaseSlot(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenantLive[tenant]--; s.tenantLive[tenant] <= 0 {
		delete(s.tenantLive, tenant)
	}
}

// budgetWriter charges every chunk against the admission budgets before
// it reaches disk and counts the upload's total.
type budgetWriter struct {
	s *Server
	u *uploadSession
	w io.Writer
}

func (bw budgetWriter) Write(p []byte) (int, error) {
	if err := bw.s.chargeSession(bw.u, int64(len(p))); err != nil {
		return 0, err
	}
	return bw.w.Write(p)
}

// uploadSession is a streamed upload in progress: files PUT one at a
// time into what becomes the job's trace directory, then committed as
// one job (or aborted). The session id is the future job id. All fields
// past id/dir are guarded by Server.mu — concurrent PUTs to one session
// share the byte total, and the reaper reads lastActive.
type uploadSession struct {
	id         string
	tenant     string
	dir        string // job dir; files land in dir/trace
	bytes      int64
	lastActive time.Time // reaper deadline basis; touched per chunk

	// Live lane (see live.go): an online analyzer tailing dir/trace while
	// the upload streams. Set before the session is published, never
	// reassigned; liveOnce makes stopLive safe from commit, abort, and
	// drain concurrently.
	live     *stream.Analyzer
	liveStop context.CancelFunc
	liveDone chan struct{}
	liveOnce sync.Once
}

// newUpload starts a session: admission (slot) happens now, bytes are
// charged as the files stream.
func (s *Server) newUpload(tenant string) (*uploadSession, error) {
	if err := s.admitJob(tenant); err != nil {
		return nil, err
	}
	u := &uploadSession{
		id:         newID(),
		tenant:     tenant,
		lastActive: time.Now(),
	}
	u.dir = filepath.Join(s.cfg.DataDir, "jobs", u.id)
	if err := os.MkdirAll(filepath.Join(u.dir, "trace"), 0o755); err != nil {
		s.releaseSlot(tenant)
		return nil, err
	}
	s.startLive(u)
	s.mu.Lock()
	s.uploads[u.id] = u
	s.mu.Unlock()
	return u, nil
}

// saveFile streams one named trace file into the session under the byte
// budgets. The name is validated before any byte lands, and a session
// already committed or aborted refuses data up front (every chunk
// re-checks inside chargeSession, so a mid-stream commit or abort cuts
// the transfer at the next chunk boundary).
func (s *Server) saveFile(u *uploadSession, name string, r io.Reader) error {
	if !validUploadName(name) {
		return fmt.Errorf("invalid trace file name %q", name)
	}
	s.mu.Lock()
	_, live := s.uploads[u.id]
	if live {
		u.lastActive = time.Now()
	}
	s.mu.Unlock()
	if !live {
		return errors.New("upload session closed")
	}
	f, err := os.Create(filepath.Join(u.dir, "trace", name))
	if err != nil {
		return err
	}
	_, cerr := io.Copy(budgetWriter{s: s, u: u, w: f}, r)
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	return cerr
}

// abortUpload tears a session down and refunds its admission charges.
// The refund happens only if this call is the one that removes the
// session from s.uploads: two racing aborts (or an abort racing a
// commit, or the error paths of concurrent PUTs) refund exactly once, so
// the admission accounting cannot be driven negative.
func (s *Server) abortUpload(u *uploadSession) {
	s.mu.Lock()
	if _, live := s.uploads[u.id]; !live {
		s.mu.Unlock()
		return
	}
	delete(s.uploads, u.id)
	s.refundLocked(u.tenant, u.bytes)
	s.mu.Unlock()
	u.stopLive()
	os.RemoveAll(u.dir)
}

// commitUpload turns a completed session into a queued job, returning a
// snapshot of the fresh record (a runner may start mutating the live one
// the moment the lock drops). A damaged or torn upload is not rejected:
// validation failure flags the job for salvage-mode analysis and the
// eventual report is partial — the graceful-degradation contract for
// half-written production traces.
func (s *Server) commitUpload(u *uploadSession) (Job, error) {
	s.mu.Lock()
	if _, live := s.uploads[u.id]; !live {
		s.mu.Unlock()
		return Job{}, errors.New("upload already committed or aborted")
	}
	delete(s.uploads, u.id)
	// u.bytes is frozen from here: chargeSession refuses chunks for a
	// session no longer in s.uploads, so this snapshot is exactly what
	// finishJob will release.
	j := &Job{
		ID:        u.id,
		Tenant:    u.tenant,
		Bytes:     u.bytes,
		MemBudget: s.cfg.JobMemBudget,
		CreatedAt: time.Now(),
		dir:       u.dir,
	}
	s.mu.Unlock()
	// The committed job's analysis is authoritative from here; the live
	// lane lets go of the trace files before validation reads them.
	u.stopLive()
	j.Salvage = uploadDamaged(j)
	if j.Salvage {
		s.m.Counter("server.uploads_damaged").Inc()
	}
	s.mu.Lock()
	if s.draining || s.closed {
		// The session already left s.uploads, so abortUpload would see it
		// as dead and refund nothing — tear down inline instead.
		s.refundLocked(j.Tenant, j.Bytes)
		s.mu.Unlock()
		os.RemoveAll(j.dir)
		return Job{}, errDrainReject
	}
	s.jobs[j.ID] = j
	_ = s.persistJob(j)
	s.enqueueLocked(j)
	s.m.Counter("server.jobs_admitted").Inc()
	snap := *j
	s.mu.Unlock()
	return snap, nil
}

// uploadDamaged validates the uploaded trace; any integrity failure
// routes the job to salvage-mode analysis.
func uploadDamaged(j *Job) bool {
	store, err := trace.NewDirStore(j.traceDir())
	if err != nil {
		return true
	}
	defer store.Close()
	return trace.Validate(store) != nil
}

// shed writes the admission-control rejection: 429 with Retry-After for
// budget sheds, 503 for a draining server, 400 for malformed uploads.
func shed(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDrainReject):
		w.Header().Set("Retry-After", "10")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, errShedBytes), errors.Is(err, errShedTenant):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// retryAfterSeconds is the advisory backoff handed to shed clients.
const retryAfterSeconds = 2
