package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// collectWorkloadDir runs a named example workload under the collector
// and returns the directory holding its trace files, ready to upload.
func collectWorkloadDir(t *testing.T, name string) string {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, err := trace.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	w.Run(&workloads.Ctx{RT: rtm, Space: memsim.NewSpace(nil), Threads: 4, Size: w.DefaultSize})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// newTestServer builds a service on a temp DataDir with test-friendly
// timings and drains it at cleanup.
func newTestServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	all := append([]Option{
		WithDataDir(t.TempDir()),
		WithRetryBackoff(5 * time.Millisecond),
		WithJobTimeout(time.Minute),
	}, opts...)
	s, err := New(all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

// multipartUpload builds a multipart body from every file in dir.
func multipartUpload(t *testing.T, dir string) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		fw, err := mw.CreateFormFile("file", e.Name())
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// postUpload uploads dir as one multipart job and returns the decoded
// 202 job record.
func postUpload(t *testing.T, base, tenant, dir string) Job {
	t.Helper()
	body, ctype := multipartUpload(t, dir)
	req, err := http.NewRequest("POST", base+"/api/v1/jobs", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ctype)
	if tenant != "" {
		req.Header.Set("X-Sword-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, msg)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitTerminal polls the status endpoint until the job reaches a
// terminal state.
func waitTerminal(t *testing.T, base, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var j Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if j.terminal() {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

// directRaces analyzes the trace dir single-process and returns the
// dedup'd race count — the differential baseline for API reports.
func directRaces(t *testing.T, dir string) int {
	t.Helper()
	store, err := trace.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rep, err := core.New(store, core.Config{}).AnalyzeContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Len()
}

// reportJSON fetches a finished job's JSON report.
func reportJSON(t *testing.T, base, id string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, body
}

// TestUploadAnalyzeReport is the happy path end to end: multipart
// upload, queued job, analysis, JSON and text reports matching a direct
// single-process run of the same trace.
func TestUploadAnalyzeReport(t *testing.T) {
	m := obs.New()
	s := newTestServer(t, WithObs(m))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "plusplus-orig-yes")
	want := directRaces(t, dir)

	j := postUpload(t, ts.URL, "team-a", dir)
	if j.Tenant != "team-a" || j.State != StateQueued && j.State != StateRunning {
		t.Fatalf("fresh job: %+v", j)
	}
	fin := waitTerminal(t, ts.URL, j.ID)
	if fin.State != StateDone {
		t.Fatalf("state %q (error %q), want done", fin.State, fin.Error)
	}
	if fin.Races != want {
		t.Fatalf("job reports %d races, direct analysis found %d", fin.Races, want)
	}

	code, body := reportJSON(t, ts.URL, j.ID)
	if code != http.StatusOK {
		t.Fatalf("report status %d", code)
	}
	var races []json.RawMessage
	if err := json.Unmarshal(body["races"], &races); err != nil || len(races) != want {
		t.Fatalf("report JSON carries %d races (err %v), want %d", len(races), err, want)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + j.ID + "/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(text), "race(s)") {
		t.Fatalf("text report: status %d body %q", resp.StatusCode, text)
	}

	// The trace is deleted once the report exists; the job dir keeps the
	// record and report only.
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "jobs", j.ID, "trace")); !os.IsNotExist(err) {
		t.Fatalf("trace dir survived job completion: %v", err)
	}
	if got := m.Counter("server.jobs_done").Load(); got != 1 {
		t.Fatalf("server.jobs_done = %d, want 1", got)
	}
}

// TestStreamedUploadSession drives the PUT-per-file upload API.
func TestStreamedUploadSession(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "critical-no")
	resp, err := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sess.ID == "" {
		t.Fatalf("upload start: %d %+v", resp.StatusCode, sess)
	}

	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
		req, _ := http.NewRequest("PUT",
			ts.URL+"/api/v1/uploads/"+sess.ID+"/files/"+e.Name(), bytes.NewReader(data))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT %s: status %d", e.Name(), resp.StatusCode)
		}
	}
	resp, err = http.Post(ts.URL+"/api/v1/uploads/"+sess.ID+"/commit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("commit: status %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, j.ID)
	if fin.State != StateDone || fin.Races != 0 {
		t.Fatalf("race-free workload finished %q with %d races", fin.State, fin.Races)
	}

	// A second commit of the same session must fail cleanly.
	resp, err = http.Post(ts.URL+"/api/v1/uploads/"+sess.ID+"/commit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double commit: status %d, want 404", resp.StatusCode)
	}
}

// TestUploadAbortRefundsBudget verifies an aborted session returns its
// bytes and its tenant slot.
func TestUploadAbortRefundsBudget(t *testing.T) {
	s := newTestServer(t, WithTenantJobs(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	var sess struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sess)
	resp.Body.Close()

	req, _ := http.NewRequest("PUT",
		ts.URL+"/api/v1/uploads/"+sess.ID+"/files/sword_0.log", strings.NewReader("junk"))
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	// Tenant quota is 1: a second session must shed while the first lives.
	r3, _ := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session while quota full: %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	req, _ = http.NewRequest("DELETE", ts.URL+"/api/v1/uploads/"+sess.ID, nil)
	r4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNoContent {
		t.Fatalf("abort: status %d", r4.StatusCode)
	}

	s.mu.Lock()
	used, live := s.usedBytes, s.tenantLive["default"]
	s.mu.Unlock()
	if used != 0 || live != 0 {
		t.Fatalf("after abort: usedBytes=%d tenantLive=%d, want 0/0", used, live)
	}
	r5, _ := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	r5.Body.Close()
	if r5.StatusCode != http.StatusCreated {
		t.Fatalf("session after abort: %d, want 201", r5.StatusCode)
	}
}

// TestUploadNameValidation rejects traversal and junk names before any
// byte lands.
func TestUploadNameValidation(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, name := range []string{
		"notatrace.txt", "sword_x.log", "sword_0.log.bak",
		"sword_.aux", "sword_" + strings.Repeat("a", 65) + ".aux",
	} {
		resp, _ := http.Post(ts.URL+"/api/v1/uploads", "", nil)
		var sess struct {
			ID string `json:"id"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&sess)
		resp.Body.Close()
		req, _ := http.NewRequest("PUT",
			ts.URL+"/api/v1/uploads/"+sess.ID+"/files/"+name, strings.NewReader("x"))
		r2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT %q: status %d, want 400", name, r2.StatusCode)
		}
	}
	// Nothing must have escaped into the data dir.
	matches, _ := filepath.Glob(filepath.Join(s.cfg.DataDir, "jobs", "*", "trace", "*"))
	if len(matches) != 0 {
		t.Fatalf("rejected uploads left files: %v", matches)
	}
}

// TestByteBudgetShedsWith429 caps the tenant byte budget below the
// upload size: the stream must be cut with 429 + Retry-After and the
// charge fully refunded.
func TestByteBudgetShedsWith429(t *testing.T) {
	m := obs.New()
	s := newTestServer(t, WithTenantBytes(64), WithObs(m))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "plusplus-orig-yes")
	body, ctype := multipartUpload(t, dir)
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/jobs", body)
	req.Header.Set("Content-Type", ctype)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized upload: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := m.Counter("server.jobs_shed").Load(); got == 0 {
		t.Fatal("server.jobs_shed not incremented")
	}
	s.mu.Lock()
	used := s.usedBytes
	s.mu.Unlock()
	if used != 0 {
		t.Fatalf("shed upload left %d bytes charged", used)
	}
}

// TestCancelQueuedJob cancels a job still in the queue.
func TestCancelQueuedJob(t *testing.T) {
	// Zero-concurrency servers are legal in tests via direct struct use,
	// but New floors at the default; instead enqueue more jobs than
	// runners and cancel the tail one before it can start.
	s := newTestServer(t, WithConcurrency(1))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "critical-no")
	var last Job
	for i := 0; i < 4; i++ {
		last = postUpload(t, ts.URL, "", dir)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/api/v1/jobs/"+last.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Accepted if it was still cancellable, conflict if it already won
	// the race and finished; both are legal, 5xx is not.
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	fin := waitTerminal(t, ts.URL, last.ID)
	if resp.StatusCode == http.StatusAccepted && fin.State != StateCanceled {
		t.Fatalf("accepted cancel ended %q", fin.State)
	}
	code, _ := reportJSON(t, ts.URL, last.ID)
	if fin.State == StateCanceled && code != http.StatusConflict {
		t.Fatalf("canceled job's report: status %d, want 409", code)
	}
}

// TestHealthAndMetrics exercises the observability endpoints.
func TestHealthAndMetrics(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap []obs.Metric
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
}

// TestListFiltersByTenant lists jobs per tenant.
func TestListFiltersByTenant(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "critical-no")
	a := postUpload(t, ts.URL, "alpha", dir)
	b := postUpload(t, ts.URL, "beta", dir)
	waitTerminal(t, ts.URL, a.ID)
	waitTerminal(t, ts.URL, b.ID)

	resp, err := http.Get(ts.URL + "/api/v1/jobs?tenant=alpha")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	_ = json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if len(jobs) != 1 || jobs[0].ID != a.ID {
		t.Fatalf("tenant filter returned %+v", jobs)
	}
}

// TestServerConfigValidation rejects negative knobs loudly.
func TestServerConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"GlobalBytes", WithGlobalBytes(-1)},
		{"TenantJobs", WithTenantJobs(-2)},
		{"JobTimeout", WithJobTimeout(-time.Second)},
		{"RetryBackoff", WithRetryBackoff(-time.Millisecond)},
		{"Quantum", WithQuantum(-5)},
		{"MaxAttempts", WithMaxAttempts(-1)},
	}
	for _, tc := range cases {
		_, err := New(WithDataDir(t.TempDir()), tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Fatalf("%s: err = %v, want mention of the field", tc.name, err)
		}
	}
	if _, err := New(); err == nil {
		t.Fatal("New without DataDir must fail")
	}
}

// TestSchedulerFairness is the starvation bound at the scheduler level:
// one tenant queues a giant job, another floods small ones — every small
// job must dispatch before the giant, and the giant must still run.
func TestSchedulerFairness(t *testing.T) {
	sc := newScheduler(1024)
	giant := &Job{ID: "giant", Tenant: "heavy", Bytes: 1 << 20}
	sc.push(giant)
	var smalls []*Job
	for i := 0; i < 50; i++ {
		j := &Job{ID: fmt.Sprintf("small-%d", i), Tenant: "light", Bytes: 512}
		smalls = append(smalls, j)
		sc.push(j)
	}
	now := time.Now()
	var order []string
	for {
		j, _ := sc.pop(now)
		if j == nil {
			break
		}
		order = append(order, j.ID)
	}
	if len(order) != 51 {
		t.Fatalf("dispatched %d jobs, want 51", len(order))
	}
	if order[50] != "giant" {
		t.Fatalf("giant dispatched at position %v, want last; order tail %v",
			order, order[45:])
	}
	for i, id := range order[:50] {
		if id != smalls[i].ID {
			t.Fatalf("small jobs out of FIFO order at %d: %s", i, id)
		}
	}
}

// TestSchedulerLoneTenantIsFIFO: with one tenant the DRR degenerates to
// FIFO and a giant job dispatches in a single pop call.
func TestSchedulerLoneTenantIsFIFO(t *testing.T) {
	sc := newScheduler(64)
	sc.push(&Job{ID: "g", Tenant: "t", Bytes: 1 << 30})
	sc.push(&Job{ID: "s", Tenant: "t", Bytes: 1})
	j, _ := sc.pop(time.Now())
	if j == nil || j.ID != "g" {
		t.Fatalf("lone giant did not dispatch first: %+v", j)
	}
	j, _ = sc.pop(time.Now())
	if j == nil || j.ID != "s" {
		t.Fatalf("second job did not follow: %+v", j)
	}
}

// TestSchedulerBackoffGate: a job whose RetryAt is in the future is held
// and pop reports the wake time.
func TestSchedulerBackoffGate(t *testing.T) {
	sc := newScheduler(64)
	ready := &Job{ID: "ready", Tenant: "a", Bytes: 1}
	delayed := &Job{ID: "delayed", Tenant: "b", Bytes: 1, RetryAt: time.Now().Add(time.Hour)}
	sc.push(delayed)
	sc.push(ready)
	now := time.Now()
	j, _ := sc.pop(now)
	if j == nil || j.ID != "ready" {
		t.Fatalf("ready job not dispatched: %+v", j)
	}
	j, wake := sc.pop(now)
	if j != nil {
		t.Fatalf("delayed job dispatched early: %+v", j)
	}
	if wake.IsZero() || !wake.Equal(delayed.RetryAt) {
		t.Fatalf("wake = %v, want %v", wake, delayed.RetryAt)
	}
	j, _ = sc.pop(delayed.RetryAt.Add(time.Second))
	if j == nil || j.ID != "delayed" {
		t.Fatalf("delayed job not dispatched after its gate: %+v", j)
	}
}

// TestLiveLaneServesPartialReport: while an upload session streams its
// files, the report endpoint answers with the online analyzer's growing
// snapshot; after commit, the job's authoritative report takes over with
// the same race set.
func TestLiveLaneServesPartialReport(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dir := collectWorkloadDir(t, "plusplus-orig-yes")
	want := directRaces(t, dir)
	if want == 0 {
		t.Fatal("workload should race")
	}

	resp, err := http.Post(ts.URL+"/api/v1/uploads", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		data, _ := os.ReadFile(filepath.Join(dir, e.Name()))
		req, _ := http.NewRequest("PUT",
			ts.URL+"/api/v1/uploads/"+sess.ID+"/files/"+e.Name(), bytes.NewReader(data))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// The whole trace (end-of-run marker included) has been streamed, so
	// the live lane converges on the full race set before any commit.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + sess.ID + "/report")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.Get("X-Sword-Live") != "1" {
			t.Fatalf("pre-commit report not marked live (status %d)", resp.StatusCode)
		}
		var body struct {
			Races []json.RawMessage `json:"races"`
			Notes []string          `json:"notes"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(body.Notes) == 0 || !strings.Contains(body.Notes[len(body.Notes)-1], "live") {
			t.Fatalf("live snapshot missing the in-progress note: %v", body.Notes)
		}
		if len(body.Races) == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live lane reports %d races, want %d", len(body.Races), want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Post(ts.URL+"/api/v1/uploads/"+sess.ID+"/commit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts.URL, j.ID)
	if fin.State != StateDone || fin.Races != want {
		t.Fatalf("committed job finished %q with %d races, want done/%d", fin.State, fin.Races, want)
	}
	code, body := reportJSON(t, ts.URL, j.ID)
	if code != http.StatusOK {
		t.Fatalf("final report status %d", code)
	}
	var races []json.RawMessage
	if err := json.Unmarshal(body["races"], &races); err != nil || len(races) != want {
		t.Fatalf("final report carries %d races (err %v), want %d", len(races), err, want)
	}
}
