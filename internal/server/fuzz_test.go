package server

import (
	"bytes"
	"context"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzMux  http.Handler
)

// fuzzServer builds one shared service per fuzz worker process: cheap
// retries, one runner, a small byte budget so budget sheds get exercised
// too. Jobs the fuzzer manages to create are junk; they salvage-analyze
// in microseconds and release their budget.
func fuzzServer(f *testing.F) *Server {
	f.Helper()
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sword-fuzz-*")
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv, err = New(
			WithDataDir(dir),
			WithConcurrency(1),
			WithGlobalBytes(8<<20),
			WithMaxAttempts(1),
			WithRetryBackoff(time.Millisecond),
			WithJobTimeout(10*time.Second),
		)
		if err != nil {
			f.Fatal(err)
		}
		fuzzMux = fuzzSrv.Handler()
	})
	f.Cleanup(func() {
		// Last registered cleanup runs once per process teardown; a drain
		// here keeps goroutine and file handles bounded across runs.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = fuzzSrv.Drain(ctx)
	})
	return fuzzSrv
}

// FuzzUploadHandler throws arbitrary bodies and content types at the
// multipart upload endpoint. Invariants: the handler never panics, never
// answers 5xx, and no client-chosen name ever creates a file outside a
// job's trace directory or one that fails the upload-name pattern.
func FuzzUploadHandler(f *testing.F) {
	var valid bytes.Buffer
	mw := multipart.NewWriter(&valid)
	fw, _ := mw.CreateFormFile("file", "sword_0.log")
	_, _ = fw.Write([]byte("not a real log, but a legal name"))
	fw, _ = mw.CreateFormFile("file", "sword_0.meta")
	_, _ = fw.Write([]byte{0, 1, 2, 3})
	_ = mw.Close()
	f.Add(mw.FormDataContentType(), valid.Bytes())

	f.Add("multipart/form-data; boundary=x", []byte(
		"--x\r\nContent-Disposition: form-data; name=\"file\"; filename=\"../../../etc/evil\"\r\n\r\npwn\r\n--x--\r\n"))
	f.Add("multipart/form-data; boundary=x", []byte(
		"--x\r\nContent-Disposition: form-data; name=\"tenant\"\r\n\r\nfuzz\r\n--x\r\nContent-Disposition: form-data; name=\"file\"; filename=\"sword_1.log\"\r\n\r\ndata\r\n--x--\r\n"))
	f.Add("multipart/form-data; boundary=x", []byte("--x--\r\n"))
	f.Add("text/plain", []byte("junk that is not multipart at all"))
	f.Add("multipart/form-data; boundary=", []byte("no boundary"))
	f.Add("multipart/form-data; boundary=y", []byte("--y\r\ntorn header"))

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, ctype string, body []byte) {
		req := httptest.NewRequest("POST", "/api/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", ctype)
		rec := httptest.NewRecorder()
		fuzzMux.ServeHTTP(rec, req)
		if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("upload handler answered %d for ctype %q body %q", rec.Code, ctype, body)
		}
		// Traversal guard: whatever the handler wrote must be under a
		// job's trace dir and carry a name the pattern accepts.
		files, _ := filepath.Glob(filepath.Join(s.cfg.DataDir, "jobs", "*", "trace", "*"))
		for _, path := range files {
			if name := filepath.Base(path); !validUploadName(name) {
				t.Fatalf("upload created illegally named file %q", path)
			}
		}
		tops, _ := filepath.Glob(filepath.Join(s.cfg.DataDir, "*"))
		for _, path := range tops {
			if filepath.Base(path) != "jobs" {
				t.Fatalf("upload escaped the jobs tree: %q", path)
			}
		}
	})
}
