package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// collectTornDir collects a workload through a FaultStore that tears the
// stream mid-write — the production failure this service must absorb: a
// client crashed or ran out of disk halfway through recording. The
// returned directory holds a damaged trace that fails validation.
func collectTornDir(t *testing.T, name string) string {
	t.Helper()
	clean := collectWorkloadDir(t, name)
	var total int64
	entries, _ := os.ReadDir(clean)
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}

	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ds, err := trace.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := trace.NewFaultStore(ds)
	fs.SetTornWrites(true)
	fs.FailWritesAfter(total/2, errors.New("client crashed mid-upload"))
	col := rt.New(fs, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	w.Run(&workloads.Ctx{RT: rtm, Space: memsim.NewSpace(nil), Threads: 4, Size: w.DefaultSize})
	_ = col.Close() // failure expected: the store is out of budget

	// The tear lands mid-Write by construction, but guard against the
	// unlucky cut on a record boundary: force damage if validation still
	// passes, so the test stays deterministic.
	if store, err := trace.NewDirStore(dir); err == nil {
		damaged := trace.Validate(store) != nil
		store.Close()
		if !damaged {
			logs, _ := filepath.Glob(filepath.Join(dir, "sword_*.log"))
			if len(logs) == 0 {
				t.Fatal("torn collection produced no logs")
			}
			data, err := os.ReadFile(logs[0])
			if err != nil || len(data) < 8 {
				t.Fatalf("torn log unusable: %v", err)
			}
			if err := os.WriteFile(logs[0], data[:len(data)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

// tryUpload is postUpload without t.Fatal, safe for goroutines.
func tryUpload(base, tenant, dir string) (Job, int, error) {
	var j Job
	var buf bytes.Buffer
	entries, err := os.ReadDir(dir)
	if err != nil {
		return j, 0, err
	}
	mw := multipart.NewWriter(&buf)
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return j, 0, err
		}
		fw, err := mw.CreateFormFile("file", e.Name())
		if err != nil {
			return j, 0, err
		}
		if _, err := fw.Write(data); err != nil {
			return j, 0, err
		}
	}
	if err := mw.Close(); err != nil {
		return j, 0, err
	}
	ctype := mw.FormDataContentType()
	req, err := http.NewRequest("POST", base+"/api/v1/jobs", &buf)
	if err != nil {
		return j, 0, err
	}
	req.Header.Set("Content-Type", ctype)
	if tenant != "" {
		req.Header.Set("X-Sword-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return j, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return j, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	return j, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&j)
}

// TestTornUploadsSalvageConcurrently is the graceful-degradation chaos
// test: torn and clean uploads land concurrently; every request is
// accepted (never 5xx), torn traces finish as partial salvage reports,
// clean ones match direct analysis.
func TestTornUploadsSalvageConcurrently(t *testing.T) {
	m := obs.New()
	s := newTestServer(t, WithObs(m), WithConcurrency(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	torn := collectTornDir(t, "plusplus-orig-yes")
	clean := collectWorkloadDir(t, "plusplus-orig-yes")
	wantRaces := directRaces(t, clean)

	const each = 3
	type result struct {
		j    Job
		torn bool
		code int
		err  error
	}
	results := make([]result, 2*each)
	var wg sync.WaitGroup
	for i := 0; i < 2*each; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir, isTorn := clean, false
			if i%2 == 0 {
				dir, isTorn = torn, true
			}
			j, code, err := tryUpload(ts.URL, fmt.Sprintf("tenant-%d", i), dir)
			results[i] = result{j, isTorn, code, err}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("upload %d: %v", i, r.err)
		}
		if r.code >= 500 {
			t.Fatalf("upload %d answered %d — torn uploads must degrade, not 5xx", i, r.code)
		}
		fin := waitTerminal(t, ts.URL, r.j.ID)
		code, body := reportJSON(t, ts.URL, r.j.ID)
		if r.torn {
			if fin.State != StatePartial || !fin.Salvage {
				t.Fatalf("torn upload %d finished %q salvage=%v, want partial salvage (error %q)",
					i, fin.State, fin.Salvage, fin.Error)
			}
			if code != http.StatusOK {
				t.Fatalf("torn upload %d report status %d, want 200", i, code)
			}
		} else {
			if fin.State != StateDone || fin.Races != wantRaces {
				t.Fatalf("clean upload %d finished %q with %d races, want done/%d",
					i, fin.State, fin.Races, wantRaces)
			}
			if code != http.StatusOK || body["races"] == nil {
				t.Fatalf("clean upload %d report status %d body %v", i, code, body)
			}
		}
	}
	if got := m.Counter("server.uploads_damaged").Load(); got != each {
		t.Fatalf("server.uploads_damaged = %d, want %d", got, each)
	}
	if got := m.Counter("server.jobs_salvaged").Load(); got != each {
		t.Fatalf("server.jobs_salvaged = %d, want %d", got, each)
	}
}

// TestDrainPersistsAndRecovers is the SIGTERM chaos test: drain mid-load
// loses no jobs — running work requeues, the queue persists, and a fresh
// server on the same DataDir finishes everything with correct reports.
func TestDrainPersistsAndRecovers(t *testing.T) {
	datadir := t.TempDir()
	dir := collectWorkloadDir(t, "c_md")
	want := directRaces(t, dir)

	s1, err := New(WithDataDir(datadir), WithConcurrency(1),
		WithRetryBackoff(5*time.Millisecond), WithJobTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	const jobs = 4
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = postUpload(t, ts1.URL, "", dir).ID
	}

	// SIGTERM: stop admitting, cancel/requeue in-flight, persist.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Admission is closed: new uploads answer 503, not enqueue-and-lose.
	_, code, err := tryUpload(ts1.URL, "", dir)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("upload into draining server: status %d (err %v), want 503", code, err)
	}
	ts1.Close()

	// No job may be lost or stuck running: terminal with a report, or
	// queued on disk for the next incarnation.
	queued := 0
	terminalAtDrain := map[string]bool{}
	s1.mu.Lock()
	for _, id := range ids {
		j := s1.jobs[id]
		switch {
		case j == nil:
			s1.mu.Unlock()
			t.Fatalf("job %s lost at drain", id)
		case j.terminal():
			terminalAtDrain[id] = true
		case j.State == StateQueued:
			queued++
		default:
			s1.mu.Unlock()
			t.Fatalf("job %s drained in state %q", id, j.State)
		}
	}
	s1.mu.Unlock()
	for _, id := range ids {
		if _, err := os.Stat(filepath.Join(datadir, "jobs", id, "job.json")); err != nil {
			t.Fatalf("job %s not persisted: %v", id, err)
		}
	}

	// Next incarnation: recovered jobs re-enqueue and finish.
	m2 := obs.New()
	s2, err := New(WithDataDir(datadir), WithObs(m2),
		WithRetryBackoff(5*time.Millisecond), WithJobTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Drain(ctx)
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if got := m2.Counter("server.jobs_recovered").Load(); got != uint64(queued) {
		t.Fatalf("server.jobs_recovered = %d, want %d", got, queued)
	}
	for _, id := range ids {
		fin := waitTerminal(t, ts2.URL, id)
		if fin.State != StateDone {
			t.Fatalf("job %s finished %q after restart (error %q)", id, fin.State, fin.Error)
		}
		if fin.Races != want {
			t.Fatalf("job %s reports %d races after restart, want %d", id, fin.Races, want)
		}
		code, body := reportJSON(t, ts2.URL, id)
		if code != http.StatusOK || body["races"] == nil {
			t.Fatalf("job %s report after restart: status %d", id, code)
		}
		if terminalAtDrain[id] {
			// Finished in the previous incarnation: the JSON report serves
			// from disk, the in-memory text rendering is gone.
			resp, err := http.Get(ts2.URL + "/api/v1/jobs/" + id + "/report?format=text")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusGone {
				t.Fatalf("text report across restart: status %d, want 410", resp.StatusCode)
			}
		}
	}
}

// TestServerFairnessGiantVsFlood asserts the starvation bound end to
// end: with one runner, a giant job queued first, and a flood of small
// jobs from another tenant, every small job starts before the giant —
// yet the giant still runs to completion.
func TestServerFairnessGiantVsFlood(t *testing.T) {
	s := newTestServer(t, WithConcurrency(1), WithQuantum(1024))
	dir := collectWorkloadDir(t, "critical-no")

	copyTrace := func(id string) string {
		jdir := filepath.Join(s.cfg.DataDir, "jobs", id)
		tdir := filepath.Join(jdir, "trace")
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			t.Fatal(err)
		}
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(tdir, e.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return jdir
	}
	mkJob := func(id, tenant string, bytes int64) *Job {
		return &Job{
			ID: id, Tenant: tenant, Bytes: bytes,
			MemBudget: s.cfg.JobMemBudget, CreatedAt: time.Now(),
			dir: copyTrace(id),
		}
	}

	// Enqueue everything under one lock so the single runner sees the
	// full queue before its first dispatch: the giant first, then the
	// flood it must not starve.
	giant := mkJob("giant0", "heavy", 1<<20)
	smalls := make([]*Job, 24)
	for i := range smalls {
		smalls[i] = mkJob(fmt.Sprintf("small%02d", i), "light", 512)
	}
	s.mu.Lock()
	s.jobs[giant.ID] = giant
	s.enqueueLocked(giant)
	for _, j := range smalls {
		s.jobs[j.ID] = j
		s.enqueueLocked(j)
	}
	s.mu.Unlock()

	deadline := time.Now().Add(60 * time.Second)
	for {
		s.mu.Lock()
		done := giant.terminal()
		for _, j := range smalls {
			done = done && j.terminal()
		}
		s.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if giant.State != StateDone {
		t.Fatalf("giant finished %q (error %q)", giant.State, giant.Error)
	}
	for _, j := range smalls {
		if j.State != StateDone {
			t.Fatalf("small job %s finished %q", j.ID, j.State)
		}
		if !j.StartedAt.Before(giant.StartedAt) {
			t.Fatalf("small job %s started %v, after the giant's %v — starved",
				j.ID, j.StartedAt, giant.StartedAt)
		}
	}
}

// TestMemGuardCancelsLargestRunningJob drives the heap guard directly: a
// server whose budget any heap exceeds must cancel the largest running
// job with the mem-guard cause — the shed is a smaller retry, not an
// OOM.
func TestMemGuardCancelsLargestRunningJob(t *testing.T) {
	s := newTestServer(t, WithMemBudget(1)) // any live heap trips the guard
	ctxSmall, cancelSmall := context.WithCancelCause(context.Background())
	defer cancelSmall(nil)
	ctxBig, cancelBig := context.WithCancelCause(context.Background())
	defer cancelBig(nil)

	mk := func(id string, bytes int64, cancel context.CancelCauseFunc) *Job {
		jdir := filepath.Join(s.cfg.DataDir, "jobs", id)
		if err := os.MkdirAll(jdir, 0o755); err != nil {
			t.Fatal(err)
		}
		return &Job{ID: id, Tenant: "t", State: StateRunning, Bytes: bytes,
			CreatedAt: time.Now(), dir: jdir, cancel: cancel}
	}
	s.mu.Lock()
	s.jobs["small"] = mk("small", 10, cancelSmall)
	s.jobs["big"] = mk("big", 1000, cancelBig)
	s.mu.Unlock()

	select {
	case <-ctxBig.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("guard never canceled the big job")
	}
	if cause := context.Cause(ctxBig); !errors.Is(cause, errMemGuard) {
		t.Fatalf("big job canceled with cause %v, want errMemGuard", cause)
	}
	if ctxSmall.Err() != nil {
		t.Fatalf("guard canceled the small job too: %v", context.Cause(ctxSmall))
	}

	// Clear the fakes so the cleanup drain doesn't try to persist them
	// as running work.
	s.mu.Lock()
	s.jobs["small"].State = StateCanceled
	s.jobs["big"].State = StateCanceled
	s.jobs["small"].cancel = nil
	s.jobs["big"].cancel = nil
	s.mu.Unlock()
}
