package server

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/jobs                      multipart trace upload -> queued job
//	GET    /api/v1/jobs[?tenant=t]           list jobs
//	GET    /api/v1/jobs/{id}                 job status
//	GET    /api/v1/jobs/{id}/report[?format=text]  finished job's report
//	DELETE /api/v1/jobs/{id}                 cancel a queued or running job
//	POST   /api/v1/uploads                   start a streamed upload session
//	PUT    /api/v1/uploads/{id}/files/{name} stream one trace file
//	POST   /api/v1/uploads/{id}/commit       turn the session into a job
//	DELETE /api/v1/uploads/{id}              abort the session
//	GET    /api/v1/metrics                   live obs snapshot
//	GET    /healthz                          liveness + drain state
//
// The tenant is taken from the X-Sword-Tenant header (multipart uploads
// may use the "tenant" form field instead); absent means the "default"
// tenant. See docs/FORMAT.md ("HTTP analysis service").
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleMultipart)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /api/v1/uploads", s.handleUploadStart)
	mux.HandleFunc("PUT /api/v1/uploads/{id}/files/{name}", s.handleUploadFile)
	mux.HandleFunc("POST /api/v1/uploads/{id}/commit", s.handleUploadCommit)
	mux.HandleFunc("DELETE /api/v1/uploads/{id}", s.handleUploadAbort)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Sword-Tenant"); t != "" {
		return t
	}
	return "default"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// handleMultipart accepts a whole trace in one multipart POST: each part
// is one sword_* file. Admission and the byte budgets apply while the
// body streams, so an oversized upload is cut mid-flight with 429, not
// after it landed.
func (s *Server) handleMultipart(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	mr, err := r.MultipartReader()
	if err != nil {
		http.Error(w, "multipart body required: "+err.Error(), http.StatusBadRequest)
		return
	}
	u, err := s.newUpload(tenant)
	if err != nil {
		shed(w, err)
		return
	}
	files := 0
	for {
		part, err := mr.NextPart()
		if err != nil {
			break
		}
		if part.FormName() == "tenant" {
			// Legacy clients send the tenant as a form field; it must
			// arrive before any file part to take effect.
			var buf [64]byte
			if n, _ := part.Read(buf[:]); n > 0 && files == 0 {
				s.retenant(u, string(buf[:n]))
			}
			continue
		}
		if part.FileName() == "" {
			continue
		}
		if err := s.saveFile(u, part.FileName(), part); err != nil {
			s.abortUpload(u)
			shed(w, err)
			return
		}
		files++
	}
	if files == 0 {
		s.abortUpload(u)
		http.Error(w, "upload carried no trace files", http.StatusBadRequest)
		return
	}
	j, err := s.commitUpload(u)
	if err != nil {
		shed(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// retenant moves an in-flight upload session to a different tenant
// (multipart "tenant" form field). The session has no bytes yet, so only
// the live-job slot moves.
func (s *Server) retenant(u *uploadSession, tenant string) {
	if tenant == "" || tenant == u.tenant {
		return
	}
	// Admission must hold under the new identity too.
	if err := s.admitJob(tenant); err != nil {
		return // keep the original tenant rather than failing the upload
	}
	s.releaseSlot(u.tenant)
	s.mu.Lock()
	u.tenant = tenant // chargeSession reads it under the same lock
	s.mu.Unlock()
}

func (s *Server) handleUploadStart(w http.ResponseWriter, r *http.Request) {
	u, err := s.newUpload(tenantOf(r))
	if err != nil {
		shed(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": u.id, "tenant": u.tenant})
}

func (s *Server) lookupUpload(id string) *uploadSession {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploads[id]
}

func (s *Server) handleUploadFile(w http.ResponseWriter, r *http.Request) {
	u := s.lookupUpload(r.PathValue("id"))
	if u == nil {
		http.Error(w, "no such upload session", http.StatusNotFound)
		return
	}
	if err := s.saveFile(u, r.PathValue("name"), r.Body); err != nil {
		s.abortUpload(u)
		shed(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUploadCommit(w http.ResponseWriter, r *http.Request) {
	u := s.lookupUpload(r.PathValue("id"))
	if u == nil {
		http.Error(w, "no such upload session", http.StatusNotFound)
		return
	}
	j, err := s.commitUpload(u)
	if err != nil {
		shed(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleUploadAbort(w http.ResponseWriter, r *http.Request) {
	u := s.lookupUpload(r.PathValue("id"))
	if u == nil {
		http.Error(w, "no such upload session", http.StatusNotFound)
		return
	}
	s.abortUpload(u)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) lookupJob(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant == "" || j.Tenant == tenant {
			out = append(out, *j) // value copy: safe to encode unlocked
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].CreatedAt.Before(out[k].CreatedAt) })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		// Live lane: an id still in the upload phase serves the online
		// analyzer's growing snapshot — races found so far in the trace
		// streamed so far. The committed job's report supersedes it.
		if u := s.lookupUpload(r.PathValue("id")); u != nil && u.live != nil {
			rep := u.live.Snapshot()
			rep.Note("live: upload in progress; this report is a partial preview")
			w.Header().Set("X-Sword-Live", "1")
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_, _ = w.Write([]byte(rep.String()))
				return
			}
			writeJSON(w, http.StatusOK, rep)
			return
		}
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	state, rep := j.State, j.rep
	s.mu.Unlock()
	switch state {
	case StateDone, StatePartial:
	case StateFailed, StateCanceled:
		http.Error(w, "job "+state+": no report", http.StatusConflict)
		return
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "job "+state+": report not ready", http.StatusConflict)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		if rep == nil {
			http.Error(w, "text report unavailable after restart; request JSON", http.StatusGone)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(rep.String()))
		return
	}
	data, err := j.loadReport()
	if err != nil {
		http.Error(w, "report lost: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if !s.cancelJob(j) {
		http.Error(w, "job already finished", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// handleMetrics serves the live obs snapshot — every counter, gauge, and
// timer the server, analyzer, and dist layers recorded, sorted by name.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	state := "ok"
	if s.draining {
		state = "draining"
	}
	depth := s.sched.depth
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      state,
		"queue_depth": depth,
		"time":        time.Now().UTC().Format(time.RFC3339),
	})
}
