package server

import (
	"runtime"
	"time"
)

// memGuard samples the Go heap and, when it exceeds the configured
// server-wide budget, cancels the largest running job — the one whose
// retry under a halved analyzer budget buys back the most memory. The
// shed is graceful by construction: the job requeues and retries smaller
// instead of the process OOMing, and the admission byte budget upstream
// keeps the guard a backstop rather than the primary control.
func (s *Server) memGuard() {
	defer close(s.guardDone)
	if s.cfg.MemBudget <= 0 {
		<-s.guardStop
		return
	}
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-s.guardStop:
			return
		case <-t.C:
		}
		runtime.ReadMemStats(&ms)
		heap := int64(ms.HeapAlloc)
		s.m.Gauge("server.heap_peak").SetMax(heap)
		if heap <= s.cfg.MemBudget {
			continue
		}
		// Over budget: give the collector one chance to disagree before
		// killing work — HeapAlloc includes garbage not yet swept.
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if heap = int64(ms.HeapAlloc); heap <= s.cfg.MemBudget {
			continue
		}
		s.mu.Lock()
		var victim *Job
		for _, j := range s.jobs {
			if j.State == StateRunning && j.cancel != nil &&
				(victim == nil || j.Bytes > victim.Bytes) {
				victim = j
			}
		}
		if victim != nil {
			victim.cancel(errMemGuard)
		}
		s.mu.Unlock()
	}
}
