package server

import (
	"os"
	"runtime"
	"time"
)

// memGuard is the service's housekeeping loop. Every tick it reaps
// abandoned upload sessions and expired terminal jobs, and — when a
// server-wide heap budget is configured — samples the Go heap and, on
// overrun, cancels the largest running job: the one whose retry under a
// halved analyzer budget buys back the most memory. The shed is graceful
// by construction: the job requeues and retries smaller instead of the
// process OOMing, and the admission byte budget upstream keeps the guard
// a backstop rather than the primary control.
func (s *Server) memGuard() {
	defer close(s.guardDone)
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	var ms runtime.MemStats
	for {
		select {
		case <-s.guardStop:
			return
		case <-t.C:
		}
		s.reap(time.Now())
		if s.cfg.MemBudget <= 0 {
			continue
		}
		runtime.ReadMemStats(&ms)
		heap := int64(ms.HeapAlloc)
		s.m.Gauge("server.heap_peak").SetMax(heap)
		if heap <= s.cfg.MemBudget {
			continue
		}
		// Over budget: give the collector one chance to disagree before
		// killing work — HeapAlloc includes garbage not yet swept.
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if heap = int64(ms.HeapAlloc); heap <= s.cfg.MemBudget {
			continue
		}
		s.mu.Lock()
		var victim *Job
		for _, j := range s.jobs {
			if j.State == StateRunning && j.cancel != nil &&
				(victim == nil || j.Bytes > victim.Bytes) {
				victim = j
			}
		}
		if victim != nil {
			victim.cancel(errMemGuard)
		}
		s.mu.Unlock()
	}
}

// reap aborts upload sessions idle past UploadTimeout — a client that
// POSTs a session and walks away cannot hold a tenant job slot and
// charged bytes until restart — and prunes terminal jobs older than
// JobTTL from memory and DataDir, bounding an always-on server's growth
// as jobs complete.
func (s *Server) reap(now time.Time) {
	s.mu.Lock()
	var stale []*uploadSession
	for _, u := range s.uploads {
		if now.Sub(u.lastActive) > s.cfg.UploadTimeout {
			stale = append(stale, u)
		}
	}
	var prune []*Job
	for id, j := range s.jobs {
		if j.terminal() && !j.FinishedAt.IsZero() && now.Sub(j.FinishedAt) > s.cfg.JobTTL {
			delete(s.jobs, id)
			prune = append(prune, j)
		}
	}
	s.mu.Unlock()
	for _, u := range stale {
		// abortUpload re-checks liveness, so racing a late commit or an
		// explicit client abort refunds once, not twice.
		s.abortUpload(u)
		s.m.Counter("server.uploads_expired").Inc()
	}
	for _, j := range prune {
		os.RemoveAll(j.dir)
		s.m.Counter("server.jobs_pruned").Inc()
	}
}
