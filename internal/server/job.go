package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sword/internal/core"
	"sword/internal/dist"
	"sword/internal/report"
	"sword/internal/trace"
)

// Job states. Terminal states are done, partial, failed, and canceled;
// queued and running jobs re-enqueue across a server restart.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"    // clean analysis, full coverage
	StatePartial  = "partial" // salvage-mode analysis of a damaged upload
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one analysis of one uploaded trace. The exported fields are the
// persisted record (job.json) and the status JSON the API serves.
type Job struct {
	ID         string    `json:"id"`
	Tenant     string    `json:"tenant"`
	State      string    `json:"state"`
	Bytes      int64     `json:"bytes"`             // admitted upload size
	Salvage    bool      `json:"salvage,omitempty"` // damaged upload: graceful-degradation analysis
	Attempts   int       `json:"attempts"`
	MemBudget  int64     `json:"mem_budget"` // current per-attempt analyzer budget
	Error      string    `json:"error,omitempty"`
	Races      int       `json:"races,omitempty"`
	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	RetryAt    time.Time `json:"retry_at,omitzero"` // backoff gate; zero = ready

	dir    string                  // DataDir/jobs/<id>
	cancel context.CancelCauseFunc // non-nil while running
	rep    *report.Report          // in-memory once finished or loaded
}

// Cancellation causes the runner tells apart: draining requeues without
// burning an attempt, a heap-guard trip retries under half the budget,
// an explicit cancel is terminal.
var (
	errDraining = errors.New("server draining")
	errMemGuard = errors.New("server heap budget exceeded")
	errCanceled = errors.New("canceled by client")
)

func (j *Job) traceDir() string { return filepath.Join(j.dir, "trace") }
func (j *Job) jobPath() string  { return filepath.Join(j.dir, "job.json") }
func (j *Job) repPath() string  { return filepath.Join(j.dir, "report.json") }
func (j *Job) terminal() bool {
	switch j.State {
	case StateDone, StatePartial, StateFailed, StateCanceled:
		return true
	}
	return false
}

// persistJob writes the job record atomically (rename over the old one),
// so a crash mid-write cannot leave a torn record. Caller always holds
// s.mu: job fields are only read or written under it.
func (s *Server) persistJob(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	tmp := j.jobPath() + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, j.jobPath())
}

// recover scans DataDir/jobs at startup: terminal jobs are listed and
// serve their persisted reports; queued and running jobs (a crash or
// drain interrupted them) re-enqueue in creation order — the queue
// persistence Drain relies on.
func (s *Server) recover() error {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var requeue []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		j := &Job{dir: filepath.Join(root, e.Name())}
		data, err := os.ReadFile(j.jobPath())
		if err != nil || json.Unmarshal(data, j) != nil || j.ID != e.Name() {
			// Half-created directory: an upload session the previous
			// incarnation never committed. Nothing will ever claim it, so
			// reclaim the disk instead of accumulating orphans forever.
			os.RemoveAll(j.dir)
			continue
		}
		s.jobs[j.ID] = j
		if j.terminal() {
			continue
		}
		// An interrupted run restarts from queued; its attempt count and
		// reduced memory budget carry over.
		j.State = StateQueued
		j.RetryAt = time.Time{}
		s.tenantLive[j.Tenant]++
		s.tenantBytes[j.Tenant] += j.Bytes
		s.usedBytes += j.Bytes
		requeue = append(requeue, j)
	}
	sort.Slice(requeue, func(i, k int) bool { return requeue[i].CreatedAt.Before(requeue[k].CreatedAt) })
	for _, j := range requeue {
		s.enqueueLocked(j)
		s.m.Counter("server.jobs_recovered").Inc()
	}
	return nil
}

// runner is one worker of the pool: pull a job under the fairness
// scheduler, run one attempt, decide its fate.
func (s *Server) runner() {
	defer s.runnersWG.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runAttempt(j)
	}
}

// runAttempt executes one bounded attempt of j and routes the outcome:
// success finishes the job, drain requeues it for the next incarnation,
// a heap-guard trip halves the budget and retries, a damaged trace falls
// back to salvage mode, and anything else retries under the dist
// backoff discipline until MaxAttempts fails it loud.
func (s *Server) runAttempt(j *Job) {
	ctx, cancel := context.WithCancelCause(context.Background())
	tctx, tcancel := context.WithTimeout(ctx, s.cfg.JobTimeout)
	s.mu.Lock()
	if s.closed {
		// Drain won the race before this attempt started: back to the
		// queue it goes, to be persisted.
		j.State = StateQueued
		s.mu.Unlock()
		tcancel()
		cancel(nil)
		return
	}
	j.cancel = cancel
	j.Attempts++
	_ = s.persistJob(j)
	salvage, memBudget := j.Salvage, j.MemBudget
	s.mu.Unlock()

	rep, err := s.analyze(tctx, j, salvage, memBudget)
	tcancel()
	cause := context.Cause(ctx)
	cancel(nil)

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		s.finishJob(j, rep, nil)
	case errors.Is(cause, errDraining):
		j.Attempts-- // drain is the server's fault, not the job's
		j.State = StateQueued
		j.RetryAt = time.Time{}
		s.sched.push(j)
		s.m.Counter("server.jobs_requeued").Inc()
	case errors.Is(cause, errCanceled):
		s.finishJob(j, nil, errCanceled)
	case errors.Is(cause, errMemGuard):
		j.MemBudget = max(j.MemBudget/2, 1<<20)
		s.m.Counter("server.mem_cancels").Inc()
		s.retryOrFail(j, fmt.Errorf("heap guard canceled attempt %d", j.Attempts))
	case !j.Salvage && tctx.Err() == nil:
		// A strict-mode analysis error on an upload that passed admission
		// validation: the trace is worse than it looked. Degrade to
		// salvage instead of failing — the graceful-degradation contract.
		j.Salvage = true
		s.m.Counter("server.jobs_salvage_fallback").Inc()
		s.retryOrFail(j, err)
	default:
		s.retryOrFail(j, err)
	}
}

// retryOrFail requeues j under exponential backoff, or fails it loud
// once the attempt budget is spent. Caller holds s.mu.
func (s *Server) retryOrFail(j *Job, err error) {
	if j.Attempts >= s.cfg.MaxAttempts {
		s.finishJob(j, nil, fmt.Errorf("attempt %d/%d: %w", j.Attempts, s.cfg.MaxAttempts, err))
		return
	}
	j.Error = err.Error() // surfaced in status while the retry waits
	j.State = StateQueued
	j.RetryAt = time.Now().Add(s.cfg.RetryBackoff << min(j.Attempts-1, 16))
	s.sched.push(j)
	s.m.Counter("server.jobs_retried").Inc()
	s.m.Gauge("server.queue_depth").Set(int64(s.sched.depth))
	s.cond.Broadcast() // a timed waiter may need the new, earlier wake
	_ = s.persistJob(j)
}

// finishJob moves j to its terminal state, persists the report, releases
// the job's admission charge, and deletes the uploaded trace (the report
// is what the API serves from here on). Caller holds s.mu.
func (s *Server) finishJob(j *Job, rep *report.Report, err error) {
	j.FinishedAt = time.Now()
	j.RetryAt = time.Time{}
	switch {
	case err == nil && rep.Stats.Partial():
		j.State = StatePartial
		j.Error = ""
		s.m.Counter("server.jobs_salvaged").Inc()
	case err == nil:
		j.State = StateDone
		j.Error = ""
		s.m.Counter("server.jobs_done").Inc()
	case errors.Is(err, errCanceled):
		j.State = StateCanceled
		j.Error = err.Error()
		s.m.Counter("server.jobs_canceled").Inc()
	default:
		j.State = StateFailed
		j.Error = err.Error()
		s.m.Counter("server.jobs_failed").Inc()
	}
	if rep != nil {
		j.rep = rep
		j.Races = rep.Len()
		if data, merr := json.Marshal(rep); merr == nil {
			_ = os.WriteFile(j.repPath(), append(data, '\n'), 0o644)
		}
	}
	s.releaseLocked(j)
	os.RemoveAll(j.traceDir())
	_ = s.persistJob(j)
}

// releaseLocked returns j's admission charge to the budgets. Caller
// holds s.mu.
func (s *Server) releaseLocked(j *Job) {
	s.refundLocked(j.Tenant, j.Bytes)
	s.m.Counter("server.bytes_released").Add(uint64(j.Bytes))
}

// analyze runs one attempt's actual analysis. Clean uploads fan out to
// the dist worker pool (adaptive: small traces analyze inline); damaged
// uploads run single-process salvage analysis, which needs the full
// stream over every log that distribution avoids. salvage and memBudget
// are snapshots taken under s.mu — the job itself is not touched here.
func (s *Server) analyze(ctx context.Context, j *Job, salvage bool, memBudget int64) (*report.Report, error) {
	store, err := trace.NewDirStore(j.traceDir())
	if err != nil {
		return nil, err
	}
	defer store.Close()
	ccfg := core.Config{
		Workers:      s.cfg.Workers,
		MemoryBudget: memBudget,
		Salvage:      salvage,
		Obs:          s.m,
	}
	if salvage {
		return core.New(store, ccfg).AnalyzeContext(ctx)
	}
	return dist.Local(ctx, store, 0, dist.WithCore(ccfg), dist.WithObs(s.m))
}

// cancelJob cancels a job by id on behalf of a client: queued jobs leave
// the queue immediately, running jobs abort at the next analysis
// checkpoint. Terminal jobs are left alone (false).
func (s *Server) cancelJob(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.State {
	case StateQueued:
		if s.sched.remove(j) {
			s.m.Gauge("server.queue_depth").Set(int64(s.sched.depth))
			s.finishJob(j, nil, errCanceled)
			return true
		}
		return false
	case StateRunning:
		if j.cancel != nil {
			j.cancel(errCanceled)
		}
		return true
	}
	return false
}

// loadReport returns the job's report JSON, from memory or disk.
func (j *Job) loadReport() ([]byte, error) {
	if j.rep != nil {
		return json.Marshal(j.rep)
	}
	return os.ReadFile(j.repPath())
}
