package server

import (
	"context"
	"path/filepath"
	"time"

	"sword/internal/core"
	"sword/internal/stream"
	"sword/internal/trace"
)

// The live lane: every streamed upload session gets an online analyzer
// tailing its trace directory while the files arrive, so
// GET /api/v1/jobs/{id}/report answers with a growing partial report
// before the session is even committed — races surface while the client
// is still uploading (or, for a client streaming its trace as it runs,
// while the traced program executes). The lane is advisory: the committed
// job's analysis remains the authoritative report, and the live analyzer
// is cancelled the moment the session commits or aborts.

// livePollInterval is the tail cadence of upload-session analyzers — much
// lazier than an interactive swordwatch, since a server may host many
// concurrent sessions.
const livePollInterval = 25 * time.Millisecond

// startLive attaches an online analyzer to a fresh upload session. Called
// before the session is published to s.uploads, so the fields need no
// lock. Best-effort: a failure just means no live lane for this session.
func (s *Server) startLive(u *uploadSession) {
	store, err := trace.NewDirStore(filepath.Join(u.dir, "trace"))
	if err != nil {
		return
	}
	an := stream.New(store, stream.Config{
		Core: core.Config{
			Workers:      s.cfg.Workers,
			MemoryBudget: s.cfg.JobMemBudget,
			Obs:          s.m,
		},
		PollInterval: livePollInterval,
		Obs:          s.m,
	})
	ctx, cancel := context.WithCancel(context.Background())
	u.live = an
	u.liveStop = cancel
	u.liveDone = make(chan struct{})
	s.m.Counter("server.live_sessions").Inc()
	go func() {
		defer close(u.liveDone)
		defer store.Close()
		// The result is deliberately discarded: the live lane only serves
		// snapshots; the committed job produces the authoritative report.
		_, _ = an.Run(ctx)
	}()
}

// stopLive cancels the session's live analyzer and waits for it to let go
// of the trace files. Safe on a session without a live lane, and safe to
// call from commit, abort, and drain concurrently (first caller wins and
// the rest return after the analyzer has stopped).
func (u *uploadSession) stopLive() {
	u.liveOnce.Do(func() {
		if u.liveStop == nil {
			return
		}
		u.liveStop()
		<-u.liveDone
	})
}
