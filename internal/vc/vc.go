// Package vc implements the vector clocks underlying the ARCHER/TSan
// baseline's happens-before race detection.
package vc

// Clock is a vector clock indexed by thread slot. The zero value is a
// clock at zero everywhere.
type Clock struct {
	v []uint64
}

// Get returns component i.
func (c *Clock) Get(i int) uint64 {
	if i < len(c.v) {
		return c.v[i]
	}
	return 0
}

// Tick increments component i.
func (c *Clock) Tick(i int) {
	c.grow(i + 1)
	c.v[i]++
}

// Set assigns component i.
func (c *Clock) Set(i int, val uint64) {
	c.grow(i + 1)
	c.v[i] = val
}

// Join raises every component to at least o's value.
func (c *Clock) Join(o *Clock) {
	c.grow(len(o.v))
	for i, val := range o.v {
		if val > c.v[i] {
			c.v[i] = val
		}
	}
}

// Copy returns an independent copy.
func (c *Clock) Copy() *Clock {
	out := &Clock{v: make([]uint64, len(c.v))}
	copy(out.v, c.v)
	return out
}

// HappensBefore reports whether an event stamped (slot, clock) is ordered
// before the point this clock represents: clock ≤ c[slot].
func (c *Clock) HappensBefore(slot int, clock uint64) bool {
	return clock <= c.Get(slot)
}

// Len returns the number of tracked components.
func (c *Clock) Len() int { return len(c.v) }

func (c *Clock) grow(n int) {
	if n <= len(c.v) {
		return
	}
	if n <= cap(c.v) {
		c.v = c.v[:n]
		return
	}
	nv := make([]uint64, n, max(n, 2*cap(c.v)))
	copy(nv, c.v)
	c.v = nv
}
