package vc

import "testing"

func TestZeroClock(t *testing.T) {
	var c Clock
	if c.Get(0) != 0 || c.Get(100) != 0 || c.Len() != 0 {
		t.Fatal("zero clock not zero")
	}
	if !c.HappensBefore(3, 0) {
		t.Fatal("epoch 0 must happen-before anything")
	}
	if c.HappensBefore(3, 1) {
		t.Fatal("epoch 1 not ordered under zero clock")
	}
}

func TestTickSetGet(t *testing.T) {
	var c Clock
	c.Tick(2)
	c.Tick(2)
	c.Set(5, 7)
	if c.Get(2) != 2 || c.Get(5) != 7 || c.Get(0) != 0 {
		t.Fatalf("clock state: %v %v %v", c.Get(2), c.Get(5), c.Get(0))
	}
	if c.Len() != 6 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestJoinElementwiseMax(t *testing.T) {
	var a, b Clock
	a.Set(0, 5)
	a.Set(1, 1)
	b.Set(1, 9)
	b.Set(3, 2)
	a.Join(&b)
	for i, want := range []uint64{5, 9, 0, 2} {
		if a.Get(i) != want {
			t.Fatalf("component %d = %d, want %d", i, a.Get(i), want)
		}
	}
	// Join must not mutate the source.
	if b.Get(0) != 0 {
		t.Fatal("Join mutated source")
	}
}

func TestCopyIndependent(t *testing.T) {
	var a Clock
	a.Set(1, 3)
	b := a.Copy()
	b.Tick(1)
	if a.Get(1) != 3 || b.Get(1) != 4 {
		t.Fatal("Copy not independent")
	}
}

func TestHappensBefore(t *testing.T) {
	var a Clock
	a.Set(2, 10)
	if !a.HappensBefore(2, 10) || !a.HappensBefore(2, 9) {
		t.Fatal("ordered epochs not detected")
	}
	if a.HappensBefore(2, 11) || a.HappensBefore(3, 1) {
		t.Fatal("unordered epochs claimed ordered")
	}
}

func TestGrowPreservesValues(t *testing.T) {
	var a Clock
	for i := 0; i < 100; i++ {
		a.Set(i, uint64(i)*2)
	}
	for i := 0; i < 100; i++ {
		if a.Get(i) != uint64(i)*2 {
			t.Fatalf("component %d lost after growth", i)
		}
	}
}
