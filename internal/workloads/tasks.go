package workloads

import "sword/internal/omp"

// Task-based kernels exercising the tasking extension (the paper's §III-C
// future work, implemented in this reproduction). Named after the
// DataRaceBench task benchmarks. Both tools support tasks here: archer
// through spawn/taskwait happens-before edges, sword through task
// concurrency windows in the offline analysis.

func init() {
	Register(Workload{
		Name:        "taskdep1-orig-yes",
		Suite:       "drb",
		Description: "task writes a shared value the continuation reads before any taskwait",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 64,
		Run: func(ctx *Ctx) {
			x := mustF64(ctx.Space, 1)
			out := mustF64(ctx.Space, ctx.Threads*8)
			pcT := omp.Site("drb/taskdep1.c:task-write")
			pcC := omp.Site("drb/taskdep1.c:continuation-read")
			seq := omp.NewSequencer()
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Pinned single-file schedule so the happens-before tool
				// sees a deterministic interleaving of the racy pair.
				seq.Do(th.ID(), func() {
					if th.ID() == 0 {
						th.Task(func(tt *omp.Thread) {
							tt.StoreF64(x, 0, 1, pcT)
						})
						// The missing taskwait: read races with the task.
						th.StoreF64(out, 0, th.LoadF64(x, 0, pcC), pcC)
						th.TaskWait()
					}
				})
			})
		},
	})

	Register(Workload{
		Name:        "taskwait-orig-no",
		Suite:       "drb",
		Description: "task result consumed only after taskwait: race-free",
		DefaultSize: 64,
		Run: func(ctx *Ctx) {
			x := mustF64(ctx.Space, ctx.Threads*8)
			pcT := omp.Site("drb/taskwait.c:task-write")
			pcC := omp.Site("drb/taskwait.c:after-wait-read")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				slot := th.ID() * 8
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(x, slot, float64(slot), pcT)
				})
				th.TaskWait()
				_ = th.LoadF64(x, slot, pcC)
			})
		},
	})

	Register(Workload{
		Name:        "taskfor-orig-no",
		Suite:       "drb",
		Description: "fan-out of tasks over disjoint chunks, joined at the barrier",
		DefaultSize: 256,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			b := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("drb/taskfor.c:chunk-write")
			pcR := omp.Site("drb/taskfor.c:after-barrier-read")
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.Master(func() {
					const chunk = 32
					for lo := 0; lo < n; lo += chunk {
						lo := lo
						th.Task(func(tt *omp.Thread) {
							for i := lo; i < min(lo+chunk, n); i++ {
								tt.StoreF64(a, i, float64(i)*0.5, pcW)
							}
						})
					}
				})
				th.Barrier() // implicit task join
				th.For(0, n, func(i int) {
					j := (i + n/2) % n
					th.StoreF64(b, i, th.LoadF64(a, j, pcR), pcR)
				})
			})
		},
	})

	Register(Workload{
		Name:        "tasksibling-orig-yes",
		Suite:       "drb",
		Description: "two unwaited sibling tasks update the same accumulator",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 16,
		Run: func(ctx *Ctx) {
			x := mustF64(ctx.Space, 1)
			pc1 := omp.Site("drb/tasksibling.c:first-task")
			pc2 := omp.Site("drb/tasksibling.c:second-task")
			// Schedule pinning: both tasks are in flight simultaneously (as
			// on the paper's testbed), so the happens-before tool sees two
			// live threads rather than a recycled one.
			overlap := NewInvisibleBarrier(2)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				if th.ID() == 0 {
					th.Task(func(tt *omp.Thread) {
						overlap.Wait()
						tt.StoreF64(x, 0, 1, pc1)
					})
					th.Task(func(tt *omp.Thread) {
						overlap.Wait()
						tt.StoreF64(x, 0, 2, pc2)
					})
					th.TaskWait()
				}
			})
		},
	})
}
