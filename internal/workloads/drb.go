package workloads

import (
	"sword/internal/omp"
)

// DataRaceBench-style micro kernels (§IV-A). Racy kernels carry "-yes",
// race-free controls "-no", following the original suite's naming. The
// indirectaccess kernels document races that do not manifest on the
// executed control path — every dynamic tool misses them, as the paper
// reports.

func init() {
	registerDRBYes()
	registerDRBNo()
}

func registerDRBYes() {
	Register(Workload{
		Name:        "antidep1-orig-yes",
		Suite:       "drb",
		Description: "loop-carried anti-dependence: a[i] = a[i+1] + 1",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1000,
		Footprint:   func(size int) uint64 { return uint64(size) * 8 },
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pcR := omp.Site("drb/antidep1.c:read-a[i+1]")
			pcW := omp.Site("drb/antidep1.c:write-a[i]")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, ctx.Size-1, func(i int) {
					v := th.LoadF64(a, i+1, pcR) // next thread's chunk at the boundary
					th.StoreF64(a, i, v+1, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "outputdep-orig-yes",
		Suite:       "drb",
		Description: "output dependence: unsynchronized write-write on a shared scalar",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 100,
		Run: func(ctx *Ctx) {
			x := mustF64(ctx.Space, 1)
			a := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("drb/outputdep.c:x=last")
			pcA := omp.Site("drb/outputdep.c:a[i]")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, ctx.Size, func(i int) {
					th.StoreF64(a, i, float64(i), pcA)
				})
				raceWW(th, x, 0, pcW)
			})
		},
	})

	Register(Workload{
		Name:        "plusplus-orig-yes",
		Suite:       "drb",
		Description: "counter++ without protection; the documented race plus the extra undocumented pair every tool reports",
		Documented:  1,
		Expect:      Expected{Archer: 2, ArcherLow: 2, Sword: 2},
		DefaultSize: 1,
		Run: func(ctx *Ctx) {
			counter := mustI64(ctx.Space, 1)
			pcR := omp.Site("drb/plusplus.c:read-counter")
			pcW := omp.Site("drb/plusplus.c:write-counter")
			seq := omp.NewSequencer()
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Pinned single-file schedule: every increment sees the
				// previous thread's write cell, so both the read-write and
				// the write-write pairs surface in every tool.
				seq.Do(th.ID(), func() {
					v := th.LoadI64(counter, 0, pcR)
					th.StoreI64(counter, 0, v+1, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "lostupdate-orig-yes",
		Suite:       "drb",
		Description: "read-modify-write on a shared accumulator without atomics",
		Documented:  1,
		Expect:      Expected{Archer: 2, ArcherLow: 2, Sword: 2},
		DefaultSize: 64,
		Run: func(ctx *Ctx) {
			sum := mustF64(ctx.Space, 1)
			data := mustF64(ctx.Space, ctx.Size)
			pcR := omp.Site("drb/lostupdate.c:read-sum")
			pcW := omp.Site("drb/lostupdate.c:write-sum")
			pcD := omp.Site("drb/lostupdate.c:data")
			seq := omp.NewSequencer()
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				local := 0.0
				th.ForNoWait(0, ctx.Size, func(i int) {
					local += th.LoadF64(data, i, pcD)
				})
				seq.Do(th.ID(), func() {
					v := th.LoadF64(sum, 0, pcR)
					th.StoreF64(sum, 0, v+local, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "nowait-orig-yes",
		Suite:       "drb",
		Description: "missing barrier between dependent loops (nowait); ARCHER's shadow cells lose the writes to same-thread re-reads",
		Documented:  1,
		Expect:      Expected{Archer: 0, ArcherLow: 0, Sword: 1},
		DefaultSize: 512,
		Footprint:   func(size int) uint64 { return uint64(size) * 24 },
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			b := mustF64(ctx.Space, ctx.Size)
			c := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("drb/nowait.c:write-a")
			pcSelf := omp.Site("drb/nowait.c:reread-a")
			pcB := omp.Site("drb/nowait.c:read-b")
			pcR := omp.Site("drb/nowait.c:read-a-shifted")
			pcC := omp.Site("drb/nowait.c:write-c")
			inv := NewInvisibleBarrier(ctx.Threads)
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{NoWait: true}, func(i int) {
					v := th.LoadF64(b, i, pcB)
					th.StoreF64(a, i, v*2, pcW)
					// The benchmark's accumulation re-reads a[i] on the
					// writing thread, overwriting the write's shadow cell.
					_ = th.LoadF64(a, i, pcSelf)
				})
				// Schedule pinning only (no happens-before for the tools):
				// the racy second loop runs after the first completed.
				inv.Wait()
				th.For(0, n, func(i int) {
					j := (i + n/2) % n // owned by a different thread
					th.StoreF64(c, i, th.LoadF64(a, j, pcR), pcC)
				})
			})
		},
	})

	Register(Workload{
		Name:        "privatemissing-orig-yes",
		Suite:       "drb",
		Description: "scratch variable that should be private; SWORD reports the documented pair, the write-write pair, and one more the shadow cells lose",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 3},
		DefaultSize: 1,
		Run: func(ctx *Ctx) {
			tmp := mustF64(ctx.Space, 1)
			out := mustF64(ctx.Space, ctx.Threads*2)
			pcW := omp.Site("drb/privatemissing.c:tmp=")
			pcR1 := omp.Site("drb/privatemissing.c:use1-tmp")
			pcR2 := omp.Site("drb/privatemissing.c:use2-tmp")
			pcO := omp.Site("drb/privatemissing.c:out")
			seq := omp.NewSequencer()
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				seq.Do(th.ID(), func() {
					th.StoreF64(tmp, 0, float64(th.ID()), pcW)
					v1 := th.LoadF64(tmp, 0, pcR1) // replaces the write cell
					v2 := th.LoadF64(tmp, 0, pcR2) // replaces the first read cell
					th.StoreF64(out, th.ID()*2, v1+v2, pcO)
				})
			})
		},
	})

	// The four indirect-access kernels: the documented races depend on
	// index data that aliases; the shipped input is a permutation, so the
	// racy path never executes and every dynamic tool reports nothing.
	for _, k := range []int{1, 2, 3, 4} {
		k := k
		name := []string{"", "indirectaccess1-orig-yes", "indirectaccess2-orig-yes",
			"indirectaccess3-orig-yes", "indirectaccess4-orig-yes"}[k]
		Register(Workload{
			Name:        name,
			Suite:       "drb",
			Description: "race via indirect index aliasing that does not manifest on the executed input",
			Documented:  1,
			Expect:      Expected{}, // no dynamic tool can see it
			DefaultSize: 256,
			Footprint:   func(size int) uint64 { return uint64(size) * 16 },
			Run: func(ctx *Ctx) {
				n := ctx.Size
				x := mustF64(ctx.Space, n)
				idx := make([]int, n)
				for i := range idx {
					// A bijective index map (rotation by k): no aliasing,
					// so the documented race cannot occur dynamically.
					idx[i] = (i + k) % n
				}
				pcR := omp.Site(name + ":read")
				pcW := omp.Site(name + ":write")
				ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
					th.ForOpt(0, n, omp.ForOpts{Schedule: omp.ScheduleStaticCyclic, Chunk: 1}, func(i int) {
						v := th.LoadF64(x, idx[i], pcR)
						th.StoreF64(x, idx[i], v+1, pcW)
					})
				})
			},
		})
	}
}

func registerDRBNo() {
	Register(Workload{
		Name:        "antidep1-var-no",
		Suite:       "drb",
		Description: "restructured anti-dependence loop: each thread stays inside its chunk",
		DefaultSize: 1000,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pc := omp.Site("drb/antidep1-var.c:update")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, ctx.Size, func(i int) {
					v := th.LoadF64(a, i, pc)
					th.StoreF64(a, i, v+1, pc)
				})
			})
		},
	})

	Register(Workload{
		Name:        "reduction-no",
		Suite:       "drb",
		Description: "sum with a proper reduction clause",
		DefaultSize: 4096,
		Run: func(ctx *Ctx) {
			data := mustF64(ctx.Space, ctx.Size)
			total := mustF64(ctx.Space, 1)
			pc := omp.Site("drb/reduction.c:read-data")
			pcT := omp.Site("drb/reduction.c:store-total")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				local := 0.0
				th.ForNoWait(0, ctx.Size, func(i int) {
					local += th.LoadF64(data, i, pc)
				})
				sum := th.ReduceF64(local, func(a, b float64) float64 { return a + b })
				th.Master(func() { th.StoreF64(total, 0, sum, pcT) })
			})
		},
	})

	Register(Workload{
		Name:        "critical-no",
		Suite:       "drb",
		Description: "shared counter protected by a critical section",
		DefaultSize: 64,
		Run: func(ctx *Ctx) {
			counter := mustI64(ctx.Space, 1)
			pcR := omp.Site("drb/critical.c:read")
			pcW := omp.Site("drb/critical.c:write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				for k := 0; k < ctx.Size; k++ {
					th.Critical("counter", func() {
						v := th.LoadI64(counter, 0, pcR)
						th.StoreI64(counter, 0, v+1, pcW)
					})
				}
			})
		},
	})

	Register(Workload{
		Name:        "atomic-no",
		Suite:       "drb",
		Description: "shared counter updated with #pragma omp atomic",
		DefaultSize: 256,
		Run: func(ctx *Ctx) {
			counter := mustI64(ctx.Space, 1)
			pc := omp.Site("drb/atomic.c:counter")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				for k := 0; k < ctx.Size; k++ {
					th.AtomicAddI64(counter, 0, 1, pc)
				}
			})
		},
	})

	Register(Workload{
		Name:        "barrier-no",
		Suite:       "drb",
		Description: "producer phase and consumer phase separated by an explicit barrier",
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			b := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("drb/barrier.c:produce")
			pcR := omp.Site("drb/barrier.c:consume")
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForNoWait(0, n, func(i int) {
					th.StoreF64(a, i, float64(i), pcW)
				})
				th.Barrier()
				th.For(0, n, func(i int) {
					j := (i + n/2) % n
					th.StoreF64(b, i, th.LoadF64(a, j, pcR), pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "single-no",
		Suite:       "drb",
		Description: "initialization inside single, consumed after its implicit barrier",
		DefaultSize: 128,
		Run: func(ctx *Ctx) {
			shared := mustF64(ctx.Space, 1)
			out := mustF64(ctx.Space, ctx.Threads*2)
			pcW := omp.Site("drb/single.c:init")
			pcR := omp.Site("drb/single.c:use")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.Single(func() {
					th.StoreF64(shared, 0, 42, pcW)
				})
				v := th.LoadF64(shared, 0, pcR)
				th.StoreF64(out, th.ID()*2, v, pcR)
			})
		},
	})

	Register(Workload{
		Name:        "master-no",
		Suite:       "drb",
		Description: "master initializes, team reads after an explicit barrier",
		DefaultSize: 128,
		Run: func(ctx *Ctx) {
			shared := mustF64(ctx.Space, 1)
			pcW := omp.Site("drb/master.c:init")
			pcR := omp.Site("drb/master.c:use")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.Master(func() {
					th.StoreF64(shared, 0, 7, pcW)
				})
				th.Barrier()
				_ = th.LoadF64(shared, 0, pcR)
			})
		},
	})

	Register(Workload{
		Name:        "firstprivate-no",
		Suite:       "drb",
		Description: "per-thread private copies laid out disjointly",
		DefaultSize: 256,
		Run: func(ctx *Ctx) {
			priv := mustF64(ctx.Space, ctx.Threads*8) // padded per-thread slots
			pc := omp.Site("drb/firstprivate.c:private-slot")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				slot := th.ID() * 8
				for k := 0; k < ctx.Size; k++ {
					v := th.LoadF64(priv, slot, pc)
					th.StoreF64(priv, slot, v+1, pc)
				}
			})
		},
	})

	Register(Workload{
		Name:        "nowait-barrier-no",
		Suite:       "drb",
		Description: "nowait loop followed by an explicit barrier before the dependent loop",
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			c := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("drb/nowait-barrier.c:write-a")
			pcR := omp.Site("drb/nowait-barrier.c:read-a")
			pcC := omp.Site("drb/nowait-barrier.c:write-c")
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{NoWait: true}, func(i int) {
					th.StoreF64(a, i, float64(i), pcW)
				})
				th.Barrier()
				th.For(0, n, func(i int) {
					j := (i + n/2) % n
					th.StoreF64(c, i, th.LoadF64(a, j, pcR), pcC)
				})
			})
		},
	})
}
