package workloads

import "sword/internal/omp"

// Additional DataRaceBench-style kernels: distinct race mechanisms
// (worksharing variants, sections, single misuse, ordered dependences)
// plus race-free numerical controls.

func init() {
	Register(Workload{
		Name:        "sections-orig-yes",
		Suite:       "drb",
		Description: "two sections write the same shared variable",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1,
		Run: func(ctx *Ctx) {
			x := mustF64(ctx.Space, 1)
			pc1 := omp.Site("drb/sections.c:section1-write")
			pc2 := omp.Site("drb/sections.c:section2-write")
			// Schedule pinning: both sections run on different threads
			// simultaneously (one thread grabbing both would serialize the
			// writes and hide the race dynamically).
			overlap := NewInvisibleBarrier(2)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.Sections(
					func() {
						overlap.Wait()
						th.StoreF64(x, 0, 1, pc1)
					},
					func() {
						overlap.Wait()
						th.StoreF64(x, 0, 2, pc2)
					},
				)
			})
		},
	})

	Register(Workload{
		Name:        "singlemissing-orig-yes",
		Suite:       "drb",
		Description: "initialization that should be inside single is executed by every thread",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1,
		Run: func(ctx *Ctx) {
			shared := mustF64(ctx.Space, 1)
			pc := omp.Site("drb/singlemissing.c:init")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Should be th.Single(...): every thread writes instead.
				th.StoreF64(shared, 0, 42, pc)
				th.Barrier()
				_ = th.LoadF64(shared, 0, pc)
			})
		},
	})

	Register(Workload{
		Name:        "orderedmissing-orig-yes",
		Suite:       "drb",
		Description: "carried dependence under schedule(static,1) without an ordered clause",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pcR := omp.Site("drb/orderedmissing.c:read-prev")
			pcW := omp.Site("drb/orderedmissing.c:write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(1, ctx.Size, omp.ForOpts{Schedule: omp.ScheduleStaticCyclic, Chunk: 1}, func(i int) {
					// With cyclic distribution, a[i-1] always belongs to a
					// different thread (for >1 thread).
					v := th.LoadF64(a, i-1, pcR)
					th.StoreF64(a, i, v+1, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "dynamicchunk-orig-yes",
		Suite:       "drb",
		Description: "reduction-style accumulation into a shared scalar under a dynamic schedule",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			data := mustF64(ctx.Space, ctx.Size)
			sum := mustF64(ctx.Space, 1)
			pcD := omp.Site("drb/dynamicchunk.c:data")
			pcS := omp.Site("drb/dynamicchunk.c:sum-write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				local := 0.0
				th.ForOpt(0, ctx.Size, omp.ForOpts{Schedule: omp.ScheduleDynamic, Chunk: 16, NoWait: true}, func(i int) {
					local += th.LoadF64(data, i, pcD)
				})
				// The "reduction" writes the shared scalar directly.
				th.StoreF64(sum, 0, local, pcS)
			})
		},
	})

	Register(Workload{
		Name:        "matrixmultiply-orig-no",
		Suite:       "drb",
		Description: "GEMM over row-partitioned output: race-free",
		DefaultSize: 24,
		Footprint:   func(size int) uint64 { return uint64(size*size) * 24 },
		Run: func(ctx *Ctx) {
			n := ctx.Size
			a := mustF64(ctx.Space, n*n)
			b := mustF64(ctx.Space, n*n)
			c := mustF64(ctx.Space, n*n)
			pcA := omp.Site("drb/matmul.c:a")
			pcB := omp.Site("drb/matmul.c:b")
			pcC := omp.Site("drb/matmul.c:c")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, n*n, func(i int) {
					th.StoreF64(a, i, float64(i%7), pcA)
					th.StoreF64(b, i, float64(i%5), pcB)
				})
				th.For(0, n, func(r int) {
					for col := 0; col < n; col++ {
						acc := 0.0
						for k := 0; k < n; k++ {
							acc += th.LoadF64(a, r*n+k, pcA) * th.LoadF64(b, k*n+col, pcB)
						}
						th.StoreF64(c, r*n+col, acc, pcC)
					}
				})
			})
		},
	})

	Register(Workload{
		Name:        "doall2-orig-no",
		Suite:       "drb",
		Description: "doubly nested parallel loops over disjoint tiles: race-free",
		DefaultSize: 32,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			grid := mustF64(ctx.Space, n*n)
			pc := omp.Site("drb/doall2.c:tile")
			ctx.RT.Parallel(2, func(outer *omp.Thread) {
				half := outer.ID() * n / 2
				outer.Parallel(2, func(in *omp.Thread) {
					for r := half + in.ID(); r < half+n/2; r += 2 {
						for c := 0; c < n; c++ {
							in.StoreF64(grid, r*n+c, float64(r+c), pc)
						}
					}
				})
			})
		},
	})

	Register(Workload{
		Name:        "threadprivate-orig-no",
		Suite:       "drb",
		Description: "threadprivate accumulators, combined under a critical section",
		DefaultSize: 1024,
		Run: func(ctx *Ctx) {
			priv := mustF64(ctx.Space, ctx.Threads*8)
			total := mustF64(ctx.Space, 1)
			data := mustF64(ctx.Space, ctx.Size)
			pcP := omp.Site("drb/threadprivate.c:private")
			pcT := omp.Site("drb/threadprivate.c:total")
			pcD := omp.Site("drb/threadprivate.c:data")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				slot := th.ID() * 8
				th.ForNoWait(0, ctx.Size, func(i int) {
					v := th.LoadF64(priv, slot, pcP)
					th.StoreF64(priv, slot, v+th.LoadF64(data, i, pcD), pcP)
				})
				th.Critical("total", func() {
					v := th.LoadF64(total, 0, pcT)
					th.StoreF64(total, 0, v+th.LoadF64(priv, slot, pcP), pcT)
				})
			})
		},
	})

	Register(Workload{
		Name:        "guidedschedule-orig-no",
		Suite:       "drb",
		Description: "guided schedule over disjoint elements: race-free",
		DefaultSize: 4096,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pc := omp.Site("drb/guided.c:element")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, ctx.Size, omp.ForOpts{Schedule: omp.ScheduleGuided, Chunk: 8}, func(i int) {
					v := th.LoadF64(a, i, pc)
					th.StoreF64(a, i, v*1.5+1, pc)
				})
			})
		},
	})
}

func init() {
	Register(Workload{
		Name:        "ordered-orig-no",
		Suite:       "drb",
		Description: "cross-iteration dependence protected by an ordered section: race-free",
		DefaultSize: 256,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pcR := omp.Site("drb/ordered.c:read-prev")
			pcW := omp.Site("drb/ordered.c:write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOrdered(1, ctx.Size, omp.ForOpts{Schedule: omp.ScheduleStaticCyclic, Chunk: 4},
					func(i int, ordered func(func())) {
						ordered(func() {
							v := th.LoadF64(a, i-1, pcR)
							th.StoreF64(a, i, v+1, pcW)
						})
					})
			})
		},
	})

	Register(Workload{
		Name:        "firstprivate-orig-yes",
		Suite:       "drb",
		Description: "a variable that needed firstprivate is updated shared by every thread",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1,
		Run: func(ctx *Ctx) {
			scale := mustF64(ctx.Space, 1)
			out := mustF64(ctx.Space, ctx.Threads*8)
			pcW := omp.Site("drb/firstprivate-yes.c:scale=")
			pcO := omp.Site("drb/firstprivate-yes.c:out")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Each thread "initializes" the shared scale it believed
				// was private, then uses it.
				th.StoreF64(scale, 0, float64(th.ID()+1), pcW)
				th.StoreF64(out, th.ID()*8, 1, pcO)
			})
		},
	})

	Register(Workload{
		Name:        "collapse-orig-no",
		Suite:       "drb",
		Description: "collapsed 2D iteration space flattened over disjoint cells: race-free",
		DefaultSize: 48,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			grid := mustF64(ctx.Space, n*n)
			pc := omp.Site("drb/collapse.c:cell")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, n*n, func(flat int) {
					th.StoreF64(grid, flat, float64(flat%9), pc)
				})
			})
		},
	})

	Register(Workload{
		Name:        "nestedloops-orig-yes",
		Suite:       "drb",
		Description: "only the outer loop is parallel but the inner loop writes rows of another thread",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 32,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			grid := mustF64(ctx.Space, n*n)
			pc := omp.Site("drb/nestedloops.c:neighbour-write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, n, func(r int) {
					for c := 0; c < n; c++ {
						// Writes spill into the next row (r+1): owned by a
						// different thread at chunk boundaries.
						th.StoreF64(grid, ((r+1)%n)*n+c, float64(r+c), pc)
						th.StoreF64(grid, r*n+c, float64(r*c), pc)
					}
				})
			})
		},
	})
}
