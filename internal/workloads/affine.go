package workloads

import (
	"sword/internal/omp"
)

// Workloads written against the affine capture API (omp.AffineLoop /
// Thread.ForAffine): their worksharing loops declare every access as an
// affine shape, so the runtime can statically certify them race-free and
// — under the static filter — drop the covered accesses at collection
// time. Each keeps one genuine race outside the certified loops, so the
// filter's soundness stays observable: the reported race set must be
// identical with the filter on or off.

func init() {
	Register(Workload{
		Name:        "affine-strided-yes",
		Suite:       "drb",
		Description: "cyclically strided writes, statically provable disjoint, plus a racy scalar store after the loop's barrier",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 4096,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			a := mustF64(ctx.Space, n)
			b := mustF64(ctx.Space, n)
			flag := mustF64(ctx.Space, 1)
			pcR := omp.Site("affine/strided:read")
			pcW := omp.Site("affine/strided:write")
			pcFlag := omp.Site("affine/strided:flag")
			loop := omp.NewAffineLoop()
			rd := loop.ReadF64(b, 1, 0, pcR)
			wr := loop.WriteF64(a, 1, 0, pcW)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// schedule(static, 1): thread t owns iterations t, t+NT,
				// t+2NT, … — the classic cyclic distribution whose
				// interleaved footprints the strided-intersection solver
				// would otherwise grind through pair by pair.
				th.ForAffineOpt(loop, 0, n, omp.ForOpts{Schedule: omp.ScheduleStaticCyclic, Chunk: 1},
					func(it *omp.AffineIter) {
						it.StoreF64(wr, it.LoadF64(rd)*2+1)
					})
				// Documented race, in the interval after the loop's
				// barrier: every thread publishes a completion flag.
				raceWW(th, flag, 0, pcFlag)
			})
		},
	})

	Register(Workload{
		Name:        "affine-blocked-no",
		Suite:       "drb",
		Description: "block-distributed stencil update, statically provable disjoint: race-free under every tool",
		Documented:  0,
		Expect:      Expected{Archer: 0, ArcherLow: 0, Sword: 0},
		DefaultSize: 4096,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			src := mustF64(ctx.Space, n)
			dst := mustF64(ctx.Space, n)
			pcR := omp.Site("affine/blocked:read")
			pcW := omp.Site("affine/blocked:write")
			loop := omp.NewAffineLoop()
			rd := loop.ReadF64(src, 1, 0, pcR)
			wr := loop.WriteF64(dst, 1, 0, pcW)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				for round := 0; round < 2; round++ {
					th.ForAffine(loop, 0, n, func(it *omp.AffineIter) {
						it.StoreF64(wr, it.LoadF64(rd)*0.5)
					})
				}
			})
		},
	})
}
