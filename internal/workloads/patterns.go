package workloads

import (
	"sword/internal/memsim"
	"sword/internal/omp"
)

// Shared race-pattern building blocks. Each corresponds to one detection
// mechanism the paper discusses, with a deterministic per-tool outcome:
//
//	raceWW          — write-write on a shared word: caught by archer,
//	                  archer-low and sword (one deduplicated site pair).
//	raceRWDetected  — a lone write with no same-thread re-read, racing
//	                  reads by other threads: the write's shadow cell
//	                  survives, so all tools catch it.
//	raceSwordOnly   — the §II eviction miss: the writer immediately
//	                  re-reads the location, overwriting its own write
//	                  cell; other threads read afterwards (schedule
//	                  pinned). archer sees only read-read; sword logs
//	                  everything and reports the write-read race.
//
// Each helper runs inside a parallel region on every team member and uses
// distinct pc sites per call site (pass freshly interned sites).

// Sites groups the interned pc ids of a pattern instance.
type Sites struct {
	Write, SelfRead, Read uint64
}

// raceWW: all threads store to x[idx] unsynchronized.
func raceWW(th *omp.Thread, x *memsim.F64, idx int, pcWrite uint64) {
	th.StoreF64(x, idx, float64(th.ID()), pcWrite)
}

// raceRWDetected: thread 0 writes once (no self re-read); everyone else
// reads. Detection is order-independent: whichever side arrives second
// sees the other's live shadow cell.
func raceRWDetected(th *omp.Thread, x *memsim.F64, idx int, s Sites) float64 {
	if th.ID() == 0 {
		th.StoreF64(x, idx, 1, s.Write)
		return 1
	}
	return th.LoadF64(x, idx, s.Read)
}

// raceSwordOnly: the deterministic eviction miss. bar must be an invisible
// barrier sized to the team; it pins the schedule (writer finishes before
// readers start) without creating happens-before edges for the tools.
func raceSwordOnly(th *omp.Thread, bar *InvisibleBarrier, x *memsim.F64, idx int, s Sites) float64 {
	var v float64
	if th.ID() == 0 {
		th.StoreF64(x, idx, 2, s.Write)
		v = th.LoadF64(x, idx, s.SelfRead) // replaces the write cell
	}
	bar.Wait()
	if th.ID() != 0 {
		v = th.LoadF64(x, idx, s.Read)
	}
	return v
}

// sites interns three fresh pc ids under a symbolic prefix.
func sites(prefix string) Sites {
	return Sites{
		Write:    omp.Site(prefix + ":write"),
		SelfRead: omp.Site(prefix + ":self-read"),
		Read:     omp.Site(prefix + ":read"),
	}
}
