// Package workloads defines the benchmark programs of the evaluation:
// DataRaceBench-style micro kernels (drb), OmpSCR-style kernels (ompscr),
// and the HPC mini-apps (hpc) — AMG, LULESH, miniFE, HPCCG analogues. Each
// workload is a deterministic OpenMP-style program with documented data
// races (or none), plus the per-tool detection counts the reproduction
// expects, mirroring the paper's Tables II and IV and the DataRaceBench
// discussion.
//
// Race sites are engineered to exercise the *mechanisms* the paper
// documents: write-write conflicts both tools catch; schedule-pinned
// lock patterns that mask races from happens-before analysis; and
// write-then-self-read patterns whose shadow cells ARCHER overwrites,
// which only SWORD's complete logs reveal. Schedule pinning uses
// synchronization invisible to the tools (plain Go primitives), exactly
// like the scheduler timing that made these outcomes reproducible on the
// paper's testbed.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"sword/internal/memsim"
	"sword/internal/omp"
)

// Ctx is the execution context handed to a workload body.
type Ctx struct {
	RT      *omp.Runtime
	Space   *memsim.Space
	Threads int // team size for the workload's parallel regions
	Size    int // problem-size knob; meaning is workload-specific
}

// Expected detection counts per tool, keyed by the harness tool names.
type Expected struct {
	Archer    int
	ArcherLow int
	Sword     int
}

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Suite       string // "drb", "ompscr" or "hpc"
	Description string
	// Documented is the number of races documented by the original
	// benchmark's authors (sword/archer may find more or fewer).
	Documented int
	// Expect is the deterministic per-tool detection count for the
	// default size. A nil-like zero value means race-free everywhere.
	Expect Expected
	// DefaultSize is used when the caller passes size 0.
	DefaultSize int
	// Footprint returns the accounted application memory in bytes for a
	// given size, feeding the node-budget OOM model.
	Footprint func(size int) uint64
	// Run executes the program. It must allocate through ctx.Space and
	// perform all shared accesses through instrumented operations.
	Run func(ctx *Ctx)
}

var (
	regMu    sync.Mutex
	registry = make(map[string]Workload)
)

// Register adds a workload; duplicate names panic at init time.
func Register(w Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
	}
	if w.Run == nil {
		panic(fmt.Sprintf("workloads: %q has no body", w.Name))
	}
	if w.DefaultSize == 0 {
		w.DefaultSize = 1
	}
	if w.Footprint == nil {
		w.Footprint = func(int) uint64 { return 1 << 20 }
	}
	registry[w.Name] = w
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	regMu.Lock()
	defer regMu.Unlock()
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// BySuite returns the workloads of one suite, sorted by name.
func BySuite(suite string) []Workload {
	regMu.Lock()
	defer regMu.Unlock()
	var out []Workload
	for _, w := range registry {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every workload sorted by suite then name.
func All() []Workload {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// InvisibleBarrier pins schedules without tool-visible synchronization:
// it is the reproduction's stand-in for the scheduler timing under which
// the paper's deterministic outcomes were observed. Tools treat gated code
// exactly as they would a fortunate interleaving. Reusable across
// episodes.
type InvisibleBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

// NewInvisibleBarrier returns a reusable invisible barrier for size
// threads.
func NewInvisibleBarrier(size int) *InvisibleBarrier {
	b := &InvisibleBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all threads of the episode arrive.
func (b *InvisibleBarrier) Wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// mustF64 allocates or panics; workload bodies run under harness recover.
func mustF64(space *memsim.Space, n int) *memsim.F64 {
	a, err := space.AllocF64(n)
	if err != nil {
		panic(err)
	}
	return a
}

func mustI64(space *memsim.Space, n int) *memsim.I64 {
	a, err := space.AllocI64(n)
	if err != nil {
		panic(err)
	}
	return a
}

func mustI32(space *memsim.Space, n int) *memsim.I32 {
	a, err := space.AllocI32(n)
	if err != nil {
		panic(err)
	}
	return a
}

func mustReserve(space *memsim.Space, n uint64) {
	if err := space.Reserve(n); err != nil {
		panic(err)
	}
}
