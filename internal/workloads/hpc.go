package workloads

import (
	"fmt"
	"math"

	"sword/internal/omp"
)

// HPC mini-apps (§IV-C, Table IV, Figures 7-8). Four codes mirroring the
// paper's CORAL/Mantevo selection:
//
//	amg     — algebraic multigrid V-cycle (AMG2013): one large parallel
//	          region containing 4 races both tools catch and 10 more whose
//	          write records ARCHER's shadow cells lose; footprint scales
//	          with the grid so large inputs OOM a 6× shadow overhead.
//	lulesh  — hydrodynamics proxy: race-free, but with very many small
//	          parallel regions and barriers (SWORD's worst case: the log
//	          collection's I/O burden, Figure 7c).
//	minife  — finite-element assembly + CG solve, race-free via atomics.
//	hpccg   — conjugate gradient with the "same value written by all
//	          threads" write-write race both tools report.
//
// The workload "amg" interprets Size as the grid edge length (the paper's
// 10/20/30/40), total cells = Size³.

func init() {
	registerAMG()
	registerLULESH()
	registerMiniFE()
	registerHPCCG()
}

const (
	amgDetectedRaces  = 4  // write-read races with surviving write cells
	amgEvictedRaces   = 10 // write-self-read races only SWORD sees
	amgBytesPerCell   = 1400
	amgRealArrayCount = 6
)

// AMGFootprint is the accounted application footprint of the AMG analogue
// for a grid edge length: the multigrid hierarchy's vectors and matrices,
// scaled so that the 40³ problem occupies a paper-like fraction of a node.
func AMGFootprint(size int) uint64 {
	cells := uint64(size) * uint64(size) * uint64(size)
	return cells * amgBytesPerCell
}

func registerAMG() {
	Register(Workload{
		Name:        "amg",
		Suite:       "hpc",
		Description: "algebraic multigrid V-cycle with the 14 read-write races of the paper's AMG2013 runs",
		Documented:  4,
		Expect:      Expected{Archer: amgDetectedRaces, ArcherLow: amgDetectedRaces, Sword: amgDetectedRaces + amgEvictedRaces},
		DefaultSize: 10,
		Footprint:   AMGFootprint,
		Run:         runAMG,
	})
}

func runAMG(ctx *Ctx) {
	size := ctx.Size
	cells := size * size * size
	// Real backing arrays stay laptop-sized; the rest of the hierarchy is
	// accounted-only (see DESIGN.md's footprint substitution).
	u := mustF64(ctx.Space, cells)
	rhs := mustF64(ctx.Space, cells)
	res := mustF64(ctx.Space, cells)
	coarse := mustF64(ctx.Space, cells/8+1)
	coarse2 := mustF64(ctx.Space, cells/64+1)
	work := mustF64(ctx.Space, cells)
	accounted := AMGFootprint(size)
	real := uint64(cells) * 8 * amgRealArrayCount
	if accounted > real {
		mustReserve(ctx.Space, accounted-real)
	}
	// Shared solver coefficients touched by the racy setup code inside the
	// large parallel region (the paper's ~400-LOC region).
	coeff := mustF64(ctx.Space, amgDetectedRaces+amgEvictedRaces)

	pcU := omp.Site("hpc/amg.c:smooth-u")
	pcRHS := omp.Site("hpc/amg.c:rhs")
	pcRes := omp.Site("hpc/amg.c:residual")
	pcRestrict := omp.Site("hpc/amg.c:restrict")
	pcCoarse := omp.Site("hpc/amg.c:coarse-smooth")
	pcProlong := omp.Site("hpc/amg.c:prolong")
	pcWork := omp.Site("hpc/amg.c:work")

	detected := make([]Sites, amgDetectedRaces)
	for k := range detected {
		detected[k] = Sites{
			Write: omp.Site(fmt.Sprintf("hpc/amg.c:coeff%d-setup-write", k)),
			Read:  omp.Site(fmt.Sprintf("hpc/amg.c:coeff%d-use", k)),
		}
	}
	evicted := make([]Sites, amgEvictedRaces)
	for k := range evicted {
		evicted[k] = Sites{
			Write:    omp.Site(fmt.Sprintf("hpc/amg.c:coeff%d-relax-write", amgDetectedRaces+k)),
			SelfRead: omp.Site(fmt.Sprintf("hpc/amg.c:coeff%d-relax-check", amgDetectedRaces+k)),
			Read:     omp.Site(fmt.Sprintf("hpc/amg.c:coeff%d-relax-use", amgDetectedRaces+k)),
		}
	}
	inv := NewInvisibleBarrier(ctx.Threads)

	ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
		// Setup sweep.
		th.For(0, cells, func(i int) {
			th.StoreF64(rhs, i, math.Sin(float64(i)*0.001), pcRHS)
			th.StoreF64(u, i, 0, pcU)
		})
		// The 4 races ARCHER also finds: a lone setup write per
		// coefficient, read by the whole team during the smoothing sweep.
		for k := 0; k < amgDetectedRaces; k++ {
			raceRWDetected(th, coeff, k, detected[k])
		}
		// The 10 races only SWORD finds: each coefficient is written and
		// immediately validated (re-read) by the writer before the team
		// consumes it.
		for k := 0; k < amgEvictedRaces; k++ {
			raceSwordOnly(th, inv, coeff, amgDetectedRaces+k, evicted[k])
		}
		// V-cycle: pre-smooth, residual, restrict, coarse smooth,
		// prolongate, post-smooth — barrier-separated phases.
		for sweep := 0; sweep < 2; sweep++ {
			th.For(1, cells-1, func(i int) {
				v := (th.LoadF64(u, i-1, pcU) + th.LoadF64(u, i+1, pcU)) * 0.5
				b := th.LoadF64(rhs, i, pcRHS)
				th.StoreF64(work, i, v+0.3*b, pcWork)
			})
			th.For(1, cells-1, func(i int) {
				th.StoreF64(u, i, th.LoadF64(work, i, pcWork), pcU)
			})
		}
		th.For(0, cells, func(i int) {
			r := th.LoadF64(rhs, i, pcRHS) - th.LoadF64(u, i, pcU)
			th.StoreF64(res, i, r, pcRes)
		})
		th.For(0, cells/8, func(i int) {
			acc := 0.0
			for j := 0; j < 8; j++ {
				acc += th.LoadF64(res, i*8+j, pcRes)
			}
			th.StoreF64(coarse, i, acc/8, pcRestrict)
		})
		th.For(0, cells/64, func(i int) {
			acc := 0.0
			for j := 0; j < 8 && i*8+j < coarse.Len(); j++ {
				acc += th.LoadF64(coarse, i*8+j, pcRestrict)
			}
			th.StoreF64(coarse2, i, acc/8, pcCoarse)
		})
		th.For(0, cells/8, func(i int) {
			c := th.LoadF64(coarse2, i/8, pcCoarse)
			v := th.LoadF64(coarse, i, pcRestrict)
			th.StoreF64(coarse, i, v+0.7*c, pcProlong)
		})
		th.For(1, cells-1, func(i int) {
			c := th.LoadF64(coarse, i/8, pcProlong)
			v := th.LoadF64(u, i, pcU)
			th.StoreF64(u, i, v+0.5*c, pcU)
		})
	})
}

func registerLULESH() {
	Register(Workload{
		Name:        "lulesh",
		Suite:       "hpc",
		Description: "shock hydrodynamics proxy: race-free, dominated by very many small parallel regions",
		DefaultSize: 300, // number of parallel regions (the paper's run had ~300,000)
		Footprint: func(size int) uint64 {
			return 32 << 20 // fixed mesh footprint, independent of region count
		},
		Run: func(ctx *Ctx) {
			const elems = 4096
			x := mustF64(ctx.Space, elems)
			xd := mustF64(ctx.Space, elems)
			e := mustF64(ctx.Space, elems)
			mustReserve(ctx.Space, 32<<20-uint64(elems)*24)
			pcX := omp.Site("hpc/lulesh.cc:position")
			pcXD := omp.Site("hpc/lulesh.cc:velocity")
			pcE := omp.Site("hpc/lulesh.cc:energy")
			// LULESH's structure: each physics sub-step is its own small
			// parallel region; the region count is the workload size.
			for region := 0; region < ctx.Size; region++ {
				phase := region % 3
				ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
					switch phase {
					case 0: // position update
						th.For(0, elems, func(i int) {
							v := th.LoadF64(xd, i, pcXD)
							p := th.LoadF64(x, i, pcX)
							th.StoreF64(x, i, p+0.001*v, pcX)
						})
					case 1: // velocity update
						th.For(0, elems, func(i int) {
							en := th.LoadF64(e, i, pcE)
							v := th.LoadF64(xd, i, pcXD)
							th.StoreF64(xd, i, v*0.999+0.0001*en, pcXD)
						})
					default: // energy update
						th.For(0, elems, func(i int) {
							p := th.LoadF64(x, i, pcX)
							th.StoreF64(e, i, p*p*0.5, pcE)
						})
					}
				})
			}
		},
	})
}

func registerMiniFE() {
	Register(Workload{
		Name:        "minife",
		Suite:       "hpc",
		Description: "finite-element assembly (atomic scatters) and CG solve: race-free",
		DefaultSize: 4096,
		Footprint: func(size int) uint64 {
			return uint64(size) * 8 * 8 * 4 // rows × vectors × matrix bands
		},
		Run: func(ctx *Ctx) {
			n := ctx.Size
			matrix := mustF64(ctx.Space, n*3) // tridiagonal bands
			bvec := mustF64(ctx.Space, n)
			xvec := mustF64(ctx.Space, n)
			p := mustF64(ctx.Space, n)
			ap := mustF64(ctx.Space, n)
			pcM := omp.Site("hpc/minife.cc:assemble")
			pcB := omp.Site("hpc/minife.cc:rhs-scatter")
			pcX := omp.Site("hpc/minife.cc:x")
			pcP := omp.Site("hpc/minife.cc:p")
			pcAp := omp.Site("hpc/minife.cc:matvec")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Assembly: each element scatters into its row and its
				// neighbours' rows with atomics (the race-free pattern).
				th.For(0, n, func(i int) {
					th.StoreF64(matrix, i*3+1, 2, pcM)
					if i > 0 {
						th.AtomicAddF64(bvec, i-1, 0.5, pcB)
					}
					th.AtomicAddF64(bvec, i, 1, pcB)
					if i < n-1 {
						th.AtomicAddF64(bvec, i+1, 0.5, pcB)
					}
				})
				// Two CG iterations: matvec + axpy with barriers.
				for iter := 0; iter < 2; iter++ {
					th.For(0, n, func(i int) {
						v := th.LoadF64(bvec, i, pcB) - th.LoadF64(xvec, i, pcX)
						th.StoreF64(p, i, v, pcP)
					})
					th.For(1, n-1, func(i int) {
						d := th.LoadF64(matrix, i*3+1, pcM)
						v := d*th.LoadF64(p, i, pcP) - 0.5*th.LoadF64(p, i-1, pcP) - 0.5*th.LoadF64(p, i+1, pcP)
						th.StoreF64(ap, i, v, pcAp)
					})
					local := 0.0
					th.ForNoWait(0, n, func(i int) {
						local += th.LoadF64(ap, i, pcAp)
					})
					alpha := th.ReduceF64(local, func(a, b float64) float64 { return a + b })
					th.For(0, n, func(i int) {
						v := th.LoadF64(xvec, i, pcX)
						th.StoreF64(xvec, i, v+1e-6*alpha*th.LoadF64(p, i, pcP), pcX)
					})
				}
			})
		},
	})
}

func registerHPCCG() {
	Register(Workload{
		Name:        "hpccg",
		Suite:       "hpc",
		Description: "conjugate gradient with the benign-looking same-value write-write race on the shared norm",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 8192,
		Footprint: func(size int) uint64 {
			return uint64(size) * 8 * 6
		},
		Run: func(ctx *Ctx) {
			n := ctx.Size
			r := mustF64(ctx.Space, n)
			p := mustF64(ctx.Space, n)
			ap := mustF64(ctx.Space, n)
			normr := mustF64(ctx.Space, 1)
			pcR := omp.Site("hpc/hpccg.cpp:residual")
			pcP := omp.Site("hpc/hpccg.cpp:p")
			pcAp := omp.Site("hpc/hpccg.cpp:matvec")
			pcNorm := omp.Site("hpc/hpccg.cpp:normr-write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, n, func(i int) {
					th.StoreF64(r, i, 1/float64(i+1), pcR)
					th.StoreF64(p, i, 1/float64(i+1), pcP)
				})
				for iter := 0; iter < 2; iter++ {
					th.For(1, n-1, func(i int) {
						v := 2*th.LoadF64(p, i, pcP) - th.LoadF64(p, i-1, pcP)*0.5 - th.LoadF64(p, i+1, pcP)*0.5
						th.StoreF64(ap, i, v, pcAp)
					})
					local := 0.0
					th.ForNoWait(0, n, func(i int) {
						d := th.LoadF64(r, i, pcR)
						local += d * d
					})
					rtrans := th.ReduceF64(local, func(a, b float64) float64 { return a + b })
					// The paper's HPCCG race: every thread writes the same
					// sqrt(rtrans) into the shared norm — undefined
					// behaviour despite the identical value.
					th.StoreF64(normr, 0, math.Sqrt(rtrans), pcNorm)
					th.Barrier()
				}
			})
		},
	})
}
