package workloads

import (
	"math"

	"sword/internal/memsim"
	"sword/internal/omp"
)

// OmpSCR-style kernels (§IV-B, Table II). Each kernel performs its
// namesake computation on instrumented arrays; racy kernels reproduce the
// documented races plus — for c_md, c_testPath and the cpp_qsomp variants
// — the previously undocumented races only SWORD detects (the paper's key
// Table II result: sword ⊇ archer with strictly more races on six
// benchmarks).

func init() {
	registerOmpSCRRacy()
	registerOmpSCRSafe()
}

func registerOmpSCRRacy() {
	Register(Workload{
		Name:        "c_loopA_bad",
		Suite:       "ompscr",
		Description: "loop dependence exercise, bad solution: shared accumulator written by all threads",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			last := mustF64(ctx.Space, 1)
			pcA := omp.Site("ompscr/c_loopA.c:a[i]")
			pcLast := omp.Site("ompscr/c_loopA.c:lastvalue")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, ctx.Size, func(i int) {
					th.StoreF64(a, i, float64(i)*1.5, pcA)
				})
				raceWW(th, last, 0, pcLast) // every thread publishes "its" last value
			})
		},
	})

	Register(Workload{
		Name:        "c_loopB_bad1",
		Suite:       "ompscr",
		Description: "loop dependence exercise, bad solution 1: chunk boundary read-write",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			pcR := omp.Site("ompscr/c_loopB.c:read-prev")
			pcW := omp.Site("ompscr/c_loopB.c:write")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(1, ctx.Size, func(i int) {
					v := th.LoadF64(a, i-1, pcR)
					th.StoreF64(a, i, v+2, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_md",
		Suite:       "ompscr",
		Description: "molecular dynamics: force update races at particle overlaps, plus an undocumented virial-accumulation race only complete logs reveal",
		Documented:  2,
		Expect:      Expected{Archer: 2, ArcherLow: 2, Sword: 3},
		DefaultSize: 128,
		Footprint:   func(size int) uint64 { return uint64(size) * 8 * 6 },
		Run: func(ctx *Ctx) {
			n := ctx.Size
			pos := mustF64(ctx.Space, n)
			vel := mustF64(ctx.Space, n)
			force := mustF64(ctx.Space, n)
			virial := mustF64(ctx.Space, 1)
			pcPos := omp.Site("ompscr/c_md.c:pos")
			pcF := omp.Site("ompscr/c_md.c:force-read")
			pcFW := omp.Site("ompscr/c_md.c:force-write")
			vs := Sites{
				Write:    omp.Site("ompscr/c_md.c:virial-write"),
				SelfRead: omp.Site("ompscr/c_md.c:virial-accumulate"),
				Read:     omp.Site("ompscr/c_md.c:virial-read"),
			}
			pcV := omp.Site("ompscr/c_md.c:vel")
			inv := NewInvisibleBarrier(ctx.Threads)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Pairwise force computation; the documented race: each
				// thread also updates its neighbour's force entry.
				th.ForOpt(0, n, omp.ForOpts{NoWait: true}, func(i int) {
					p := th.LoadF64(pos, i, pcPos)
					f := th.LoadF64(force, i, pcF)
					th.StoreF64(force, i, f+math.Exp(-p*p), pcFW)
					j := (i + 1) % n // crosses the chunk boundary
					fj := th.LoadF64(force, j, pcF)
					th.StoreF64(force, j, fj*0.5, pcFW)
				})
				// The undocumented race: the virial is written and
				// immediately re-read by thread 0, then read by the team.
				raceSwordOnly(th, inv, virial, 0, vs)
				th.Barrier()
				th.For(0, n, func(i int) {
					v := th.LoadF64(vel, i, pcV)
					f := th.LoadF64(force, i, pcF)
					th.StoreF64(vel, i, v+0.01*f, pcV)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_mandel",
		Suite:       "ompscr",
		Description: "Mandelbrot area estimation: unsynchronized write of the shared outside-count",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 64,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			counts := mustI64(ctx.Space, n)
			numoutside := mustI64(ctx.Space, 1)
			pcC := omp.Site("ompscr/c_mandel.c:row-count")
			pcN := omp.Site("ompscr/c_mandel.c:numoutside")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{Schedule: omp.ScheduleDynamic, Chunk: 2}, func(row int) {
					outside := int64(0)
					for col := 0; col < n; col++ {
						zr, zi := 0.0, 0.0
						cr := -2 + 3*float64(col)/float64(n)
						ci := -1.5 + 3*float64(row)/float64(n)
						iter := 0
						for ; iter < 32 && zr*zr+zi*zi < 4; iter++ {
							zr, zi = zr*zr-zi*zi+cr, 2*zr*zi+ci
						}
						if iter < 32 {
							outside++
						}
					}
					th.StoreI64(counts, row, outside, pcC)
				})
				// The documented race: every thread stores its partial sum
				// into the shared scalar without synchronization.
				th.StoreI64(numoutside, 0, int64(th.ID()), pcN)
			})
		},
	})

	Register(Workload{
		Name:        "c_fft",
		Suite:       "ompscr",
		Description: "radix-2 FFT: twiddle table written concurrently by all threads",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1024,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			re := mustF64(ctx.Space, n)
			im := mustF64(ctx.Space, n)
			tw := mustF64(ctx.Space, 2)
			pcRe := omp.Site("ompscr/c_fft.c:re")
			pcIm := omp.Site("ompscr/c_fft.c:im")
			pcTw := omp.Site("ompscr/c_fft.c:twiddle-init")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				// Documented race: redundant concurrent initialization of
				// the shared twiddle seed.
				raceWW(th, tw, 0, pcTw)
				th.Barrier()
				for span := n / 2; span >= 1; span /= 2 {
					th.For(0, n/2, func(k int) {
						i := (k / span) * 2 * span
						j := i + span
						o := k % span
						a := th.LoadF64(re, i+o, pcRe)
						b := th.LoadF64(re, j+o, pcRe)
						th.StoreF64(re, i+o, a+b, pcRe)
						th.StoreF64(re, j+o, a-b, pcRe)
						ai := th.LoadF64(im, i+o, pcIm)
						bi := th.LoadF64(im, j+o, pcIm)
						th.StoreF64(im, i+o, ai+bi, pcIm)
						th.StoreF64(im, j+o, ai-bi, pcIm)
					})
				}
			})
		},
	})

	Register(Workload{
		Name:        "c_fft6",
		Suite:       "ompscr",
		Description: "six-step FFT: shared plan pointer published without synchronization",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 1024,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			data := mustF64(ctx.Space, n)
			plan := mustF64(ctx.Space, 1)
			pcD := omp.Site("ompscr/c_fft6.c:transpose")
			pcP := omp.Site("ompscr/c_fft6.c:plan-publish")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				raceWW(th, plan, 0, pcP)
				th.Barrier()
				th.For(0, n, func(i int) {
					v := th.LoadF64(data, i, pcD)
					th.StoreF64(data, i, v*1.0001, pcD)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_jacobi",
		Suite:       "ompscr",
		Description: "Jacobi solver: residual accumulated into a shared scalar without protection",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 64,
		Footprint:   func(size int) uint64 { return uint64(size*size) * 16 },
		Run: func(ctx *Ctx) {
			n := ctx.Size
			grid := mustF64(ctx.Space, n*n)
			next := mustF64(ctx.Space, n*n)
			resid := mustF64(ctx.Space, 1)
			pcG := omp.Site("ompscr/c_jacobi.c:grid")
			pcN := omp.Site("ompscr/c_jacobi.c:next")
			pcRes := omp.Site("ompscr/c_jacobi.c:residual")
			// The stencil loops go through the affine capture API: each
			// sweep over rows r declares its four neighbor-read row blocks
			// and the destination-row write block, so the runtime can
			// statically certify the sweep race-free and (under the static
			// filter) drop its accesses at collection time. The residual
			// race lives in the interval after the sweep's barrier and is
			// reported identically with the filter on or off.
			type sweep struct {
				loop                     *omp.AffineLoop
				up, down, left, right, w omp.AffineRef
			}
			mkSweep := func(src, dst *memsim.F64) sweep {
				l := omp.NewAffineLoop()
				nn, span := int64(n), max(n-2, 1)
				return sweep{
					loop:  l,
					up:    l.ReadF64Span(src, nn, -nn+1, span, pcG),
					down:  l.ReadF64Span(src, nn, nn+1, span, pcG),
					left:  l.ReadF64Span(src, nn, 0, span, pcG),
					right: l.ReadF64Span(src, nn, 2, span, pcG),
					w:     l.WriteF64Span(dst, nn, 1, span, pcN),
				}
			}
			sweeps := [2]sweep{mkSweep(grid, next), mkSweep(next, grid)}
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				for iter := 0; iter < 2; iter++ {
					sw := sweeps[iter%2]
					th.ForAffine(sw.loop, 1, n-1, func(it *omp.AffineIter) {
						for c := 1; c < n-1; c++ {
							v := (it.LoadF64At(sw.up, c-1) +
								it.LoadF64At(sw.down, c-1) +
								it.LoadF64At(sw.left, c-1) +
								it.LoadF64At(sw.right, c-1)) * 0.25
							it.StoreF64At(sw.w, c-1, v)
						}
					})
					// Documented race: unsynchronized residual store.
					th.StoreF64(resid, 0, float64(th.ID()), pcRes)
					th.Barrier()
				}
			})
		},
	})

	Register(Workload{
		Name:        "c_testPath",
		Suite:       "ompscr",
		Description: "path testing: documented race on the shared found-flag plus an undocumented one on the path counter",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 2},
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			grid := mustI32(ctx.Space, n)
			found := mustF64(ctx.Space, 1)
			counter := mustF64(ctx.Space, 1)
			pcG := omp.Site("ompscr/c_testPath.c:grid")
			pcF := omp.Site("ompscr/c_testPath.c:found-flag")
			cs := Sites{
				Write:    omp.Site("ompscr/c_testPath.c:counter-write"),
				SelfRead: omp.Site("ompscr/c_testPath.c:counter-check"),
				Read:     omp.Site("ompscr/c_testPath.c:counter-read"),
			}
			inv := NewInvisibleBarrier(ctx.Threads)
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{NoWait: true}, func(i int) {
					th.StoreI32(grid, i, int32(i%7), pcG)
				})
				raceWW(th, found, 0, pcF)              // documented: found flag
				raceSwordOnly(th, inv, counter, 0, cs) // undocumented: path counter
			})
		},
	})

	// The four racy quicksort variants: a documented race on the shared
	// stack top plus an undocumented busy-counter race that ARCHER's
	// shadow cells lose.
	for _, variant := range []int{1, 2, 5, 6} {
		variant := variant
		name := map[int]string{1: "cpp_qsomp1", 2: "cpp_qsomp2", 5: "cpp_qsomp5", 6: "cpp_qsomp6"}[variant]
		Register(Workload{
			Name:        name,
			Suite:       "ompscr",
			Description: "parallel quicksort with a shared work stack: documented stack-top race plus an undocumented busy-counter race",
			Documented:  1,
			Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 2},
			DefaultSize: 4096,
			Run: func(ctx *Ctx) {
				n := ctx.Size
				data := mustI64(ctx.Space, n)
				top := mustF64(ctx.Space, 1)
				busy := mustF64(ctx.Space, 1)
				pcD := omp.Site(name + ":partition")
				pcT := omp.Site(name + ":stack-top")
				bs := Sites{
					Write:    omp.Site(name + ":busy-write"),
					SelfRead: omp.Site(name + ":busy-decrement"),
					Read:     omp.Site(name + ":busy-poll"),
				}
				inv := NewInvisibleBarrier(ctx.Threads)
				ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
					// Local partitioning passes over disjoint chunks
					// (sorting itself is chunked, hence race-free).
					th.ForOpt(0, n, omp.ForOpts{Schedule: omp.ScheduleDynamic, Chunk: 64, NoWait: true}, func(i int) {
						v := th.LoadI64(data, i, pcD)
						th.StoreI64(data, i, v^int64(variant), pcD)
					})
					raceWW(th, top, 0, pcT)             // documented
					raceSwordOnly(th, inv, busy, 0, bs) // undocumented
				})
			},
		})
	}
}

func registerOmpSCRSafe() {
	Register(Workload{
		Name:        "c_pi",
		Suite:       "ompscr",
		Description: "π by numerical integration with a proper reduction",
		DefaultSize: 1 << 16,
		Run: func(ctx *Ctx) {
			result := mustF64(ctx.Space, 1)
			pc := omp.Site("ompscr/c_pi.c:store")
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				local := 0.0
				th.ForNoWait(0, n, func(i int) {
					x := (float64(i) + 0.5) / float64(n)
					local += 4 / (1 + x*x)
				})
				sum := th.ReduceF64(local, func(a, b float64) float64 { return a + b })
				th.Master(func() { th.StoreF64(result, 0, sum/float64(n), pc) })
			})
		},
	})

	Register(Workload{
		Name:        "c_loopA_sol1",
		Suite:       "ompscr",
		Description: "loop dependence exercise, correct solution via master-only publication",
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			last := mustF64(ctx.Space, 1)
			pcA := omp.Site("ompscr/c_loopA_sol1.c:a[i]")
			pcLast := omp.Site("ompscr/c_loopA_sol1.c:lastvalue")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, ctx.Size, func(i int) {
					th.StoreF64(a, i, float64(i)*1.5, pcA)
				})
				th.Master(func() {
					th.StoreF64(last, 0, th.LoadF64(a, ctx.Size-1, pcA), pcLast)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_qsort",
		Suite:       "ompscr",
		Description: "iterative quicksort over disjoint chunks with critical-protected work sharing",
		DefaultSize: 4096,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			data := mustI64(ctx.Space, n)
			work := mustI64(ctx.Space, 1)
			pcD := omp.Site("ompscr/c_qsort.c:swap")
			pcW := omp.Site("ompscr/c_qsort.c:work-counter")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{Schedule: omp.ScheduleDynamic, Chunk: 32, NoWait: true}, func(i int) {
					v := th.LoadI64(data, i, pcD)
					th.StoreI64(data, i, v*2654435761%1000003, pcD)
				})
				th.Critical("work", func() {
					v := th.LoadI64(work, 0, pcW)
					th.StoreI64(work, 0, v+1, pcW)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_GraphSearch",
		Suite:       "ompscr",
		Description: "graph search with a lock-protected frontier",
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			visited := mustI32(ctx.Space, n)
			frontier := mustI64(ctx.Space, 1)
			lock := ctx.RT.NewLock()
			pcV := omp.Site("ompscr/c_GraphSearch.c:visited")
			pcF := omp.Site("ompscr/c_GraphSearch.c:frontier")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{Schedule: omp.ScheduleGuided}, func(i int) {
					th.StoreI32(visited, i, 1, pcV)
					th.WithLock(lock, func() {
						v := th.LoadI64(frontier, 0, pcF)
						th.StoreI64(frontier, 0, v+int64(i%3), pcF)
					})
				})
			})
		},
	})
}
