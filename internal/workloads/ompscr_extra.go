package workloads

import "sword/internal/omp"

// Additional OmpSCR kernels: the remaining loopA/loopB exercises and two
// larger race-free solvers, broadening construct coverage (sections,
// explicit locks, guided scheduling, single).

func init() {
	Register(Workload{
		Name:        "c_loopB_bad2",
		Suite:       "ompscr",
		Description: "loop dependence exercise, bad solution 2: misplaced nowait exposes the carried dependence",
		Documented:  1,
		Expect:      Expected{Archer: 1, ArcherLow: 1, Sword: 1},
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			b := mustF64(ctx.Space, ctx.Size)
			pcW := omp.Site("ompscr/c_loopB.c:bad2-write")
			pcR := omp.Site("ompscr/c_loopB.c:bad2-read")
			n := ctx.Size
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForOpt(0, n, omp.ForOpts{NoWait: true}, func(i int) {
					th.StoreF64(a, i, float64(i), pcW)
				})
				// Missing barrier: reads cross chunk boundaries into data
				// another thread may still be writing.
				th.For(0, n, func(i int) {
					j := (i + n/3) % n
					th.StoreF64(b, i, th.LoadF64(a, j, pcR), pcR)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_loopA_sol2",
		Suite:       "ompscr",
		Description: "loop dependence exercise, correct solution via critical section",
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			last := mustF64(ctx.Space, 1)
			pcA := omp.Site("ompscr/c_loopA_sol2.c:a[i]")
			pcLast := omp.Site("ompscr/c_loopA_sol2.c:lastvalue")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				localLast := 0.0
				th.ForNoWait(0, ctx.Size, func(i int) {
					v := float64(i) * 1.5
					th.StoreF64(a, i, v, pcA)
					localLast = v
				})
				th.Critical("lastvalue", func() {
					cur := th.LoadF64(last, 0, pcLast)
					if localLast > cur {
						th.StoreF64(last, 0, localLast, pcLast)
					}
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_loopA_sol3",
		Suite:       "ompscr",
		Description: "loop dependence exercise, correct solution via an explicit lock",
		DefaultSize: 2048,
		Run: func(ctx *Ctx) {
			a := mustF64(ctx.Space, ctx.Size)
			last := mustF64(ctx.Space, 1)
			lock := ctx.RT.NewLock()
			pcA := omp.Site("ompscr/c_loopA_sol3.c:a[i]")
			pcLast := omp.Site("ompscr/c_loopA_sol3.c:lastvalue")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.ForNoWait(0, ctx.Size, func(i int) {
					th.StoreF64(a, i, float64(i)*1.5, pcA)
				})
				th.WithLock(lock, func() {
					v := th.LoadF64(last, 0, pcLast)
					th.StoreF64(last, 0, v+1, pcLast)
				})
			})
		},
	})

	Register(Workload{
		Name:        "c_lu",
		Suite:       "ompscr",
		Description: "LU decomposition: pivot row broadcast via single, elimination sweeps barrier-separated — race-free",
		DefaultSize: 24,
		Footprint:   func(size int) uint64 { return uint64(size*size) * 8 },
		Run: func(ctx *Ctx) {
			n := ctx.Size
			m := mustF64(ctx.Space, n*n)
			pcInit := omp.Site("ompscr/c_lu.c:init")
			pcPivot := omp.Site("ompscr/c_lu.c:pivot-read")
			pcElim := omp.Site("ompscr/c_lu.c:eliminate")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.For(0, n*n, func(i int) {
					v := float64((i*2654435761)%1000) / 250.0
					if i/n == i%n {
						v += float64(n)
					}
					th.StoreF64(m, i, v, pcInit)
				})
				for k := 0; k < n-1; k++ {
					// Rows below the pivot, distributed; reads of the pivot
					// row are ordered by the previous iteration's barrier.
					th.For(k+1, n, func(r int) {
						piv := th.LoadF64(m, k*n+k, pcPivot)
						f := th.LoadF64(m, r*n+k, pcElim) / piv
						th.StoreF64(m, r*n+k, f, pcElim)
						for c := k + 1; c < n; c++ {
							v := th.LoadF64(m, r*n+c, pcElim) - f*th.LoadF64(m, k*n+c, pcPivot)
							th.StoreF64(m, r*n+c, v, pcElim)
						}
					})
				}
			})
		},
	})

	Register(Workload{
		Name:        "c_fft_sections",
		Suite:       "ompscr",
		Description: "FFT butterflies partitioned via sections — race-free control for the sections construct",
		DefaultSize: 512,
		Run: func(ctx *Ctx) {
			n := ctx.Size
			re := mustF64(ctx.Space, n)
			im := mustF64(ctx.Space, n)
			pcRe := omp.Site("ompscr/c_fft_sections.c:re")
			pcIm := omp.Site("ompscr/c_fft_sections.c:im")
			ctx.RT.Parallel(ctx.Threads, func(th *omp.Thread) {
				th.Single(func() {
					th.StoreF64(re, 0, 1, pcRe)
				})
				th.Sections(
					func() {
						for i := 0; i < n/2; i++ {
							v := th.LoadF64(re, i, pcRe)
							th.StoreF64(re, i, v*0.5, pcRe)
						}
					},
					func() {
						for i := n / 2; i < n; i++ {
							v := th.LoadF64(re, i, pcRe)
							th.StoreF64(re, i, v*0.25, pcRe)
						}
					},
					func() {
						for i := 0; i < n; i++ {
							th.StoreF64(im, i, float64(i), pcIm)
						}
					},
				)
				// After the sections' implicit barrier, reads are safe.
				th.For(0, n, func(i int) {
					_ = th.LoadF64(re, i, pcRe) + th.LoadF64(im, i, pcIm)
				})
			})
		},
	})
}
