package stream_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/stream"
	"sword/internal/trace"
)

// raceLines renders a report's race set as sorted strings for comparison.
func raceLines(rep *report.Report) []string {
	races := rep.Races()
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.String()
	}
	return out
}

// TestLiveMatchesPostMortem runs a multi-phase racy program under a
// live-flush collector while a streaming analyzer tails the store, and
// checks three things: epochs actually seal while the program runs, the
// final report's race set and structural stats match a pure post-mortem
// analysis, and the analysis frontier peaks strictly below the committed
// trace volume.
func TestLiveMatchesPostMortem(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{LiveFlush: true, MaxEvents: 64})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)

	metrics := obs.New()
	var liveRaces atomic.Int64
	an := stream.New(store, stream.Config{
		Obs:          metrics,
		PollInterval: 200 * time.Microsecond,
		OnRace:       func(report.Race) { liveRaces.Add(1) },
	})
	type result struct {
		rep *report.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := an.Run(context.Background())
		done <- result{rep, err}
	}()

	pcRace := pcreg.Site("stream-test:racy")
	pcMine := pcreg.Site("stream-test:private")
	x, _ := space.AllocF64(64)
	sealed := metrics.Counter("stream.epochs_sealed")
	var stop atomic.Bool
	rtm.Parallel(4, func(th *omp.Thread) {
		for phase := 0; ; phase++ {
			th.StoreF64(x, 0, float64(th.ID()), pcRace) // all threads: same word
			th.StoreF64(x, 8+th.ID(), 1, pcMine)        // disjoint per thread
			th.Barrier()
			// Keep producing barrier episodes until the tailer has sealed a
			// few while we are demonstrably still running, so the test pins
			// the online property rather than the post-mortem fallback.
			if th.ID() == 0 {
				if sealed.Load() >= 3 || phase >= 2000 {
					stop.Store(true)
				} else {
					time.Sleep(500 * time.Microsecond)
				}
			}
			th.Barrier()
			if stop.Load() {
				return
			}
		}
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("stream run: %v", res.err)
	}

	if got := sealed.Load(); got < 3 {
		t.Errorf("only %d epochs sealed while the program ran", got)
	}
	if liveRaces.Load() == 0 {
		t.Error("no races surfaced through OnRace")
	}

	post, err := core.New(store, core.Config{}).AnalyzeContext(context.Background())
	if err != nil {
		t.Fatalf("post-mortem: %v", err)
	}
	gotRaces, wantRaces := raceLines(res.rep), raceLines(post)
	if len(gotRaces) != len(wantRaces) {
		t.Fatalf("race sets differ: live %v vs post-mortem %v", gotRaces, wantRaces)
	}
	for i := range gotRaces {
		if gotRaces[i] != wantRaces[i] {
			t.Errorf("race %d: live %q vs post-mortem %q", i, gotRaces[i], wantRaces[i])
		}
	}
	// Structural stats are deterministic across the live/post-mortem split;
	// engine-order-dependent counters (cache hits, suppressions) are not
	// compared.
	g, w := res.rep.Stats, post.Stats
	if g.Intervals != w.Intervals || g.IntervalPairs != w.IntervalPairs ||
		g.TreeNodes != w.TreeNodes || g.Accesses != w.Accesses ||
		g.Regions != w.Regions || g.PairsPrefiltered != w.PairsPrefiltered ||
		g.PairsRetiredStatic != w.PairsRetiredStatic {
		t.Errorf("structural stats diverge:\nlive:        %+v\npost-mortem: %+v", g, w)
	}

	snap := metrics.Snapshot()
	peak := snap.Value("stream.frontier_bytes_peak")
	committed := snap.Value("stream.committed_bytes")
	if peak <= 0 || committed <= 0 {
		t.Fatalf("frontier metrics missing: peak=%d committed=%d", peak, committed)
	}
	if peak >= committed {
		t.Errorf("frontier peak %d not below committed trace volume %d — sealing freed nothing", peak, committed)
	}
}

// TestSingleIntervalRegionsSealLive pins the region-join sealing rule on
// the lulesh shape: a serial loop of bare parallel regions, each with a
// single barrier interval. The within-region rule (a later interval of
// the same region) never fires here — each region only ever produces
// interval 0 — so sealing must come from join evidence: the fork of the
// next region proves the previous one was joined.
func TestSingleIntervalRegionsSealLive(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{LiveFlush: true, MaxEvents: 64})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)

	metrics := obs.New()
	an := stream.New(store, stream.Config{
		Obs:          metrics,
		PollInterval: 200 * time.Microsecond,
	})
	type result struct {
		rep *report.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := an.Run(context.Background())
		done <- result{rep, err}
	}()

	pcRace := pcreg.Site("stream-test:serial-racy")
	pcMine := pcreg.Site("stream-test:serial-private")
	x, _ := space.AllocF64(64)
	sealed := metrics.Counter("stream.epochs_sealed")
	for n := 0; n < 2000; n++ {
		rtm.Parallel(4, func(th *omp.Thread) {
			th.StoreF64(x, 0, float64(th.ID()), pcRace) // all threads: same word
			th.StoreF64(x, 8+th.ID(), 1, pcMine)        // disjoint per thread
		})
		// Keep forking regions until several have sealed while we are
		// demonstrably still running.
		if n >= 4 && sealed.Load() >= 3 {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("stream run: %v", res.err)
	}

	if got := sealed.Load(); got < 3 {
		t.Errorf("only %d epochs sealed while the serial region loop ran", got)
	}

	post, err := core.New(store, core.Config{}).AnalyzeContext(context.Background())
	if err != nil {
		t.Fatalf("post-mortem: %v", err)
	}
	got, want := raceLines(res.rep), raceLines(post)
	if len(got) != len(want) {
		t.Fatalf("race sets differ: live %v vs post-mortem %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("race %d: live %q vs post-mortem %q", i, got[i], want[i])
		}
	}

	snap := metrics.Snapshot()
	peak := snap.Value("stream.frontier_bytes_peak")
	committed := snap.Value("stream.committed_bytes")
	if peak <= 0 || committed <= 0 {
		t.Fatalf("frontier metrics missing: peak=%d committed=%d", peak, committed)
	}
	if peak >= committed {
		t.Errorf("frontier peak %d not below committed trace volume %d — sealing freed nothing", peak, committed)
	}
}

// TestFinishedStore streams over a store whose run already completed: the
// end marker is present from the first poll, so everything lands in the
// finalize pass — and still matches post-mortem output exactly.
func TestFinishedStore(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	pc := pcreg.Site("stream-test:finished")
	x, _ := space.AllocF64(8)
	rtm.Parallel(3, func(th *omp.Thread) {
		th.StoreF64(x, 0, 1, pc)
		th.Barrier()
		th.StoreF64(x, th.ID()+1, 1, pc)
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := stream.New(store, stream.Config{}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	post, err := core.New(store, core.Config{}).AnalyzeContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, want := raceLines(rep), raceLines(post)
	if len(got) != len(want) {
		t.Fatalf("race sets differ: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("race %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestCancelledRun pins the crashed-run path: no end marker ever appears,
// the context is cancelled, and Run returns the partial live report with
// the context's error.
func TestCancelledRun(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{LiveFlush: true, MaxEvents: 64})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	pc := pcreg.Site("stream-test:cancel")
	x, _ := space.AllocF64(8)
	rtm.Parallel(2, func(th *omp.Thread) {
		for phase := 0; phase < 4; phase++ {
			th.StoreF64(x, 0, 1, pc)
			th.Barrier()
		}
	})
	// The collector is never closed: the trace looks like a crashed run.

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := stream.New(store, stream.Config{}).Run(ctx)
	if err == nil {
		t.Fatal("expected the context error")
	}
	if rep == nil {
		t.Fatal("expected a partial report")
	}
}
