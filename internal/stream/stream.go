// Package stream implements SWORD's online analysis: it tails a trace
// datadir that a collector is still writing and emits races while the
// traced program runs, instead of waiting for the run to finish.
//
// The subsystem composes three layers. The tailing readers in
// internal/trace (MetaTail, LogTail) deliver exactly the committed prefix
// of every growing file, distinguishing the torn tail of an in-progress
// append from real corruption. This package's Analyzer recovers the
// concurrency structure incrementally from those records and decides when
// a barrier episode is *sealed* — no further records or data can arrive
// for it — using the barrier semantics of the collector: a thread closes
// its interval fragments (committing their meta records) before arriving
// at a barrier, so observing any record of barrier interval b+1 for a
// region proves every record of interval b was durably committed first.
// Sealed groups are handed to core.LiveAnalyzer, which compares their
// same-group interval pairs immediately with the persistent sweep engine
// and frees the trees afterwards — the active frontier of the analysis
// stays bounded while the trace grows without bound. Cross-region pairs
// (which depend on task windows written only at collector close) are
// completed by the finalize pass at end of run, which skips every pair the
// live rounds already decided; the reported race set is therefore
// identical to a post-mortem analysis by construction.
//
// End of run is detected by the appearance of the pc-table auxiliary
// file, which the collector writes last; a crashed run never produces it,
// and cancelling the context then returns the partial live report. Real
// corruption (checksum or framing damage over fully present bytes)
// abandons the live state and falls back to a post-mortem salvage
// analysis over whatever the store holds.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sword/internal/core"
	"sword/internal/obs"
	"sword/internal/report"
	"sword/internal/trace"
)

// Config parameterizes a streaming Analyzer.
type Config struct {
	// Core carries the analyzer knobs (workers, prefilter, probe engine).
	// Salvage is ignored: live rounds are strict, and the corruption
	// fallback sets it itself.
	Core core.Config
	// PollInterval is how long the tailer sleeps when a round made no
	// progress. 0 means 2ms — tight enough that detection latency is
	// dominated by the collector's flush cadence, loose enough to stay off
	// the CPU while the workload computes.
	PollInterval time.Duration
	// StepBytes bounds how much sealed trace volume one live round hands
	// the analyzer at once; larger backlogs are split into several steps
	// (never below one group). 0 means 64 MiB.
	StepBytes int64
	// OnRace, when non-nil, is called once per distinct race at the moment
	// it is first reported — the live feed swordwatch prints. Called from
	// the Run goroutine; the race's source names may still be placeholder
	// ids (the collector persists its pc table only at close).
	OnRace func(report.Race)
	// Obs, when non-nil, receives the stream.* metrics (frontier_bytes,
	// epochs_sealed, races_live, tail_retries; see docs/FORMAT.md).
	Obs *obs.Metrics
}

// Analyzer tails one growing trace store and analyzes it online. Create
// with New, drive with Run; Snapshot serves concurrent readers a copy of
// the report so far.
type Analyzer struct {
	store trace.Store
	cfg   Config

	mu   sync.Mutex // serializes live state against Snapshot
	live *core.LiveAnalyzer

	// Per-slot tailing state.
	slots map[int]*slotTail

	// Concurrency-structure bookkeeping accumulated across rounds.
	recs      map[int][]trace.Meta // all committed records, per slot
	certs     []pendingCert
	parentOf  map[uint64]uint64 // region pid -> ppid
	hasRecord map[uint64]bool   // region pids with >=1 record
	maxBid    map[uint64]uint64 // per pid: highest BID observed
	groups    map[core.IntervalGroup]*groupState
	analyzed  map[core.IntervalGroup]bool

	// Region-join tracking: a joined region's whole subtree is sealed at
	// once, which is what lets single-barrier-interval regions (a bare
	// parallel-for) seal before end of run — the prevMax rule alone only
	// seals *within* a region.
	roundNum uint64
	forkOf   map[uint64]forkCoords // pid -> where/when it was forked
	fragMark map[forkPoint]mark    // per (pid,tid): farthest committed fragment (BID, Cut)
	forkMark map[forkPoint]mark    // per (ppid,ptid): farthest registered fork (ParentBID, Seq)
	unjoined map[uint64][]uint64   // ppid -> non-async children with no join evidence yet
	joinedIn map[uint64]uint64     // pid -> round whose drain first read join evidence
	maxTop   uint64                // highest top-level region id observed

	analyzedBytes int64 // trace volume of analyzed (freed) groups
	raceSeen      map[raceKey]bool
	tailRetries   uint64

	// Metrics handles (nil-safe no-ops when cfg.Obs is nil).
	mFrontier     *obs.Gauge
	mFrontierPeak *obs.Gauge
	mCommitted    *obs.Gauge
	mSealed       *obs.Counter
	mRacesLive    *obs.Counter
	mRetries      *obs.Counter
	mSteps        *obs.Counter
	mRounds       *obs.Counter
}

// slotTail is the tailing state of one thread slot.
type slotTail struct {
	slot     int
	meta     *trace.MetaTail
	log      *trace.LogTail
	limit    uint64 // committed physical log frontier (whole frames)
	logFront uint64 // committed logical log frontier
}

// groupState tracks one barrier episode's fragments until it is sealed.
type groupState struct {
	frags []fragRef
	bytes int64
}

type fragRef struct {
	slot int
	end  uint64 // logical end of the fragment's data range
}

// pendingCert holds a certificate record until its group seals: attaching
// a certificate whose thread intervals have not all arrived would be a
// structure error, not a retirement.
type pendingCert struct {
	slot  int
	group core.IntervalGroup
	cert  trace.LoopCert
}

// forkPoint names the thread a region was forked from: the forking
// region instance and the thread id within it. Every top-level region
// shares the (NoParent, 0) point — the serial initial thread.
type forkPoint struct {
	pid uint64
	tid uint64
}

// forkCoords records where in its parent's execution a region was forked.
// The fields are region-level and identical on every fragment meta.
type forkCoords struct {
	ptid  uint64
	pbid  uint64
	pcut  uint64
	seq   uint64
	async bool
}

// mark is a (barrier interval, position) point along one thread's program
// order. Interval-major comparison matches program order because both cut
// and fork-sequence counters reset at barriers.
type mark struct {
	bid, pos uint64
}

func (m mark) less(o mark) bool {
	return m.bid < o.bid || (m.bid == o.bid && m.pos < o.pos)
}

// raceKey mirrors the report's dedup identity, for the OnRace diff.
type raceKey struct {
	pcA, pcB uint64
	wA, wB   bool
}

func keyOfRace(r report.Race) raceKey {
	a, b := r.First, r.Second
	if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
		a, b = b, a
	}
	return raceKey{pcA: a.PC, pcB: b.PC, wA: a.Write, wB: b.Write}
}

// New returns a streaming analyzer over store.
func New(store trace.Store, cfg Config) *Analyzer {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.StepBytes <= 0 {
		cfg.StepBytes = 64 << 20
	}
	cfg.Core.Salvage = false
	a := &Analyzer{
		store:     store,
		cfg:       cfg,
		live:      core.NewLive(cfg.Core),
		slots:     make(map[int]*slotTail),
		recs:      make(map[int][]trace.Meta),
		parentOf:  make(map[uint64]uint64),
		hasRecord: make(map[uint64]bool),
		maxBid:    make(map[uint64]uint64),
		groups:    make(map[core.IntervalGroup]*groupState),
		analyzed:  make(map[core.IntervalGroup]bool),
		forkOf:    make(map[uint64]forkCoords),
		fragMark:  make(map[forkPoint]mark),
		forkMark:  make(map[forkPoint]mark),
		unjoined:  make(map[uint64][]uint64),
		joinedIn:  make(map[uint64]uint64),
		raceSeen:  make(map[raceKey]bool),
	}
	m := cfg.Obs
	a.mFrontier = m.Gauge("stream.frontier_bytes")
	a.mFrontierPeak = m.Gauge("stream.frontier_bytes_peak")
	a.mCommitted = m.Gauge("stream.committed_bytes")
	a.mSealed = m.Counter("stream.epochs_sealed")
	a.mRacesLive = m.Counter("stream.races_live")
	a.mRetries = m.Counter("stream.tail_retries")
	a.mSteps = m.Counter("stream.steps")
	a.mRounds = m.Counter("stream.rounds")
	return a
}

// Snapshot returns a copy of the live report: the races confirmed so far
// plus any notes. Safe to call concurrently with Run; the copy is taken
// between analysis rounds.
func (a *Analyzer) Snapshot() *report.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return cloneReport(a.live.Report())
}

func cloneReport(src *report.Report) *report.Report {
	dst := report.New()
	for _, r := range src.Races() {
		dst.Add(r)
	}
	for _, n := range src.Notes() {
		dst.Note("%s", n)
	}
	dst.Stats = src.Stats
	return dst
}

// Run tails the store until the run ends, analyzing sealed barrier
// episodes as they appear, and returns the final report — identical to
// what a post-mortem analysis of the finished trace would produce. A
// cancelled ctx returns the partial live report together with ctx.Err()
// (the crashed-run path: no end-of-run marker will ever appear). Real
// trace corruption falls back to a post-mortem salvage analysis.
func (a *Analyzer) Run(ctx context.Context) (*report.Report, error) {
	defer a.closeTails()
	var endSeen bool
	var pcTableLen int
	for {
		if err := ctx.Err(); err != nil {
			return a.Snapshot(), err
		}
		progress, err := a.round(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return a.Snapshot(), ctx.Err()
			}
			// Real damage: the live structure can no longer be trusted.
			// Wait for the run to end (or the caller to give up), then
			// analyze whatever survives in one salvage pass.
			return a.salvageFallback(ctx, err)
		}
		// End of run: the collector writes the pc table last, so once it
		// is present and stable, one more full drain has seen everything.
		done, tlen := a.endMarker()
		if done && endSeen && tlen == pcTableLen && !progress {
			return a.finalize(ctx)
		}
		endSeen, pcTableLen = done, tlen
		if !progress {
			select {
			case <-time.After(a.cfg.PollInterval):
			case <-ctx.Done():
			}
		}
	}
}

// endMarker reports whether the end-of-run marker (the pc table aux file)
// is present, and its current size so the caller can require stability —
// the file's creation and its contents are not atomic.
func (a *Analyzer) endMarker() (bool, int) {
	aux, err := a.store.OpenAux("pctable")
	if err != nil {
		return false, 0
	}
	defer aux.Close()
	data, err := io.ReadAll(aux)
	if err != nil || len(data) == 0 {
		return false, 0
	}
	return true, len(data)
}

// round is one poll-drain-seal-analyze cycle. It returns whether anything
// advanced (new records, new log bytes, or an analysis step ran); an error
// means real corruption or I/O failure, never an in-progress append.
func (a *Analyzer) round(ctx context.Context) (bool, error) {
	a.mRounds.Inc()
	a.roundNum++
	// Seal with the evidence snapshot from *before* this drain: every poll
	// of this round starts after last round's reads finished, so a record
	// written before last round's evidence was read — which includes every
	// record of a group that evidence seals — is visible to this round.
	// (Join evidence applies the same one-round delay via joinedIn.)
	prevMax := make(map[uint64]uint64, len(a.maxBid))
	for pid, bid := range a.maxBid {
		prevMax[pid] = bid
	}
	progress, err := a.drain()
	if err != nil {
		return progress, err
	}
	ready := a.sealedReady(prevMax)
	if len(ready) > 0 {
		if err := a.step(ctx, ready); err != nil {
			return true, err
		}
		progress = true
	}
	a.publishFrontier()
	return progress, nil
}

// drain polls every slot's tails, folding newly committed records into the
// bookkeeping. Meta is polled before the log so a record read this round
// never references data beyond this round's log frontier on a live-flush
// collector.
func (a *Analyzer) drain() (bool, error) {
	slots, err := a.store.Slots()
	if err != nil {
		return false, fmt.Errorf("stream: list slots: %w", err)
	}
	progress := false
	for _, slot := range slots {
		st, ok := a.slots[slot]
		if !ok {
			st = &slotTail{
				slot: slot,
				meta: trace.NewMetaTail(a.store, slot),
				log:  trace.NewLogTail(a.store, slot),
			}
			a.slots[slot] = st
			progress = true
		}
		metas, certs, err := st.meta.Poll()
		if err != nil {
			return progress, err
		}
		for i := range metas {
			a.ingest(slot, &metas[i])
		}
		for _, c := range certs {
			a.certs = append(a.certs, pendingCert{
				slot:  slot,
				group: core.IntervalGroup{PID: c.PID, BID: c.BID},
				cert:  c,
			})
		}
		if len(metas) > 0 || len(certs) > 0 {
			progress = true
		}
		off, logical, err := st.log.Poll()
		if err != nil {
			return progress, err
		}
		if off > st.limit || logical > st.logFront {
			progress = true
		}
		st.limit, st.logFront = off, logical
		if r := st.log.Retries(); r > a.tailRetries {
			a.mRetries.Add(r - a.tailRetries)
			a.tailRetries = r
		}
	}
	return progress, nil
}

// ingest folds one committed meta record into the bookkeeping.
func (a *Analyzer) ingest(slot int, m *trace.Meta) {
	a.recs[slot] = append(a.recs[slot], *m)
	a.parentOf[m.PID] = m.PPID
	a.hasRecord[m.PID] = true
	if m.BID > a.maxBid[m.PID] {
		a.maxBid[m.PID] = m.BID
	}
	g := core.IntervalGroup{PID: m.PID, BID: m.BID}
	gs := a.groups[g]
	if gs == nil {
		gs = &groupState{}
		a.groups[g] = gs
	}
	gs.frags = append(gs.frags, fragRef{slot: slot, end: m.DataBegin + m.DataSize})
	gs.bytes += int64(m.DataSize)
	a.noteJoinEvidence(m)
}

// noteJoinEvidence folds one record into the region-join tracking. Three
// commit-ordered facts prove a non-async region was joined, because the
// forking thread suspends for the region's whole lifetime and every
// fragment close commits its meta record durably before the thread moves
// on: (1) a fragment of the forking thread's own interval with
// Cut >= ParentCut — the fragment at index ParentCut is the one reopened
// by the join itself; (2) any fragment of the forking region with a
// higher BID — departing the interval's barrier proves every thread,
// including the forker, finished the interval, and a non-async join
// precedes the forker's barrier arrival; (3) a sibling forked later from
// the same thread interval (higher Seq, or a later interval) — forks are
// program-ordered on the forking thread. Top-level regions, whose forker
// is the untraced serial thread (and whose fork coordinates are reset per
// Runtime.Parallel call), instead use the region-id order: the analyzer's
// concurrency model orders top-level frames by region id, mirroring the
// runtime's serial fork-join of top-level regions, so a record of a
// higher-id top-level region proves every lower-id one was joined.
// Async regions (tasks) never collect direct evidence — the
// spawner keeps running, so ParentCut-indexed fragments prove nothing —
// and are sealed through a joined ancestor instead: tasks complete at
// their binding region's barriers, so a joined ancestor bounds them too.
func (a *Analyzer) noteJoinEvidence(m *trace.Meta) {
	if _, ok := a.forkOf[m.PID]; !ok {
		fc := forkCoords{
			ptid:  m.ParentTID,
			pbid:  m.ParentBID,
			pcut:  m.ParentCut,
			seq:   m.Seq,
			async: m.Async,
		}
		a.forkOf[m.PID] = fc
		if !fc.async {
			a.unjoined[m.PPID] = append(a.unjoined[m.PPID], m.PID)
		}
		if m.PPID == trace.NoParent {
			if m.PID > a.maxTop {
				a.maxTop = m.PID
			}
		} else {
			fp := forkPoint{pid: m.PPID, tid: fc.ptid}
			if fm := (mark{fc.pbid, fc.seq}); a.forkMark[fp].less(fm) {
				a.forkMark[fp] = fm
			}
		}
		a.sweepJoins(m.PPID)
	}
	fp := forkPoint{pid: m.PID, tid: m.TID()}
	if fm := (mark{m.BID, m.Cut}); a.fragMark[fp].less(fm) {
		a.fragMark[fp] = fm
	}
	a.sweepJoins(m.PID)
}

// sweepJoins re-checks the not-yet-joined children of one region against
// the accumulated evidence, recording the round in which each join became
// visible. Joined children leave the list, so each is scanned only while
// its region is live.
func (a *Analyzer) sweepJoins(ppid uint64) {
	kids := a.unjoined[ppid]
	if len(kids) == 0 {
		return
	}
	keep := kids[:0]
	for _, pid := range kids {
		if a.joinEvidenced(pid, ppid, a.forkOf[pid]) {
			a.joinedIn[pid] = a.roundNum
		} else {
			keep = append(keep, pid)
		}
	}
	if len(keep) == 0 {
		delete(a.unjoined, ppid)
	} else {
		a.unjoined[ppid] = keep
	}
}

func (a *Analyzer) joinEvidenced(pid, ppid uint64, fc forkCoords) bool {
	if ppid == trace.NoParent {
		return pid < a.maxTop // a later top-level region registered
	}
	at := mark{fc.pbid, fc.pcut}
	if fm, ok := a.fragMark[forkPoint{pid: ppid, tid: fc.ptid}]; ok && !fm.less(at) {
		return true // forker's post-join fragment committed
	}
	if a.maxBid[ppid] > fc.pbid {
		return true // a teammate departed the forking interval's barrier
	}
	forked := mark{fc.pbid, fc.seq}
	if mk, ok := a.forkMark[forkPoint{pid: ppid, tid: fc.ptid}]; ok && forked.less(mk) {
		return true // a later sibling fork registered
	}
	return false
}

// joinedChain reports whether the region or any ancestor has join
// evidence that was read before this round's drain started — after a
// join, no thread of the subtree runs, so every record of every group
// under it was committed before the evidence and is visible this round.
func (a *Analyzer) joinedChain(pid uint64) bool {
	for steps := 0; steps <= len(a.parentOf); steps++ {
		if r, ok := a.joinedIn[pid]; ok && r < a.roundNum {
			return true
		}
		pp, ok := a.parentOf[pid]
		if !ok || pp == trace.NoParent {
			return false
		}
		pid = pp
	}
	return false
}

// chainPresent reports whether the region's full ancestor chain has
// records — the condition for the region to survive a strict assemble.
func (a *Analyzer) chainPresent(pid uint64) bool {
	for steps := 0; steps <= len(a.parentOf); steps++ {
		if !a.hasRecord[pid] {
			return false
		}
		pp := a.parentOf[pid]
		if pp == trace.NoParent {
			return true
		}
		pid = pp
	}
	return false // a parent cycle; let the salvage path diagnose it
}

// sealedReady lists the groups that can be analyzed now: sealed by the
// evidence snapshot (a later interval of the same region, or a join of
// the region or an ancestor), ancestor chains present, and every
// fragment's data behind its slot's committed logical frontier.
func (a *Analyzer) sealedReady(prevMax map[uint64]uint64) []core.IntervalGroup {
	var ready []core.IntervalGroup
	for g, gs := range a.groups {
		if a.analyzed[g] || !a.chainPresent(g.PID) {
			continue
		}
		if prevMax[g.PID] <= g.BID && !a.joinedChain(g.PID) {
			continue
		}
		ok := true
		for _, f := range gs.frags {
			st := a.slots[f.slot]
			if st == nil || f.end > st.logFront {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, g)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].PID != ready[j].PID {
			return ready[i].PID < ready[j].PID
		}
		return ready[i].BID < ready[j].BID
	})
	return ready
}

// step runs the ready groups through the live analyzer in chunks bounded
// by StepBytes, then reports any newly confirmed races.
func (a *Analyzer) step(ctx context.Context, ready []core.IntervalGroup) error {
	for len(ready) > 0 {
		var budget int64
		n := 0
		for n < len(ready) && (n == 0 || budget < a.cfg.StepBytes) {
			budget += a.groups[ready[n]].bytes
			n++
		}
		chunk, rest := ready[:n], ready[n:]
		if err := a.stepChunk(ctx, chunk); err != nil {
			return err
		}
		ready = rest
	}
	a.reportNewRaces()
	return nil
}

func (a *Analyzer) stepChunk(ctx context.Context, chunk []core.IntervalGroup) error {
	target := make(map[core.IntervalGroup]bool, len(chunk))
	for _, g := range chunk {
		target[g] = true
	}
	inputs := a.assembleInputs(target)
	limits := make(map[int]uint64, len(a.slots))
	for slot, st := range a.slots {
		limits[slot] = st.limit
	}
	a.mu.Lock()
	_, err := a.live.Step(ctx, &prefixStore{Store: a.store, limits: limits}, inputs, target)
	a.mu.Unlock()
	if err != nil {
		return err
	}
	for _, g := range chunk {
		a.analyzed[g] = true
		a.analyzedBytes += a.groups[g].bytes
		a.mSealed.Inc()
	}
	a.mSteps.Inc()
	return nil
}

// assembleInputs builds the SlotRecords a live step consumes: every
// accumulated record whose region's ancestor chain is present (a strict
// assemble would reject orphans), plus the certificates of groups that are
// sealed — earlier certificates would reference intervals that have not
// arrived yet.
func (a *Analyzer) assembleInputs(target map[core.IntervalGroup]bool) []core.SlotRecords {
	sealed := func(g core.IntervalGroup) bool { return a.analyzed[g] || target[g] }
	slots := make([]int, 0, len(a.recs))
	for slot := range a.recs {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	inputs := make([]core.SlotRecords, 0, len(slots))
	for _, slot := range slots {
		in := core.SlotRecords{Slot: slot}
		for _, m := range a.recs[slot] {
			if a.chainPresent(m.PID) {
				in.Metas = append(in.Metas, m)
			}
		}
		for _, pc := range a.certs {
			if pc.slot == slot && sealed(pc.group) {
				in.Certs = append(in.Certs, pc.cert)
			}
		}
		if len(in.Metas) > 0 || len(in.Certs) > 0 {
			inputs = append(inputs, in)
		}
	}
	return inputs
}

// reportNewRaces diffs the report against the races already surfaced and
// fires OnRace for each new one.
func (a *Analyzer) reportNewRaces() {
	a.mu.Lock()
	races := a.live.Report().Races()
	a.mu.Unlock()
	for _, r := range races {
		k := keyOfRace(r)
		if a.raceSeen[k] {
			continue
		}
		a.raceSeen[k] = true
		a.mRacesLive.Inc()
		if a.cfg.OnRace != nil {
			a.cfg.OnRace(r)
		}
	}
}

// publishFrontier updates the stream.frontier_bytes gauges: the committed
// trace volume not yet analyzed and freed — the memory-relevant measure of
// the active frontier.
func (a *Analyzer) publishFrontier() {
	var committed int64
	for _, st := range a.slots {
		committed += int64(st.logFront)
	}
	frontier := committed - a.analyzedBytes
	if frontier < 0 {
		frontier = 0
	}
	a.mCommitted.Set(committed)
	a.mFrontier.Set(frontier)
	a.mFrontierPeak.SetMax(frontier)
}

// finalize completes the analysis over the now-finished trace: the full
// post-mortem pass minus every pair the live rounds already decided. The
// result — races, stats, notes — matches a pure post-mortem run.
// closeTails releases every slot's tailing reader (LogTail holds the log
// file open between polls). Idempotent.
func (a *Analyzer) closeTails() {
	for _, st := range a.slots {
		st.log.Close()
	}
}

func (a *Analyzer) finalize(ctx context.Context) (*report.Report, error) {
	a.closeTails()
	a.mu.Lock()
	rep, err := a.live.Finalize(ctx, a.store)
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	a.reportNewRaces()
	return rep, nil
}

// salvageFallback is the corruption path: the live structure is abandoned
// and the store is analyzed post-mortem in salvage mode once the run ends
// (or immediately if it already has). Torn tails of a still-running
// collector would be misread as truncation, so the fallback waits for the
// end marker first; a cancelled ctx aborts the wait.
func (a *Analyzer) salvageFallback(ctx context.Context, cause error) (*report.Report, error) {
	for {
		if done, _ := a.endMarker(); done {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("stream: trace damaged while the run was still in progress: %w", cause)
		case <-time.After(a.cfg.PollInterval):
		}
	}
	a.closeTails()
	cfg := a.cfg.Core
	cfg.Salvage = true
	cfg.Obs = a.cfg.Obs
	rep, err := core.New(a.store, cfg).AnalyzeContext(ctx)
	if err != nil {
		return nil, errors.Join(cause, err)
	}
	rep.Note("online analysis aborted (%v); results are from a post-mortem salvage pass", cause)
	return rep, nil
}

// prefixStore is the durable-prefix view of a growing store: log readers
// are truncated at the committed-frame frontier the log tail measured, so
// a strict reader sees a clean end of file instead of a torn append.
// Everything else passes through.
type prefixStore struct {
	trace.Store
	limits map[int]uint64
}

func (p *prefixStore) OpenLog(slot int) (io.ReadCloser, error) {
	src, err := p.Store.OpenLog(slot)
	if err != nil {
		return nil, err
	}
	return &limitedLog{r: io.LimitReader(src, int64(p.limits[slot])), c: src}, nil
}

type limitedLog struct {
	r io.Reader
	c io.Closer
}

func (l *limitedLog) Read(p []byte) (int, error) { return l.r.Read(p) }
func (l *limitedLog) Close() error               { return l.c.Close() }

// interface guard: prefixStore must remain a trace.Store.
var _ trace.Store = (*prefixStore)(nil)
