package harness

import (
	"testing"

	"sword/internal/workloads"
)

// TestDetectionMatrix is the reproduction's central correctness gate: for
// every registered workload, each tool must report exactly the expected
// number of distinct races — sword a superset of archer, the documented
// misses missed, the race-free codes clean (no false alarms, §IV).
func TestDetectionMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is not short")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Threads: 4, NodeBudget: -1}
			for _, tc := range []struct {
				tool Tool
				want int
			}{
				{Archer, w.Expect.Archer},
				{ArcherLow, w.Expect.ArcherLow},
				{Sword, w.Expect.Sword},
			} {
				res, err := Run(w, tc.tool, opts)
				if err != nil {
					t.Fatalf("%s under %s: %v", w.Name, tc.tool, err)
				}
				if res.OOM {
					t.Fatalf("%s under %s: unexpected OOM", w.Name, tc.tool)
				}
				if res.Races != tc.want {
					t.Errorf("%s under %s: %d races, want %d\n%s",
						w.Name, tc.tool, res.Races, tc.want, res.Report.String())
				}
			}
		})
	}
}

// TestSwordSupersetOfArcher: on every workload, sword must report at least
// as many races as archer — the paper's headline detection claim.
func TestSwordSupersetOfArcher(t *testing.T) {
	for _, w := range workloads.All() {
		if w.Expect.Sword < w.Expect.Archer {
			t.Errorf("%s: expectation violates superset property (%d < %d)",
				w.Name, w.Expect.Sword, w.Expect.Archer)
		}
	}
}

// TestNoFalseAlarmsOnRaceFree: every "-no"-style workload must stay clean
// under all tools at several thread counts.
func TestNoFalseAlarmsOnRaceFree(t *testing.T) {
	if testing.Short() {
		t.Skip("thread sweep is not short")
	}
	for _, w := range workloads.All() {
		if w.Expect != (workloads.Expected{}) {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, threads := range []int{2, 3, 8} {
				for _, tool := range []Tool{Archer, Sword} {
					res, err := Run(w, tool, Options{Threads: threads, NodeBudget: -1})
					if err != nil {
						t.Fatalf("%s/%d under %s: %v", w.Name, threads, tool, err)
					}
					if res.Races != 0 {
						t.Errorf("%s with %d threads under %s: false alarms:\n%s",
							w.Name, threads, tool, res.Report.String())
					}
				}
			}
		})
	}
}

// TestMatrixStableAcrossThreadCounts: detection counts for the racy
// workloads must not depend on the team size (2, 4, 8 threads).
func TestMatrixStableAcrossThreadCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("thread sweep is not short")
	}
	for _, w := range workloads.All() {
		if w.Expect == (workloads.Expected{}) {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			for _, threads := range []int{2, 8} {
				res, err := Run(w, Sword, Options{Threads: threads, NodeBudget: -1})
				if err != nil {
					t.Fatal(err)
				}
				if res.Races != w.Expect.Sword {
					t.Errorf("sword with %d threads: %d races, want %d\n%s",
						threads, res.Races, w.Expect.Sword, res.Report.String())
				}
				resA, err := Run(w, Archer, Options{Threads: threads, NodeBudget: -1})
				if err != nil {
					t.Fatal(err)
				}
				if resA.Races != w.Expect.Archer {
					t.Errorf("archer with %d threads: %d races, want %d\n%s",
						threads, resA.Races, w.Expect.Archer, resA.Report.String())
				}
			}
		})
	}
}
