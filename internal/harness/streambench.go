package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/stream"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// The streaming-analysis experiment: how long until the first race
// surfaces when the trace is analyzed while the program runs, versus the
// post-mortem baseline that cannot answer anything before the program has
// ended AND the full analysis has run. The schema is the BENCH_10.json
// artifact (see EXPERIMENTS.md).

// StreamLane is one leg of the comparison. All wall times are measured
// from program start, so first_race_ms across lanes answers the user's
// question directly: how long after launch do I learn about the race?
type StreamLane struct {
	Races          int     `json:"races"`
	FirstRaceMs    float64 `json:"first_race_ms"`
	ProgramMs      float64 `json:"program_ms"`
	AnalysisDoneMs float64 `json:"analysis_done_ms"`
	FrontierPeakB  uint64  `json:"frontier_peak_bytes"`
	CommittedB     uint64  `json:"committed_bytes"`
}

// StreamComparison pairs the online lane with the post-mortem baseline on
// the same program. The post-mortem lane's first race arrives exactly when
// its analysis finishes, and its "frontier" is the whole resident trace.
type StreamComparison struct {
	Online     StreamLane `json:"online"`
	PostMortem StreamLane `json:"post_mortem"`
}

// streamBenchPhases is the barrier-episode count of the phased synthetic
// program: long enough that the online analyzer demonstrably seals and
// analyzes epochs while the program is still running.
const streamBenchPhases = 300

// streamPhased is a long-running racy program: every barrier interval all
// threads collide on one word and the master pauses briefly, mimicking a
// production loop that races early and keeps computing long after.
func streamPhased(rtm *omp.Runtime, space *memsim.Space) {
	pcRace := pcreg.Site("streambench:racy")
	pcMine := pcreg.Site("streambench:private")
	x, err := space.AllocF64(64)
	if err != nil {
		panic(err)
	}
	rtm.Parallel(4, func(th *omp.Thread) {
		for phase := 0; phase < streamBenchPhases; phase++ {
			th.StoreF64(x, 0, float64(th.ID()), pcRace)
			th.StoreF64(x, 8+th.ID(), 1, pcMine)
			if th.ID() == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			th.Barrier()
		}
	})
}

// streamBenchPrograms are the experiment's subjects: the phased synthetic
// program plus two racy evaluation workloads.
func streamBenchPrograms() (map[string]func(*omp.Runtime, *memsim.Space), []string, error) {
	progs := map[string]func(*omp.Runtime, *memsim.Space){
		"phased-racy": streamPhased,
	}
	order := []string{"phased-racy"}
	for _, name := range []string{"plusplus-orig-yes", "c_jacobi"} {
		wl, err := workloads.Get(name)
		if err != nil {
			return nil, nil, err
		}
		progs[name] = func(rtm *omp.Runtime, space *memsim.Space) {
			wl.Run(&workloads.Ctx{RT: rtm, Space: space, Threads: 4, Size: wl.DefaultSize})
		}
		order = append(order, name)
	}
	return progs, order, nil
}

// StreamExperiment runs each subject once under a live-flush collector
// with the streaming analyzer tailing the store, then replays a
// post-mortem analysis over the very same trace. The race sets must be
// identical — the streaming subsystem's identity contract — and on the
// phased program the online lane must both beat the post-mortem baseline
// to the first race and hold its frontier strictly below the resident
// trace; the experiment fails loudly otherwise, so the bench artifact can
// never record a regression of either acceptance property.
func StreamExperiment() (map[string]StreamComparison, error) {
	progs, order, err := streamBenchPrograms()
	if err != nil {
		return nil, err
	}
	out := make(map[string]StreamComparison, len(progs))
	for _, name := range order {
		program := progs[name]
		store := trace.NewMemStore()
		metrics := obs.New()
		start := time.Now()
		var firstRace atomic.Int64 // µs since start; 0 = none yet
		an := stream.New(store, stream.Config{
			Obs:          metrics,
			PollInterval: 200 * time.Microsecond,
			OnRace: func(report.Race) {
				firstRace.CompareAndSwap(0, time.Since(start).Microseconds())
			},
		})
		type result struct {
			rep *report.Report
			err error
		}
		done := make(chan result, 1)
		go func() {
			rep, err := an.Run(context.Background())
			done <- result{rep, err}
		}()
		col := rt.New(store, rt.Config{LiveFlush: true, MaxEvents: 64})
		rtm := omp.New(omp.WithTool(col))
		program(rtm, memsim.NewSpace(nil))
		programDur := time.Since(start)
		if err := col.Close(); err != nil {
			return nil, fmt.Errorf("harness: stream experiment %s: %w", name, err)
		}
		res := <-done
		onlineDone := time.Since(start)
		if res.err != nil {
			return nil, fmt.Errorf("harness: stream experiment %s: %w", name, res.err)
		}

		analyzeStart := time.Now()
		post, err := core.New(store, core.Config{}).Analyze()
		if err != nil {
			return nil, fmt.Errorf("harness: stream experiment %s post-mortem: %w", name, err)
		}
		analyzeDur := time.Since(analyzeStart)
		if res.rep.Len() != post.Len() {
			return nil, fmt.Errorf("harness: stream experiment %s: online found %d race(s), post-mortem %d",
				name, res.rep.Len(), post.Len())
		}

		snap := metrics.Snapshot()
		peak := uint64(snap.Value("stream.frontier_bytes_peak"))
		committed := uint64(snap.Value("stream.committed_bytes"))
		onlineFirst := float64(firstRace.Load()) / 1e3
		if onlineFirst == 0 { // race only surfaced at finalize
			onlineFirst = float64(onlineDone.Microseconds()) / 1e3
		}
		postMortemDone := float64((programDur + analyzeDur).Microseconds()) / 1e3
		cmp := StreamComparison{
			Online: StreamLane{
				Races:          res.rep.Len(),
				FirstRaceMs:    onlineFirst,
				ProgramMs:      float64(programDur.Microseconds()) / 1e3,
				AnalysisDoneMs: float64(onlineDone.Microseconds()) / 1e3,
				FrontierPeakB:  peak,
				CommittedB:     committed,
			},
			PostMortem: StreamLane{
				Races:          post.Len(),
				FirstRaceMs:    postMortemDone,
				ProgramMs:      float64(programDur.Microseconds()) / 1e3,
				AnalysisDoneMs: postMortemDone,
				FrontierPeakB:  committed,
				CommittedB:     committed,
			},
		}
		if name == "phased-racy" {
			if cmp.Online.FirstRaceMs >= cmp.PostMortem.FirstRaceMs {
				return nil, fmt.Errorf("harness: stream experiment %s: online first race at %.2fms did not beat the %.2fms post-mortem baseline",
					name, cmp.Online.FirstRaceMs, cmp.PostMortem.FirstRaceMs)
			}
			if peak == 0 || committed == 0 || peak >= committed {
				return nil, fmt.Errorf("harness: stream experiment %s: frontier peak %d not below resident trace %d",
					name, peak, committed)
			}
		}
		out[name] = cmp
	}
	return out, nil
}

// WriteStreamBench runs StreamExperiment and writes the results to path
// as indented JSON — the BENCH_10.json artifact.
func WriteStreamBench(path string) error {
	results, err := StreamExperiment()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal stream results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
