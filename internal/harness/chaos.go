package harness

import (
	"fmt"
	"strings"

	"sword"
	"sword/internal/trace"
)

// chaosWorkload collects one racy two-thread run into store via the public
// API and returns the collection error (expected when store is faulty).
// The raw codec and small buffer make sure the trace volume actually
// reaches the store mid-run instead of sitting in writer buffers.
func chaosWorkload(store trace.Store) (collectErr, setupErr error) {
	sess, err := sword.NewSession(
		sword.WithStore(store),
		sword.WithCodec("raw"),
		sword.WithMaxEvents(128),
	)
	if err != nil {
		return nil, err
	}
	pc := sword.Site("chaos:ww")
	arr, _ := sess.Space().AllocF64(64)
	sess.Runtime().Parallel(2, func(th *sword.Thread) {
		for round := 0; round < 400; round++ {
			for i := 0; i < 64; i++ {
				th.StoreF64(arr, i, float64(i), pc)
			}
			th.Barrier()
		}
	})
	return sess.CollectOnly(), nil
}

// ChaosExperiment is the crash-tolerance demonstration: the same racy
// program is collected twice — once onto a healthy store, once onto a
// store that runs out of space mid-run and tears its final write — and
// the damaged trace is analyzed in salvage mode. The artifact shows how
// much of the trace survived and that the races of the intact prefix are
// preserved: the end-to-end property the format-v2 integrity framing and
// the quarantining analyzer exist for.
func ChaosExperiment() string {
	cleanStore := trace.NewMemStore()
	if collectErr, err := chaosWorkload(cleanStore); err != nil || collectErr != nil {
		return fmt.Sprintf("chaos: clean collection failed: %v %v\n", err, collectErr)
	}
	cleanRep, _, err := sword.AnalyzeStore(cleanStore)
	if err != nil {
		return fmt.Sprintf("chaos: clean analysis failed: %v\n", err)
	}

	crashedStore := trace.NewMemStore()
	faulty := trace.NewFaultStore(crashedStore)
	faulty.FailWritesAfter(96<<10, nil) // the disk fills a couple of flushes in
	faulty.SetTornWrites(true)
	collectErr, err := chaosWorkload(faulty)
	if err != nil {
		return fmt.Sprintf("chaos: crashed collection setup failed: %v\n", err)
	}

	salvRep, salvStats, err := sword.AnalyzeStore(crashedStore, sword.WithSalvage(true))
	if err != nil {
		return fmt.Sprintf("chaos: salvage analysis failed: %v\n", err)
	}

	var b strings.Builder
	st := salvRep.Stats
	fmt.Fprintf(&b, "clean run:    %d race(s), %d intervals\n", cleanRep.Len(), cleanRep.Stats.Intervals)
	fmt.Fprintf(&b, "crash:        %v\n", collectErr)
	fmt.Fprintf(&b, "salvage:      %d race(s), %d/%d intervals quarantined\n",
		salvRep.Len(), st.IntervalsQuarantined, st.Intervals)
	fmt.Fprintf(&b, "coverage:     %d corrupt block(s), %d truncated slot(s), %d bytes salvaged, %d bytes lost\n",
		st.CorruptBlocks, st.TruncatedSlots, st.SalvagedBytes, st.LostBytes)
	fmt.Fprintf(&b, "partial:      %v (swordoffline would exit %d)\n", salvStats.Partial(), exitCode(salvRep))
	fmt.Fprintf(&b, "races kept:   %v (the intact prefix reports the same race sites as the clean run)\n",
		sameRaceSites(cleanRep, salvRep))
	return b.String()
}

// exitCode mirrors cmd/swordoffline's exit-code contract.
func exitCode(rep *sword.Report) int {
	switch {
	case rep.Stats.Partial() && rep.Len() > 0:
		return 5
	case rep.Stats.Partial():
		return 4
	case rep.Len() > 0:
		return 3
	}
	return 0
}

// sameRaceSites compares two reports by their unordered PC site pairs.
func sameRaceSites(a, b *sword.Report) bool {
	sites := func(rep *sword.Report) map[[2]uint64]bool {
		out := make(map[[2]uint64]bool)
		for _, r := range rep.Races() {
			lo, hi := r.First.PC, r.Second.PC
			if lo > hi {
				lo, hi = hi, lo
			}
			out[[2]uint64{lo, hi}] = true
		}
		return out
	}
	sa, sb := sites(a), sites(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
