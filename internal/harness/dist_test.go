package harness

import "testing"

// TestDistBenchAgrees guards the experiment code: the distributed lanes
// must reproduce the single-process race set on a racy workload (the
// dist package's own tests cover the protocol; this covers the
// harness's collection and comparison plumbing).
func TestDistBenchAgrees(t *testing.T) {
	res := distBenchOne("c_md")
	if res.Err != "" {
		t.Fatalf("dist bench failed: %s", res.Err)
	}
	if res.Units == 0 {
		t.Error("no pair units planned")
	}
	for n, lane := range res.Workers {
		if !lane.Agrees {
			t.Errorf("%s workers: race set disagrees with single-process (%d races)", n, lane.Races)
		}
		if lane.NsPerRun <= 0 {
			t.Errorf("%s workers: no wall time measured", n)
		}
	}
}
