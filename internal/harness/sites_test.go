package harness

import (
	"strings"
	"testing"

	"sword/internal/trace"
	"sword/internal/workloads"
)

// TestRaceSitesPointAtTheRightCode: beyond counts, reports must name the
// correct source sites — what a user debugging the benchmark would act on.
func TestRaceSitesPointAtTheRightCode(t *testing.T) {
	cases := []struct {
		workload string
		tool     Tool
		want     []string // substrings that must appear in the report
		absent   []string // substrings that must not
	}{
		{
			workload: "nowait-orig-yes",
			tool:     Sword,
			want:     []string{"drb/nowait.c:write-a", "drb/nowait.c:read-a-shifted"},
			absent:   []string{"read-b", "write-c"},
		},
		{
			workload: "privatemissing-orig-yes",
			tool:     Sword,
			want: []string{
				"drb/privatemissing.c:tmp=",
				"drb/privatemissing.c:use1-tmp",
				"drb/privatemissing.c:use2-tmp",
			},
			absent: []string{"privatemissing.c:out"},
		},
		{
			workload: "hpccg",
			tool:     Sword,
			want:     []string{"hpc/hpccg.cpp:normr-write"},
			absent:   []string{"matvec", "residual"},
		},
		{
			workload: "hpccg",
			tool:     Archer,
			want:     []string{"hpc/hpccg.cpp:normr-write"},
		},
		{
			workload: "c_md",
			tool:     Sword,
			want: []string{
				"ompscr/c_md.c:force-write",
				"ompscr/c_md.c:virial-write",
				"ompscr/c_md.c:virial-read",
			},
			absent: []string{"c_md.c:vel", "c_md.c:pos"},
		},
		{
			workload: "c_md",
			tool:     Archer,
			want:     []string{"ompscr/c_md.c:force-write"},
			absent:   []string{"virial"},
		},
		{
			workload: "taskdep1-orig-yes",
			tool:     Sword,
			want:     []string{"drb/taskdep1.c:task-write", "drb/taskdep1.c:continuation-read"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.workload+"/"+tc.tool.String(), func(t *testing.T) {
			t.Parallel()
			wl, err := workloads.Get(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(wl, tc.tool, Options{Threads: 4, NodeBudget: -1})
			if err != nil {
				t.Fatal(err)
			}
			out := res.Report.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("report missing site %q:\n%s", want, out)
				}
			}
			for _, absent := range tc.absent {
				if strings.Contains(out, absent) {
					t.Errorf("report wrongly implicates %q:\n%s", absent, out)
				}
			}
		})
	}
}

// TestDirStoreMatchesMemStore: the on-disk trace path (real files,
// compression, framing) yields identical detection to the in-memory path.
func TestDirStoreMatchesMemStore(t *testing.T) {
	for _, name := range []string{"c_md", "amg", "taskdep1-orig-yes"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wl, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			mem, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1})
			if err != nil {
				t.Fatal(err)
			}
			store, err := trace.NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			disk, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, Store: store})
			if err != nil {
				t.Fatal(err)
			}
			if disk.Races != mem.Races {
				t.Fatalf("disk %d races vs mem %d", disk.Races, mem.Races)
			}
			if err := trace.Validate(store); err != nil {
				t.Fatalf("on-disk trace invalid: %v", err)
			}
			if disk.LogBytes == 0 {
				t.Fatal("no bytes written to disk store")
			}
		})
	}
}
