package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sword"
	"sword/internal/archer"
	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// Experiment regenerators: one function per table and figure of the
// paper's evaluation, each returning the rendered text artifact. See
// DESIGN.md's per-experiment index; cmd/swordbench exposes them all.

// ExpConfig shapes the slower experiments.
type ExpConfig struct {
	Threads []int // thread counts to sweep; nil means {2, 4, 8}
	Repeats int   // timing repetitions; 0 means 3
	// Obs, when non-nil, aggregates the sword metrics of every run the
	// timing experiments perform — swordbench -metrics-out exports it.
	Obs *obs.Metrics
}

func (c ExpConfig) threads() []int {
	if len(c.Threads) == 0 {
		return []int{2, 4, 8}
	}
	return c.Threads
}

func (c ExpConfig) repeats() int {
	if c.Repeats <= 0 {
		return 3
	}
	return c.Repeats
}

func table(f func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	f(w)
	w.Flush()
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func mb(bytes uint64) string {
	return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
}

// ExpFig1 reproduces Figure 1: the same racy program under the two forced
// interleavings. The happens-before tool reports the race only under
// schedule (a); sword reports it under both.
func ExpFig1() string {
	type outcome struct{ archer, sword int }
	runSchedule := func(writerFirst bool) outcome {
		var out outcome
		for _, tool := range []Tool{Archer, Sword} {
			pcW := pcreg.Site("fig1:write(a)")
			pcR := pcreg.Site("fig1:read(a)")
			var at *archer.Tool
			var col *rt.Collector
			store := trace.NewMemStore()
			var opts []omp.Option
			if tool == Archer {
				at = archer.New(archer.Config{})
				opts = append(opts, omp.WithTool(at))
			} else {
				col = rt.New(store, rt.Config{})
				opts = append(opts, omp.WithTool(col))
			}
			rtm := omp.New(opts...)
			space := memsim.NewSpace(nil)
			a, _ := space.AllocF64(1)
			lock := rtm.NewLock()
			seq := omp.NewSequencer()
			rtm.Parallel(2, func(th *omp.Thread) {
				wStep, rStep := 1, 0
				if writerFirst {
					wStep, rStep = 0, 1
				}
				if th.ID() == 0 {
					seq.Do(wStep, func() {
						th.StoreF64(a, 0, 1, pcW)
						th.WithLock(lock, func() {})
					})
				} else {
					seq.Do(rStep, func() {
						th.WithLock(lock, func() {})
						th.LoadF64(a, 0, pcR)
					})
				}
			})
			if tool == Archer {
				out.archer = at.Report().Len()
			} else {
				col.Close()
				rep, err := core.New(store, core.Config{}).Analyze()
				if err != nil {
					panic(err)
				}
				out.sword = rep.Len()
			}
		}
		return out
	}
	a := runSchedule(false) // schedule (a): reader's critical section first
	b := runSchedule(true)  // schedule (b): writer's first -> HB masks it
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 1 — happens-before race masking across interleavings")
		fmt.Fprintln(w, "schedule\tarcher\tsword")
		fmt.Fprintf(w, "(a) no HB path\t%d race\t%d race\n", a.archer, a.sword)
		fmt.Fprintf(w, "(b) release->acquire path\t%d race (masked)\t%d race\n", b.archer, b.sword)
	})
}

// ExpTab1 reproduces Table I: the meta-data file of one thread after a
// program with two parallel regions and an extra barrier interval.
func ExpTab1() string {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(4096)
	pc := pcreg.Site("tab1:sweep")
	rtm.Run(func(initial *omp.Thread) {
		initial.Parallel(4, func(th *omp.Thread) {
			th.ForNoWait(0, 2048, func(i int) { th.StoreF64(arr, i, 1, pc) })
			th.Barrier()
			th.ForNoWait(0, 4096, func(i int) { th.StoreF64(arr, i, 2, pc) })
		})
		initial.Parallel(4, func(th *omp.Thread) {
			th.ForNoWait(0, 512, func(i int) { th.StoreF64(arr, i, 3, pc) })
		})
	})
	col.Close()
	src, err := store.OpenMeta(0)
	if err != nil {
		panic(err)
	}
	metas, err := trace.ReadAllMeta(src)
	if err != nil {
		panic(err)
	}
	return "Table I — thread 0 meta-data file (one line per barrier-interval fragment)\n" +
		trace.FormatMetaTable(metas)
}

// ExpFig2 reproduces Figure 2's races: R1 inside one nested region,
// R2 and R3 across concurrent nested regions, with barrier-separated
// accesses staying race-free.
func ExpFig2() string {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	x, _ := space.AllocF64(1)
	y, _ := space.AllocF64(1)
	pcX := pcreg.Site("fig2:write-x")
	pcXr := pcreg.Site("fig2:read-x")
	pcY := pcreg.Site("fig2:write-y")
	pcYr := pcreg.Site("fig2:read-y")
	rtm.Parallel(2, func(outer *omp.Thread) {
		if outer.ID() == 0 {
			outer.StoreF64(x, 0, 1, pcX) // barrier interval 1: safe vs post-barrier
			outer.Barrier()
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 1 {
					in.LoadF64(y, 0, pcYr) // R2: reads y across nested regions
				}
				in.LoadF64(x, 0, pcXr) // R3: reads x written by the sibling region
			})
		} else {
			outer.Barrier()
			outer.Parallel(2, func(in *omp.Thread) {
				in.StoreF64(y, 0, float64(in.ID()), pcY) // R1: write-write on y
				if in.ID() == 0 {
					in.StoreF64(x, 0, 2, pcX) // the write side of R3
				}
			})
		}
	})
	col.Close()
	rep, err := core.New(store, core.Config{}).Analyze()
	if err != nil {
		panic(err)
	}
	return "Figure 2 — races across the nested concurrency structure\n" + rep.String()
}

// ExpDRB reproduces the DataRaceBench outcomes of §IV-A as a matrix of
// detections per tool, with the documented race count for reference.
func ExpDRB() string {
	return detectionTable("DataRaceBench microbenchmarks (§IV-A)", workloads.BySuite("drb"))
}

// ExpTab2 reproduces Table II: data races reported in the OmpSCR
// benchmarks (race-free benchmarks are listed with zero rows omitted, as
// in the paper).
func ExpTab2() string {
	var racy []workloads.Workload
	for _, w := range workloads.BySuite("ompscr") {
		if w.Expect != (workloads.Expected{}) {
			racy = append(racy, w)
		}
	}
	return detectionTable("Table II — data races reported in OmpSCR benchmarks", racy)
}

func detectionTable(title string, ws []workloads.Workload) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, title)
		fmt.Fprintln(w, "benchmark\tdocumented\tarcher\tarcher-low\tsword")
		for _, wl := range ws {
			row := [3]int{}
			for i, tool := range []Tool{Archer, ArcherLow, Sword} {
				res, err := Run(wl, tool, Options{Threads: 4, NodeBudget: -1})
				if err != nil {
					panic(fmt.Sprintf("%s under %s: %v", wl.Name, tool, err))
				}
				row[i] = res.Races
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\n", wl.Name, wl.Documented, row[0], row[1], row[2])
		}
	})
}

// ExpFig6 reproduces Figure 6: geometric-mean runtime and memory overheads
// of the tools across the OmpSCR suite, per thread count.
func ExpFig6(cfg ExpConfig) string {
	suite := workloads.BySuite("ompscr")
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 6 — OmpSCR geometric-mean overheads (dynamic phase)")
		fmt.Fprintln(w, "threads\ttool\tgeomean slowdown\tgeomean memory ratio")
		for _, threads := range cfg.threads() {
			baselines := make(map[string]Result)
			for _, wl := range suite {
				res, err := RunAveraged(wl, Baseline, Options{Threads: threads, NodeBudget: -1}, cfg.repeats())
				if err != nil {
					panic(err)
				}
				baselines[wl.Name] = res
			}
			for _, tool := range []Tool{Archer, ArcherLow, Sword} {
				var slows, mems []float64
				for _, wl := range suite {
					res, err := RunAveraged(wl, tool, Options{Threads: threads, NodeBudget: -1, SkipOffline: true}, cfg.repeats())
					if err != nil {
						panic(err)
					}
					slows = append(slows, Slowdown(res, baselines[wl.Name]))
					mems = append(mems, MemRatio(res))
				}
				fmt.Fprintf(w, "%d\t%s\t%.2fx\t%.2fx\n", threads, tool, Geomean(slows), Geomean(mems))
			}
		}
	})
}

// ExpTab3 reproduces Table III: sword's dynamic-analysis time (DA), the
// offline analysis on a single worker (OA), and distributed across workers
// (MT), per OmpSCR benchmark, next to the two archer configurations.
func ExpTab3(cfg ExpConfig) string {
	suite := workloads.BySuite("ompscr")
	threads := cfg.threads()[len(cfg.threads())-1]
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table III — OmpSCR analysis runtimes")
		fmt.Fprintln(w, "benchmark\tarcher\tarcher-low\tsword DA\tsword OA\tsword MT")
		for _, wl := range suite {
			a, err := RunAveraged(wl, Archer, Options{Threads: threads, NodeBudget: -1}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			al, err := RunAveraged(wl, ArcherLow, Options{Threads: threads, NodeBudget: -1}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			s, err := RunAveraged(wl, Sword, Options{Threads: threads, NodeBudget: -1, Obs: cfg.Obs}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n", wl.Name,
				ms(a.DynTime), ms(al.DynTime), ms(s.DynTime), ms(s.OfflineOA), ms(s.OfflineMT))
		}
	})
}

// HPCBenchmarks lists the Table IV rows: the three fixed-size codes plus
// AMG at the four grid sizes.
func HPCBenchmarks() []struct {
	Label string
	Name  string
	Size  int
} {
	return []struct {
		Label string
		Name  string
		Size  int
	}{
		{"miniFE", "minife", 0},
		{"HPCCG", "hpccg", 0},
		{"LULESH", "lulesh", 0},
		{"AMG2013_10", "amg", 10},
		{"AMG2013_20", "amg", 20},
		{"AMG2013_30", "amg", 30},
		{"AMG2013_40", "amg", 40},
	}
}

// ExpTab4 reproduces Table IV: races reported in the HPC benchmarks, with
// OOM marking the configurations that exceed the node budget (AMG at 40³
// under both archer configurations).
func ExpTab4() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table IV — data races reported in HPC benchmarks (OOM = out of memory)")
		fmt.Fprintln(w, "benchmark\tarcher\tarcher-low\tsword")
		for _, row := range HPCBenchmarks() {
			wl, err := workloads.Get(row.Name)
			if err != nil {
				panic(err)
			}
			cells := make([]string, 0, 3)
			for _, tool := range []Tool{Archer, ArcherLow, Sword} {
				res, err := Run(wl, tool, Options{Threads: 4, Size: row.Size})
				if err != nil {
					panic(err)
				}
				if res.OOM {
					cells = append(cells, "OOM")
				} else {
					cells = append(cells, fmt.Sprint(res.Races))
				}
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", row.Label, cells[0], cells[1], cells[2])
		}
	})
}

// ExpFig7 reproduces Figure 7: per-HPC-benchmark slowdown and modeled
// memory overhead of each tool as the thread count grows.
func ExpFig7(cfg ExpConfig) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 7 — HPC benchmark slowdown and memory by thread count (dynamic phase)")
		fmt.Fprintln(w, "benchmark\tthreads\ttool\tslowdown\ttotal memory")
		for _, row := range HPCBenchmarks()[:4] { // miniFE, HPCCG, LULESH, AMG_10
			wl, err := workloads.Get(row.Name)
			if err != nil {
				panic(err)
			}
			for _, threads := range cfg.threads() {
				base, err := RunAveraged(wl, Baseline, Options{Threads: threads, Size: row.Size, NodeBudget: -1}, cfg.repeats())
				if err != nil {
					panic(err)
				}
				for _, tool := range []Tool{Archer, ArcherLow, Sword} {
					res, err := RunAveraged(wl, tool, Options{Threads: threads, Size: row.Size, NodeBudget: -1, SkipOffline: true}, cfg.repeats())
					if err != nil {
						panic(err)
					}
					fmt.Fprintf(w, "%s\t%d\t%s\t%.2fx\t%s\n",
						row.Label, threads, tool, Slowdown(res, base), mb(res.Footprint+res.MemOverhead))
				}
			}
		}
	})
}

// ExpFig8 reproduces Figure 8: AMG's memory behaviour as the input grows —
// archer's overhead tracks the footprint into OOM while sword stays
// bounded. The final row demonstrates the paper's headline: sword
// completes on an input using over 90% of node memory.
func ExpFig8() string {
	wl, err := workloads.Get("amg")
	if err != nil {
		panic(err)
	}
	sizes := []int{10, 20, 30, 40}
	budget := uint64(DefaultNodeBudget)
	out := table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Figure 8 — AMG memory overhead vs problem size (node budget "+mb(budget)+")")
		fmt.Fprintln(w, "size\tfootprint\tbaseline\tarcher\tarcher-low\tsword")
		for _, size := range sizes {
			foot := workloads.AMGFootprint(size)
			cells := []string{mb(foot)}
			for _, tool := range []Tool{Baseline, Archer, ArcherLow, Sword} {
				res, err := Run(wl, tool, Options{Threads: 4, Size: size, SkipOffline: true})
				if err != nil {
					panic(err)
				}
				if res.OOM {
					cells = append(cells, "OOM")
				} else {
					cells = append(cells, mb(res.Footprint+res.MemOverhead))
				}
			}
			fmt.Fprintf(w, "%d^3\t%s\t%s\t%s\t%s\t%s\n", size, cells[0], cells[1], cells[2], cells[3], cells[4])
		}
	})
	// The >90% demonstration: the largest grid whose footprint plus
	// sword's bounded overhead still fits the node.
	size90 := 67
	res, err := Run(wl, Sword, Options{Threads: 4, Size: size90})
	if err != nil {
		panic(err)
	}
	pct := 100 * float64(res.Footprint) / float64(budget)
	status := fmt.Sprintf("completed, %d races", res.Races)
	if res.OOM {
		status = "OOM"
	}
	return out + fmt.Sprintf("sword at %d^3: footprint %s = %.0f%% of node — %s\n",
		size90, mb(res.Footprint), pct, status)
}

// ExpTab5 reproduces Table V: total analysis overheads on the HPC
// benchmarks, including sword's offline phase on one worker (OA) and
// distributed (MT).
func ExpTab5(cfg ExpConfig) string {
	threads := cfg.threads()[len(cfg.threads())-1]
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Table V — HPC benchmark total analysis overheads")
		fmt.Fprintln(w, "benchmark\tbaseline\tarcher\tarcher-low\tsword DA\tsword DA+OA\tsword DA+MT")
		for _, row := range HPCBenchmarks() {
			wl, err := workloads.Get(row.Name)
			if err != nil {
				panic(err)
			}
			base, err := RunAveraged(wl, Baseline, Options{Threads: threads, Size: row.Size}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			cells := []string{ms(base.DynTime)}
			for _, tool := range []Tool{Archer, ArcherLow} {
				res, err := RunAveraged(wl, tool, Options{Threads: threads, Size: row.Size}, cfg.repeats())
				if err != nil {
					panic(err)
				}
				if res.OOM {
					cells = append(cells, "OOM")
				} else {
					cells = append(cells, ms(res.DynTime))
				}
			}
			s, err := RunAveraged(wl, Sword, Options{Threads: threads, Size: row.Size, Obs: cfg.Obs}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			if s.OOM {
				cells = append(cells, "OOM", "OOM", "OOM")
			} else {
				cells = append(cells, ms(s.DynTime), ms(s.DynTime+s.OfflineOA), ms(s.DynTime+s.OfflineMT))
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", row.Label,
				cells[0], cells[1], cells[2], cells[3], cells[4], cells[5])
		}
	})
}

// ExpPhases renders the observability layer's per-benchmark breakdown of
// sword's offline analysis on the OmpSCR suite — the phase decomposition
// behind Tables III and V: where the offline time goes (structure
// recovery, tree construction, pair comparison), how much pairing work
// each benchmark generates, and the solver-vs-bounding-box split (the
// bbox column re-analyzes the same trace under the NoSolver ablation).
// Every value is read from the public RunStats, so the table measures
// exactly what the library reports to users.
func ExpPhases(cfg ExpConfig) string {
	suite := workloads.BySuite("ompscr")
	threads := cfg.threads()[len(cfg.threads())-1]
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Offline phase breakdown — observability of Tables III/V")
		fmt.Fprintln(w, "benchmark\tstructure\ttrees\tcompare\tpairs\tsolver calls\tbbox fast-paths\tpeak nodes")
		for _, wl := range suite {
			store := trace.NewMemStore()
			res, err := Run(wl, Sword, Options{Threads: threads, NodeBudget: -1, Store: store})
			if err != nil {
				panic(err)
			}
			st := res.RunStats
			// The ablation leg: same trace, bounding-box decisions only.
			_, bboxStats, err := sword.AnalyzeStore(store, sword.WithNoSolver(true))
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%d\t%d\n", wl.Name,
				ms(st.Structure), ms(st.TreeBuild), ms(st.Compare),
				st.Analysis.IntervalPairs, st.Analysis.SolverCalls,
				bboxStats.Metrics.Value("core.bbox_fastpath"),
				st.Metrics.Value("core.tree_nodes_peak"))
		}
	})
}

// ExpEngine renders the comparison-engine effectiveness table: per
// benchmark, the requested strided-intersection decisions split into real
// solver invocations, memo hits, and suppressed pairs, next to the solver
// effort of an AllRaces re-analysis of the same trace (suppression off —
// every instance solved). The reduction column is requested decisions over
// actual solves, the engine's headline number.
func ExpEngine(cfg ExpConfig) string {
	threads := cfg.threads()[len(cfg.threads())-1]
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Comparison engine — sweep, solver memo, race-site suppression")
		fmt.Fprintln(w, "benchmark\tpairs\tcomparisons\tsolves\tcache hits\tsuppressed\tall-races solves\treduction")
		for _, wl := range workloads.BySuite("ompscr") {
			store := trace.NewMemStore()
			res, err := Run(wl, Sword, Options{Threads: threads, NodeBudget: -1, Store: store})
			if err != nil {
				panic(err)
			}
			st := res.RunStats
			_, allStats, err := sword.AnalyzeStore(store, sword.WithAllRaces(true))
			if err != nil {
				panic(err)
			}
			requested := st.SolverCacheHits + st.SolverCacheMisses + st.SitesSuppressed
			reduction := "-"
			if st.Analysis.SolverCalls > 0 {
				reduction = fmt.Sprintf("%.1fx", float64(requested)/float64(st.Analysis.SolverCalls))
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n", wl.Name,
				st.Analysis.IntervalPairs, st.Analysis.NodeComparisons,
				st.Analysis.SolverCalls, st.SolverCacheHits, st.SitesSuppressed,
				allStats.Analysis.SolverCalls, reduction)
		}
	})
}

// ExpTask renders the tasking-extension results: the task kernels of the
// drb suite under every tool — the paper's future work made measurable.
func ExpTask() string {
	var tasky []workloads.Workload
	for _, w := range workloads.BySuite("drb") {
		if strings.HasPrefix(w.Name, "task") {
			tasky = append(tasky, w)
		}
	}
	return detectionTable("Tasking extension (paper §III-C future work)", tasky)
}

// Experiments maps experiment ids to their regenerators, for the
// swordbench command.
func Experiments(cfg ExpConfig) map[string]func() string {
	return map[string]func() string{
		"fig1":   ExpFig1,
		"tab1":   ExpTab1,
		"fig2":   ExpFig2,
		"drb":    ExpDRB,
		"tab2":   ExpTab2,
		"fig6":   func() string { return ExpFig6(cfg) },
		"tab3":   func() string { return ExpTab3(cfg) },
		"tab4":   ExpTab4,
		"fig7":   func() string { return ExpFig7(cfg) },
		"fig8":   ExpFig8,
		"tab5":   func() string { return ExpTab5(cfg) },
		"task":   ExpTask,
		"phases": func() string { return ExpPhases(cfg) },
		"engine": func() string { return ExpEngine(cfg) },
	}
}

// ExperimentIDs lists experiment ids in the paper's order.
func ExperimentIDs() []string {
	return []string{"fig1", "tab1", "fig2", "drb", "tab2", "fig6", "tab3", "tab4", "fig7", "fig8", "tab5", "task", "phases", "engine"}
}
