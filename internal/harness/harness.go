// Package harness runs workloads under the evaluated tools — baseline (no
// analysis), archer, archer-low, and sword — measuring wall time, modeled
// memory overhead, and out-of-memory outcomes against a simulated node
// budget, and regenerates every table and figure of the paper's
// evaluation section.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"sword"
	"sword/internal/archer"
	"sword/internal/compress"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// Tool selects the analysis configuration of a run.
type Tool int

// The four configurations of the paper's experiments.
const (
	Baseline Tool = iota
	Archer
	ArcherLow
	Sword
)

// Tools lists every configuration in table order.
var Tools = []Tool{Baseline, Archer, ArcherLow, Sword}

// String returns the paper's name for the configuration.
func (t Tool) String() string {
	switch t {
	case Baseline:
		return "baseline"
	case Archer:
		return "archer"
	case ArcherLow:
		return "archer-low"
	case Sword:
		return "sword"
	default:
		return fmt.Sprintf("tool(%d)", int(t))
	}
}

// DefaultNodeBudget simulates the evaluation node's memory: the paper's
// 32 GB nodes scaled down with the workload footprints (DESIGN.md).
const DefaultNodeBudget = 440 << 20

// Options configures a run.
type Options struct {
	Threads int // team size; 0 means GOMAXPROCS clamped to [4, 8]
	Size    int // workload size knob; 0 means the workload default
	// NodeBudget simulates node memory for OOM verdicts; 0 means
	// DefaultNodeBudget, negative means unlimited.
	NodeBudget int64
	// Store receives sword's trace; nil means an in-memory store.
	Store trace.Store
	// Codec compresses sword's logs; nil means lzss.
	Codec compress.Codec
	// MaxEvents bounds sword's per-thread buffer; 0 means the default.
	MaxEvents int
	// FlushWorkers bounds sword's asynchronous flush pipeline; 0 means
	// the collector default (min(GOMAXPROCS, 4)).
	FlushWorkers int
	// SubtreeBatch analyzes sword's offline phase in batches of N
	// top-level region subtrees (bounded resident memory, block-skipping
	// streaming); 0 means one pass.
	SubtreeBatch int
	// Salvage analyzes sword's offline phase in graceful-degradation mode:
	// damaged traces are recovered instead of failing the run (see
	// sword.WithSalvage). The chaos experiment uses it; regular
	// measurements leave it off so trace damage fails loudly.
	Salvage bool
	// AllRaces disables sword's race-site suppression in the offline
	// phase (see sword.WithAllRaces): every node pair of a confirmed-racy
	// site is still solved so each race's Count reflects every instance.
	AllRaces bool
	// StaticFilter enables sword's collection-time static filtering of
	// certified worksharing loops (see sword.WithStaticFilter). Only
	// workloads using the affine capture API are affected; the race set
	// is identical either way.
	StaticFilter bool
	// NoPrefilter disables sword's summary-based pair pre-filter in the
	// offline phase (ablation; see sword.WithNoPrefilter).
	NoPrefilter bool
	// LiveFlush makes sword's collector commit each closed fragment's log
	// data before publishing its meta record, so a concurrent live
	// analyzer (sword.AnalyzeLive, cmd/swordwatch) can tail the store
	// while the workload runs (see sword.WithLiveFlush).
	LiveFlush bool
	// SkipOffline skips sword's offline phase (dynamic-only measurements,
	// as in Figures 6-8 which plot log collection).
	SkipOffline bool
	// OfflineWorkers for the "MT" (distributed) measurement; 0 means
	// GOMAXPROCS.
	OfflineWorkers int
	// Obs, when non-nil, receives both sword phases' metrics; sharing one
	// registry across runs aggregates them. nil uses a per-run registry
	// (RunStats is populated either way).
	Obs *obs.Metrics
}

// Result is one run's measurements.
type Result struct {
	Workload string
	Tool     Tool
	Threads  int
	Size     int

	Races  int
	Report *report.Report
	OOM    bool

	DynTime   time.Duration // execution incl. online analysis / collection
	OfflineOA time.Duration // sword offline, single worker (paper's OA)
	OfflineMT time.Duration // sword offline, parallel workers (paper's MT)

	Footprint   uint64 // accounted application bytes
	MemOverhead uint64 // modeled tool overhead bytes
	LogBytes    uint64 // sword compressed trace volume

	Collector rt.Stats     // sword only
	Shadow    archer.Stats // archer only
	Analysis  report.Stats // sword only

	// RunStats is the public-API observability summary of a sword run:
	// per-phase offline wall times plus the full metrics snapshot (the MT
	// analysis when the offline phase ran). nil for other tools.
	RunStats *sword.RunStats
}

// TotalTime returns dynamic plus distributed offline time — the end-to-end
// cost of a sword run, or just the dynamic time for online tools.
func (r Result) TotalTime() time.Duration { return r.DynTime + r.OfflineMT }

// Run executes workload w under the tool and returns measurements. An OOM
// verdict (tool overhead plus footprint exceeding the node budget) returns
// without executing, like the paper's AMG2013_40 runs that died during
// analysis.
func Run(w workloads.Workload, tool Tool, opts Options) (Result, error) {
	threads := opts.Threads
	if threads <= 0 {
		// At least 4 so races between threads can manifest even on small
		// machines (goroutines interleave regardless of core count).
		threads = min(max(runtime.GOMAXPROCS(0), 4), 8)
	}
	size := opts.Size
	if size <= 0 {
		size = w.DefaultSize
	}
	res := Result{Workload: w.Name, Tool: tool, Threads: threads, Size: size}
	res.Footprint = w.Footprint(size)

	switch tool {
	case Baseline:
		res.MemOverhead = 0
	case Archer:
		res.MemOverhead = archer.MemoryModel(res.Footprint, false)
	case ArcherLow:
		res.MemOverhead = archer.MemoryModel(res.Footprint, true)
	case Sword:
		res.MemOverhead = rt.MemoryModel(threads)
	}
	budget := opts.NodeBudget
	if budget == 0 {
		budget = DefaultNodeBudget
	}
	if budget > 0 && res.Footprint+res.MemOverhead > uint64(budget) {
		res.OOM = true
		return res, nil
	}

	ctx := &workloads.Ctx{
		RT:      nil,
		Space:   memsim.NewSpace(nil),
		Threads: threads,
		Size:    size,
	}

	var ompOpts []omp.Option
	var archerTool *archer.Tool
	var sess *sword.Session
	var store trace.Store

	switch tool {
	case Archer, ArcherLow:
		archerTool = archer.New(archer.Config{FlushShadow: tool == ArcherLow})
		ompOpts = append(ompOpts, omp.WithTool(archerTool))
	case Sword:
		store = opts.Store
		if store == nil {
			store = trace.NewMemStore()
		}
		// The sword leg goes through the public API — session for
		// collection, AnalyzeStore for the offline phase — so the harness
		// measures exactly what library users get, real instrumentation
		// included.
		codecName := "lzss"
		if opts.Codec != nil {
			codecName = opts.Codec.Name()
		}
		m := opts.Obs
		if m == nil {
			m = obs.New()
		}
		var err error
		sess, err = sword.NewSession(
			sword.WithStore(store),
			sword.WithCodec(codecName),
			sword.WithMaxEvents(opts.MaxEvents),
			sword.WithFlushWorkers(opts.FlushWorkers),
			sword.WithStaticFilter(opts.StaticFilter),
			sword.WithLiveFlush(opts.LiveFlush),
			sword.WithObs(m),
		)
		if err != nil {
			return res, fmt.Errorf("harness: %w", err)
		}
		ctx.RT = sess.Runtime()
	}
	if ctx.RT == nil {
		ctx.RT = omp.New(ompOpts...)
	}

	start := time.Now()
	w.Run(ctx)
	if sess != nil {
		if err := sess.CollectOnly(); err != nil {
			return res, fmt.Errorf("harness: close session: %w", err)
		}
	}
	res.DynTime = time.Since(start)

	switch tool {
	case Archer, ArcherLow:
		res.Report = archerTool.Report()
		res.Races = res.Report.Len()
		res.Shadow = archerTool.Stats()
	case Sword:
		res.RunStats = sess.RunStats()
		res.Collector = res.RunStats.Collect
		res.LogBytes = store.BytesWritten()
		if !opts.SkipOffline {
			oaStart := time.Now()
			oaRep, _, err := sword.AnalyzeStore(store, sword.WithWorkers(1),
				sword.WithSubtreeBatch(opts.SubtreeBatch),
				sword.WithSalvage(opts.Salvage),
				sword.WithNoPrefilter(opts.NoPrefilter),
				sword.WithAllRaces(opts.AllRaces))
			if err != nil {
				return res, fmt.Errorf("harness: offline (OA): %w", err)
			}
			res.OfflineOA = time.Since(oaStart)
			mtWorkers := opts.OfflineWorkers
			if mtWorkers <= 0 {
				mtWorkers = runtime.GOMAXPROCS(0)
			}
			mtStart := time.Now()
			mtRep, mtStats, err := sword.AnalyzeStore(store,
				sword.WithWorkers(mtWorkers),
				sword.WithSubtreeBatch(opts.SubtreeBatch),
				sword.WithSalvage(opts.Salvage),
				sword.WithNoPrefilter(opts.NoPrefilter),
				sword.WithAllRaces(opts.AllRaces),
				sword.WithObs(sess.Metrics()))
			if err != nil {
				return res, fmt.Errorf("harness: offline (MT): %w", err)
			}
			res.OfflineMT = time.Since(mtStart)
			if oaRep.Len() != mtRep.Len() {
				return res, fmt.Errorf("harness: offline worker counts disagree: %d vs %d races", oaRep.Len(), mtRep.Len())
			}
			res.Report = mtRep
			res.Races = mtRep.Len()
			res.Analysis = mtRep.Stats
			mtStats.Collect = res.Collector
			res.RunStats = mtStats
		}
	}
	return res, nil
}

// RunAveraged repeats a run and averages the timing fields (races and
// memory are identical across repetitions; the paper averaged across 10
// executions).
func RunAveraged(w workloads.Workload, tool Tool, opts Options, repeats int) (Result, error) {
	if repeats <= 0 {
		repeats = 1
	}
	var acc Result
	for i := 0; i < repeats; i++ {
		r, err := Run(w, tool, opts)
		if err != nil {
			return r, err
		}
		if i == 0 {
			acc = r
			if r.OOM {
				return acc, nil
			}
			continue
		}
		acc.DynTime += r.DynTime
		acc.OfflineOA += r.OfflineOA
		acc.OfflineMT += r.OfflineMT
	}
	acc.DynTime /= time.Duration(repeats)
	acc.OfflineOA /= time.Duration(repeats)
	acc.OfflineMT /= time.Duration(repeats)
	return acc, nil
}

// Geomean returns the geometric mean of strictly positive values;
// non-positive inputs are skipped.
func Geomean(values []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Slowdown returns the ratio of a tool run to its baseline run.
func Slowdown(tool, baseline Result) float64 {
	if baseline.DynTime <= 0 {
		return 0
	}
	return float64(tool.DynTime) / float64(baseline.DynTime)
}

// MemRatio returns modeled total memory relative to the application
// footprint (1.0 = no overhead).
func MemRatio(r Result) float64 {
	if r.Footprint == 0 {
		return 0
	}
	return float64(r.Footprint+r.MemOverhead) / float64(r.Footprint)
}
