package harness

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// The static filter's contract is differential: for any program, the race
// set reported with collection-time filtering on must equal the race set
// with it off. These tests enforce the contract on every bundled example
// workload and on randomized affine capture programs that mix certifiable
// loops with every certificate-voiding trigger the runtime knows.

// comparePairSets reports every asymmetry between two race-site sets.
func comparePairSets(t *testing.T, off, on map[pcPair]bool) {
	t.Helper()
	for pair := range off {
		if !on[pair] {
			t.Errorf("filter-on run missed race %s <-> %s",
				pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
		}
	}
	for pair := range on {
		if !off[pair] {
			t.Errorf("filter-on run invented race %s <-> %s",
				pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
		}
	}
}

// TestStaticFilterWorkloads runs every bundled workload under sword twice
// — filter off, filter on — and requires identical race-site sets.
func TestStaticFilterWorkloads(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			var pairs [2]map[pcPair]bool
			for i, on := range []bool{false, true} {
				res, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, StaticFilter: on})
				if err != nil {
					t.Fatal(err)
				}
				pairs[i] = reportPairs(res.Report)
			}
			comparePairSets(t, pairs[0], pairs[1])
		})
	}
}

// randomAffineProgram builds and runs a random program against the affine
// capture API: loops with random shapes (strides, directions, spans,
// multiple declarations that may or may not overlap across threads) under
// static or static-cyclic schedules, interleaved with raw scalar accesses
// that do race. A per-loop "dirt" trigger exercises each certificate-
// voiding path: a raw access inside the body (cert goes dirty, dropping
// continues), a critical section inside the body (dropping stops at the
// Acquire), a task spawned from the body, or a raw access before the loop
// arms. All branching depends only on the seed — never on shared data or
// timing — so two executions produce the same semantic race set. Dynamic
// schedules are deliberately absent: their iteration-to-thread assignment
// is timing-dependent, so two executions need not agree; the runtime's
// refusal to certify them is covered by the omp package tests.
func randomAffineProgram(seed int64, rtm *omp.Runtime, space *memsim.Space) {
	r := rand.New(rand.NewSource(seed))
	const pool = 3
	arrays := make([]*memsim.F64, pool)
	for i := range arrays {
		a, err := space.AllocF64(256)
		if err != nil {
			panic(err)
		}
		arrays[i] = a
	}
	scalars, err := space.AllocF64(8)
	if err != nil {
		panic(err)
	}
	lock := rtm.NewLock()

	type declSpec struct {
		write bool
		span  int
	}
	type loopSpec struct {
		loop   *omp.AffineLoop
		refs   []omp.AffineRef
		decls  []declSpec
		lo, hi int
		opts   omp.ForOpts
		dirt   int // 0 clean, 1 raw in body, 2 lock in body, 3 task in body, 4 raw before arm
		rawPC  uint64
		rawIdx int
	}

	teamSize := 2 + r.Intn(3)
	rounds := 1 + r.Intn(3)
	specs := make([]loopSpec, rounds)
	for k := range specs {
		hi := 8 + r.Intn(24)
		sp := loopSpec{
			loop:   omp.NewAffineLoop(),
			hi:     hi,
			dirt:   r.Intn(5),
			rawPC:  pcreg.Site(fmt.Sprintf("affrand%d:raw%d", seed, k)),
			rawIdx: r.Intn(scalars.Len()),
		}
		if r.Intn(3) == 1 {
			sp.opts = omp.ForOpts{Schedule: omp.ScheduleStaticCyclic, Chunk: 1 + r.Intn(3)}
		}
		nd := 1 + r.Intn(3)
		for d := 0; d < nd; d++ {
			arr := arrays[r.Intn(pool)]
			stride := int64(1 + r.Intn(3))
			span := 1 + r.Intn(2)
			write := r.Intn(2) == 0
			var offset int64
			if r.Intn(4) == 0 {
				// Negative direction: lift the offset so every index of the
				// iteration range stays inside the 256-element array.
				stride = -stride
				offset = -stride*int64(hi-1) + int64(r.Intn(16))
			} else {
				offset = int64(r.Intn(16))
			}
			pc := pcreg.Site(fmt.Sprintf("affrand%d:l%d.d%d", seed, k, d))
			var ref omp.AffineRef
			if write {
				ref = sp.loop.WriteF64Span(arr, stride, offset, span, pc)
			} else {
				ref = sp.loop.ReadF64Span(arr, stride, offset, span, pc)
			}
			sp.refs = append(sp.refs, ref)
			sp.decls = append(sp.decls, declSpec{write: write, span: span})
		}
		specs[k] = sp
	}

	rtm.Run(func(initial *omp.Thread) {
		initial.Parallel(teamSize, func(th *omp.Thread) {
			for k := range specs {
				sp := &specs[k]
				if sp.dirt == 4 {
					// Raw access before the loop arms: the interval is already
					// dirty, so the certificate drops but can never be CLEAN.
					th.StoreF64(scalars, sp.rawIdx, float64(th.ID()), sp.rawPC)
				}
				th.ForAffineOpt(sp.loop, sp.lo, sp.hi, sp.opts, func(it *omp.AffineIter) {
					for d, ds := range sp.decls {
						for kk := 0; kk < ds.span; kk++ {
							if ds.write {
								it.StoreF64At(sp.refs[d], kk, float64(it.I()))
							} else {
								it.LoadF64At(sp.refs[d], kk)
							}
						}
					}
					if it.I() == sp.lo {
						switch sp.dirt {
						case 1:
							th.StoreF64(scalars, sp.rawIdx, 1, sp.rawPC)
						case 2:
							th.WithLock(lock, func() {
								th.StoreF64(scalars, sp.rawIdx, 2, sp.rawPC)
							})
						case 3:
							th.Task(func(tt *omp.Thread) {
								tt.StoreF64(scalars, sp.rawIdx, 3, sp.rawPC)
							})
						}
					}
				})
			}
		})
	})
}

// TestStaticFilterDifferential: on randomized affine capture programs, the
// filter-on run must report exactly the filter-off race set, and each run
// must match the semantic oracle observing its own execution. A cross-run
// counter asserts the suite actually dropped accesses somewhere — a filter
// that silently never arms would otherwise pass vacuously.
func TestStaticFilterDifferential(t *testing.T) {
	last := int64(60)
	if testing.Short() {
		last = 15
	}
	var totalFiltered atomic.Uint64
	t.Cleanup(func() {
		if !t.Failed() && totalFiltered.Load() == 0 {
			t.Error("no accesses were filtered across any seed: the certificates never armed")
		}
	})
	for seed := int64(1); seed <= last; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var pairs [2]map[pcPair]bool
			for i, on := range []bool{false, true} {
				oracle := newOracle()
				store := trace.NewMemStore()
				col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64, StaticFilter: on})
				rtm := omp.New(omp.WithTool(oracle), omp.WithTool(col))
				randomAffineProgram(seed, rtm, memsim.NewSpace(nil))
				if err := col.Close(); err != nil {
					t.Fatal(err)
				}
				rep, err := core.New(store, core.Config{}).Analyze()
				if err != nil {
					t.Fatal(err)
				}
				pairs[i] = reportPairs(rep)
				want := oracle.races()
				for pair := range want {
					if !pairs[i][pair] {
						t.Errorf("filter=%v missed semantic race %s <-> %s", on,
							pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
					}
				}
				for pair := range pairs[i] {
					if !want[pair] {
						t.Errorf("filter=%v false positive %s <-> %s", on,
							pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
					}
				}
				if on {
					totalFiltered.Add(col.Stats().EventsFiltered)
				}
			}
			comparePairSets(t, pairs[0], pairs[1])
		})
	}
}

// TestStaticFilterSmoke is the make bench-smoke guard for the static
// filter's acceptance criteria on the statically chunked affine workloads:
// the filter must cut the events written by at least 30%, retire pair
// classes, keep the solver essentially idle, and never change the verdict.
func TestStaticFilterSmoke(t *testing.T) {
	for _, name := range []string{"affine-blocked-no", "affine-strided-yes"} {
		name := name
		t.Run(name, func(t *testing.T) {
			wl, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			off, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1})
			if err != nil {
				t.Fatal(err)
			}
			on, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, StaticFilter: true})
			if err != nil {
				t.Fatal(err)
			}
			if on.Races != off.Races {
				t.Fatalf("filter changed the race count: %d off, %d on", off.Races, on.Races)
			}
			if on.Collector.EventsFiltered == 0 {
				t.Fatal("certified loop filtered no accesses")
			}
			if on.Analysis.PairsRetiredStatic == 0 {
				t.Fatal("no pair classes retired despite a certified loop")
			}
			if on.Analysis.SolverCalls > 2 {
				t.Fatalf("solver called %d times with the filter on; want <= 2", on.Analysis.SolverCalls)
			}
			if on.Collector.Events*10 > off.Collector.Events*7 {
				t.Fatalf("filter saved too little: %d events written with filter, %d without (want >= 30%% cut)",
					on.Collector.Events, off.Collector.Events)
			}
		})
	}
}
