package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"sword/internal/workloads"
)

// FilterLane is one leg of the static-filter experiment: a full sword run
// (collection plus single-worker offline analysis) with the filter either
// off or on. The schema is the BENCH_9.json artifact (see EXPERIMENTS.md).
type FilterLane struct {
	Races          int     `json:"races"`
	EventsWritten  uint64  `json:"events_written"`
	EventsFiltered uint64  `json:"events_filtered"`
	BytesOnDisk    uint64  `json:"bytes_on_disk"`
	SolverCalls    uint64  `json:"solver_calls"`
	PairsRetired   uint64  `json:"pairs_retired_static"`
	AnalyzeMs      float64 `json:"analyze_ms"`
	EndToEndMs     float64 `json:"end_to_end_ms"`
}

// FilterComparison pairs the two lanes of one workload.
type FilterComparison struct {
	Off FilterLane `json:"off"`
	On  FilterLane `json:"on"`
}

// filterBenchWorkloads are the statically chunked evaluation workloads the
// experiment measures: the two affine capture programs plus the ported
// OmpSCR jacobi stencil.
var filterBenchWorkloads = []string{
	"affine-blocked-no",
	"affine-strided-yes",
	"c_jacobi",
}

// StaticFilterExperiment runs every statically chunked evaluation workload
// once with the collection-time static filter off and once with it on, and
// returns workload name → the two lanes. The race count must be identical
// across lanes — the filter's soundness contract — and the function fails
// loudly if it is not, so the bench artifact can never record an unsound
// configuration.
func StaticFilterExperiment() (map[string]FilterComparison, error) {
	out := make(map[string]FilterComparison, len(filterBenchWorkloads))
	for _, name := range filterBenchWorkloads {
		wl, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		var lanes [2]FilterLane
		for i, on := range []bool{false, true} {
			res, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, StaticFilter: on})
			if err != nil {
				return nil, fmt.Errorf("harness: static-filter experiment %s (filter=%v): %w", name, on, err)
			}
			lanes[i] = FilterLane{
				Races:          res.Races,
				EventsWritten:  res.Collector.Events,
				EventsFiltered: res.Collector.EventsFiltered,
				BytesOnDisk:    res.LogBytes,
				SolverCalls:    res.Analysis.SolverCalls,
				PairsRetired:   res.Analysis.PairsRetiredStatic,
				AnalyzeMs:      float64(res.OfflineOA.Microseconds()) / 1e3,
				EndToEndMs:     float64((res.DynTime + res.OfflineOA).Microseconds()) / 1e3,
			}
		}
		if lanes[0].Races != lanes[1].Races {
			return nil, fmt.Errorf("harness: static filter changed %s's race count: %d off, %d on",
				name, lanes[0].Races, lanes[1].Races)
		}
		out[name] = FilterComparison{Off: lanes[0], On: lanes[1]}
	}
	return out, nil
}

// WriteStaticFilterBench runs StaticFilterExperiment and writes the results
// to path as indented JSON — the BENCH_9.json artifact.
func WriteStaticFilterBench(path string) error {
	results, err := StaticFilterExperiment()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal static-filter results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
