package harness

import (
	"testing"

	"sword"
)

// TestAnalyzerBenchSmoke is the make-check regression guard for the
// comparison engine: on the strided DRB-style workload the analyzer
// benchmarks use, the solver memo and race-site suppression together must
// answer at least half of the requested strided-intersection decisions
// without invoking the solver — the engine's acceptance criterion. It runs
// in short mode so the guard is part of every check.
func TestAnalyzerBenchSmoke(t *testing.T) {
	store := stridedTrace(t, 4, 2048, 8)
	rep, st, err := sword.AnalyzeStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() == 0 {
		t.Fatal("strided workload's engineered race not reported")
	}
	if st.SolverCacheHits == 0 {
		t.Fatal("no solver-memo hits on a shape-repeating workload")
	}
	if st.SitesSuppressed == 0 {
		t.Fatal("no suppressed pairs despite a racy site repeating across rounds")
	}
	if st.Analysis.SolverCalls != st.SolverCacheMisses {
		t.Fatalf("solver calls (%d) != memo misses (%d)",
			st.Analysis.SolverCalls, st.SolverCacheMisses)
	}
	requested := st.SolverCacheHits + st.SolverCacheMisses + st.SitesSuppressed
	if st.Analysis.SolverCalls*2 > requested {
		t.Fatalf("memo+suppression saved too little: %d solves for %d requested decisions",
			st.Analysis.SolverCalls, requested)
	}
	if st.Analysis.PairsPrefiltered == 0 {
		t.Fatal("no pairs pre-filtered despite the workload's read-only rounds")
	}
}

// TestAnalyzerAllocSmoke is the make-check guard for the analyzer
// front-end's allocation behavior: one full analysis of the strided
// workload must stay within an allocation budget sized for the arena run
// builder. The red-black tree path allocated one node per coalesced run
// plus per-insert rebalancing garbage, an order of magnitude above this
// ceiling — a regression that reintroduces per-access allocation trips the
// bound immediately.
func TestAnalyzerAllocSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is distorted under short/race harness runs")
	}
	store := stridedTrace(t, 4, 2048, 8)
	if _, _, err := sword.AnalyzeStore(store); err != nil {
		t.Fatal(err) // warm pools and lazy tables before measuring
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := sword.AnalyzeStore(store); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 4000
	if allocs > ceiling {
		t.Fatalf("analysis allocates %.0f objects per run, budget %d", allocs, ceiling)
	}
}

// Standard `go test -bench` entry points for the analyzer benchmarks the
// suite otherwise runs programmatically (MicroBenches) — these are what
// `make profile` attaches the CPU and heap profilers to.
func BenchmarkAnalyzerEndToEnd(b *testing.B) {
	b.Run("c_jacobi", benchAnalyzerEndToEnd("c_jacobi"))
	b.Run("antidep1-orig-yes", benchAnalyzerEndToEnd("antidep1-orig-yes"))
}

func BenchmarkAnalyzerPairComparison(b *testing.B) {
	benchAnalyzerPairComparison(b)
}
