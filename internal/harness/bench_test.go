package harness

import (
	"testing"

	"sword"
)

// TestAnalyzerBenchSmoke is the make-check regression guard for the
// comparison engine: on the strided DRB-style workload the analyzer
// benchmarks use, the solver memo and race-site suppression together must
// answer at least half of the requested strided-intersection decisions
// without invoking the solver — the engine's acceptance criterion. It runs
// in short mode so the guard is part of every check.
func TestAnalyzerBenchSmoke(t *testing.T) {
	store := stridedTrace(t, 4, 2048, 8)
	rep, st, err := sword.AnalyzeStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() == 0 {
		t.Fatal("strided workload's engineered race not reported")
	}
	if st.SolverCacheHits == 0 {
		t.Fatal("no solver-memo hits on a shape-repeating workload")
	}
	if st.SitesSuppressed == 0 {
		t.Fatal("no suppressed pairs despite a racy site repeating across rounds")
	}
	if st.Analysis.SolverCalls != st.SolverCacheMisses {
		t.Fatalf("solver calls (%d) != memo misses (%d)",
			st.Analysis.SolverCalls, st.SolverCacheMisses)
	}
	requested := st.SolverCacheHits + st.SolverCacheMisses + st.SitesSuppressed
	if st.Analysis.SolverCalls*2 > requested {
		t.Fatalf("memo+suppression saved too little: %d solves for %d requested decisions",
			st.Analysis.SolverCalls, requested)
	}
}
