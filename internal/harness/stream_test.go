package harness

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/stream"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// Differential testing of the streaming analyzer: on every bundled
// workload and a range of random structured programs, the race set found
// by tailing the trace while the program runs must equal the race set of
// a post-mortem analysis of the completed trace — the online split may
// change when work happens, never what is found.

// liveVsPostMortem executes program under a live-flush collector while a
// streaming analyzer tails the store concurrently, then compares the
// online report against a post-mortem analysis of the same trace.
func liveVsPostMortem(t *testing.T, program func(rtm *omp.Runtime, space *memsim.Space)) {
	t.Helper()
	store := trace.NewMemStore()
	progDone := make(chan error, 1)
	go func() {
		progDone <- func() error {
			col := rt.New(store, rt.Config{LiveFlush: true, MaxEvents: 64})
			rtm := omp.New(omp.WithTool(col))
			program(rtm, memsim.NewSpace(nil))
			return col.Close()
		}()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	live, err := stream.New(store, stream.Config{
		PollInterval: 200 * time.Microsecond,
	}).Run(ctx)
	if err != nil {
		t.Fatalf("online analysis: %v", err)
	}
	if err := <-progDone; err != nil {
		t.Fatalf("collector: %v", err)
	}

	post, err := core.New(store, core.Config{}).AnalyzeContext(context.Background())
	if err != nil {
		t.Fatalf("post-mortem analysis: %v", err)
	}
	got, want := streamRaceLines(live), streamRaceLines(post)
	if len(got) != len(want) {
		t.Fatalf("race sets differ:\nonline:      %v\npost-mortem: %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("race %d: online %q vs post-mortem %q", i, got[i], want[i])
		}
	}
	g, w := live.Stats, post.Stats
	if g.Intervals != w.Intervals || g.IntervalPairs != w.IntervalPairs ||
		g.TreeNodes != w.TreeNodes || g.Accesses != w.Accesses ||
		g.Regions != w.Regions || g.PairsPrefiltered != w.PairsPrefiltered ||
		g.PairsRetiredStatic != w.PairsRetiredStatic {
		t.Errorf("structural stats diverge:\nonline:      %+v\npost-mortem: %+v", g, w)
	}
}

// streamRaceLines renders a report's (already sorted) race set as strings.
func streamRaceLines(rep *report.Report) []string {
	races := rep.Races()
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.String()
	}
	return out
}

// TestStreamDifferentialRandom: online == post-mortem on random
// structured fork-join programs. The seed range stays at 30 in short
// mode so the race-detector leg of make check keeps the full coverage
// the streaming subsystem's acceptance demands.
func TestStreamDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			liveVsPostMortem(t, func(rtm *omp.Runtime, space *memsim.Space) {
				randomProgram(seed, rtm, space)
			})
		})
	}
}

// TestStreamDifferentialWorkloads: online == post-mortem on every
// bundled benchmark workload at its default size.
func TestStreamDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			liveVsPostMortem(t, func(rtm *omp.Runtime, space *memsim.Space) {
				w.Run(&workloads.Ctx{RT: rtm, Space: space, Threads: 4, Size: w.DefaultSize})
			})
		})
	}
}
