package harness

import (
	"testing"
	"time"
)

// TestServeBenchEnvelope guards the experiment code at a fraction of
// the artifact's scale: every upload accepted, no 5xx, torn uploads
// finish as partial salvage reports, clean reports agree with the
// offline analyzer, and the small jobs clear before the slowest giant.
func TestServeBenchEnvelope(t *testing.T) {
	res := serveBenchRun(24, 2, 3, 8)
	if res.Err != "" {
		t.Fatalf("serve bench failed: %s", res.Err)
	}
	if want := 24 + 2 + 3; res.Accepted != want {
		t.Errorf("accepted %d uploads, want %d", res.Accepted, want)
	}
	if res.Status5xx != 0 {
		t.Errorf("%d uploads answered 5xx, want none", res.Status5xx)
	}
	if res.SmallDone != 24 || res.GiantDone != 2 {
		t.Errorf("done %d small / %d giant, want 24/2", res.SmallDone, res.GiantDone)
	}
	if res.TornPartial != 3 {
		t.Errorf("%d torn uploads finished partial, want 3", res.TornPartial)
	}
	if !res.ReportsAgree {
		t.Error("service reports disagree with the offline analyzer")
	}
	// At the artifact's full scale ZeroStarvation is strict. At this
	// fraction of the scale the whole run lasts under a second and the
	// last small job trails the slowest giant by scheduler noise (tens of
	// ms) on a loaded machine, so real starvation — which shows up as
	// seconds, not milliseconds — gets a noise allowance here.
	if !res.ZeroStarvation {
		if lag := time.Duration(res.LastSmallDoneNs - res.LastGiantDoneNs); lag > 250*time.Millisecond {
			t.Errorf("small jobs starved: last small done at %.0fms, last giant at %.0fms",
				res.LastSmallDoneNs/1e6, res.LastGiantDoneNs/1e6)
		} else {
			t.Logf("last small trailed the slowest giant by %v (within noise allowance)", lag)
		}
	}
}
