package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"sword/internal/compress"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
)

// BenchResult is one micro-benchmark's measurements, the schema of the
// BENCH_*.json artifacts (documented in EXPERIMENTS.md).
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	EventsPerS  float64 `json:"events_per_s,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchCollectorContended measures the collection hot path under
// contention: 8 team members hammer their own slots concurrently, so any
// shared lock on the slot-lookup path serializes the whole team. The async
// variant exercises the parallel flush pipeline; the sync variant
// compresses on the application threads.
func benchCollectorContended(synchronous bool) func(b *testing.B) {
	return func(b *testing.B) {
		const threads = 8
		store := trace.NewMemStore()
		col := rt.New(store, rt.Config{MaxEvents: 4096, Synchronous: synchronous})
		rtm := omp.New(omp.WithTool(col))
		pc := pcreg.Site("bench:contended")
		b.ReportAllocs()
		b.ResetTimer()
		rtm.Parallel(threads, func(th *omp.Thread) {
			base := 0x100000 + uint64(th.ID())<<24
			for i := 0; i < b.N; i++ {
				th.Write(base+uint64(i&4095)*8, 8, pc)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(threads*b.N)/b.Elapsed().Seconds(), "events/s")
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollectorHotPath measures the uncontended single-thread append.
func benchCollectorHotPath(b *testing.B) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	pc := pcreg.Site("bench:hotpath")
	b.ReportAllocs()
	b.ResetTimer()
	rtm.Parallel(1, func(th *omp.Thread) {
		for i := 0; i < b.N; i++ {
			th.Write(0x100000+uint64(i&4095)*8, 8, pc)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchCompress measures one codec on trace-shaped data (repetitive tags,
// small varint deltas) — the block the collector flushes.
func benchCompress(c compress.Codec) func(b *testing.B) {
	return func(b *testing.B) {
		src := make([]byte, 0, 75000)
		for i := 0; i < 25000; i++ {
			src = append(src, 0x9c, byte(8+i%3), byte(i%5+1))
		}
		var dst []byte
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = c.Compress(dst[:0], src)
		}
	}
}

// MicroBenches runs the performance micro-benchmark suite programmatically
// (testing.Benchmark, default 1s per benchmark) and returns benchmark name
// → result. It covers the hot paths the perf work targets: contended
// multi-slot collection (async pipeline vs synchronous flushing), the
// uncontended append, and each flush codec.
func MicroBenches() map[string]BenchResult {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CollectorContended", benchCollectorContended(false)},
		{"CollectorContendedSync", benchCollectorContended(true)},
		{"CollectorHotPath", benchCollectorHotPath},
		{"Compress/raw", benchCompress(compress.Raw{})},
		{"Compress/lzss", benchCompress(compress.LZSS{})},
		{"Compress/flate", benchCompress(compress.NewFlate())},
	}
	out := make(map[string]BenchResult, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := BenchResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		if v, ok := r.Extra["events/s"]; ok {
			res.EventsPerS = v
		}
		out[bench.name] = res
	}
	return out
}

// WriteMicroBenches runs MicroBenches and writes the results to path as
// indented JSON (keys sorted), the BENCH_*.json artifact format.
func WriteMicroBenches(path string) error {
	data, err := json.MarshalIndent(MicroBenches(), "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal bench results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
