package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"sword"
	"sword/internal/compress"
	"sword/internal/itree"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/workloads"
)

// BenchResult is one micro-benchmark's measurements, the schema of the
// BENCH_*.json artifacts (documented in EXPERIMENTS.md).
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	EventsPerS  float64 `json:"events_per_s,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries any further benchmark-specific values reported via
	// b.ReportMetric — the analyzer benchmarks use it for solver-effort
	// counters (solver_calls, solver_cache_hits, sites_suppressed).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchCollectorContended measures the collection hot path under
// contention: 8 team members hammer their own slots concurrently, so any
// shared lock on the slot-lookup path serializes the whole team. The async
// variant exercises the parallel flush pipeline; the sync variant
// compresses on the application threads.
func benchCollectorContended(synchronous bool) func(b *testing.B) {
	return func(b *testing.B) {
		const threads = 8
		store := trace.NewMemStore()
		col := rt.New(store, rt.Config{MaxEvents: 4096, Synchronous: synchronous})
		rtm := omp.New(omp.WithTool(col))
		pc := pcreg.Site("bench:contended")
		b.ReportAllocs()
		b.ResetTimer()
		rtm.Parallel(threads, func(th *omp.Thread) {
			base := 0x100000 + uint64(th.ID())<<24
			for i := 0; i < b.N; i++ {
				th.Write(base+uint64(i&4095)*8, 8, pc)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(threads*b.N)/b.Elapsed().Seconds(), "events/s")
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCollectorHotPath measures the uncontended single-thread append.
func benchCollectorHotPath(b *testing.B) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{})
	rtm := omp.New(omp.WithTool(col))
	pc := pcreg.Site("bench:hotpath")
	b.ReportAllocs()
	b.ResetTimer()
	rtm.Parallel(1, func(th *omp.Thread) {
		for i := 0; i < b.N; i++ {
			th.Write(0x100000+uint64(i&4095)*8, 8, pc)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	if err := col.Close(); err != nil {
		b.Fatal(err)
	}
}

// benchCollectorAffine measures the collection cost of one access issued
// through the affine capture API (Thread.ForAffine), per lane:
//
//   - certified: static filter on, provable static schedule — the access
//     is dropped at collection time, the fast path the filter buys;
//   - uncertified: static filter on, but a dynamic schedule voids the
//     proof — the capture API records through the normal tool path;
//   - nofilter: static filter off — the certificate hook declines and
//     every access is recorded exactly as without the feature.
func benchCollectorAffine(lane string) func(b *testing.B) {
	return func(b *testing.B) {
		const n = 4096
		store := trace.NewMemStore()
		col := rt.New(store, rt.Config{MaxEvents: 4096, Synchronous: true,
			StaticFilter: lane != "nofilter"})
		rtm := omp.New(omp.WithTool(col))
		arr, err := memsim.NewSpace(nil).AllocF64(n)
		if err != nil {
			b.Fatal(err)
		}
		loop := omp.NewAffineLoop()
		wr := loop.WriteF64(arr, 1, 0, pcreg.Site("bench:affine:"+lane))
		var opts omp.ForOpts
		if lane == "uncertified" {
			opts.Schedule = omp.ScheduleDynamic
			opts.Chunk = 64
		}
		b.ReportAllocs()
		b.ResetTimer()
		rtm.Parallel(1, func(th *omp.Thread) {
			for done := 0; done < b.N; done += n {
				th.ForAffineOpt(loop, 0, n, opts, func(it *omp.AffineIter) {
					it.StoreF64(wr, 1)
				})
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		if err := col.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCompress measures one codec on trace-shaped data (repetitive tags,
// small varint deltas) — the block the collector flushes.
func benchCompress(c compress.Codec) func(b *testing.B) {
	return func(b *testing.B) {
		src := make([]byte, 0, 75000)
		for i := 0; i < 25000; i++ {
			src = append(src, 0x9c, byte(8+i%3), byte(i%5+1))
		}
		var dst []byte
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = c.Compress(dst[:0], src)
		}
	}
}

// stridedTrace collects a DRB-style strided workload into a memory store:
// threads interleave disjoint strided writes over a shared region (heavy
// solver traffic, all negative) across barrier-separated rounds that repeat
// the same shapes (memo fodder), plus one genuinely racy site re-confirmed
// every round (suppression fodder). Two trailing read-only rounds sweep a
// disjoint region: every pair of those intervals is provably race-free
// from its unit summary alone — the pair pre-filter's fodder.
func stridedTrace(tb testing.TB, threads, iters, rounds int) trace.Store {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	rtm.Parallel(threads, func(th *omp.Thread) {
		pc := uint64(0x40 + th.ID())
		for round := 0; round < rounds; round++ {
			for i := th.ID(); i < iters; i += threads {
				th.Write(0x200000+uint64(i)*8, 8, pc)
			}
			th.Write(0x200000+uint64(round)*8, 8, 0x80)
			th.Barrier()
		}
		for round := 0; round < 2; round++ {
			for i := th.ID(); i < iters; i += threads {
				th.Read(0x400000+uint64(i)*8, 8, pc)
			}
			th.Barrier()
		}
	})
	if err := col.Close(); err != nil {
		tb.Fatal(err)
	}
	return store
}

// benchAnalyzerTreeBuild measures the tree-construction phase in
// isolation: strided inserts from four interleaved threads followed by
// compaction, the exact shape enumeratePairs receives.
func benchAnalyzerTreeBuild(b *testing.B) {
	b.ReportAllocs()
	inserts := 0
	for i := 0; i < b.N; i++ {
		var t itree.Tree
		for th := 0; th < 4; th++ {
			acc := itree.Access{Width: 8, Write: th%2 == 0, PC: uint64(100 + th)}
			for k := 0; k < 2048; k++ {
				acc.Addr = 0x10000 + uint64(th)*8 + uint64(k)*32
				t.Insert(acc)
				inserts++
			}
		}
		t.Compact()
	}
	b.ReportMetric(float64(inserts)/b.Elapsed().Seconds(), "inserts/s")
}

// benchAnalyzerPairComparison measures the pair-comparison phase on a
// strided DRB-style trace: one collection, repeated analyses. The reported
// solver-effort metrics are the engine's headline — requested decisions
// split into real solves, memo hits, and suppressed pairs.
func benchAnalyzerPairComparison(b *testing.B) {
	store := stridedTrace(b, 4, 2048, 8)
	var st *sword.RunStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = sword.AnalyzeStore(store)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.Analysis.NodeComparisons), "node_comparisons")
	b.ReportMetric(float64(st.Analysis.SolverCalls), "solver_calls")
	b.ReportMetric(float64(st.SolverCacheHits), "solver_cache_hits")
	b.ReportMetric(float64(st.SitesSuppressed), "sites_suppressed")
	b.ReportMetric(float64(st.Analysis.PairsPrefiltered), "pairs_prefiltered")
}

// benchAnalyzerEndToEnd measures a full sword run — collection plus both
// offline legs — on a named evaluation workload, through the same harness
// path the experiments use.
func benchAnalyzerEndToEnd(name string) func(b *testing.B) {
	return func(b *testing.B) {
		wl, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MicroBenches runs the performance micro-benchmark suite programmatically
// (testing.Benchmark, default 1s per benchmark) and returns benchmark name
// → result. It covers the hot paths the perf work targets: contended
// multi-slot collection (async pipeline vs synchronous flushing), the
// uncontended append, the affine capture path in its three filter lanes
// (certified drop, uncertified record, filter off), and each flush codec.
func MicroBenches() map[string]BenchResult {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CollectorContended", benchCollectorContended(false)},
		{"CollectorContendedSync", benchCollectorContended(true)},
		{"CollectorHotPath", benchCollectorHotPath},
		{"CollectorAffine/certified", benchCollectorAffine("certified")},
		{"CollectorAffine/uncertified", benchCollectorAffine("uncertified")},
		{"CollectorAffine/nofilter", benchCollectorAffine("nofilter")},
		{"Compress/raw", benchCompress(compress.Raw{})},
		{"Compress/lzss", benchCompress(compress.LZSS{})},
		{"Compress/flate", benchCompress(compress.NewFlate())},
		{"AnalyzerTreeBuild", benchAnalyzerTreeBuild},
		{"AnalyzerPairComparison", benchAnalyzerPairComparison},
		{"AnalyzerEndToEnd/antidep1-orig-yes", benchAnalyzerEndToEnd("antidep1-orig-yes")},
		{"AnalyzerEndToEnd/c_jacobi", benchAnalyzerEndToEnd("c_jacobi")},
	}
	out := make(map[string]BenchResult, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := BenchResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		for k, v := range r.Extra {
			if k == "events/s" {
				res.EventsPerS = v
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64, len(r.Extra))
			}
			res.Metrics[k] = v
		}
		out[bench.name] = res
	}
	return out
}

// WriteMicroBenches runs MicroBenches and writes the results to path as
// indented JSON (keys sorted), the BENCH_*.json artifact format.
func WriteMicroBenches(path string) error {
	data, err := json.MarshalIndent(MicroBenches(), "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal bench results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
