package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sword/internal/archer"
	"sword/internal/core"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
	"sword/internal/vc"
)

// Differential testing against an independent oracle.
//
// The oracle observes the same execution through the Tool interface and
// computes the *semantic* race set directly: it maintains vector clocks
// with only the structural edges (fork, join, barrier — no lock or atomic
// edges, since those do not order accesses semantically), snapshots the
// clock at every access, and brute-forces all access pairs for
// conflicting, concurrent, mutex-disjoint, byte-overlapping accesses.
// For programs without data-dependent branches this is exactly the set
// SWORD promises (§II: sound and complete); the ARCHER baseline must
// always report a subset of it.

// oracleAccess is one recorded access with its structural clock. Clocks
// are indexed by *occupant* — one id per logical thread — so epochs of
// successive logical threads sharing a pooled slot are never conflated
// (knowing a later occupant's clock must not imply knowing an earlier
// one's).
type oracleAccess struct {
	occ     int
	clock   *vc.Clock
	epoch   uint64
	addr    uint64
	size    uint64
	write   bool
	atomic  bool
	pc      uint64
	mutexes trace.MutexSet
}

// oracleTool implements omp.Tool with fork/join/barrier edges only.
type oracleTool struct {
	omp.NopTool
	mu       sync.Mutex
	occSeq   int
	occOf    map[int]int // slot -> current occupant id
	vcs      map[int]*vc.Clock
	forks    map[uint64]*vc.Clock
	joins    map[uint64]*vc.Clock
	bars     map[[2]uint64]*vc.Clock
	accesses []oracleAccess
}

func newOracle() *oracleTool {
	return &oracleTool{
		occOf: make(map[int]int),
		vcs:   make(map[int]*vc.Clock),
		forks: make(map[uint64]*vc.Clock),
		joins: make(map[uint64]*vc.Clock),
		bars:  make(map[[2]uint64]*vc.Clock),
	}
}

// occupant returns the current occupant id of a slot, creating the first
// one lazily (for the initial thread).
func (o *oracleTool) occupant(slot int) int {
	id, ok := o.occOf[slot]
	if !ok {
		o.occSeq++
		id = o.occSeq
		o.occOf[slot] = id
	}
	return id
}

func (o *oracleTool) clock(occ int) *vc.Clock {
	c, ok := o.vcs[occ]
	if !ok {
		c = &vc.Clock{}
		c.Tick(occ)
		o.vcs[occ] = c
	}
	return c
}

func (o *oracleTool) RegionFork(parent *omp.Thread, region omp.RegionInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	occ := o.occupant(parent.Slot())
	c := o.clock(occ)
	o.forks[region.ID] = c.Copy()
	c.Tick(occ)
}

func (o *oracleTool) ThreadBegin(th *omp.Thread) {
	o.mu.Lock()
	defer o.mu.Unlock()
	slot := th.Slot()
	fork := o.forks[th.Region().ID]
	if th.ID() == 0 && !th.Region().Async {
		// The master continues the encountering thread's clock.
		occ := o.occupant(slot)
		c := o.clock(occ)
		if fork != nil {
			c.Join(fork)
		}
		c.Tick(occ)
		return
	}
	// A worker is a fresh logical thread: new occupant, fresh clock.
	o.occSeq++
	occ := o.occSeq
	o.occOf[slot] = occ
	fresh := &vc.Clock{}
	if fork != nil {
		fresh.Join(fork)
	}
	fresh.Tick(occ)
	o.vcs[occ] = fresh
}

func (o *oracleTool) ThreadEnd(th *omp.Thread) {
	o.mu.Lock()
	defer o.mu.Unlock()
	occ := o.occupant(th.Slot())
	c := o.clock(occ)
	j, ok := o.joins[th.Region().ID]
	if !ok {
		j = &vc.Clock{}
		o.joins[th.Region().ID] = j
	}
	j.Join(c)
	c.Tick(occ)
}

func (o *oracleTool) RegionJoin(parent *omp.Thread, region omp.RegionInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if j, ok := o.joins[region.ID]; ok {
		o.clock(o.occupant(parent.Slot())).Join(j)
		delete(o.joins, region.ID)
	}
	delete(o.forks, region.ID)
}

func (o *oracleTool) BarrierArrive(th *omp.Thread, _ bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := [2]uint64{th.Region().ID, th.BID()}
	b, ok := o.bars[key]
	if !ok {
		b = &vc.Clock{}
		o.bars[key] = b
	}
	occ := o.occupant(th.Slot())
	c := o.clock(occ)
	b.Join(c)
	c.Tick(occ)
}

func (o *oracleTool) BarrierDepart(th *omp.Thread, _ bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := [2]uint64{th.Region().ID, th.BID() - 1}
	if b, ok := o.bars[key]; ok {
		o.clock(o.occupant(th.Slot())).Join(b)
	}
}

// Task edges (tasking extension): spawn and join are structural.

func (o *oracleTool) TaskSpawn(spawner *omp.Thread, task omp.RegionInfo) {
	o.mu.Lock()
	defer o.mu.Unlock()
	occ := o.occupant(spawner.Slot())
	c := o.clock(occ)
	o.forks[task.ID] = c.Copy()
	c.Tick(occ)
}

func (o *oracleTool) TaskWaited(spawner *omp.Thread, ids []uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.clock(o.occupant(spawner.Slot()))
	for _, id := range ids {
		if j, ok := o.joins[id]; ok {
			c.Join(j)
			delete(o.joins, id)
		}
	}
}

func (o *oracleTool) BarrierTasksDone(th *omp.Thread, ids []uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	key := [2]uint64{th.Region().ID, th.BID()}
	b, ok := o.bars[key]
	if !ok {
		b = &vc.Clock{}
		o.bars[key] = b
	}
	for _, id := range ids {
		if j, ok := o.joins[id]; ok {
			b.Join(j)
			delete(o.joins, id)
		}
	}
}

func (o *oracleTool) Access(th *omp.Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	occ := o.occupant(th.Slot())
	c := o.clock(occ)
	o.accesses = append(o.accesses, oracleAccess{
		occ:     occ,
		clock:   c.Copy(),
		epoch:   c.Get(occ),
		addr:    addr,
		size:    uint64(size),
		write:   write,
		atomic:  atomic,
		pc:      pc,
		mutexes: th.Held(),
	})
}

// pcPair is an unordered race site pair.
type pcPair [2]uint64

func makePair(a, b uint64) pcPair {
	if a > b {
		a, b = b, a
	}
	return pcPair{a, b}
}

// races brute-forces the semantic race set.
func (o *oracleTool) races() map[pcPair]bool {
	out := make(map[pcPair]bool)
	for i := range o.accesses {
		for j := i + 1; j < len(o.accesses); j++ {
			a, b := &o.accesses[i], &o.accesses[j]
			if !a.write && !b.write {
				continue
			}
			if a.atomic && b.atomic {
				continue
			}
			if a.mutexes.Intersects(b.mutexes) {
				continue
			}
			if a.addr+a.size <= b.addr || b.addr+b.size <= a.addr {
				continue
			}
			// Structurally ordered?
			if b.clock.HappensBefore(a.occ, a.epoch) || a.clock.HappensBefore(b.occ, b.epoch) {
				continue
			}
			out[makePair(a.pc, b.pc)] = true
		}
	}
	return out
}

func reportPairs(rep *report.Report) map[pcPair]bool {
	out := make(map[pcPair]bool)
	for _, r := range rep.Races() {
		out[makePair(r.First.PC, r.Second.PC)] = true
	}
	return out
}

// randomProgram builds and runs a random structured fork-join program on
// the given runtime. Accesses hit a shared pool of arrays with random
// strides, directions, widths, critical sections and atomics; regions
// nest, barrier counts vary. All branching depends only on the seed and
// thread ids, never on shared data — the paper's completeness condition.
func randomProgram(seed int64, rtm *omp.Runtime, space *memsim.Space) {
	r := rand.New(rand.NewSource(seed))
	const pool = 3
	arrays := make([]*memsim.F64, pool)
	for i := range arrays {
		a, err := space.AllocF64(64)
		if err != nil {
			panic(err)
		}
		arrays[i] = a
	}
	scalars, err := space.AllocF64(8)
	if err != nil {
		panic(err)
	}
	raw, err := space.AllocBytes(64)
	if err != nil {
		panic(err)
	}
	locks := []*omp.Lock{rtm.NewLock(), rtm.NewLock()}

	topRegions := 1 + r.Intn(2)
	rtm.Run(func(initial *omp.Thread) {
		for reg := 0; reg < topRegions; reg++ {
			teamSize := 2 + r.Intn(4)
			intervals := 1 + r.Intn(3)
			// Per-thread, per-interval action scripts decided up front from
			// the seed (schedule-independent behaviour).
			type action struct {
				kind   int // 0 access-run, 1 locked access, 2 atomic, 3 nested region
				arr    int
				base   int
				stride int
				count  int
				write  bool
				lock   int
				pc     uint64
				nested int // nested team size
			}
			scripts := make([][][]action, teamSize)
			for t := 0; t < teamSize; t++ {
				scripts[t] = make([][]action, intervals)
				for iv := 0; iv < intervals; iv++ {
					n := r.Intn(6)
					for k := 0; k < n; k++ {
						a := action{
							kind:   r.Intn(7),
							arr:    r.Intn(pool),
							base:   r.Intn(32),
							stride: 1 + r.Intn(3),
							count:  1 + r.Intn(16),
							write:  r.Intn(2) == 0,
							lock:   r.Intn(len(locks)),
							pc:     pcreg.Site(fmt.Sprintf("rand%d:r%d.t%d.i%d.k%d", seed, reg, t, iv, k)),
							nested: 2,
						}
						scripts[t][iv] = append(scripts[t][iv], a)
					}
				}
			}
			initial.Parallel(teamSize, func(th *omp.Thread) {
				for iv := 0; iv < intervals; iv++ {
					for _, act := range scripts[th.ID()][iv] {
						runAction(th, act.kind, arrays[act.arr], scalars, raw, locks[act.lock],
							act.base, act.stride, act.count, act.write, act.pc, act.nested)
					}
					if iv < intervals-1 {
						th.Barrier()
					}
				}
			})
		}
	})
}

func runAction(th *omp.Thread, kind int, arr, scalars *memsim.F64, raw *memsim.Bytes, lock *omp.Lock,
	base, stride, count int, write bool, pc uint64, nested int) {
	switch kind {
	case 0: // strided access run
		for i := 0; i < count; i++ {
			idx := (base + i*stride) % arr.Len()
			if write {
				th.StoreF64(arr, idx, 1, pc)
			} else {
				th.LoadF64(arr, idx, pc)
			}
		}
	case 1: // lock-protected scalar update
		th.WithLock(lock, func() {
			if write {
				th.StoreF64(scalars, base%scalars.Len(), 1, pc)
			} else {
				th.LoadF64(scalars, base%scalars.Len(), pc)
			}
		})
	case 2: // atomic update
		th.AtomicAddF64(scalars, base%scalars.Len(), 1, pc)
	case 3: // nested region: each member touches the array
		th.Parallel(nested, func(in *omp.Thread) {
			idx := (base + in.ID()) % arr.Len()
			if write {
				in.StoreF64(arr, idx, 2, pc)
			} else {
				in.LoadF64(arr, idx, pc)
			}
		})
	case 4: // byte-granular mixed-width accesses (partial word overlaps)
		size := uint8(1 << (stride & 3)) // 1, 2, 4 or 8 bytes
		for i := 0; i < count; i++ {
			off := (base + i*int(size)) % (raw.Len() - 8)
			addr := raw.Addr(off)
			if write {
				th.Write(addr, size, pc)
			} else {
				th.Read(addr, size, pc)
			}
		}
	case 5: // task racing (or not) with whatever else runs in the window
		th.Task(func(tt *omp.Thread) {
			for i := 0; i < count; i++ {
				idx := (base + i*stride) % arr.Len()
				if write {
					tt.StoreF64(arr, idx, 3, pc)
				} else {
					tt.LoadF64(arr, idx, pc)
				}
			}
		})
		if count%2 == 0 {
			th.TaskWait() // half the tasks are waited immediately
		}
	case 6: // taskwait separating earlier tasks from later accesses
		th.TaskWait()
		idx := base % arr.Len()
		if write {
			th.StoreF64(arr, idx, 4, pc)
		} else {
			th.LoadF64(arr, idx, pc)
		}
	}
}

// TestDifferentialSwordMatchesOracle: sword's race set must equal the
// semantic oracle's on random programs.
func TestDifferentialSwordMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing is not short")
	}
	for seed := int64(1); seed <= 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			oracle := newOracle()
			store := trace.NewMemStore()
			col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64})
			rtm := omp.New(omp.WithTool(oracle), omp.WithTool(col))
			space := memsim.NewSpace(nil)
			randomProgram(seed, rtm, space)
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			rep, err := core.New(store, core.Config{}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.races()
			got := reportPairs(rep)
			for pair := range want {
				if !got[pair] {
					t.Errorf("sword missed race %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
			for pair := range got {
				if !want[pair] {
					t.Errorf("sword false positive %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
		})
	}
}

// TestDifferentialSweepVsProbe: the sweep comparison engine — with its
// solver memo and race-site suppression active — must report exactly the
// race set of the legacy tree-probing engine on the same trace, after
// examining exactly the same number of node pairs. Short mode runs a
// reduced seed range so the race-detector leg of make check covers it.
func TestDifferentialSweepVsProbe(t *testing.T) {
	last := int64(120)
	if testing.Short() {
		last = 25
	}
	for seed := int64(1); seed <= last; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			store := trace.NewMemStore()
			col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64})
			rtm := omp.New(omp.WithTool(col))
			space := memsim.NewSpace(nil)
			randomProgram(seed, rtm, space)
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			// Pre-filtering is off so the effort identity below stays exact:
			// the probe engine never pre-filters, and a dropped pair would
			// legitimately skip node comparisons. Race-set identity with the
			// filter on is TestPrefilterKeepsRaceSet's job.
			sweepRep, err := core.New(store, core.Config{NoPrefilter: true}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			probeRep, err := core.New(store, core.Config{ProbeEngine: true}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			got, want := reportPairs(sweepRep), reportPairs(probeRep)
			for pair := range want {
				if !got[pair] {
					t.Errorf("sweep engine missed race %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
			for pair := range got {
				if !want[pair] {
					t.Errorf("sweep engine extra race %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
			if sweepRep.Stats.NodeComparisons != probeRep.Stats.NodeComparisons {
				t.Errorf("engines examined different pair counts: sweep %d, probe %d",
					sweepRep.Stats.NodeComparisons, probeRep.Stats.NodeComparisons)
			}
		})
	}
}

// TestDifferentialArcherSubsetOfSword: on the same trace, archer's report
// must be a subset of sword's (the paper's headline detection claim), and
// neither may report outside the semantic race set.
func TestDifferentialArcherSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing is not short")
	}
	for seed := int64(100); seed <= 200; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			oracle := newOracle()
			at := archer.New(archer.Config{})
			store := trace.NewMemStore()
			col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64})
			rtm := omp.New(omp.WithTool(oracle), omp.WithTool(at), omp.WithTool(col))
			space := memsim.NewSpace(nil)
			randomProgram(seed, rtm, space)
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			rep, err := core.New(store, core.Config{}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.races()
			sword := reportPairs(rep)
			for pair := range reportPairs(at.Report()) {
				if !want[pair] {
					t.Errorf("archer false positive %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
				if !sword[pair] {
					t.Errorf("archer found a race sword missed: %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
		})
	}
}

// TestSoakFullPipeline is the long-haul stress: many random programs
// through the real on-disk pipeline (DirStore, async flusher, tiny
// buffers), each validated for trace integrity and checked against the
// oracle.
func TestSoakFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	dir := t.TempDir()
	for seed := int64(300); seed < 330; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			store, err := trace.NewDirStore(fmt.Sprintf("%s/%d", dir, seed))
			if err != nil {
				t.Fatal(err)
			}
			oracle := newOracle()
			col := rt.New(store, rt.Config{MaxEvents: 32}) // async, tiny buffers
			rtm := omp.New(omp.WithTool(oracle), omp.WithTool(col))
			space := memsim.NewSpace(nil)
			randomProgram(seed, rtm, space)
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
			if err := trace.Validate(store); err != nil {
				t.Fatalf("trace integrity: %v", err)
			}
			rep, err := core.New(store, core.Config{SubtreeBatch: 2}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.races()
			got := reportPairs(rep)
			if len(want) != len(got) {
				t.Fatalf("race sets differ: oracle %d, sword %d\n%s", len(want), len(got), rep.String())
			}
			for pair := range want {
				if !got[pair] {
					t.Fatalf("missing %s <-> %s",
						pcreg.Default.Name(pair[0]), pcreg.Default.Name(pair[1]))
				}
			}
		})
	}
}
