package harness

import (
	"testing"

	"sword/internal/obs"
	"sword/internal/workloads"
)

// TestSwordRunStats pins the harness's public-API integration: a sword run
// must come back with the observability summary populated from real
// instrumentation — phase timings, matching counters, and an aggregating
// shared registry.
func TestSwordRunStats(t *testing.T) {
	wl, err := workloads.Get("c_md")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	res, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, Obs: m})
	if err != nil {
		t.Fatal(err)
	}
	st := res.RunStats
	if st == nil {
		t.Fatal("sword run returned no RunStats")
	}
	if st.AnalyzeTotal <= 0 || st.TreeBuild <= 0 {
		t.Fatalf("phase timings not recorded: %+v", st)
	}
	if st.Collect.Events == 0 || st.Collect.CompressedBytes == 0 {
		t.Fatalf("collection counters not recorded: %+v", st.Collect)
	}
	if st.Analysis.IntervalPairs == 0 {
		t.Fatalf("analysis counters not recorded: %+v", st.Analysis)
	}
	snap := m.Snapshot()
	if got := uint64(snap.Value("rt.events")); got != st.Collect.Events {
		t.Fatalf("shared registry rt.events = %d, collector counted %d", got, st.Collect.Events)
	}
	if snap.Value("core.interval_pairs") == 0 {
		t.Fatal("shared registry missing offline counters")
	}

	// Baseline runs carry no sword stats.
	base, err := Run(wl, Baseline, Options{Threads: 4, NodeBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if base.RunStats != nil {
		t.Fatal("baseline run unexpectedly produced RunStats")
	}
}

// TestSwordBatchedRunSkipsBlocks drives the full public-API pipeline on a
// many-region workload with small collection buffers: the batched offline
// phase must skip log blocks belonging to other batches (the reader's fast
// path) and still produce the same race report as the single-pass run,
// with the parallel flush pipeline enabled.
func TestSwordBatchedRunSkipsBlocks(t *testing.T) {
	wl, err := workloads.Get("lulesh")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Threads: 4, Size: 12, NodeBudget: -1, MaxEvents: 256, FlushWorkers: 2}
	plain, err := Run(wl, Sword, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.RunStats.BlocksSkipped != 0 {
		t.Fatalf("single-pass run skipped %d blocks, want 0", plain.RunStats.BlocksSkipped)
	}
	opts.SubtreeBatch = 2
	batched, err := Run(wl, Sword, opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Races != plain.Races {
		t.Fatalf("batched run found %d races, single pass %d", batched.Races, plain.Races)
	}
	if batched.Report.String() != plain.Report.String() {
		t.Fatalf("batched report differs from single-pass report:\n%s\nvs\n%s",
			batched.Report, plain.Report)
	}
	if batched.RunStats.BlocksSkipped == 0 {
		t.Fatal("batched run skipped no blocks; the fast path never engaged")
	}
	if batched.RunStats.SkippedBytes == 0 {
		t.Fatal("batched run skipped blocks but counted no bytes")
	}
}
