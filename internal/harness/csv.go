package harness

import (
	"fmt"
	"strings"

	"sword/internal/workloads"
)

// CSV emitters: the figures' underlying series in machine-readable form,
// for replotting the paper's charts from the reproduction's measurements.
// cmd/swordbench -csv writes them next to the text artifacts.

// CSVFig6 emits the Figure 6 series: one row per (threads, tool) with
// geometric-mean slowdown and memory ratio over the OmpSCR suite.
func CSVFig6(cfg ExpConfig) string {
	var b strings.Builder
	b.WriteString("threads,tool,geomean_slowdown,geomean_mem_ratio\n")
	suite := workloads.BySuite("ompscr")
	for _, threads := range cfg.threads() {
		baselines := make(map[string]Result)
		for _, wl := range suite {
			res, err := RunAveraged(wl, Baseline, Options{Threads: threads, NodeBudget: -1}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			baselines[wl.Name] = res
		}
		for _, tool := range []Tool{Archer, ArcherLow, Sword} {
			var slows, mems []float64
			for _, wl := range suite {
				res, err := RunAveraged(wl, tool, Options{Threads: threads, NodeBudget: -1, SkipOffline: true}, cfg.repeats())
				if err != nil {
					panic(err)
				}
				slows = append(slows, Slowdown(res, baselines[wl.Name]))
				mems = append(mems, MemRatio(res))
			}
			fmt.Fprintf(&b, "%d,%s,%.4f,%.4f\n", threads, tool, Geomean(slows), Geomean(mems))
		}
	}
	return b.String()
}

// CSVFig7 emits the Figure 7 series: per HPC benchmark, threads and tool,
// the slowdown and total modeled memory in bytes.
func CSVFig7(cfg ExpConfig) string {
	var b strings.Builder
	b.WriteString("benchmark,threads,tool,slowdown,total_mem_bytes\n")
	for _, row := range HPCBenchmarks()[:4] {
		wl, err := workloads.Get(row.Name)
		if err != nil {
			panic(err)
		}
		for _, threads := range cfg.threads() {
			base, err := RunAveraged(wl, Baseline, Options{Threads: threads, Size: row.Size, NodeBudget: -1}, cfg.repeats())
			if err != nil {
				panic(err)
			}
			for _, tool := range []Tool{Archer, ArcherLow, Sword} {
				res, err := RunAveraged(wl, tool, Options{Threads: threads, Size: row.Size, NodeBudget: -1, SkipOffline: true}, cfg.repeats())
				if err != nil {
					panic(err)
				}
				fmt.Fprintf(&b, "%s,%d,%s,%.4f,%d\n",
					row.Label, threads, tool, Slowdown(res, base), res.Footprint+res.MemOverhead)
			}
		}
	}
	return b.String()
}

// CSVFig8 emits the Figure 8 series: AMG size sweep with total modeled
// memory per tool; OOM rows carry -1.
func CSVFig8() string {
	var b strings.Builder
	b.WriteString("size,footprint_bytes,tool,total_mem_bytes\n")
	wl, err := workloads.Get("amg")
	if err != nil {
		panic(err)
	}
	for _, size := range []int{10, 20, 30, 40} {
		foot := workloads.AMGFootprint(size)
		for _, tool := range Tools {
			res, err := Run(wl, tool, Options{Threads: 4, Size: size, SkipOffline: true})
			if err != nil {
				panic(err)
			}
			total := int64(res.Footprint + res.MemOverhead)
			if res.OOM {
				total = -1
			}
			fmt.Fprintf(&b, "%d,%d,%s,%d\n", size, foot, tool, total)
		}
	}
	return b.String()
}

// CSVExports maps csv artifact names to their emitters.
func CSVExports(cfg ExpConfig) map[string]func() string {
	return map[string]func() string{
		"fig6": func() string { return CSVFig6(cfg) },
		"fig7": func() string { return CSVFig7(cfg) },
		"fig8": CSVFig8,
	}
}
