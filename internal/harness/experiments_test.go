package harness

import (
	"strings"
	"testing"

	"sword/internal/workloads"
)

// hasRow reports whether some line of out, split on whitespace, equals the
// given fields (tabwriter renders tabs as spaces).
func hasRow(out string, fields ...string) bool {
	for _, line := range strings.Split(out, "\n") {
		got := strings.Fields(line)
		if len(got) != len(fields) {
			continue
		}
		match := true
		for i := range fields {
			if got[i] != fields[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// These tests pin the *shape* of each regenerated table and figure to the
// paper's qualitative results (who wins, who OOMs, who misses).

func TestExpFig1Shape(t *testing.T) {
	out := ExpFig1()
	if !strings.Contains(out, "1 race") {
		t.Fatalf("fig1 output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "0 race (masked)") {
		t.Fatalf("fig1 must show archer masking under schedule (b):\n%s", out)
	}
	// sword must report the race on both lines.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "(") && !strings.Contains(line, "1 race") {
			t.Fatalf("sword missed a schedule:\n%s", out)
		}
	}
}

func TestExpTab1Shape(t *testing.T) {
	out := ExpTab1()
	if !strings.Contains(out, "pid") || !strings.Contains(out, "ppid") ||
		!strings.Contains(out, "data begin") {
		t.Fatalf("tab1 missing Table I header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + at least three fragments (two intervals of region 1, one of
	// region 2) for thread 0.
	if len(lines) < 5 {
		t.Fatalf("tab1 too few rows:\n%s", out)
	}
	if !strings.Contains(out, "\t-\t") && !strings.Contains(out, " - ") {
		t.Fatalf("tab1 missing root-region ppid dash:\n%s", out)
	}
}

func TestExpFig2Shape(t *testing.T) {
	out := ExpFig2()
	if !strings.Contains(out, "3 race(s)") {
		t.Fatalf("fig2 must find exactly R1, R2, R3:\n%s", out)
	}
	for _, needle := range []string{"write-y", "read-y", "write-x", "read-x"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("fig2 missing %s:\n%s", needle, out)
		}
	}
}

func TestExpDRBShape(t *testing.T) {
	out := ExpDRB()
	for _, w := range workloads.BySuite("drb") {
		if !strings.Contains(out, w.Name) {
			t.Fatalf("drb table missing %s:\n%s", w.Name, out)
		}
	}
	// The nowait kernel: archer misses (0), sword catches (1).
	if !hasRow(out, "nowait-orig-yes", "1", "0", "0", "1") {
		t.Fatalf("drb table nowait row wrong:\n%s", out)
	}
	if !hasRow(out, "privatemissing-orig-yes", "1", "1", "1", "3") {
		t.Fatalf("drb table privatemissing row wrong:\n%s", out)
	}
}

func TestExpTab2Shape(t *testing.T) {
	out := ExpTab2()
	// Race-free benchmarks are omitted.
	for _, clean := range []string{"c_pi", "c_qsort", "c_GraphSearch"} {
		if strings.Contains(out, clean) {
			t.Fatalf("tab2 must omit race-free %s:\n%s", clean, out)
		}
	}
	// The six sword-superiority rows.
	for _, row := range [][]string{
		{"c_md", "2", "2", "2", "3"},
		{"c_testPath", "1", "1", "1", "2"},
		{"cpp_qsomp1", "1", "1", "1", "2"},
		{"cpp_qsomp2", "1", "1", "1", "2"},
		{"cpp_qsomp5", "1", "1", "1", "2"},
		{"cpp_qsomp6", "1", "1", "1", "2"},
	} {
		if !hasRow(out, row...) {
			t.Fatalf("tab2 missing row %v:\n%s", row, out)
		}
	}
}

func TestExpTab4Shape(t *testing.T) {
	out := ExpTab4()
	for _, row := range [][]string{
		{"miniFE", "0", "0", "0"},
		{"HPCCG", "1", "1", "1"},
		{"LULESH", "0", "0", "0"},
		{"AMG2013_10", "4", "4", "14"},
		{"AMG2013_40", "OOM", "OOM", "14"},
	} {
		if !hasRow(out, row...) {
			t.Fatalf("tab4 missing row %v:\n%s", row, out)
		}
	}
}

func TestExpFig8Shape(t *testing.T) {
	out := ExpFig8()
	if !strings.Contains(out, "OOM") {
		t.Fatalf("fig8 must show archer OOM at 40^3:\n%s", out)
	}
	if !strings.Contains(out, "completed, 14 races") {
		t.Fatalf("fig8 must show sword completing the >90%% run:\n%s", out)
	}
	if !strings.Contains(out, "% of node") {
		t.Fatalf("fig8 missing the node-fraction line:\n%s", out)
	}
}

func TestTimingExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps are not short")
	}
	cfg := ExpConfig{Threads: []int{2}, Repeats: 1}
	for name, f := range map[string]func() string{
		"fig6": func() string { return ExpFig6(cfg) },
		"tab3": func() string { return ExpTab3(cfg) },
		"fig7": func() string { return ExpFig7(cfg) },
		"tab5": func() string { return ExpTab5(cfg) },
	} {
		out := f()
		if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
			t.Errorf("%s rendered too little:\n%s", name, out)
		}
	}
}

// TestFig6MemoryShape: sword's memory ratio must beat archer's on the
// OmpSCR geomeans — the paper's Figure 6 right-hand panel.
func TestFig6MemoryShape(t *testing.T) {
	suite := workloads.BySuite("ompscr")
	var archerMem, swordMem []float64
	for _, wl := range suite {
		a, err := Run(wl, Archer, Options{Threads: 4, NodeBudget: -1, SkipOffline: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Run(wl, Sword, Options{Threads: 4, NodeBudget: -1, SkipOffline: true})
		if err != nil {
			t.Fatal(err)
		}
		archerMem = append(archerMem, MemRatio(a))
		swordMem = append(swordMem, MemRatio(s))
		// Sword's absolute overhead is the bounded per-thread constant.
		if s.MemOverhead != 4*(2<<20+1_300_000) {
			t.Fatalf("%s: sword overhead %d not the N*(B+C) bound", wl.Name, s.MemOverhead)
		}
		if a.MemOverhead != a.Footprint*6 {
			t.Fatalf("%s: archer overhead %d not 6x footprint", wl.Name, a.MemOverhead)
		}
	}
	if Geomean(archerMem) <= 1 || Geomean(swordMem) <= 1 {
		t.Fatal("memory ratios must exceed 1")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments(ExpConfig{})
	for _, id := range ExperimentIDs() {
		if _, ok := exps[id]; !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(exps) != len(ExperimentIDs()) {
		t.Errorf("registry has %d entries, ids list %d", len(exps), len(ExperimentIDs()))
	}
}

func TestOOMVerdicts(t *testing.T) {
	amg, err := workloads.Get("amg")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		tool Tool
		size int
		oom  bool
	}{
		{Archer, 30, false},
		{Archer, 40, true},
		{ArcherLow, 40, true},
		{Sword, 40, false},
		{Baseline, 40, false},
	} {
		res, err := Run(amg, tc.tool, Options{Threads: 4, Size: tc.size, SkipOffline: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM != tc.oom {
			t.Errorf("amg %d^3 under %s: OOM=%v, want %v", tc.size, tc.tool, res.OOM, tc.oom)
		}
	}
}

func TestRunAveragedOnOOM(t *testing.T) {
	amg, _ := workloads.Get("amg")
	res, err := RunAveraged(amg, Archer, Options{Threads: 4, Size: 40}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("averaged OOM run lost the OOM verdict")
	}
}

func TestToolStrings(t *testing.T) {
	for tool, want := range map[Tool]string{
		Baseline: "baseline", Archer: "archer", ArcherLow: "archer-low", Sword: "sword",
	} {
		if tool.String() != want {
			t.Errorf("Tool(%d).String() = %q", int(tool), tool.String())
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("Geomean(2,8) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %f", g)
	}
	if g := Geomean([]float64{-1, 0, 4}); g != 4 {
		t.Fatalf("Geomean skipping non-positive = %f", g)
	}
}

func TestCSVFig8Shape(t *testing.T) {
	out := CSVFig8()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "size,footprint_bytes,tool,total_mem_bytes" {
		t.Fatalf("header: %s", lines[0])
	}
	if len(lines) != 1+4*4 {
		t.Fatalf("rows: %d", len(lines))
	}
	oomRows := 0
	for _, l := range lines[1:] {
		if strings.HasSuffix(l, ",-1") {
			oomRows++
		}
	}
	if oomRows != 2 { // archer and archer-low at 40^3
		t.Fatalf("OOM rows = %d, want 2:\n%s", oomRows, out)
	}
}

func TestExpTaskShape(t *testing.T) {
	out := ExpTask()
	for _, row := range [][]string{
		{"taskdep1-orig-yes", "1", "1", "1", "1"},
		{"tasksibling-orig-yes", "1", "1", "1", "1"},
		{"taskwait-orig-no", "0", "0", "0", "0"},
		{"taskfor-orig-no", "0", "0", "0", "0"},
	} {
		if !hasRow(out, row...) {
			t.Fatalf("task table missing row %v:\n%s", row, out)
		}
	}
}
