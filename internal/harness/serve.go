package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sword"
	"sword/internal/obs"
	"sword/internal/server"
	"sword/internal/workloads"
)

// ServeBenchResult is the always-on analysis service's stress
// measurement, the schema of BENCH_8.json (documented in
// EXPERIMENTS.md). The experiment floods one server with concurrent
// small uploads from many tenants while a heavy tenant submits giant
// jobs, mixes in torn uploads, and asserts the robustness envelope:
// nothing starves, nothing 5xxs, reports match the offline analyzer,
// and the heap stays under budget.
type ServeBenchResult struct {
	// Offered load: how many uploads of each class were submitted, and
	// the per-upload trace volume of the small and giant classes (torn
	// uploads are damaged copies of the small trace).
	SmallJobs  int   `json:"small_jobs"`
	GiantJobs  int   `json:"giant_jobs"`
	TornJobs   int   `json:"torn_jobs"`
	SmallBytes int64 `json:"small_bytes"`
	GiantBytes int64 `json:"giant_bytes"`
	// Quantum is the deficit-round-robin byte quantum the run used,
	// derived from the giant trace so a giant job needs many scheduler
	// rounds while small jobs clear in a few.
	Quantum int64 `json:"quantum"`
	// Outcomes. Accepted counts 202s (must equal the offered load under
	// these budgets); Status5xx counts server errors (must be zero: torn
	// uploads degrade, they do not error). SmallDone/GiantDone count jobs
	// that finished clean; TornPartial counts torn uploads that finished
	// as partial salvage reports (must equal TornJobs).
	Accepted    int   `json:"accepted"`
	Status5xx   int   `json:"status_5xx"`
	Shed        int64 `json:"shed"`
	SmallDone   int   `json:"small_done"`
	GiantDone   int   `json:"giant_done"`
	TornPartial int   `json:"torn_partial"`
	// ZeroStarvation is the fairness bound: every small job finished
	// before the slowest giant did, even though the giants were submitted
	// first. The timestamps (ns since the first upload) let the margin be
	// read off the artifact.
	ZeroStarvation  bool    `json:"zero_starvation"`
	LastSmallDoneNs float64 `json:"last_small_done_ns"`
	LastGiantDoneNs float64 `json:"last_giant_done_ns"`
	// ReportsAgree says every clean job's dedup'd race count matched the
	// offline analyzer (swordoffline) on the same trace.
	ReportsAgree bool `json:"reports_agree"`
	// Memory: the guard's sampled heap peak against the server-wide
	// budget the run configured.
	HeapPeakBytes   int64 `json:"heap_peak_bytes"`
	HeapBudgetBytes int64 `json:"heap_budget_bytes"`
	UnderHeapBudget bool  `json:"under_heap_budget"`
	// DurationNs is the whole experiment's wall time, uploads included.
	DurationNs float64 `json:"duration_ns"`
	// Err is set when the experiment could not run; other fields are
	// then zero.
	Err string `json:"err,omitempty"`
}

// Serve stress shape: a flood of small uploads across many tenants, a
// few giants from one heavy tenant, and a handful of torn uploads.
const (
	serveSmallJobs   = 200
	serveGiantJobs   = 3
	serveTornJobs    = 8
	serveTenants     = 20
	serveUploaders   = 16
	serveHeapBudget  = 2 << 30
	serveSmallName   = "plusplus-orig-yes"
	serveGiantName   = "c_jacobi"
	serveGiantScale  = 12 // giant workload size multiplier: ~100x the analysis time of a small job
	serveWaitTimeout = 5 * time.Minute
)

// serveCollectDir collects the named workload (at scale times its
// default size) into a fresh trace directory and returns the directory
// and its total byte volume.
func serveCollectDir(name string, scale int) (string, int64, error) {
	wl, err := workloads.Get(name)
	if err != nil {
		return "", 0, err
	}
	dir, err := os.MkdirTemp("", "sword-serve-*")
	if err != nil {
		return "", 0, err
	}
	sess, err := sword.NewSession(sword.WithLogDir(dir))
	if err != nil {
		return "", 0, err
	}
	wl.Run(&workloads.Ctx{
		RT:      sess.Runtime(),
		Space:   sess.Space(),
		Threads: 4,
		Size:    scale * wl.DefaultSize,
	})
	if err := sess.CollectOnly(); err != nil {
		return "", 0, err
	}
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return dir, total, nil
}

// serveTornCopy copies a trace directory and tears the tail off its
// first log — the half-written trace of a client that died mid-run.
func serveTornCopy(src string) (string, error) {
	dir, err := os.MkdirTemp("", "sword-serve-torn-*")
	if err != nil {
		return "", err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	torn := false
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return "", err
		}
		if !torn && filepath.Ext(e.Name()) == ".log" && len(data) > 16 {
			data = data[:len(data)/2+1]
			torn = true
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			return "", err
		}
	}
	if !torn {
		return "", fmt.Errorf("trace %s has no log to tear", src)
	}
	return dir, nil
}

// serveUpload posts dir as one multipart job and returns the job id,
// HTTP status, and decode error.
func serveUpload(base, tenant, dir string) (string, int, error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		fw, err := mw.CreateFormFile("file", e.Name())
		if err != nil {
			return "", 0, err
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return "", 0, err
		}
		if _, err := fw.Write(data); err != nil {
			return "", 0, err
		}
	}
	if err := mw.Close(); err != nil {
		return "", 0, err
	}
	req, err := http.NewRequest("POST", base+"/api/v1/jobs", &buf)
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	req.Header.Set("X-Sword-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		return "", resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, msg)
	}
	var j struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return "", resp.StatusCode, err
	}
	return j.ID, resp.StatusCode, nil
}

// serveJobStatus polls one job until it reaches a terminal state.
func serveJobStatus(base, id string, deadline time.Time) (state string, races int, finished time.Time, err error) {
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			return "", 0, time.Time{}, err
		}
		var j struct {
			State      string    `json:"state"`
			Races      int       `json:"races"`
			Error      string    `json:"error"`
			FinishedAt time.Time `json:"finished_at"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if derr != nil {
			return "", 0, time.Time{}, derr
		}
		switch j.State {
		case "done", "partial", "failed", "canceled":
			if j.State == "failed" {
				return j.State, j.Races, j.FinishedAt, fmt.Errorf("job %s failed: %s", id, j.Error)
			}
			return j.State, j.Races, j.FinishedAt, nil
		}
		if time.Now().After(deadline) {
			return "", 0, time.Time{}, fmt.Errorf("job %s stuck in %q", id, j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ServeBench runs the multi-tenant service stress experiment: giants
// first, then a concurrent flood of small and torn uploads, then the
// robustness assertions. See ServeBenchResult for what each field
// certifies.
func ServeBench() ServeBenchResult {
	return serveBenchRun(serveSmallJobs, serveGiantJobs, serveTornJobs, serveGiantScale)
}

// serveBenchRun is the parameterized experiment body; tests run it at a
// fraction of the artifact's scale.
func serveBenchRun(smallJobs, giantJobs, tornJobs, giantScale int) ServeBenchResult {
	res := ServeBenchResult{
		SmallJobs: smallJobs,
		GiantJobs: giantJobs,
		TornJobs:  tornJobs,
	}
	fail := func(err error) ServeBenchResult {
		return ServeBenchResult{Err: err.Error()}
	}

	smallDir, smallBytes, err := serveCollectDir(serveSmallName, 1)
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(smallDir)
	giantDir, giantBytes, err := serveCollectDir(serveGiantName, giantScale)
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(giantDir)
	tornDir, err := serveTornCopy(smallDir)
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(tornDir)
	res.SmallBytes, res.GiantBytes = smallBytes, giantBytes

	smallRep, _, err := sword.Analyze(smallDir)
	if err != nil {
		return fail(err)
	}
	giantRep, _, err := sword.Analyze(giantDir)
	if err != nil {
		return fail(err)
	}

	// The quantum makes the fairness bound non-trivial: a giant job needs
	// ~16 scheduler rounds of saved-up deficit, while every round lets
	// each small tenant's head job through.
	res.Quantum = max(giantBytes/16, 1)
	m := obs.New()
	dataDir, err := os.MkdirTemp("", "sword-serve-data-*")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dataDir)
	srv, err := server.New(
		server.WithDataDir(dataDir),
		server.WithObs(m),
		server.WithConcurrency(2),
		server.WithQuantum(res.Quantum),
		server.WithMemBudget(serveHeapBudget),
		server.WithRetryBackoff(10*time.Millisecond),
		server.WithJobTimeout(2*time.Minute),
	)
	if err != nil {
		return fail(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	// Giants go first, from one heavy tenant: the worst case for the
	// flood that follows.
	giantIDs := make([]string, 0, giantJobs)
	for i := 0; i < giantJobs; i++ {
		id, code, err := serveUpload(ts.URL, "heavy", giantDir)
		if err != nil {
			return fail(fmt.Errorf("giant upload: %w", err))
		}
		if code == http.StatusAccepted {
			res.Accepted++
		}
		giantIDs = append(giantIDs, id)
	}

	// The flood: small and torn uploads interleaved across tenants, from
	// a bounded uploader pool.
	type uploadJob struct {
		dir    string
		tenant string
		torn   bool
	}
	work := make(chan uploadJob)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		smallIDs []string
		tornIDs  []string
		fiveXX   atomic.Int64
		firstErr atomic.Value
	)
	for i := 0; i < serveUploaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				id, code, err := serveUpload(ts.URL, u.tenant, u.dir)
				if code >= 500 {
					fiveXX.Add(1)
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				mu.Lock()
				res.Accepted++
				if u.torn {
					tornIDs = append(tornIDs, id)
				} else {
					smallIDs = append(smallIDs, id)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < smallJobs; i++ {
		work <- uploadJob{smallDir, fmt.Sprintf("team-%02d", i%serveTenants), false}
	}
	for i := 0; i < tornJobs; i++ {
		work <- uploadJob{tornDir, fmt.Sprintf("team-%02d", i%serveTenants), true}
	}
	close(work)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return fail(fmt.Errorf("flood upload: %w", err))
	}

	// Wait everything out and collect the envelope's evidence.
	deadline := time.Now().Add(serveWaitTimeout)
	res.ReportsAgree = true
	var lastSmall, lastGiant time.Time
	for _, id := range smallIDs {
		state, races, fin, err := serveJobStatus(ts.URL, id, deadline)
		if err != nil {
			return fail(err)
		}
		if state == "done" {
			res.SmallDone++
			if races != smallRep.Len() {
				res.ReportsAgree = false
			}
			if fin.After(lastSmall) {
				lastSmall = fin
			}
		}
	}
	for _, id := range giantIDs {
		state, races, fin, err := serveJobStatus(ts.URL, id, deadline)
		if err != nil {
			return fail(err)
		}
		if state == "done" {
			res.GiantDone++
			if races != giantRep.Len() {
				res.ReportsAgree = false
			}
			if fin.After(lastGiant) {
				lastGiant = fin
			}
		}
	}
	for _, id := range tornIDs {
		state, _, _, err := serveJobStatus(ts.URL, id, deadline)
		if err != nil {
			return fail(err)
		}
		if state == "partial" {
			res.TornPartial++
		}
	}
	res.DurationNs = float64(time.Since(start).Nanoseconds())
	res.Status5xx = int(fiveXX.Load())

	snap := m.Snapshot()
	res.Shed = snap.Value("server.jobs_shed")
	res.HeapPeakBytes = snap.Value("server.heap_peak")
	res.HeapBudgetBytes = serveHeapBudget
	res.UnderHeapBudget = res.HeapPeakBytes > 0 && res.HeapPeakBytes <= serveHeapBudget
	res.LastSmallDoneNs = float64(lastSmall.Sub(start).Nanoseconds())
	res.LastGiantDoneNs = float64(lastGiant.Sub(start).Nanoseconds())
	res.ZeroStarvation = res.SmallDone == smallJobs &&
		res.GiantDone == giantJobs && lastSmall.Before(lastGiant)
	return res
}

// WriteServeBench runs ServeBench and writes the result to path as
// indented JSON, the BENCH_8.json artifact format.
func WriteServeBench(path string) error {
	res := ServeBench()
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal serve bench result: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
