package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sword"
	"sword/internal/dist"
	"sword/internal/workloads"
)

// DistLane is one worker-count's measurement in a DistBenchResult.
type DistLane struct {
	// NsPerRun is the best-of-repeats wall time of a coordinator plus N
	// loopback workers draining the whole plan.
	NsPerRun float64 `json:"ns_per_run"`
	// Speedup is single-process wall time over this lane's (> 1 means the
	// distribution paid off despite the framing and per-batch tree builds).
	Speedup float64 `json:"speedup"`
	// Races is the dedup'd race count; Agrees says it and the race sites
	// matched the single-process report — the correctness leg of the
	// experiment, asserted on every repeat.
	Races  int  `json:"races"`
	Agrees bool `json:"agrees"`
}

// DistBenchResult is one workload's distributed-vs-single measurement,
// the schema of BENCH_5.json (documented in EXPERIMENTS.md).
type DistBenchResult struct {
	// SingleNs is the single-process analysis wall time (best of repeats,
	// same store, same config), the lanes' baseline.
	SingleNs float64 `json:"single_ns"`
	// Units is how many pair units the coordinator planned.
	Units int `json:"units"`
	// Workers maps worker count ("1", "2", "4") to that lane's numbers.
	Workers map[string]DistLane `json:"workers"`
	// Err is set when the workload failed to collect or analyze; the
	// other fields are then zero.
	Err string `json:"err,omitempty"`
}

// distBenchWorkloads are the measured workloads: two racy evaluation
// kernels with enough concurrent pairs for the distribution to matter
// and a race-free one (pure comparison effort, no dedup traffic).
var distBenchWorkloads = []string{"c_md", "c_jacobi", "critical-no"}

// distWorkerCounts are the lanes measured per workload.
var distWorkerCounts = []int{1, 2, 4}

const distBenchRepeats = 3

// distCollect runs the named workload once under the collector and
// returns the trace store the single-process and distributed lanes share.
func distCollect(name string) (sword.Store, error) {
	wl, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	sess, err := sword.NewSession()
	if err != nil {
		return nil, err
	}
	wl.Run(&workloads.Ctx{
		RT:      sess.Runtime(),
		Space:   sess.Space(),
		Threads: 4,
		Size:    wl.DefaultSize,
	})
	if err := sess.CollectOnly(); err != nil {
		return nil, err
	}
	return sess.Store(), nil
}

// distBenchOne measures one workload: single-process analysis wall time
// against a coordinator plus N loopback workers, with the race sets
// compared on every distributed run.
func distBenchOne(name string) DistBenchResult {
	store, err := distCollect(name)
	if err != nil {
		return DistBenchResult{Err: err.Error()}
	}
	var base *sword.Report
	single := time.Duration(1<<63 - 1)
	for i := 0; i < distBenchRepeats; i++ {
		start := time.Now()
		rep, _, err := sword.AnalyzeStore(store)
		if err != nil {
			return DistBenchResult{Err: err.Error()}
		}
		if d := time.Since(start); d < single {
			single = d
		}
		base = rep
	}
	res := DistBenchResult{
		SingleNs: float64(single.Nanoseconds()),
		Workers:  make(map[string]DistLane, len(distWorkerCounts)),
	}
	for _, n := range distWorkerCounts {
		lane := DistLane{Agrees: true}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < distBenchRepeats; i++ {
			start := time.Now()
			rep, err := dist.Local(context.Background(), store, n,
				dist.CoordinatorConfig{}, dist.WorkerConfig{})
			if err != nil {
				return DistBenchResult{Err: fmt.Sprintf("local %d workers: %v", n, err)}
			}
			if d := time.Since(start); d < best {
				best = d
			}
			lane.Races = rep.Len()
			if rep.Len() != base.Len() || !sameRaceSites(base, rep) {
				lane.Agrees = false
			}
			if res.Units == 0 {
				res.Units = int(rep.Stats.IntervalPairs)
			}
		}
		lane.NsPerRun = float64(best.Nanoseconds())
		if best > 0 {
			lane.Speedup = float64(single) / float64(best)
		}
		res.Workers[fmt.Sprint(n)] = lane
	}
	return res
}

// DistBenches measures the distributed analysis against the
// single-process analyzer on the bundled workloads: same store, same
// race set (asserted), wall time per worker count. Workload name →
// result.
//
// The lanes run loopback workers inside one process, so the numbers
// carry the full protocol cost (framing, gob, heartbeats, per-batch tree
// builds) but not network latency — the honest floor of what a real
// cluster adds. Tiny workloads routinely show speedup < 1: the plan has
// too few units to amortize the per-batch rebuilds, which is the
// documented trade-off of batch size (CoordinatorConfig.BatchUnits).
func DistBenches() map[string]DistBenchResult {
	out := make(map[string]DistBenchResult, len(distBenchWorkloads))
	for _, name := range distBenchWorkloads {
		out[name] = distBenchOne(name)
	}
	return out
}

// WriteDistBench runs DistBenches and writes the results to path as
// indented JSON (keys sorted), the BENCH_5.json artifact format.
func WriteDistBench(path string) error {
	data, err := json.MarshalIndent(DistBenches(), "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal dist bench results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
