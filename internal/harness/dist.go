package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"time"

	"sword"
	"sword/internal/dist"
	"sword/internal/obs"
	"sword/internal/workloads"
)

// DistLane is one worker-count's measurement in a DistBenchResult.
type DistLane struct {
	// NsPerRun is the best-of-repeats wall time of dist.Local as shipped:
	// the adaptive path, which inlines plans too small for the wire to pay
	// for itself (all bundled workloads, on a single-CPU host). Speedup is
	// the lane's paired single-process floor over it — single and Local
	// alternate inside one timing loop, so heap and scheduler drift hit
	// both sides of the ratio alike. This is the "no regression vs single"
	// guarantee of the adaptive policy.
	NsPerRun float64 `json:"ns_per_run"`
	Speedup  float64 `json:"speedup"`
	// ForcedNs is the best-of-repeats wall time with inlining disabled and
	// the plan split to cluster granularity: a coordinator plus N loopback
	// TCP workers running the full pipelined, compressed protocol. On a
	// host with fewer free cores than workers this is bounded below by the
	// single-process time (the same work plus the wire on the same
	// silicon); ForcedSpeedup records it honestly.
	ForcedNs      float64 `json:"forced_ns"`
	ForcedSpeedup float64 `json:"forced_speedup"`
	// ProjectedSpeedup is the scale-out model: single-process time divided
	// by (per-worker plan time + the greedy makespan of the measured
	// per-batch analysis times over N nodes). Batch times come from a
	// one-worker forced run, so they are contention-free; the model assumes
	// the paper's §V setting — each worker on its own node against a shared
	// filesystem, coordinator latency hidden by prefetch.
	ProjectedSpeedup float64 `json:"projected_speedup"`
	// Pipeline counters from the forced lane: batches dispatched while the
	// worker already had one outstanding, and compressed payload bytes on
	// the wire (with the raw bytes they stand for).
	BatchesPrefetched     int64 `json:"batches_prefetched"`
	FramesCompressedBytes int64 `json:"frames_compressed_bytes"`
	FramesRawBytes        int64 `json:"frames_raw_bytes"`
	// Races is the dedup'd race count; Agrees says it and the race sites
	// matched the single-process report on the adaptive and the forced
	// path, every repeat — the correctness leg of the experiment.
	Races  int  `json:"races"`
	Agrees bool `json:"agrees"`
}

// DistBenchResult is one workload's distributed-vs-single measurement,
// the schema of BENCH_6.json (documented in EXPERIMENTS.md).
type DistBenchResult struct {
	// SingleNs is the single-process analysis wall time (the best floor
	// observed across the paired lane loops, same store, same config), the
	// forced lanes' and the projection's baseline.
	SingleNs float64 `json:"single_ns"`
	// Units is how many pair units the coordinator planned; VolumeBytes is
	// the plan's trace volume, the adaptive policy's cost-model input.
	Units       int   `json:"units"`
	VolumeBytes int64 `json:"volume_bytes"`
	// Workers maps worker count ("1", "2", "4") to that lane's numbers.
	Workers map[string]DistLane `json:"workers"`
	// Err is set when the workload failed to collect or analyze; the
	// other fields are then zero.
	Err string `json:"err,omitempty"`
}

// distBenchWorkloads are the measured workloads: two racy evaluation
// kernels with enough concurrent pairs for the distribution to matter
// and a race-free one (pure comparison effort, no dedup traffic).
var distBenchWorkloads = []string{"c_md", "c_jacobi", "critical-no"}

// distWorkerCounts are the lanes measured per workload.
var distWorkerCounts = []int{1, 2, 4}

// Repeat counts, best-of each. The single-process baseline and the
// adaptive lane are microsecond-scale on the bundled workloads, where a
// handful of repeats samples the floor too coarsely — distRepeats scales
// the count so each timing loop covers at least distRepeatBudget of wall
// time. The forced lanes are millisecond-scale (the wire dominates) and
// stay at a flat count.
const (
	distBenchRepeats  = 9
	distBenchMaxReps  = 99
	distForcedRepeats = 5
	distRepeatBudget  = 150 * time.Millisecond
)

// distRepeats picks the best-of count for a lane whose single run takes
// rough: enough iterations to fill the repeat budget, clamped to
// [distBenchRepeats, distBenchMaxReps].
func distRepeats(rough time.Duration) int {
	if rough <= 0 {
		return distBenchMaxReps
	}
	n := int(distRepeatBudget / rough)
	if n < distBenchRepeats {
		return distBenchRepeats
	}
	if n > distBenchMaxReps {
		return distBenchMaxReps
	}
	return n
}

// distForcedBatches is the batch-count target of the forced lanes: the
// granularity a cluster-scale run would use, so the pipeline (prefetch,
// streamed results, resident trees) has something to pipeline even on
// plans the adaptive path would run as one batch.
const distForcedBatches = 16

// distCollect runs the named workload once under the collector and
// returns the trace store the single-process and distributed lanes share.
func distCollect(name string) (sword.Store, error) {
	wl, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	sess, err := sword.NewSession()
	if err != nil {
		return nil, err
	}
	wl.Run(&workloads.Ctx{
		RT:      sess.Runtime(),
		Space:   sess.Space(),
		Threads: 4,
		Size:    wl.DefaultSize,
	})
	if err := sess.CollectOnly(); err != nil {
		return nil, err
	}
	return sess.Store(), nil
}

// forcedRun drives one coordinator plus n loopback TCP workers with
// inlining disabled and the plan split to cluster granularity, returning
// the merged report, the per-batch timings, and the wall time (planning
// included, matching what dist.Local's wall covers).
func forcedRun(ctx context.Context, store sword.Store, n, units int, m *obs.Metrics) (*sword.Report, []dist.BatchTiming, time.Duration, error) {
	batchUnits := max(1, (units+distForcedBatches-1)/distForcedBatches)
	opts := []dist.Option{
		dist.WithObs(m),
		dist.WithInlineBelow(-1),
		dist.WithBatchUnits(batchUnits),
	}
	start := time.Now()
	coord, err := dist.NewCoordinator(store, opts...)
	if err != nil {
		return nil, nil, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, 0, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ln) }()
	for i := 0; i < n; i++ {
		wopts := append([]dist.Option{dist.WithName(fmt.Sprintf("bench-%d", i+1))}, opts...)
		go func() { _ = dist.Work(ctx, ln.Addr().String(), store, wopts...) }()
	}
	rep, err := coord.Wait()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := <-serveErr; err != nil {
		return nil, nil, 0, err
	}
	return rep, coord.Timings(), time.Since(start), nil
}

// makespan assigns the batch times to bins greedily, longest first — the
// classic LPT bound on a cluster's finishing time with a work-stealing
// coordinator — and returns the fullest bin.
func makespan(busy []int64, bins int) int64 {
	if len(busy) == 0 || bins <= 0 {
		return 0
	}
	b := append([]int64(nil), busy...)
	sort.Slice(b, func(i, j int) bool { return b[i] > b[j] })
	load := make([]int64, bins)
	for _, t := range b {
		mi := 0
		for k := range load {
			if load[k] < load[mi] {
				mi = k
			}
		}
		load[mi] += t
	}
	var worst int64
	for _, l := range load {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// distBenchOne measures one workload: single-process analysis wall time
// against the adaptive dist.Local path and the forced wire path, with the
// race sets compared on every distributed run and the scale-out
// projection derived from contention-free one-worker batch timings.
func distBenchOne(name string) DistBenchResult {
	store, err := distCollect(name)
	if err != nil {
		return DistBenchResult{Err: err.Error()}
	}
	// Warm and settle before timing, as before every lane below: the
	// collection phase just ran and the first analysis pays one-time costs
	// (page cache, PC registry) no steady-state run sees. The warmup's
	// duration sizes the repeat count for this workload's scale.
	warmStart := time.Now()
	base, _, err := sword.AnalyzeStore(store)
	if err != nil {
		return DistBenchResult{Err: err.Error()}
	}
	repeats := distRepeats(time.Since(warmStart))
	res := DistBenchResult{
		Workers: make(map[string]DistLane, len(distWorkerCounts)),
	}
	lanes := make(map[int]*DistLane, len(distWorkerCounts))
	checkFor := func(lane *DistLane) func(*sword.Report) {
		return func(rep *sword.Report) {
			lane.Races = rep.Len()
			if rep.Len() != base.Len() || !sameRaceSites(base, rep) {
				lane.Agrees = false
			}
		}
	}
	// Adaptive lanes: dist.Local exactly as shipped, measured PAIRED with
	// the single-process baseline — the two alternate inside one loop and
	// the speedup is the ratio of their floors, so heap state, page cache
	// and scheduler drift hit both sides of the ratio alike. (The three
	// lanes run identical code when the adaptive policy inlines; their
	// spread is the honest noise floor of the measurement.)
	single := time.Duration(1<<63 - 1)
	for _, n := range distWorkerCounts {
		lane := &DistLane{Agrees: true}
		lanes[n] = lane
		check := checkFor(lane)
		if rep, err := dist.Local(context.Background(), store, n); err == nil {
			check(rep)
		}
		bestSingle := time.Duration(1<<63 - 1)
		bestLocal := time.Duration(1<<63 - 1)
		for i := 0; i < repeats; i++ {
			// Settle the heap outside each timed region: on one CPU the
			// concurrent collector's mark work for the previous run's garbage
			// would otherwise bleed into whichever run happens to follow it.
			runtime.GC()
			start := time.Now()
			if _, _, err := sword.AnalyzeStore(store); err != nil {
				return DistBenchResult{Err: err.Error()}
			}
			if d := time.Since(start); d < bestSingle {
				bestSingle = d
			}
			runtime.GC()
			start = time.Now()
			rep, err := dist.Local(context.Background(), store, n)
			if err != nil {
				return DistBenchResult{Err: fmt.Sprintf("local %d workers: %v", n, err)}
			}
			if d := time.Since(start); d < bestLocal {
				bestLocal = d
			}
			check(rep)
		}
		if bestSingle < single {
			single = bestSingle
		}
		lane.NsPerRun = float64(bestLocal.Nanoseconds())
		if bestLocal > 0 {
			lane.Speedup = float64(bestSingle) / float64(bestLocal)
		}
	}
	res.SingleNs = float64(single.Nanoseconds())
	// Contention-free per-batch timings for the projection: one worker,
	// forced wire, fresh registry. Its plan duration is the projection's
	// per-node setup cost.
	calM := obs.New()
	calRep, timings, _, err := forcedRun(context.Background(), store, 1, 0, calM)
	if err != nil {
		return DistBenchResult{Err: fmt.Sprintf("calibration run: %v", err)}
	}
	res.Units = int(calRep.Stats.IntervalPairs)
	planNs := int64(calM.Snapshot().Duration("dist.worker_plan"))
	busy := make([]int64, len(timings))
	for i, t := range timings {
		busy[i] = t.BusyNs
	}
	if vol, err := dist.PlanVolume(store); err == nil {
		res.VolumeBytes = vol
	}
	// Forced lanes: the full pipelined protocol over loopback TCP.
	for _, n := range distWorkerCounts {
		lane := lanes[n]
		check := checkFor(lane)
		check(calRep)
		forcedBest := time.Duration(1<<63 - 1)
		for i := 0; i < distForcedRepeats; i++ {
			m := obs.New()
			rep, _, d, err := forcedRun(context.Background(), store, n, res.Units, m)
			if err != nil {
				return DistBenchResult{Err: fmt.Sprintf("forced %d workers: %v", n, err)}
			}
			if d < forcedBest {
				forcedBest = d
				snap := m.Snapshot()
				lane.BatchesPrefetched = snap.Value("dist.batches_prefetched")
				lane.FramesCompressedBytes = snap.Value("dist.frames_compressed_bytes")
				lane.FramesRawBytes = snap.Value("dist.frames_raw_bytes")
			}
			check(rep)
		}
		lane.ForcedNs = float64(forcedBest.Nanoseconds())
		if forcedBest > 0 {
			lane.ForcedSpeedup = float64(single) / float64(forcedBest)
		}
		if den := planNs + makespan(busy, n); den > 0 {
			lane.ProjectedSpeedup = float64(single.Nanoseconds()) / float64(den)
		}
		res.Workers[fmt.Sprint(n)] = *lane
	}
	return res
}

// DistBenches measures the distributed analysis against the
// single-process analyzer on the bundled workloads: same store, same
// race set (asserted), wall time per worker count. Workload name →
// result.
//
// Three numbers per lane tell the whole story. Speedup is the adaptive
// dist.Local: on plans (or hosts) where loopback workers cannot win it
// analyzes inline, so it tracks the single-process time. ForcedSpeedup
// runs the real pipelined protocol anyway — on a single-CPU container
// that is the same work plus the wire, honestly below 1. And
// ProjectedSpeedup is the measured-batch-times scale-out model for the
// paper's §V setting (one worker per node, shared filesystem), which is
// what the pipeline, compression, and resident trees actually buy.
func DistBenches() map[string]DistBenchResult {
	out := make(map[string]DistBenchResult, len(distBenchWorkloads))
	for _, name := range distBenchWorkloads {
		out[name] = distBenchOne(name)
	}
	return out
}

// WriteDistBench runs DistBenches and writes the results to path as
// indented JSON (keys sorted), the BENCH_6.json artifact format.
func WriteDistBench(path string) error {
	data, err := json.MarshalIndent(DistBenches(), "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshal dist bench results: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
