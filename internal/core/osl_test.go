package core

import (
	"context"
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
)

// buildFromProgram runs a program under the collector and recovers its
// structure for label-level inspection.
func buildFromProgram(t *testing.T, program func(rtm *omp.Runtime, space *memsim.Space)) *structure {
	t.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	program(rtm, memsim.NewSpace(nil))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := buildStructure(store, false)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize interval trees so pairing (which skips empty units) sees
	// the accesses.
	a := &Analyzer{store: store}
	if err := a.buildTrees(context.Background(), s, 1, nil, nil, false); err != nil {
		t.Fatal(err)
	}
	return s
}

// lineageConcurrent reimplements the analyzer's pairing decision for two
// intervals (the rule enumeratePairs applies in bulk), for comparison with
// the OSL judgment.
func lineageConcurrent(s *structure, a, b *interval) bool {
	// Pre-filtering is off: this helper asks about structural concurrency,
	// not whether the accesses could race.
	pairs, _, _ := enumeratePairs(s, nil, true, false, false)
	for _, p := range pairs {
		x, y := p[0].iv, p[1].iv
		if (x == a && y == b) || (x == b && y == a) {
			return true
		}
	}
	return false
}

// TestOSLLabelsMatchTableI: reconstructed labels carry the offsets the
// runtime's own labels had (Offset = tid + bid·span).
func TestOSLLabelsMatchTableI(t *testing.T) {
	pc := pcreg.Site("osl-test:site")
	s := buildFromProgram(t, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(8)
		rtm.Parallel(3, func(th *omp.Thread) {
			th.StoreF64(x, th.ID(), 1, pc)
			th.Barrier()
			th.StoreF64(x, th.ID()+3, 1, pc)
		})
	})
	for key, iv := range s.intervals {
		label := intervalLabel(iv)
		if got := label.ThreadID(); got != key.TID {
			t.Errorf("interval %+v: label tid %d", key, got)
		}
		if got := label.Epoch(); got != key.BID {
			t.Errorf("interval %+v: label epoch %d, want bid %d", key, got, key.BID)
		}
		if label.Depth() != 2 {
			t.Errorf("interval %+v: depth %d", key, label.Depth())
		}
	}
}

// TestOSLAgreesOnNestedForkJoin: within one top-level region whose nested
// regions all hang off barrier interval 0 (the structure of Figure 2,
// where OSL is sound), the OSL judgment and the analyzer's lineage
// judgment coincide on every interval pair. Cross-bid hang-offs (the
// blind spot) and sequentially composed top-level regions (which labels
// reconstructed without join advances cannot order) are pinned by
// TestOSLBlindSpot instead.
func TestOSLAgreesOnNestedForkJoin(t *testing.T) {
	pc := pcreg.Site("osl-test:agree")
	s := buildFromProgram(t, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(64)
		rtm.Parallel(3, func(outer *omp.Thread) {
			outer.StoreF64(x, outer.ID(), 1, pc)
			if outer.ID() != 2 {
				outer.Parallel(2, func(in *omp.Thread) {
					in.StoreF64(x, 8+outer.ID()*2+in.ID(), 1, pc)
				})
			}
			outer.StoreF64(x, 16+outer.ID(), 1, pc)
		})
	})
	ivs := make([]*interval, 0, len(s.intervals))
	for _, iv := range s.intervals {
		if len(iv.units) > 0 {
			ivs = append(ivs, iv)
		}
	}
	checked := 0
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			lin := lineageConcurrent(s, a, b)
			oslV := oslConcurrent(a, b)
			if lin != oslV {
				t.Errorf("divergence on %+v vs %+v: lineage=%v osl=%v",
					a.key, b.key, lin, oslV)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d pairs compared", checked)
	}
}

// TestOSLBlindSpot demonstrates the documented divergence: a nested region
// forked in barrier interval 0 versus another thread's interval *after*
// the barrier. The barrier orders them (the inner region joins before its
// encountering thread reaches the barrier), which the lineage judgment
// captures; pure offset-span labels compare incongruent offsets and call
// them concurrent — a false positive the paper's meta-data pairing must
// avoid, as ours does.
func TestOSLBlindSpot(t *testing.T) {
	pc := pcreg.Site("osl-test:blindspot")
	s := buildFromProgram(t, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(8)
		rtm.Parallel(2, func(outer *omp.Thread) {
			if outer.ID() == 1 {
				outer.Parallel(2, func(in *omp.Thread) {
					in.StoreF64(x, in.ID(), 1, pc) // nested, in bid 0
				})
			}
			outer.Barrier()
			outer.StoreF64(x, 4+outer.ID(), 1, pc) // bid 1
		})
	})
	var nested, postBarrier *interval
	for _, iv := range s.intervals {
		if iv.region.level == 2 && iv.key.TID == 0 {
			nested = iv
		}
		if iv.region.level == 1 && iv.key.BID == 1 && iv.key.TID == 0 {
			postBarrier = iv
		}
	}
	if nested == nil || postBarrier == nil {
		t.Fatal("intervals not found")
	}
	if lineageConcurrent(s, nested, postBarrier) {
		t.Fatal("lineage judgment must order the nested region before the post-barrier interval")
	}
	if !oslConcurrent(nested, postBarrier) {
		t.Fatal("expected the documented OSL blind spot (labels incongruent across the barrier)")
	}
}
