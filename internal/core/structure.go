package core

import (
	"fmt"
	"sort"
	"sync"

	"sword/internal/itree"
	"sword/internal/trace"
)

// region is one parallel region or task instance recovered from meta-data.
type region struct {
	id     uint64
	ppid   uint64
	span   uint64
	level  uint32
	parent *region
	top    *region // outermost ancestor region

	// Tasking extension: async marks an OpenMP task; forkCut and waitCut
	// delimit its concurrency window within the parent interval, in the
	// parent's fragment-cut coordinates. Sync regions have a point window
	// at forkCut (the parent is suspended across them). waitCut is
	// ^uint64(0) for tasks never taskwait-ed (they complete at the
	// barrier, which interval bids already order).
	async   bool
	forkCut uint64
	waitCut uint64

	// frames are the fork coordinates of this region's chain within each
	// ancestor, outermost first. frames[0] positions the chain's top-level
	// region within the initial thread (tid 0, bid 0, seq = region id,
	// since the initial thread forks top-level regions in program order);
	// frames[i] positions the chain within ancestor i.
	frames []frame

	// quarantined marks a region whose concurrency structure could not be
	// recovered from a damaged trace (a lost parent, an unresolvable
	// chain): salvage-mode analysis excludes its intervals rather than
	// guessing at concurrency.
	quarantined bool
}

// frame is a fork coordinate: where, inside an enclosing region, the next
// region of a lineage chain (or an interval) sits — extended with the
// tasking window.
type frame struct {
	tid, bid, seq    uint64
	async            bool
	forkCut, waitCut uint64
}

// windowsOverlap decides whether two sibling subtrees hanging off the same
// interval can run concurrently: sync regions occupy the single boundary
// point at which the spawner suspended; tasks occupy [forkCut, waitCut).
func windowsOverlap(x, y frame) bool {
	if !x.async && !y.async {
		return false // sync siblings: serialized by the spawner
	}
	if x.async && y.async {
		return x.forkCut < y.waitCut && y.forkCut < x.waitCut
	}
	if !x.async {
		x, y = y, x // x async, y the sync point
	}
	return x.forkCut <= y.forkCut && y.forkCut < x.waitCut
}

// interval is one thread's execution between two consecutive barriers of
// one region instance: the unit of concurrency analysis. Intervals that
// spawn tasks carry one tree unit per fragment, so accesses can be ordered
// against the spawn/wait boundaries; other intervals use a single unit.
type interval struct {
	key        trace.IntervalKey
	region     *region
	slot       int
	frags      []fragment
	taskParent bool
	units      []*treeUnit

	// cert is the static loop certificate covering this interval, if any,
	// and certRow the interval's thread row within it (cert.go).
	cert    *certInfo
	certRow int

	// quarantined excludes the interval from salvage-mode analysis: its
	// log data intersects a lost range, extends past a truncated log, or
	// its region's structure is unrecoverable. The flag persists across
	// SubtreeBatch batches.
	quarantined bool
}

// treeUnit is a comparable chunk of an interval's accesses.
//
// Two construction paths fill it. The default is the arena run builder:
// accesses append into build's contiguous slab and finalize sorts it once
// into the Low-ordered run flat, together with the unit summary sum that
// the pair pre-filter consumes. Under Config.ProbeEngine the legacy
// red-black interval tree is built instead (probe is true, the builder
// stays empty) — the probing comparison engine needs the overlap index,
// and the tree path remains the differential reference for the builder.
type treeUnit struct {
	iv    *interval
	cut   uint64 // fragment cut; 0 for whole-interval units
	probe bool   // legacy tree path (Config.ProbeEngine)
	tree  itree.Tree
	build itree.Builder

	// sum is the unit-level aggregate the pair pre-filter tests; valid
	// only after finalize on the builder path (hasSum).
	sum    itree.Summary
	hasSum bool

	// flat caches the unit's runs in ascending Low order, reused by
	// every sweep comparison the unit joins. The builder path fills it in
	// finalize (before any comparison runs); the probe path flattens the
	// tree lazily under flatOnce because units are shared between
	// concurrently compared pairs. Freed when the batch drops the unit.
	flatOnce sync.Once
	flat     []itree.Run
}

// insert routes one access into the unit's active construction path.
func (u *treeUnit) insert(a itree.Access) {
	if u.probe {
		u.tree.Insert(a)
		return
	}
	u.build.Insert(a)
}

// finalize completes the unit after its slot's log streamed: the builder
// path sorts the slab into the flattened run and computes the pre-filter
// summary; the probe path compacts the tree (its flatten stays lazy).
// Returns the builder slab bytes for the core.run_builder_bytes counter
// (zero on the probe path).
func (u *treeUnit) finalize(compact bool) uint64 {
	if u.probe {
		if compact {
			u.tree.Compact()
		}
		return 0
	}
	u.flat, u.sum = u.build.Finish(compact)
	u.hasSum = true
	return u.sum.Bytes
}

// nodeCount returns the unit's summarized node count (the paper's M).
func (u *treeUnit) nodeCount() int {
	if u.probe {
		return u.tree.Len()
	}
	return u.build.Len()
}

// accesses returns the number of accesses inserted (the paper's N).
func (u *treeUnit) accesses() uint64 {
	if u.probe {
		return u.tree.Accesses()
	}
	return u.build.Accesses()
}

// run returns the unit's flattened, Low-sorted interval run.
func (u *treeUnit) run() []itree.Run {
	if !u.probe {
		return u.flat // set by finalize before comparison starts
	}
	u.flatOnce.Do(func() { u.flat = u.tree.Runs() })
	return u.flat
}

// fragment is one contiguous byte range of the interval in its slot's log.
type fragment struct {
	begin, size uint64
	held        trace.MutexSet
	cut         uint64
	unit        *treeUnit // assigned by materializeUnits
}

// materializeUnits creates the interval's tree units: per fragment when
// the interval spawns tasks, a single unit otherwise. probe selects the
// legacy red-black tree construction path (Config.ProbeEngine).
func (iv *interval) materializeUnits(probe bool) {
	if iv.units != nil {
		return
	}
	if !iv.taskParent {
		u := &treeUnit{iv: iv, probe: probe}
		iv.units = []*treeUnit{u}
		for i := range iv.frags {
			iv.frags[i].unit = u
		}
		return
	}
	for i := range iv.frags {
		u := &treeUnit{iv: iv, cut: iv.frags[i].cut, probe: probe}
		iv.units = append(iv.units, u)
		iv.frags[i].unit = u
	}
}

// resetTree frees the unit's tree and flattened run between distributed
// batches while keeping the unit object itself — and with it the UnitID
// index pointing at it — stable, unlike resetUnits which drops the units.
func (u *treeUnit) resetTree() {
	u.tree = itree.Tree{}
	u.build.Reset()
	u.sum = itree.Summary{}
	u.hasSum = false
	u.flatOnce = sync.Once{}
	u.flat = nil
}

// resetUnits frees the interval's trees (streaming batches).
func (iv *interval) resetUnits() {
	iv.units = nil
	for i := range iv.frags {
		iv.frags[i].unit = nil
	}
}

// structure is the recovered concurrency structure of a run.
type structure struct {
	regions   map[uint64]*region
	intervals map[trace.IntervalKey]*interval
	bySlot    map[int][]*interval // used to route log events to trees
	topGroups map[uint64][]*region
	certs     []*certInfo // static loop certificates (cert.go)

	// Salvage-mode bookkeeping (empty after a strict build).
	notes             []string     // human-readable damage annotations
	truncatedMeta     map[int]bool // slots whose meta stream ended torn
	metaSalvagedBytes uint64       // encoded bytes of intact meta records
}

func (s *structure) note(format string, args ...any) {
	s.notes = append(s.notes, fmt.Sprintf(format, args...))
}

// slotRecords is one slot's decoded meta stream: the input unit assemble
// consumes. buildStructure fills it from the store's meta files; the
// streaming analyzer fills it from its tailing readers.
type slotRecords struct {
	slot  int
	metas []trace.Meta
	certs []trace.LoopCert
}

// newStructure returns an empty structure ready for assemble.
func newStructure(salvage bool) *structure {
	s := &structure{
		regions:   make(map[uint64]*region),
		intervals: make(map[trace.IntervalKey]*interval),
		bySlot:    make(map[int][]*interval),
		topGroups: make(map[uint64][]*region),
	}
	if salvage {
		s.truncatedMeta = make(map[int]bool)
	}
	return s
}

// buildStructure loads every slot's meta-data file plus the taskwaits
// table and reconstructs regions and intervals. In salvage mode damage is
// tolerated: torn meta streams contribute their intact prefix, and regions
// whose structure cannot be recovered (a parent lost with a damaged slot)
// are quarantined together with their intervals instead of failing the
// analysis.
func buildStructure(store trace.Store, salvage bool) (*structure, error) {
	slots, err := store.Slots()
	if err != nil {
		return nil, fmt.Errorf("core: list slots: %w", err)
	}
	taskWaits := map[uint64]uint64{}
	if aux, err := store.OpenAux("taskwaits"); err == nil {
		var twErr error
		taskWaits, twErr = trace.ReadTaskWaits(aux)
		if twErr != nil {
			if !salvage {
				return nil, twErr
			}
			// Without taskwait cuts, task windows stay conservatively open
			// ([forkCut, ∞)), which can only widen concurrency, not miss it.
			taskWaits = map[uint64]uint64{}
		}
	}
	s := newStructure(salvage)
	var inputs []slotRecords
	for _, slot := range slots {
		src, err := store.OpenMeta(slot)
		if err != nil {
			if salvage {
				s.note("slot %d: meta file unreadable: %v", slot, err)
				s.truncatedMeta[slot] = true
				continue
			}
			return nil, fmt.Errorf("core: open meta %d: %w", slot, err)
		}
		var metas []trace.Meta
		var slotCerts []trace.LoopCert
		if salvage {
			var srep *trace.SalvageReport
			metas, slotCerts, srep, err = trace.ReadAllMetaCertsTolerant(src)
			if err != nil {
				s.note("slot %d: meta file unreadable: %v", slot, err)
				s.truncatedMeta[slot] = true
				continue
			}
			s.metaSalvagedBytes += srep.SalvagedBytes
			if !srep.Clean() {
				s.truncatedMeta[slot] = true
				s.note("slot %d: meta stream damaged after %d record(s): %s", slot, srep.IntactRecords, srep)
			}
		} else {
			metas, slotCerts, err = trace.ReadAllMetaCerts(src)
			if err != nil {
				return nil, fmt.Errorf("core: read meta %d: %w", slot, err)
			}
		}
		inputs = append(inputs, slotRecords{slot: slot, metas: metas, certs: slotCerts})
	}
	if err := s.assemble(inputs, taskWaits, salvage); err != nil {
		return nil, err
	}
	return s, nil
}

// assemble reconstructs regions and intervals from decoded meta records:
// region creation and linking, frame-chain resolution, task-parent
// marking, certificate attachment, and the deterministic sort passes. It
// is the store-free half of buildStructure, shared with the streaming
// analyzer, which rebuilds the structure from its accumulated tail records
// on every analysis round.
func (s *structure) assemble(inputs []slotRecords, taskWaits map[uint64]uint64, salvage bool) error {
	var allCerts []trace.LoopCert
	for _, in := range inputs {
		slot := in.slot
		allCerts = append(allCerts, in.certs...)
		for i := range in.metas {
			m := &in.metas[i]
			r, ok := s.regions[m.PID]
			if !ok {
				r = &region{id: m.PID, ppid: m.PPID, span: m.Span, level: m.Level,
					async: m.Async, forkCut: m.ParentCut, waitCut: ^uint64(0)}
				if wc, waited := taskWaits[m.PID]; waited {
					r.waitCut = wc
				}
				s.regions[m.PID] = r
			}
			key := m.Key()
			iv, ok := s.intervals[key]
			if !ok {
				iv = &interval{key: key, region: r, slot: slot}
				s.intervals[key] = iv
				s.bySlot[slot] = append(s.bySlot[slot], iv)
			}
			if iv.slot != slot {
				if salvage {
					s.note("slot %d: meta record for interval %+v conflicts with slot %d; record dropped", slot, key, iv.slot)
					continue
				}
				return fmt.Errorf("core: interval %+v spans slots %d and %d", key, iv.slot, slot)
			}
			iv.frags = append(iv.frags, fragment{begin: m.DataBegin, size: m.DataSize, held: m.Held, cut: m.Cut})
			// Fork coordinates are identical on every fragment of a region;
			// stash them on first sight via a provisional one-frame tail.
			if r.frames == nil {
				r.frames = []frame{{tid: m.ParentTID, bid: m.ParentBID, seq: m.Seq,
					async: m.Async, forkCut: r.forkCut, waitCut: r.waitCut}}
			}
		}
	}
	// Link parents and compose full frame chains.
	for _, r := range s.regions {
		if r.ppid != trace.NoParent {
			p, ok := s.regions[r.ppid]
			if !ok {
				if salvage {
					// The parent's meta records were lost with a damaged
					// slot: this region's position in the concurrency
					// structure is unknowable, so its subtree is excluded.
					r.quarantined = true
					s.note("region %d references parent %d, lost with a damaged slot; subtree quarantined", r.id, r.ppid)
					continue
				}
				return fmt.Errorf("core: region %d references unknown parent %d", r.id, r.ppid)
			}
			r.parent = p
		}
	}
	if salvage {
		// Quarantine is hereditary: a region below a quarantined ancestor
		// has no recoverable position either.
		for _, r := range s.regions {
			for p := r.parent; p != nil; p = p.parent {
				if p.quarantined {
					r.quarantined = true
					break
				}
			}
		}
	}
	for _, r := range s.regions {
		if r.quarantined {
			r.top = r // self-reference keeps lookups total; not a topGroup
			continue
		}
		if _, err := s.resolveFrames(r, 0); err != nil {
			if salvage {
				r.quarantined = true
				r.top = r
				s.note("region %d: %v; quarantined", r.id, err)
				continue
			}
			return err
		}
		top := r
		for top.parent != nil {
			top = top.parent
		}
		r.top = top
		s.topGroups[top.id] = append(s.topGroups[top.id], r)
	}
	// Mark intervals that spawn tasks: their trees must be per-fragment so
	// accesses order against the spawn and wait cuts.
	for _, r := range s.regions {
		if !r.async || r.parent == nil || r.quarantined {
			continue
		}
		f := r.frames[len(r.frames)-1]
		key := trace.IntervalKey{PID: r.ppid, TID: f.tid, BID: f.bid}
		if iv, ok := s.intervals[key]; ok {
			iv.taskParent = true
		}
	}
	if salvage {
		for _, iv := range s.intervals {
			if iv.region.quarantined {
				iv.quarantined = true
			}
		}
	}
	// Certificates resolve last: trust depends on final quarantine flags
	// and the fully linked region forest.
	if err := s.attachCerts(allCerts, salvage); err != nil {
		return err
	}
	// Deterministic fragment order within each interval and interval order
	// within each slot (analysis routing relies on position order).
	for _, iv := range s.intervals {
		sort.Slice(iv.frags, func(i, j int) bool { return iv.frags[i].begin < iv.frags[j].begin })
	}
	for slot := range s.bySlot {
		ivs := s.bySlot[slot]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].frags[0].begin < ivs[j].frags[0].begin })
	}
	for _, rs := range s.topGroups {
		sort.Slice(rs, func(i, j int) bool { return rs[i].id < rs[j].id })
	}
	return nil
}

// resolveFrames expands a region's provisional single-frame tail into the
// full chain from the virtual root, memoized on the region.
func (s *structure) resolveFrames(r *region, depth int) ([]frame, error) {
	if depth > len(s.regions) {
		return nil, fmt.Errorf("core: region parent cycle at %d", r.id)
	}
	if r.frames == nil {
		// A region can appear as a parent without own fragments (all its
		// accesses empty): synthesize neutral coordinates.
		r.frames = []frame{{}}
	}
	if len(r.frames) > 1 || r.parent == nil {
		if r.parent == nil && len(r.frames) == 1 {
			// Top-level: the initial thread forks regions in program
			// order, so the region id orders siblings.
			r.frames[0] = frame{tid: 0, bid: 0, seq: r.id}
		}
		return r.frames, nil
	}
	parentFrames, err := s.resolveFrames(r.parent, depth+1)
	if err != nil {
		return nil, err
	}
	own := r.frames[0]
	r.frames = append(append([]frame(nil), parentFrames...), own)
	return r.frames, nil
}
