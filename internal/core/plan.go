package core

import (
	"context"
	"fmt"
	"sort"

	"sword/internal/report"
	"sword/internal/trace"
)

// This file is the distributed-analysis surface of the core package: a
// process-independent naming of the comparable work (UnitID, PairUnit) and
// a BatchAnalyzer that executes arbitrary subsets of that work against a
// shared trace store. The coordinator in internal/dist plans work units
// from the meta files alone — no log is streamed and no tree is built on
// the coordinator — and workers resolve the same UnitIDs against their own
// identically-recovered structure, build only the trees a batch touches,
// and compare exactly the pairs they were handed.

// UnitID names one comparable tree unit across process boundaries. Key is
// the owning interval; Unit indexes the interval's deterministic unit list
// (one unit per fragment for task-spawning intervals, a single unit 0
// otherwise). Fragments are sorted by log offset during structure
// recovery, so every process that read the same meta files resolves a
// UnitID to the same chunk of the same interval.
type UnitID struct {
	Key  trace.IntervalKey
	Unit int
}

// PairUnit is one unit of distributable comparison work: two concurrent
// tree units plus a cost estimate the coordinator schedules by. Cost is
// the product of the units' fragment byte sizes — computable from meta
// data alone, a stand-in for the run-length product the in-process
// scheduler uses once trees exist.
type PairUnit struct {
	A, B UnitID
	Cost uint64
}

// BatchAnalyzer executes distributed analysis batches over one trace
// store. Construction recovers the region structure and enumerates the
// full work plan without touching the logs; AnalyzeUnits then builds only
// the interval trees a batch references (block-skipping past everything
// else), compares the batch's pairs with the persistent sweep engine —
// solver memo and race-site suppression stay warm across batches — and
// frees the trees again. The same type serves both sides of the wire: the
// coordinator plans with Units and never analyzes, workers analyze what
// they are handed.
type BatchAnalyzer struct {
	a     *Analyzer
	s     *structure
	eng   *compareEngine
	units map[UnitID]*treeUnit
	plan  []PairUnit
}

// NewBatchAnalyzer recovers the structure and plans the full unit-pair
// work list. Salvage mode is rejected: quarantine decisions depend on a
// full stream over every log, which is exactly what distribution avoids —
// damaged traces are a single-process `swordoffline -salvage` job.
func NewBatchAnalyzer(store trace.Store, cfg Config) (*BatchAnalyzer, error) {
	if cfg.Salvage {
		return nil, fmt.Errorf("core: batch analysis does not support salvage mode; analyze damaged traces in one process")
	}
	a := New(store, cfg)
	pcs, _, err := a.loadPCs()
	if err != nil {
		return nil, err
	}
	s, err := buildStructure(store, false)
	if err != nil {
		return nil, err
	}
	b := &BatchAnalyzer{
		a:     a,
		s:     s,
		eng:   newCompareEngine(cfg, pcs, nil),
		units: make(map[UnitID]*treeUnit, len(s.intervals)),
	}
	for _, iv := range s.intervals {
		iv.materializeUnits()
		for i, u := range iv.units {
			b.units[UnitID{Key: iv.key, Unit: i}] = u
		}
	}
	// Empty trees cannot be skipped here — they do not exist yet — so the
	// plan may carry units whose trees turn out to hold no accesses; those
	// pairs compare in O(1).
	pairs := enumeratePairs(s, nil, false)
	b.plan = make([]PairUnit, len(pairs))
	for i, p := range pairs {
		b.plan[i] = PairUnit{
			A:    b.idOf(p[0]),
			B:    b.idOf(p[1]),
			Cost: satMul(unitBytes(p[0]), unitBytes(p[1])),
		}
	}
	// Descending cost with the canonical enumeration order as the stable
	// tie-break: the same deterministic schedule the in-process analyzer
	// uses, just with byte sizes standing in for run lengths.
	sort.SliceStable(b.plan, func(i, j int) bool { return b.plan[i].Cost > b.plan[j].Cost })
	return b, nil
}

// idOf inverts the unit index: the unit's position in its interval's list.
func (b *BatchAnalyzer) idOf(u *treeUnit) UnitID {
	for i, v := range u.iv.units {
		if v == u {
			return UnitID{Key: u.iv.key, Unit: i}
		}
	}
	panic("core: tree unit not in its interval's unit list")
}

// unitBytes is the unit's trace volume: its own fragment for per-fragment
// units, the whole interval otherwise.
func unitBytes(u *treeUnit) uint64 {
	var total uint64
	for _, f := range u.iv.frags {
		if f.unit == u {
			total += f.size
		}
	}
	return total
}

// satMul multiplies with saturation so pathological log sizes cannot wrap
// the cost ordering.
func satMul(a, b uint64) uint64 {
	if a != 0 && b > ^uint64(0)/a {
		return ^uint64(0)
	}
	return a * b
}

// Units returns the full work plan in schedule order (descending cost).
// The slice is the caller's to partition into batches.
func (b *BatchAnalyzer) Units() []PairUnit {
	out := make([]PairUnit, len(b.plan))
	copy(out, b.plan)
	return out
}

// StructureStats returns the run-level structure counts the coordinator
// folds into the merged report — fields no worker can report without
// double counting, since a batch only sees its own slice of the run.
func (b *BatchAnalyzer) StructureStats() report.Stats {
	return report.Stats{Intervals: len(b.s.intervals), Regions: len(b.s.regions)}
}

// AnalyzeUnits compares one batch of pair units and returns a report
// holding the races found plus this batch's effort deltas in its Stats
// (node comparisons, solver calls, memo hits/misses, suppressed sites,
// interval pairs). Trees for the referenced intervals are built before and
// freed after; a done ctx aborts the batch with ctx.Err().
func (b *BatchAnalyzer) AnalyzeUnits(ctx context.Context, units []PairUnit) (*report.Report, error) {
	workers := EffectiveWorkers(b.a.cfg.Workers)
	pairs := make([][2]*treeUnit, 0, len(units))
	only := make(map[*interval]bool)
	for _, pu := range units {
		ua, ok := b.units[pu.A]
		if !ok {
			return nil, fmt.Errorf("core: unknown work unit %+v", pu.A)
		}
		ub, ok := b.units[pu.B]
		if !ok {
			return nil, fmt.Errorf("core: unknown work unit %+v", pu.B)
		}
		pairs = append(pairs, [2]*treeUnit{ua, ub})
		only[ua.iv] = true
		only[ub.iv] = true
	}
	if err := b.a.buildTrees(ctx, b.s, workers, nil, only, false); err != nil {
		return nil, err
	}
	defer func() {
		for iv := range only {
			for _, u := range iv.units {
				u.resetTree()
			}
		}
	}()
	rep := report.New()
	b.eng.setReport(rep)
	before := b.eng.snapshot()
	schedulePairs(pairs) // real run-length costs now that trees exist
	if err := comparePairs(ctx, b.eng, workers, pairs); err != nil {
		return nil, err
	}
	after := b.eng.snapshot()
	rep.Stats.IntervalPairs = len(pairs)
	rep.Stats.NodeComparisons = after.comparisons - before.comparisons
	rep.Stats.SolverCalls = after.solverCalls - before.solverCalls
	rep.Stats.SolverCacheHits = after.cacheHits - before.cacheHits
	rep.Stats.SolverCacheMisses = after.cacheMisses - before.cacheMisses
	rep.Stats.SitesSuppressed = after.suppressed - before.suppressed
	return rep, nil
}
