package core

import (
	"container/list"
	"context"
	"fmt"
	"sort"

	"sword/internal/report"
	"sword/internal/trace"
)

// This file is the distributed-analysis surface of the core package: a
// process-independent naming of the comparable work (UnitID, PairUnit) and
// a BatchAnalyzer that executes arbitrary subsets of that work against a
// shared trace store. The coordinator in internal/dist plans work units
// from the meta files alone — no log is streamed and no tree is built on
// the coordinator — and workers resolve the same UnitIDs against their own
// identically-recovered structure, build only the trees a batch touches,
// and compare exactly the pairs they were handed.

// UnitID names one comparable tree unit across process boundaries. Key is
// the owning interval; Unit indexes the interval's deterministic unit list
// (one unit per fragment for task-spawning intervals, a single unit 0
// otherwise). Fragments are sorted by log offset during structure
// recovery, so every process that read the same meta files resolves a
// UnitID to the same chunk of the same interval.
type UnitID struct {
	Key  trace.IntervalKey
	Unit int
}

// PairUnit is one unit of distributable comparison work: two concurrent
// tree units plus a cost estimate the coordinator schedules by. Cost is
// the product of the units' fragment byte sizes — computable from meta
// data alone, a stand-in for the run-length product the in-process
// scheduler uses once trees exist.
type PairUnit struct {
	A, B UnitID
	Cost uint64
}

// residentDefault is the resident-tree byte budget when the caller leaves
// Config.ResidentBudget at zero: enough to keep every bundled workload's
// whole trace resident while still bounding a production worker.
const residentDefault = 256 << 20

// residentEntry is one interval whose trees (and flattened runs) are kept
// alive across batches, charged at its trace volume.
type residentEntry struct {
	iv    *interval
	bytes int64
}

// BatchAnalyzer executes distributed analysis batches over one trace
// store. Construction recovers the region structure and enumerates the
// full work plan without touching the logs; AnalyzeUnits then builds only
// the interval trees a batch references (block-skipping past everything
// else) and compares the batch's pairs with the persistent sweep engine —
// solver memo and race-site suppression stay warm across batches.
//
// Built trees are not necessarily freed per batch: a bounded LRU keyed by
// interval keeps up to Config.ResidentBudget bytes of trace resident, so
// consecutive batches that touch the same intervals (the plan is ordered
// for exactly that affinity) reuse the trees and their flattened sweep
// runs instead of re-streaming the logs. The budget preserves SWORD's
// bounded-memory story: eviction frees the least recently used interval's
// trees, and a negative budget restores the free-every-batch behavior.
//
// The same type serves both sides of the wire: the coordinator plans with
// Units and never analyzes, workers analyze what they are handed.
type BatchAnalyzer struct {
	a     *Analyzer
	s     *structure
	eng   *compareEngine
	units map[UnitID]*treeUnit
	plan  []PairUnit
	vol   int64

	// prefiltered counts pairs the planner dropped because a unit owns
	// zero trace bytes — the coordinator-side slice of the pair
	// pre-filter, reported once via StructureStats.
	prefiltered uint64

	// retired counts pairs the planner dropped because both units are
	// covered by the same trusted CLEAN loop certificate (cert.go).
	retired uint64

	// Resident-tree LRU: resident maps an interval to its element in lru
	// (front = most recent); budget 0 disables residency entirely.
	budget        int64
	resident      map[*interval]*list.Element
	lru           *list.List
	residentBytes int64
	residentUnits int64
}

// NewBatchAnalyzer recovers the structure and plans the full unit-pair
// work list. Salvage mode is rejected: quarantine decisions depend on a
// full stream over every log, which is exactly what distribution avoids —
// damaged traces are a single-process `swordoffline -salvage` job.
func NewBatchAnalyzer(store trace.Store, cfg Config) (*BatchAnalyzer, error) {
	if cfg.Salvage {
		return nil, fmt.Errorf("core: batch analysis does not support salvage mode; analyze damaged traces in one process")
	}
	a := New(store, cfg)
	pcs, _, err := a.loadPCs()
	if err != nil {
		return nil, err
	}
	s, err := buildStructure(store, false)
	if err != nil {
		return nil, err
	}
	budget := cfg.ResidentBudget
	if budget == 0 && cfg.MemoryBudget > 0 {
		budget = cfg.MemoryBudget // the per-job memory knob bounds residency too
	}
	if budget == 0 {
		budget = residentDefault
	} else if budget < 0 {
		budget = 0
	}
	b := &BatchAnalyzer{
		a:        a,
		s:        s,
		eng:      newCompareEngine(cfg, pcs, nil),
		units:    make(map[UnitID]*treeUnit, len(s.intervals)),
		budget:   budget,
		resident: make(map[*interval]*list.Element),
		lru:      list.New(),
	}
	for _, iv := range s.intervals {
		iv.materializeUnits(cfg.ProbeEngine)
		for i, u := range iv.units {
			b.units[UnitID{Key: iv.key, Unit: i}] = u
		}
		b.vol += intervalBytes(iv)
	}
	// Runs do not exist yet, so content-level pruning is impossible here —
	// but the meta files already expose each unit's trace volume, and a
	// unit owning zero log bytes can hold no accesses. Dropping its pairs
	// at the planner is the coordinator-side slice of the pair pre-filter
	// (counted in StructureStats so the merged report carries it); the
	// remaining empty-tree pairs still ship and compare in O(1).
	pairs, _, retired := enumeratePairs(s, nil, false, false, true)
	b.retired = retired
	b.plan = make([]PairUnit, 0, len(pairs))
	groups := make([]uint64, 0, len(pairs))
	groupCost := make(map[uint64]uint64)
	for _, p := range pairs {
		if !cfg.NoPrefilter && (unitBytes(p[0]) == 0 || unitBytes(p[1]) == 0) {
			b.prefiltered++
			continue
		}
		b.plan = append(b.plan, PairUnit{
			A:    b.idOf(p[0]),
			B:    b.idOf(p[1]),
			Cost: satMul(unitBytes(p[0]), unitBytes(p[1])),
		})
		// Pairs never cross top-level subtrees, so the A side names the
		// pair's barrier group.
		g := p[0].iv.region.top.id
		groups = append(groups, g)
		groupCost[g] = satAdd(groupCost[g], b.plan[len(b.plan)-1].Cost)
	}
	cfg.Obs.Counter("core.pairs_prefiltered").Add(b.prefiltered)
	cfg.Obs.Counter("core.pairs_retired_static").Add(b.retired)
	// Group-affinity schedule: pairs cluster by top-level barrier group so
	// consecutive batches touch the same intervals — that is what makes a
	// worker's resident trees and block skipping pay off. Groups run in
	// descending total cost (heaviest work spreads first), pairs within a
	// group in descending cost, with the canonical enumeration order as the
	// stable tie-break — the same deterministic schedule the in-process
	// analyzer uses, just with byte sizes standing in for run lengths.
	idx := make([]int, len(b.plan))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		i, j := idx[x], idx[y]
		if groups[i] != groups[j] {
			if groupCost[groups[i]] != groupCost[groups[j]] {
				return groupCost[groups[i]] > groupCost[groups[j]]
			}
			return groups[i] < groups[j]
		}
		return b.plan[i].Cost > b.plan[j].Cost
	})
	ordered := make([]PairUnit, len(b.plan))
	for x, i := range idx {
		ordered[x] = b.plan[i]
	}
	b.plan = ordered
	return b, nil
}

// idOf inverts the unit index: the unit's position in its interval's list.
func (b *BatchAnalyzer) idOf(u *treeUnit) UnitID {
	for i, v := range u.iv.units {
		if v == u {
			return UnitID{Key: u.iv.key, Unit: i}
		}
	}
	panic("core: tree unit not in its interval's unit list")
}

// unitBytes is the unit's trace volume: its own fragment for per-fragment
// units, the whole interval otherwise.
func unitBytes(u *treeUnit) uint64 {
	var total uint64
	for _, f := range u.iv.frags {
		if f.unit == u {
			total += f.size
		}
	}
	return total
}

// intervalBytes is the interval's total trace volume — the residency
// charge for keeping its trees alive across batches.
func intervalBytes(iv *interval) int64 {
	var total int64
	for _, f := range iv.frags {
		total += int64(f.size)
	}
	return total
}

// satMul multiplies with saturation so pathological log sizes cannot wrap
// the cost ordering.
func satMul(a, b uint64) uint64 {
	if a != 0 && b > ^uint64(0)/a {
		return ^uint64(0)
	}
	return a * b
}

// satAdd adds with saturation, for the group cost totals.
func satAdd(a, b uint64) uint64 {
	if a > ^uint64(0)-b {
		return ^uint64(0)
	}
	return a + b
}

// Units returns the full work plan in schedule order (group-affine,
// descending cost). The slice is the caller's to partition into batches.
func (b *BatchAnalyzer) Units() []PairUnit {
	out := make([]PairUnit, len(b.plan))
	copy(out, b.plan)
	return out
}

// Volume is the run's total trace volume in bytes (summed over every
// interval's fragments) — the cost-model input for adaptive batch sizing
// and the distribution-worthiness cutoff.
func (b *BatchAnalyzer) Volume() int64 { return b.vol }

// StructureStats returns the run-level structure counts the coordinator
// folds into the merged report — fields no worker can report without
// double counting, since a batch only sees its own slice of the run.
func (b *BatchAnalyzer) StructureStats() report.Stats {
	return report.Stats{
		Intervals:          len(b.s.intervals),
		Regions:            len(b.s.regions),
		PairsPrefiltered:   b.prefiltered,
		PairsRetiredStatic: b.retired,
	}
}

// AnalyzeUnits compares one batch of pair units and returns a report
// holding the races found plus this batch's effort deltas in its Stats
// (node comparisons, solver calls, memo hits/misses, suppressed sites,
// interval pairs). Trees for referenced intervals already resident from
// earlier batches are reused as-is — flattened runs included — and only
// the missing ones are built; afterwards the resident cache is settled
// back under its byte budget (or everything is freed when residency is
// disabled). A done ctx aborts the batch with ctx.Err().
func (b *BatchAnalyzer) AnalyzeUnits(ctx context.Context, units []PairUnit) (*report.Report, error) {
	workers := EffectiveWorkers(b.a.cfg.Workers)
	m := b.a.cfg.Obs
	pairs := make([][2]*treeUnit, 0, len(units))
	need := make(map[*interval]bool)
	for _, pu := range units {
		ua, ok := b.units[pu.A]
		if !ok {
			return nil, fmt.Errorf("core: unknown work unit %+v", pu.A)
		}
		ub, ok := b.units[pu.B]
		if !ok {
			return nil, fmt.Errorf("core: unknown work unit %+v", pu.B)
		}
		pairs = append(pairs, [2]*treeUnit{ua, ub})
		need[ua.iv] = true
		need[ub.iv] = true
	}
	missing := make(map[*interval]bool)
	for iv := range need {
		if e, ok := b.resident[iv]; ok {
			b.lru.MoveToFront(e)
			m.Counter("core.resident_hits").Inc()
		} else {
			missing[iv] = true
			m.Counter("core.resident_misses").Inc()
		}
	}
	if len(missing) > 0 {
		if err := b.a.buildTrees(ctx, b.s, workers, nil, missing, false); err != nil {
			return nil, err
		}
	}
	// Until the batch completes, every freshly built interval must be
	// either adopted into the resident cache or freed: a tree left behind
	// unregistered would be rebuilt on its next use and hold every event
	// twice.
	settled := false
	defer func() {
		if settled {
			return
		}
		for iv := range missing {
			for _, u := range iv.units {
				u.resetTree()
			}
		}
	}()
	rep := report.New()
	b.eng.setReport(rep)
	before := b.eng.snapshot()
	schedulePairs(pairs) // real run-length costs now that trees exist
	if err := comparePairs(ctx, b.eng, workers, pairs); err != nil {
		return nil, err
	}
	after := b.eng.snapshot()
	rep.Stats.IntervalPairs = len(pairs)
	rep.Stats.NodeComparisons = after.comparisons - before.comparisons
	rep.Stats.SolverCalls = after.solverCalls - before.solverCalls
	rep.Stats.SolverCacheHits = after.cacheHits - before.cacheHits
	rep.Stats.SolverCacheMisses = after.cacheMisses - before.cacheMisses
	rep.Stats.SitesSuppressed = after.suppressed - before.suppressed
	if b.budget > 0 {
		for iv := range missing {
			e := b.lru.PushFront(&residentEntry{iv: iv, bytes: intervalBytes(iv)})
			b.resident[iv] = e
			b.residentBytes += intervalBytes(iv)
			b.residentUnits += int64(len(iv.units))
		}
		m.Gauge("core.units_resident_peak").SetMax(b.residentUnits)
		m.Gauge("core.resident_bytes").Set(b.residentBytes)
		b.evictToBudget()
		settled = true
	}
	return rep, nil
}

// evictToBudget frees least-recently-used resident intervals until the
// cache fits its byte budget again.
func (b *BatchAnalyzer) evictToBudget() {
	m := b.a.cfg.Obs
	for b.residentBytes > b.budget && b.lru.Len() > 0 {
		e := b.lru.Back()
		ent := e.Value.(*residentEntry)
		b.lru.Remove(e)
		delete(b.resident, ent.iv)
		b.residentBytes -= ent.bytes
		b.residentUnits -= int64(len(ent.iv.units))
		for _, u := range ent.iv.units {
			u.resetTree()
		}
		m.Counter("core.resident_evictions").Inc()
	}
	m.Gauge("core.resident_bytes").Set(b.residentBytes)
}
