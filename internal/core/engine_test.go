package core

import (
	"math/rand"
	"testing"

	"sword/internal/ilp"
	"sword/internal/itree"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/trace"
)

// randomTree builds a tree of random strided nodes: clustered bases so
// runs genuinely overlap, mixed widths, a few PCs, occasional atomics and
// lock protection.
func randomTree(r *rand.Rand, nodes int) *treeUnit {
	u := &treeUnit{probe: true} // built directly on the tree path
	for k := 0; k < nodes; k++ {
		base := 0x1000 + uint64(r.Intn(256))*8
		stride := uint64(1+r.Intn(4)) * 4
		count := r.Intn(24)
		width := uint64(1) << r.Intn(4)
		var mu trace.MutexSet
		if r.Intn(8) == 0 {
			mu = mu.With(uint64(r.Intn(2)))
		}
		acc := itree.Access{
			Width:   width,
			Write:   r.Intn(2) == 0,
			Atomic:  r.Intn(10) == 0,
			PC:      uint64(1 + r.Intn(6)),
			Mutexes: mu,
		}
		for i := 0; i <= count; i++ {
			acc.Addr = base + uint64(i)*stride
			u.tree.Insert(acc)
		}
	}
	u.tree.Compact()
	return u
}

func racePairs(rep *report.Report) map[[2]uint64]bool {
	out := make(map[[2]uint64]bool)
	for _, race := range rep.Races() {
		a, b := race.First.PC, race.Second.PC
		if a > b {
			a, b = b, a
		}
		out[[2]uint64{a, b}] = true
	}
	return out
}

// TestSweepMatchesProbe: on random tree pairs, the merge sweep must emit
// exactly the node pairs the tree-probing engine emits (same comparison
// count) and report the identical race set.
func TestSweepMatchesProbe(t *testing.T) {
	pcs := pcreg.NewTable()
	for seed := int64(1); seed <= 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		a := randomTree(r, 1+r.Intn(12))
		b := randomTree(r, 1+r.Intn(12))

		repSweep := report.New()
		sweep := newCompareEngine(Config{AllRaces: true}, pcs, repSweep).newWorker()
		sweep.comparePair(a, b)

		repProbe := report.New()
		probe := newCompareEngine(Config{ProbeEngine: true}, pcs, repProbe).newWorker()
		probe.comparePair(a, b)

		if sweep.comps != probe.comps {
			t.Fatalf("seed %d: sweep examined %d node pairs, probe %d", seed, sweep.comps, probe.comps)
		}
		got, want := racePairs(repSweep), racePairs(repProbe)
		if len(got) != len(want) {
			t.Fatalf("seed %d: sweep found %d races, probe %d", seed, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("seed %d: sweep missed race %v", seed, p)
			}
		}
	}
}

func randomProgression(r *rand.Rand) ilp.Progression {
	p := ilp.Progression{
		Base:   0x2000 + uint64(r.Intn(512)),
		Stride: uint64(r.Intn(9)),
		Count:  uint64(r.Intn(40)),
		Width:  uint64(1 + r.Intn(8)),
	}
	if r.Intn(6) == 0 {
		p.Stride = 0
	}
	return p
}

// TestSolverMemoMatchesIntersect property-tests the memoized solver
// against direct ilp.Intersect on random progression pairs, including
// translated replays of earlier shapes (the case the offset-normalized
// key exists for): the verdict must always agree, and any witness must be
// a byte both progressions actually touch.
func TestSolverMemoMatchesIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	eng := newCompareEngine(Config{}, pcreg.NewTable(), report.New())
	w := eng.newWorker()
	var shapes [][2]ilp.Progression
	for i := 0; i < 4000; i++ {
		var pa, pb ilp.Progression
		if len(shapes) > 0 && r.Intn(3) == 0 {
			// Replay an earlier pair at a different base offset: must hit
			// the memo and still agree with the direct solve.
			s := shapes[r.Intn(len(shapes))]
			shift := uint64(r.Intn(1 << 16))
			pa, pb = s[0], s[1]
			pa.Base += shift
			pb.Base += shift
		} else {
			pa, pb = randomProgression(r), randomProgression(r)
			shapes = append(shapes, [2]ilp.Progression{pa, pb})
		}
		gotAddr, gotOK := w.intersect(pa, pb)
		_, wantOK := ilp.Intersect(pa, pb)
		if gotOK != wantOK {
			t.Fatalf("pair %v / %v: memo says %v, direct solve says %v", pa, pb, gotOK, wantOK)
		}
		if gotOK && (!pa.Contains(gotAddr) || !pb.Contains(gotAddr)) {
			t.Fatalf("pair %v / %v: witness %#x not shared", pa, pb, gotAddr)
		}
	}
	if w.hits == 0 {
		t.Fatal("translated replays produced no memo hits")
	}
	if w.hits+w.misses == 0 || w.misses != w.solves {
		t.Fatalf("inconsistent memo counters: hits=%d misses=%d solves=%d", w.hits, w.misses, w.solves)
	}
}

// TestSuppressionKeepsRaceSet: with and without race-site suppression the
// distinct race set must be identical on a strided racy workload; only the
// per-race instance counts and the solver effort may differ.
func TestSuppressionKeepsRaceSet(t *testing.T) {
	program := func(rtm *omp.Runtime, _ *memsim.Space) {
		// Many barrier-separated rounds of the same racy strided loop: the
		// same site pair is re-confirmed every round, which is exactly what
		// suppression retires.
		rtm.Parallel(2, func(th *omp.Thread) {
			for round := 0; round < 8; round++ {
				for i := th.ID(); i < 64; i += 2 {
					th.Write(0x4000+uint64(i)*8, 8, 100+uint64(th.ID()))
				}
				// Overlapping tail both threads write: the race.
				th.Write(0x4000+uint64(round)*8, 8, 200)
				th.Barrier()
			}
		})
	}
	def := analyze(t, Config{}, program)
	all := analyze(t, Config{AllRaces: true}, program)
	gotDef, gotAll := racePairs(def), racePairs(all)
	if len(gotDef) != len(gotAll) {
		t.Fatalf("suppression changed the race set: %d vs %d races", len(gotDef), len(gotAll))
	}
	for p := range gotAll {
		if !gotDef[p] {
			t.Fatalf("suppression lost race %v", p)
		}
	}
	if def.Stats.SitesSuppressed == 0 {
		t.Fatal("default run suppressed nothing on a repetitive racy workload")
	}
	if all.Stats.SitesSuppressed != 0 {
		t.Fatalf("AllRaces still suppressed %d pairs", all.Stats.SitesSuppressed)
	}
	if all.Stats.SolverCalls < def.Stats.SolverCalls {
		t.Fatalf("AllRaces solved less (%d) than the suppressing run (%d)",
			all.Stats.SolverCalls, def.Stats.SolverCalls)
	}
}

// TestMemoCutsSolverCalls: a workload repeating the same strided shape
// across many barrier intervals must hit the memo, and with suppression on
// top the actual solver invocations must be at least halved relative to
// the decisions requested — the engine's headline claim.
func TestMemoCutsSolverCalls(t *testing.T) {
	st := analyze(t, Config{}, func(rtm *omp.Runtime, _ *memsim.Space) {
		rtm.Parallel(2, func(th *omp.Thread) {
			for round := 0; round < 16; round++ {
				for i := th.ID(); i < 128; i += 2 {
					th.Write(0x8000+uint64(i)*4, 4, 300+uint64(th.ID()))
				}
				th.Barrier()
			}
		})
	}).Stats
	requested := st.SolverCacheHits + st.SolverCacheMisses + st.SitesSuppressed
	if st.SolverCacheHits == 0 {
		t.Fatal("no memo hits on a shape-repeating workload")
	}
	if st.SolverCalls != st.SolverCacheMisses {
		t.Fatalf("solver calls (%d) != memo misses (%d)", st.SolverCalls, st.SolverCacheMisses)
	}
	if st.SolverCalls*2 > requested {
		t.Fatalf("memo+suppression saved too little: %d solves for %d decisions", st.SolverCalls, requested)
	}
}

// TestScheduleOrder: schedulePairs must order by descending run-length
// product while keeping the canonical order within equal costs.
func TestScheduleOrder(t *testing.T) {
	mk := func(nodes int) *treeUnit {
		u := &treeUnit{probe: true} // built directly on the tree path
		for i := 0; i < nodes; i++ {
			u.tree.Insert(itree.Access{Addr: uint64(0x100 * (i + 1)), Width: 1, Write: true, PC: uint64(i)})
		}
		return u
	}
	small, mid, big := mk(1), mk(3), mk(9)
	pairs := [][2]*treeUnit{{small, small}, {big, big}, {mid, small}, {big, mid}}
	schedulePairs(pairs)
	for i := 1; i < len(pairs); i++ {
		if pairCost(pairs[i-1]) < pairCost(pairs[i]) {
			t.Fatalf("pair %d cheaper than its successor: %d < %d", i-1, pairCost(pairs[i-1]), pairCost(pairs[i]))
		}
	}
	if pairs[0][0] != big || pairs[0][1] != big {
		t.Fatalf("heaviest pair not scheduled first")
	}
}
