package core

import "sword/internal/osl"

// OSL-based concurrency judgment — the paper's literal mechanism
// (Section II): reconstruct each interval's offset-span label from the
// meta-data and apply the two-case sequential predicate, with same-region
// intervals additionally paired by barrier id as the meta-data structure
// prescribes.
//
// The lineage judgment used by the analyzer (enumeratePairs) is the
// meta-data-driven generalization; intervalLabel/oslConcurrent exist to
// document and test the correspondence. The two agree on fork-join
// structures without tasking, except for one documented OSL blind spot:
// nested regions hanging off *different barrier intervals* of the same
// team compare as concurrent under pure OSL (offsets incongruent modulo
// span) even though the barrier orders them. TestOSLBlindSpot pins the
// divergence; the analyzer's lineage rule decides it correctly.

// intervalLabel reconstructs the offset-span label of an interval: the
// composed fork labels of the region chain, with the last pair advanced by
// the interval's barrier count (the Offset column of Table I).
func intervalLabel(iv *interval) osl.Label {
	var chain []*region
	for r := iv.region; r != nil; r = r.parent {
		chain = append(chain, r)
	}
	label := osl.Root()
	for i := len(chain) - 1; i >= 0; i-- {
		r := chain[i]
		var tid uint64
		if i == 0 {
			tid = iv.key.TID
		} else {
			// The fork coordinate of the next region down names the
			// forking thread of this region.
			tid = chain[i-1].frames[len(chain[i-1].frames)-1].tid
		}
		label = label.Fork(tid, r.span)
		if i == 0 {
			for b := uint64(0); b < iv.key.BID; b++ {
				label = label.Barrier()
			}
		} else {
			for b := uint64(0); b < chain[i-1].frames[len(chain[i-1].frames)-1].bid; b++ {
				label = label.Barrier()
			}
		}
	}
	return label
}

// oslConcurrent is the paper's judgment: same-region intervals pair by
// barrier id (the meta-data rule); cross-region intervals use the
// offset-span predicate.
func oslConcurrent(a, b *interval) bool {
	if a.region == b.region {
		return a.key.BID == b.key.BID && a.key.TID != b.key.TID
	}
	return osl.Concurrent(intervalLabel(a), intervalLabel(b))
}
