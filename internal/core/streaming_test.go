package core

import (
	"errors"
	"io"
	"strings"
	"testing"

	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/rt"
	"sword/internal/trace"
)

// multiRegionProgram runs several top-level regions with races confined to
// specific regions, so batched analysis must find exactly the same set.
func multiRegionProgram(t *testing.T) trace.Store {
	t.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	shared, _ := space.AllocF64(16)
	arr, _ := space.AllocF64(256)
	pcRace1 := pcreg.Site("stream:region1-ww")
	pcRace2 := pcreg.Site("stream:region3-rw-read")
	pcRace2w := pcreg.Site("stream:region3-rw-write")
	pcClean := pcreg.Site("stream:clean")
	rtm.Run(func(initial *omp.Thread) {
		for reg := 0; reg < 6; reg++ {
			reg := reg
			initial.Parallel(3, func(th *omp.Thread) {
				switch reg {
				case 1: // write-write race
					th.StoreF64(shared, 0, 1, pcRace1)
				case 3: // read-write race
					if th.ID() == 0 {
						th.StoreF64(shared, 1, 2, pcRace2w)
					} else {
						th.LoadF64(shared, 1, pcRace2)
					}
				default: // race-free sweep
					th.For(0, 256, func(i int) {
						th.StoreF64(arr, i, float64(reg), pcClean)
					})
				}
			})
		}
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestSubtreeBatchEquivalence: every batch size yields the same races and
// the same analysis effort totals as the single-pass default.
func TestSubtreeBatchEquivalence(t *testing.T) {
	store := multiRegionProgram(t)
	base, err := New(store, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 2 {
		t.Fatalf("baseline analysis found %d races, want 2:\n%s", base.Len(), base.String())
	}
	for _, batch := range []int{1, 2, 3, 5, 100} {
		rep, err := New(store, Config{SubtreeBatch: batch}).Analyze()
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if rep.Len() != base.Len() {
			t.Fatalf("batch %d: %d races, want %d:\n%s", batch, rep.Len(), base.Len(), rep.String())
		}
		gotPairs := map[string]bool{}
		for _, r := range rep.Races() {
			gotPairs[r.First.Source+"|"+r.Second.Source] = true
		}
		for _, r := range base.Races() {
			if !gotPairs[r.First.Source+"|"+r.Second.Source] {
				t.Fatalf("batch %d missing race %v", batch, r)
			}
		}
		if rep.Stats.IntervalPairs != base.Stats.IntervalPairs {
			t.Errorf("batch %d: %d interval pairs, want %d", batch, rep.Stats.IntervalPairs, base.Stats.IntervalPairs)
		}
		if rep.Stats.TreeNodes != base.Stats.TreeNodes {
			t.Errorf("batch %d: %d tree nodes, want %d", batch, rep.Stats.TreeNodes, base.Stats.TreeNodes)
		}
		if rep.Stats.Accesses != base.Stats.Accesses {
			t.Errorf("batch %d: %d accesses, want %d", batch, rep.Stats.Accesses, base.Stats.Accesses)
		}
	}
}

// TestSubtreeBatchNested: batching must keep cross-region races inside one
// subtree intact.
func TestSubtreeBatchNested(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	y, _ := space.AllocF64(1)
	pc := pcreg.Site("stream:nested-siblings")
	for reg := 0; reg < 3; reg++ {
		rtm.Parallel(2, func(outer *omp.Thread) {
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 0 && outer.Region().ParentTID != 99 {
					in.StoreF64(y, 0, 1, pc)
				}
			})
		})
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 1, 2} {
		rep, err := New(store, Config{SubtreeBatch: batch}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Len() != 1 {
			t.Fatalf("batch %d: %d races, want 1 (nested sibling WW):\n%s", batch, rep.Len(), rep.String())
		}
	}
}

func TestSubtreeBatchEmptyStore(t *testing.T) {
	rep, err := New(trace.NewMemStore(), Config{SubtreeBatch: 1}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 0 {
		t.Fatal("empty store produced races")
	}
}

// TestBatchedAnalysisSkipsBlocks: with many blocks per slot (small
// collection buffers) and per-subtree batches, the reader must fly over
// blocks belonging to other batches without decompressing them — and still
// report exactly the single-pass races.
func TestBatchedAnalysisSkipsBlocks(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 32})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	shared, _ := space.AllocF64(8)
	arr, _ := space.AllocF64(256)
	pcRace := pcreg.Site("skip:ww")
	pcClean := pcreg.Site("skip:clean")
	rtm.Run(func(initial *omp.Thread) {
		for reg := 0; reg < 8; reg++ {
			racy := reg == 2
			initial.Parallel(2, func(th *omp.Thread) {
				if racy {
					th.StoreF64(shared, 0, 1, pcRace)
				}
				th.For(0, 256, func(i int) {
					th.StoreF64(arr, i, float64(reg), pcClean)
				})
			})
		}
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	mSingle := obs.New()
	base, err := New(store, Config{Obs: mSingle}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if base.Len() != 1 {
		t.Fatalf("single pass found %d races, want 1:\n%s", base.Len(), base.String())
	}
	if v := mSingle.Snapshot().Value("trace.blocks_skipped"); v != 0 {
		t.Fatalf("single pass skipped %d blocks, want 0 (it must decode everything)", v)
	}

	m := obs.New()
	rep, err := New(store, Config{SubtreeBatch: 1, Obs: m}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != base.Len() {
		t.Fatalf("batched analysis found %d races, want %d:\n%s", rep.Len(), base.Len(), rep.String())
	}
	if rep.Races()[0].First.Source != base.Races()[0].First.Source {
		t.Fatalf("batched race %v, want %v", rep.Races()[0], base.Races()[0])
	}
	snap := m.Snapshot()
	if snap.Value("trace.blocks_skipped") == 0 {
		t.Fatal("batched analysis skipped no blocks; the fast path never engaged")
	}
	if snap.Value("trace.skipped_bytes") == 0 {
		t.Fatal("blocks were skipped but no bytes counted")
	}
}

// TestMemoryBudgetDerivesBatch: with SubtreeBatch unset, MemoryBudget
// must derive a batch size that (a) keeps results identical to the
// single-pass run and (b) actually engages streaming when the budget is
// tight — the per-job memory knob the analysis service hands down.
func TestMemoryBudgetDerivesBatch(t *testing.T) {
	store := multiRegionProgram(t)
	base, err := New(store, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 512, 4 << 10, 1 << 30} {
		m := obs.New()
		rep, err := New(store, Config{MemoryBudget: budget, Obs: m}).Analyze()
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if rep.Len() != base.Len() {
			t.Fatalf("budget %d: %d races, want %d:\n%s", budget, rep.Len(), base.Len(), rep.String())
		}
		snap := m.Snapshot()
		derived := snap.Value("core.budget_batch")
		if derived < 1 {
			t.Fatalf("budget %d: derived batch %d, want >= 1", budget, derived)
		}
		if budget == 1 && snap.Value("core.batches") < 2 {
			t.Fatalf("budget 1: %d batches — a one-byte budget must force streaming", snap.Value("core.batches"))
		}
		if budget == 1<<30 && snap.Value("core.batches") != 1 {
			t.Fatalf("huge budget: %d batches, want a single pass", snap.Value("core.batches"))
		}
	}
	// An explicit SubtreeBatch wins over the derivation.
	m := obs.New()
	if _, err := New(store, Config{MemoryBudget: 1, SubtreeBatch: 100, Obs: m}).Analyze(); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Value("core.batches"); got != 1 {
		t.Fatalf("explicit SubtreeBatch overridden: %d batches, want 1", got)
	}
}

// errStore fails to open one slot's log, exercising the analyzer's error
// path (failure injection: the analyzer must return an error, not panic).
type errStore struct {
	trace.Store
}

func (errStore) OpenLog(slot int) (io.ReadCloser, error) {
	return nil, errors.New("injected I/O failure")
}

func TestAnalyzerPropagatesLogErrors(t *testing.T) {
	store := multiRegionProgram(t)
	_, err := New(errStore{store}, Config{}).Analyze()
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("expected injected error, got %v", err)
	}
}

// TestSubtreeBatchWithTasks: batching must preserve task concurrency
// windows (per-fragment units are rebuilt per batch).
func TestSubtreeBatchWithTasks(t *testing.T) {
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	x, _ := space.AllocF64(4)
	pcT := pcreg.Site("streamtask:write")
	pcC := pcreg.Site("streamtask:read")
	pcSafe := pcreg.Site("streamtask:safe")
	for reg := 0; reg < 3; reg++ {
		racy := reg == 1
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(x, reg, 1, pcT)
				})
				if racy {
					th.LoadF64(x, reg, pcC) // before taskwait: races
					th.TaskWait()
				} else {
					th.TaskWait()
					th.LoadF64(x, reg, pcSafe) // after taskwait: ordered
				}
			}
		})
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 1, 2} {
		rep, err := New(store, Config{SubtreeBatch: batch}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Len() != 1 {
			t.Fatalf("batch %d: %d races, want exactly the unwaited one:\n%s",
				batch, rep.Len(), rep.String())
		}
	}
}
