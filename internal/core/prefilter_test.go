package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
)

// runProgram executes program under the collector with small blocks (so
// traces span many log blocks) and returns the store for repeated analysis
// under different configs.
func runProgram(t *testing.T, program func(rtm *omp.Runtime, space *memsim.Space)) *trace.MemStore {
	t.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 64})
	rtm := omp.New(omp.WithTool(col))
	program(rtm, memsim.NewSpace(nil))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

// mixedProgram is a randomized workload mixing every pre-filterable access
// shape — disjoint chunks, shared read-only data, all-atomic reductions,
// lock-protected updates — with genuinely racy rounds, across several
// barrier intervals and thread counts.
func mixedProgram(seed int64) func(rtm *omp.Runtime, space *memsim.Space) {
	return func(rtm *omp.Runtime, space *memsim.Space) {
		r := rand.New(rand.NewSource(seed))
		arr, _ := space.AllocF64(256)
		acc, _ := space.AllocF64(4)
		threads := 2 + r.Intn(3)
		rounds := 2 + r.Intn(4)
		var lock omp.Lock
		rtm.Parallel(threads, func(th *omp.Thread) {
			for round := 0; round < rounds; round++ {
				// The per-round shape must be a pure function of (seed,
				// round): every thread derives it from its own generator.
				tr := rand.New(rand.NewSource(seed*1000 + int64(round)))
				pc := pcreg.Site(fmt.Sprintf("prefilter:%d:%d", seed, round))
				switch tr.Intn(5) {
				case 0: // disjoint static chunks
					chunk := 256 / th.NumThreads()
					for i := th.ID() * chunk; i < (th.ID()+1)*chunk; i++ {
						th.StoreF64(arr, i, float64(i), pc)
					}
				case 1: // shared read-only sweep
					for i := 0; i < 64; i++ {
						th.LoadF64(arr, i, pc)
					}
				case 2: // all-atomic reduction
					for i := 0; i < 8; i++ {
						th.AtomicAddF64(acc, i%4, 1, pc)
					}
				case 3: // lock-protected shared updates
					for i := 0; i < 8; i++ {
						th.WithLock(&lock, func() {
							th.StoreF64(acc, i%4, 1, pc)
						})
					}
				default: // overlapping unordered writes: the races
					for i := 0; i < 16; i++ {
						th.StoreF64(arr, i, float64(th.ID()), pc)
					}
				}
				th.Barrier()
			}
		})
	}
}

// TestPrefilterKeepsRaceSet: across randomized workloads the pre-filter
// must never change the reported race set — the default analysis, the
// NoPrefilter ablation, and the probe-engine reference must agree exactly,
// while the filter demonstrably drops pairs somewhere in the seed range.
func TestPrefilterKeepsRaceSet(t *testing.T) {
	var totalDropped uint64
	for seed := int64(1); seed <= 30; seed++ {
		store := runProgram(t, mixedProgram(seed))
		def, err := New(store, Config{}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		noPre, err := New(store, Config{NoPrefilter: true}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		probe, err := New(store, Config{ProbeEngine: true}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := raceSites(def), raceSites(noPre); !sitesEqual(got, want) {
			t.Fatalf("seed %d: prefilter changed the race set: %v vs %v", seed, got, want)
		}
		if got, want := raceSites(def), raceSites(probe); !sitesEqual(got, want) {
			t.Fatalf("seed %d: builder+prefilter disagree with the probe engine: %v vs %v", seed, got, want)
		}
		// The builder path must summarize the same accesses into the same
		// number of nodes the tree path produces.
		if def.Stats.TreeNodes != probe.Stats.TreeNodes || def.Stats.Accesses != probe.Stats.Accesses {
			t.Fatalf("seed %d: builder summarization diverged: %d nodes/%d accesses vs tree %d/%d",
				seed, def.Stats.TreeNodes, def.Stats.Accesses, probe.Stats.TreeNodes, probe.Stats.Accesses)
		}
		if noPre.Stats.PairsPrefiltered != 0 {
			t.Fatalf("seed %d: NoPrefilter still dropped %d pairs", seed, noPre.Stats.PairsPrefiltered)
		}
		if def.Stats.IntervalPairs+int(def.Stats.PairsPrefiltered) != noPre.Stats.IntervalPairs {
			t.Fatalf("seed %d: compared(%d)+dropped(%d) != unfiltered pairs(%d)",
				seed, def.Stats.IntervalPairs, def.Stats.PairsPrefiltered, noPre.Stats.IntervalPairs)
		}
		totalDropped += def.Stats.PairsPrefiltered
	}
	if totalDropped == 0 {
		t.Fatal("prefilter dropped nothing across every seed; the test exercises nothing")
	}
}

// TestPrefilterClauses pins each summary clause individually: a workload
// whose every pair is provably race-free through exactly one fact must be
// fully pre-filtered, and a racy control must not be touched.
func TestPrefilterClauses(t *testing.T) {
	cases := []struct {
		name    string
		program func(rtm *omp.Runtime, space *memsim.Space)
	}{
		{"read-only", func(rtm *omp.Runtime, space *memsim.Space) {
			arr, _ := space.AllocF64(64)
			rtm.Parallel(2, func(th *omp.Thread) {
				for i := 0; i < 64; i++ {
					th.LoadF64(arr, i, 1)
				}
			})
		}},
		{"all-atomic", func(rtm *omp.Runtime, space *memsim.Space) {
			acc, _ := space.AllocF64(1)
			rtm.Parallel(2, func(th *omp.Thread) {
				for i := 0; i < 16; i++ {
					th.AtomicAddF64(acc, 0, 1, 2)
				}
			})
		}},
		{"common-mutex", func(rtm *omp.Runtime, space *memsim.Space) {
			var lock omp.Lock
			acc, _ := space.AllocF64(1)
			rtm.Parallel(2, func(th *omp.Thread) {
				for i := 0; i < 8; i++ {
					th.WithLock(&lock, func() {
						th.StoreF64(acc, 0, float64(th.ID()), 3)
					})
				}
			})
		}},
		{"disjoint-boxes", func(rtm *omp.Runtime, space *memsim.Space) {
			arr, _ := space.AllocF64(64)
			rtm.Parallel(2, func(th *omp.Thread) {
				for i := th.ID() * 32; i < (th.ID()+1)*32; i++ {
					th.StoreF64(arr, i, 1, 4)
				}
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := New(runProgram(t, tc.program), Config{}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			wantRaces(t, rep, 0)
			if rep.Stats.PairsPrefiltered == 0 {
				t.Fatalf("no pair pre-filtered: %+v", rep.Stats)
			}
			if rep.Stats.IntervalPairs != 0 {
				t.Fatalf("%d pairs still compared on a fully filterable workload", rep.Stats.IntervalPairs)
			}
		})
	}
	t.Run("racy-control", func(t *testing.T) {
		rep, err := New(runProgram(t, func(rtm *omp.Runtime, space *memsim.Space) {
			x, _ := space.AllocF64(1)
			rtm.Parallel(2, func(th *omp.Thread) {
				th.StoreF64(x, 0, float64(th.ID()), 5)
			})
		}), Config{}).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		wantRaces(t, rep, 1)
		if rep.Stats.PairsPrefiltered != 0 {
			t.Fatalf("prefilter dropped %d pairs on a racy workload", rep.Stats.PairsPrefiltered)
		}
	})
}

// TestPipelineMutexAcrossBlocks: with tiny log blocks, lock acquire,
// protected accesses, and release land in different blocks — the pipelined
// decoder must still apply them in log order, or the running mutex set
// would leak protection onto the unprotected cell (or drop it from the
// protected one). Exactly one race must survive: the unprotected cell.
func TestPipelineMutexAcrossBlocks(t *testing.T) {
	pcLocked := pcreg.Site("pipeline:locked")
	pcNaked := pcreg.Site("pipeline:naked")
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 4})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	shared, _ := space.AllocF64(2)
	var lock omp.Lock
	rtm.Parallel(2, func(th *omp.Thread) {
		for round := 0; round < 32; round++ {
			th.Acquire(&lock)
			// Enough protected accesses to straddle several 4-event blocks.
			for i := 0; i < 6; i++ {
				th.StoreF64(shared, 0, float64(th.ID()), pcLocked)
			}
			th.Release(&lock)
			th.StoreF64(shared, 1, float64(th.ID()), pcNaked)
		}
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{{}, {ProbeEngine: true}, {NoPrefilter: true}} {
		rep, err := New(store, cfg).Analyze()
		if err != nil {
			t.Fatal(err)
		}
		wantRaces(t, rep, 1)
		r := rep.Races()[0]
		if r.First.Source != "pipeline:naked" || r.Second.Source != "pipeline:naked" {
			t.Fatalf("cfg %+v: race on the wrong site:\n%s", cfg, rep)
		}
	}
}

// TestPipelineSalvageDifferential: on a trace with a corrupt mid-log block
// the pipelined decoder must surface the same salvage verdict on both
// construction paths — same quarantine set, damage counters, and surviving
// races — since block order, and with it the salvage records, is preserved
// through the channel.
func TestPipelineSalvageDifferential(t *testing.T) {
	mem := trace.NewMemStore()
	if err := racyWorkload(t, mem, 40); err != nil {
		t.Fatal(err)
	}
	fs := trace.NewFaultStore(mem)
	fs.SetMutateRead(func(name string, data []byte) []byte {
		if name != "log:0" {
			return data
		}
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0xFF
		return flipped
	})
	var reps []*report.Report
	for _, cfg := range []Config{{Salvage: true}, {Salvage: true, ProbeEngine: true}} {
		rep, err := New(fs, cfg).Analyze()
		if err != nil {
			t.Fatalf("salvage analysis failed: %v", err)
		}
		if !rep.Stats.Partial() || rep.Stats.CorruptBlocks == 0 {
			t.Fatalf("corruption not surfaced: %+v", rep.Stats)
		}
		reps = append(reps, rep)
	}
	a, b := reps[0], reps[1]
	if !sitesEqual(raceSites(a), raceSites(b)) {
		t.Fatalf("salvaged race sets differ: %v vs %v", raceSites(a), raceSites(b))
	}
	if a.Stats.CorruptBlocks != b.Stats.CorruptBlocks ||
		a.Stats.IntervalsQuarantined != b.Stats.IntervalsQuarantined ||
		a.Stats.LostBytes != b.Stats.LostBytes ||
		a.Stats.SalvagedBytes != b.Stats.SalvagedBytes {
		t.Fatalf("salvage coverage differs between construction paths:\n%+v\n%+v", a.Stats, b.Stats)
	}
}
