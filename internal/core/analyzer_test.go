package core

import (
	"strings"
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
)

// analyze runs program under the collector and then the offline analyzer.
func analyze(t *testing.T, cfg Config, program func(rt *omp.Runtime, space *memsim.Space)) *report.Report {
	t.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	runtime := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	program(runtime, space)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := New(store, cfg).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func wantRaces(t *testing.T, rep *report.Report, n int) {
	t.Helper()
	if rep.Len() != n {
		t.Fatalf("got %d races, want %d:\n%s", rep.Len(), n, rep.String())
	}
}

func TestWriteWriteRace(t *testing.T) {
	pc := pcreg.Site("core-test:ww")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.StoreF64(x, 0, float64(th.ID()), pc)
		})
	})
	wantRaces(t, rep, 1)
	r := rep.Races()[0]
	if !r.First.Write || !r.Second.Write {
		t.Fatalf("race sides not writes: %+v", r)
	}
}

func TestReadWriteRace(t *testing.T) {
	pcR := pcreg.Site("core-test:rw-read")
	pcW := pcreg.Site("core-test:rw-write")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.StoreF64(x, 0, 1, pcW)
			} else {
				th.LoadF64(x, 0, pcR)
			}
		})
	})
	wantRaces(t, rep, 1)
}

func TestNoRaceDisjointWrites(t *testing.T) {
	pc := pcreg.Site("core-test:disjoint")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(64)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.For(0, 64, func(i int) {
				th.StoreF64(a, i, float64(i), pc)
			})
		})
	})
	wantRaces(t, rep, 0)
}

func TestNoRaceReadRead(t *testing.T) {
	pc := pcreg.Site("core-test:rr")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.LoadF64(x, 0, pc)
		})
	})
	wantRaces(t, rep, 0)
}

func TestBarrierSeparatesAccesses(t *testing.T) {
	pcW := pcreg.Site("core-test:bar-write")
	pcR := pcreg.Site("core-test:bar-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.StoreF64(x, 0, 1, pcW)
			}
			th.Barrier()
			if th.ID() == 1 {
				th.LoadF64(x, 0, pcR)
			}
		})
	})
	wantRaces(t, rep, 0)
}

func TestRaceWithinSameIntervalAfterBarriers(t *testing.T) {
	pc := pcreg.Site("core-test:post-barrier")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.Barrier()
			th.Barrier()
			th.StoreF64(x, 0, 1, pc) // same interval (bid 2) on both threads
		})
	})
	wantRaces(t, rep, 1)
}

func TestMutexProtectionSuppressesRace(t *testing.T) {
	pc := pcreg.Site("core-test:locked")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.Critical("sum", func() {
				v := th.LoadF64(x, 0, pc)
				th.StoreF64(x, 0, v+1, pc)
			})
		})
	})
	wantRaces(t, rep, 0)
}

func TestDifferentLocksStillRace(t *testing.T) {
	pc1 := pcreg.Site("core-test:lockA")
	pc2 := pcreg.Site("core-test:lockB")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Critical("a", func() { th.StoreF64(x, 0, 1, pc1) })
			} else {
				th.Critical("b", func() { th.StoreF64(x, 0, 2, pc2) })
			}
		})
	})
	wantRaces(t, rep, 1)
}

func TestOneSideUnlockedRaces(t *testing.T) {
	pcL := pcreg.Site("core-test:one-locked")
	pcU := pcreg.Site("core-test:one-unlocked")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Critical("c", func() { th.StoreF64(x, 0, 1, pcL) })
			} else {
				th.StoreF64(x, 0, 2, pcU)
			}
		})
	})
	wantRaces(t, rep, 1)
}

func TestAtomicsDoNotRaceWithAtomics(t *testing.T) {
	pc := pcreg.Site("core-test:atomic")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.AtomicAddF64(x, 0, 1, pc)
		})
	})
	wantRaces(t, rep, 0)
}

func TestAtomicVsPlainRaces(t *testing.T) {
	pcA := pcreg.Site("core-test:atomic-side")
	pcP := pcreg.Site("core-test:plain-side")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.AtomicAddF64(x, 0, 1, pcA)
			} else {
				th.StoreF64(x, 0, 2, pcP)
			}
		})
	})
	wantRaces(t, rep, 1)
}

// TestStridedInterleavedNoRace reproduces the Figure 4 scenario: two
// threads sweep interleaved 4-byte lanes of the same array region with
// stride 8; bounding boxes overlap but no byte is shared. The solver must
// keep this race-free while the NoSolver ablation flags it.
func TestStridedInterleavedNoRace(t *testing.T) {
	pc0 := pcreg.Site("core-test:lane0")
	pc1 := pcreg.Site("core-test:lane1")
	program := func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocI32(128) // 4-byte elements
		rtm.Parallel(2, func(th *omp.Thread) {
			// Thread 0 writes even elements, thread 1 odd: stride 8 bytes.
			pc := pc0
			if th.ID() == 1 {
				pc = pc1
			}
			for i := th.ID(); i < 128; i += 2 {
				th.StoreI32(a, i, int32(i), pc)
			}
		})
	}
	wantRaces(t, analyze(t, Config{}, program), 0)
	noSolver := analyze(t, Config{NoSolver: true}, program)
	if noSolver.Len() == 0 {
		t.Fatal("NoSolver ablation should report the bounding-box false positive")
	}
}

// TestLoopCarriedDependency is the paper's interval-tree example: the
// a[i] = a[i-1] loop run by two threads races at the chunk boundary.
func TestLoopCarriedDependency(t *testing.T) {
	pcR := pcreg.Site("core-test:dep-read")
	pcW := pcreg.Site("core-test:dep-write")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocI32(1000)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.For(1, 1000, func(i int) {
				v := th.LoadI32(a, i-1, pcR)
				th.StoreI32(a, i, v, pcW)
			})
		})
	})
	if rep.Len() == 0 {
		t.Fatal("loop-carried dependency race missed")
	}
	found := false
	for _, r := range rep.Races() {
		if (r.First.Write && !r.Second.Write) || (!r.First.Write && r.Second.Write) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no read-write race among:\n%s", rep.String())
	}
}

// TestFigure2Races reproduces the three races of Figure 2: R1 between
// sibling threads of one nested region, R2/R3 across two concurrent nested
// regions — while barrier-separated accesses stay race-free.
func TestFigure2Races(t *testing.T) {
	pcX := pcreg.Site("fig2:x")
	pcY := pcreg.Site("fig2:y")
	pcXread := pcreg.Site("fig2:x-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		y, _ := space.AllocF64(1)
		rtm.Parallel(2, func(outer *omp.Thread) {
			if outer.ID() == 0 {
				// Barrier interval 1 of outer thread 0: write x, then after
				// the barrier read x (no race with the pre-barrier write).
				outer.StoreF64(x, 0, 1, pcX)
				outer.Barrier()
				outer.LoadF64(x, 0, pcXread)
			} else {
				outer.Barrier()
				// Nested region by outer thread 1: R1 (write-write on y
				// within the region), R3 (x written here, read by outer
				// thread 0 concurrently in the same outer interval).
				outer.Parallel(2, func(in *omp.Thread) {
					in.StoreF64(y, 0, float64(in.ID()), pcY) // R1
					if in.ID() == 0 {
						in.StoreF64(x, 0, 2, pcX) // R3 vs outer read of x
					}
				})
			}
		})
	})
	// Expected distinct site pairs: (y,y) write-write, (x-write, x-read).
	races := rep.Races()
	var yy, xr bool
	for _, r := range races {
		if strings.Contains(r.First.Source, "fig2:y") && strings.Contains(r.Second.Source, "fig2:y") {
			yy = true
		}
		if (strings.Contains(r.First.Source, "fig2:x") && strings.Contains(r.Second.Source, "fig2:x-read")) ||
			(strings.Contains(r.Second.Source, "fig2:x") && strings.Contains(r.First.Source, "fig2:x-read")) {
			xr = true
		}
	}
	if !yy || !xr {
		t.Fatalf("missing R1 (yy=%v) or R3 (xr=%v):\n%s", yy, xr, rep.String())
	}
	// The pre-barrier write of x by outer thread 0 must not race with its
	// own post-barrier read (same thread) nor create extra reports.
	wantRaces(t, rep, 2)
}

// TestNestedForkJoinOrdering: a parent's accesses before and after a
// nested region never race with the region's contents, and two
// sequentially composed sibling regions never race with each other.
func TestNestedForkJoinOrdering(t *testing.T) {
	pcOuter := pcreg.Site("nest:outer")
	pcA := pcreg.Site("nest:regionA")
	pcB := pcreg.Site("nest:regionB")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(outer *omp.Thread) {
			outer.StoreF64(x, 0, 1, pcOuter)
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 0 {
					in.StoreF64(x, 0, 2, pcA)
				}
			})
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 1 {
					in.StoreF64(x, 0, 3, pcB)
				}
			})
			outer.StoreF64(x, 0, 4, pcOuter)
		})
	})
	wantRaces(t, rep, 0)
}

// TestConcurrentNestedSiblingRegionsRace: regions forked by different
// threads of the same interval are concurrent (the R2 shape of Figure 2).
func TestConcurrentNestedSiblingRegionsRace(t *testing.T) {
	pc := pcreg.Site("nest:siblings")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		y, _ := space.AllocF64(1)
		rtm.Parallel(2, func(outer *omp.Thread) {
			outer.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 0 {
					in.StoreF64(y, 0, float64(outer.ID()), pc)
				}
			})
		})
	})
	wantRaces(t, rep, 1)
}

// TestSequentialTopLevelRegionsNoRace: regions forked one after another by
// the initial thread are join-ordered.
func TestSequentialTopLevelRegionsNoRace(t *testing.T) {
	pc1 := pcreg.Site("toplevel:first")
	pc2 := pcreg.Site("toplevel:second")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Run(func(initial *omp.Thread) {
			initial.Parallel(4, func(th *omp.Thread) {
				if th.ID() == 0 {
					th.StoreF64(x, 0, 1, pc1)
				}
			})
			initial.Parallel(4, func(th *omp.Thread) {
				if th.ID() == 3 {
					th.StoreF64(x, 0, 2, pc2)
				}
			})
		})
	})
	wantRaces(t, rep, 0)
}

// TestSeparateParallelCallsOrdered: successive Runtime.Parallel calls (the
// convenience wrapper creating a fresh initial context each time) are also
// ordered, via the region-id ordering of top-level frames.
func TestSeparateParallelCallsOrdered(t *testing.T) {
	pc := pcreg.Site("toplevel:separate")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.StoreF64(x, 0, 1, pc)
			}
		})
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 1 {
				th.StoreF64(x, 0, 2, pc)
			}
		})
	})
	wantRaces(t, rep, 0)
}

// TestScheduleIndependentDetection is the Figure 1 property: SWORD reports
// the race under both forced interleavings, because concurrency comes from
// the semantic model, not the observed synchronization order.
func TestScheduleIndependentDetection(t *testing.T) {
	pcW := pcreg.Site("fig1:write")
	pcR := pcreg.Site("fig1:read")
	for _, order := range []string{"writer-first", "reader-first"} {
		order := order
		rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
			a, _ := space.AllocF64(1)
			lock := rtm.NewLock()
			seq := omp.NewSequencer()
			rtm.Parallel(2, func(th *omp.Thread) {
				if th.ID() == 0 {
					step := 0
					if order == "reader-first" {
						step = 1
					}
					seq.Do(step, func() {
						th.StoreF64(a, 0, 1, pcW) // unprotected write
						th.WithLock(lock, func() {})
					})
				} else {
					step := 1
					if order == "reader-first" {
						step = 0
					}
					seq.Do(step, func() {
						th.WithLock(lock, func() {})
						th.LoadF64(a, 0, pcR) // unprotected read
					})
				}
			})
		})
		if rep.Len() != 1 {
			t.Fatalf("%s: got %d races, want 1:\n%s", order, rep.Len(), rep.String())
		}
	}
}

func TestReportSymbolization(t *testing.T) {
	pc := pcreg.Site("symbolize-me")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.StoreF64(x, 0, 1, pc)
		})
	})
	wantRaces(t, rep, 1)
	if got := rep.Races()[0].First.Source; got != "symbolize-me" {
		t.Fatalf("source = %q (pc table not round-tripped through store)", got)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	program := func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(256)
		x, _ := space.AllocF64(1)
		pcs := []uint64{pcreg.Site("wi:1"), pcreg.Site("wi:2"), pcreg.Site("wi:3")}
		rtm.Parallel(8, func(th *omp.Thread) {
			th.For(0, 256, func(i int) {
				th.StoreF64(a, i, 1, pcs[0])
			})
			th.StoreF64(x, 0, 1, pcs[1])
			th.Barrier()
			th.LoadF64(x, 0, pcs[2])
		})
	}
	base := analyze(t, Config{Workers: 1}, program)
	for _, w := range []int{2, 8} {
		rep := analyze(t, Config{Workers: w}, program)
		if rep.Len() != base.Len() {
			t.Fatalf("workers=%d: %d races vs %d with workers=1", w, rep.Len(), base.Len())
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(1024)
		rtm.Parallel(4, func(th *omp.Thread) {
			th.For(0, 1024, func(i int) {
				th.StoreF64(a, i, 1, 1)
			})
		})
	})
	st := rep.Stats
	if st.Intervals != 4 || st.Regions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Accesses != 1024 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.TreeNodes == 0 || st.TreeNodes > 8 {
		t.Fatalf("tree nodes = %d, want small (coalesced)", st.TreeNodes)
	}
	// The four threads statically chunk the array, so every pair of
	// intervals has a disjoint bounding box: the pre-filter retires all
	// C(4,2)=6 pairs before comparison.
	if st.IntervalPairs != 0 || st.PairsPrefiltered != 6 {
		t.Fatalf("interval pairs = %d prefiltered = %d, want 0 compared and C(4,2)=6 prefiltered", st.IntervalPairs, st.PairsPrefiltered)
	}
}

func TestEmptyStore(t *testing.T) {
	store := trace.NewMemStore()
	rep, err := New(store, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	wantRaces(t, rep, 0)
}

// TestPartialWordRace: a byte store into the middle of a word-sized load.
func TestPartialWordRace(t *testing.T) {
	pcB := pcreg.Site("partial:byte")
	pcW := pcreg.Site("partial:word")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		b, _ := space.AllocBytes(8)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.StoreByte(b, 3, 1, pcB)
			} else {
				th.Read(b.Base(), 8, pcW) // 8-byte read spanning the byte
			}
		})
	})
	wantRaces(t, rep, 1)
}

// TestAtomicChainDoesNotMaskForSword: the counterpart of the archer
// masking test — an atomic release-acquire chain on another location does
// not order plain accesses semantically, and sword reports the race under
// the same pinned schedule.
func TestAtomicChainDoesNotMaskForSword(t *testing.T) {
	pcW := pcreg.Site("core-test:atomic-mask-write")
	pcR := pcreg.Site("core-test:atomic-mask-read")
	pcA := pcreg.Site("core-test:atomic-flag")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		flag, _ := space.AllocF64(1)
		seq := omp.NewSequencer()
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				seq.Do(0, func() {
					th.StoreF64(x, 0, 1, pcW)
					th.AtomicStoreF64(flag, 0, 1, pcA)
				})
			} else {
				seq.Do(1, func() {
					th.AtomicLoadF64(flag, 0, pcA)
					th.LoadF64(x, 0, pcR)
				})
			}
		})
	})
	wantRaces(t, rep, 1)
}
