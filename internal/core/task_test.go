package core

import (
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
)

// Tasking-extension semantics (the paper's future work, implemented here):
// a task is concurrent with the spawner's continuation between the spawn
// and the matching taskwait (or the barrier), with sibling tasks whose
// windows overlap, and with everything the spawning interval itself is
// concurrent with.

func TestTaskRacesWithContinuation(t *testing.T) {
	pcT := pcreg.Site("task:body-write")
	pcC := pcreg.Site("task:continuation-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) {
				tt.StoreF64(x, 0, 1, pcT)
			})
			th.LoadF64(x, 0, pcC) // continuation: concurrent with the task
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 1)
}

func TestTaskOrderedBeforeSpawn(t *testing.T) {
	pcPre := pcreg.Site("task:pre-spawn-write")
	pcT := pcreg.Site("task:body-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.StoreF64(x, 0, 1, pcPre) // before the spawn: ordered
			th.Task(func(tt *omp.Thread) {
				tt.LoadF64(x, 0, pcT)
			})
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 0)
}

func TestTaskWaitOrdersContinuation(t *testing.T) {
	pcT := pcreg.Site("taskwait:body-write")
	pcPost := pcreg.Site("taskwait:post-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) {
				tt.StoreF64(x, 0, 1, pcT)
			})
			th.TaskWait()
			th.LoadF64(x, 0, pcPost) // after the wait: ordered
		})
	})
	wantRaces(t, rep, 0)
}

func TestBarrierOrdersUnwaitedTask(t *testing.T) {
	pcT := pcreg.Site("taskbar:body-write")
	pcPost := pcreg.Site("taskbar:post-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(x, 0, 1, pcT)
				})
			}
			th.Barrier() // completes the task
			if th.ID() == 1 {
				th.LoadF64(x, 0, pcPost)
			}
		})
	})
	wantRaces(t, rep, 0)
}

func TestSiblingTasksOverlappingWindowsRace(t *testing.T) {
	pc1 := pcreg.Site("sibtask:first-write")
	pc2 := pcreg.Site("sibtask:second-write")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) { tt.StoreF64(x, 0, 1, pc1) })
			th.Task(func(tt *omp.Thread) { tt.StoreF64(x, 0, 2, pc2) })
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 1) // the two task bodies race with each other
}

func TestTaskWaitSeparatesSiblingTasks(t *testing.T) {
	pc1 := pcreg.Site("seqtask:first-write")
	pc2 := pcreg.Site("seqtask:second-write")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) { tt.StoreF64(x, 0, 1, pc1) })
			th.TaskWait() // closes the first window
			th.Task(func(tt *omp.Thread) { tt.StoreF64(x, 0, 2, pc2) })
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 0)
}

func TestTaskRacesWithOtherThreadsInterval(t *testing.T) {
	pcT := pcreg.Site("xthread-task:write")
	pcO := pcreg.Site("xthread-task:other-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(x, 0, 1, pcT)
				})
				th.TaskWait()
			} else {
				th.LoadF64(x, 0, pcO) // same episode, different thread
			}
		})
	})
	wantRaces(t, rep, 1)
}

func TestTaskBarrierSeparatedFromNextEpisode(t *testing.T) {
	pcT := pcreg.Site("epitask:write")
	pcNext := pcreg.Site("epitask:next-episode-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			if th.ID() == 0 {
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(x, 0, 1, pcT)
				})
			}
			th.Barrier()
			th.LoadF64(x, 0, pcNext) // next episode: ordered after the task
		})
	})
	wantRaces(t, rep, 0)
}

func TestTaskVsSyncRegionInWindow(t *testing.T) {
	pcT := pcreg.Site("taskvsync:task-write")
	pcR := pcreg.Site("taskvsync:region-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) {
				tt.StoreF64(x, 0, 1, pcT)
			})
			// A sync nested region inside the task's window: its contents
			// run while the task may still be running.
			th.Parallel(2, func(in *omp.Thread) {
				in.LoadF64(x, 0, pcR)
			})
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 1)
}

func TestSyncRegionBeforeSpawnOrdered(t *testing.T) {
	pcT := pcreg.Site("syncfirst:task-read")
	pcR := pcreg.Site("syncfirst:region-write")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Parallel(2, func(in *omp.Thread) {
				if in.ID() == 0 {
					in.StoreF64(x, 0, 1, pcR)
				}
			})
			// The sync region joined before the task spawns: ordered.
			th.Task(func(tt *omp.Thread) {
				tt.LoadF64(x, 0, pcT)
			})
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 0)
}

func TestNestedTaskConcurrentWithGrandparentContinuation(t *testing.T) {
	pcT := pcreg.Site("nesttask:inner-write")
	pcC := pcreg.Site("nesttask:continuation-read")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(1, func(th *omp.Thread) {
			th.Task(func(outer *omp.Thread) {
				outer.Task(func(inner *omp.Thread) {
					inner.StoreF64(x, 0, 1, pcT)
				})
			})
			th.LoadF64(x, 0, pcC) // racy with the nested task too
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 1)
}

func TestTaskMutexProtection(t *testing.T) {
	pc := pcreg.Site("tasklock:rmw")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(1)
		rtm.Parallel(2, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) {
				tt.Critical("sum", func() {
					v := tt.LoadF64(x, 0, pc)
					tt.StoreF64(x, 0, v+1, pc)
				})
			})
			th.Critical("sum", func() {
				v := th.LoadF64(x, 0, pc)
				th.StoreF64(x, 0, v+1, pc)
			})
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 0)
}

func TestManyTasksDisjointData(t *testing.T) {
	pc := pcreg.Site("manytasks:own-element")
	rep := analyze(t, Config{}, func(rtm *omp.Runtime, space *memsim.Space) {
		a, _ := space.AllocF64(64)
		rtm.Parallel(2, func(th *omp.Thread) {
			for k := 0; k < 8; k++ {
				idx := th.ID()*32 + k
				th.Task(func(tt *omp.Thread) {
					tt.StoreF64(a, idx, float64(idx), pc)
				})
			}
			th.TaskWait()
		})
	})
	wantRaces(t, rep, 0)
}
