package core

import (
	"fmt"

	"sword/internal/itree"
	"sword/internal/trace"
)

// Static worksharing certificates, analyzer side. The runtime publishes a
// trace.LoopCert for every certified worksharing loop: the schedule's
// thread→chunk mapping, the declared affine access shapes, and per-thread
// counts of accesses the collector dropped instead of recording. The
// analyzer consumes them in one of two ways:
//
//   - A CLEAN certificate whose structural position the analyzer can
//     itself verify retires the loop's pair classes: every pair of tree
//     units covered by the certificate is provably race-free (the runtime
//     checked disjointness before dropping a single access), so the pair
//     is counted in core.pairs_retired_static and skipped.
//
//   - Anything else — a VOIDED certificate (the loop body did something
//     the proof does not cover) or a CLEAN one whose interval might be
//     concurrent with code outside the certificate — is rematerialized:
//     the dropped access prefix is reconstructed exactly from the counts
//     and injected into the owning tree units, so the comparison engine
//     sees the same access set it would have seen with filtering off.
//
// Trust is decided here, not taken from the trace: dropped accesses are
// unrecorded, so a CLEAN claim is only safe to honor when no interval
// outside the certificate can be concurrent with the certified ones.

// certInfo is one certificate resolved against the recovered structure.
type certInfo struct {
	c    trace.LoopCert
	rows []*interval // per cert thread row; nil when unresolved
	// retire marks a CLEAN certificate whose structural position checks
	// out: its pair classes are skipped. When false the dropped accesses
	// are rematerialized instead, which is always sound.
	retire bool
}

// attachCerts resolves every certificate's thread rows onto intervals and
// decides retire-vs-rematerialize. Called by buildStructure after regions
// are linked and quarantine flags are final.
func (s *structure) attachCerts(certs []trace.LoopCert, salvage bool) error {
	quarantinedRun := false
	if salvage {
		for _, r := range s.regions {
			if r.quarantined {
				quarantinedRun = true
				break
			}
		}
	}
	for i := range certs {
		ci := &certInfo{c: certs[i], rows: make([]*interval, len(certs[i].Threads))}
		c := &ci.c
		r, ok := s.regions[c.PID]
		if !ok || r.quarantined {
			if salvage {
				s.note("certificate for region %d, barrier %d: region lost with a damaged slot; certificate dropped", c.PID, c.BID)
				continue
			}
			return fmt.Errorf("core: certificate references unknown region %d", c.PID)
		}
		resolved := true
		for t := range c.Threads {
			row := &c.Threads[t]
			if !c.Clean && rowDropped(row) == 0 {
				continue // nothing to place and no clean claim to audit
			}
			iv, ok := s.intervals[trace.IntervalKey{PID: c.PID, TID: row.TID, BID: c.BID}]
			if !ok || iv.quarantined {
				resolved = false
				if rowDropped(row) > 0 {
					if !salvage {
						return fmt.Errorf("core: certificate for region %d, barrier %d: thread %d's interval is missing", c.PID, c.BID, row.TID)
					}
					s.note("certificate for region %d, barrier %d: %d dropped access(es) of thread %d lost with a damaged slot", c.PID, c.BID, rowDropped(row), row.TID)
				}
				continue
			}
			if iv.cert != nil {
				if !salvage {
					return fmt.Errorf("core: duplicate certificate for interval %+v", iv.key)
				}
				s.note("duplicate certificate for interval %+v; later record dropped", iv.key)
				resolved = false
				continue
			}
			ci.rows[t] = iv
		}
		// A CLEAN claim is honored only when the analyzer can independently
		// verify that nothing outside the certificate was concurrent with
		// the certified intervals: a level-1 synchronous region covering
		// its full team, no subtree forked in the certified barrier
		// interval, and (under salvage) no structural damage anywhere —
		// damage hides concurrency, and dropped accesses cannot be
		// re-examined later.
		ci.retire = c.Clean && resolved && !quarantinedRun &&
			r.level == 1 && !r.async && r.top == r &&
			uint64(len(c.Threads)) == r.span &&
			!descendantForkedAt(s, r, c.BID)
		for t, iv := range ci.rows {
			if iv != nil {
				iv.cert = ci
				iv.certRow = t
			}
		}
		s.certs = append(s.certs, ci)
	}
	return nil
}

func rowDropped(row *trace.CertThread) uint64 {
	var n uint64
	for _, v := range row.Dropped {
		n += v
	}
	return n
}

// descendantForkedAt reports whether any region of r's subtree was forked
// from barrier interval bid of r — such a subtree runs concurrently with
// the other threads' intervals of that episode, which a certificate
// covering them cannot see.
func descendantForkedAt(s *structure, r *region, bid uint64) bool {
	for _, r2 := range s.topGroups[r.id] {
		if r2 == r || len(r2.frames) <= len(r.frames) {
			continue
		}
		if r2.frames[len(r.frames)].bid == bid {
			return true
		}
	}
	return false
}

// materializeCert reconstructs the interval's dropped access prefix and
// inserts it into the owning tree unit, before finalize sorts the unit's
// runs. Dropped accesses carry no mutexes by construction (the runtime
// stops dropping at the first lock acquisition), so the empty held set is
// exact, not an approximation.
func materializeCert(iv *interval) {
	ci := iv.cert
	c := &ci.c
	row := ci.certRowOf(iv)
	if row < 0 || rowDropped(&c.Threads[row]) == 0 || len(iv.units) == 0 {
		return
	}
	u := iv.units[0]
	if iv.taskParent {
		// Per-fragment units: the certificate recorded the fragment cut
		// the loop armed in; place the accesses there.
		cut := c.Threads[row].Cut
		for _, cand := range iv.units {
			if cand.cut == cut {
				u = cand
				break
			}
		}
	}
	for d := range c.Decls {
		decl := &c.Decls[d]
		a := itree.Access{Width: decl.Elem, Write: decl.Write, PC: decl.PC}
		c.DroppedAccesses(row, d, func(addr uint64) {
			a.Addr = addr
			u.insert(a)
		})
	}
}

func (ci *certInfo) certRowOf(iv *interval) int {
	if iv.certRow < len(ci.rows) && ci.rows[iv.certRow] == iv {
		return iv.certRow
	}
	return -1
}
