// Package core implements SWORD's offline data-race analysis: it recovers
// the concurrency structure of a run from the meta-data files, pairs up
// concurrent barrier intervals, streams the compressed per-thread logs to
// build one augmented red-black interval tree per interval, and compares
// trees of concurrent intervals, deciding precise overlap of strided
// access intervals with the constraint solver. Conflicting concurrent
// accesses with disjoint mutex sets, at least one write, and not both
// atomic are reported as races.
package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sword/internal/itree"
	"sword/internal/obs"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/trace"
)

// EffectiveWorkers resolves a Workers configuration value to the actual
// pool size: any non-positive value falls back to GOMAXPROCS. Every layer
// that documents a worker-count default defers to this one definition
// (Config.Workers here, sword.WithWorkers, swordoffline -workers,
// sworddist -workers — see docs/FORMAT.md "Worker-count defaults").
func EffectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Config parameterizes the offline analyzer.
type Config struct {
	// Workers bounds the parallelism of tree construction (one worker per
	// thread log, as in the paper) and of interval-pair comparison (the
	// "distributed across a cluster" mode). Non-positive means GOMAXPROCS
	// (see EffectiveWorkers — the single definition of this fallback).
	Workers int
	// PCs symbolizes race reports. When nil the analyzer loads the table
	// the collector persisted into the store, falling back to numeric ids.
	PCs *pcreg.Table
	// NoSolver replaces the precise strided-intersection decision with the
	// conservative bounding-box overlap — the ablation of Section III-B's
	// constraint solving. It may produce false positives on interleaved
	// strided accesses.
	NoSolver bool
	// NoCompact skips the post-build interval-tree compaction pass (the
	// merge step of the paper's trace summarization) — an ablation knob:
	// fragmented traces then compare with more, smaller nodes.
	NoCompact bool
	// SubtreeBatch bounds resident memory by analyzing the run in batches
	// of top-level region subtrees: each batch streams the logs again but
	// only materializes its own interval trees, which are freed before the
	// next batch — the paper's streaming discipline for terabyte traces.
	// Concurrency never crosses top-level subtrees, so results are
	// identical to the default whole-run analysis (0 = analyze everything
	// in one pass).
	SubtreeBatch int
	// NoPrefilter disables the pair pre-filter: by default, unit-level
	// summaries (bounding box, any-write, all-atomic, commonly held
	// mutexes) built alongside each run let the analyzer drop concurrent
	// unit pairs that provably cannot race before any comparison work —
	// reported as Stats.PairsPrefiltered / core.pairs_prefiltered. The
	// filter only applies facts the per-node race check enforces anyway,
	// so disabling it is a pure ablation: same races, more comparisons.
	NoPrefilter bool
	// AllRaces disables race-site suppression. By default, once a
	// (PC, PC) site pair is confirmed racy, later node pairs mapping to
	// the same report record skip the solver — they could only merge into
	// the already-reported race. AllRaces spends those extra solves so the
	// report's per-race Count reflects every detected node-pair instance.
	AllRaces bool
	// ResidentBudget bounds, in bytes of trace volume, the interval trees a
	// BatchAnalyzer keeps resident across distributed batches (LRU by
	// interval; the flattened sweep runs ride along). 0 means the 256 MiB
	// default; negative disables residency so every batch frees its trees.
	// The single-process analyzer ignores it — SubtreeBatch is its
	// memory-bounding knob.
	ResidentBudget int64
	// MemoryBudget bounds, in bytes of trace volume, how much of the run
	// the analyzer materializes at once — the per-job memory knob the
	// analysis service hands down. When SubtreeBatch is 0, the analyzer
	// derives the largest batch of top-level subtrees whose every batch
	// fits the budget (never below 1: a single subtree over budget cannot
	// split further, so peak memory degrades gracefully to the largest
	// subtree). A BatchAnalyzer seeds its ResidentBudget from it when
	// that is unset. 0 disables; an explicit SubtreeBatch wins.
	MemoryBudget int64
	// ProbeEngine selects the legacy tree-probing comparison path: each
	// node of the smaller tree probes the other tree's overlap index, and
	// every eligible pair is solved directly (no solver memo, no race-site
	// suppression). The flattened-run merge sweep is the default; the
	// probe engine is kept as the reference implementation for the
	// differential tests and A/B benchmarks.
	ProbeEngine bool
	// Salvage switches the analyzer into graceful-degradation mode for
	// damaged traces: tolerant readers recover the intact prefix of every
	// log and meta stream, intervals whose data was lost (corrupt blocks,
	// torn tails, unrecoverable structure) are quarantined, and every
	// concurrent pair whose data survived is still analyzed. The report's
	// Stats carry the coverage (intervals analyzed vs quarantined, bytes
	// salvaged vs lost) and its Notes say exactly what was lost and why.
	// Block skipping is disabled under Salvage so every payload is
	// integrity-checked even in SubtreeBatch mode.
	Salvage bool
	// Obs, when non-nil, receives the offline phase's live metrics
	// (core.* and trace.* names, see docs/FORMAT.md): per-phase wall
	// times (structure recovery, tree build, pair comparison), interval
	// pairs, solver invocations vs bounding-box fast-paths, peak
	// resident tree nodes under SubtreeBatch, and the trace volume
	// consumed. nil disables recording.
	Obs *obs.Metrics
}

// Analyzer runs the offline phase over one run's trace store.
type Analyzer struct {
	store trace.Store
	cfg   Config

	// Salvage-mode damage records, one per slot, filled by the first
	// (full-stream) pass over the logs.
	salvMu   sync.Mutex
	slotSalv map[int]*slotSalvage
}

// slotSalvage is what salvage-mode log streaming learned about one slot.
type slotSalvage struct {
	rep        *trace.SalvageReport
	logEnd     uint64      // logical end of the salvaged log stream
	truncated  bool        // stream ended before a clean block boundary
	extraLost  [][2]uint64 // CRC-clean blocks whose events failed to decode
	openFailed bool        // the log file could not even be opened
	notes      []string
}

// damaged reports whether any of the interval's fragments lost data: a
// fragment intersecting a lost logical range, or extending past the
// salvaged end of the log (data the crashed collector never wrote).
func (ss *slotSalvage) damaged(iv *interval) bool {
	if ss.openFailed {
		return true
	}
	var lost [][2]uint64
	if ss.rep != nil {
		lost = ss.rep.LostRanges()
	}
	lost = append(lost, ss.extraLost...)
	for _, f := range iv.frags {
		fEnd := f.begin + f.size
		if fEnd > ss.logEnd {
			return true
		}
		for _, lr := range lost {
			if f.begin < lr[1] && lr[0] < fEnd {
				return true
			}
		}
	}
	return false
}

// New returns an analyzer over store.
func New(store trace.Store, cfg Config) *Analyzer {
	return &Analyzer{store: store, cfg: cfg, slotSalv: make(map[int]*slotSalvage)}
}

// Analyze performs the full offline analysis and returns the race report.
func (a *Analyzer) Analyze() (*report.Report, error) {
	return a.AnalyzeContext(context.Background())
}

// loadPCs resolves the symbolization table: the configured one, the table
// the collector persisted into the store, or a fresh empty table. In
// salvage mode a damaged persisted table degrades to numeric ids with a
// note instead of failing the analysis.
func (a *Analyzer) loadPCs() (*pcreg.Table, string, error) {
	pcs := a.cfg.PCs
	if pcs != nil {
		return pcs, "", nil
	}
	aux, err := a.store.OpenAux("pctable")
	if err != nil {
		return pcreg.NewTable(), "", nil
	}
	pcs, err = pcreg.ReadTable(aux)
	aux.Close()
	if err != nil {
		if !a.cfg.Salvage {
			return nil, "", fmt.Errorf("core: read pc table: %w", err)
		}
		// A crash can tear the aux file too; symbolization is a
		// nicety, not a reason to abandon the race analysis.
		return pcreg.NewTable(),
			fmt.Sprintf("pc table damaged (%v); race sites reported as numeric ids", err), nil
	}
	return pcs, "", nil
}

// AnalyzeContext is Analyze with cancellation: the analysis aborts with
// ctx.Err() at the next block read or pair comparison once ctx is done —
// the hook distributed per-batch deadlines and swordoffline's Ctrl-C
// handling need.
func (a *Analyzer) AnalyzeContext(ctx context.Context) (*report.Report, error) {
	pcs, pcNote, err := a.loadPCs()
	if err != nil {
		return nil, err
	}
	rep := report.New()
	if pcNote != "" {
		rep.Note("%s", pcNote)
	}
	return a.analyze(ctx, newCompareEngine(a.cfg, pcs, rep), rep, nil)
}

// analyze is the batched analysis loop behind AnalyzeContext, reusable by
// the live analyzer's finalize pass: eng and rep may arrive warm (solver
// memo, confirmed race sites, races already reported during the run), and
// skip, when non-nil, drops enumerated pairs that were already compared
// live. Dropped pairs still count toward Stats.IntervalPairs, so the final
// stats describe the same pair population a pure post-mortem run reports.
func (a *Analyzer) analyze(ctx context.Context, eng *compareEngine, rep *report.Report, skip func([2]*treeUnit) bool) (*report.Report, error) {
	workers := EffectiveWorkers(a.cfg.Workers)
	m := a.cfg.Obs
	totalStart := time.Now()

	phaseStart := time.Now()
	s, err := buildStructure(a.store, a.cfg.Salvage)
	if err != nil {
		return nil, err
	}
	m.Timer("core.phase.structure").Observe(time.Since(phaseStart))

	rep.Stats.Intervals = len(s.intervals)
	rep.Stats.Regions = len(s.regions)
	m.Counter("core.intervals").Add(uint64(len(s.intervals)))
	m.Counter("core.regions").Add(uint64(len(s.regions)))

	// Batches of top-level subtrees: concurrency never crosses them, so
	// each batch is a self-contained analysis whose trees can be freed
	// afterwards.
	tops := make([]uint64, 0, len(s.topGroups))
	for id := range s.topGroups {
		tops = append(tops, id)
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i] < tops[j] })
	batch := a.cfg.SubtreeBatch
	if batch <= 0 && a.cfg.MemoryBudget > 0 {
		batch = budgetBatch(s, tops, a.cfg.MemoryBudget)
		m.Gauge("core.budget_batch").Set(int64(batch))
	}
	if batch <= 0 || batch > len(tops) {
		batch = len(tops)
	}
	firstBatch := true
	for lo := 0; lo < len(tops) || lo == 0; lo += batch {
		hi := min(lo+batch, len(tops))
		var include map[uint64]bool // nil = everything (single batch)
		if hi-lo < len(tops) {
			include = make(map[uint64]bool, hi-lo)
			for _, id := range tops[lo:hi] {
				include[id] = true
			}
		}
		// Trace-volume counters only on the first pass: every batch
		// streams the full logs again, which must not double-count.
		phaseStart = time.Now()
		if err := a.buildTrees(ctx, s, workers, include, nil, firstBatch); err != nil {
			return nil, err
		}
		m.Timer("core.phase.trees").Observe(time.Since(phaseStart))
		if a.cfg.Salvage {
			// The first pass streamed every log end to end, so the damage
			// records are complete: quarantine intervals whose data was
			// lost before any pairing or accounting sees their trees.
			a.applyQuarantine(s, rep, firstBatch)
		}
		firstBatch = false
		pairs, dropped, retired := enumeratePairs(s, include, true, !a.cfg.NoPrefilter, false)
		total := len(pairs)
		if skip != nil {
			kept := pairs[:0]
			for _, p := range pairs {
				if !skip(p) {
					kept = append(kept, p)
				}
			}
			pairs = kept
		}
		schedulePairs(pairs)
		rep.Stats.IntervalPairs += total
		rep.Stats.PairsPrefiltered += dropped
		m.Counter("core.pairs_prefiltered").Add(dropped)
		rep.Stats.PairsRetiredStatic += retired
		m.Counter("core.pairs_retired_static").Add(retired)
		batchNodes := 0
		for _, iv := range s.intervals {
			if include == nil || include[iv.region.top.id] {
				for _, u := range iv.units {
					batchNodes += u.nodeCount()
					rep.Stats.Accesses += u.accesses()
				}
			}
		}
		rep.Stats.TreeNodes += batchNodes
		m.Counter("core.batches").Inc()
		m.Counter("core.interval_pairs").Add(uint64(total))
		m.Counter("core.tree_nodes").Add(uint64(batchNodes))
		m.Gauge("core.tree_nodes_peak").SetMax(int64(batchNodes))
		phaseStart = time.Now()
		if err := comparePairs(ctx, eng, workers, pairs); err != nil {
			return nil, err
		}
		m.Timer("core.phase.compare").Observe(time.Since(phaseStart))
		if include != nil {
			// Free this batch's trees before streaming the next one.
			for _, iv := range s.intervals {
				if include[iv.region.top.id] {
					iv.resetUnits()
				}
			}
		}
		if len(tops) == 0 {
			break
		}
	}
	if a.cfg.Salvage {
		a.finishSalvage(s, rep, m)
	}
	rep.Stats.NodeComparisons = eng.comparisons.load()
	rep.Stats.SolverCalls = eng.solverCalls.load()
	rep.Stats.SolverCacheHits = eng.cacheHits.load()
	rep.Stats.SolverCacheMisses = eng.cacheMisses.load()
	rep.Stats.SitesSuppressed = eng.suppressed.load()
	m.Counter("core.accesses").Add(rep.Stats.Accesses)
	m.Counter("core.node_comparisons").Add(eng.comparisons.load())
	m.Counter("core.solver_calls").Add(eng.solverCalls.load())
	m.Counter("core.bbox_fastpath").Add(eng.bboxFast.load())
	m.Counter("core.solver_cache_hits").Add(eng.cacheHits.load())
	m.Counter("core.solver_cache_misses").Add(eng.cacheMisses.load())
	m.Counter("core.sites_suppressed").Add(eng.suppressed.load())
	m.Counter("core.races").Add(uint64(rep.Len()))
	m.Timer("core.phase.total").Observe(time.Since(totalStart))
	return rep, nil
}

// budgetBatch derives the largest SubtreeBatch whose every consecutive
// batch of top-level subtrees fits the memory budget, measured in trace
// volume — the same cost model the resident LRU and the dist batch
// sizing use. Always at least 1: a single subtree over budget cannot be
// split further, so it runs alone and peak memory degrades to the
// largest subtree rather than failing.
func budgetBatch(s *structure, tops []uint64, budget int64) int {
	vol := make(map[uint64]int64, len(tops))
	for _, iv := range s.intervals {
		vol[iv.region.top.id] += intervalBytes(iv)
	}
	prefix := make([]int64, len(tops)+1)
	for i, id := range tops {
		prefix[i+1] = prefix[i] + vol[id]
	}
	// O(n log n) overall: checking one k costs n/k chunk sums.
	for k := len(tops); k > 1; k-- {
		fits := true
		for lo := 0; lo < len(tops) && fits; lo += k {
			hi := min(lo+k, len(tops))
			fits = prefix[hi]-prefix[lo] <= budget
		}
		if fits {
			return k
		}
	}
	return 1
}

// applyQuarantine marks intervals whose data the salvage pass found
// damaged and frees any trees already built for them, so neither pairing
// nor the effort accounting sees partial data. Idempotent; the flags
// persist across SubtreeBatch batches.
func (a *Analyzer) applyQuarantine(s *structure, rep *report.Report, firstBatch bool) {
	a.salvMu.Lock()
	defer a.salvMu.Unlock()
	for slot, ivs := range s.bySlot {
		ss := a.slotSalv[slot]
		for _, iv := range ivs {
			if !iv.quarantined && ss != nil && ss.damaged(iv) {
				iv.quarantined = true
				if firstBatch {
					rep.Note("interval %+v quarantined: its log data was lost", iv.key)
				}
			}
			if iv.quarantined && iv.units != nil {
				iv.resetUnits()
			}
		}
	}
}

// finishSalvage folds the damage records into the report: coverage stats,
// notes, and the trace.* salvage metrics.
func (a *Analyzer) finishSalvage(s *structure, rep *report.Report, m *obs.Metrics) {
	for _, n := range s.notes {
		rep.Note("%s", n)
	}
	quarantined := 0
	for _, iv := range s.intervals {
		if iv.quarantined {
			quarantined++
		}
	}
	salvaged := s.metaSalvagedBytes
	var lost uint64
	corrupt := 0
	truncSlots := make(map[int]bool, len(s.truncatedMeta))
	for slot := range s.truncatedMeta {
		truncSlots[slot] = true
	}
	a.salvMu.Lock()
	for slot, ss := range a.slotSalv {
		if ss.openFailed || ss.truncated {
			truncSlots[slot] = true
		}
		if ss.rep != nil {
			corrupt += ss.rep.CorruptBlocks
			salvaged += ss.rep.SalvagedBytes
			lost += ss.rep.LostBytes
		}
		corrupt += len(ss.extraLost)
		for _, r := range ss.extraLost {
			lost += r[1] - r[0]
		}
		for _, n := range ss.notes {
			rep.Note("%s", n)
		}
	}
	a.salvMu.Unlock()
	rep.Stats.IntervalsQuarantined = quarantined
	rep.Stats.CorruptBlocks = corrupt
	rep.Stats.TruncatedSlots = len(truncSlots)
	rep.Stats.SalvagedBytes = salvaged
	rep.Stats.LostBytes = lost
	m.Counter("trace.corrupt_blocks").Add(uint64(corrupt))
	m.Counter("trace.truncated_slots").Add(uint64(len(truncSlots)))
	m.Counter("trace.salvaged_bytes").Add(salvaged)
	m.Counter("trace.lost_bytes").Add(lost)
	m.Counter("core.intervals_quarantined").Add(uint64(quarantined))
	if rep.Stats.Partial() {
		rep.Note("partial trace: %d of %d interval(s) quarantined; races hold for the surviving data only",
			quarantined, len(s.intervals))
	}
}

// recordSalvage stores one slot's damage record; called once per slot by
// the first (full-stream) pass.
func (a *Analyzer) recordSalvage(slot int, ss *slotSalvage) {
	a.salvMu.Lock()
	a.slotSalv[slot] = ss
	a.salvMu.Unlock()
}

// comparePairs drains the scheduled pairs through a pool of engine
// workers. A done ctx aborts between pairs: workers skip remaining work
// and the error returned is ctx.Err().
func comparePairs(ctx context.Context, eng *compareEngine, workers int, pairs [][2]*treeUnit) error {
	var wg sync.WaitGroup
	ch := make(chan [2]*treeUnit, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker := eng.newWorker()
			for pair := range ch {
				if ctx.Err() != nil {
					continue // drain without comparing
				}
				worker.comparePair(pair[0], pair[1])
			}
			worker.flush()
		}()
	}
send:
	for _, p := range pairs {
		select {
		case ch <- p:
		case <-ctx.Done():
			break send
		}
	}
	close(ch)
	wg.Wait()
	return ctx.Err()
}

// buildTrees streams every slot's log once, routing access events into the
// interval trees of that slot's intervals (restricted to the top-level
// subtrees in include when non-nil, and to the explicit interval set in
// only when non-nil — the distributed batch path, which also skips slots
// owning no wanted interval entirely). Each slot is processed by a single
// worker — tree construction is not shared, matching the paper's note that
// each core generates the tree of a different thread. countIO records the
// consumed trace volume into the obs registry; the caller sets it only on
// the first batch, because later batches re-stream the same logs.
func (a *Analyzer) buildTrees(ctx context.Context, s *structure, workers int, include map[uint64]bool, only map[*interval]bool, countIO bool) error {
	slots := make([]int, 0, len(s.bySlot))
	for slot := range s.bySlot {
		if only != nil {
			wanted := false
			for _, iv := range s.bySlot[slot] {
				if only[iv] {
					wanted = true
					break
				}
			}
			if !wanted {
				continue // no referenced interval lives here: skip the log
			}
		}
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	sem := make(chan struct{}, workers)
	errs := make(chan error, len(slots))
	var wg sync.WaitGroup
	for _, slot := range slots {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs <- a.buildSlotTrees(ctx, s, slot, include, only, countIO)
		}(slot)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// slotCursor walks a slot's interval fragments in log order.
type slotCursor struct {
	spans []fragSpan
	idx   int
	held  trace.MutexSet
}

type fragSpan struct {
	begin, end uint64
	iv         *interval
	unit       *treeUnit
	held       trace.MutexSet
}

func newSlotCursor(ivs []*interval, include map[uint64]bool, only map[*interval]bool, probe bool) *slotCursor {
	c := &slotCursor{}
	for _, iv := range ivs {
		included := (include == nil || include[iv.region.top.id]) &&
			(only == nil || only[iv]) && !iv.quarantined
		if included {
			iv.materializeUnits(probe)
		}
		for _, f := range iv.frags {
			unit := f.unit // nil when excluded from this batch
			if !included {
				unit = nil
			}
			c.spans = append(c.spans, fragSpan{begin: f.begin, end: f.begin + f.size, iv: iv, unit: unit, held: f.held})
		}
	}
	sort.Slice(c.spans, func(i, j int) bool { return c.spans[i].begin < c.spans[j].begin })
	return c
}

// at returns the tree unit owning logical position pos (nil when the
// position falls between fragments or outside the batch) plus whether the
// position lies inside any fragment. Positions are visited in
// nondecreasing order.
func (c *slotCursor) at(pos uint64) (*treeUnit, bool) {
	for c.idx < len(c.spans) && pos >= c.spans[c.idx].end {
		c.idx++
	}
	if c.idx >= len(c.spans) {
		return nil, false
	}
	sp := &c.spans[c.idx]
	if pos < sp.begin {
		return nil, false
	}
	if pos == sp.begin {
		c.held = sp.held // fragment entry: seed the running held set
	}
	return sp.unit, true
}

func (a *Analyzer) buildSlotTrees(ctx context.Context, s *structure, slot int, include map[uint64]bool, only map[*interval]bool, countIO bool) error {
	defer func() {
		// Finalize only the intervals this pass actually built: an excluded
		// interval may hold runs resident from an earlier batch that are
		// already finalized — sorting or rebalancing those for nothing is
		// wasted work at best.
		var builderBytes uint64
		for _, iv := range s.bySlot[slot] {
			if include != nil && !include[iv.region.top.id] {
				continue
			}
			if only != nil && !only[iv] {
				continue
			}
			if iv.cert != nil && !iv.cert.retire {
				// Voided or untrusted certificate: reconstruct the dropped
				// access prefix before the unit's runs are sorted.
				materializeCert(iv)
			}
			for _, u := range iv.units {
				builderBytes += u.finalize(!a.cfg.NoCompact)
			}
		}
		a.cfg.Obs.Counter("core.run_builder_bytes").Add(builderBytes)
	}()
	src, err := a.store.OpenLog(slot)
	if err != nil {
		if a.cfg.Salvage {
			// The whole log is gone; quarantine the slot's intervals and
			// keep analyzing everything else.
			if countIO {
				a.recordSalvage(slot, &slotSalvage{openFailed: true, notes: []string{
					fmt.Sprintf("slot %d: log unreadable (%v); all its intervals quarantined", slot, err)}})
			}
			return nil
		}
		return fmt.Errorf("core: open log %d: %w", slot, err)
	}
	lr := trace.NewLogReader(src)
	defer lr.Close()
	var ss *slotSalvage
	if a.cfg.Salvage {
		lr.SetTolerant(true)
		ss = &slotSalvage{}
	}
	cur := newSlotCursor(s.bySlot[slot], include, only, a.cfg.ProbeEngine)
	// In batched mode a block whose logical span intersects none of the
	// batch's fragments holds only data this pass would decode and throw
	// away; skip its compressed payload entirely. Blocks arrive in
	// ascending logical order, so one cursor over the wanted spans
	// suffices. The full single-pass analysis keeps decoding everything —
	// there, out-of-fragment events are a trace-integrity error the
	// decoder must see, not dead weight.
	// Under Salvage skipping is disabled: every payload must pass through
	// the integrity check so the damage records stay complete.
	var skipBlock func(start, rawLen uint64) bool
	if (include != nil || only != nil) && !a.cfg.Salvage {
		var wanted [][2]uint64
		for _, sp := range cur.spans {
			if sp.unit != nil {
				wanted = append(wanted, [2]uint64{sp.begin, sp.end})
			}
		}
		wIdx := 0
		skipBlock = func(start, rawLen uint64) bool {
			end := start + rawLen
			for wIdx < len(wanted) && wanted[wIdx][1] <= start {
				wIdx++
			}
			return wIdx >= len(wanted) || wanted[wIdx][0] >= end
		}
	}
	// The block stream is a two-stage pipeline: a reader goroutine pulls
	// blocks off the log (seek, CRC, decompress) while this goroutine
	// decodes the previous ones into the trees. Blocks flow through a
	// bounded channel in log order, so the cursor and the running mutex
	// set see positions in exactly the sequence the sequential loop did —
	// per-slot decode order is the semantic invariant; only the I/O and
	// decompression overlap it. Payloads are copied into pooled buffers
	// because the LogReader reuses its staging slice on the next read.
	blocks := make(chan blockBuf, decodePipelineDepth)
	readErr := make(chan error, 1)
	go func() {
		defer close(blocks)
		for {
			if err := ctx.Err(); err != nil {
				readErr <- err
				return
			}
			start, raw, err := lr.NextFrom(skipBlock)
			if err == io.EOF {
				readErr <- nil
				return
			}
			if err != nil {
				readErr <- fmt.Errorf("core: read log %d: %w", slot, err)
				return
			}
			bp := blockBufPool.Get().(*[]byte)
			*bp = append((*bp)[:0], raw...)
			select {
			case blocks <- blockBuf{start: start, buf: bp}:
			case <-ctx.Done():
				blockBufPool.Put(bp)
				readErr <- ctx.Err()
				return
			}
		}
	}()
	// Fatal decode errors must drain the channel before returning: the
	// deferred lr.Close must not run while the reader goroutine still
	// touches the reader, and pooled buffers in flight would leak.
	drain := func() {
		for bb := range blocks {
			blockBufPool.Put(bb.buf)
		}
		<-readErr
	}
	var dec trace.Decoder
	var ev trace.Event
	var events uint64
	maxDepth := 0
	for bb := range blocks {
		if d := len(blocks) + 1; d > maxDepth {
			maxDepth = d
		}
		start, raw := bb.start, *bb.buf
		dec.Reset(raw)
		for dec.More() {
			pos := start + uint64(dec.Pos())
			if err := dec.Next(&ev); err != nil {
				if ss != nil {
					// The block passed its CRC but the event stream inside
					// is malformed: write the rest of the block off as lost
					// and resync at the next block boundary.
					end := start + uint64(len(raw))
					ss.extraLost = append(ss.extraLost, [2]uint64{pos, end})
					ss.notes = append(ss.notes,
						fmt.Sprintf("slot %d: undecodable events in [%d, %d): %v", slot, pos, end, err))
					break
				}
				blockBufPool.Put(bb.buf)
				drain()
				return fmt.Errorf("core: decode log %d at %d: %w", slot, pos, err)
			}
			events++
			unit, inside := cur.at(pos)
			switch ev.Kind {
			case trace.KindMutexAcquire:
				cur.held = cur.held.With(ev.Mutex)
			case trace.KindMutexRelease:
				cur.held = cur.held.Without(ev.Mutex)
			case trace.KindAccess:
				if !inside {
					if ss != nil {
						// Its interval's meta record was lost with a damaged
						// stream; the access has no home, drop it.
						continue
					}
					blockBufPool.Put(bb.buf)
					drain()
					return fmt.Errorf("core: slot %d access at %d outside any interval fragment", slot, pos)
				}
				if unit == nil {
					continue // outside this batch: decode but do not build
				}
				unit.insert(itree.Access{
					Addr:    ev.Addr,
					Width:   uint64(ev.Size),
					Write:   ev.Write,
					Atomic:  ev.Atomic,
					PC:      ev.PC,
					Mutexes: cur.held,
				})
			}
		}
		blockBufPool.Put(bb.buf)
	}
	if err := <-readErr; err != nil {
		return err
	}
	// End of stream: the reader goroutine is done, so the LogReader's
	// totals and salvage report are stable.
	if ss != nil && countIO {
		srep := lr.Salvage()
		ss.rep = srep
		ss.logEnd = lr.RawBytes()
		ss.truncated = srep.Truncated
		if !srep.Clean() {
			ss.notes = append(ss.notes, fmt.Sprintf("slot %d: log damaged: %s", slot, srep))
		}
		a.recordSalvage(slot, ss)
	}
	if m := a.cfg.Obs; m != nil {
		if countIO {
			m.Counter("trace.events").Add(events)
			m.Counter("trace.blocks").Add(lr.Blocks())
			m.Counter("trace.raw_bytes").Add(lr.RawBytes())
			m.Counter("trace.compressed_bytes").Add(lr.CompressedBytes())
		}
		// Skip totals accumulate across every batch: they measure
		// the decompression work the fast path avoided, which is
		// exactly the cost batched re-streaming would otherwise
		// multiply.
		m.Counter("trace.blocks_skipped").Add(lr.BlocksSkipped())
		m.Counter("trace.skipped_bytes").Add(lr.SkippedBytes())
		m.Gauge("trace.decode_pipeline_depth").SetMax(int64(maxDepth))
	}
	return nil
}

// blockBuf carries one decompressed block from the log-reading stage to
// the decoding stage of the per-slot build pipeline.
type blockBuf struct {
	start uint64  // logical position of the block's first event byte
	buf   *[]byte // pooled payload copy; returned to blockBufPool after decode
}

// decodePipelineDepth bounds how many decompressed blocks the reading
// stage may run ahead of the decoder — enough to hide I/O and
// decompression latency, small enough to keep per-slot staging memory
// bounded (depth × block size).
const decodePipelineDepth = 4

var blockBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256<<10)
	return &b
}}

// enumeratePairs lists every pair of concurrent tree units. Same-region
// intervals pair within a barrier id; cross-region concurrency only arises
// inside one top-level region's subtree (top-level regions are forked in
// program order by the initial thread), which keeps enumeration linear for
// the common flat codes. Intervals that spawn tasks contribute one unit
// per fragment, filtered against the tasks' concurrency windows.
//
// skipEmpty drops pairs where either unit holds no accesses — the
// in-process path, which enumerates after building runs. The distributed
// planner enumerates from structure alone (no runs exist yet) and passes
// false, accepting some empty work units in exchange for never touching
// the logs on the coordinator.
//
// prefilter additionally drops pairs whose unit summaries prove no node
// pair can race (see summariesMayRace); the count of pairs so dropped is
// returned for Stats.PairsPrefiltered. It only takes effect on units with
// finalized builder summaries, so the probe-engine and planner paths are
// naturally unaffected.
//
// Pairs whose two units are covered by the same trusted CLEAN loop
// certificate are retired before any other consideration — the runtime
// proved their accesses disjoint before dropping them, and the analyzer
// re-verified the certificate's structural position (cert.go). The count
// of distinct pairs so retired is the third return, for
// Stats.PairsRetiredStatic.
//
// planning switches the retirement residue check from node counts to
// fragment byte volumes: the distributed planner enumerates before any
// tree exists, where nodeCount() is trivially zero for every unit and
// would retire cert-covered pairs that still hold recorded accesses
// outside the certified loop — pairs the in-process analyzer compares.
// Byte volume comes from the meta files alone, so the planner retires
// exactly the pair classes whose accesses were all dropped at collection.
func enumeratePairs(s *structure, include map[uint64]bool, skipEmpty, prefilter, planning bool) ([][2]*treeUnit, uint64, uint64) {
	// Same-region pairs, grouped by (pid, bid).
	type groupKey struct{ pid, bid uint64 }
	groups := make(map[groupKey][]*interval)
	byRegion := make(map[uint64][]*interval)
	for _, iv := range s.intervals {
		if iv.quarantined {
			continue // salvage: the interval's data did not survive
		}
		if include != nil && !include[iv.region.top.id] {
			continue
		}
		groups[groupKey{iv.key.PID, iv.key.BID}] = append(groups[groupKey{iv.key.PID, iv.key.BID}], iv)
		byRegion[iv.key.PID] = append(byRegion[iv.key.PID], iv)
	}
	// Pre-size from the per-group unit counts: same-region pairing
	// dominates, contributing Σ_{i<j} u_i·u_j = (U² − Σu_i²)/2 candidates
	// per group. Cross-region pairs come on top; the maps simply grow then.
	est := 0
	for _, g := range groups {
		sumU, sumSq := 0, 0
		for _, iv := range g {
			u := len(iv.units)
			sumU += u
			sumSq += u * u
		}
		est += (sumU*sumU - sumSq) / 2
	}
	pairs := make([][2]*treeUnit, 0, est)
	seen := make(map[[2]*treeUnit]struct{}, est)
	var prefiltered, retired uint64
	addUnits := func(x, y *treeUnit) {
		// Certificate retirement first, so the retired count reflects every
		// pair class the static proof killed — including the ones the
		// empty-unit skip would have caught for free (a trusted clean
		// certificate's units are empty precisely because collection
		// dropped everything). The nodeCount guard is defense in depth: if
		// a unit somehow holds content, the pair falls through to a real
		// comparison instead of being skipped on the proof alone.
		emptyX, emptyY := x.nodeCount() == 0, y.nodeCount() == 0
		if planning {
			emptyX, emptyY = unitBytes(x) == 0, unitBytes(y) == 0
		}
		if ci := x.iv.cert; ci != nil && ci.retire && y.iv.cert == ci &&
			emptyX && emptyY {
			k := [2]*treeUnit{x, y}
			if lessKey(y.iv.key, x.iv.key) || (x.iv.key == y.iv.key && y.cut < x.cut) {
				k = [2]*treeUnit{y, x}
			}
			before := len(seen)
			seen[k] = struct{}{}
			if len(seen) != before {
				retired++
			}
			return
		}
		if skipEmpty && (x.nodeCount() == 0 || y.nodeCount() == 0) {
			return
		}
		k := [2]*treeUnit{x, y}
		if lessKey(y.iv.key, x.iv.key) || (x.iv.key == y.iv.key && y.cut < x.cut) {
			k = [2]*treeUnit{y, x}
		}
		// One map operation per candidate: the insert's effect on len
		// doubles as the membership probe. Pre-filtered pairs enter the
		// map too, so each distinct dropped pair counts exactly once.
		before := len(seen)
		seen[k] = struct{}{}
		if len(seen) == before {
			return
		}
		if prefilter && x.hasSum && y.hasSum && !summariesMayRace(&x.sum, &y.sum) {
			prefiltered++
			return
		}
		pairs = append(pairs, k)
	}
	// add pairs every unit of x with every unit of y.
	add := func(x, y *interval) {
		for _, ux := range x.units {
			for _, uy := range y.units {
				addUnits(ux, uy)
			}
		}
	}
	// addWindow pairs only x's units inside [lo, hi) with all of y's.
	addWindow := func(x *interval, lo, hi uint64, y *interval) {
		for _, ux := range x.units {
			if ux.cut < lo || ux.cut >= hi {
				continue
			}
			for _, uy := range y.units {
				addUnits(ux, uy)
			}
		}
	}
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i].key.TID < g[j].key.TID })
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				add(g[i], g[j])
			}
		}
	}

	// Cross-region pairs within each top-level subtree.
	for topID, regions := range s.topGroups {
		if len(regions) < 2 {
			continue
		}
		if include != nil && !include[topID] {
			continue
		}
		for i := 0; i < len(regions); i++ {
			for j := i + 1; j < len(regions); j++ {
				crossRegionPairs(regions[i], regions[j], byRegion, add, addWindow)
			}
		}
	}
	// Canonical order: schedulePairs sorts by descending cost with a
	// stable sort, so this is the deterministic tie-break.
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a[0].iv.key != b[0].iv.key {
			return lessKey(a[0].iv.key, b[0].iv.key)
		}
		if a[0].cut != b[0].cut {
			return a[0].cut < b[0].cut
		}
		if a[1].iv.key != b[1].iv.key {
			return lessKey(a[1].iv.key, b[1].iv.key)
		}
		return a[1].cut < b[1].cut
	})
	return pairs, prefiltered, retired
}

// summariesMayRace decides from two unit summaries alone whether any node
// pair across the units could be reported as a race. Each clause is the
// unit-level aggregate of a per-node filter the comparison engine applies
// anyway — a race needs at least one write, not both sides atomic, no
// commonly held mutex, and overlapping addresses — so a false return
// proves every node pair would be rejected and the comparison can be
// skipped without changing the race set.
func summariesMayRace(a, b *itree.Summary) bool {
	switch {
	case !a.AnyWrite && !b.AnyWrite:
		return false // read-only on both sides
	case a.AllAtomic && b.AllAtomic:
		return false // every cross pair is atomic-atomic
	case a.CommonMutexes.Intersects(b.CommonMutexes):
		return false // a mutex held across every access of both units
	case a.High < b.Low || b.High < a.Low:
		return false // disjoint bounding boxes
	}
	return true
}

func lessKey(a, b trace.IntervalKey) bool {
	if a.PID != b.PID {
		return a.PID < b.PID
	}
	if a.BID != b.BID {
		return a.BID < b.BID
	}
	return a.TID < b.TID
}

// crossRegionPairs emits the concurrent unit pairs across two distinct
// regions of the same top-level subtree. The chains' divergence point
// decides concurrency uniformly except in two cases: sibling subtrees
// hanging off the same interval compare their spawn windows (tasks may
// overlap; sync regions are serialized), and an ancestor's own interval
// races with a descendant task subtree exactly within the task's
// [forkCut, waitCut) window.
func crossRegionPairs(r1, r2 *region, byRegion map[uint64][]*interval,
	add func(x, y *interval), addWindow func(x *interval, lo, hi uint64, y *interval)) {
	f1, f2 := r1.frames, r2.frames
	n := min(len(f1), len(f2))
	for i := 0; i < n; i++ {
		x, y := f1[i], f2[i]
		if x == y {
			continue
		}
		concurrent := false
		switch {
		case x.tid != y.tid:
			concurrent = x.bid == y.bid
		case x.bid != y.bid:
			concurrent = false
		default:
			// Sibling subtrees under one interval: window overlap.
			concurrent = windowsOverlap(x, y)
		}
		if concurrent {
			for _, ix := range byRegion[r1.id] {
				for _, iy := range byRegion[r2.id] {
					add(ix, iy)
				}
			}
		}
		return
	}
	// Ancestor relationship: wlog r1 is the ancestor (shorter chain).
	anc, desc := r1, r2
	if len(f1) > len(f2) {
		anc, desc = r2, r1
	}
	fork := desc.frames[len(anc.frames)]
	for _, x := range byRegion[anc.id] {
		if x.key.BID != fork.bid {
			continue // barrier-separated from the subtree's spawn interval
		}
		if x.key.TID != fork.tid {
			// Another thread's interval of the same episode: fully
			// concurrent with the subtree.
			for _, y := range byRegion[desc.id] {
				add(x, y)
			}
			continue
		}
		if fork.async {
			// The spawner's own interval: concurrent exactly within the
			// task's window.
			for _, y := range byRegion[desc.id] {
				addWindow(x, fork.forkCut, fork.waitCut, y)
			}
		}
	}
}

func side(n *itree.Run, pcs *pcreg.Table) report.Side {
	return report.Side{PC: n.PC, Source: pcs.Name(n.PC), Write: n.Write, Atomic: n.Atomic}
}

// atomicCounter counts analysis effort across comparison workers.
type atomicCounter struct{ atomic.Uint64 }

func (c *atomicCounter) add(n uint64) { c.Add(n) }

func (c *atomicCounter) load() uint64 { return c.Load() }
