package core

import (
	"sort"
	"sync"

	"sword/internal/ilp"
	"sword/internal/itree"
	"sword/internal/pcreg"
	"sword/internal/report"
)

// This file is the pair-comparison engine: how two concurrent tree units
// are compared once enumeratePairs has listed them. Three mechanisms stack
// on top of the basic bbox-overlap + race-filter + solver pipeline:
//
//   - Sweep: each unit's tree is flattened once into a Low-sorted run
//     (cached on the unit, reused by every pair it joins, freed with the
//     batch), and two runs are merged with an active-set window. Every
//     bbox-overlapping node pair is emitted exactly once, in O(n + m + k)
//     pointer steps instead of O(n·(log m + k)) tree probes per pair.
//   - Solver memo: ilp.Intersect depends only on the two strides, counts,
//     widths, and the signed base difference — a common translation of
//     both progressions changes nothing. Strided loops repeat the same
//     offset-normalized shape across thousands of node pairs, so the
//     verdict (and a translatable witness) is cached per worker with a
//     sharded global spill behind it.
//   - Race-site suppression: report dedup merges every further detection
//     of a confirmed (PC, PC, write, write) site pair into one record, so
//     once the pair is known racy, later node pairs mapping to it skip
//     the solver entirely (Config.AllRaces disables this to count every
//     instance).
//
// The legacy probing engine (Config.ProbeEngine) is kept verbatim as the
// reference implementation for differential tests and A/B benchmarks.

// compareEngine is the state shared by all comparison workers of one
// Analyze run. It spans SubtreeBatch batches on purpose: memoized shapes
// and confirmed race sites keep paying off across batches.
type compareEngine struct {
	pcs      *pcreg.Table
	rep      *report.Report
	noSolver bool
	allRaces bool
	probe    bool

	memo  solverMemo
	sites sync.Map // raceSite -> struct{}: confirmed racy, solver skipped

	comparisons, solverCalls, bboxFast atomicCounter
	cacheHits, cacheMisses, suppressed atomicCounter
}

func newCompareEngine(cfg Config, pcs *pcreg.Table, rep *report.Report) *compareEngine {
	return &compareEngine{
		pcs:      pcs,
		rep:      rep,
		noSolver: cfg.NoSolver,
		allRaces: cfg.AllRaces,
		probe:    cfg.ProbeEngine,
	}
}

// engineWorker is one comparison worker's private view of the engine: a
// local memo layer in front of the sharded global one, reusable active-set
// scratch, and local effort counters flushed once when the worker drains.
type engineWorker struct {
	e          *compareEngine
	local      map[solverKey]solverResult
	actA, actB []*itree.Run

	comps, solves, bbox uint64
	hits, misses, suppd uint64
}

func (e *compareEngine) newWorker() *engineWorker {
	return &engineWorker{e: e, local: make(map[solverKey]solverResult)}
}

// setReport swaps the report the comparison workers feed. The distributed
// BatchAnalyzer gives every batch a fresh report while the engine's solver
// memo and confirmed race sites stay warm across batches. Callers must not
// swap while a comparePairs pool is running.
func (e *compareEngine) setReport(rep *report.Report) { e.rep = rep }

// setPCs swaps the symbolization table. The live analyzer starts with an
// empty table (the collector persists the real one only at Close) and
// installs the persisted table at finalize, resymbolizing the races
// reported so far. Callers must not swap while a comparePairs pool runs.
func (e *compareEngine) setPCs(pcs *pcreg.Table) { e.pcs = pcs }

// engineCounters is a point-in-time copy of the engine's effort counters;
// distributed batches subtract two snapshots to report per-batch deltas.
type engineCounters struct {
	comparisons, solverCalls, bboxFast uint64
	cacheHits, cacheMisses, suppressed uint64
}

func (e *compareEngine) snapshot() engineCounters {
	return engineCounters{
		comparisons: e.comparisons.load(),
		solverCalls: e.solverCalls.load(),
		bboxFast:    e.bboxFast.load(),
		cacheHits:   e.cacheHits.load(),
		cacheMisses: e.cacheMisses.load(),
		suppressed:  e.suppressed.load(),
	}
}

// flush folds the worker's counters into the engine; called once per
// worker after the pair channel drains.
func (w *engineWorker) flush() {
	w.e.comparisons.add(w.comps)
	w.e.solverCalls.add(w.solves)
	w.e.bboxFast.add(w.bbox)
	w.e.cacheHits.add(w.hits)
	w.e.cacheMisses.add(w.misses)
	w.e.suppressed.add(w.suppd)
}

// comparePair reports races between two concurrent tree units.
func (w *engineWorker) comparePair(a, b *treeUnit) {
	if w.e.probe {
		w.probePair(a, b)
		return
	}
	ra, rb := a.run(), b.run()
	// Merge sweep: advance both Low-sorted runs together. An arriving node
	// meets exactly the opposite side's still-open intervals (Low already
	// passed, last byte not yet behind the sweep line), so each
	// bbox-overlapping pair is emitted exactly once — ties on Low are
	// broken by always taking the a side first.
	actA, actB := w.actA[:0], w.actB[:0]
	i, j := 0, 0
	for i < len(ra) || j < len(rb) {
		if j >= len(rb) || (i < len(ra) && ra[i].Low <= rb[j].Low) {
			if j >= len(rb) && len(actB) == 0 {
				break // nothing left for the a side to meet
			}
			n := &ra[i]
			i++
			actB = expire(actB, n.Low)
			for _, m := range actB {
				w.check(n, m)
			}
			actA = append(actA, n)
		} else {
			if i >= len(ra) && len(actA) == 0 {
				break
			}
			m := &rb[j]
			j++
			actA = expire(actA, m.Low)
			for _, n := range actA {
				w.check(n, m)
			}
			actB = append(actB, m)
		}
	}
	w.actA, w.actB = actA[:0], actB[:0]
}

// expire drops active intervals whose last byte lies before low,
// compacting in place so the scratch slice is reused across sweep steps.
func expire(act []*itree.Run, low uint64) []*itree.Run {
	kept := act[:0]
	for _, n := range act {
		if n.LastByte() >= low {
			kept = append(kept, n)
		}
	}
	return kept
}

// check applies the race conditions of Section III-B to one overlapping
// node pair: at least one write, not both atomic, disjoint mutex sets, and
// a genuinely shared byte — the last decided through suppression and the
// solver memo.
func (w *engineWorker) check(na, nb *itree.Run) {
	w.comps++
	if !na.Write && !nb.Write {
		return
	}
	if na.Atomic && nb.Atomic {
		return
	}
	if na.Mutexes.Intersects(nb.Mutexes) {
		return
	}
	if w.e.noSolver {
		w.bbox++
		w.reportRace(na, nb, max(na.Low, nb.Low))
		return
	}
	site := newRaceSite(na, nb)
	if !w.e.allRaces {
		if _, done := w.e.sites.Load(site); done {
			w.suppd++
			return
		}
	}
	addr, ok := w.intersect(na.Progression(), nb.Progression())
	if !ok {
		return
	}
	if !w.e.allRaces {
		w.e.sites.Store(site, struct{}{})
	}
	w.reportRace(na, nb, addr)
}

func (w *engineWorker) reportRace(na, nb *itree.Run, addr uint64) {
	w.e.rep.Add(report.Race{
		First:  side(na, w.e.pcs),
		Second: side(nb, w.e.pcs),
		Addr:   addr,
	})
}

// probePair is the legacy comparison path: probe each node of the smaller
// tree against the other tree's overlap index, one direct solver call per
// eligible pair, no memo and no suppression.
func (w *engineWorker) probePair(a, b *treeUnit) {
	ta, tb := &a.tree, &b.tree
	if ta.Len() > tb.Len() {
		ta, tb = tb, ta
	}
	ta.Visit(func(na *itree.Node) bool {
		tb.VisitOverlaps(na.Low, na.LastByte(), func(nb *itree.Node) bool {
			w.comps++
			if addr, ok := w.rawRace(&na.Run, &nb.Run); ok {
				w.reportRace(&na.Run, &nb.Run, addr)
			}
			return true
		})
		return true
	})
}

// rawRace applies the race filters and decides shared-byte overlap with a
// direct solver call, threading the witness address out of that single
// solve.
func (w *engineWorker) rawRace(na, nb *itree.Run) (uint64, bool) {
	if !na.Write && !nb.Write {
		return 0, false
	}
	if na.Atomic && nb.Atomic {
		return 0, false
	}
	if na.Mutexes.Intersects(nb.Mutexes) {
		return 0, false
	}
	if w.e.noSolver {
		w.bbox++
		return max(na.Low, nb.Low), true // bounding boxes already overlap
	}
	w.solves++
	return ilp.Intersect(na.Progression(), nb.Progression())
}

// raceSite identifies a race record exactly as report dedup does: the
// unordered (PC, PC) pair plus each side's write bit. Node pairs mapping
// to an already-confirmed site could only merge into the existing record,
// so suppression on this key never changes the set of reported races.
type raceSite struct {
	pcA, pcB uint64
	wA, wB   bool
}

func newRaceSite(na, nb *itree.Run) raceSite {
	a, b := na, nb
	if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
		a, b = b, a
	}
	return raceSite{pcA: a.PC, pcB: b.PC, wA: a.Write, wB: b.Write}
}

// solverKey is the offset-normalized shape of a progression pair:
// everything Intersect's verdict depends on, with the absolute position
// reduced to the signed base difference. The pair is stored in canonical
// orientation (intersection is symmetric) so both call orders share one
// entry.
type solverKey struct {
	strideA, countA, widthA uint64
	strideB, countB, widthB uint64
	baseDelta               int64 // second base minus first base
}

// solverResult caches a verdict with the witness stored relative to the
// first progression's base, so one entry serves every translated
// occurrence of the shape.
type solverResult struct {
	off uint64
	ok  bool
}

// shapeLess orders progressions by their translation-invariant fields.
func shapeLess(a, b ilp.Progression) bool {
	if a.Stride != b.Stride {
		return a.Stride < b.Stride
	}
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Width < b.Width
}

// intersect is the memoized ilp.Intersect: local layer first, then the
// sharded global spill, then one real solve whose result feeds both.
func (w *engineWorker) intersect(pa, pb ilp.Progression) (uint64, bool) {
	pa, pb = pa.Normalized(), pb.Normalized()
	first, second := pa, pb
	if shapeLess(pb, pa) || (!shapeLess(pa, pb) && pb.Base < pa.Base) {
		first, second = pb, pa
	}
	k := solverKey{
		strideA: first.Stride, countA: first.Count, widthA: first.Width,
		strideB: second.Stride, countB: second.Count, widthB: second.Width,
		baseDelta: int64(second.Base) - int64(first.Base),
	}
	if r, ok := w.local[k]; ok {
		w.hits++
		return first.Base + r.off, r.ok
	}
	if r, ok := w.e.memo.lookup(k); ok {
		w.local[k] = r
		w.hits++
		return first.Base + r.off, r.ok
	}
	w.misses++
	w.solves++
	wit, ok := ilp.Intersect(first, second)
	r := solverResult{ok: ok}
	if ok {
		r.off = wit - first.Base
	}
	w.local[k] = r
	w.e.memo.store(k, r)
	return wit, ok
}

const memoShards = 32

// solverMemo is the sharded global spill behind each worker's private memo
// layer: a shape solved by one worker becomes a hit for every other, and
// for every later SubtreeBatch batch.
type solverMemo struct {
	shards [memoShards]memoShard
}

type memoShard struct {
	mu sync.Mutex
	m  map[solverKey]solverResult
}

func (s *solverMemo) shard(k solverKey) *memoShard {
	// FNV-1a over the key's fields; the shard count only needs the hash to
	// spread contention, not to be cryptographic.
	h := uint64(14695981039346656037)
	for _, v := range [...]uint64{k.strideA, k.countA, k.widthA, k.strideB, k.countB, k.widthB, uint64(k.baseDelta)} {
		h ^= v
		h *= 1099511628211
	}
	return &s.shards[h%memoShards]
}

func (s *solverMemo) lookup(k solverKey) (solverResult, bool) {
	sh := s.shard(k)
	sh.mu.Lock()
	r, ok := sh.m[k]
	sh.mu.Unlock()
	return r, ok
}

func (s *solverMemo) store(k solverKey, r solverResult) {
	sh := s.shard(k)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[solverKey]solverResult)
	}
	sh.m[k] = r
	sh.mu.Unlock()
}

// schedulePairs orders pairs by descending estimated cost — the product of
// the two run lengths, the sweep's work bound — so the worker pool digests
// heavy pairs first and stays balanced on skewed workloads. The stable
// sort keeps the canonical enumeration order on ties, preserving
// deterministic scheduling.
func schedulePairs(pairs [][2]*treeUnit) {
	sort.SliceStable(pairs, func(i, j int) bool {
		return pairCost(pairs[i]) > pairCost(pairs[j])
	})
}

func pairCost(p [2]*treeUnit) uint64 {
	return uint64(p[0].nodeCount()) * uint64(p[1].nodeCount())
}
