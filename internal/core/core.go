package core
