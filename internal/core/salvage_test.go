package core

import (
	"sort"
	"testing"

	"sword/internal/compress"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
)

// racyWorkload runs a two-thread region where both threads write the whole
// array every round: every barrier interval pair carries the same
// write-write race, and rounds scales the trace volume (the log writer
// buffers 64 KiB, so crash tests need enough rounds to reach the store
// mid-run).
func racyWorkload(t *testing.T, store trace.Store, rounds int) error {
	t.Helper()
	col := rt.New(store, rt.Config{Synchronous: true, MaxEvents: 128, Codec: compress.Raw{}})
	pc := pcreg.Site("salvage-test:ww")
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(64)
	rtm.Parallel(2, func(th *omp.Thread) {
		for round := 0; round < rounds; round++ {
			for i := 0; i < 64; i++ {
				th.StoreF64(arr, i, float64(i), pc)
			}
			th.Barrier()
		}
	})
	return col.Close()
}

// raceSites normalizes a report to its distinct (pc, pc, write, write)
// pairs, the identity that survives a lost pc table.
func raceSites(rep *report.Report) [][4]uint64 {
	var out [][4]uint64
	for _, r := range rep.Races() {
		a, b := r.First, r.Second
		if a.PC > b.PC {
			a, b = b, a
		}
		k := [4]uint64{a.PC, b.PC, 0, 0}
		if a.Write {
			k[2] = 1
		}
		if b.Write {
			k[3] = 1
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		for x := 0; x < 4; x++ {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}

func sitesEqual(a, b [][4]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSalvageCrashMidRun is the end-to-end crash simulation of the issue's
// acceptance criteria: the store dies mid-run (global byte budget runs out,
// final write torn), and salvage-mode analysis of the wreckage must recover
// the intact prefix of every slot, analyze the surviving interval pairs,
// and report the same races the uncorrupted run reports.
func TestSalvageCrashMidRun(t *testing.T) {
	clean := trace.NewMemStore()
	if err := racyWorkload(t, clean, 400); err != nil {
		t.Fatal(err)
	}
	cleanRep, err := New(clean, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if cleanRep.Len() == 0 {
		t.Fatal("clean run found no races; workload broken")
	}

	crashed := trace.NewMemStore()
	fs := trace.NewFaultStore(crashed)
	fs.FailWritesAfter(96<<10, nil) // the disk fills a couple of flushes in
	fs.SetTornWrites(true)
	if err := racyWorkload(t, fs, 400); err == nil {
		t.Fatal("collector reported no error despite the dying store")
	}

	metrics := obs.New()
	salvRep, err := New(crashed, Config{Salvage: true, Obs: metrics}).Analyze()
	if err != nil {
		t.Fatalf("salvage analysis failed: %v", err)
	}
	st := salvRep.Stats
	if !st.Partial() {
		t.Fatalf("crashed trace not reported partial: %+v", st)
	}
	if st.IntervalsQuarantined == 0 {
		t.Fatalf("no intervals quarantined: %+v", st)
	}
	if st.IntervalsQuarantined >= st.Intervals {
		t.Fatalf("everything quarantined, nothing salvaged: %+v", st)
	}
	if st.SalvagedBytes == 0 {
		t.Fatalf("no bytes salvaged: %+v", st)
	}
	if len(salvRep.Notes()) == 0 {
		t.Fatal("salvage report carries no notes")
	}
	if got, want := raceSites(salvRep), raceSites(cleanRep); !sitesEqual(got, want) {
		t.Fatalf("salvaged races %v differ from clean run %v\nsalvage report:\n%s", got, want, salvRep)
	}
	snap := metrics.Snapshot()
	if snap.Value("trace.truncated_slots") == 0 {
		t.Fatal("trace.truncated_slots not counted")
	}
	if snap.Value("core.intervals_quarantined") == 0 {
		t.Fatal("core.intervals_quarantined not counted")
	}
}

// TestSalvageCorruptBlock flips one byte in the middle of a slot's log:
// strict analysis must fail, salvage analysis must quarantine only the
// damaged data and still report the races of the healthy remainder.
func TestSalvageCorruptBlock(t *testing.T) {
	mem := trace.NewMemStore()
	if err := racyWorkload(t, mem, 40); err != nil {
		t.Fatal(err)
	}
	cleanRep, err := New(mem, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}

	fs := trace.NewFaultStore(mem)
	fs.SetMutateRead(func(name string, data []byte) []byte {
		if name != "log:0" {
			return data
		}
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0xFF
		return flipped
	})

	if _, err := New(fs, Config{}).Analyze(); err == nil {
		t.Fatal("strict analysis succeeded on a corrupt log")
	}

	salvRep, err := New(fs, Config{Salvage: true}).Analyze()
	if err != nil {
		t.Fatalf("salvage analysis failed: %v", err)
	}
	st := salvRep.Stats
	if !st.Partial() {
		t.Fatalf("corrupt trace not reported partial: %+v", st)
	}
	if st.IntervalsQuarantined == 0 || st.IntervalsQuarantined >= st.Intervals {
		t.Fatalf("quarantine off the mark: %+v", st)
	}
	if salvRep.Len() == 0 {
		t.Fatalf("no races recovered from the healthy remainder:\n%s", salvRep)
	}
	if got, want := raceSites(salvRep), raceSites(cleanRep); !sitesEqual(got, want) {
		t.Fatalf("salvaged races %v differ from clean run %v", got, want)
	}
}

// TestSalvageTornMeta truncates one slot's meta stream: the intervals whose
// records were lost are quarantined (their log events have no home and are
// dropped), everything else still analyzes.
func TestSalvageTornMeta(t *testing.T) {
	mem := trace.NewMemStore()
	if err := racyWorkload(t, mem, 40); err != nil {
		t.Fatal(err)
	}
	fs := trace.NewFaultStore(mem)
	fs.SetMutateRead(func(name string, data []byte) []byte {
		if name != "meta:0" {
			return data
		}
		return data[:len(data)/2]
	})

	salvRep, err := New(fs, Config{Salvage: true}).Analyze()
	if err != nil {
		t.Fatalf("salvage analysis failed: %v", err)
	}
	st := salvRep.Stats
	if st.TruncatedSlots == 0 {
		t.Fatalf("torn meta not counted as a truncated slot: %+v", st)
	}
	if !st.Partial() {
		t.Fatalf("torn meta not reported partial: %+v", st)
	}
	if salvRep.Len() == 0 {
		t.Fatalf("no races recovered despite slot 1 being intact:\n%s", salvRep)
	}
}

// TestSalvageCleanTrace pins the no-damage invariant: on an intact trace,
// salvage mode returns exactly the strict-mode result and reports nothing
// partial.
func TestSalvageCleanTrace(t *testing.T) {
	mem := trace.NewMemStore()
	if err := racyWorkload(t, mem, 40); err != nil {
		t.Fatal(err)
	}
	strict, err := New(mem, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	salv, err := New(mem, Config{Salvage: true}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if salv.Stats.Partial() {
		t.Fatalf("clean trace reported partial: %+v", salv.Stats)
	}
	if salv.Stats.IntervalsQuarantined != 0 {
		t.Fatalf("quarantined intervals on a clean trace: %+v", salv.Stats)
	}
	if !sitesEqual(raceSites(salv), raceSites(strict)) {
		t.Fatalf("salvage races differ from strict on a clean trace:\nstrict:\n%s\nsalvage:\n%s", strict, salv)
	}
	// Salvage must also compose with the streaming batches.
	batched, err := New(mem, Config{Salvage: true, SubtreeBatch: 1}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !sitesEqual(raceSites(batched), raceSites(strict)) {
		t.Fatal("salvage + SubtreeBatch diverges from strict analysis")
	}
}
