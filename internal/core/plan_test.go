package core

import (
	"context"
	"fmt"
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/rt"
	"sword/internal/trace"
)

// collectStore runs program under the collector and returns its store.
func collectStore(t *testing.T, program func(rtm *omp.Runtime, space *memsim.Space)) trace.Store {
	t.Helper()
	store := trace.NewMemStore()
	col := rt.New(store, rt.Config{Synchronous: true})
	rtm := omp.New(omp.WithTool(col))
	program(rtm, memsim.NewSpace(nil))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

// raceKeys keys a report's races the way dedup does: unordered PC pair
// plus write bits. Per-race Count and witness Addr legitimately vary with
// scheduling, the race set must not.
func raceKeys(rep *report.Report) map[string]bool {
	out := make(map[string]bool)
	for _, r := range rep.Races() {
		a, b := r.First, r.Second
		if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
			a, b = b, a
		}
		out[fmt.Sprintf("%x|%x|%v|%v", a.PC, b.PC, a.Write, b.Write)] = true
	}
	return out
}

// planPrograms are the differential workloads: flat parallel regions,
// multiple top-level regions, and tasking (per-fragment units).
var planPrograms = map[string]func(rtm *omp.Runtime, space *memsim.Space){
	"flat-racy": func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(8)
		pcW := pcreg.Site("plan:flat-write")
		rtm.Parallel(4, func(th *omp.Thread) {
			for round := 0; round < 3; round++ {
				th.StoreF64(x, round, float64(th.ID()), pcW)
				th.Barrier()
			}
		})
	},
	"multi-region": func(rtm *omp.Runtime, space *memsim.Space) {
		shared, _ := space.AllocF64(16)
		arr, _ := space.AllocF64(128)
		pcR := pcreg.Site("plan:region-race")
		pcC := pcreg.Site("plan:region-clean")
		rtm.Run(func(initial *omp.Thread) {
			for reg := 0; reg < 4; reg++ {
				reg := reg
				initial.Parallel(3, func(th *omp.Thread) {
					if reg == 2 {
						th.StoreF64(shared, 0, 1, pcR)
					} else {
						th.For(0, 128, func(i int) {
							th.StoreF64(arr, i, float64(reg), pcC)
						})
					}
				})
			}
		})
	},
	"tasking": func(rtm *omp.Runtime, space *memsim.Space) {
		x, _ := space.AllocF64(4)
		pcT := pcreg.Site("plan:task-write")
		pcC := pcreg.Site("plan:cont-read")
		pcPost := pcreg.Site("plan:post-read")
		rtm.Parallel(2, func(th *omp.Thread) {
			th.Task(func(tt *omp.Thread) {
				tt.StoreF64(x, th.ID(), 1, pcT)
			})
			th.LoadF64(x, th.ID(), pcC) // races with the task
			th.TaskWait()
			th.LoadF64(x, th.ID(), pcPost) // ordered after the wait
		})
	},
}

// TestBatchAnalyzerMatchesAnalyze: partitioning the plan into batches of
// any size and merging the per-batch reports must reproduce the
// single-process race set and dedup'd race count exactly.
func TestBatchAnalyzerMatchesAnalyze(t *testing.T) {
	for name, program := range planPrograms {
		t.Run(name, func(t *testing.T) {
			store := collectStore(t, program)
			base, err := New(store, Config{}).Analyze()
			if err != nil {
				t.Fatal(err)
			}
			for _, batchSize := range []int{1, 3, 1 << 30} {
				b, err := NewBatchAnalyzer(store, Config{})
				if err != nil {
					t.Fatal(err)
				}
				units := b.Units()
				merged := report.New()
				for lo := 0; lo < len(units) || lo == 0; lo += batchSize {
					hi := min(lo+batchSize, len(units))
					rep, err := b.AnalyzeUnits(context.Background(), units[lo:hi])
					if err != nil {
						t.Fatalf("batch [%d:%d]: %v", lo, hi, err)
					}
					for _, r := range rep.Races() {
						merged.Add(r)
					}
					if len(units) == 0 {
						break
					}
				}
				if merged.Len() != base.Len() {
					t.Fatalf("batch size %d: %d dedup'd races, want %d\nmerged:\n%s\nbase:\n%s",
						batchSize, merged.Len(), base.Len(), merged.String(), base.String())
				}
				got, want := raceKeys(merged), raceKeys(base)
				for k := range want {
					if !got[k] {
						t.Fatalf("batch size %d: missing race %s", batchSize, k)
					}
				}
			}
		})
	}
}

// TestBatchAnalyzerPlanDeterministic: two independent planners over the
// same store must produce the identical unit-pair schedule — the property
// that lets coordinator and workers name work by UnitID at all.
func TestBatchAnalyzerPlanDeterministic(t *testing.T) {
	store := collectStore(t, planPrograms["multi-region"])
	b1, err := NewBatchAnalyzer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBatchAnalyzer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := b1.Units(), b2.Units()
	if len(u1) == 0 {
		t.Fatal("empty plan for a workload with accesses")
	}
	if len(u1) != len(u2) {
		t.Fatalf("plans differ in length: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("plan diverges at %d: %+v vs %+v", i, u1[i], u2[i])
		}
	}
}

// TestBatchAnalyzerStructureStats: the coordinator-side structure counts
// must match what the single-process analyzer reports.
func TestBatchAnalyzerStructureStats(t *testing.T) {
	store := collectStore(t, planPrograms["multi-region"])
	base, err := New(store, Config{}).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatchAnalyzer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := b.StructureStats()
	if st.Intervals != base.Stats.Intervals || st.Regions != base.Stats.Regions {
		t.Fatalf("structure stats %d intervals / %d regions, want %d / %d",
			st.Intervals, st.Regions, base.Stats.Intervals, base.Stats.Regions)
	}
}

// TestBatchAnalyzerCancel: a pre-cancelled context aborts AnalyzeUnits
// with ctx.Err() before any comparison work.
func TestBatchAnalyzerCancel(t *testing.T) {
	store := collectStore(t, planPrograms["flat-racy"])
	b, err := NewBatchAnalyzer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.AnalyzeUnits(ctx, b.Units()); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestBatchAnalyzerRejectsSalvage: distributed analysis refuses salvage
// mode — quarantine decisions need the full single-process stream.
func TestBatchAnalyzerRejectsSalvage(t *testing.T) {
	store := collectStore(t, planPrograms["flat-racy"])
	if _, err := NewBatchAnalyzer(store, Config{Salvage: true}); err == nil {
		t.Fatal("NewBatchAnalyzer accepted Salvage mode")
	}
}

// TestBatchAnalyzerUnknownUnit: a unit id that resolves nowhere is an
// error, not silent no-work — the coordinator must find out its plan and
// the worker's structure disagree.
func TestBatchAnalyzerUnknownUnit(t *testing.T) {
	store := collectStore(t, planPrograms["flat-racy"])
	b, err := NewBatchAnalyzer(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bogus := PairUnit{A: UnitID{Key: trace.IntervalKey{PID: 999, TID: 999, BID: 999}}}
	if _, err := b.AnalyzeUnits(context.Background(), []PairUnit{bogus}); err == nil {
		t.Fatal("AnalyzeUnits accepted an unknown unit id")
	}
}
