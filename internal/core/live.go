package core

import (
	"context"
	"sort"

	"sword/internal/pcreg"
	"sword/internal/report"
	"sword/internal/trace"
)

// Live analysis support: the incremental half of the streaming analyzer
// (internal/stream). A LiveAnalyzer accepts rounds of sealed barrier
// groups while the traced program is still running, compares their
// same-group interval pairs immediately with the persistent sweep engine,
// and remembers which pairs were decided; Finalize then runs the ordinary
// batched analysis over the finished trace, skipping exactly those pairs,
// so the union of live and final comparisons is the post-mortem pair set
// and the reported race set is identical by construction.
//
// Only same-(pid, bid) pairs are compared live. Cross-region pairs depend
// on task windows (the taskwaits aux table, written only when the
// collector closes) and on frame chains that later arrivals can extend, so
// they are deferred to Finalize — deferral never loses a race, it only
// delays its report to the end of the run.

// SlotRecords is one slot's accumulated decoded meta stream — what the
// streaming analyzer's tailing readers have delivered so far. It mirrors
// the records buildStructure loads from a finished store.
type SlotRecords struct {
	Slot  int
	Metas []trace.Meta
	Certs []trace.LoopCert
}

// IntervalGroup names one barrier episode of one region instance: the
// same-region concurrency group of intervals sharing (pid, bid). A group
// is sealed once every member interval's records and log data are durable;
// sealed groups are the unit of live analysis.
type IntervalGroup struct {
	PID, BID uint64
}

// StepStats summarizes one live analysis round, for the stream.* metrics.
type StepStats struct {
	Pairs       int    // unit pairs compared this round
	Prefiltered uint64 // pairs dropped by unit-summary prefilter
	Retired     uint64 // pairs deferred to Finalize's certificate retirement
	TreeNodes   int    // run nodes materialized for this round's groups
	Accesses    uint64 // accesses summarized for this round's groups
}

// pairKey names a unit pair across structure rebuilds: tree units are
// recreated from scratch every round, so identity must live in the stable
// coordinates (interval key, fragment cut) instead of pointers. Pairs are
// canonicalized by enumeration order before keying.
type pairKey struct {
	a, b   trace.IntervalKey
	ca, cb uint64
}

func pairKeyOf(p [2]*treeUnit) pairKey {
	return pairKey{a: p[0].iv.key, b: p[1].iv.key, ca: p[0].cut, cb: p[1].cut}
}

// LiveAnalyzer holds the persistent comparison state of one streamed run:
// the engine (solver memo, confirmed race sites), the growing report, and
// the set of pairs already decided. It is not safe for concurrent use; the
// streaming analyzer serializes rounds.
type LiveAnalyzer struct {
	cfg  Config
	pcs  *pcreg.Table
	eng  *compareEngine
	rep  *report.Report
	seen map[pairKey]struct{}
}

// NewLive returns a live analyzer. cfg.Salvage is ignored: a live round
// never tolerates damage (the tailing layer distinguishes torn tails from
// corruption, and real corruption aborts streaming in favor of a
// post-mortem salvage run). cfg.PCs, when nil, starts as an empty table —
// races found live carry placeholder "pc(N)" sites until Finalize installs
// the table the collector persisted at Close.
func NewLive(cfg Config) *LiveAnalyzer {
	cfg.Salvage = false
	pcs := cfg.PCs
	if pcs == nil {
		pcs = pcreg.NewTable()
	}
	rep := report.New()
	return &LiveAnalyzer{
		cfg:  cfg,
		pcs:  pcs,
		eng:  newCompareEngine(cfg, pcs, rep),
		rep:  rep,
		seen: make(map[pairKey]struct{}),
	}
}

// Report returns the growing report. Races accumulate as rounds complete;
// Report.Races and Report.String are safe to call while a Step runs only
// if the caller serializes against Step itself (they lock the report, but
// a mid-round snapshot would be arbitrary).
func (l *LiveAnalyzer) Report() *report.Report { return l.rep }

// Step analyzes the given freshly sealed groups: it rebuilds the
// concurrency structure from the accumulated records, streams only the
// sealed intervals' log data out of store, and compares their same-group
// unit pairs into the persistent report. The caller guarantees that every
// record's ancestor chain is present in inputs, that each group in groups
// is sealed (no further records or data can arrive for it), and that store
// serves only durable committed bytes covering the sealed intervals'
// fragments. Each group must be passed to exactly one Step.
func (l *LiveAnalyzer) Step(ctx context.Context, store trace.Store, inputs []SlotRecords, groups map[IntervalGroup]bool) (StepStats, error) {
	var st StepStats
	if len(groups) == 0 {
		return st, nil
	}
	s := newStructure(false)
	ins := make([]slotRecords, len(inputs))
	for i, in := range inputs {
		ins[i] = slotRecords{slot: in.Slot, metas: in.Metas, certs: in.Certs}
	}
	if err := s.assemble(ins, nil, false); err != nil {
		return st, err
	}
	only := make(map[*interval]bool)
	for _, iv := range s.intervals {
		if groups[IntervalGroup{PID: iv.key.PID, BID: iv.key.BID}] {
			only[iv] = true
		}
	}
	if len(only) == 0 {
		return st, nil
	}
	a := New(store, l.cfg)
	workers := EffectiveWorkers(l.cfg.Workers)
	if err := a.buildTrees(ctx, s, workers, nil, only, false); err != nil {
		return st, err
	}
	for iv := range only {
		for _, u := range iv.units {
			st.TreeNodes += u.nodeCount()
			st.Accesses += u.accesses()
		}
	}
	pairs := l.sameGroupPairs(s, groups, &st)
	st.Pairs = len(pairs)
	schedulePairs(pairs)
	if err := comparePairs(ctx, l.eng, workers, pairs); err != nil {
		return st, err
	}
	// The round's structure and trees are garbage once Step returns: only
	// the decided-pair keys, the engine, and the report persist. That is
	// the frontier bound — sealed groups never stay resident.
	return st, nil
}

// sameGroupPairs enumerates the same-(pid, bid) unit pairs of the sealed
// groups with the same certificate-retirement, empty-unit, and summary
// prefilter decisions enumeratePairs applies, and records every decided
// pair (compared or prefiltered) in seen so Finalize skips it. Retired
// pairs are NOT recorded: certificate trust is re-derived from the full
// structure at finalize, which either retires them again (they never reach
// the engine) or rematerializes their dropped accesses and compares them —
// both end states match the post-mortem decision exactly.
func (l *LiveAnalyzer) sameGroupPairs(s *structure, groups map[IntervalGroup]bool, st *StepStats) [][2]*treeUnit {
	byGroup := make(map[IntervalGroup][]*interval)
	for _, iv := range s.intervals {
		g := IntervalGroup{PID: iv.key.PID, BID: iv.key.BID}
		if groups[g] {
			byGroup[g] = append(byGroup[g], iv)
		}
	}
	var pairs [][2]*treeUnit
	addUnits := func(x, y *treeUnit) {
		if lessKey(y.iv.key, x.iv.key) || (x.iv.key == y.iv.key && y.cut < x.cut) {
			x, y = y, x
		}
		k := [2]*treeUnit{x, y}
		if ci := x.iv.cert; ci != nil && ci.retire && y.iv.cert == ci &&
			x.nodeCount() == 0 && y.nodeCount() == 0 {
			st.Retired++
			return
		}
		if x.nodeCount() == 0 || y.nodeCount() == 0 {
			return
		}
		if !l.cfg.NoPrefilter && x.hasSum && y.hasSum && !summariesMayRace(&x.sum, &y.sum) {
			st.Prefiltered++
			l.seen[pairKeyOf(k)] = struct{}{}
			return
		}
		l.seen[pairKeyOf(k)] = struct{}{}
		pairs = append(pairs, k)
	}
	for _, g := range byGroup {
		sort.Slice(g, func(i, j int) bool { return g[i].key.TID < g[j].key.TID })
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				for _, ux := range g[i].units {
					for _, uy := range g[j].units {
						addUnits(ux, uy)
					}
				}
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a[0].iv.key != b[0].iv.key {
			return lessKey(a[0].iv.key, b[0].iv.key)
		}
		if a[0].cut != b[0].cut {
			return a[0].cut < b[0].cut
		}
		if a[1].iv.key != b[1].iv.key {
			return lessKey(a[1].iv.key, b[1].iv.key)
		}
		return a[1].cut < b[1].cut
	})
	return pairs
}

// Finalize completes the analysis over the finished trace: it reloads the
// persisted pc table (resymbolizing the races reported live), then runs
// the ordinary batched post-mortem analysis into the same engine and
// report, skipping pairs already decided by live rounds. The returned
// report therefore holds exactly the race set and stats a pure
// post-mortem AnalyzeContext over the same store would produce, with the
// live rounds' comparison work already paid.
func (l *LiveAnalyzer) Finalize(ctx context.Context, store trace.Store) (*report.Report, error) {
	a := New(store, l.cfg)
	pcs, pcNote, err := a.loadPCs()
	if err != nil {
		return nil, err
	}
	if pcNote != "" {
		l.rep.Note("%s", pcNote)
	}
	l.pcs = pcs
	l.eng.setPCs(pcs)
	l.rep.Resymbolize(pcs.Name)
	skip := func(p [2]*treeUnit) bool {
		_, ok := l.seen[pairKeyOf(p)]
		return ok
	}
	return a.analyze(ctx, l.eng, l.rep, skip)
}
