package report

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// fillStats sets every field of a Stats to a distinct value drawn from r,
// by reflection, so the merge tests automatically cover fields added
// later.
func fillStats(t *testing.T, r *rand.Rand) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int:
			f.SetInt(int64(1 + r.Intn(1000)))
		case reflect.Uint64:
			f.SetUint(uint64(1 + r.Intn(1000)))
		default:
			t.Fatalf("Stats field %s has kind %s: extend fillStats and check Merge sums it",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return s
}

// TestStatsMergeSumsEveryField: merging two randomly filled Stats must sum
// every field — a field forgotten in Merge shows up as an unchanged value.
func TestStatsMergeSumsEveryField(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a, b := fillStats(t, r), fillStats(t, r)
	got := a
	got.Merge(b)
	va, vb, vg := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(got)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		switch va.Field(i).Kind() {
		case reflect.Int:
			if want := va.Field(i).Int() + vb.Field(i).Int(); vg.Field(i).Int() != want {
				t.Errorf("field %s: got %d, want %d (Merge does not sum it)", name, vg.Field(i).Int(), want)
			}
		case reflect.Uint64:
			if want := va.Field(i).Uint() + vb.Field(i).Uint(); vg.Field(i).Uint() != want {
				t.Errorf("field %s: got %d, want %d (Merge does not sum it)", name, vg.Field(i).Uint(), want)
			}
		}
	}
}

// TestStatsMergeCommutativeAssociative property-tests the algebra the
// distributed coordinator depends on: batch deltas arrive in arbitrary
// completion order, possibly merged through intermediate partial sums.
func TestStatsMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a, b, c := fillStats(t, r), fillStats(t, r), fillStats(t, r)

		ab := a
		ab.Merge(b)
		ba := b
		ba.Merge(a)
		if ab != ba {
			t.Fatalf("trial %d: Merge not commutative:\na+b = %+v\nb+a = %+v", trial, ab, ba)
		}

		abc := ab
		abc.Merge(c)
		bc := b
		bc.Merge(c)
		aBC := a
		aBC.Merge(bc)
		if abc != aBC {
			t.Fatalf("trial %d: Merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", trial, abc, aBC)
		}
	}
}

// TestStatsMergeZeroIdentity: merging a zero Stats changes nothing — a
// worker that found no work contributes nothing to the merged report.
func TestStatsMergeZeroIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := fillStats(t, r)
	got := a
	got.Merge(Stats{})
	if got != a {
		t.Fatalf("zero merge changed the stats:\nbefore %+v\nafter  %+v", a, got)
	}
}

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

// TestRaceGobRoundTrip: Race survives the wire encoding the dist protocol
// uses, field for field.
func TestRaceGobRoundTrip(t *testing.T) {
	in := Race{
		First:  Side{PC: 0xdeadbeef, Source: "md.go:87", Write: true},
		Second: Side{PC: 0xcafe, Source: "md.go:91", Atomic: true},
		Addr:   0x10000f0,
		Count:  42,
	}
	var out Race
	gobRoundTrip(t, &in, &out)
	if out != in {
		t.Fatalf("race changed on the wire:\nin  %+v\nout %+v", in, out)
	}
}

// TestStatsGobRoundTrip: a fully populated Stats survives the wire — gob
// omits zero fields, so this also guards against fields gob cannot encode.
func TestStatsGobRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	in := fillStats(t, r)
	var out Stats
	gobRoundTrip(t, &in, &out)
	if out != in {
		t.Fatalf("stats changed on the wire:\nin  %+v\nout %+v", in, out)
	}
}

// TestRaceSliceGobRoundTrip: the batch result shape the workers actually
// send — a slice of races — round-trips with order preserved.
func TestRaceSliceGobRoundTrip(t *testing.T) {
	in := []Race{
		{First: Side{PC: 1, Source: "a.go:1", Write: true}, Second: Side{PC: 2, Source: "b.go:2"}, Addr: 8, Count: 1},
		{First: Side{PC: 3, Source: "c.go:3"}, Second: Side{PC: 4, Source: "d.go:4", Write: true, Atomic: true}, Addr: 16, Count: 7},
	}
	var out []Race
	gobRoundTrip(t, &in, &out)
	if len(out) != len(in) {
		t.Fatalf("slice length changed: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("race %d changed on the wire:\nin  %+v\nout %+v", i, in[i], out[i])
		}
	}
}
