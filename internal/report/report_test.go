package report

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAddDeduplicatesUnorderedPairs(t *testing.T) {
	r := New()
	a := Side{PC: 1, Source: "a.go:1", Write: true}
	b := Side{PC: 2, Source: "b.go:2"}
	r.Add(Race{First: a, Second: b, Addr: 0x10})
	r.Add(Race{First: b, Second: a, Addr: 0x20}) // swapped sides: same race
	r.Add(Race{First: a, Second: b, Addr: 0x30})
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	race := r.Races()[0]
	if race.Count != 3 {
		t.Fatalf("Count = %d, want 3", race.Count)
	}
	if race.Addr != 0x10 {
		t.Fatalf("witness = %#x, want the first", race.Addr)
	}
}

func TestDistinctPairsKept(t *testing.T) {
	r := New()
	w := Side{PC: 1, Source: "w", Write: true}
	r.Add(Race{First: w, Second: Side{PC: 2, Source: "r1"}})
	r.Add(Race{First: w, Second: Side{PC: 3, Source: "r2"}})
	// Same pcs but different direction combination is a different record.
	r.Add(Race{First: Side{PC: 1, Source: "w"}, Second: Side{PC: 2, Source: "r1", Write: true}})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3:\n%s", r.Len(), r.String())
	}
}

func TestRacesSorted(t *testing.T) {
	r := New()
	r.Add(Race{First: Side{PC: 5, Source: "z.go:9", Write: true}, Second: Side{PC: 6, Source: "z.go:10"}})
	r.Add(Race{First: Side{PC: 1, Source: "a.go:1", Write: true}, Second: Side{PC: 2, Source: "a.go:2"}})
	races := r.Races()
	if races[0].First.Source > races[1].First.Source {
		t.Fatalf("not sorted: %v", races)
	}
}

func TestStringRendering(t *testing.T) {
	r := New()
	r.Add(Race{
		First:  Side{PC: 1, Source: "md.go:87", Write: true},
		Second: Side{PC: 2, Source: "md.go:91", Atomic: true},
		Addr:   0xbeef,
	})
	s := r.String()
	if !strings.Contains(s, "write md.go:87") || !strings.Contains(s, "atomic-read md.go:91") {
		t.Fatalf("rendering: %s", s)
	}
	if !strings.Contains(s, "0xbeef") || !strings.Contains(s, "1 race(s)") {
		t.Fatalf("rendering: %s", s)
	}
}

func TestSideOps(t *testing.T) {
	for side, want := range map[Side]string{
		{Write: true}:               "write",
		{}:                          "read",
		{Atomic: true}:              "atomic-read",
		{Write: true, Atomic: true}: "atomic-write",
	} {
		if got := side.op(); got != want {
			t.Errorf("op(%+v) = %q, want %q", side, got, want)
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(Race{
					First:  Side{PC: uint64(g), Source: "s", Write: true},
					Second: Side{PC: uint64(i % 4), Source: "t"},
				})
			}
		}()
	}
	wg.Wait()
	if r.Len() == 0 || r.Len() > 8*4 {
		t.Fatalf("Len = %d", r.Len())
	}
	total := 0
	for _, race := range r.Races() {
		total += race.Count
	}
	if total != 8*200 {
		t.Fatalf("total count %d, want 1600", total)
	}
}

func TestMarshalJSON(t *testing.T) {
	r := New()
	r.Add(Race{
		First:  Side{PC: 1, Source: "x.go:1", Write: true},
		Second: Side{PC: 2, Source: "x.go:2"},
		Addr:   0x1000,
	})
	r.Stats.Intervals = 4
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Races []struct {
			First  struct{ Source, Op string }
			Second struct{ Source, Op string }
			Addr   string
		}
		Stats struct{ Intervals int }
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Races) != 1 || decoded.Races[0].First.Op != "write" ||
		decoded.Races[0].Addr != "0x1000" || decoded.Stats.Intervals != 4 {
		t.Fatalf("json: %s", data)
	}
}

func TestEmptyReport(t *testing.T) {
	r := New()
	if r.Len() != 0 || len(r.Races()) != 0 {
		t.Fatal("empty report not empty")
	}
	if !strings.Contains(r.String(), "0 race(s)") {
		t.Fatalf("empty rendering: %s", r.String())
	}
	data, err := json.Marshal(r)
	if err != nil || !strings.Contains(string(data), `"races":[]`) {
		t.Fatalf("empty json: %s, %v", data, err)
	}
}
