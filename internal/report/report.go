// Package report defines race records and analysis reports shared by the
// SWORD offline analyzer and the ARCHER baseline, so the experiment
// harness can compare tools uniformly.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Side describes one of the two accesses of a race.
type Side struct {
	PC     uint64 // interned program-counter id
	Source string // symbolized source location, e.g. "ompscr/md.go:87"
	Write  bool
	Atomic bool
}

func (s Side) op() string {
	switch {
	case s.Write && s.Atomic:
		return "atomic-write"
	case s.Write:
		return "write"
	case s.Atomic:
		return "atomic-read"
	default:
		return "read"
	}
}

// String renders the side as "write ompscr/md.go:87".
func (s Side) String() string { return s.op() + " " + s.Source }

// Race is one reported data race, deduplicated by the unordered pair of
// access sites.
type Race struct {
	First, Second Side
	Addr          uint64 // witness address of one conflicting pair
	Count         int    // distinct detections merged into this record
}

// String renders the race like the tools' reports:
// "race: write md.go:87 <-> read md.go:91 @ 0x10000f0".
func (r Race) String() string {
	return fmt.Sprintf("race: %s <-> %s @ %#x", r.First, r.Second, r.Addr)
}

// key identifies a race record regardless of side order.
type key struct {
	pcA, pcB uint64
	wA, wB   bool
}

func (r Race) normKey() key {
	a, b := r.First, r.Second
	if a.PC > b.PC || (a.PC == b.PC && a.Write && !b.Write) {
		a, b = b, a
	}
	return key{pcA: a.PC, pcB: b.PC, wA: a.Write, wB: b.Write}
}

// Stats captures analysis effort counters for the experiment tables, plus
// the coverage counters of salvage-mode analysis over a damaged trace.
type Stats struct {
	Intervals       int    // barrier intervals analyzed
	IntervalPairs   int    // concurrent interval pairs compared
	TreeNodes       int    // interval-tree nodes built (the paper's M)
	Accesses        uint64 // accesses summarized (the paper's N)
	NodeComparisons uint64 // overlapping node pairs examined
	SolverCalls     uint64 // strided-intersection solver invocations (memo misses)
	Regions         int    // parallel region instances

	// Comparison-engine effectiveness: decisions the solver memo answered
	// from cache, distinct offset-normalized shapes actually solved, and
	// node pairs retired without any solve because their race site was
	// already confirmed. All zero under NoSolver or the probe engine.
	SolverCacheHits   uint64
	SolverCacheMisses uint64
	SitesSuppressed   uint64

	// PairsPrefiltered counts concurrent unit pairs dropped before any
	// comparison because their unit-level summaries prove no node pair
	// can race (no write on either side, both all-atomic, a commonly held
	// mutex, or disjoint bounding boxes). On the distributed planner it
	// additionally counts pairs dropped because a unit owns zero trace
	// bytes. Dropping such pairs never changes the reported race set.
	PairsPrefiltered uint64

	// PairsRetiredStatic counts concurrent unit pairs retired because both
	// units are covered by the same trusted CLEAN static loop certificate:
	// the runtime proved the threads' footprints disjoint before dropping
	// a single access, and the analyzer re-verified the certificate's
	// structural position. Retired pairs never reach the comparison engine.
	PairsRetiredStatic uint64

	// Salvage coverage: how much of the trace survived. All zero for a
	// clean trace (or strict-mode analysis, which errors out instead).
	IntervalsQuarantined int    // intervals excluded because their data was lost
	CorruptBlocks        int    // log blocks that failed their integrity check
	TruncatedSlots       int    // slots whose log or meta stream ended torn
	SalvagedBytes        uint64 // logical trace bytes recovered and analyzed
	LostBytes            uint64 // logical trace bytes lost to corruption
}

// Partial reports whether the analysis ran over a damaged trace: some
// intervals were quarantined or trace bytes were lost, so a clean result
// means "no races found in what survived", not "no races".
func (s *Stats) Partial() bool {
	return s.IntervalsQuarantined > 0 || s.CorruptBlocks > 0 || s.TruncatedSlots > 0 || s.LostBytes > 0
}

// Merge folds other into s field-wise. Every field is a sum counter, so
// merging is commutative and associative — the property the distributed
// coordinator relies on to fold worker batch deltas in completion order.
// A test enumerates the struct's fields by reflection, so adding a field
// without extending Merge fails the build's tests, not production merges.
func (s *Stats) Merge(other Stats) {
	s.Intervals += other.Intervals
	s.IntervalPairs += other.IntervalPairs
	s.TreeNodes += other.TreeNodes
	s.Accesses += other.Accesses
	s.NodeComparisons += other.NodeComparisons
	s.SolverCalls += other.SolverCalls
	s.Regions += other.Regions
	s.SolverCacheHits += other.SolverCacheHits
	s.SolverCacheMisses += other.SolverCacheMisses
	s.SitesSuppressed += other.SitesSuppressed
	s.PairsPrefiltered += other.PairsPrefiltered
	s.PairsRetiredStatic += other.PairsRetiredStatic
	s.IntervalsQuarantined += other.IntervalsQuarantined
	s.CorruptBlocks += other.CorruptBlocks
	s.TruncatedSlots += other.TruncatedSlots
	s.SalvagedBytes += other.SalvagedBytes
	s.LostBytes += other.LostBytes
}

// Report accumulates deduplicated races. It is safe for concurrent Add,
// matching the analyzer's parallel interval-pair comparison.
type Report struct {
	mu    sync.Mutex
	races map[key]*Race
	notes []string
	Stats Stats
}

// New returns an empty report.
func New() *Report { return &Report{races: make(map[key]*Race)} }

// Add records a race, merging duplicates of the same site pair.
func (r *Report) Add(race Race) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := race.normKey()
	if existing, ok := r.races[k]; ok {
		existing.Count += max(race.Count, 1)
		return
	}
	if race.Count == 0 {
		race.Count = 1
	}
	r.races[k] = &race
}

// Races returns the deduplicated races sorted by source locations.
func (r *Report) Races() []Race {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Race, 0, len(r.races))
	for _, race := range r.races {
		out = append(out, *race)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First.Source != out[j].First.Source {
			return out[i].First.Source < out[j].First.Source
		}
		return out[i].Second.Source < out[j].Second.Source
	})
	return out
}

// Len returns the number of distinct races.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.races)
}

// Resymbolize rewrites every recorded race's source locations through
// name. The live analyzer reports races before the collector persists its
// pc table (that happens only at Close), so sites carry placeholder names
// until the end of the run installs the real table. Dedup keys are PC
// ids, not names, so resymbolizing never merges or splits records. Safe
// for concurrent use.
func (r *Report) Resymbolize(name func(pc uint64) string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, race := range r.races {
		race.First.Source = name(race.First.PC)
		race.Second.Source = name(race.Second.PC)
	}
}

// Note records an annotation about the analysis — salvage mode uses it to
// say what was lost and why. Safe for concurrent use.
func (r *Report) Note(format string, args ...any) {
	r.mu.Lock()
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
	r.mu.Unlock()
}

// Notes returns the annotations in recording order.
func (r *Report) Notes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notes...)
}

// String renders the full report, one race per line, with a summary and
// any salvage notes.
func (r *Report) String() string {
	races := r.Races()
	var b strings.Builder
	for _, race := range races {
		b.WriteString(race.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d race(s)\n", len(races))
	for _, n := range r.Notes() {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if r.Stats.Partial() {
		fmt.Fprintf(&b, "partial trace: %d interval(s) quarantined, %d corrupt block(s), %d truncated slot(s), %d byte(s) lost\n",
			r.Stats.IntervalsQuarantined, r.Stats.CorruptBlocks, r.Stats.TruncatedSlots, r.Stats.LostBytes)
	}
	return b.String()
}

// jsonReport is the machine-readable form of a report.
type jsonReport struct {
	Races []jsonRace `json:"races"`
	Stats Stats      `json:"stats"`
	Notes []string   `json:"notes,omitempty"`
}

type jsonRace struct {
	First  jsonSide `json:"first"`
	Second jsonSide `json:"second"`
	Addr   string   `json:"addr"`
	Count  int      `json:"count"`
}

type jsonSide struct {
	PC     uint64 `json:"pc"`
	Source string `json:"source"`
	Op     string `json:"op"`
}

// MarshalJSON renders the report as stable, sorted JSON for tooling.
func (r *Report) MarshalJSON() ([]byte, error) {
	races := r.Races()
	out := jsonReport{Races: make([]jsonRace, 0, len(races)), Stats: r.Stats, Notes: r.Notes()}
	for _, race := range races {
		out.Races = append(out.Races, jsonRace{
			First:  jsonSide{PC: race.First.PC, Source: race.First.Source, Op: race.First.op()},
			Second: jsonSide{PC: race.Second.PC, Source: race.Second.Source, Op: race.Second.op()},
			Addr:   fmt.Sprintf("%#x", race.Addr),
			Count:  race.Count,
		})
	}
	return json.Marshal(out)
}
