package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrNoSpace is the default write fault: the fault-injection analogue of
// ENOSPC, the way production trace runs actually die.
var ErrNoSpace = errors.New("trace: no space left on device")

// FaultStore wraps a Store and injects the failure modes that kill
// production trace runs — a filling disk (error after N bytes), short
// writes that persist a torn final block, close-time errors, and read-side
// bit rot — so crash tests can drive the collector, readers and analyzer
// through them deterministically. The zero configuration injects nothing:
// a FaultStore with no faults armed is byte-transparent.
//
// The write budget is global across all files, like a shared disk: once N
// bytes have been accepted, every subsequent write on every writer fails.
// FaultStore is safe for concurrent use to the extent the wrapped store is.
type FaultStore struct {
	inner Store

	mu         sync.Mutex
	armed      bool  // false = unlimited budget
	budget     int64 // bytes still accepted once armed
	writeErr   error
	torn       bool // persist the in-budget prefix of the failing write
	closeErr   error
	mutateRead func(name string, data []byte) []byte
	writeFails int
}

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{inner: inner} }

// FailWritesAfter arms the write fault: the next n bytes are accepted,
// then every write fails with err (ErrNoSpace if err is nil). n = 0 fails
// the very next write.
func (s *FaultStore) FailWritesAfter(n int64, err error) {
	if err == nil {
		err = ErrNoSpace
	}
	s.mu.Lock()
	s.armed, s.budget, s.writeErr = true, n, err
	s.mu.Unlock()
}

// SetTornWrites controls what happens to the write that exhausts the
// budget: when on, the in-budget prefix is persisted before the error is
// returned — a short write, leaving a torn final block or record exactly
// as a crash mid-write would; when off the failing write persists nothing.
func (s *FaultStore) SetTornWrites(on bool) {
	s.mu.Lock()
	s.torn = on
	s.mu.Unlock()
}

// FailClose makes every writer's Close return err (after closing the
// underlying file, so nothing leaks).
func (s *FaultStore) FailClose(err error) {
	s.mu.Lock()
	s.closeErr = err
	s.mu.Unlock()
}

// SetMutateRead installs a read-side corruption hook: every opened file's
// contents pass through f before the reader sees them. The name is
// "log:<slot>", "meta:<slot>" or "aux:<name>"; returning the input
// unchanged leaves that file alone. Reads are materialized in memory to
// apply the hook.
func (s *FaultStore) SetMutateRead(f func(name string, data []byte) []byte) {
	s.mu.Lock()
	s.mutateRead = f
	s.mu.Unlock()
}

// WriteFailures returns how many writes have been failed so far.
func (s *FaultStore) WriteFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeFails
}

type faultWriter struct {
	s *FaultStore
	w io.WriteCloser
}

func (w *faultWriter) Write(p []byte) (int, error) {
	w.s.mu.Lock()
	if !w.s.armed {
		w.s.mu.Unlock()
		return w.w.Write(p)
	}
	if w.s.budget >= int64(len(p)) {
		w.s.budget -= int64(len(p))
		w.s.mu.Unlock()
		return w.w.Write(p)
	}
	keep := w.s.budget
	w.s.budget = 0
	w.s.writeFails++
	err := w.s.writeErr
	torn := w.s.torn
	w.s.mu.Unlock()
	if torn && keep > 0 {
		n, werr := w.w.Write(p[:keep])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (w *faultWriter) Close() error {
	err := w.w.Close()
	w.s.mu.Lock()
	ce := w.s.closeErr
	w.s.mu.Unlock()
	if ce != nil {
		return ce
	}
	return err
}

func (s *FaultStore) wrapWriter(w io.WriteCloser, err error) (io.WriteCloser, error) {
	if err != nil {
		return nil, err
	}
	return &faultWriter{s: s, w: w}, nil
}

func (s *FaultStore) wrapReader(name string, r io.ReadCloser, err error) (io.ReadCloser, error) {
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	mutate := s.mutateRead
	s.mu.Unlock()
	if mutate == nil {
		return r, nil
	}
	data, rerr := io.ReadAll(r)
	r.Close()
	if rerr != nil {
		return nil, rerr
	}
	return io.NopCloser(bytes.NewReader(mutate(name, data))), nil
}

// CreateLog implements Store.
func (s *FaultStore) CreateLog(slot int) (io.WriteCloser, error) {
	return s.wrapWriter(s.inner.CreateLog(slot))
}

// CreateMeta implements Store.
func (s *FaultStore) CreateMeta(slot int) (io.WriteCloser, error) {
	return s.wrapWriter(s.inner.CreateMeta(slot))
}

// CreateAux implements Store.
func (s *FaultStore) CreateAux(name string) (io.WriteCloser, error) {
	return s.wrapWriter(s.inner.CreateAux(name))
}

// OpenLog implements Store.
func (s *FaultStore) OpenLog(slot int) (io.ReadCloser, error) {
	r, err := s.inner.OpenLog(slot)
	return s.wrapReader(fmt.Sprintf("log:%d", slot), r, err)
}

// OpenMeta implements Store.
func (s *FaultStore) OpenMeta(slot int) (io.ReadCloser, error) {
	r, err := s.inner.OpenMeta(slot)
	return s.wrapReader(fmt.Sprintf("meta:%d", slot), r, err)
}

// OpenAux implements Store.
func (s *FaultStore) OpenAux(name string) (io.ReadCloser, error) {
	r, err := s.inner.OpenAux(name)
	return s.wrapReader("aux:"+name, r, err)
}

// Slots implements Store.
func (s *FaultStore) Slots() ([]int, error) { return s.inner.Slots() }

// BytesWritten implements Store.
func (s *FaultStore) BytesWritten() uint64 { return s.inner.BytesWritten() }
