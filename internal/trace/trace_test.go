package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sword/internal/compress"
)

func TestMutexSet(t *testing.T) {
	var s MutexSet
	if !s.Empty() {
		t.Fatal("zero set not empty")
	}
	s = s.With(3).With(17)
	if !s.Has(3) || !s.Has(17) || s.Has(4) {
		t.Fatalf("membership wrong: %b", s)
	}
	if s.Empty() {
		t.Fatal("non-empty set reports empty")
	}
	other := MutexSet(0).With(17)
	if !s.Intersects(other) {
		t.Fatal("sets sharing mutex 17 do not intersect")
	}
	if s.Intersects(MutexSet(0).With(5)) {
		t.Fatal("disjoint sets intersect")
	}
	s = s.Without(17)
	if s.Has(17) || !s.Has(3) {
		t.Fatalf("Without wrong: %b", s)
	}
}

func TestEventRoundTrip(t *testing.T) {
	var enc Encoder
	want := []Event{
		{Kind: KindAccess, Addr: 0x1000, Size: 8, Write: true, PC: 7},
		{Kind: KindAccess, Addr: 0x1008, Size: 8, PC: 7},
		{Kind: KindMutexAcquire, Mutex: 3},
		{Kind: KindAccess, Addr: 0x0ff0, Size: 4, Atomic: true, PC: 9},
		{Kind: KindMutexRelease, Mutex: 3},
		{Kind: KindAccess, Addr: 0x2000, Size: 1, Write: true, Atomic: true, PC: 1290},
		{Kind: KindAccess, Addr: 0, Size: 2, PC: 0},
	}
	for _, ev := range want {
		switch ev.Kind {
		case KindAccess:
			enc.Access(ev.Addr, ev.Size, ev.Write, ev.Atomic, ev.PC)
		case KindMutexAcquire:
			enc.Acquire(ev.Mutex)
		case KindMutexRelease:
			enc.Release(ev.Mutex)
		}
	}
	if enc.Events() != len(want) {
		t.Fatalf("Events() = %d, want %d", enc.Events(), len(want))
	}
	dec := NewDecoder(enc.Bytes())
	for i, w := range want {
		var ev Event
		if err := dec.Next(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev != w {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
	}
	if dec.More() {
		t.Fatal("decoder has extra events")
	}
	if err := dec.Next(new(Event)); err == nil {
		t.Fatal("Next past end succeeded")
	}
}

func TestEncoderReset(t *testing.T) {
	var enc Encoder
	enc.Access(0x5000, 8, false, false, 1)
	first := append([]byte(nil), enc.Bytes()...)
	enc.Reset()
	enc.Access(0x5000, 8, false, false, 1)
	if !bytes.Equal(first, enc.Bytes()) {
		t.Fatal("Reset did not clear delta state")
	}
}

func TestAccessSizePanics(t *testing.T) {
	for _, size := range []uint8{0, 3, 5, 255} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", size)
				}
			}()
			var enc Encoder
			enc.Access(0, size, false, false, 0)
		}()
	}
}

func TestDecoderRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{
		{0x03},       // unknown tag
		{0x01},       // acquire missing id
		{0x80},       // access missing delta
		{0x80, 0x05}, // access missing pc
	} {
		dec := NewDecoder(buf)
		var ev Event
		if err := dec.Next(&ev); err == nil {
			t.Errorf("decoding % x succeeded", buf)
		}
	}
}

func TestQuickEventRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var enc Encoder
		var want []Event
		for i := 0; i < 200; i++ {
			switch r.Intn(4) {
			case 0:
				ev := Event{Kind: KindMutexAcquire, Mutex: uint64(r.Intn(64))}
				enc.Acquire(ev.Mutex)
				want = append(want, ev)
			case 1:
				ev := Event{Kind: KindMutexRelease, Mutex: uint64(r.Intn(64))}
				enc.Release(ev.Mutex)
				want = append(want, ev)
			default:
				ev := Event{
					Kind:   KindAccess,
					Addr:   r.Uint64() >> uint(r.Intn(40)),
					Size:   1 << r.Intn(4),
					Write:  r.Intn(2) == 0,
					Atomic: r.Intn(4) == 0,
					PC:     uint64(r.Intn(4096)),
				}
				enc.Access(ev.Addr, ev.Size, ev.Write, ev.Atomic, ev.PC)
				want = append(want, ev)
			}
		}
		dec := NewDecoder(enc.Bytes())
		for _, w := range want {
			var ev Event
			if dec.Next(&ev) != nil || ev != w {
				return false
			}
		}
		return !dec.More()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	metas := []Meta{
		{PID: 0, PPID: NoParent, BID: 0, Offset: 0, Span: 24, Level: 1, DataBegin: 0, DataSize: 50000},
		{PID: 0, PPID: NoParent, BID: 1, Offset: 24, Span: 24, Level: 1, DataBegin: 50000, DataSize: 75000},
		{PID: 1, PPID: 0, BID: 0, Offset: 1, Span: 4, Level: 2, DataBegin: 125000, DataSize: 10000,
			ParentTID: 3, ParentBID: 1, Seq: 2},
	}
	var buf []byte
	for i := range metas {
		buf = AppendMeta(buf, &metas[i])
	}
	pos := 0
	for i := range metas {
		var m Meta
		n, err := DecodeMeta(buf[pos:], &m)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		pos += n
		if m != metas[i] {
			t.Fatalf("record %d = %+v, want %+v", i, m, metas[i])
		}
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d bytes", pos, len(buf))
	}
}

func TestMetaTIDAndKey(t *testing.T) {
	m := Meta{PID: 5, Offset: 2 + 3*4, Span: 4, BID: 3}
	if m.TID() != 2 {
		t.Fatalf("TID = %d, want 2", m.TID())
	}
	key := m.Key()
	if key != (IntervalKey{PID: 5, TID: 2, BID: 3}) {
		t.Fatalf("Key = %+v", key)
	}
}

// TestMetaTableI reproduces the structure of Table I: the example rows from
// the paper render with the documented columns.
func TestMetaTableI(t *testing.T) {
	metas := []Meta{
		{PID: 0, PPID: NoParent, BID: 0, Offset: 0, Span: 24, Level: 1, DataBegin: 0, DataSize: 50000},
		{PID: 0, PPID: NoParent, BID: 1, Offset: 0, Span: 24, Level: 1, DataBegin: 50000, DataSize: 75000},
		{PID: 1, PPID: NoParent, BID: 0, Offset: 0, Span: 24, Level: 1, DataBegin: 75000, DataSize: 10000},
	}
	got := FormatMetaTable(metas)
	want := "pid\tppid\tbid\toffset\tspan\tlevel\tdata begin\tsize\n" +
		"0\t-\t0\t0\t24\t1\t0\t50000\n" +
		"0\t-\t1\t0\t24\t1\t50000\t75000\n" +
		"1\t-\t0\t0\t24\t1\t75000\t10000\n"
	if got != want {
		t.Fatalf("FormatMetaTable:\n%s\nwant:\n%s", got, want)
	}
	if !strings.Contains(got, "ppid") {
		t.Fatal("missing header")
	}
}

func TestDecodeMetaErrors(t *testing.T) {
	m := Meta{PID: 1, PPID: 0, Span: 4}
	buf := AppendMeta(nil, &m)
	for cut := 0; cut < len(buf); cut++ {
		var got Meta
		if _, err := DecodeMeta(buf[:cut], &got); err == nil {
			t.Errorf("truncated meta at %d decoded", cut)
		}
	}
	// Zero span is invalid.
	bad := AppendMeta(nil, &Meta{PID: 1, Span: 0})
	var got Meta
	if _, err := DecodeMeta(bad, &got); err == nil {
		t.Error("zero-span meta decoded")
	}
}

func testLogRoundTrip(t *testing.T, store Store, codec compress.Codec) {
	t.Helper()
	sink, err := store.CreateLog(0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewLogWriter(sink, codec)
	blocks := [][]byte{
		bytes.Repeat([]byte{0x9c, 0x10, 0x01}, 1000),
		[]byte("second block"),
		bytes.Repeat([]byte{7}, 100000),
	}
	var logical []uint64
	off := uint64(0)
	for _, blk := range blocks {
		logical = append(logical, off)
		if w.Logical() != off {
			t.Fatalf("Logical() = %d, want %d", w.Logical(), off)
		}
		if err := w.WriteBlock(blk); err != nil {
			t.Fatal(err)
		}
		off += uint64(len(blk))
	}
	if err := w.WriteBlock(nil); err != nil { // empty block is a no-op
		t.Fatal(err)
	}
	if w.RawBytes() != off {
		t.Fatalf("RawBytes = %d, want %d", w.RawBytes(), off)
	}
	if codec.Name() != "raw" && w.CompressedBytes() >= w.RawBytes() {
		t.Errorf("%s: no compression: %d -> %d", codec.Name(), w.RawBytes(), w.CompressedBytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := store.OpenLog(0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewLogReader(src)
	for i, want := range blocks {
		start, raw, err := r.Next()
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if start != logical[i] {
			t.Fatalf("block %d start = %d, want %d", i, start, logical[i])
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("block %d content mismatch (%d vs %d bytes)", i, len(raw), len(want))
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogRoundTripMem(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()} {
		t.Run(codec.Name(), func(t *testing.T) {
			testLogRoundTrip(t, NewMemStore(), codec)
		})
	}
}

func TestLogRoundTripDir(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testLogRoundTrip(t, store, compress.LZSS{})
	if store.BytesWritten() == 0 {
		t.Fatal("BytesWritten is zero after writes")
	}
}

func TestMetaWriterReader(t *testing.T) {
	for _, store := range []Store{NewMemStore(), mustDirStore(t)} {
		sink, err := store.CreateMeta(2)
		if err != nil {
			t.Fatal(err)
		}
		w := NewMetaWriter(sink)
		want := []Meta{
			{PID: 0, PPID: NoParent, BID: 0, Span: 8, Level: 1, DataSize: 100},
			{PID: 1, PPID: 0, BID: 0, Offset: 3, Span: 8, Level: 2, DataBegin: 100, DataSize: 50, ParentTID: 1, ParentBID: 0, Seq: 1},
		}
		for i := range want {
			if err := w.Append(&want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if w.Count() != 2 {
			t.Fatalf("Count = %d", w.Count())
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		src, err := store.OpenMeta(2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAllMeta(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("read %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
		slots, err := store.Slots()
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) != 1 || slots[0] != 2 {
			t.Fatalf("Slots = %v, want [2]", slots)
		}
	}
}

func mustDirStore(t *testing.T) *DirStore {
	t.Helper()
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func TestAuxFiles(t *testing.T) {
	for _, store := range []Store{NewMemStore(), mustDirStore(t)} {
		w, err := store.CreateAux("pctable")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("hello aux")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := store.OpenAux("pctable")
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r)
		if err != nil || string(data) != "hello aux" {
			t.Fatalf("aux read: %q, %v", data, err)
		}
		r.Close()
		if _, err := store.OpenAux("missing"); err == nil {
			t.Error("OpenAux(missing) succeeded")
		}
	}
}

func TestMemStoreMissingSlot(t *testing.T) {
	s := NewMemStore()
	if _, err := s.OpenLog(9); err == nil {
		t.Error("OpenLog on missing slot succeeded")
	}
	if _, err := s.OpenMeta(9); err == nil {
		t.Error("OpenMeta on missing slot succeeded")
	}
}

func BenchmarkEncodeAccess(b *testing.B) {
	var enc Encoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if enc.Len() > 1<<20 {
			enc.Reset()
		}
		enc.Access(uint64(0x10000+i*8), 8, i&1 == 0, false, 17)
	}
}

func BenchmarkDecodeAccess(b *testing.B) {
	var enc Encoder
	for i := 0; i < 25000; i++ {
		enc.Access(uint64(0x10000+i*8), 8, i&1 == 0, false, 17)
	}
	buf := enc.Bytes()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	var ev Event
	for i := 0; i < b.N; i++ {
		dec := NewDecoder(buf)
		for dec.More() {
			if err := dec.Next(&ev); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestTaskWaitsRoundTrip(t *testing.T) {
	waits := map[uint64]uint64{3: 1, 17: 4, 1000: 0}
	var buf bytes.Buffer
	if err := WriteTaskWaits(&buf, waits); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTaskWaits(io.NopCloser(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(waits) {
		t.Fatalf("got %d entries, want %d", len(got), len(waits))
	}
	for id, cut := range waits {
		if got[id] != cut {
			t.Fatalf("id %d: cut %d, want %d", id, got[id], cut)
		}
	}
	// Truncations must error, not panic.
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		if _, err := ReadTaskWaits(io.NopCloser(bytes.NewReader(data[:cut]))); err == nil {
			t.Fatalf("truncated task waits at %d decoded", cut)
		}
	}
}

func TestTaskWaitsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTaskWaits(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTaskWaits(io.NopCloser(bytes.NewReader(buf.Bytes())))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}
