package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is where a run's trace lands: one log and one meta file per
// analyzed thread slot, plus named auxiliary files (the interned
// program-counter table). DirStore keeps them on the file system like the
// real tool; MemStore keeps tests hermetic.
type Store interface {
	// CreateLog opens the log file of a thread slot for writing.
	CreateLog(slot int) (io.WriteCloser, error)
	// CreateMeta opens the meta-data file of a thread slot for writing.
	CreateMeta(slot int) (io.WriteCloser, error)
	// CreateAux opens a named auxiliary file for writing.
	CreateAux(name string) (io.WriteCloser, error)
	// OpenLog opens the log file of a thread slot for reading.
	OpenLog(slot int) (io.ReadCloser, error)
	// OpenMeta opens the meta-data file of a thread slot for reading.
	OpenMeta(slot int) (io.ReadCloser, error)
	// OpenAux opens a named auxiliary file for reading.
	OpenAux(name string) (io.ReadCloser, error)
	// Slots lists the thread slots that have a meta file, ascending.
	Slots() ([]int, error)
	// BytesWritten reports the total bytes written so far, for I/O
	// accounting in the experiment harness.
	BytesWritten() uint64
}

// DirStore stores trace files in a directory:
// sword_<slot>.log, sword_<slot>.meta, sword_<name>.aux.
//
// The store tracks every writer it hands out; Close deterministically
// releases any still-open file handles, so a finished Session never leaks
// descriptors even when a writer's owner aborted mid-stream.
type DirStore struct {
	dir   string
	mu    sync.Mutex
	total uint64
	open  map[*dirFile]struct{}
}

// dirFile is a DirStore writer: it counts written bytes into the store's
// total and deregisters itself on Close. Close is idempotent.
type dirFile struct {
	f      *os.File
	s      *DirStore
	closed bool
}

func (w *dirFile) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.s.mu.Lock()
	w.s.total += uint64(n)
	w.s.mu.Unlock()
	return n, err
}

func (w *dirFile) Close() error {
	w.s.mu.Lock()
	if w.closed {
		w.s.mu.Unlock()
		return nil
	}
	w.closed = true
	delete(w.s.open, w)
	w.s.mu.Unlock()
	return w.f.Close()
}

// NewDirStore creates the directory if needed and returns a store over it.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: create store dir: %w", err)
	}
	return &DirStore{dir: dir, open: make(map[*dirFile]struct{})}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) logPath(slot int) string {
	return filepath.Join(s.dir, fmt.Sprintf("sword_%d.log", slot))
}

func (s *DirStore) metaPath(slot int) string {
	return filepath.Join(s.dir, fmt.Sprintf("sword_%d.meta", slot))
}

func (s *DirStore) auxPath(name string) string {
	return filepath.Join(s.dir, "sword_"+name+".aux")
}

func (s *DirStore) create(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &dirFile{f: f, s: s}
	s.mu.Lock()
	s.open[w] = struct{}{}
	s.mu.Unlock()
	return w, nil
}

// CreateLog implements Store.
func (s *DirStore) CreateLog(slot int) (io.WriteCloser, error) { return s.create(s.logPath(slot)) }

// CreateMeta implements Store.
func (s *DirStore) CreateMeta(slot int) (io.WriteCloser, error) { return s.create(s.metaPath(slot)) }

// CreateAux implements Store.
func (s *DirStore) CreateAux(name string) (io.WriteCloser, error) { return s.create(s.auxPath(name)) }

// OpenLog implements Store.
func (s *DirStore) OpenLog(slot int) (io.ReadCloser, error) { return os.Open(s.logPath(slot)) }

// OpenMeta implements Store.
func (s *DirStore) OpenMeta(slot int) (io.ReadCloser, error) { return os.Open(s.metaPath(slot)) }

// OpenAux implements Store.
func (s *DirStore) OpenAux(name string) (io.ReadCloser, error) { return os.Open(s.auxPath(name)) }

// Slots implements Store.
func (s *DirStore) Slots() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var slots []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "sword_") || !strings.HasSuffix(name, ".meta") {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "sword_"), ".meta"))
		if err != nil {
			continue
		}
		// A crash between creating a slot's meta file and committing its
		// first record leaves a zero-length file: not a slot, skip it.
		if info, err := e.Info(); err == nil && info.Size() == 0 {
			continue
		}
		slots = append(slots, id)
	}
	sort.Ints(slots)
	return slots, nil
}

// BytesWritten implements Store.
func (s *DirStore) BytesWritten() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// OpenWriters returns the number of writers handed out and not yet
// closed — zero after an orderly shutdown.
func (s *DirStore) OpenWriters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// Close releases any writers still open, aggregating every close error
// with errors.Join — on a full disk each file's close can fail for its own
// reason, and dropping all but the first hides which files lost data.
// An orderly run has none (the collector closes its own); Close makes the
// teardown deterministic regardless. Idempotent; reads remain valid
// afterwards.
func (s *DirStore) Close() error {
	s.mu.Lock()
	remaining := make([]*dirFile, 0, len(s.open))
	for w := range s.open {
		remaining = append(remaining, w)
	}
	s.mu.Unlock()
	var errs []error
	for _, w := range remaining {
		if err := w.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// MemStore keeps all trace files in memory. It is safe for concurrent use.
type MemStore struct {
	mu    sync.Mutex
	logs  map[int]*bytes.Buffer
	metas map[int]*bytes.Buffer
	aux   map[string]*bytes.Buffer
	total uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		logs:  make(map[int]*bytes.Buffer),
		metas: make(map[int]*bytes.Buffer),
		aux:   make(map[string]*bytes.Buffer),
	}
}

type memWriter struct {
	s   *MemStore
	buf *bytes.Buffer
}

func (w memWriter) Write(p []byte) (int, error) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	w.s.total += uint64(len(p))
	return w.buf.Write(p)
}

func (w memWriter) Close() error { return nil }

func (s *MemStore) createIn(m map[int]*bytes.Buffer, slot int) (io.WriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := &bytes.Buffer{}
	m[slot] = buf
	return memWriter{s: s, buf: buf}, nil
}

// CreateLog implements Store.
func (s *MemStore) CreateLog(slot int) (io.WriteCloser, error) { return s.createIn(s.logs, slot) }

// CreateMeta implements Store.
func (s *MemStore) CreateMeta(slot int) (io.WriteCloser, error) { return s.createIn(s.metas, slot) }

// CreateAux implements Store.
func (s *MemStore) CreateAux(name string) (io.WriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := &bytes.Buffer{}
	s.aux[name] = buf
	return memWriter{s: s, buf: buf}, nil
}

func (s *MemStore) openIn(m map[int]*bytes.Buffer, slot int) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := m[slot]
	if !ok {
		return nil, fmt.Errorf("trace: memstore: no file for slot %d", slot)
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

// OpenLog implements Store.
func (s *MemStore) OpenLog(slot int) (io.ReadCloser, error) { return s.openIn(s.logs, slot) }

// OpenMeta implements Store.
func (s *MemStore) OpenMeta(slot int) (io.ReadCloser, error) { return s.openIn(s.metas, slot) }

// OpenAux implements Store.
func (s *MemStore) OpenAux(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.aux[name]
	if !ok {
		return nil, fmt.Errorf("trace: memstore: no aux file %q", name)
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), nil
}

// Slots implements Store.
func (s *MemStore) Slots() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slots := make([]int, 0, len(s.metas))
	for slot := range s.metas {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	return slots, nil
}

// BytesWritten implements Store.
func (s *MemStore) BytesWritten() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
