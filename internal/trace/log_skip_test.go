package trace

import (
	"bytes"
	"io"
	"testing"

	"sword/internal/compress"
)

// writeSkipFixture stores five blocks of known raw sizes and returns their
// contents. Sizes differ so logical spans are distinguishable.
func writeSkipFixture(t *testing.T, store Store, codec compress.Codec) [][]byte {
	t.Helper()
	sink, err := store.CreateLog(0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewLogWriter(sink, codec)
	blocks := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 200),
		bytes.Repeat([]byte{3}, 300),
		bytes.Repeat([]byte{4}, 400),
		bytes.Repeat([]byte{5}, 500),
	}
	for _, b := range blocks {
		if err := w.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestNextFromSkipsBlocks(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()} {
		t.Run(codec.Name(), func(t *testing.T) {
			store := NewMemStore()
			blocks := writeSkipFixture(t, store, codec)

			// Full decode first, for the byte-accounting baseline.
			src, err := store.OpenLog(0)
			if err != nil {
				t.Fatal(err)
			}
			full := NewLogReader(src)
			for {
				if _, _, err := full.Next(); err == io.EOF {
					break
				} else if err != nil {
					t.Fatal(err)
				}
			}
			full.Close()
			if full.BlocksSkipped() != 0 || full.SkippedBytes() != 0 {
				t.Fatalf("full decode skipped %d blocks / %d bytes", full.BlocksSkipped(), full.SkippedBytes())
			}

			// Skip the 2nd and 4th block (starts 100 and 600) by span.
			src, err = store.OpenLog(0)
			if err != nil {
				t.Fatal(err)
			}
			r := NewLogReader(src)
			skip := func(start, rawLen uint64) bool {
				return start == 100 || start == 600
			}
			wantStarts := []uint64{0, 300, 1000}
			wantBlocks := [][]byte{blocks[0], blocks[2], blocks[4]}
			for i := range wantBlocks {
				start, raw, err := r.NextFrom(skip)
				if err != nil {
					t.Fatalf("block %d: %v", i, err)
				}
				if start != wantStarts[i] {
					t.Fatalf("block %d starts at %d, want %d", i, start, wantStarts[i])
				}
				if !bytes.Equal(raw, wantBlocks[i]) {
					t.Fatalf("block %d content mismatch (%d bytes)", i, len(raw))
				}
			}
			if _, _, err := r.NextFrom(skip); err != io.EOF {
				t.Fatalf("after last block: %v, want EOF", err)
			}
			r.Close()

			// Skipped blocks still count into the read-side totals (they must
			// agree with the write side) and into the skip counters.
			if r.Blocks() != 5 || r.RawBytes() != 1500 {
				t.Fatalf("blocks=%d raw=%d, want 5/1500", r.Blocks(), r.RawBytes())
			}
			if r.CompressedBytes() != full.CompressedBytes() {
				t.Fatalf("compressed bytes %d, want %d as in full decode", r.CompressedBytes(), full.CompressedBytes())
			}
			if r.BlocksSkipped() != 2 {
				t.Fatalf("BlocksSkipped = %d, want 2", r.BlocksSkipped())
			}
			if r.SkippedBytes() == 0 || r.SkippedBytes() >= r.CompressedBytes() {
				t.Fatalf("SkippedBytes = %d, want in (0, %d)", r.SkippedBytes(), r.CompressedBytes())
			}
		})
	}
}

func TestNextFromSkipAll(t *testing.T) {
	store := NewMemStore()
	writeSkipFixture(t, store, compress.LZSS{})
	src, err := store.OpenLog(0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewLogReader(src)
	if _, _, err := r.NextFrom(func(uint64, uint64) bool { return true }); err != io.EOF {
		t.Fatalf("skip-all: %v, want EOF", err)
	}
	r.Close()
	if r.BlocksSkipped() != 5 || r.Blocks() != 5 || r.RawBytes() != 1500 {
		t.Fatalf("skip-all counters: skipped=%d blocks=%d raw=%d", r.BlocksSkipped(), r.Blocks(), r.RawBytes())
	}
	if r.SkippedBytes() != r.CompressedBytes() {
		t.Fatalf("skip-all: SkippedBytes %d != CompressedBytes %d", r.SkippedBytes(), r.CompressedBytes())
	}
}
