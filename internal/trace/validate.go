package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Validate checks the structural integrity of a collected trace: every
// log decodes block by block and event by event; every meta record is
// well-formed; fragment byte ranges are in bounds, non-overlapping per
// slot, and cover every access event. It is the fsck of the trace format,
// used before shipping logs off a production machine and by the failure
// injection tests.
func Validate(store Store) error {
	slots, err := store.Slots()
	if err != nil {
		return fmt.Errorf("trace: validate: %w", err)
	}
	for _, slot := range slots {
		if err := validateSlot(store, slot); err != nil {
			return fmt.Errorf("trace: validate slot %d: %w", slot, err)
		}
	}
	return nil
}

func validateSlot(store Store, slot int) error {
	msrc, err := store.OpenMeta(slot)
	if err != nil {
		return fmt.Errorf("open meta: %w", err)
	}
	metas, err := ReadAllMeta(msrc)
	if err != nil {
		return err
	}
	type span struct{ begin, end uint64 }
	spans := make([]span, 0, len(metas))
	for i := range metas {
		m := &metas[i]
		if m.Span == 0 {
			return fmt.Errorf("record %d: zero span", i)
		}
		if m.TID() >= m.Span {
			return fmt.Errorf("record %d: tid %d outside span %d", i, m.TID(), m.Span)
		}
		if m.Level == 0 {
			return fmt.Errorf("record %d: zero nesting level", i)
		}
		if m.DataSize > 0 {
			spans = append(spans, span{m.DataBegin, m.DataBegin + m.DataSize})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].begin < spans[j].begin })
	for i := 1; i < len(spans); i++ {
		if spans[i].begin < spans[i-1].end {
			return fmt.Errorf("fragments overlap: [%d,%d) and [%d,%d)",
				spans[i-1].begin, spans[i-1].end, spans[i].begin, spans[i].end)
		}
	}

	lsrc, err := store.OpenLog(slot)
	if err != nil {
		return fmt.Errorf("open log: %w", err)
	}
	lr := NewLogReader(lsrc)
	defer lr.Close()
	var dec Decoder
	var ev Event
	var logEnd uint64
	si := 0
	for {
		start, raw, err := lr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		logEnd = start + uint64(len(raw))
		dec.Reset(raw)
		for dec.More() {
			pos := start + uint64(dec.Pos())
			if err := dec.Next(&ev); err != nil {
				return err
			}
			if ev.Kind != KindAccess {
				continue
			}
			for si < len(spans) && pos >= spans[si].end {
				si++
			}
			if si >= len(spans) || pos < spans[si].begin {
				return fmt.Errorf("access at %d outside every fragment", pos)
			}
		}
	}
	for _, sp := range spans {
		if sp.end > logEnd {
			return fmt.Errorf("fragment [%d,%d) past log end %d", sp.begin, sp.end, logEnd)
		}
	}
	return nil
}
