package trace

import (
	"bytes"
	"io"
	"testing"

	"sword/internal/compress"
)

// resettableLog replays a serialized log from memory, so a reader can be
// reopened over the same bytes without per-cycle wrapper allocations.
type resettableLog struct{ bytes.Reader }

func (r *resettableLog) Close() error { return nil }

func buildPoolTestLog(tb testing.TB, blocks, blockBytes int) []byte {
	tb.Helper()
	var sink bytes.Buffer
	w := NewLogWriter(nopWriteCloser{&sink}, compress.LZSS{})
	payload := make([]byte, blockBytes)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for i := 0; i < blocks; i++ {
		payload[0] = byte(i) // distinct blocks, still compressible
		if err := w.WriteBlock(payload); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return sink.Bytes()
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func scanLog(tb testing.TB, src *resettableLog, data []byte) {
	src.Reset(data)
	r := NewLogReader(src)
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			tb.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		tb.Fatal(err)
	}
}

// TestLogReaderSteadyStateAllocs pins the batched-analysis re-stream
// path: once the buffer pool is warm, a full open → scan every block →
// close cycle must not allocate staging buffers — only the LogReader
// struct itself. Before pooling, every cycle reallocated the 64 KiB
// bufio window plus the compressed and decompressed block slices.
func TestLogReaderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; steady-state allocs are meaningless")
	}
	data := buildPoolTestLog(t, 16, 32<<10)
	var src resettableLog
	for i := 0; i < 4; i++ { // warm the reader-buffer pool
		scanLog(t, &src, data)
	}
	allocs := testing.AllocsPerRun(50, func() {
		scanLog(t, &src, data)
	})
	// One allocation for the LogReader value; everything per-block must
	// come from the pool.
	if allocs > 1.5 {
		t.Errorf("log re-stream allocates %.1f times per cycle at steady state, want ≤ 1", allocs)
	}
}

// TestLogReaderCloseInvalidatesAndIsIdempotent: double Close must not
// double-insert buffers into the pool (two live readers sharing staging
// slices would corrupt blocks), and post-Close reads report io.EOF.
func TestLogReaderCloseInvalidatesAndIsIdempotent(t *testing.T) {
	data := buildPoolTestLog(t, 2, 1<<10)
	var src resettableLog
	src.Reset(data)
	r := NewLogReader(&src)
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("post-Close Next = %v, want io.EOF", err)
	}

	// Two concurrently open readers must see their own blocks even with
	// the pool involved.
	var srcA, srcB resettableLog
	srcA.Reset(data)
	srcB.Reset(data)
	ra := NewLogReader(&srcA)
	rb := NewLogReader(&srcB)
	_, rawA, errA := ra.Next()
	_, rawB, errB := rb.Next()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("concurrent readers disagree on identical logs")
	}
	ra.Close()
	rb.Close()
}

// BenchmarkLogReaderRestream measures one open → scan → close cycle, the
// unit of work SubtreeBatch and dist batches repeat per slot.
func BenchmarkLogReaderRestream(b *testing.B) {
	data := buildPoolTestLog(b, 16, 32<<10)
	var src resettableLog
	scanLog(b, &src, data)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanLog(b, &src, data)
	}
}
