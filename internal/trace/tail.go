package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
)

// Tailing readers for online analysis: follow a trace that is still being
// written, delivering exactly the committed prefix of each file and never
// mistaking the torn tail of an in-progress append for corruption.
//
// The durability contract of format v2 makes this sound. Meta records are
// flushed per append with a trailing commit marker, so the committed
// records of a live meta file are exactly the complete frames; log blocks
// carry their length up front, so a block is committed exactly when every
// declared byte is durable. Both tails therefore advance monotonically at
// frame granularity, and a reader positioned at a frame boundary either
// sees the next whole frame or the end of the durable bytes.

// MetaTail incrementally decodes a growing v2 meta stream: each Poll reads
// the bytes committed since the previous one and returns every newly
// committed record. A torn frame at the end of the durable bytes is the
// live writer's steady state and simply ends the poll; only checksum or
// framing damage over fully present bytes is an error. v1 meta streams
// have no commit markers and cannot be tailed.
type MetaTail struct {
	store   Store
	slot    int
	read    int64  // file bytes consumed into buf so far
	buf     []byte // undecoded remainder carried between polls
	version int    // 0 until enough bytes landed to detect
	records int
}

// NewMetaTail returns a tail over the meta file of a thread slot. The
// file need not exist yet; polls before the collector creates it return
// nothing.
func NewMetaTail(store Store, slot int) *MetaTail {
	return &MetaTail{store: store, slot: slot}
}

// Records returns the number of committed meta records delivered so far.
func (t *MetaTail) Records() int { return t.records }

// Poll reads newly durable bytes and returns the newly committed meta
// records and loop certificates, in file order. Both slices are nil when
// nothing new committed. An error means real damage (or I/O failure), not
// an in-progress append — polling again will not help.
func (t *MetaTail) Poll() ([]Meta, []LoopCert, error) {
	src, err := t.store.OpenMeta(t.slot)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("trace: tail meta slot %d: %w", t.slot, err)
	}
	defer src.Close()
	if err := skipConsumed(src, t.read); err != nil {
		return nil, nil, fmt.Errorf("trace: tail meta slot %d: %w", t.slot, err)
	}
	fresh, err := io.ReadAll(src)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: tail meta slot %d: %w", t.slot, err)
	}
	t.read += int64(len(fresh))
	t.buf = append(t.buf, fresh...)

	if t.version == 0 {
		if len(t.buf) < len(metaMagic) {
			return nil, nil, nil // cannot even detect the version yet
		}
		if !bytes.HasPrefix(t.buf, []byte(metaMagic)) {
			return nil, nil, fmt.Errorf("trace: tail meta slot %d: stream is not format v2 (no commit markers to tail)", t.slot)
		}
		t.version = FormatV2
		t.buf = t.buf[len(metaMagic):]
	}

	var metas []Meta
	var certs []LoopCert
	pos := 0
	for pos < len(t.buf) {
		body, marker, n, err := decodeV2Frame(t.buf[pos:])
		if errors.Is(err, errFrameTorn) {
			break // the append in progress; the rest arrives later
		}
		if err != nil {
			return metas, certs, fmt.Errorf("trace: tail meta slot %d, record %d: %w", t.slot, t.records, err)
		}
		switch marker {
		case metaCommit:
			var m Meta
			used, err := DecodeMeta(body, &m)
			if err == nil && used != len(body) {
				err = fmt.Errorf("record body is %d bytes but its encoding uses %d", len(body), used)
			}
			if err != nil {
				return metas, certs, fmt.Errorf("trace: tail meta slot %d, record %d: %w", t.slot, t.records, err)
			}
			metas = append(metas, m)
		case metaExt:
			// Extension record: uvarint record type, then a type-specific
			// payload. Unknown types are skipped by the length framing.
			recType, k := binary.Uvarint(body)
			if k <= 0 {
				return metas, certs, fmt.Errorf("trace: tail meta slot %d, record %d: truncated extension record", t.slot, t.records)
			}
			if recType == certRecType {
				var c LoopCert
				if err := decodeCert(body[k:], &c); err != nil {
					return metas, certs, fmt.Errorf("trace: tail meta slot %d, record %d: %w", t.slot, t.records, err)
				}
				certs = append(certs, c)
			}
		}
		pos += n
		t.records++
	}
	t.buf = t.buf[pos:]
	return metas, certs, nil
}

// skipConsumed advances a freshly opened reader past the bytes a previous
// poll already consumed, seeking when the source allows it.
func skipConsumed(src io.Reader, n int64) error {
	if n == 0 {
		return nil
	}
	if s, ok := src.(io.Seeker); ok {
		_, err := s.Seek(n, io.SeekStart)
		return err
	}
	_, err := io.CopyN(io.Discard, src, n)
	if errors.Is(err, io.EOF) {
		// The file shrank below what we already consumed: it was replaced
		// or truncated under us, which tailing cannot survive.
		return errors.New("file shrank below the consumed prefix")
	}
	return err
}

// LogTail follows a growing log file, tracking the committed-frame
// frontier without decompressing payloads. Each Poll scans the frames that
// became durable since the last one and reports the file offset and
// logical (uncompressed) size covered by whole committed frames — the
// prefix a strict reader can consume without ever hitting a torn tail.
type LogTail struct {
	store   Store
	slot    int
	r       *LogReader
	retries uint64
}

// NewLogTail returns a tail over the log file of a thread slot.
func NewLogTail(store Store, slot int) *LogTail {
	return &LogTail{store: store, slot: slot}
}

// Retries returns how many polls ended on a torn tail and will re-read
// the frame once more bytes land — the stream.tail_retries signal.
func (t *LogTail) Retries() uint64 { return t.retries }

// Close releases the tail's reader, if any.
func (t *LogTail) Close() error {
	if t.r == nil {
		return nil
	}
	r := t.r
	t.r = nil
	return r.Close()
}

// skipAllBlocks makes NextFrom discard every payload: the tail only needs
// the framing walk to find the committed frontier.
func skipAllBlocks(start, rawLen uint64) bool { return true }

// Poll advances over newly committed frames and returns the committed
// frontier: the file offset ending the last whole frame and the logical
// bytes those frames decode to. An error means real corruption; a torn
// tail just stops the scan at the boundary and retries next poll.
func (t *LogTail) Poll() (fileOff, logical uint64, err error) {
	if t.r == nil {
		src, err := t.store.OpenLog(t.slot)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return 0, 0, nil
			}
			return 0, 0, fmt.Errorf("trace: tail log slot %d: %w", t.slot, err)
		}
		t.r = NewLogReader(src)
		t.r.SetTail(true)
	} else {
		// A seekable source (a DirStore *os.File) observes growth in
		// place: rewinding to the torn boundary is enough. Snapshot
		// sources need a fresh reader over the grown file.
		var src io.ReadCloser
		if _, seekable := t.r.c.(io.Seeker); !seekable {
			src, err = t.store.OpenLog(t.slot)
			if err != nil {
				return 0, 0, fmt.Errorf("trace: tail log slot %d: %w", t.slot, err)
			}
		}
		if src != nil || t.r.Torn() {
			if err := t.r.Resume(src); err != nil {
				return 0, 0, fmt.Errorf("trace: tail log slot %d: %w", t.slot, err)
			}
		}
	}
	for {
		_, _, err := t.r.NextFrom(skipAllBlocks)
		if err == nil {
			continue
		}
		if errors.Is(err, ErrTornTail) {
			t.retries++
			break
		}
		if errors.Is(err, io.EOF) {
			break
		}
		return t.r.Offset(), t.r.RawBytes(), err
	}
	return t.r.Offset(), t.r.RawBytes(), nil
}
