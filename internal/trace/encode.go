package trace

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Event encoding
//
// Access (KindAccess):
//
//	tag byte: 1 w a sss mm
//	  bit 7    = 1 (access marker)
//	  bit 6    = write
//	  bit 5    = atomic
//	  bits 2-4 = log2(size)        (sizes 1..128 bytes)
//	  bits 0-1 = reserved (0)
//	zigzag-varint delta of Addr from the previous access address
//	uvarint PC id
//
// Mutex events:
//
//	tag byte 0x01 (acquire) or 0x02 (release), then uvarint mutex id.
//
// Address deltas exploit spatial locality of array sweeps: consecutive
// strided accesses encode in 2–4 bytes. The previous-address register
// resets to zero at the start of every encoder (and therefore every
// interval fragment begins a fresh delta chain only if the encoder is
// reset; the collector keeps one encoder per flush buffer and the decoder
// mirrors its state, so fragment boundaries inside a buffer are safe).

const (
	tagAcquire = 0x01
	tagRelease = 0x02
	tagAccess  = 0x80
)

// Encoder appends encoded events to an internal buffer.
// The zero value is ready to use.
type Encoder struct {
	buf      []byte
	prevAddr uint64
	events   int
}

// Reset clears the buffer and the delta state, keeping capacity.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.prevAddr = 0
	e.events = 0
}

// Bytes returns the encoded buffer. The slice is invalidated by further
// writes or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size in bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Events returns the number of events encoded since the last Reset.
func (e *Encoder) Events() int { return e.events }

// Access encodes a memory access event. Size must be a power of two in
// 1..128.
func (e *Encoder) Access(addr uint64, size uint8, write, atomic bool, pc uint64) {
	tag := byte(tagAccess)
	if write {
		tag |= 1 << 6
	}
	if atomic {
		tag |= 1 << 5
	}
	lg := uint8(bits.TrailingZeros8(size))
	if size == 0 || size != 1<<lg || lg > 7 {
		panic(fmt.Sprintf("trace: invalid access size %d", size))
	}
	tag |= lg << 2
	e.buf = append(e.buf, tag)
	delta := int64(addr - e.prevAddr)
	e.buf = binary.AppendUvarint(e.buf, zigzag(delta))
	e.prevAddr = addr
	e.buf = binary.AppendUvarint(e.buf, pc)
	e.events++
}

// Acquire encodes a mutex acquisition.
func (e *Encoder) Acquire(mutex uint64) {
	e.buf = append(e.buf, tagAcquire)
	e.buf = binary.AppendUvarint(e.buf, mutex)
	e.events++
}

// Release encodes a mutex release.
func (e *Encoder) Release(mutex uint64) {
	e.buf = append(e.buf, tagRelease)
	e.buf = binary.AppendUvarint(e.buf, mutex)
	e.events++
}

// Decoder decodes events from a byte stream produced by Encoder. Its delta
// state must track the encoder's: decode exactly the bytes one encoder
// produced, in order, from a fresh Decoder per flush buffer.
type Decoder struct {
	buf      []byte
	pos      int
	prevAddr uint64
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset repoints the decoder at buf and clears the delta state.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.pos = 0
	d.prevAddr = 0
}

// Pos returns the byte position of the next event.
func (d *Decoder) Pos() int { return d.pos }

// More reports whether events remain.
func (d *Decoder) More() bool { return d.pos < len(d.buf) }

// Next decodes the next event into ev. It returns an error on a malformed
// or truncated stream.
func (d *Decoder) Next(ev *Event) error {
	if d.pos >= len(d.buf) {
		return fmt.Errorf("trace: decode past end of buffer")
	}
	tag := d.buf[d.pos]
	d.pos++
	switch {
	case tag&tagAccess != 0:
		ev.Kind = KindAccess
		ev.Write = tag&(1<<6) != 0
		ev.Atomic = tag&(1<<5) != 0
		ev.Size = 1 << ((tag >> 2) & 0x7)
		z, n := binary.Uvarint(d.buf[d.pos:])
		if n <= 0 {
			return fmt.Errorf("trace: bad address delta at %d", d.pos)
		}
		d.pos += n
		d.prevAddr += uint64(unzigzag(z))
		ev.Addr = d.prevAddr
		pc, n := binary.Uvarint(d.buf[d.pos:])
		if n <= 0 {
			return fmt.Errorf("trace: bad pc at %d", d.pos)
		}
		d.pos += n
		ev.PC = pc
		return nil
	case tag == tagAcquire, tag == tagRelease:
		if tag == tagAcquire {
			ev.Kind = KindMutexAcquire
		} else {
			ev.Kind = KindMutexRelease
		}
		m, n := binary.Uvarint(d.buf[d.pos:])
		if n <= 0 {
			return fmt.Errorf("trace: bad mutex id at %d", d.pos)
		}
		d.pos += n
		ev.Mutex = m
		return nil
	default:
		return fmt.Errorf("trace: unknown event tag %#x at %d", tag, d.pos-1)
	}
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Meta encoding: one uvarint per field, in struct order. PPID encodes
// NoParent as 0 and otherwise pid+1, keeping root records to one byte.

// AppendMeta appends the binary encoding of m to dst.
func AppendMeta(dst []byte, m *Meta) []byte {
	dst = binary.AppendUvarint(dst, m.PID)
	pp := uint64(0)
	if m.PPID != NoParent {
		pp = m.PPID + 1
	}
	dst = binary.AppendUvarint(dst, pp)
	dst = binary.AppendUvarint(dst, m.BID)
	dst = binary.AppendUvarint(dst, m.Offset)
	dst = binary.AppendUvarint(dst, m.Span)
	dst = binary.AppendUvarint(dst, uint64(m.Level))
	dst = binary.AppendUvarint(dst, m.DataBegin)
	dst = binary.AppendUvarint(dst, m.DataSize)
	dst = binary.AppendUvarint(dst, m.ParentTID)
	dst = binary.AppendUvarint(dst, m.ParentBID)
	dst = binary.AppendUvarint(dst, m.Seq)
	dst = binary.AppendUvarint(dst, uint64(m.Held))
	dst = binary.AppendUvarint(dst, m.Cut)
	dst = binary.AppendUvarint(dst, m.ParentCut)
	flags := uint64(0)
	if m.Async {
		flags |= 1
	}
	dst = binary.AppendUvarint(dst, flags)
	return dst
}

// DecodeMeta decodes one meta record from src, returning the bytes
// consumed.
func DecodeMeta(src []byte, m *Meta) (int, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated meta record at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	var err error
	read := func(dst *uint64) {
		if err != nil {
			return
		}
		*dst, err = next()
	}
	read(&m.PID)
	var pp uint64
	read(&pp)
	read(&m.BID)
	read(&m.Offset)
	read(&m.Span)
	var level uint64
	read(&level)
	read(&m.DataBegin)
	read(&m.DataSize)
	read(&m.ParentTID)
	read(&m.ParentBID)
	read(&m.Seq)
	var held uint64
	read(&held)
	m.Held = MutexSet(held)
	read(&m.Cut)
	read(&m.ParentCut)
	var flags uint64
	read(&flags)
	m.Async = flags&1 != 0
	if err != nil {
		return 0, err
	}
	if pp == 0 {
		m.PPID = NoParent
	} else {
		m.PPID = pp - 1
	}
	if m.Span == 0 {
		return 0, fmt.Errorf("trace: meta record with zero span")
	}
	m.Level = uint32(level)
	return pos, nil
}
