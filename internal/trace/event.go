// Package trace defines SWORD's on-disk trace model: memory-access and
// OpenMP synchronization events, their compact binary encoding, the
// per-barrier-interval meta-data records of Table I, and the log/meta store
// abstractions used by the dynamic collector and the offline analyzer.
//
// Each analyzed thread owns one log file and one meta-data file. The log
// file is a sequence of compressed blocks, each holding a batch of encoded
// events; byte offsets recorded in meta-data records refer to *logical*
// (uncompressed) positions so the offline analyzer can stream the log,
// decompressing block by block, and slice out the byte range of any barrier
// interval fragment.
package trace

import "fmt"

// Kind discriminates the events stored in a log file. Region and barrier
// boundaries are not stored as log events: they delimit interval fragments
// and live in the meta-data file instead, exactly as in the paper where the
// meta-data drives chunked extraction of access data.
type Kind uint8

const (
	// KindAccess is a memory load or store executed in a parallel region.
	KindAccess Kind = iota
	// KindMutexAcquire marks entry into a critical section or lock.
	KindMutexAcquire
	// KindMutexRelease marks exit from a critical section or lock.
	KindMutexRelease
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindAccess:
		return "access"
	case KindMutexAcquire:
		return "mutex-acquire"
	case KindMutexRelease:
		return "mutex-release"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// MutexSet is the set of mutexes held at an access, as a bitset indexed by
// mutex id. The runtime bounds the number of distinct mutexes per run to
// MaxMutexes so the set fits in one word; real OpenMP codes use a handful
// of named critical sections and locks.
type MutexSet uint64

// MaxMutexes is the largest number of distinct mutex ids representable in a
// MutexSet.
const MaxMutexes = 64

// With returns the set extended with mutex id.
func (s MutexSet) With(id uint64) MutexSet { return s | 1<<(id&63) }

// Without returns the set with mutex id removed.
func (s MutexSet) Without(id uint64) MutexSet { return s &^ (1 << (id & 63)) }

// Has reports whether mutex id is in the set.
func (s MutexSet) Has(id uint64) bool { return s&(1<<(id&63)) != 0 }

// Intersects reports whether the two sets share a mutex. Two conflicting
// accesses protected by a common mutex cannot race.
func (s MutexSet) Intersects(o MutexSet) bool { return s&o != 0 }

// Empty reports whether no mutex is held.
func (s MutexSet) Empty() bool { return s == 0 }

// Event is one decoded log record.
type Event struct {
	Kind Kind

	// Access payload (KindAccess).
	Addr   uint64 // first byte of the accessed location
	Size   uint8  // access width in bytes (power of two, 1..128)
	Write  bool   // store rather than load
	Atomic bool   // atomic operation (atomics do not race with atomics)
	PC     uint64 // interned program-counter id of the access site

	// Mutex payload (KindMutexAcquire / KindMutexRelease).
	Mutex uint64 // mutex id
}

// NoParent marks a root parallel region's missing parent id in meta-data
// records (the "–" of Table I).
const NoParent = ^uint64(0)

// Meta is one line of a thread's meta-data file: a *fragment* of a barrier
// interval, i.e. a contiguous byte range of the thread's log belonging to
// one (region, barrier-id) interval. Nested regions split the enclosing
// interval's data, producing several fragments with the same PID/BID.
//
// Fields mirror Table I of the paper: pid, ppid, bid, offset, span, level,
// data begin, size. ParentTID, ParentBID and Seq extend the record with the
// fork point of the region inside its parent ("other information" in the
// paper), which the offline analyzer needs to order sibling regions.
type Meta struct {
	PID       uint64 // parallel region instance id
	PPID      uint64 // parent region instance id, NoParent at the root
	BID       uint64 // barrier interval id within the region
	Offset    uint64 // offset-span label last pair: tid + BID*Span
	Span      uint64 // team size of the region
	Level     uint32 // nesting level of parallelism (1 = outermost)
	DataBegin uint64 // logical byte offset of the fragment in the log file
	DataSize  uint64 // fragment length in bytes

	ParentTID uint64 // thread id in the parent region that forked this one
	ParentBID uint64 // barrier interval of the parent in which the fork ran
	Seq       uint64 // index of this region among regions forked by the same parent interval

	// Held is the mutex set the thread holds as the fragment opens, making
	// each fragment self-contained for streamed analysis: the analyzer
	// seeds the running held set from it and applies the fragment's own
	// mutex events.
	Held MutexSet

	// Cut is the fragment's index among the interval's fragment
	// boundaries: fragments split at nested forks, task spawns and
	// taskwaits, and Cut orders a fragment relative to those events. The
	// analyzer compares Cut against child regions' fork/wait cuts to order
	// task activity within the interval.
	Cut uint64
	// ParentCut is the boundary index in the parent interval at which
	// this region was forked or spawned.
	ParentCut uint64
	// Async marks fragments of an OpenMP task region (the tasking
	// extension): the parent did not suspend at the fork.
	Async bool
}

// TID returns the thread id within the region team (offset mod span).
func (m *Meta) TID() uint64 {
	if m.Span == 0 {
		return 0
	}
	return m.Offset % m.Span
}

// IntervalKey identifies a barrier interval of one thread in one region
// instance; all fragments sharing a key belong to the same interval.
type IntervalKey struct {
	PID uint64
	TID uint64
	BID uint64
}

// Key returns the interval key of the fragment.
func (m *Meta) Key() IntervalKey {
	return IntervalKey{PID: m.PID, TID: m.TID(), BID: m.BID}
}
