package trace

import (
	"bytes"
	"io"
	"testing"

	"sword/internal/compress"
)

// fuzzSeedLogs builds valid v1 and v2 logs plus characteristic corruptions
// as the seed corpus: the fuzzer then mutates real framing instead of
// having to discover it.
func fuzzSeedLogs() [][]byte {
	blocks := [][]byte{
		bytes.Repeat([]byte{0x9c, 0x10, 0x01}, 300),
		[]byte("second block"),
	}
	var seeds [][]byte
	for _, version := range []int{FormatV1, FormatV2} {
		for _, codec := range []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()} {
			var sink byteSink
			w := NewLogWriterVersion(&sink, codec, version)
			for _, blk := range blocks {
				w.WriteBlock(blk)
			}
			w.Close()
			data := sink.Bytes()
			seeds = append(seeds, data)
			// Torn tail and a flipped payload byte.
			if len(data) > 10 {
				seeds = append(seeds, data[:len(data)-7])
				bad := bytes.Clone(data)
				bad[len(bad)/2] ^= 0xFF
				seeds = append(seeds, bad)
			}
		}
	}
	// Framing that declares an implausible block.
	seeds = append(seeds, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x05, 0x00, 1, 2, 3, 4, 5})
	return seeds
}

// FuzzLogReader feeds arbitrary bytes to both strict and tolerant readers.
// The contract under fuzzing: no panic, no unbounded allocation (the
// MaxBlockBytes cap), and tolerant mode never surfaces an error — damage
// becomes SalvageReport entries, not failures.
func FuzzLogReader(f *testing.F) {
	for _, seed := range fuzzSeedLogs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, tolerant := range []bool{false, true} {
			r := NewLogReader(io.NopCloser(bytes.NewReader(data)))
			r.SetTolerant(tolerant)
			var logical uint64
			for {
				start, raw, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					if tolerant {
						t.Fatalf("tolerant reader returned error: %v", err)
					}
					break
				}
				if uint64(len(raw)) > MaxBlockBytes {
					t.Fatalf("block of %d bytes exceeds cap", len(raw))
				}
				if start < logical {
					t.Fatalf("logical offsets went backwards: %d after %d", start, logical)
				}
				logical = start + uint64(len(raw))
			}
			if r.RawBytes() < logical {
				t.Fatalf("RawBytes %d below delivered %d", r.RawBytes(), logical)
			}
		}
	})
}

// FuzzDecodeMeta feeds arbitrary bytes to the strict and tolerant meta
// readers: no panic, and the tolerant intact prefix must re-encode to
// valid records.
func FuzzDecodeMeta(f *testing.F) {
	metas := []Meta{
		{PID: 0, PPID: NoParent, BID: 0, Span: 4, Level: 1, DataSize: 100},
		{PID: 1, PPID: 0, BID: 2, Offset: 6, Span: 4, Level: 2, DataBegin: 40, DataSize: 10, ParentTID: 1, ParentBID: 1, Seq: 3, Held: 2, Cut: 1, ParentCut: 2, Async: true},
	}
	for _, version := range []int{FormatV1, FormatV2} {
		var sink byteSink
		w := NewMetaWriterVersion(&sink, version)
		for i := range metas {
			w.Append(&metas[i])
		}
		w.Close()
		f.Add(sink.Bytes())
		f.Add(sink.Bytes()[:sink.Len()-3])
	}
	f.Add([]byte(metaMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict, serr := ReadAllMeta(io.NopCloser(bytes.NewReader(data)))
		got, rep, err := ReadAllMetaTolerant(io.NopCloser(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("tolerant meta read errored: %v", err)
		}
		if rep.IntactRecords != len(got) {
			t.Fatalf("IntactRecords %d != %d records", rep.IntactRecords, len(got))
		}
		// Strict success implies tolerant agreement, record for record.
		if serr == nil {
			if len(strict) != len(got) || !rep.Clean() {
				t.Fatalf("strict read %d records but tolerant %d (report %+v)", len(strict), len(got), rep)
			}
		}
		for i := range got {
			if got[i].Span == 0 {
				t.Fatalf("record %d has zero span", i)
			}
		}
	})
}
