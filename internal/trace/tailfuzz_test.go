package trace

import (
	"bytes"
	"testing"

	"sword/internal/compress"
)

// FuzzTailGrowingLog drives a growing trace through a FaultStore: a
// pre-encoded valid log and meta stream land in the store in
// script-chosen partial appends, interleaved with tail polls. The
// contract under fuzzing: a torn tail is never reported as corruption
// (no poll may error), the committed log frontier only advances and only
// lands on block boundaries, and every meta record is delivered exactly
// once, in file order.
func FuzzTailGrowingLog(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 200, 90, 7})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{5, 17, 254, 3}, 40))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) == 0 {
			script = []byte{0}
		}
		if len(script) > 2048 {
			// Each byte is one interleaving op and every poll reopens the
			// snapshot reader; cap the schedule so huge inputs stay fast.
			script = script[:2048]
		}
		codecs := []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()}
		codec := codecs[int(script[0])%len(codecs)]

		// Ground truth: a valid log (one frame per block, as the
		// live-flush collector commits them) and a valid v2 meta stream.
		nBlocks := 1 + int(script[0]>>2)%6
		var logSink byteSink
		lw := NewLogWriter(&logSink, codec)
		boundaries := map[uint64]bool{0: true}
		for i := 0; i < nBlocks; i++ {
			blk := bytes.Repeat([]byte{script[i%len(script)]}, 37+29*i)
			if err := lw.WriteBlock(blk); err != nil {
				t.Fatal(err)
			}
			boundaries[lw.Logical()] = true
		}
		total := lw.Logical()
		if err := lw.Close(); err != nil {
			t.Fatal(err)
		}
		fullLog := logSink.Bytes()

		nMetas := 1 + int(script[len(script)-1])%5
		wantMetas := make([]Meta, nMetas)
		for i := range wantMetas {
			wantMetas[i] = Meta{
				PID: uint64(i), PPID: NoParent, BID: uint64(i % 3),
				Offset: uint64(2 * i), Span: 4, Level: 1,
				DataBegin: uint64(41 * i), DataSize: uint64(7 + i),
				ParentTID: uint64(i), Seq: uint64(i), Async: i%2 == 0,
			}
		}
		var metaSink byteSink
		mw := NewMetaWriter(&metaSink)
		for i := range wantMetas {
			if err := mw.Append(&wantMetas[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := mw.Close(); err != nil {
			t.Fatal(err)
		}
		fullMeta := metaSink.Bytes()

		// The growing store: the encodings arrive in script-chosen cuts,
		// so polls routinely land mid-frame.
		store := NewFaultStore(NewMemStore())
		logDst, err := store.CreateLog(0)
		if err != nil {
			t.Fatal(err)
		}
		metaDst, err := store.CreateMeta(0)
		if err != nil {
			t.Fatal(err)
		}
		logTail := NewLogTail(store, 0)
		defer logTail.Close()
		metaTail := NewMetaTail(store, 0)

		var logPos, metaPos int
		var lastOff, lastLogical uint64
		var got []Meta
		pollLog := func() {
			off, logical, err := logTail.Poll()
			if err != nil {
				t.Fatalf("log tail errored on an intact growing log: %v", err)
			}
			if off < lastOff || logical < lastLogical {
				t.Fatalf("log frontier went backwards: (%d,%d) after (%d,%d)",
					off, logical, lastOff, lastLogical)
			}
			if !boundaries[logical] {
				t.Fatalf("log frontier %d is not a block boundary", logical)
			}
			lastOff, lastLogical = off, logical
		}
		pollMeta := func() {
			metas, _, err := metaTail.Poll()
			if err != nil {
				t.Fatalf("meta tail errored on an intact growing stream: %v", err)
			}
			got = append(got, metas...)
		}
		for _, b := range script {
			switch b % 4 {
			case 0:
				n := min(1+int(b)/4, len(fullLog)-logPos)
				if n > 0 {
					if _, err := logDst.Write(fullLog[logPos : logPos+n]); err != nil {
						t.Fatal(err)
					}
					logPos += n
				}
			case 1:
				n := min(1+int(b)/4, len(fullMeta)-metaPos)
				if n > 0 {
					if _, err := metaDst.Write(fullMeta[metaPos : metaPos+n]); err != nil {
						t.Fatal(err)
					}
					metaPos += n
				}
			case 2:
				pollLog()
			case 3:
				pollMeta()
			}
		}
		// Run the trace out: the rest of both files lands and one final
		// poll each must surface exactly what is still outstanding.
		if _, err := logDst.Write(fullLog[logPos:]); err != nil {
			t.Fatal(err)
		}
		if _, err := metaDst.Write(fullMeta[metaPos:]); err != nil {
			t.Fatal(err)
		}
		if err := logDst.Close(); err != nil {
			t.Fatal(err)
		}
		if err := metaDst.Close(); err != nil {
			t.Fatal(err)
		}
		pollLog()
		pollMeta()
		if lastLogical != total {
			t.Fatalf("final log frontier %d, want the full %d logical bytes", lastLogical, total)
		}
		if len(got) != len(wantMetas) {
			t.Fatalf("delivered %d meta records, want %d exactly once", len(got), len(wantMetas))
		}
		for i := range got {
			if got[i] != wantMetas[i] {
				t.Fatalf("meta %d: got %+v want %+v", i, got[i], wantMetas[i])
			}
		}
	})
}
