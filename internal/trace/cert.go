package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Extension meta records.
//
// Format v2 frames every meta record as
//
//	uvarint bodyLen | body | crc32c(body) LE | marker
//
// with marker 0xC5 for a barrier-interval fragment (Meta). The trailing
// marker byte doubles as the record-type discriminator: marker 0xC6
// introduces an *extension* record whose body begins with a uvarint
// record type followed by a type-specific payload. Readers that do not
// understand a record type skip it by the length framing, so new record
// types never break old analyzers — the property the loop-certificate
// subsystem relies on. v1 streams never contain extension records.
const metaExt = 0xC6

// Extension record types.
const (
	// certRecType is a static worksharing-loop certificate (LoopCert).
	certRecType = 1
)

// Loop schedule kinds as persisted in a certificate. Only the static
// schedules are certifiable; the values are part of the trace format.
const (
	CertSchedStatic = 0 // contiguous chunks, ForOpt's default split
	CertSchedCyclic = 1 // round-robin chunks of Chunk iterations
)

// CertDecl is one captured affine access pattern of a certified loop:
// for iteration i the program touches the Span elements starting at
// element Stride·i+Offset of the array at Base, each Elem bytes wide.
type CertDecl struct {
	Base   uint64 // first byte of the array
	Elem   uint64 // element width in bytes (1, 4 or 8)
	Stride int64  // elements advanced per iteration
	Offset int64  // element offset of the block's first element
	Span   uint64 // elements touched per iteration (>= 1)
	Write  bool
	PC     uint64
}

// Addr returns the address of the k-th element of iteration i.
func (d *CertDecl) Addr(i int64, k uint64) uint64 {
	return d.Base + d.Elem*uint64(d.Stride*i+d.Offset+int64(k))
}

// CertThread is one participating thread's view of a certified loop:
// its interval identity (TID — the trace thread id — plus the fragment
// cut position at arm time) and, per declaration, how many accesses the
// collection-side filter dropped. Dropped accesses are always a prefix
// of the thread's captured-access sequence in canonical order (chunk
// pieces ascending, iterations ascending, block elements ascending), so
// the analyzer can rematerialize them exactly.
type CertThread struct {
	TID     uint64
	Cut     uint64
	Dropped []uint64 // per-decl dropped access counts, len == len(Decls)
}

// LoopCert is a static worksharing-loop certificate: the thread →
// iteration-chunk mapping of one statically scheduled loop plus the
// affine access declarations whose pairwise disjointness across threads
// was proven at arm time. Clean certificates additionally promise the
// loop's captured accesses were the *only* accesses of each thread's
// barrier interval, so the analyzer may retire the whole pair class;
// voided certificates only promise the dropped-access counts are exact,
// and the analyzer rematerializes them before comparison.
type LoopCert struct {
	PID     uint64 // parallel region id
	BID     uint64 // barrier interval the loop ran in
	Sched   uint8  // CertSchedStatic or CertSchedCyclic
	Chunk   int64  // cyclic chunk size (>= 1); unused for static
	Lo      int64  // loop bounds [Lo, Hi)
	Hi      int64
	NT      uint64 // team size
	Clean   bool
	Decls   []CertDecl
	Threads []CertThread
}

// PiecesFor appends thread t's iteration ranges [start, end) to buf and
// returns it. The ranges replicate the runtime's worksharing split
// exactly — static: one contiguous piece with the remainder spread over
// the first Hi-Lo mod NT threads; cyclic: round-robin Chunk-sized
// pieces — and are emitted in execution order. This is the single
// source of truth for the split: the executing loop, the disjointness
// proof, and the analyzer's rematerialization all derive from it.
func (c *LoopCert) PiecesFor(t uint64, buf [][2]int64) [][2]int64 {
	lo, hi, nt := c.Lo, c.Hi, int64(c.NT)
	if hi <= lo || int64(t) >= nt {
		return buf
	}
	if c.Sched == CertSchedStatic {
		n := hi - lo
		chunk, rem := n/nt, n%nt
		start := lo + int64(t)*chunk + min(int64(t), rem)
		end := start + chunk
		if int64(t) < rem {
			end++
		}
		if start < end {
			buf = append(buf, [2]int64{start, end})
		}
		return buf
	}
	chunk := c.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	for base := lo + int64(t)*chunk; base < hi; base += nt * chunk {
		end := min(base+chunk, hi)
		buf = append(buf, [2]int64{base, end})
	}
	return buf
}

// DroppedAccesses calls emit for thread entry th's first
// Threads[th].Dropped[d] accesses of declaration d in canonical order —
// exactly the accesses the collection-side filter dropped. It returns
// the number of accesses emitted (less than the recorded count only on
// a corrupt certificate whose count exceeds the loop's footprint).
func (c *LoopCert) DroppedAccesses(th, d int, emit func(addr uint64)) uint64 {
	if th >= len(c.Threads) || d >= len(c.Decls) {
		return 0
	}
	want := c.Threads[th].Dropped[d]
	if want == 0 {
		return 0
	}
	decl := &c.Decls[d]
	var done uint64
	var scratch [4][2]int64
	for _, piece := range c.PiecesFor(uint64(th), scratch[:0]) {
		for i := piece[0]; i < piece[1]; i++ {
			for k := uint64(0); k < decl.Span; k++ {
				emit(decl.Addr(i, k))
				done++
				if done == want {
					return done
				}
			}
		}
	}
	return done
}

// appendCert encodes a certificate payload (without the extension-record
// type tag or framing).
func appendCert(dst []byte, c *LoopCert) []byte {
	dst = binary.AppendUvarint(dst, c.PID)
	dst = binary.AppendUvarint(dst, c.BID)
	dst = binary.AppendUvarint(dst, uint64(c.Sched))
	dst = binary.AppendVarint(dst, c.Chunk)
	dst = binary.AppendVarint(dst, c.Lo)
	dst = binary.AppendVarint(dst, c.Hi)
	dst = binary.AppendUvarint(dst, c.NT)
	clean := uint64(0)
	if c.Clean {
		clean = 1
	}
	dst = binary.AppendUvarint(dst, clean)
	dst = binary.AppendUvarint(dst, uint64(len(c.Decls)))
	for i := range c.Decls {
		d := &c.Decls[i]
		dst = binary.AppendUvarint(dst, d.Base)
		dst = binary.AppendUvarint(dst, d.Elem)
		dst = binary.AppendVarint(dst, d.Stride)
		dst = binary.AppendVarint(dst, d.Offset)
		dst = binary.AppendUvarint(dst, d.Span)
		w := uint64(0)
		if d.Write {
			w = 1
		}
		dst = binary.AppendUvarint(dst, w)
		dst = binary.AppendUvarint(dst, d.PC)
	}
	dst = binary.AppendUvarint(dst, uint64(len(c.Threads)))
	for i := range c.Threads {
		t := &c.Threads[i]
		dst = binary.AppendUvarint(dst, t.TID)
		dst = binary.AppendUvarint(dst, t.Cut)
		for _, n := range t.Dropped {
			dst = binary.AppendUvarint(dst, n)
		}
	}
	return dst
}

// maxCertList bounds the declared declaration and thread counts of an
// untrusted certificate record; with the record body already bounded by
// maxMetaRecordBytes this only guards against implausible-length
// allocations before the payload runs out.
const maxCertList = 1024

// decodeCert decodes a certificate payload produced by appendCert. It
// must consume src exactly.
func decodeCert(src []byte, c *LoopCert) error {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(src[pos:])
		if n <= 0 {
			return 0, errors.New("truncated certificate record")
		}
		pos += n
		return v, nil
	}
	nextSigned := func() (int64, error) {
		v, n := binary.Varint(src[pos:])
		if n <= 0 {
			return 0, errors.New("truncated certificate record")
		}
		pos += n
		return v, nil
	}
	var err error
	read := func(dst *uint64) {
		if err == nil {
			*dst, err = next()
		}
	}
	readSigned := func(dst *int64) {
		if err == nil {
			*dst, err = nextSigned()
		}
	}
	read(&c.PID)
	read(&c.BID)
	var sched uint64
	read(&sched)
	readSigned(&c.Chunk)
	readSigned(&c.Lo)
	readSigned(&c.Hi)
	read(&c.NT)
	var clean uint64
	read(&clean)
	var ndecl uint64
	read(&ndecl)
	if err != nil {
		return err
	}
	if sched > CertSchedCyclic {
		return fmt.Errorf("unknown certificate schedule %d", sched)
	}
	c.Sched = uint8(sched)
	c.Clean = clean == 1
	if ndecl > maxCertList {
		return fmt.Errorf("implausible certificate declaration count %d", ndecl)
	}
	c.Decls = make([]CertDecl, ndecl)
	for i := range c.Decls {
		d := &c.Decls[i]
		read(&d.Base)
		read(&d.Elem)
		readSigned(&d.Stride)
		readSigned(&d.Offset)
		read(&d.Span)
		var w uint64
		read(&w)
		read(&d.PC)
		if err != nil {
			return err
		}
		d.Write = w == 1
		if d.Span == 0 || d.Elem == 0 {
			return errors.New("certificate declaration with zero span or element width")
		}
	}
	var nth uint64
	read(&nth)
	if err != nil {
		return err
	}
	if nth > maxCertList {
		return fmt.Errorf("implausible certificate thread count %d", nth)
	}
	c.Threads = make([]CertThread, nth)
	for i := range c.Threads {
		t := &c.Threads[i]
		read(&t.TID)
		read(&t.Cut)
		t.Dropped = make([]uint64, ndecl)
		for d := range t.Dropped {
			read(&t.Dropped[d])
		}
		if err != nil {
			return err
		}
	}
	if pos != len(src) {
		return fmt.Errorf("certificate record is %d bytes but its encoding uses %d", len(src), pos)
	}
	return nil
}

// AppendCert writes one loop-certificate extension record. Extension
// records exist only in format v2; a v1 writer returns an error rather
// than corrupting the bare-record stream.
func (w *MetaWriter) AppendCert(c *LoopCert) error {
	if w.version != FormatV2 {
		return errors.New("trace: certificate records require format v2")
	}
	w.buf = binary.AppendUvarint(w.buf[:0], certRecType)
	w.buf = appendCert(w.buf, c)
	if len(w.buf) > maxMetaRecordBytes {
		return fmt.Errorf("trace: certificate record is %d bytes, exceeding the %d-byte record bound",
			len(w.buf), maxMetaRecordBytes)
	}
	w.head = binary.AppendUvarint(w.head[:0], uint64(len(w.buf)))
	var tail [5]byte
	binary.LittleEndian.PutUint32(tail[:4], crc32.Checksum(w.buf, castagnoli))
	tail[4] = metaExt
	w.buf = append(w.buf, tail[:]...)
	if _, err := w.w.Write(w.head); err != nil {
		return fmt.Errorf("trace: write certificate record: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("trace: write certificate record: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: commit certificate record: %w", err)
	}
	return nil
}

// CertBound returns a conservative upper bound on the encoded size of a
// certificate with the given declaration and thread counts. The runtime
// refuses to arm a certificate whose bound exceeds the meta-record size
// limit, so dropping never starts for a record that could not be
// persisted.
func CertBound(decls, threads int) int {
	// 10 bytes per uvarint/varint: 10 fixed header fields, 7 per decl,
	// (2 + decls) per thread, plus the record-type tag.
	return 10 * (1 + 10 + 7*decls + threads*(2+decls))
}

// MaxCertRecordBytes is the size bound AppendCert enforces.
const MaxCertRecordBytes = maxMetaRecordBytes

// ReadAllMetaCerts is ReadAllMeta plus the loop-certificate extension
// records interleaved in the stream.
func ReadAllMetaCerts(r io.ReadCloser) ([]Meta, []LoopCert, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: read meta file: %w", err)
	}
	metas, certs, _, err := decodeAllMetaCerts(data, false)
	if err != nil {
		return nil, nil, err
	}
	return metas, certs, nil
}

// ReadAllMetaCertsTolerant is ReadAllMetaTolerant plus the
// loop-certificate extension records.
func ReadAllMetaCertsTolerant(r io.ReadCloser) ([]Meta, []LoopCert, *SalvageReport, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("trace: read meta file: %w", err)
	}
	metas, certs, rep, _ := decodeAllMetaCerts(data, true)
	return metas, certs, rep, nil
}
