package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"reflect"
	"testing"
)

func testCert() *LoopCert {
	return &LoopCert{
		PID: 7, BID: 3, Sched: CertSchedCyclic, Chunk: 2, Lo: 1, Hi: 33, NT: 4,
		Clean: false,
		Decls: []CertDecl{
			{Base: 0x1000, Elem: 8, Stride: 3, Offset: -2, Span: 4, Write: true, PC: 0x40},
			{Base: 0x9000, Elem: 4, Stride: 1, Offset: 0, Span: 1, Write: false, PC: 0x41},
		},
		Threads: []CertThread{
			{TID: 0, Cut: 0, Dropped: []uint64{12, 8}},
			{TID: 1, Cut: 2, Dropped: []uint64{0, 0}},
			{TID: 2, Cut: 0, Dropped: []uint64{16, 16}},
			{TID: 3, Cut: 1, Dropped: []uint64{4, 0}},
		},
	}
}

// TestCertRoundTrip: certificate records survive the meta stream
// alongside fragment records, in order, without disturbing the Metas.
func TestCertRoundTrip(t *testing.T) {
	var sink byteSink
	w := NewMetaWriter(&sink)
	metas := testMetas()
	if err := w.Append(&metas[0]); err != nil {
		t.Fatal(err)
	}
	cert := testCert()
	if err := w.AppendCert(cert); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&metas[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := sink.Bytes()

	// The cert-aware reader returns both record kinds.
	got, certs, err := ReadAllMetaCerts(io.NopCloser(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !reflect.DeepEqual(got[0], metas[0]) || !reflect.DeepEqual(got[1], metas[1]) {
		t.Fatalf("metas disturbed by interleaved cert: %+v", got)
	}
	if len(certs) != 1 || !reflect.DeepEqual(&certs[0], cert) {
		t.Fatalf("cert round trip: got %+v, want %+v", certs, cert)
	}

	// The legacy readers skip extension records silently.
	legacy, err := ReadAllMeta(io.NopCloser(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != 2 {
		t.Fatalf("legacy reader saw %d metas, want 2", len(legacy))
	}
	tol, _, rep, err := ReadAllMetaCertsTolerant(io.NopCloser(bytes.NewReader(data)))
	if err != nil || rep.Truncated {
		t.Fatalf("tolerant read: %v truncated=%v", err, rep.Truncated)
	}
	if len(tol) != 2 {
		t.Fatalf("tolerant reader saw %d metas, want 2", len(tol))
	}
}

// TestCertUnknownRecTypeSkipped: a future extension record type must be
// skipped by the length framing, not rejected.
func TestCertUnknownRecTypeSkipped(t *testing.T) {
	var sink byteSink
	w := NewMetaWriter(&sink)
	metas := testMetas()
	if err := w.Append(&metas[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := sink.Bytes()

	// Hand-frame an extension record of unknown type 99.
	body := binary.AppendUvarint(nil, 99)
	body = append(body, 0xDE, 0xAD, 0xBE, 0xEF)
	rec := binary.AppendUvarint(nil, uint64(len(body)))
	rec = append(rec, body...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(body, castagnoli))
	rec = append(rec, metaExt)
	data = append(data, rec...)

	got, certs, err := ReadAllMetaCerts(io.NopCloser(bytes.NewReader(data)))
	if err != nil {
		t.Fatalf("unknown extension record rejected: %v", err)
	}
	if len(got) != 1 || len(certs) != 0 {
		t.Fatalf("got %d metas, %d certs; want 1, 0", len(got), len(certs))
	}
}

// TestCertV1Refused: the v1 bare-record stream has no framing for
// extension records.
func TestCertV1Refused(t *testing.T) {
	var sink byteSink
	w := NewMetaWriterVersion(&sink, FormatV1)
	if err := w.AppendCert(testCert()); err == nil {
		t.Fatal("v1 writer accepted a certificate record")
	}
}

// TestCertOversizedRefused: a certificate that would exceed the record
// size bound is refused at write time, never torn.
func TestCertOversizedRefused(t *testing.T) {
	c := testCert()
	c.Decls = make([]CertDecl, 600)
	for i := range c.Decls {
		c.Decls[i] = CertDecl{Base: ^uint64(0) - 1, Elem: 8, Span: 1, PC: ^uint64(0) - 1}
	}
	c.Threads = nil
	var sink byteSink
	w := NewMetaWriter(&sink)
	if err := w.AppendCert(c); err == nil {
		t.Fatal("oversized certificate record accepted")
	}
}

// TestCertTornTail: a cert record cut mid-frame is reported as
// truncation by the tolerant reader and as an error by the strict one.
func TestCertTornTail(t *testing.T) {
	var sink byteSink
	w := NewMetaWriter(&sink)
	metas := testMetas()
	if err := w.Append(&metas[0]); err != nil {
		t.Fatal(err)
	}
	intact := len(sink.Bytes())
	if err := w.AppendCert(testCert()); err != nil {
		t.Fatal(err)
	}
	full := sink.Bytes()
	torn := full[:intact+(len(full)-intact)/2]

	if _, _, err := ReadAllMetaCerts(io.NopCloser(bytes.NewReader(torn))); err == nil {
		t.Fatal("strict reader accepted a torn cert record")
	}
	ms, certs, rep, err := ReadAllMetaCertsTolerant(io.NopCloser(bytes.NewReader(torn)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(ms) != 1 || len(certs) != 0 {
		t.Fatalf("tolerant read of torn cert: truncated=%v metas=%d certs=%d", rep.Truncated, len(ms), len(certs))
	}
}

// TestCertPieces pins the worksharing split against the runtime's ForOpt
// chunk math for both schedules.
func TestCertPieces(t *testing.T) {
	static := &LoopCert{Sched: CertSchedStatic, Lo: 1, Hi: 12, NT: 3}
	wantStatic := [][][2]int64{{{1, 5}}, {{5, 9}}, {{9, 12}}} // 11 iters: 4,4,3
	for tid, want := range wantStatic {
		got := static.PiecesFor(uint64(tid), nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("static thread %d: got %v, want %v", tid, got, want)
		}
	}
	cyc := &LoopCert{Sched: CertSchedCyclic, Chunk: 2, Lo: 0, Hi: 10, NT: 2}
	wantCyc := [][][2]int64{{{0, 2}, {4, 6}, {8, 10}}, {{2, 4}, {6, 8}}}
	for tid, want := range wantCyc {
		got := cyc.PiecesFor(uint64(tid), nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cyclic thread %d: got %v, want %v", tid, got, want)
		}
	}
}

// TestCertDroppedAccesses: rematerialization enumerates the canonical
// prefix — pieces ascending, iterations ascending, block elements
// ascending.
func TestCertDroppedAccesses(t *testing.T) {
	c := &LoopCert{
		Sched: CertSchedCyclic, Chunk: 1, Lo: 0, Hi: 8, NT: 2,
		Decls:   []CertDecl{{Base: 0x100, Elem: 8, Stride: 1, Offset: 0, Span: 2, Write: true, PC: 1}},
		Threads: []CertThread{{TID: 0, Dropped: []uint64{5}}, {TID: 1, Dropped: []uint64{0}}},
	}
	var got []uint64
	n := c.DroppedAccesses(0, 0, func(addr uint64) { got = append(got, addr) })
	// Thread 0 runs iterations 0, 2, 4, 6; span 2 → blocks [0,1],[2,3],...
	want := []uint64{0x100, 0x108, 0x110, 0x118, 0x120}
	if n != 5 || !reflect.DeepEqual(got, want) {
		t.Fatalf("dropped accesses: n=%d got %#x, want %#x", n, got, want)
	}
	// A corrupt count larger than the footprint stops at the footprint.
	c.Threads[0].Dropped[0] = 1000
	if n := c.DroppedAccesses(0, 0, func(uint64) {}); n != 8 {
		t.Fatalf("corrupt count: emitted %d, want 8", n)
	}
}
