package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"sword/internal/compress"
)

type byteSink struct{ bytes.Buffer }

func (b *byteSink) Close() error { return nil }

// buildLog writes blocks through a LogWriter of the given version and
// returns the raw file bytes.
func buildLog(t *testing.T, version int, codec compress.Codec, blocks [][]byte) []byte {
	t.Helper()
	var sink byteSink
	w := NewLogWriterVersion(&sink, codec, version)
	for _, blk := range blocks {
		if err := w.WriteBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

func readerFor(data []byte) *LogReader {
	return NewLogReader(io.NopCloser(bytes.NewReader(data)))
}

func TestLogVersionDetect(t *testing.T) {
	blocks := [][]byte{[]byte("hello"), []byte("world block two")}
	for _, tc := range []struct{ version int }{{FormatV1}, {FormatV2}} {
		data := buildLog(t, tc.version, compress.LZSS{}, blocks)
		if tc.version == FormatV2 && !bytes.HasPrefix(data, []byte(logMagic)) {
			t.Fatalf("v2 log missing magic")
		}
		if tc.version == FormatV1 && bytes.HasPrefix(data, []byte(logMagic)) {
			t.Fatalf("v1 log has v2 magic")
		}
		r := readerFor(data)
		for i, want := range blocks {
			_, raw, err := r.Next()
			if err != nil {
				t.Fatalf("v%d block %d: %v", tc.version, i, err)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("v%d block %d content mismatch", tc.version, i)
			}
		}
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("v%d: expected EOF, got %v", tc.version, err)
		}
		if r.Version() != tc.version {
			t.Fatalf("detected version %d, want %d", r.Version(), tc.version)
		}
		if !r.Salvage().Clean() {
			t.Fatalf("v%d: clean log reported damage: %s", tc.version, r.Salvage())
		}
	}
}

// TestLogV1ByteIdentical pins the legacy framing: a v1 writer must emit
// exactly varint(rawLen) varint(compLen) codec-id payload per block, so
// traces written for old readers stay bit-compatible.
func TestLogV1ByteIdentical(t *testing.T) {
	codec := compress.LZSS{}
	blocks := [][]byte{bytes.Repeat([]byte{0x9c, 0x10, 0x01}, 500), []byte("tail")}
	var want []byte
	for _, blk := range blocks {
		comp := codec.Compress(nil, blk)
		want = binary.AppendUvarint(want, uint64(len(blk)))
		want = binary.AppendUvarint(want, uint64(len(comp)))
		want = append(want, codec.ID())
		want = append(want, comp...)
	}
	got := buildLog(t, FormatV1, codec, blocks)
	if !bytes.Equal(got, want) {
		t.Fatalf("v1 framing not byte-identical: got %d bytes, want %d", len(got), len(want))
	}
}

func TestLogSalvageCorruptMiddleBlock(t *testing.T) {
	blocks := [][]byte{
		bytes.Repeat([]byte{1}, 100),
		bytes.Repeat([]byte{2}, 200),
		bytes.Repeat([]byte{3}, 300),
	}
	data := buildLog(t, FormatV2, compress.Raw{}, blocks)
	// Flip one payload byte inside block 1. With the raw codec the file
	// layout is deterministic: magic, then per block 2 varints + id + crc +
	// payload.
	off := len(logMagic)
	for i := 0; i < 1; i++ { // skip block 0
		_, n1 := binary.Uvarint(data[off:])
		c, n2 := binary.Uvarint(data[off+n1:])
		off += n1 + n2 + 1 + 4 + int(c)
	}
	_, n1 := binary.Uvarint(data[off:])
	_, n2 := binary.Uvarint(data[off+n1:])
	data[off+n1+n2+1+4+10] ^= 0xFF // payload byte of block 1

	// Strict mode: error, not a skip.
	r := readerFor(data)
	if _, _, err := r.Next(); err != nil {
		t.Fatalf("block 0 should be intact: %v", err)
	}
	if _, _, err := r.Next(); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("strict read of corrupt block: %v", err)
	}

	// Tolerant mode: blocks 0 and 2 recovered, block 1 reported lost.
	r = readerFor(data)
	r.SetTolerant(true)
	var starts []uint64
	var sizes []int
	for {
		start, raw, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tolerant read: %v", err)
		}
		starts = append(starts, start)
		sizes = append(sizes, len(raw))
	}
	if len(starts) != 2 || starts[0] != 0 || starts[1] != 300 || sizes[0] != 100 || sizes[1] != 300 {
		t.Fatalf("salvaged starts %v sizes %v, want [0 300] [100 300]", starts, sizes)
	}
	rep := r.Salvage()
	if rep.Clean() || rep.Truncated {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CorruptBlocks != 1 || rep.LostBytes != 200 || rep.SalvagedBytes != 400 {
		t.Fatalf("corrupt=%d lost=%d salvaged=%d", rep.CorruptBlocks, rep.LostBytes, rep.SalvagedBytes)
	}
	if lr := rep.LostRanges(); len(lr) != 1 || lr[0] != [2]uint64{100, 300} {
		t.Fatalf("LostRanges = %v", lr)
	}
	// Logical accounting covers corrupt blocks too, so write- and
	// read-side byte totals keep agreeing.
	if r.RawBytes() != 600 || r.Blocks() != 3 {
		t.Fatalf("RawBytes=%d Blocks=%d", r.RawBytes(), r.Blocks())
	}
}

func TestLogSalvageTornTail(t *testing.T) {
	blocks := [][]byte{bytes.Repeat([]byte{1}, 100), bytes.Repeat([]byte{2}, 200)}
	full := buildLog(t, FormatV2, compress.Raw{}, blocks)
	data := full[:len(full)-50] // crash mid-write of block 1's payload

	r := readerFor(data)
	if _, _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("strict read of torn tail: %v", err)
	}

	r = readerFor(data)
	r.SetTolerant(true)
	_, raw, err := r.Next()
	if err != nil || len(raw) != 100 {
		t.Fatalf("intact prefix: %d bytes, %v", len(raw), err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("tolerant torn tail: %v", err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("reader must stay dead after truncation: %v", err)
	}
	rep := r.Salvage()
	if !rep.Truncated || rep.CorruptBlocks != 0 || rep.SalvagedBytes != 100 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestLogImplausibleFraming pins the anti-OOM cap: framing that declares a
// multi-gigabyte block must fail as a decode error before any allocation.
func TestLogImplausibleFraming(t *testing.T) {
	for _, tc := range []struct {
		name            string
		rawLen, compLen uint64
	}{
		{"huge raw", 1 << 40, 10},
		{"huge comp", 10, 1 << 40},
		{"zero raw", 0, 10},
	} {
		var data []byte
		data = binary.AppendUvarint(data, tc.rawLen)
		data = binary.AppendUvarint(data, tc.compLen)
		data = append(data, 0) // raw codec
		data = append(data, make([]byte, 16)...)

		r := readerFor(data)
		if _, _, err := r.Next(); err == nil || err == io.EOF {
			t.Fatalf("%s: strict read: %v", tc.name, err)
		}
		r = readerFor(data)
		r.SetTolerant(true)
		if _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("%s: tolerant read: %v", tc.name, err)
		}
		if !r.Salvage().Truncated {
			t.Fatalf("%s: truncation not reported", tc.name)
		}
	}
}

func TestWriteBlockTooLarge(t *testing.T) {
	var sink byteSink
	w := NewLogWriter(&sink, compress.Raw{})
	if err := w.WriteBlock(make([]byte, MaxBlockBytes+1)); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func buildMeta(t *testing.T, version int, metas []Meta) []byte {
	t.Helper()
	var sink byteSink
	w := NewMetaWriterVersion(&sink, version)
	for i := range metas {
		if err := w.Append(&metas[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes()
}

func testMetas() []Meta {
	return []Meta{
		{PID: 0, PPID: NoParent, BID: 0, Span: 4, Level: 1, DataSize: 100},
		{PID: 0, PPID: NoParent, BID: 1, Offset: 4, Span: 4, Level: 1, DataBegin: 100, DataSize: 60},
		{PID: 1, PPID: 0, BID: 0, Offset: 2, Span: 2, Level: 2, DataBegin: 160, DataSize: 40, ParentTID: 1, Seq: 1},
	}
}

// TestMetaV1ByteIdentical pins the legacy meta stream: bare concatenated
// records, no magic, no framing.
func TestMetaV1ByteIdentical(t *testing.T) {
	metas := testMetas()
	var want []byte
	for i := range metas {
		want = AppendMeta(want, &metas[i])
	}
	got := buildMeta(t, FormatV1, metas)
	if !bytes.Equal(got, want) {
		t.Fatalf("v1 meta not byte-identical: got %d bytes, want %d", len(got), len(want))
	}
	rd, err := ReadAllMeta(io.NopCloser(bytes.NewReader(got)))
	if err != nil || len(rd) != len(metas) {
		t.Fatalf("read back: %d records, %v", len(rd), err)
	}
}

func TestMetaSalvageTornTail(t *testing.T) {
	for _, version := range []int{FormatV1, FormatV2} {
		metas := testMetas()
		full := buildMeta(t, version, metas)
		data := full[:len(full)-3] // crash mid-append of the last record

		_, err := ReadAllMeta(io.NopCloser(bytes.NewReader(data)))
		if err == nil {
			t.Fatalf("v%d: strict read of torn meta succeeded", version)
		}
		// Satellite: the strict error names the intact-record count.
		if !strings.Contains(err.Error(), "2 intact") {
			t.Fatalf("v%d: error does not count intact records: %v", version, err)
		}

		got, rep, err := ReadAllMetaTolerant(io.NopCloser(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("v%d: tolerant read: %v", version, err)
		}
		if len(got) != 2 || rep.IntactRecords != 2 || !rep.Truncated {
			t.Fatalf("v%d: got %d records, report %+v", version, len(got), rep)
		}
		for i := range got {
			if got[i] != metas[i] {
				t.Fatalf("v%d: record %d = %+v, want %+v", version, i, got[i], metas[i])
			}
		}
	}
}

func TestMetaCorruptRecordCRC(t *testing.T) {
	metas := testMetas()
	data := buildMeta(t, FormatV2, metas)
	// Flip a byte in the second record's body: skip magic + record 0.
	off := len(metaMagic)
	l, n := binary.Uvarint(data[off:])
	off += n + int(l) + 5
	_, n = binary.Uvarint(data[off:])
	data[off+n] ^= 0xFF

	if _, err := ReadAllMeta(io.NopCloser(bytes.NewReader(data))); err == nil {
		t.Fatal("strict read of corrupt meta succeeded")
	}
	got, rep, err := ReadAllMetaTolerant(io.NopCloser(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	// The intact prefix stops at the damage: meta records are not
	// independently framed streams like log blocks, so there is no resync.
	if len(got) != 1 || !rep.Truncated {
		t.Fatalf("got %d records, report %+v", len(got), rep)
	}
}

func TestDirStoreCloseJoinsErrors(t *testing.T) {
	store := mustDirStore(t)
	var files []*dirFile
	for i := 0; i < 2; i++ {
		w, err := store.CreateLog(i)
		if err != nil {
			t.Fatal(err)
		}
		f := w.(*dirFile)
		files = append(files, f)
		if err := f.f.Close(); err != nil { // force Close failure: double close
			t.Fatal(err)
		}
	}
	err := store.Close()
	if err == nil {
		t.Fatal("Close returned nil with two failing writers")
	}
	// errors.Join output carries one line per joined error.
	if n := len(strings.Split(err.Error(), "\n")); n != 2 {
		t.Fatalf("joined error has %d lines, want 2: %v", n, err)
	}
}

func TestSlotsSkipEmptyMeta(t *testing.T) {
	store := mustDirStore(t)
	// Slot 1: a committed record.
	sink, err := store.CreateMeta(1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewMetaWriter(sink)
	m := testMetas()[0]
	if err := w.Append(&m); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Slot 3: crashed before the first record committed — zero bytes.
	sink, err = store.CreateMeta(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	slots, err := store.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 || slots[0] != 1 {
		t.Fatalf("Slots = %v, want [1]", slots)
	}
}

func TestFaultStoreWriteBudget(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.FailWritesAfter(10, nil)
	w, err := fs.CreateLog(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 8)); err != nil {
		t.Fatalf("in-budget write: %v", err)
	}
	if _, err := w.Write(make([]byte, 5)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget write: %v", err)
	}
	if _, err := w.Write([]byte{1}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-fault write: %v", err)
	}
	if fs.WriteFailures() != 2 {
		t.Fatalf("WriteFailures = %d", fs.WriteFailures())
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	mem := NewMemStore()
	fs := NewFaultStore(mem)
	fs.FailWritesAfter(4, nil)
	fs.SetTornWrites(true)
	w, _ := fs.CreateLog(0)
	n, err := w.Write([]byte("0123456789"))
	if n != 4 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	r, err := mem.OpenLog(0)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "0123" {
		t.Fatalf("persisted %q, want the in-budget prefix", data)
	}
}

func TestFaultStoreCloseAndMutateRead(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	boom := errors.New("close failed")
	fs.FailClose(boom)
	w, _ := fs.CreateAux("pctable")
	if _, err := w.Write([]byte("1\tmain.c:3\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v", err)
	}
	fs.FailClose(nil)

	fs.SetMutateRead(func(name string, data []byte) []byte {
		if name != "aux:pctable" {
			t.Fatalf("mutate hook saw %q", name)
		}
		return data[:4]
	})
	r, err := fs.OpenAux("pctable")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "1\tma" {
		t.Fatalf("mutated read = %q", data)
	}
}
