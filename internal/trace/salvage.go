package trace

import (
	"fmt"
	"strings"
)

// SalvageReport is the structured damage record a tolerant reader produces
// alongside the data it recovered. Production runs crash, fill disks and
// get OOM-killed mid-flush; post-mortem analysis only works if the reader
// can hand back the intact prefix of a damaged file and say exactly what
// was lost instead of aborting on the first bad byte. A nil report, or one
// for which Clean reports true, means the file decoded fully.
type SalvageReport struct {
	// Entries describe each piece of damage in file order.
	Entries []SalvageEntry
	// CorruptBlocks counts log blocks whose payload failed its integrity
	// check (CRC mismatch, unknown codec, decompression failure) but whose
	// framing was intact, so reading continued with the next block.
	CorruptBlocks int
	// Truncated reports that the stream ended before a clean block or
	// record boundary — a torn tail from a crash mid-append, or framing
	// damage the reader cannot resynchronize past.
	Truncated bool
	// SalvagedBytes is the volume recovered: logical (decompressed) bytes
	// of good log blocks, or encoded bytes of intact meta records.
	SalvagedBytes uint64
	// LostBytes is the declared logical span of corrupt log blocks — data
	// that was written but cannot be decoded. Truncated tails are not
	// included (their extent is unknown to the reader; the analyzer bounds
	// it against the meta-data instead).
	LostBytes uint64
	// IntactRecords counts meta records recovered before the damage.
	IntactRecords int
}

// SalvageEntry is one piece of damage: where it sits in the file, which
// logical span it takes out (logs only), and why the bytes were rejected.
type SalvageEntry struct {
	// Block is the block (log) or record (meta) index the damage was
	// detected at.
	Block int
	// Offset is the byte offset in the file where the damaged region
	// starts (the block or record header).
	Offset uint64
	// LogicalStart and LogicalEnd delimit the lost logical byte span for
	// corrupt log blocks; both zero for meta damage and truncated tails.
	LogicalStart, LogicalEnd uint64
	// Cause says what failed, e.g. "payload crc mismatch" or
	// "truncated block payload".
	Cause string
}

func (e SalvageEntry) String() string {
	if e.LogicalEnd > e.LogicalStart {
		return fmt.Sprintf("block %d at offset %d: %s (logical [%d,%d) lost)",
			e.Block, e.Offset, e.Cause, e.LogicalStart, e.LogicalEnd)
	}
	return fmt.Sprintf("block %d at offset %d: %s", e.Block, e.Offset, e.Cause)
}

// Clean reports whether the reader found no damage at all.
func (r *SalvageReport) Clean() bool {
	return r == nil || (len(r.Entries) == 0 && !r.Truncated)
}

// LostRanges returns the logical byte spans taken out by corrupt blocks,
// in ascending order. The analyzer quarantines interval fragments that
// intersect any of them.
func (r *SalvageReport) LostRanges() [][2]uint64 {
	if r == nil {
		return nil
	}
	var out [][2]uint64
	for _, e := range r.Entries {
		if e.LogicalEnd > e.LogicalStart {
			out = append(out, [2]uint64{e.LogicalStart, e.LogicalEnd})
		}
	}
	return out
}

// String summarizes the damage on one line, empty when clean.
func (r *SalvageReport) String() string {
	if r.Clean() {
		return ""
	}
	parts := make([]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, "; ")
}

func (r *SalvageReport) add(e SalvageEntry) {
	r.Entries = append(r.Entries, e)
}
