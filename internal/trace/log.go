package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"sword/internal/compress"
)

// Log file framing: a sequence of blocks, each
//
//	uvarint rawLen | uvarint compLen | codec id byte | compLen payload bytes
//
// A block holds exactly one flushed collector buffer, so event decoding
// state (the address-delta register) resets at block boundaries on both
// sides. Meta-data offsets are logical (uncompressed) positions; the reader
// recovers them by accumulating rawLen while streaming.

// LogWriter frames, compresses and writes event blocks to a log sink.
// WriteBlock must be called from one goroutine at a time (the collector's
// flush pipeline schedules each slot on at most one worker); the byte
// counters are atomic so live Stats reads never race with a flush in
// flight.
type LogWriter struct {
	w       *bufio.Writer
	c       io.Closer
	codec   compress.Codec
	logical uint64
	scratch []byte
	head    [2 * binary.MaxVarintLen64]byte
	rawIn   atomic.Uint64
	compOut atomic.Uint64
}

// NewLogWriter returns a writer that compresses blocks with codec and
// writes them to w.
func NewLogWriter(w io.WriteCloser, codec compress.Codec) *LogWriter {
	return &LogWriter{w: bufio.NewWriterSize(w, 64<<10), c: w, codec: codec}
}

// Logical returns the logical (uncompressed) offset at which the next
// block will begin.
func (w *LogWriter) Logical() uint64 { return w.logical }

// RawBytes returns the total uncompressed bytes accepted.
func (w *LogWriter) RawBytes() uint64 { return w.rawIn.Load() }

// CompressedBytes returns the total compressed payload bytes emitted.
func (w *LogWriter) CompressedBytes() uint64 { return w.compOut.Load() }

// WriteBlock compresses raw and appends it as one block. Empty blocks are
// dropped.
func (w *LogWriter) WriteBlock(raw []byte) error {
	if len(raw) == 0 {
		return nil
	}
	w.scratch = w.codec.Compress(w.scratch[:0], raw)
	n := binary.PutUvarint(w.head[:], uint64(len(raw)))
	n += binary.PutUvarint(w.head[n:], uint64(len(w.scratch)))
	if _, err := w.w.Write(w.head[:n]); err != nil {
		return fmt.Errorf("trace: write block header: %w", err)
	}
	if err := w.w.WriteByte(w.codec.ID()); err != nil {
		return fmt.Errorf("trace: write codec id: %w", err)
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return fmt.Errorf("trace: write block payload: %w", err)
	}
	w.logical += uint64(len(raw))
	w.rawIn.Add(uint64(len(raw)))
	w.compOut.Add(uint64(len(w.scratch)))
	return nil
}

// Close flushes buffered data and closes the underlying sink.
func (w *LogWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.c.Close()
		return fmt.Errorf("trace: flush log: %w", err)
	}
	return w.c.Close()
}

// LogReader streams blocks back from a log source, decompressing each and
// tracking logical offsets. It also counts blocks and compressed payload
// bytes, so the offline phase can report the trace volume it consumed
// without a second pass over the store.
type LogReader struct {
	r        *bufio.Reader
	c        io.Closer
	logical  uint64
	comp     []byte
	raw      []byte
	blocks   uint64
	compIn   uint64
	skipped  uint64
	skippedB uint64
}

// NewLogReader returns a reader over r. The codec of each block is
// identified from its header, so mixed-codec logs decode correctly.
func NewLogReader(r io.ReadCloser) *LogReader {
	return &LogReader{r: bufio.NewReaderSize(r, 64<<10), c: r}
}

// Next returns the logical start offset and decompressed contents of the
// next block. The returned slice is reused by subsequent calls. It returns
// io.EOF after the last block.
func (r *LogReader) Next() (uint64, []byte, error) { return r.NextFrom(nil) }

// NextFrom is Next with a block-skipping fast path: for every block it
// first reads only the framing (raw length, compressed length, codec id)
// and consults skip with the block's logical span; a skipped block's
// compressed payload is discarded without decompressing or decoding, and
// the scan continues with the following block. A nil skip decodes
// everything, exactly like Next.
//
// Skipped blocks still count into Blocks, RawBytes and CompressedBytes —
// their framing was consumed, and the write-side totals must keep agreeing
// with the read-side ones — and additionally into BlocksSkipped and
// SkippedBytes, the work the fast path avoided. The offline analyzer uses
// this under SubtreeBatch to fly over blocks whose span intersects no
// interval fragment of the current batch.
func (r *LogReader) NextFrom(skip func(start, rawLen uint64) bool) (uint64, []byte, error) {
	for {
		rawLen, err := binary.ReadUvarint(r.r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return 0, nil, io.EOF
			}
			return 0, nil, fmt.Errorf("trace: read block raw length: %w", err)
		}
		compLen, err := binary.ReadUvarint(r.r)
		if err != nil {
			return 0, nil, fmt.Errorf("trace: read block compressed length: %w", err)
		}
		id, err := r.r.ReadByte()
		if err != nil {
			return 0, nil, fmt.Errorf("trace: read codec id: %w", err)
		}
		start := r.logical
		if skip != nil && skip(start, rawLen) {
			if _, err := r.r.Discard(int(compLen)); err != nil {
				return 0, nil, fmt.Errorf("trace: skip block payload: %w", err)
			}
			r.logical += rawLen
			r.blocks++
			r.compIn += compLen
			r.skipped++
			r.skippedB += compLen
			continue
		}
		codec, err := compress.ByID(id)
		if err != nil {
			return 0, nil, err
		}
		if cap(r.comp) < int(compLen) {
			r.comp = make([]byte, compLen)
		}
		r.comp = r.comp[:compLen]
		if _, err := io.ReadFull(r.r, r.comp); err != nil {
			return 0, nil, fmt.Errorf("trace: read block payload: %w", err)
		}
		r.raw, err = codec.Decompress(r.raw[:0], r.comp, int(rawLen))
		if err != nil {
			return 0, nil, err
		}
		r.logical += rawLen
		r.blocks++
		r.compIn += compLen
		return start, r.raw, nil
	}
}

// Blocks returns the number of blocks read so far — one per collector
// flush on the write side.
func (r *LogReader) Blocks() uint64 { return r.blocks }

// RawBytes returns the total decompressed bytes read so far.
func (r *LogReader) RawBytes() uint64 { return r.logical }

// CompressedBytes returns the total compressed payload bytes read so far
// (excluding block framing).
func (r *LogReader) CompressedBytes() uint64 { return r.compIn }

// BlocksSkipped returns how many blocks NextFrom discarded without
// decompressing.
func (r *LogReader) BlocksSkipped() uint64 { return r.skipped }

// SkippedBytes returns the compressed payload bytes NextFrom discarded
// without decompressing.
func (r *LogReader) SkippedBytes() uint64 { return r.skippedB }

// Close closes the underlying source.
func (r *LogReader) Close() error { return r.c.Close() }

// MetaWriter writes meta-data records to a sink.
type MetaWriter struct {
	w   *bufio.Writer
	c   io.Closer
	buf []byte
	n   int
}

// NewMetaWriter returns a writer over w.
func NewMetaWriter(w io.WriteCloser) *MetaWriter {
	return &MetaWriter{w: bufio.NewWriter(w), c: w}
}

// Append writes one meta record.
func (w *MetaWriter) Append(m *Meta) error {
	w.buf = AppendMeta(w.buf[:0], m)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("trace: write meta record: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of records appended.
func (w *MetaWriter) Count() int { return w.n }

// Close flushes and closes the sink.
func (w *MetaWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.c.Close()
		return fmt.Errorf("trace: flush meta: %w", err)
	}
	return w.c.Close()
}

// ReadAllMeta decodes every meta record from r and closes it.
func ReadAllMeta(r io.ReadCloser) ([]Meta, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read meta file: %w", err)
	}
	var out []Meta
	pos := 0
	for pos < len(data) {
		var m Meta
		n, err := DecodeMeta(data[pos:], &m)
		if err != nil {
			return nil, fmt.Errorf("trace: meta record %d: %w", len(out), err)
		}
		pos += n
		out = append(out, m)
	}
	return out, nil
}

// FormatMetaTable renders meta records in the layout of Table I of the
// paper: one line per barrier-interval fragment with columns pid, ppid,
// bid, offset, span, level, data begin, size.
func FormatMetaTable(metas []Meta) string {
	var b strings.Builder
	b.WriteString("pid\tppid\tbid\toffset\tspan\tlevel\tdata begin\tsize\n")
	for i := range metas {
		m := &metas[i]
		pp := "-"
		if m.PPID != NoParent {
			pp = strconv.FormatUint(m.PPID, 10)
		}
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.PID, pp, m.BID, m.Offset, m.Span, m.Level, m.DataBegin, m.DataSize)
	}
	return b.String()
}

// WriteTaskWaits serializes taskwait cuts (tasking extension) as binary
// records: uvarint count, then uvarint (task region id, wait cut) pairs in
// ascending id order.
func WriteTaskWaits(w io.Writer, waits map[uint64]uint64) error {
	ids := make([]uint64, 0, len(waits))
	for id := range waits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, waits[id])
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("trace: write task waits: %w", err)
	}
	return nil
}

// ReadTaskWaits parses records written by WriteTaskWaits and closes r.
func ReadTaskWaits(r io.ReadCloser) (map[uint64]uint64, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read task waits: %w", err)
	}
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated task waits at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64, count)
	for i := uint64(0); i < count; i++ {
		id, err := next()
		if err != nil {
			return nil, err
		}
		cut, err := next()
		if err != nil {
			return nil, err
		}
		out[id] = cut
	}
	return out, nil
}
