package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sword/internal/compress"
)

// Log file framing, format v2 (the default): the file opens with the magic
// "SWL2\x00", followed by a sequence of blocks, each
//
//	uvarint rawLen | uvarint compLen | codec id byte |
//	uint32 LE CRC32-C of payload | compLen payload bytes
//
// Format v1 has no magic and no checksum — a block is
// rawLen|compLen|codec|payload. The reader auto-detects the version from
// the magic: no valid v1 log can begin with the magic bytes, because they
// would parse as a block with codec id 'L', which no codec uses.
//
// A block holds exactly one flushed collector buffer, so event decoding
// state (the address-delta register) resets at block boundaries on both
// sides. Meta-data offsets are logical (uncompressed) positions; the reader
// recovers them by accumulating rawLen while streaming.
//
// The CRC is computed over the compressed payload. Torn or bit-flipped
// payloads therefore lose exactly one block: its framing still tells the
// reader how many bytes to skip and which logical span was lost, which is
// what the tolerant (salvage) mode reports instead of aborting.

// Format versions of the log and meta streams.
const (
	// FormatV1 is the original unchecksummed framing, still read
	// transparently for traces collected before v2.
	FormatV1 = 1
	// FormatV2 adds the file magic, per-block payload CRC32-C in logs, and
	// length-prefixed, checksummed, commit-marked meta records.
	FormatV2 = 2
)

const (
	logMagic  = "SWL2\x00"
	metaMagic = "SWM2\x00"
	// metaCommit trails every v2 meta record: an appended record counts
	// only once its commit marker is present, so a crash mid-append leaves
	// a detectable torn tail instead of a silently misparsed stream.
	metaCommit = 0xC5
)

// MaxBlockBytes bounds the declared decompressed size of one log block.
// The collector flushes buffers far smaller than this (the paper's default
// is ~2 MB); the bound exists so corrupt framing in an untrusted log can
// never coerce the reader into a multi-gigabyte allocation.
const MaxBlockBytes = 64 << 20

// maxCompBlockBytes bounds the declared compressed payload size: raw size
// plus a generous incompressibility margin.
const maxCompBlockBytes = MaxBlockBytes + MaxBlockBytes/8 + 1024

// maxMetaRecordBytes bounds a v2 meta record body: a record is fifteen
// uvarints, at most ten bytes each.
const maxMetaRecordBytes = 4096

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), the integrity check of the v2 framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornTail reports that a tail-mode reader ran into the torn end of a
// file that is still being written: a frame whose header committed but
// whose remaining bytes have not landed yet. It is retriable — once the
// writer commits more bytes, Resume rewinds to the frame boundary and
// reading continues. Only real integrity damage (checksum mismatch over a
// fully present payload, implausible framing) is reported as corruption.
var ErrTornTail = errors.New("trace: torn tail of an in-progress file")

// errFrameTorn marks a v2 meta frame that stops mid-record: with a live
// writer it means "wait for more bytes", post-mortem it means a crash
// tore the tail. MetaTail keys retriability off it.
var errFrameTorn = errors.New("crash mid-append or write in progress")

// LogWriter frames, compresses and writes event blocks to a log sink.
// WriteBlock must be called from one goroutine at a time (the collector's
// flush pipeline schedules each slot on at most one worker); the byte
// counters are atomic so live Stats reads never race with a flush in
// flight.
type LogWriter struct {
	w       *bufio.Writer
	c       io.Closer
	codec   compress.Codec
	version int
	logical uint64
	scratch []byte
	head    [2*binary.MaxVarintLen64 + 5]byte
	rawIn   atomic.Uint64
	compOut atomic.Uint64
}

// NewLogWriter returns a writer that compresses blocks with codec and
// writes them to w in the current format (v2, checksummed).
func NewLogWriter(w io.WriteCloser, codec compress.Codec) *LogWriter {
	return NewLogWriterVersion(w, codec, FormatV2)
}

// NewLogWriterVersion is NewLogWriter with an explicit format version —
// FormatV1 reproduces the legacy unchecksummed framing byte for byte.
func NewLogWriterVersion(w io.WriteCloser, codec compress.Codec, version int) *LogWriter {
	if version != FormatV1 {
		version = FormatV2
	}
	lw := &LogWriter{w: bufio.NewWriterSize(w, 64<<10), c: w, codec: codec, version: version}
	if version == FormatV2 {
		lw.w.WriteString(logMagic) // buffered; errors surface at flush/close
	}
	return lw
}

// Version returns the format version the writer emits.
func (w *LogWriter) Version() int { return w.version }

// Logical returns the logical (uncompressed) offset at which the next
// block will begin.
func (w *LogWriter) Logical() uint64 { return w.logical }

// RawBytes returns the total uncompressed bytes accepted.
func (w *LogWriter) RawBytes() uint64 { return w.rawIn.Load() }

// CompressedBytes returns the total compressed payload bytes emitted.
func (w *LogWriter) CompressedBytes() uint64 { return w.compOut.Load() }

// WriteBlock compresses raw and appends it as one block. Empty blocks are
// dropped; blocks over MaxBlockBytes are rejected (the reader would refuse
// their framing).
func (w *LogWriter) WriteBlock(raw []byte) error {
	if len(raw) == 0 {
		return nil
	}
	if len(raw) > MaxBlockBytes {
		return fmt.Errorf("trace: block of %d bytes exceeds MaxBlockBytes (%d)", len(raw), MaxBlockBytes)
	}
	w.scratch = w.codec.Compress(w.scratch[:0], raw)
	n := binary.PutUvarint(w.head[:], uint64(len(raw)))
	n += binary.PutUvarint(w.head[n:], uint64(len(w.scratch)))
	w.head[n] = w.codec.ID()
	n++
	if w.version == FormatV2 {
		binary.LittleEndian.PutUint32(w.head[n:], crc32.Checksum(w.scratch, castagnoli))
		n += 4
	}
	if _, err := w.w.Write(w.head[:n]); err != nil {
		return fmt.Errorf("trace: write block header: %w", err)
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return fmt.Errorf("trace: write block payload: %w", err)
	}
	w.logical += uint64(len(raw))
	w.rawIn.Add(uint64(len(raw)))
	w.compOut.Add(uint64(len(w.scratch)))
	return nil
}

// Flush pushes every buffered block through to the sink without closing
// it. Live-flush collection calls it after each block so a concurrent
// tail-mode reader observes frames at block granularity instead of at the
// bufio boundary; the cost is one syscall per flushed buffer.
func (w *LogWriter) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush log: %w", err)
	}
	return nil
}

// Close flushes buffered data and closes the underlying sink.
func (w *LogWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.c.Close()
		return fmt.Errorf("trace: flush log: %w", err)
	}
	return w.c.Close()
}

// LogReader streams blocks back from a log source, decompressing each and
// tracking logical offsets. It also counts blocks and compressed payload
// bytes, so the offline phase can report the trace volume it consumed
// without a second pass over the store.
//
// By default the reader is strict: any framing or integrity damage is an
// error. SetTolerant switches it to salvage mode, where a payload-damaged
// block is skipped (its declared logical span recorded as lost) and a torn
// tail ends the stream early; Salvage reports what was recovered and lost.
type LogReader struct {
	r        *bufio.Reader
	c        io.ReadCloser
	bufs     *logReaderBufs
	version  int // 0 until the first read detects it
	off      uint64
	logical  uint64
	comp     []byte
	raw      []byte
	blocks   uint64
	compIn   uint64
	skipped  uint64
	skippedB uint64
	tolerant bool
	tail     bool
	torn     bool
	tornOff  uint64 // file offset of the frame the torn tail cut
	dead     bool
	crc      [4]byte // checksum scratch; a local would escape via io.ReadFull
	salvage  SalvageReport
}

// logReaderBufs are the reusable per-reader staging buffers: the bufio
// window over the source plus the compressed and decompressed block
// slices. Batched analysis opens a fresh LogReader per slot per batch, so
// without pooling every re-stream reallocates all three; recycling them
// across readers keeps steady-state batch scans allocation-free.
type logReaderBufs struct {
	br   *bufio.Reader
	comp []byte
	raw  []byte
}

// maxPooledBufBytes caps the staging slices a retiring reader may park in
// the pool. Typical blocks are ~2 MiB; one pathological oversized block
// must not pin tens of megabytes per pooled entry.
const maxPooledBufBytes = 8 << 20

var logReaderPool = sync.Pool{
	New: func() any { return &logReaderBufs{br: bufio.NewReaderSize(nil, 64<<10)} },
}

// NewLogReader returns a strict reader over r. The format version and the
// codec of each block are identified from the stream, so v1 logs and
// mixed-codec logs decode correctly.
func NewLogReader(r io.ReadCloser) *LogReader {
	bufs := logReaderPool.Get().(*logReaderBufs)
	bufs.br.Reset(r)
	return &LogReader{r: bufs.br, c: r, bufs: bufs, comp: bufs.comp, raw: bufs.raw}
}

// SetTolerant switches the reader into (or out of) salvage mode. In
// salvage mode Next never returns a corruption error: payload-damaged
// blocks are skipped, unrecoverable framing damage terminates the stream
// as io.EOF, and the damage is recorded in Salvage.
func (r *LogReader) SetTolerant(on bool) { r.tolerant = on }

// SetTail switches the reader into (or out of) tail mode, for following a
// log that is still being written. In tail mode an end-of-data condition
// inside a frame — header bytes committed, payload still on its way — is
// reported as the retriable ErrTornTail instead of a corruption error (or,
// in tolerant mode, a salvage truncation); a clean end at a frame boundary
// is still io.EOF, and calling Next again after the file grew continues
// reading. After ErrTornTail, call Resume once more bytes are durable.
func (r *LogReader) SetTail(on bool) { r.tail = on }

// Torn reports whether the last read stopped on a torn tail (ErrTornTail).
func (r *LogReader) Torn() bool { return r.torn }

// Offset returns the file offset of the last clean frame boundary the
// reader reached — after a clean io.EOF or an ErrTornTail in tail mode,
// the committed-frame frontier.
func (r *LogReader) Offset() uint64 {
	if r.torn {
		return r.tornOff
	}
	return r.off
}

// Resume repositions a tail-mode reader at the last clean frame boundary
// so reading can continue after a torn tail. With src nil the current
// source is rewound in place, which requires it to be an io.Seeker (a
// DirStore log is an *os.File); otherwise src must be a freshly opened
// reader over the same file, which replaces the current source and is
// advanced to the boundary. Resume is a no-op when nothing was torn.
func (r *LogReader) Resume(src io.ReadCloser) error {
	target := r.off
	if r.torn {
		target = r.tornOff
	}
	if src != nil {
		r.c.Close()
		r.c = src
	} else if !r.torn {
		return nil
	}
	if s, ok := r.c.(io.Seeker); ok {
		if _, err := s.Seek(int64(target), io.SeekStart); err != nil {
			return fmt.Errorf("trace: resume tail: %w", err)
		}
		r.r.Reset(r.c)
	} else {
		r.r.Reset(r.c)
		for skip := target; skip > 0; {
			n, err := r.r.Discard(int(min(skip, 1<<30)))
			skip -= uint64(n)
			if err != nil {
				return fmt.Errorf("trace: resume tail: %w", err)
			}
		}
	}
	r.off = target
	r.torn = false
	r.dead = false
	return nil
}

// Salvage returns the damage report accumulated so far. Call after the
// stream returned io.EOF; Clean reports whether the log decoded fully.
func (r *LogReader) Salvage() *SalvageReport { return &r.salvage }

// Version returns the detected format version, 0 before the first read.
func (r *LogReader) Version() int { return r.version }

// uvarintReader adapts the reader's counted byte reads for binary.ReadUvarint.
type uvarintReader struct{ r *LogReader }

func (u uvarintReader) ReadByte() (byte, error) { return u.r.readByte() }

func (r *LogReader) readByte() (byte, error) {
	b, err := r.r.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

func (r *LogReader) readUvarint() (uint64, error) {
	return binary.ReadUvarint(uvarintReader{r})
}

func (r *LogReader) readFull(p []byte) error {
	n, err := io.ReadFull(r.r, p)
	r.off += uint64(n)
	return err
}

func (r *LogReader) discard(n int) error {
	m, err := r.r.Discard(n)
	r.off += uint64(m)
	return err
}

// detect identifies the stream's format version from the file magic. No
// valid v1 log starts with the magic bytes (they would declare codec id
// 'L', which does not exist), so absence of the magic means v1.
func (r *LogReader) detect() {
	if r.version != 0 {
		return
	}
	b, err := r.r.Peek(len(logMagic))
	if err == nil && string(b) == logMagic {
		r.discard(len(logMagic))
		r.version = FormatV2
		return
	}
	if r.tail && err != nil {
		// Fewer bytes than the magic are durable yet: with a live writer
		// the version cannot be decided, so stay undetected — the next
		// read attempt re-peeks after the file grew. Latching v1 here
		// would misparse the rest of the magic as a block header.
		return
	}
	r.version = FormatV1
}

// Next returns the logical start offset and decompressed contents of the
// next block. The returned slice is reused by subsequent calls and
// recycled by Close — callers must finish with it before either. It
// returns io.EOF after the last block.
func (r *LogReader) Next() (uint64, []byte, error) { return r.NextFrom(nil) }

// NextFrom is Next with a block-skipping fast path: for every block it
// first reads only the framing (raw length, compressed length, codec id,
// checksum) and consults skip with the block's logical span; a skipped
// block's compressed payload is discarded without decompressing — and, in
// v2, without verifying its checksum — and the scan continues with the
// following block. A nil skip decodes everything, exactly like Next.
//
// Skipped blocks still count into Blocks, RawBytes and CompressedBytes —
// their framing was consumed, and the write-side totals must keep agreeing
// with the read-side ones — and additionally into BlocksSkipped and
// SkippedBytes, the work the fast path avoided. The offline analyzer uses
// this under SubtreeBatch to fly over blocks whose span intersects no
// interval fragment of the current batch; salvage-mode analysis passes a
// nil skip so every payload is integrity-checked.
func (r *LogReader) NextFrom(skip func(start, rawLen uint64) bool) (uint64, []byte, error) {
	if r.dead {
		return 0, nil, io.EOF
	}
	r.detect()
	if r.version == 0 {
		return 0, nil, io.EOF // tail mode: not enough bytes to even detect
	}
	for {
		blockOff := r.off
		rawLen, err := r.readUvarint()
		if err != nil {
			if errors.Is(err, io.EOF) && r.off == blockOff {
				return 0, nil, io.EOF // clean end at a block boundary
			}
			return 0, nil, r.fail(blockOff, "truncated block header", err)
		}
		compLen, err := r.readUvarint()
		if err != nil {
			return 0, nil, r.fail(blockOff, "truncated block header", err)
		}
		// Sanity-cap the declared sizes before allocating: corrupt framing
		// must become a decode error, not a multi-gigabyte allocation.
		if rawLen == 0 || rawLen > MaxBlockBytes || compLen == 0 || compLen > maxCompBlockBytes {
			return 0, nil, r.fail(blockOff,
				fmt.Sprintf("implausible block framing (raw %d, compressed %d)", rawLen, compLen), nil)
		}
		id, err := r.readByte()
		if err != nil {
			return 0, nil, r.fail(blockOff, "truncated block header", err)
		}
		var wantCRC uint32
		if r.version == FormatV2 {
			if err := r.readFull(r.crc[:]); err != nil {
				return 0, nil, r.fail(blockOff, "truncated block checksum", err)
			}
			wantCRC = binary.LittleEndian.Uint32(r.crc[:])
		}
		start := r.logical
		if skip != nil && skip(start, rawLen) {
			if err := r.discard(int(compLen)); err != nil {
				return 0, nil, r.fail(blockOff, "truncated block payload", err)
			}
			r.logical += rawLen
			r.blocks++
			r.compIn += compLen
			r.skipped++
			r.skippedB += compLen
			continue
		}
		if cap(r.comp) < int(compLen) {
			r.comp = make([]byte, compLen)
		}
		r.comp = r.comp[:compLen]
		if err := r.readFull(r.comp); err != nil {
			return 0, nil, r.fail(blockOff, "truncated block payload", err)
		}
		// Payload-level damage loses exactly this block: the framing was
		// fully consumed, so the stream stays in sync and, in tolerant
		// mode, reading continues at the next block.
		if r.version == FormatV2 && crc32.Checksum(r.comp, castagnoli) != wantCRC {
			if r.corrupt(blockOff, start, rawLen, compLen, "payload crc mismatch") {
				continue
			}
			return 0, nil, fmt.Errorf("trace: block %d at offset %d: payload crc mismatch", r.blocks, blockOff)
		}
		codec, err := compress.ByID(id)
		if err != nil {
			if r.corrupt(blockOff, start, rawLen, compLen, err.Error()) {
				continue
			}
			return 0, nil, err
		}
		r.raw, err = codec.Decompress(r.raw[:0], r.comp, int(rawLen))
		if err != nil {
			if r.corrupt(blockOff, start, rawLen, compLen, err.Error()) {
				continue
			}
			return 0, nil, err
		}
		r.logical += rawLen
		r.blocks++
		r.compIn += compLen
		r.salvage.SalvagedBytes += rawLen
		return start, r.raw, nil
	}
}

// corrupt records a payload-damaged block. In tolerant mode the block's
// declared logical span is recorded as lost and the scan continues; the
// return reports whether to do so.
func (r *LogReader) corrupt(blockOff, start, rawLen, compLen uint64, cause string) bool {
	if !r.tolerant {
		return false
	}
	r.salvage.add(SalvageEntry{
		Block: int(r.blocks), Offset: blockOff,
		LogicalStart: start, LogicalEnd: start + rawLen,
		Cause: cause,
	})
	r.salvage.CorruptBlocks++
	r.salvage.LostBytes += rawLen
	r.logical += rawLen
	r.blocks++
	r.compIn += compLen
	return true
}

// fail ends the stream at unrecoverable framing damage — a torn tail or
// framing bytes the reader cannot resynchronize past. Strict mode returns
// an error; tolerant mode records a truncation and reports io.EOF, so the
// caller keeps everything read before the damage.
func (r *LogReader) fail(off uint64, cause string, err error) error {
	if r.tail && err != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
		// The frame stops where the durable bytes do: the writer is (or
		// was) mid-append. Remember the frame boundary for Resume and
		// surface the retriable condition — in tail mode this is the
		// expected steady state, not damage, so no salvage entry either.
		r.torn = true
		r.tornOff = off
		return fmt.Errorf("trace: block %d at offset %d: %s: %w", r.blocks, off, cause, ErrTornTail)
	}
	if r.tolerant {
		r.dead = true
		r.salvage.Truncated = true
		r.salvage.add(SalvageEntry{Block: int(r.blocks), Offset: off, Cause: cause})
		return io.EOF
	}
	if err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("trace: block %d at offset %d: %s: %w", r.blocks, off, cause, err)
	}
	return fmt.Errorf("trace: block %d at offset %d: %s", r.blocks, off, cause)
}

// Blocks returns the number of blocks read so far — one per collector
// flush on the write side.
func (r *LogReader) Blocks() uint64 { return r.blocks }

// RawBytes returns the total decompressed bytes read so far.
func (r *LogReader) RawBytes() uint64 { return r.logical }

// CompressedBytes returns the total compressed payload bytes read so far
// (excluding block framing).
func (r *LogReader) CompressedBytes() uint64 { return r.compIn }

// BlocksSkipped returns how many blocks NextFrom discarded without
// decompressing.
func (r *LogReader) BlocksSkipped() uint64 { return r.skipped }

// SkippedBytes returns the compressed payload bytes NextFrom discarded
// without decompressing.
func (r *LogReader) SkippedBytes() uint64 { return r.skippedB }

// Close closes the underlying source and recycles the reader's staging
// buffers, invalidating any slice a previous Next/NextFrom returned.
// Close is idempotent with respect to the buffer pool; only the first
// call returns the buffers.
func (r *LogReader) Close() error {
	if b := r.bufs; b != nil {
		r.bufs = nil
		r.dead = true // post-Close reads report io.EOF, never touch pooled state
		r.r = nil
		if cap(r.comp) <= maxPooledBufBytes {
			b.comp = r.comp[:0]
		}
		if cap(r.raw) <= maxPooledBufBytes {
			b.raw = r.raw[:0]
		}
		r.comp, r.raw = nil, nil
		b.br.Reset(nil)
		logReaderPool.Put(b)
	}
	return r.c.Close()
}

// Meta stream framing, format v2 (the default): the file opens with the
// magic "SWM2\x00", followed by records, each
//
//	uvarint bodyLen | bodyLen bytes (the v1 record encoding) |
//	uint32 LE CRC32-C of body | commit byte 0xC5
//
// The writer flushes after every record, so the commit marker doubles as a
// durability boundary: a crash mid-append leaves a torn tail that the
// tolerant reader detects and cuts off, keeping every committed record.
// Format v1 is bare concatenated records; the reader auto-detects the
// version (no valid v1 stream starts with the magic — it would declare a
// zero span in its fifth field, which DecodeMeta rejects).

// MetaWriter writes meta-data records to a sink.
type MetaWriter struct {
	w       *bufio.Writer
	c       io.Closer
	version int
	buf     []byte
	head    []byte
	n       int
}

// NewMetaWriter returns a writer over w in the current format (v2,
// checksummed and commit-marked).
func NewMetaWriter(w io.WriteCloser) *MetaWriter {
	return NewMetaWriterVersion(w, FormatV2)
}

// NewMetaWriterVersion is NewMetaWriter with an explicit format version —
// FormatV1 reproduces the legacy bare-record stream byte for byte.
func NewMetaWriterVersion(w io.WriteCloser, version int) *MetaWriter {
	if version != FormatV1 {
		version = FormatV2
	}
	mw := &MetaWriter{w: bufio.NewWriter(w), c: w, version: version}
	if version == FormatV2 {
		mw.w.WriteString(metaMagic) // buffered; errors surface at flush/close
	}
	return mw
}

// Version returns the format version the writer emits.
func (w *MetaWriter) Version() int { return w.version }

// Append writes one meta record. In v2 the record is committed — length,
// body, checksum, commit marker — and the stream is flushed, so records a
// crash loses are exactly the ones Append never returned from.
func (w *MetaWriter) Append(m *Meta) error {
	w.buf = AppendMeta(w.buf[:0], m)
	if w.version == FormatV2 {
		w.head = binary.AppendUvarint(w.head[:0], uint64(len(w.buf)))
		var tail [5]byte
		binary.LittleEndian.PutUint32(tail[:4], crc32.Checksum(w.buf, castagnoli))
		tail[4] = metaCommit
		w.buf = append(w.buf, tail[:]...)
		if _, err := w.w.Write(w.head); err != nil {
			return fmt.Errorf("trace: write meta record: %w", err)
		}
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("trace: write meta record: %w", err)
	}
	if w.version == FormatV2 {
		if err := w.w.Flush(); err != nil {
			return fmt.Errorf("trace: commit meta record: %w", err)
		}
	}
	w.n++
	return nil
}

// Count returns the number of records appended.
func (w *MetaWriter) Count() int { return w.n }

// Close flushes and closes the sink.
func (w *MetaWriter) Close() error {
	if err := w.w.Flush(); err != nil {
		w.c.Close()
		return fmt.Errorf("trace: flush meta: %w", err)
	}
	return w.c.Close()
}

// ReadAllMeta decodes every meta record from r and closes it. It is
// strict: any damage is an error, with the count of intact records before
// the damage included in the message.
func ReadAllMeta(r io.ReadCloser) ([]Meta, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read meta file: %w", err)
	}
	metas, _, err := decodeAllMeta(data, false)
	if err != nil {
		return nil, err
	}
	return metas, nil
}

// ReadAllMetaTolerant decodes meta records from r in salvage mode: on a
// torn or damaged record it returns the intact prefix plus a report
// describing the damage, instead of an error. The error return is non-nil
// only for I/O failures reading r itself.
func ReadAllMetaTolerant(r io.ReadCloser) ([]Meta, *SalvageReport, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: read meta file: %w", err)
	}
	metas, rep, _ := decodeAllMeta(data, true)
	return metas, rep, nil
}

func decodeAllMeta(data []byte, tolerant bool) ([]Meta, *SalvageReport, error) {
	metas, _, rep, err := decodeAllMetaCerts(data, tolerant)
	return metas, rep, err
}

func decodeAllMetaCerts(data []byte, tolerant bool) ([]Meta, []LoopCert, *SalvageReport, error) {
	rep := &SalvageReport{}
	version := FormatV1
	pos := 0
	if bytes.HasPrefix(data, []byte(metaMagic)) {
		version = FormatV2
		pos = len(metaMagic)
	}
	var out []Meta
	var certs []LoopCert
	for pos < len(data) {
		var m Meta
		var n int
		var err error
		isMeta := true
		if version == FormatV2 {
			var body []byte
			var marker byte
			body, marker, n, err = decodeV2Frame(data[pos:])
			if err == nil {
				switch marker {
				case metaCommit:
					var used int
					used, err = DecodeMeta(body, &m)
					if err == nil && used != len(body) {
						err = fmt.Errorf("record body is %d bytes but its encoding uses %d", len(body), used)
					}
				case metaExt:
					// Extension record: uvarint record type, then a
					// type-specific payload. Unknown types are skipped by
					// the length framing — old analyzers tolerate records
					// newer collectors write.
					isMeta = false
					recType, k := binary.Uvarint(body)
					if k <= 0 {
						err = errors.New("truncated extension record")
					} else if recType == certRecType {
						var c LoopCert
						if err = decodeCert(body[k:], &c); err == nil {
							certs = append(certs, c)
						}
					}
				}
			}
		} else {
			n, err = DecodeMeta(data[pos:], &m)
		}
		if err != nil {
			if tolerant {
				rep.Truncated = true
				rep.add(SalvageEntry{Block: len(out), Offset: uint64(pos), Cause: err.Error()})
				break
			}
			return nil, nil, nil, fmt.Errorf("trace: meta record %d at offset %d (%d intact record(s) before it): %w",
				len(out), pos, len(out), err)
		}
		pos += n
		rep.SalvagedBytes += uint64(n)
		if isMeta {
			out = append(out, m)
		}
	}
	rep.IntactRecords = len(out)
	return out, certs, rep, nil
}

// decodeV2Frame parses one committed v2 record frame from src — length,
// body, checksum, marker — verifying the checksum and returning the body,
// the marker byte (the record-type discriminator) and the bytes consumed.
func decodeV2Frame(src []byte) ([]byte, byte, int, error) {
	bodyLen, n := binary.Uvarint(src)
	if n == 0 {
		return nil, 0, 0, fmt.Errorf("torn record length: %w", errFrameTorn)
	}
	if n < 0 {
		return nil, 0, 0, errors.New("overlong record length")
	}
	if bodyLen == 0 || bodyLen > maxMetaRecordBytes {
		return nil, 0, 0, fmt.Errorf("implausible record length %d", bodyLen)
	}
	pos := n
	if len(src) < pos+int(bodyLen)+5 {
		return nil, 0, 0, fmt.Errorf("torn record: %w", errFrameTorn)
	}
	body := src[pos : pos+int(bodyLen)]
	pos += int(bodyLen)
	want := binary.LittleEndian.Uint32(src[pos:])
	pos += 4
	marker := src[pos]
	if marker != metaCommit && marker != metaExt {
		return nil, 0, 0, errors.New("missing commit marker")
	}
	pos++
	if crc32.Checksum(body, castagnoli) != want {
		return nil, 0, 0, errors.New("record crc mismatch")
	}
	return body, marker, pos, nil
}

// FormatMetaTable renders meta records in the layout of Table I of the
// paper: one line per barrier-interval fragment with columns pid, ppid,
// bid, offset, span, level, data begin, size.
func FormatMetaTable(metas []Meta) string {
	var b strings.Builder
	b.WriteString("pid\tppid\tbid\toffset\tspan\tlevel\tdata begin\tsize\n")
	for i := range metas {
		m := &metas[i]
		pp := "-"
		if m.PPID != NoParent {
			pp = strconv.FormatUint(m.PPID, 10)
		}
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.PID, pp, m.BID, m.Offset, m.Span, m.Level, m.DataBegin, m.DataSize)
	}
	return b.String()
}

// WriteTaskWaits serializes taskwait cuts (tasking extension) as binary
// records: uvarint count, then uvarint (task region id, wait cut) pairs in
// ascending id order.
func WriteTaskWaits(w io.Writer, waits map[uint64]uint64) error {
	ids := make([]uint64, 0, len(waits))
	for id := range waits {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, waits[id])
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("trace: write task waits: %w", err)
	}
	return nil
}

// ReadTaskWaits parses records written by WriteTaskWaits and closes r.
func ReadTaskWaits(r io.ReadCloser) (map[uint64]uint64, error) {
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read task waits: %w", err)
	}
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated task waits at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	count, err := next()
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64, count)
	for i := uint64(0); i < count; i++ {
		id, err := next()
		if err != nil {
			return nil, err
		}
		cut, err := next()
		if err != nil {
			return nil, err
		}
		out[id] = cut
	}
	return out, nil
}
