package rt

import (
	"errors"
	"io"
	"strings"
	"testing"

	"sword/internal/compress"
	"sword/internal/memsim"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// faultWorkload runs a two-thread region with enough accesses to force
// several buffer flushes. rounds scales the trace volume: the log writer
// buffers 64 KiB, so driving write failures mid-run (not just at Close)
// needs enough rounds to push multiple buffer-fulls into the store.
func faultWorkload(col *Collector, rounds int) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(256)
	pc := pcreg.Site("fault-test:store")
	runtime := omp.New(omp.WithTool(col))
	runtime.Parallel(2, func(th *omp.Thread) {
		for round := 0; round < rounds; round++ {
			th.For(0, 256, func(i int) {
				th.StoreF64(arr, i, float64(i), pc)
			})
			th.Barrier()
		}
	})
}

// TestFlushFailureDegradesSlot pins the collector's write-failure policy:
// when the store starts failing mid-run (disk full), the run keeps going —
// no panic — the failures are counted, the slot is marked degraded, and
// the trace written before the fault remains a salvageable prefix.
func TestFlushFailureDegradesSlot(t *testing.T) {
	mem := trace.NewMemStore()
	fs := trace.NewFaultStore(mem)
	fs.FailWritesAfter(80<<10, nil) // a buffer-full or two fits, then ENOSPC
	fs.SetTornWrites(true)

	metrics := obs.New()
	col := New(fs, Config{Synchronous: true, MaxEvents: 128, Codec: compress.Raw{}, Obs: metrics})
	faultWorkload(col, 400)

	err := col.Close()
	if err == nil {
		t.Fatal("Close reported no error after write failures")
	}
	if !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Close error lacks degradation summary: %v", err)
	}

	stats := col.Stats()
	if stats.FlushErrors == 0 || stats.DegradedSlots == 0 {
		t.Fatalf("stats = %+v, want flush errors and degraded slots", stats)
	}
	if len(col.Diagnostics()) == 0 {
		t.Fatal("no diagnostics recorded")
	}
	if v := metrics.Snapshot().Value("rt.flush_errors"); v == 0 {
		t.Fatalf("rt.flush_errors = %d", v)
	}

	// The intact prefix of each degraded log must still read back in
	// salvage mode without errors.
	slots, err := mem.Slots()
	if err != nil {
		t.Fatal(err)
	}
	salvagedBlocks := 0
	for _, slot := range slots {
		src, err := mem.OpenLog(slot)
		if err != nil {
			t.Fatal(err)
		}
		lr := trace.NewLogReader(src)
		lr.SetTolerant(true)
		for {
			_, _, err := lr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("slot %d salvage read: %v", slot, err)
			}
			salvagedBlocks++
		}
		lr.Close()
	}
	if salvagedBlocks == 0 {
		t.Fatal("no blocks salvaged from the pre-fault prefix")
	}
}

// TestFlushFailureAsyncPipeline runs the same fault through the
// asynchronous flush pipeline: worker-side failures must degrade the slot
// without panicking a worker goroutine or deadlocking Close.
func TestFlushFailureAsyncPipeline(t *testing.T) {
	fs := trace.NewFaultStore(trace.NewMemStore())
	fs.FailWritesAfter(80<<10, nil)
	col := New(fs, Config{MaxEvents: 128, FlushWorkers: 2, Codec: compress.Raw{}})
	faultWorkload(col, 400)
	if err := col.Close(); err == nil {
		t.Fatal("Close reported no error after write failures")
	}
	if stats := col.Stats(); stats.FlushErrors == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// createFailStore fails CreateLog for every slot but the first.
type createFailStore struct {
	trace.Store
	created int
}

func (s *createFailStore) CreateLog(slot int) (io.WriteCloser, error) {
	s.created++
	if s.created > 1 {
		return nil, errors.New("injected create failure")
	}
	return s.Store.CreateLog(slot)
}

// TestCreateFailureKeepsRunAlive: failing to even create a slot's files
// must not panic the instrumented application; the slot collects into the
// void and is reported degraded.
func TestCreateFailureKeepsRunAlive(t *testing.T) {
	col := New(&createFailStore{Store: trace.NewMemStore()}, Config{Synchronous: true, MaxEvents: 128})
	faultWorkload(col, 20)
	if err := col.Close(); err == nil {
		t.Fatal("Close reported no error")
	}
	stats := col.Stats()
	if stats.DegradedSlots == 0 {
		t.Fatalf("stats = %+v, want a degraded slot", stats)
	}
	if stats.Events == 0 {
		t.Fatal("collection stopped after create failure")
	}
}

// TestFailCloseSurfacesError: close-time failures (buffered tail lost)
// must surface through Close, joined across slots.
func TestFailCloseSurfacesError(t *testing.T) {
	fs := trace.NewFaultStore(trace.NewMemStore())
	boom := errors.New("injected close failure")
	fs.FailClose(boom)
	col := New(fs, Config{Synchronous: true, MaxEvents: 128})
	faultWorkload(col, 20)
	if err := col.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want injected close failure", err)
	}
}
