package rt

import (
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"

	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// equivWorkload returns a randomized multi-slot program whose per-thread
// event sequence is fully determined by the seed: each team member draws
// from its own thread-seeded generator, so two executions produce the same
// per-slot logs no matter how flushing is scheduled.
func equivWorkload(seed int64) func(rtm *omp.Runtime) {
	pcR := pcreg.Site("rt-equiv:read")
	pcW := pcreg.Site("rt-equiv:write")
	return func(rtm *omp.Runtime) {
		rtm.Parallel(4, func(th *omp.Thread) {
			rng := rand.New(rand.NewSource(seed + int64(th.ID())))
			for phase := 0; phase < 3; phase++ {
				n := 200 + rng.Intn(400)
				for i := 0; i < n; i++ {
					addr := 0x100000 + uint64(rng.Intn(1<<12))*8
					if rng.Intn(2) == 0 {
						th.Write(addr, 8, pcW)
					} else {
						th.Read(addr, 8, pcR)
					}
					if rng.Intn(64) == 0 {
						th.Critical("c", func() { th.Write(addr, 8, pcW) })
					}
				}
				th.Barrier()
			}
		})
	}
}

// collectRaw runs the program under cfg and returns each slot's stored log
// and meta bytes, sorted so that a permuted thread→slot assignment between
// runs does not affect the comparison.
func collectRaw(t *testing.T, cfg Config, program func(*omp.Runtime)) []string {
	t.Helper()
	store, _ := collect(t, cfg, program)
	slots, err := store.Slots()
	if err != nil {
		t.Fatal(err)
	}
	var blobs []string
	for _, slot := range slots {
		lsrc, err := store.OpenLog(slot)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := io.ReadAll(lsrc)
		if err != nil {
			t.Fatal(err)
		}
		msrc, err := store.OpenMeta(slot)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := io.ReadAll(msrc)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, fmt.Sprintf("log:%x|meta:%x", lb, mb))
	}
	sort.Strings(blobs)
	return blobs
}

// TestAsyncFlushEquivalence pins the parallel flush pipeline's core
// guarantee: for any worker count, the stored trace is byte-identical to a
// synchronous run of the same program — per-slot block order is preserved
// even though different slots compress concurrently.
func TestAsyncFlushEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		program := equivWorkload(seed)
		// Small buffers force many blocks per slot, maximizing reordering
		// opportunities for a buggy pipeline.
		want := collectRaw(t, Config{Synchronous: true, MaxEvents: 64}, program)
		for _, workers := range []int{1, 2, 8} {
			got := collectRaw(t, Config{MaxEvents: 64, FlushWorkers: workers}, program)
			if !slices.Equal(got, want) {
				t.Fatalf("seed %d: async trace (workers=%d) differs from synchronous trace", seed, workers)
			}
		}
	}
}

// TestRegionJoinUnmatchedDiagnostic pins the malformed-sequence behavior: a
// RegionJoin with no matching RegionFork must not panic; it is recorded as
// a diagnostic and counted in rt.protocol_errors, and the trace stays
// structurally valid.
func TestRegionJoinUnmatchedDiagnostic(t *testing.T) {
	m := obs.New()
	store := trace.NewMemStore()
	col := New(store, Config{Synchronous: true, Obs: m})
	rtm := omp.New(omp.WithTool(col))
	rtm.Parallel(2, func(th *omp.Thread) {
		th.Write(0x1000+uint64(th.ID())*8, 8, 1)
		if th.ID() == 1 {
			// A worker thread's slot never saw a RegionFork (forks fire on
			// the encountering thread), so this join is unmatched.
			col.RegionJoin(th, omp.RegionInfo{ID: 999})
		}
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	diags := col.Diagnostics()
	if len(diags) != 1 {
		t.Fatalf("diagnostics = %q, want exactly one", diags)
	}
	if !strings.Contains(diags[0], "RegionJoin") || !strings.Contains(diags[0], "999") {
		t.Fatalf("diagnostic %q does not identify the unmatched join", diags[0])
	}
	if got := m.Snapshot().Value("rt.protocol_errors"); got != 1 {
		t.Fatalf("rt.protocol_errors = %d, want 1", got)
	}
	if err := trace.Validate(store); err != nil {
		t.Fatalf("trace invalid after unmatched join: %v", err)
	}
}
