// Package rt implements SWORD's dynamic analysis phase: a per-thread,
// bounded-memory trace collector attached to the omp runtime through the
// Tool interface.
//
// Each thread slot owns a fixed-capacity event buffer. Instrumented
// accesses and mutex operations append to it; when it reaches capacity the
// buffer is compressed and written to the slot's log file — asynchronously
// by default, through a flusher goroutine, so application threads never
// wait on the file system (the paper's "each thread collects memory
// accesses into its own buffer ... compresses and writes out the buffer to
// disk"). Barrier-interval boundaries (region begin/end, barriers, nested
// forks) emit meta-data records locating each interval fragment's byte
// range in the log.
//
// The collector's memory use is bounded and application-independent:
// per slot one event buffer (default 25,000 events ≈ 2 MB backing model)
// plus fixed auxiliary state — the paper's N × (B + C) formula, surfaced
// by MemoryModel.
package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sword/internal/compress"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// Default bounds, matching Section III-A of the paper.
const (
	// DefaultMaxEvents is the per-thread buffer capacity in events; the
	// paper found 25,000 (≈ 2 MB) optimal for L3 residency.
	DefaultMaxEvents = 25000
	// ModelBufferBytes is the accounted size of one thread's buffer (B).
	ModelBufferBytes = 2 << 20
	// ModelAuxBytes is the accounted per-thread auxiliary and OMPT
	// overhead (C), about 1.3 MB in the paper's measurements.
	ModelAuxBytes = 1_300_000
)

// PCTableAux is the auxiliary file name under which the collector persists
// the interned program-counter table for the offline analyzer.
const PCTableAux = "pctable"

// TaskWaitsAux is the auxiliary file holding taskwait cuts (tasking
// extension): one record per waited task region.
const TaskWaitsAux = "taskwaits"

// Config parameterizes a Collector.
type Config struct {
	// MaxEvents bounds the per-thread buffer; 0 means DefaultMaxEvents.
	MaxEvents int
	// Codec compresses flushed buffers; nil means the LZ77 codec (the
	// paper used LZO).
	Codec compress.Codec
	// Synchronous disables the asynchronous flusher: buffers are
	// compressed and written on the application thread. Useful for
	// deterministic unit tests and the ablation bench.
	Synchronous bool
	// PCs is the program-counter table to persist; nil means
	// pcreg.Default.
	PCs *pcreg.Table
	// Obs, when non-nil, receives the dynamic phase's live metrics
	// (rt.* names, see docs/FORMAT.md): events appended, buffer fills,
	// flush count and latency, raw vs compressed bytes, fragments, and
	// slots. Recording is one atomic add per value; nil disables it.
	Obs *obs.Metrics
}

// Stats aggregates collection counters across all slots.
type Stats struct {
	Events          uint64 // instrumented events recorded
	Flushes         uint64 // buffer flushes
	RawBytes        uint64 // uncompressed bytes flushed
	CompressedBytes uint64 // compressed payload bytes written
	Fragments       uint64 // meta-data records emitted
	Slots           int    // thread slots that produced logs
}

// Collector is the SWORD dynamic phase. Create one per run with New,
// attach it via omp.WithTool, and Close it after the run to flush
// remaining buffers and persist the PC table.
type Collector struct {
	omp.NopTool

	store     trace.Store
	codec     compress.Codec
	maxEvents int
	sync      bool
	pcs       *pcreg.Table

	mu     sync.Mutex
	states map[int]*slotState
	closed bool

	// Region fork/wait boundary cuts, keyed by region id, in the parent
	// interval's cut coordinates (see trace.Meta.Cut). waitCuts holds
	// taskwait joins of the tasking extension; unwaited tasks stay absent
	// (they complete at the barrier, which the interval structure already
	// orders).
	cutMu    sync.Mutex
	forkCuts map[uint64]uint64
	waitCuts map[uint64]uint64

	flushCh chan flushJob
	flushWG sync.WaitGroup
	bufPool sync.Pool

	events    atomic.Uint64
	flushes   atomic.Uint64
	fragments atomic.Uint64

	// Observability handles (nil-safe no-ops when Config.Obs is nil).
	// timed gates the time.Now calls so an uninstrumented collector pays
	// no clock reads on the flush path.
	timed       bool
	mEvents     *obs.Counter
	mFills      *obs.Counter
	mFlushes    *obs.Counter
	mRawBytes   *obs.Counter
	mCompBytes  *obs.Counter
	mFragments  *obs.Counter
	mSlots      *obs.Gauge
	mFlushLat   *obs.Timer
	mFlushQueue *obs.Gauge
}

type flushJob struct {
	st  *slotState
	buf []byte
}

// slotState is the per-thread-slot collection state. Only the goroutine
// currently owning the slot mutates it; the flusher goroutine owns the log
// writer after handoff.
type slotState struct {
	slot    int
	enc     trace.Encoder
	log     *trace.LogWriter
	meta    *trace.MetaWriter
	flushed uint64 // logical bytes handed to the flusher

	frag     trace.Meta
	fragOpen bool
	stack    []trace.Meta // suspended enclosing fragments at nested forks
	cuts     map[trace.IntervalKey]uint64
}

// New creates a collector writing to store.
func New(store trace.Store, cfg Config) *Collector {
	c := &Collector{
		store:     store,
		codec:     cfg.Codec,
		maxEvents: cfg.MaxEvents,
		sync:      cfg.Synchronous,
		pcs:       cfg.PCs,
		states:    make(map[int]*slotState),
		forkCuts:  make(map[uint64]uint64),
		waitCuts:  make(map[uint64]uint64),
	}
	if c.codec == nil {
		c.codec = compress.LZSS{}
	}
	if c.maxEvents <= 0 {
		c.maxEvents = DefaultMaxEvents
	}
	if c.pcs == nil {
		c.pcs = pcreg.Default
	}
	if m := cfg.Obs; m != nil {
		c.timed = true
		c.mEvents = m.Counter("rt.events")
		c.mFills = m.Counter("rt.buffer_fills")
		c.mFlushes = m.Counter("rt.flushes")
		c.mRawBytes = m.Counter("rt.raw_bytes")
		c.mCompBytes = m.Counter("rt.compressed_bytes")
		c.mFragments = m.Counter("rt.fragments")
		c.mSlots = m.Gauge("rt.slots")
		c.mFlushLat = m.Timer("rt.flush")
		c.mFlushQueue = m.Gauge("rt.flush_queue_peak")
	}
	c.bufPool.New = func() any { return []byte(nil) }
	if !c.sync {
		c.flushCh = make(chan flushJob, 64)
		c.flushWG.Add(1)
		go c.flusher()
	}
	return c
}

func (c *Collector) flusher() {
	defer c.flushWG.Done()
	for job := range c.flushCh {
		c.writeBlock(job.st, job.buf)
		c.bufPool.Put(job.buf[:0]) //nolint:staticcheck // slice reuse is the point
	}
}

func (c *Collector) writeBlock(st *slotState, buf []byte) {
	if len(buf) == 0 {
		return
	}
	var start time.Time
	if c.timed {
		start = time.Now()
	}
	compBefore := st.log.CompressedBytes()
	if err := st.log.WriteBlock(buf); err != nil {
		// Collection I/O failure is unrecoverable for the analysis; the
		// real tool would abort the run. Surface loudly.
		panic(fmt.Sprintf("rt: flush slot %d: %v", st.slot, err))
	}
	c.flushes.Add(1)
	if c.timed {
		c.mFlushLat.Observe(time.Since(start))
		c.mFlushes.Inc()
		c.mRawBytes.Add(uint64(len(buf)))
		c.mCompBytes.Add(st.log.CompressedBytes() - compBefore)
	}
}

// state returns (creating if needed) the slot's collection state.
func (c *Collector) state(slot int) *slotState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.states[slot]
	if !ok {
		logSink, err := c.store.CreateLog(slot)
		if err != nil {
			panic(fmt.Sprintf("rt: create log for slot %d: %v", slot, err))
		}
		metaSink, err := c.store.CreateMeta(slot)
		if err != nil {
			panic(fmt.Sprintf("rt: create meta for slot %d: %v", slot, err))
		}
		st = &slotState{
			slot: slot,
			log:  trace.NewLogWriter(logSink, c.codec),
			meta: trace.NewMetaWriter(metaSink),
			cuts: make(map[trace.IntervalKey]uint64),
		}
		c.states[slot] = st
		c.mSlots.Set(int64(len(c.states)))
	}
	return st
}

// logical returns the slot's current logical byte position: flushed bytes
// plus the encoder's pending bytes.
func (st *slotState) logical() uint64 { return st.flushed + uint64(st.enc.Len()) }

// flush hands the current buffer to the flusher (or writes it inline in
// synchronous mode) and resets the encoder.
func (c *Collector) flush(st *slotState) {
	n := st.enc.Len()
	if n == 0 {
		return
	}
	if c.sync {
		c.writeBlock(st, st.enc.Bytes())
	} else {
		buf := append(c.bufPool.Get().([]byte)[:0], st.enc.Bytes()...)
		c.flushCh <- flushJob{st: st, buf: buf}
		c.mFlushQueue.SetMax(int64(len(c.flushCh)))
	}
	st.flushed += uint64(n)
	st.enc.Reset()
}

// openFragment starts a new interval fragment for the thread's current
// (region, bid) position.
func (c *Collector) openFragment(st *slotState, th *omp.Thread) {
	info := th.Region()
	c.cutMu.Lock()
	parentCut := c.forkCuts[info.ID]
	c.cutMu.Unlock()
	st.frag = trace.Meta{
		PID:       info.ID,
		PPID:      info.ParentID,
		BID:       th.BID(),
		Offset:    uint64(th.ID()) + th.BID()*uint64(info.Size),
		Span:      uint64(info.Size),
		Level:     info.Level,
		DataBegin: st.logical(),
		ParentTID: info.ParentTID,
		ParentBID: info.ParentBID,
		Seq:       info.Seq,
		Held:      th.Held(),
		Cut:       st.cuts[trace.IntervalKey{PID: info.ID, TID: uint64(th.ID()), BID: th.BID()}],
		ParentCut: parentCut,
		Async:     info.Async,
	}
	st.fragOpen = true
}

// closeFragment ends the open fragment, emitting its meta record when it
// captured any data.
func (c *Collector) closeFragment(st *slotState) {
	if !st.fragOpen {
		return
	}
	st.fragOpen = false
	st.cuts[st.frag.Key()]++ // every close is a boundary in cut coordinates
	st.frag.DataSize = st.logical() - st.frag.DataBegin
	if st.frag.DataSize == 0 && !(st.frag.BID == 0 && st.frag.TID() == 0) {
		// Empty interval fragments carry no access data; only the master's
		// first fragment is kept regardless, so every region instance —
		// even one whose own intervals are all empty — appears in some
		// meta-data file with its fork coordinates, which the offline
		// analyzer needs to rebuild the region tree.
		return
	}
	if err := st.meta.Append(&st.frag); err != nil {
		panic(fmt.Sprintf("rt: write meta for slot %d: %v", st.slot, err))
	}
	c.fragments.Add(1)
	c.mFragments.Inc()
}

// RegionFork implements omp.Tool: the encountering thread suspends its
// current fragment across the nested region.
func (c *Collector) RegionFork(parent *omp.Thread, region omp.RegionInfo) {
	st := c.state(parent.Slot())
	if st.fragOpen {
		key := st.frag.Key()
		c.closeFragment(st)
		c.cutMu.Lock()
		c.forkCuts[region.ID] = st.cuts[key]
		c.cutMu.Unlock()
		st.stack = append(st.stack, st.frag)
	} else {
		st.stack = append(st.stack, trace.Meta{Span: 0}) // marker: nothing to resume
	}
}

// TaskSpawn implements omp.Tool: the spawner's fragment splits at the
// spawn so accesses before it are ordered before the task; the recorded
// fork cut opens the task's concurrency window within the interval.
func (c *Collector) TaskSpawn(spawner *omp.Thread, task omp.RegionInfo) {
	st := c.state(spawner.Slot())
	if !st.fragOpen {
		return // spawned outside any instrumented interval
	}
	key := st.frag.Key()
	c.closeFragment(st)
	c.cutMu.Lock()
	c.forkCuts[task.ID] = st.cuts[key]
	c.cutMu.Unlock()
	c.openFragment(st, spawner)
}

// TaskWaited implements omp.Tool: the taskwait closes the waited tasks'
// concurrency windows and splits the fragment so subsequent accesses are
// ordered after them.
func (c *Collector) TaskWaited(spawner *omp.Thread, taskIDs []uint64) {
	st := c.state(spawner.Slot())
	if !st.fragOpen {
		return
	}
	key := st.frag.Key()
	c.closeFragment(st)
	c.cutMu.Lock()
	for _, id := range taskIDs {
		c.waitCuts[id] = st.cuts[key]
	}
	c.cutMu.Unlock()
	c.openFragment(st, spawner)
}

// RegionJoin implements omp.Tool: the encountering thread resumes its
// suspended fragment as a fresh fragment with the same interval identity.
func (c *Collector) RegionJoin(parent *omp.Thread, _ omp.RegionInfo) {
	st := c.state(parent.Slot())
	top := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	if top.Span == 0 {
		return // the fork happened outside any parallel region
	}
	c.openFragment(st, parent)
}

// ParallelBegin implements omp.Tool.
func (c *Collector) ParallelBegin(th *omp.Thread) {
	st := c.state(th.Slot())
	c.openFragment(st, th)
}

// ParallelEnd implements omp.Tool.
func (c *Collector) ParallelEnd(th *omp.Thread) {
	st := c.state(th.Slot())
	c.closeFragment(st)
}

// BarrierArrive implements omp.Tool: the interval ends at the barrier.
// Crucially, the fragment is closed *before* waiting, so threads flush
// their interval data without waiting for each other — the independence
// the paper highlights for barrier-heavy codes.
func (c *Collector) BarrierArrive(th *omp.Thread, _ bool) {
	c.closeFragment(c.state(th.Slot()))
}

// BarrierDepart implements omp.Tool: a new interval begins.
func (c *Collector) BarrierDepart(th *omp.Thread, _ bool) {
	c.openFragment(c.state(th.Slot()), th)
}

// MutexAcquired implements omp.Tool.
func (c *Collector) MutexAcquired(th *omp.Thread, mutex uint64) {
	st := c.state(th.Slot())
	st.enc.Acquire(mutex)
	c.bump(st)
}

// MutexReleased implements omp.Tool.
func (c *Collector) MutexReleased(th *omp.Thread, mutex uint64) {
	st := c.state(th.Slot())
	st.enc.Release(mutex)
	c.bump(st)
}

// Access implements omp.Tool: the hot path.
func (c *Collector) Access(th *omp.Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	st := c.state(th.Slot())
	st.enc.Access(addr, size, write, atomic, pc)
	c.bump(st)
}

func (c *Collector) bump(st *slotState) {
	c.events.Add(1)
	c.mEvents.Inc()
	if st.enc.Events() >= c.maxEvents {
		c.mFills.Inc()
		c.flush(st)
	}
}

// Close flushes every slot's remaining buffer, closes all writers, stops
// the flusher, and persists the PC table. The collector must not be used
// afterwards.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	states := make([]*slotState, 0, len(c.states))
	for _, st := range c.states {
		states = append(states, st)
	}
	c.mu.Unlock()

	for _, st := range states {
		if st.fragOpen {
			c.closeFragment(st)
		}
		c.flush(st)
	}
	if !c.sync {
		close(c.flushCh)
		c.flushWG.Wait()
	}
	var firstErr error
	for _, st := range states {
		if err := st.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := st.meta.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	aux, err := c.store.CreateAux(PCTableAux)
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
	} else {
		if _, err := c.pcs.WriteTo(aux); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := aux.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.writeTaskWaits(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// writeTaskWaits persists the taskwait cuts for the offline analyzer.
func (c *Collector) writeTaskWaits() error {
	c.cutMu.Lock()
	waits := make(map[uint64]uint64, len(c.waitCuts))
	for id, cut := range c.waitCuts {
		waits[id] = cut
	}
	c.cutMu.Unlock()
	if len(waits) == 0 {
		return nil
	}
	aux, err := c.store.CreateAux(TaskWaitsAux)
	if err != nil {
		return err
	}
	if err := trace.WriteTaskWaits(aux, waits); err != nil {
		aux.Close()
		return err
	}
	return aux.Close()
}

// Stats returns collection counters. Call after Close for final values.
func (c *Collector) Stats() Stats {
	s := Stats{
		Events:    c.events.Load(),
		Flushes:   c.flushes.Load(),
		Fragments: c.fragments.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Slots = len(c.states)
	for _, st := range c.states {
		s.RawBytes += st.log.RawBytes()
		s.CompressedBytes += st.log.CompressedBytes()
	}
	return s
}

// MemoryModel returns the accounted dynamic-phase memory overhead for the
// given thread count: N × (B + C), the paper's bounded-overhead formula
// (≈ 3.3 MB per thread), independent of application footprint.
func MemoryModel(threads int) uint64 {
	return uint64(threads) * (ModelBufferBytes + ModelAuxBytes)
}
