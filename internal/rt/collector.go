// Package rt implements SWORD's dynamic analysis phase: a per-thread,
// bounded-memory trace collector attached to the omp runtime through the
// Tool interface.
//
// Each thread slot owns a fixed-capacity event buffer. Instrumented
// accesses and mutex operations append to it; when it reaches capacity the
// buffer is compressed and written to the slot's log file — asynchronously
// by default, through a pool of flush workers, so application threads
// never wait on compression or the file system (the paper's "each thread
// collects memory accesses into its own buffer ... compresses and writes
// out the buffer to disk"). Barrier-interval boundaries (region begin/end,
// barriers, nested forks) emit meta-data records locating each interval
// fragment's byte range in the log.
//
// Two invariants keep the hot path scalable:
//
//   - Slot lookup is lock-free. The slot table is an atomically published
//     slice, grown copy-on-write under a mutex only when a new slot first
//     appears; Access/MutexAcquired/MutexReleased pay one atomic load.
//   - The flush pipeline preserves per-slot block order while compressing
//     different slots concurrently: each slot owns a FIFO of pending
//     buffers and is scheduled on at most one worker at a time, so blocks
//     of one log are always written in collection order.
//
// The collector's memory use is bounded and application-independent:
// per slot one event buffer (default 25,000 events ≈ 2 MB backing model)
// plus fixed auxiliary state — the paper's N × (B + C) formula, surfaced
// by MemoryModel.
package rt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sword/internal/compress"
	"sword/internal/obs"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// Default bounds, matching Section III-A of the paper.
const (
	// DefaultMaxEvents is the per-thread buffer capacity in events; the
	// paper found 25,000 (≈ 2 MB) optimal for L3 residency.
	DefaultMaxEvents = 25000
	// ModelBufferBytes is the accounted size of one thread's buffer (B).
	ModelBufferBytes = 2 << 20
	// ModelAuxBytes is the accounted per-thread auxiliary and OMPT
	// overhead (C), about 1.3 MB in the paper's measurements.
	ModelAuxBytes = 1_300_000
)

// PCTableAux is the auxiliary file name under which the collector persists
// the interned program-counter table for the offline analyzer.
const PCTableAux = "pctable"

// TaskWaitsAux is the auxiliary file holding taskwait cuts (tasking
// extension): one record per waited task region.
const TaskWaitsAux = "taskwaits"

// Config parameterizes a Collector.
type Config struct {
	// MaxEvents bounds the per-thread buffer; 0 means DefaultMaxEvents.
	MaxEvents int
	// Codec compresses flushed buffers; nil means the LZ77 codec (the
	// paper used LZO).
	Codec compress.Codec
	// Synchronous disables the asynchronous flush pipeline: buffers are
	// compressed and written on the application thread. Useful for
	// deterministic unit tests and the ablation bench.
	Synchronous bool
	// FlushWorkers bounds the asynchronous flush pipeline's worker pool:
	// how many slots may compress and write concurrently. 0 picks
	// min(GOMAXPROCS, 4); ignored in Synchronous mode. Per-slot block
	// order is preserved regardless of the worker count.
	FlushWorkers int
	// PCs is the program-counter table to persist; nil means
	// pcreg.Default.
	PCs *pcreg.Table
	// Obs, when non-nil, receives the dynamic phase's live metrics
	// (rt.* names, see docs/FORMAT.md): events appended, buffer fills,
	// flush count and latency, raw vs compressed bytes, fragments, and
	// slots. Recording is one atomic add per value; nil disables it.
	Obs *obs.Metrics
	// StaticFilter arms static worksharing certificates (omp.CertTool):
	// accesses a certified loop proves race-free are counted
	// (rt.events_filtered) instead of recorded, and the certificate is
	// persisted as a meta extension record so the analyzer can retire the
	// loop's pair classes. Off by default.
	StaticFilter bool
	// LiveFlush makes every committed meta record a durable promise for a
	// tailing analyzer: before a fragment's meta record is appended, the
	// slot's pending event bytes are written and the log is flushed, so the
	// record's data range is always readable behind the committed log
	// frontier. Implies Synchronous (an asynchronous pipeline cannot order
	// a flush against the meta commit) and trades flush batching for
	// bounded staleness — the live-analysis collection mode.
	LiveFlush bool
}

// Stats aggregates collection counters across all slots.
type Stats struct {
	Events          uint64 // instrumented events recorded
	EventsFiltered  uint64 // accesses dropped by static certificates
	Flushes         uint64 // buffer flushes
	RawBytes        uint64 // uncompressed bytes flushed
	CompressedBytes uint64 // compressed payload bytes written
	Fragments       uint64 // meta-data records emitted
	Slots           int    // thread slots that produced logs
	FlushErrors     uint64 // trace writes that failed (slots degraded, run kept alive)
	DegradedSlots   int    // slots whose trace was truncated by a write failure
}

// Collector is the SWORD dynamic phase. Create one per run with New,
// attach it via omp.WithTool, and Close it after the run to flush
// remaining buffers and persist the PC table.
type Collector struct {
	omp.NopTool

	store        trace.Store
	codec        compress.Codec
	maxEvents    int
	sync         bool
	flushWorkers int
	staticFilter bool
	liveFlush    bool
	pcs          *pcreg.Table

	// table is the atomically published slot table, indexed by slot id.
	// Readers pay one atomic load; mu guards creation and the
	// copy-on-write growth, never the per-event path.
	table  atomic.Pointer[[]*slotState]
	mu     sync.Mutex
	closed bool

	// Region fork/wait boundary cuts, keyed by region id, in the parent
	// interval's cut coordinates (see trace.Meta.Cut). waitCuts holds
	// taskwait joins of the tasking extension; unwaited tasks stay absent
	// (they complete at the barrier, which the interval structure already
	// orders).
	cutMu    sync.Mutex
	forkCuts map[uint64]uint64
	waitCuts map[uint64]uint64

	// Asynchronous flush pipeline: slots with pending buffers are
	// scheduled on flushCh and drained by flushWorkers workers. queued
	// buffers are counted in queueLen (for the high-water gauge) and in
	// pendingWG so Close can drain deterministically.
	flushCh   chan *slotState
	flushWG   sync.WaitGroup
	pendingWG sync.WaitGroup
	queueLen  atomic.Int64
	active    atomic.Int64
	bufPool   sync.Pool // *[]byte (pointer avoids boxing on Put, SA6002)

	events         atomic.Uint64
	eventsFiltered atomic.Uint64
	flushes        atomic.Uint64
	fragments      atomic.Uint64
	flushErrors    atomic.Uint64

	// Protocol diagnostics: malformed tool-event sequences (for example a
	// RegionJoin with no matching RegionFork) are recorded here instead of
	// panicking mid-run.
	diagMu sync.Mutex
	diags  []string

	// Observability handles (nil-safe no-ops when Config.Obs is nil).
	// timed gates the time.Now calls so an uninstrumented collector pays
	// no clock reads on the flush path.
	timed        bool
	mEvents      *obs.Counter
	mFiltered    *obs.Counter
	mFills       *obs.Counter
	mFlushes     *obs.Counter
	mRawBytes    *obs.Counter
	mCompBytes   *obs.Counter
	mFragments   *obs.Counter
	mSlots       *obs.Gauge
	mFlushLat    *obs.Timer
	mFlushQueue  *obs.Gauge
	mFlushActive *obs.Gauge
	mProtoErrs   *obs.Counter
	mFlushErrs   *obs.Counter
}

// slotState is the per-thread-slot collection state. Only the goroutine
// currently owning the slot mutates the encoder and fragment state; the
// flush pipeline owns the log writer, one worker at a time.
type slotState struct {
	slot    int
	enc     trace.Encoder
	log     *trace.LogWriter
	meta    *trace.MetaWriter
	flushed uint64 // logical bytes handed to the flush pipeline

	frag     trace.Meta
	fragOpen bool
	stack    []trace.Meta // suspended enclosing fragments at nested forks
	cuts     map[trace.IntervalKey]uint64

	// certForce keeps the next empty fragment: a fully filtered interval
	// still needs its meta record so the analyzer sees the (empty,
	// certified) unit and can retire its pair classes.
	certForce bool

	// Pending flush queue. qmu orders producers against the draining
	// worker; queued means the slot is scheduled (or running) on a worker,
	// which guarantees at most one in-flight compression per slot and
	// therefore in-order blocks within the log.
	qmu    sync.Mutex
	queue  []*[]byte
	queued bool

	// degraded is set when a trace write for this slot fails. The policy
	// for production runs is graceful degradation, not abort: the failure
	// is counted (rt.flush_errors) and diagnosed, further log blocks and
	// meta records for the slot are dropped — truncating its trace at the
	// last successfully written byte, a prefix the salvage-mode analyzer
	// recovers — and the application keeps running undisturbed.
	degraded atomic.Bool
}

// New creates a collector writing to store.
func New(store trace.Store, cfg Config) *Collector {
	c := &Collector{
		store:        store,
		codec:        cfg.Codec,
		maxEvents:    cfg.MaxEvents,
		sync:         cfg.Synchronous || cfg.LiveFlush,
		flushWorkers: cfg.FlushWorkers,
		staticFilter: cfg.StaticFilter,
		liveFlush:    cfg.LiveFlush,
		pcs:          cfg.PCs,
		forkCuts:     make(map[uint64]uint64),
		waitCuts:     make(map[uint64]uint64),
	}
	empty := make([]*slotState, 0)
	c.table.Store(&empty)
	if c.codec == nil {
		c.codec = compress.LZSS{}
	}
	if c.maxEvents <= 0 {
		c.maxEvents = DefaultMaxEvents
	}
	if c.flushWorkers <= 0 {
		c.flushWorkers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.pcs == nil {
		c.pcs = pcreg.Default
	}
	if m := cfg.Obs; m != nil {
		c.timed = true
		c.mEvents = m.Counter("rt.events")
		c.mFiltered = m.Counter("rt.events_filtered")
		c.mFills = m.Counter("rt.buffer_fills")
		c.mFlushes = m.Counter("rt.flushes")
		c.mRawBytes = m.Counter("rt.raw_bytes")
		c.mCompBytes = m.Counter("rt.compressed_bytes")
		c.mFragments = m.Counter("rt.fragments")
		c.mSlots = m.Gauge("rt.slots")
		c.mFlushLat = m.Timer("rt.flush")
		c.mFlushQueue = m.Gauge("rt.flush_queue_peak")
		c.mFlushActive = m.Gauge("rt.flush_active_peak")
		c.mProtoErrs = m.Counter("rt.protocol_errors")
		c.mFlushErrs = m.Counter("rt.flush_errors")
	}
	c.bufPool.New = func() any { return new([]byte) }
	if !c.sync {
		c.flushCh = make(chan *slotState, 256)
		for w := 0; w < c.flushWorkers; w++ {
			c.flushWG.Add(1)
			go c.flushWorker()
		}
		if m := cfg.Obs; m != nil {
			m.Gauge("rt.flush_workers").Set(int64(c.flushWorkers))
		}
	}
	return c
}

// flushWorker drains scheduled slots. A slot is on the channel at most
// once (the queued flag), so two workers never touch the same log writer;
// within one slot, buffers leave the FIFO in collection order.
func (c *Collector) flushWorker() {
	defer c.flushWG.Done()
	for st := range c.flushCh {
		c.mFlushActive.SetMax(c.active.Add(1))
		for {
			st.qmu.Lock()
			if len(st.queue) == 0 {
				st.queued = false
				st.qmu.Unlock()
				break
			}
			buf := st.queue[0]
			st.queue = st.queue[1:]
			st.qmu.Unlock()
			c.writeBlock(st, *buf)
			c.queueLen.Add(-1)
			c.bufPool.Put(buf)
			c.pendingWG.Done()
		}
		c.active.Add(-1)
	}
}

func (c *Collector) writeBlock(st *slotState, buf []byte) {
	if len(buf) == 0 || st.degraded.Load() {
		return
	}
	var start time.Time
	if c.timed {
		start = time.Now()
	}
	compBefore := st.log.CompressedBytes()
	if err := st.log.WriteBlock(buf); err != nil {
		c.degrade(st, fmt.Sprintf("rt: flush slot %d: %v", st.slot, err))
		return
	}
	c.flushes.Add(1)
	if c.timed {
		c.mFlushLat.Observe(time.Since(start))
		c.mFlushes.Inc()
		c.mRawBytes.Add(uint64(len(buf)))
		c.mCompBytes.Add(st.log.CompressedBytes() - compBefore)
	}
}

// degrade marks a slot's trace as truncated after a write failure: the
// error is counted and diagnosed, and the slot stops writing. The
// application thread is never interrupted — that is the whole point of a
// production-run detector.
func (c *Collector) degrade(st *slotState, msg string) {
	c.flushErrors.Add(1)
	c.mFlushErrs.Inc()
	if st.degraded.CompareAndSwap(false, true) {
		c.diag(msg)
	}
}

// discardCloser backs the writers of a slot whose files could not even be
// created: collection proceeds into the void so the run stays alive.
type discardCloser struct{}

func (discardCloser) Write(p []byte) (int, error) { return len(p), nil }
func (discardCloser) Close() error                { return nil }

// state returns (creating if needed) the slot's collection state. The
// common case — the slot already exists — is one atomic load and an
// indexed read, with no shared lock between threads.
func (c *Collector) state(slot int) *slotState {
	tab := *c.table.Load()
	if slot < len(tab) {
		if st := tab[slot]; st != nil {
			return st
		}
	}
	return c.newState(slot)
}

// newState is the slow path: create the slot's writers and publish a new
// table. Publication is copy-on-write so concurrent lock-free readers
// never observe a partially initialized entry.
func (c *Collector) newState(slot int) *slotState {
	c.mu.Lock()
	defer c.mu.Unlock()
	tab := *c.table.Load()
	if slot < len(tab) && tab[slot] != nil {
		return tab[slot] // lost the creation race
	}
	var createErr error
	logSink, err := c.store.CreateLog(slot)
	if err != nil {
		logSink, createErr = discardCloser{}, err
	}
	metaSink, err := c.store.CreateMeta(slot)
	if err != nil {
		metaSink = discardCloser{}
		if createErr == nil {
			createErr = err
		}
	}
	st := &slotState{
		slot: slot,
		log:  trace.NewLogWriter(logSink, c.codec),
		meta: trace.NewMetaWriter(metaSink),
		cuts: make(map[trace.IntervalKey]uint64),
	}
	if createErr != nil {
		c.degrade(st, fmt.Sprintf("rt: create trace files for slot %d: %v", slot, createErr))
	}
	grown := make([]*slotState, max(len(tab), slot+1))
	copy(grown, tab)
	grown[slot] = st
	c.table.Store(&grown)
	slots := 0
	for _, s := range grown {
		if s != nil {
			slots++
		}
	}
	c.mSlots.Set(int64(slots))
	return st
}

// snapshot returns the current slot states, skipping unused table entries.
func (c *Collector) snapshot() []*slotState {
	tab := *c.table.Load()
	states := make([]*slotState, 0, len(tab))
	for _, st := range tab {
		if st != nil {
			states = append(states, st)
		}
	}
	return states
}

// logical returns the slot's current logical byte position: flushed bytes
// plus the encoder's pending bytes.
func (st *slotState) logical() uint64 { return st.flushed + uint64(st.enc.Len()) }

// flush hands the current buffer to the flush pipeline (or writes it
// inline in synchronous mode) and resets the encoder.
func (c *Collector) flush(st *slotState) {
	n := st.enc.Len()
	if n == 0 {
		return
	}
	if c.sync {
		c.writeBlock(st, st.enc.Bytes())
	} else {
		buf := c.bufPool.Get().(*[]byte)
		*buf = append((*buf)[:0], st.enc.Bytes()...)
		c.enqueue(st, buf)
	}
	st.flushed += uint64(n)
	st.enc.Reset()
}

// enqueue appends a buffer to the slot's FIFO and schedules the slot on a
// worker unless one already holds it. The queued transition happens under
// the slot's lock, so a slot is never scheduled twice.
func (c *Collector) enqueue(st *slotState, buf *[]byte) {
	c.pendingWG.Add(1)
	c.mFlushQueue.SetMax(c.queueLen.Add(1))
	st.qmu.Lock()
	st.queue = append(st.queue, buf)
	schedule := !st.queued
	if schedule {
		st.queued = true
	}
	st.qmu.Unlock()
	if schedule {
		c.flushCh <- st
	}
}

// diag records a protocol diagnostic: the collector keeps collecting, the
// malformed sequence is surfaced through Diagnostics and the
// rt.protocol_errors counter instead of a mid-run panic.
func (c *Collector) diag(msg string) {
	c.diagMu.Lock()
	c.diags = append(c.diags, msg)
	c.diagMu.Unlock()
	c.mProtoErrs.Inc()
}

// Diagnostics returns the protocol diagnostics recorded so far (malformed
// tool-event sequences). Empty on a well-formed run.
func (c *Collector) Diagnostics() []string {
	c.diagMu.Lock()
	defer c.diagMu.Unlock()
	out := make([]string, len(c.diags))
	copy(out, c.diags)
	return out
}

// openFragment starts a new interval fragment for the thread's current
// (region, bid) position.
func (c *Collector) openFragment(st *slotState, th *omp.Thread) {
	info := th.Region()
	c.cutMu.Lock()
	parentCut := c.forkCuts[info.ID]
	c.cutMu.Unlock()
	st.frag = trace.Meta{
		PID:       info.ID,
		PPID:      info.ParentID,
		BID:       th.BID(),
		Offset:    uint64(th.ID()) + th.BID()*uint64(info.Size),
		Span:      uint64(info.Size),
		Level:     info.Level,
		DataBegin: st.logical(),
		ParentTID: info.ParentTID,
		ParentBID: info.ParentBID,
		Seq:       info.Seq,
		Held:      th.Held(),
		Cut:       st.cuts[trace.IntervalKey{PID: info.ID, TID: uint64(th.ID()), BID: th.BID()}],
		ParentCut: parentCut,
		Async:     info.Async,
	}
	st.fragOpen = true
}

// closeFragment ends the open fragment, emitting its meta record when it
// captured any data.
func (c *Collector) closeFragment(st *slotState) {
	if !st.fragOpen {
		return
	}
	st.fragOpen = false
	st.cuts[st.frag.Key()]++ // every close is a boundary in cut coordinates
	st.frag.DataSize = st.logical() - st.frag.DataBegin
	force := st.certForce
	st.certForce = false
	if st.frag.DataSize == 0 && !force && !(st.frag.BID == 0 && st.frag.TID() == 0) {
		// Empty interval fragments carry no access data; only the master's
		// first fragment is kept regardless, so every region instance —
		// even one whose own intervals are all empty — appears in some
		// meta-data file with its fork coordinates, which the offline
		// analyzer needs to rebuild the region tree.
		return
	}
	if st.degraded.Load() {
		return
	}
	if c.liveFlush {
		// Make the fragment's event bytes durable before committing the
		// meta record that locates them: a tailing analyzer treats a
		// committed record as a promise that its data range lies behind
		// the committed log frontier.
		c.flush(st) // inline: LiveFlush implies synchronous mode
		if err := st.log.Flush(); err != nil {
			c.degrade(st, fmt.Sprintf("rt: live flush slot %d: %v", st.slot, err))
		}
		if st.degraded.Load() {
			return
		}
	}
	if err := st.meta.Append(&st.frag); err != nil {
		c.degrade(st, fmt.Sprintf("rt: write meta for slot %d: %v", st.slot, err))
		return
	}
	c.fragments.Add(1)
	c.mFragments.Inc()
}

// RegionFork implements omp.Tool: the encountering thread suspends its
// current fragment across the nested region.
func (c *Collector) RegionFork(parent *omp.Thread, region omp.RegionInfo) {
	st := c.state(parent.Slot())
	if st.fragOpen {
		key := st.frag.Key()
		c.closeFragment(st)
		c.cutMu.Lock()
		c.forkCuts[region.ID] = st.cuts[key]
		c.cutMu.Unlock()
		st.stack = append(st.stack, st.frag)
	} else {
		st.stack = append(st.stack, trace.Meta{Span: 0}) // marker: nothing to resume
	}
}

// TaskSpawn implements omp.Tool: the spawner's fragment splits at the
// spawn so accesses before it are ordered before the task; the recorded
// fork cut opens the task's concurrency window within the interval.
func (c *Collector) TaskSpawn(spawner *omp.Thread, task omp.RegionInfo) {
	st := c.state(spawner.Slot())
	if !st.fragOpen {
		return // spawned outside any instrumented interval
	}
	key := st.frag.Key()
	c.closeFragment(st)
	c.cutMu.Lock()
	c.forkCuts[task.ID] = st.cuts[key]
	c.cutMu.Unlock()
	c.openFragment(st, spawner)
}

// TaskWaited implements omp.Tool: the taskwait closes the waited tasks'
// concurrency windows and splits the fragment so subsequent accesses are
// ordered after them.
func (c *Collector) TaskWaited(spawner *omp.Thread, taskIDs []uint64) {
	st := c.state(spawner.Slot())
	if !st.fragOpen {
		return
	}
	key := st.frag.Key()
	c.closeFragment(st)
	c.cutMu.Lock()
	for _, id := range taskIDs {
		c.waitCuts[id] = st.cuts[key]
	}
	c.cutMu.Unlock()
	c.openFragment(st, spawner)
}

// RegionJoin implements omp.Tool: the encountering thread resumes its
// suspended fragment as a fresh fragment with the same interval identity.
// A join with no matching fork (a malformed tool-event sequence) is
// recorded as a diagnostic rather than panicking.
func (c *Collector) RegionJoin(parent *omp.Thread, region omp.RegionInfo) {
	st := c.state(parent.Slot())
	if len(st.stack) == 0 {
		c.diag(fmt.Sprintf("rt: slot %d: RegionJoin of region %d without a matching RegionFork", st.slot, region.ID))
		return
	}
	top := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	if top.Span == 0 {
		return // the fork happened outside any parallel region
	}
	c.openFragment(st, parent)
}

// ParallelBegin implements omp.Tool.
func (c *Collector) ParallelBegin(th *omp.Thread) {
	st := c.state(th.Slot())
	c.openFragment(st, th)
}

// ParallelEnd implements omp.Tool.
func (c *Collector) ParallelEnd(th *omp.Thread) {
	st := c.state(th.Slot())
	c.closeFragment(st)
}

// BarrierArrive implements omp.Tool: the interval ends at the barrier.
// Crucially, the fragment is closed *before* waiting, so threads flush
// their interval data without waiting for each other — the independence
// the paper highlights for barrier-heavy codes.
func (c *Collector) BarrierArrive(th *omp.Thread, _ bool) {
	c.closeFragment(c.state(th.Slot()))
}

// BarrierDepart implements omp.Tool: a new interval begins.
func (c *Collector) BarrierDepart(th *omp.Thread, _ bool) {
	c.openFragment(c.state(th.Slot()), th)
}

// MutexAcquired implements omp.Tool.
func (c *Collector) MutexAcquired(th *omp.Thread, mutex uint64) {
	st := c.state(th.Slot())
	st.enc.Acquire(mutex)
	c.bump(st)
}

// MutexReleased implements omp.Tool.
func (c *Collector) MutexReleased(th *omp.Thread, mutex uint64) {
	st := c.state(th.Slot())
	st.enc.Release(mutex)
	c.bump(st)
}

// Access implements omp.Tool: the hot path.
func (c *Collector) Access(th *omp.Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	st := c.state(th.Slot())
	st.enc.Access(addr, size, write, atomic, pc)
	c.bump(st)
}

// LoopCertBegin implements omp.CertTool: when static filtering is on, arm
// the certificate for this thread — record where the loop sits in the
// slot's trace (trace thread id and fragment cut, which the analyzer needs
// to rematerialize a voided certificate into the right unit) and keep the
// interval's meta record even if every access ends up filtered.
func (c *Collector) LoopCertBegin(th *omp.Thread, cert *trace.LoopCert) bool {
	if !c.staticFilter {
		return false
	}
	st := c.state(th.Slot())
	if st.degraded.Load() || !st.fragOpen {
		return false
	}
	cert.Threads[th.ID()] = trace.CertThread{
		TID:     st.frag.TID(),
		Cut:     st.frag.Cut,
		Dropped: cert.Threads[th.ID()].Dropped,
	}
	st.certForce = true
	return true
}

// LoopCertEnd implements omp.CertTool: persist the finalized certificate
// as a meta extension record in this thread's slot and account the
// filtered events.
func (c *Collector) LoopCertEnd(th *omp.Thread, cert *trace.LoopCert) {
	var dropped uint64
	for i := range cert.Threads {
		for _, n := range cert.Threads[i].Dropped {
			dropped += n
		}
	}
	c.eventsFiltered.Add(dropped)
	c.mFiltered.Add(dropped)
	st := c.state(th.Slot())
	if st.degraded.Load() {
		return
	}
	if err := st.meta.AppendCert(cert); err != nil {
		c.degrade(st, fmt.Sprintf("rt: write certificate for slot %d: %v", st.slot, err))
	}
}

func (c *Collector) bump(st *slotState) {
	c.events.Add(1)
	c.mEvents.Inc()
	if st.enc.Events() >= c.maxEvents {
		c.mFills.Inc()
		c.flush(st)
	}
}

// Close flushes every slot's remaining buffer, drains the flush pipeline,
// closes all writers, and persists the PC table. The collector must not be
// used afterwards.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	states := c.snapshot()

	for _, st := range states {
		if st.fragOpen {
			c.closeFragment(st)
		}
		c.flush(st)
	}
	if !c.sync {
		c.pendingWG.Wait() // every queued buffer is on disk
		close(c.flushCh)
		c.flushWG.Wait()
	}
	var errs []error
	degraded := 0
	for _, st := range states {
		wasDegraded := st.degraded.Load()
		if err := st.log.Close(); err != nil && !wasDegraded {
			errs = append(errs, err)
		}
		if err := st.meta.Close(); err != nil && !wasDegraded {
			errs = append(errs, err)
		}
		if st.degraded.Load() {
			degraded++
		}
	}
	// Taskwaits first, pc table last: the pc table's appearance is the
	// end-of-run marker a tailing analyzer watches for, so every other
	// trace artifact must already be durable when it lands.
	if err := c.writeTaskWaits(); err != nil {
		errs = append(errs, err)
	}
	aux, err := c.store.CreateAux(PCTableAux)
	if err != nil {
		errs = append(errs, err)
	} else {
		if _, err := c.pcs.WriteTo(aux); err != nil {
			errs = append(errs, err)
		}
		if err := aux.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	// Degraded slots already reported their write failures through
	// Diagnostics and rt.flush_errors; summarize rather than repeating each
	// underlying I/O error.
	if n := c.flushErrors.Load(); n > 0 {
		errs = append(errs, fmt.Errorf("rt: %d trace write(s) failed; %d slot(s) degraded, intact trace prefix preserved for salvage", n, degraded))
	}
	return errors.Join(errs...)
}

// writeTaskWaits persists the taskwait cuts for the offline analyzer.
func (c *Collector) writeTaskWaits() error {
	c.cutMu.Lock()
	waits := make(map[uint64]uint64, len(c.waitCuts))
	for id, cut := range c.waitCuts {
		waits[id] = cut
	}
	c.cutMu.Unlock()
	if len(waits) == 0 {
		return nil
	}
	aux, err := c.store.CreateAux(TaskWaitsAux)
	if err != nil {
		return err
	}
	if err := trace.WriteTaskWaits(aux, waits); err != nil {
		aux.Close()
		return err
	}
	return aux.Close()
}

// Stats returns collection counters. Call after Close for final values.
func (c *Collector) Stats() Stats {
	s := Stats{
		Events:         c.events.Load(),
		EventsFiltered: c.eventsFiltered.Load(),
		Flushes:        c.flushes.Load(),
		Fragments:      c.fragments.Load(),
		FlushErrors:    c.flushErrors.Load(),
	}
	for _, st := range c.snapshot() {
		s.Slots++
		s.RawBytes += st.log.RawBytes()
		s.CompressedBytes += st.log.CompressedBytes()
		if st.degraded.Load() {
			s.DegradedSlots++
		}
	}
	return s
}

// MemoryModel returns the accounted dynamic-phase memory overhead for the
// given thread count: N × (B + C), the paper's bounded-overhead formula
// (≈ 3.3 MB per thread), independent of application footprint.
func MemoryModel(threads int) uint64 {
	return uint64(threads) * (ModelBufferBytes + ModelAuxBytes)
}
