package rt

import (
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/trace"
)

// TestFilteredAccessSteadyStateAllocs pins the certified drop path: once
// the certificate machinery is warm (pooled team slot, pre-sized drop
// counters, reusable meta-record scratch), the per-access cost of a
// certified loop must be allocation-free. What remains per loop instance
// is a small constant of interval bookkeeping — the cut-coordinate map
// gains one entry per thread per barrier interval — so the test asserts
// both that the constant is small and that it does not grow with the
// iteration count: an 8x longer loop must allocate exactly as much as the
// short one, i.e. dropping an access allocates nothing.
func TestFilteredAccessSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; steady-state allocs are meaningless")
	}
	store := trace.NewMemStore()
	col := New(store, Config{Synchronous: true, StaticFilter: true})
	rtm := omp.New(omp.WithTool(col))
	arr, err := memsim.NewSpace(nil).AllocF64(4096)
	if err != nil {
		t.Fatal(err)
	}
	loop := omp.NewAffineLoop()
	rd := loop.ReadF64(arr, 1, 0, 0x7001)
	wr := loop.WriteF64(arr, 1, 0, 0x7002)
	var short, long float64
	rtm.Parallel(2, func(th *omp.Thread) {
		body := func(it *omp.AffineIter) {
			it.StoreF64(wr, it.LoadF64(rd)+1)
		}
		measure := func(iters int, out *float64) {
			run := func() { th.ForAffine(loop, 0, iters, body) }
			// Warm: arm the certificate, fill the pools, and grow the
			// store's meta buffer past what the measured instances append.
			for i := 0; i < 100; i++ {
				run()
			}
			if th.ID() == 0 {
				*out = testing.AllocsPerRun(20, run)
			} else {
				for i := 0; i < 21; i++ { // AllocsPerRun runs once extra as warm-up
					run()
				}
			}
		}
		measure(512, &short)
		measure(4096, &long)
	})
	if st := col.Stats(); st.EventsFiltered == 0 {
		t.Fatal("certified loop filtered no accesses; the test is not measuring the drop path")
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	// Two threads x one cut-map entry per interval, plus headroom for the
	// occasional amortized map growth.
	if short > 4 {
		t.Errorf("certified loop allocates %.1f objects per instance at steady state, want <= 4", short)
	}
	if long > short {
		t.Errorf("allocations grew with iteration count (%.1f for 512 iters, %.1f for 4096): the drop path allocates per access",
			short, long)
	}
}
