package rt

import (
	"io"
	"testing"

	"sword/internal/compress"
	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// readSlot decodes a slot's full log into events with their logical
// positions, plus the slot's meta records.
func readSlot(t *testing.T, store trace.Store, slot int) (events []trace.Event, positions []uint64, metas []trace.Meta) {
	t.Helper()
	src, err := store.OpenLog(slot)
	if err != nil {
		t.Fatal(err)
	}
	lr := trace.NewLogReader(src)
	for {
		start, raw, err := lr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dec := trace.NewDecoder(raw)
		for dec.More() {
			pos := start + uint64(dec.Pos())
			var ev trace.Event
			if err := dec.Next(&ev); err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
			positions = append(positions, pos)
		}
	}
	lr.Close()
	msrc, err := store.OpenMeta(slot)
	if err != nil {
		t.Fatal(err)
	}
	metas, err = trace.ReadAllMeta(msrc)
	if err != nil {
		t.Fatal(err)
	}
	return events, positions, metas
}

func collect(t *testing.T, cfg Config, program func(rt *omp.Runtime)) (trace.Store, *Collector) {
	t.Helper()
	store := trace.NewMemStore()
	col := New(store, cfg)
	runtime := omp.New(omp.WithTool(col))
	program(runtime)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store, col
}

func TestSimpleRegionRoundTrip(t *testing.T) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(64)
	pcR := pcreg.Site("rt-test:read")
	pcW := pcreg.Site("rt-test:write")
	store, col := collect(t, Config{Synchronous: true}, func(rt *omp.Runtime) {
		rt.Parallel(2, func(th *omp.Thread) {
			th.For(0, 64, func(i int) {
				v := th.LoadF64(arr, i, pcR)
				th.StoreF64(arr, i, v+1, pcW)
			})
		})
	})
	slots, err := store.Slots()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 {
		t.Fatalf("slots = %v, want 2", slots)
	}
	totalAccesses := 0
	for _, slot := range slots {
		events, positions, metas := readSlot(t, store, slot)
		if len(metas) == 0 {
			t.Fatalf("slot %d has no meta records", slot)
		}
		for _, m := range metas {
			if m.Span != 2 || m.Level != 1 {
				t.Fatalf("meta %+v", m)
			}
		}
		// Every event must fall inside exactly one fragment.
		for i, pos := range positions {
			in := 0
			for _, m := range metas {
				if pos >= m.DataBegin && pos < m.DataBegin+m.DataSize {
					in++
				}
			}
			if in != 1 {
				t.Fatalf("event %d at %d covered by %d fragments", i, pos, in)
			}
		}
		for _, ev := range events {
			if ev.Kind != trace.KindAccess {
				t.Fatalf("unexpected event %+v", ev)
			}
			if ev.PC != pcR && ev.PC != pcW {
				t.Fatalf("unknown pc %d", ev.PC)
			}
			if ev.Addr < arr.Base() || ev.Addr > arr.Addr(63) {
				t.Fatalf("address %#x outside array", ev.Addr)
			}
			totalAccesses++
		}
	}
	if totalAccesses != 2*64 {
		t.Fatalf("decoded %d accesses, want 128", totalAccesses)
	}
	stats := col.Stats()
	if stats.Events != 2*64 || stats.Slots != 2 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.CompressedBytes == 0 || stats.RawBytes == 0 {
		t.Fatalf("byte counters empty: %+v", stats)
	}
}

func TestBarrierSplitsFragments(t *testing.T) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(8)
	pc := pcreg.Site("rt-test:barrier")
	store, _ := collect(t, Config{Synchronous: true}, func(rt *omp.Runtime) {
		rt.Parallel(2, func(th *omp.Thread) {
			th.StoreF64(arr, th.ID(), 1, pc)
			th.Barrier()
			th.StoreF64(arr, th.ID()+2, 1, pc)
			th.Barrier()
			th.StoreF64(arr, th.ID()+4, 1, pc)
		})
	})
	slots, _ := store.Slots()
	for _, slot := range slots {
		_, _, metas := readSlot(t, store, slot)
		if len(metas) != 3 {
			t.Fatalf("slot %d: %d fragments, want 3:\n%s", slot, len(metas), trace.FormatMetaTable(metas))
		}
		for i, m := range metas {
			if m.BID != uint64(i) {
				t.Fatalf("fragment %d has bid %d", i, m.BID)
			}
			tid := m.TID()
			if m.Offset != tid+m.BID*m.Span {
				t.Fatalf("offset-span mismatch: %+v", m)
			}
		}
	}
}

func TestNestedRegionSuspendsFragment(t *testing.T) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(16)
	pcOuter := pcreg.Site("rt-test:outer")
	pcInner := pcreg.Site("rt-test:inner")
	store, _ := collect(t, Config{Synchronous: true}, func(rt *omp.Runtime) {
		rt.Parallel(1, func(outer *omp.Thread) {
			outer.StoreF64(arr, 0, 1, pcOuter)
			outer.Parallel(2, func(in *omp.Thread) {
				in.StoreF64(arr, 2+in.ID(), 1, pcInner)
			})
			outer.StoreF64(arr, 1, 1, pcOuter)
		})
	})
	// Slot 0 is the outer thread and the inner master: it must carry an
	// outer fragment, an inner fragment, and the resumed outer fragment.
	events, positions, metas := readSlot(t, store, 0)
	if len(metas) != 3 {
		t.Fatalf("%d fragments, want 3:\n%s", len(metas), trace.FormatMetaTable(metas))
	}
	outer0, inner, outer1 := metas[0], metas[1], metas[2]
	if outer0.Level != 1 || inner.Level != 2 || outer1.Level != 1 {
		t.Fatalf("levels: %d %d %d", outer0.Level, inner.Level, outer1.Level)
	}
	if outer0.PID != outer1.PID || outer0.BID != outer1.BID {
		t.Fatal("resumed fragment has different interval identity")
	}
	if inner.PPID != outer0.PID {
		t.Fatalf("inner ppid %d, want %d", inner.PPID, outer0.PID)
	}
	if inner.ParentTID != 0 || inner.ParentBID != 0 {
		t.Fatalf("inner fork point %+v", inner)
	}
	// The inner fragment must contain exactly the inner master's access.
	var innerEvents int
	for i, pos := range positions {
		if pos >= inner.DataBegin && pos < inner.DataBegin+inner.DataSize {
			if events[i].PC != pcInner {
				t.Fatalf("outer access inside inner fragment: %+v", events[i])
			}
			innerEvents++
		}
	}
	if innerEvents != 1 {
		t.Fatalf("inner fragment holds %d events, want 1", innerEvents)
	}
}

func TestFlushOnBufferCap(t *testing.T) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(1)
	pc := pcreg.Site("rt-test:flood")
	const n = 1000
	for _, syncMode := range []bool{true, false} {
		store, col := collect(t, Config{Synchronous: syncMode, MaxEvents: 100}, func(rt *omp.Runtime) {
			rt.Parallel(1, func(th *omp.Thread) {
				for i := 0; i < n; i++ {
					th.LoadF64(arr, 0, pc)
				}
			})
		})
		stats := col.Stats()
		if stats.Flushes < n/100 {
			t.Fatalf("sync=%v: %d flushes, want >= %d", syncMode, stats.Flushes, n/100)
		}
		events, _, metas := readSlot(t, store, 0)
		if len(events) != n {
			t.Fatalf("sync=%v: %d events, want %d", syncMode, len(events), n)
		}
		if len(metas) != 1 {
			t.Fatalf("sync=%v: %d fragments, want 1", syncMode, len(metas))
		}
		if metas[0].DataSize == 0 {
			t.Fatal("fragment size 0")
		}
	}
}

func TestMutexEventsRecorded(t *testing.T) {
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(1)
	pc := pcreg.Site("rt-test:crit")
	store, _ := collect(t, Config{Synchronous: true}, func(rt *omp.Runtime) {
		rt.Parallel(1, func(th *omp.Thread) {
			th.Critical("c", func() {
				th.StoreF64(arr, 0, 1, pc)
			})
		})
	})
	events, _, _ := readSlot(t, store, 0)
	if len(events) != 3 {
		t.Fatalf("%d events, want acquire+access+release", len(events))
	}
	if events[0].Kind != trace.KindMutexAcquire ||
		events[1].Kind != trace.KindAccess ||
		events[2].Kind != trace.KindMutexRelease {
		t.Fatalf("event kinds: %v %v %v", events[0].Kind, events[1].Kind, events[2].Kind)
	}
	if events[0].Mutex != events[2].Mutex {
		t.Fatal("acquire/release mutex mismatch")
	}
}

func TestPCTablePersisted(t *testing.T) {
	pcs := pcreg.NewTable()
	id := pcs.Register("myfile.go:42")
	store, _ := collect(t, Config{Synchronous: true, PCs: pcs}, func(rt *omp.Runtime) {
		rt.Parallel(1, func(th *omp.Thread) {
			th.Write(0x1000, 8, id)
		})
	})
	aux, err := store.OpenAux(PCTableAux)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pcreg.ReadTable(aux)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name(id) != "myfile.go:42" {
		t.Fatalf("persisted name = %q", got.Name(id))
	}
}

func TestCloseIdempotent(t *testing.T) {
	store := trace.NewMemStore()
	col := New(store, Config{})
	omp.New(omp.WithTool(col)).Parallel(1, func(th *omp.Thread) {
		th.Write(0x10, 8, 1)
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecConfigurable(t *testing.T) {
	for _, codec := range []compress.Codec{compress.Raw{}, compress.LZSS{}, compress.NewFlate()} {
		store, _ := collect(t, Config{Synchronous: true, Codec: codec}, func(rt *omp.Runtime) {
			rt.Parallel(1, func(th *omp.Thread) {
				for i := 0; i < 500; i++ {
					th.Write(0x1000+uint64(i)*8, 8, 1)
				}
			})
		})
		events, _, _ := readSlot(t, store, 0)
		if len(events) != 500 {
			t.Fatalf("%s: %d events", codec.Name(), len(events))
		}
	}
}

func TestMemoryModel(t *testing.T) {
	per := MemoryModel(1)
	if per < 3_000_000 || per > 3_700_000 {
		t.Fatalf("per-thread model = %d, want ≈3.3 MB", per)
	}
	if MemoryModel(24) != 24*per {
		t.Fatal("model not linear in threads")
	}
}

func TestManyRegionsManySlots(t *testing.T) {
	// LULESH-like shape: many small regions reusing pooled slots.
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(64)
	pc := pcreg.Site("rt-test:many")
	store, col := collect(t, Config{}, func(rt *omp.Runtime) {
		for r := 0; r < 200; r++ {
			rt.Parallel(4, func(th *omp.Thread) {
				th.For(0, 64, func(i int) {
					th.LoadF64(arr, i, pc)
				})
			})
		}
	})
	slots, _ := store.Slots()
	if len(slots) != 4 {
		t.Fatalf("%d slots, want 4 (pooled)", len(slots))
	}
	var fragments int
	for _, slot := range slots {
		_, _, metas := readSlot(t, store, slot)
		fragments += len(metas)
		pids := map[uint64]bool{}
		for _, m := range metas {
			pids[m.PID] = true
		}
		if len(pids) < 2 {
			t.Fatalf("slot %d saw only %d regions; slot reuse broken", slot, len(pids))
		}
	}
	if fragments != 200*4 {
		t.Fatalf("%d fragments, want 800", fragments)
	}
	if col.Stats().Events != 200*64 {
		t.Fatalf("events = %d", col.Stats().Events)
	}
}

func BenchmarkCollectorAccess(b *testing.B) {
	store := trace.NewMemStore()
	col := New(store, Config{})
	rt := omp.New(omp.WithTool(col))
	pc := pcreg.Site("bench:access")
	b.ReportAllocs()
	rt.Parallel(1, func(th *omp.Thread) {
		for i := 0; i < b.N; i++ {
			th.Write(0x100000+uint64(i%4096)*8, 8, pc)
		}
	})
	b.StopTimer()
	col.Close()
}
