package rt

import (
	"io"
	"strings"
	"testing"

	"sword/internal/memsim"
	"sword/internal/omp"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// collectProgram runs a moderately rich program (nested regions, tasks,
// barriers, criticals) under the collector and returns the store.
func collectProgram(t *testing.T) *trace.MemStore {
	t.Helper()
	store := trace.NewMemStore()
	col := New(store, Config{Synchronous: true, MaxEvents: 50})
	rtm := omp.New(omp.WithTool(col))
	space := memsim.NewSpace(nil)
	a, _ := space.AllocF64(256)
	pc := pcreg.Site("validate:access")
	rtm.Parallel(3, func(th *omp.Thread) {
		th.For(0, 256, func(i int) {
			th.StoreF64(a, i, 1, pc)
		})
		th.Critical("c", func() {
			th.LoadF64(a, 0, pc)
		})
		if th.ID() == 1 {
			th.Parallel(2, func(in *omp.Thread) {
				in.LoadF64(a, in.ID(), pc)
			})
			th.Task(func(tt *omp.Thread) {
				tt.LoadF64(a, 3, pc)
			})
			th.TaskWait()
		}
		th.Barrier()
		th.LoadF64(a, th.ID(), pc)
	})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return store
}

func TestValidateCleanTrace(t *testing.T) {
	store := collectProgram(t)
	if err := trace.Validate(store); err != nil {
		t.Fatalf("clean trace failed validation: %v", err)
	}
}

// corruptingStore wraps a MemStore, corrupting one file on read.
type corruptingStore struct {
	*trace.MemStore
	corruptLog  int // slot whose log to truncate, -1 = none
	corruptMeta int // slot whose meta to bit-flip, -1 = none
}

func (s corruptingStore) OpenLog(slot int) (io.ReadCloser, error) {
	rc, err := s.MemStore.OpenLog(slot)
	if err != nil || slot != s.corruptLog {
		return rc, err
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	return io.NopCloser(strings.NewReader(string(data[:len(data)/2]))), nil
}

func (s corruptingStore) OpenMeta(slot int) (io.ReadCloser, error) {
	rc, err := s.MemStore.OpenMeta(slot)
	if err != nil || slot != s.corruptMeta {
		return rc, err
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if len(data) > 4 {
		data[len(data)/2] ^= 0xff
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

func TestValidateDetectsTruncatedLog(t *testing.T) {
	store := collectProgram(t)
	bad := corruptingStore{MemStore: store, corruptLog: 0, corruptMeta: -1}
	if err := trace.Validate(bad); err == nil {
		t.Fatal("truncated log passed validation")
	}
}

func TestValidateDetectsCorruptMeta(t *testing.T) {
	store := collectProgram(t)
	bad := corruptingStore{MemStore: store, corruptLog: -1, corruptMeta: 0}
	err := trace.Validate(bad)
	if err == nil {
		// A bit flip may decode into structurally valid records; flip in
		// the log instead to guarantee detection of the class.
		t.Skip("bit flip happened to decode; covered by TestValidateDetectsTruncatedLog")
	}
}

func TestAnalyzerErrorsOnCorruptTrace(t *testing.T) {
	// The offline analyzer must return an error, not panic, on damaged
	// input (failure injection).
	store := collectProgram(t)
	bad := corruptingStore{MemStore: store, corruptLog: 1, corruptMeta: -1}
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("analyzer panicked on corrupt trace: %v", p)
		}
	}()
	if err := trace.Validate(bad); err == nil {
		t.Fatal("corrupt store validated")
	}
}
