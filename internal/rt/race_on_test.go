//go:build race

package rt

// raceEnabled reports whether the race detector is on: sync.Pool
// deliberately drops items under -race, so steady-state allocation
// assertions cannot hold there.
const raceEnabled = true
