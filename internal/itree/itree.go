// Package itree implements the augmented red-black interval tree SWORD's
// offline analysis uses to summarize each thread's memory accesses within a
// barrier interval.
//
// A node summarizes a strided run of accesses sharing the same attributes
// (program counter, read/write, width, atomicity, held-mutex set): an
// arithmetic progression of start addresses from Low to High with the given
// Stride, each access touching Width bytes. Consecutive accesses from array
// sweeps coalesce into a single node, which is what keeps tree sizes —
// and therefore pairwise comparison cost — proportional to the number of
// distinct access patterns rather than the number of accesses
// (M ≤ N in the paper's complexity discussion).
//
// The tree is keyed by Low and augmented with the maximum last-touched byte
// of each subtree, supporting O(log M + k) overlap enumeration.
package itree

import (
	"fmt"
	"strings"

	"sword/internal/ilp"
	"sword/internal/trace"
)

// Run is the pointer-free payload of a Node: one strided interval of
// summarized accesses. It is a separate struct so the arena Builder can
// slab-allocate payloads the garbage collector never scans — a []Run
// carries no pointers, so appends take no write barriers and slab growth
// moves half the bytes a []Node would.
type Run struct {
	Low     uint64 // first access start address
	High    uint64 // last access start address (== Low for a single access)
	Stride  uint64 // distance between consecutive start addresses; 0 if single
	Width   uint64 // bytes touched per access
	Write   bool
	Atomic  bool
	PC      uint64
	Mutexes trace.MutexSet
	Count   uint64 // number of accesses summarized into this node
}

// Node is one interval of summarized accesses: the Run payload plus the
// RB-tree plumbing. The plumbing is unexported and unused on
// builder-constructed runs; payload fields are read-only for callers once
// inserted.
type Node struct {
	Run

	left, right, parent *Node
	red                 bool
	maxEnd              uint64 // max of lastByte() over this subtree
}

// lastByte returns the last byte this interval touches.
func (r *Run) lastByte() uint64 { return r.High + r.Width - 1 }

// LastByte returns the last byte this interval touches — the right edge of
// the node's bounding box.
func (r *Run) LastByte() uint64 { return r.lastByte() }

// Progression returns the node's address set for the constraint solver.
func (r *Run) Progression() ilp.Progression {
	count := uint64(0)
	if r.Stride != 0 {
		count = (r.High - r.Low) / r.Stride
	}
	return ilp.Progression{Base: r.Low, Stride: r.Stride, Count: count, Width: r.Width}
}

// String renders the node as in the paper's Figure 5, e.g.
// "[10,50] Δ8 w4 W pc=3".
func (r *Run) String() string {
	op := "R"
	if r.Write {
		op = "W"
	}
	if r.Atomic {
		op += "a"
	}
	return fmt.Sprintf("[%d,%d] Δ%d w%d %s pc=%d", r.Low, r.High, r.Stride, r.Width, op, r.PC)
}

// Tree is an augmented red-black interval tree. The zero value is an empty
// tree ready for use. Not safe for concurrent mutation; the offline
// analyzer builds each thread's trees on a single worker, exactly as the
// paper notes tree generation is not parallelized.
type Tree struct {
	root  *Node
	size  int
	accum uint64
	// recent caches the most recently inserted or extended nodes for
	// coalescing. A handful of entries covers the common interleavings —
	// loop bodies alternating a few read and write streams per iteration —
	// that a single-slot cache misses.
	recent  [4]*Node
	nrecent int
}

// Len returns the number of interval nodes.
func (t *Tree) Len() int { return t.size }

// Accesses returns the total number of accesses inserted (the paper's N,
// versus Len which is M).
func (t *Tree) Accesses() uint64 { return t.accum }

// Access describes one instrumented memory access to insert.
type Access struct {
	Addr    uint64
	Width   uint64
	Write   bool
	Atomic  bool
	PC      uint64
	Mutexes trace.MutexSet
}

// Insert adds an access, coalescing it into the most recent node when it
// continues that node's arithmetic progression with identical attributes.
func (t *Tree) Insert(a Access) {
	t.accum++
	for _, n := range t.recent[:t.nrecent] {
		if n.PC != a.PC || n.Write != a.Write || n.Atomic != a.Atomic ||
			n.Width != a.Width || n.Mutexes != a.Mutexes {
			continue
		}
		switch {
		case a.Addr == n.High:
			// Repeated access to the same position (e.g. reduction-style
			// re-reads): absorb without growing the interval.
			n.Count++
			return
		case n.Stride == 0 && a.Addr > n.Low:
			n.Stride = a.Addr - n.Low
			n.High = a.Addr
			n.Count++
			t.fixMaxEndUp(n)
			return
		case n.Stride != 0 && a.Addr == n.High+n.Stride:
			n.High = a.Addr
			n.Count++
			t.fixMaxEndUp(n)
			return
		}
	}
	n := &Node{Run: Run{Low: a.Addr, High: a.Addr, Width: a.Width, Write: a.Write,
		Atomic: a.Atomic, PC: a.PC, Mutexes: a.Mutexes, Count: 1}, red: true}
	t.insertNode(n)
	t.size++
	// Most-recently-used first; drop the oldest entry.
	if t.nrecent < len(t.recent) {
		t.nrecent++
	}
	copy(t.recent[1:t.nrecent], t.recent[:t.nrecent-1])
	t.recent[0] = n
}

// fixMaxEndUp recomputes maxEnd from n to the root after n's interval grew.
func (t *Tree) fixMaxEndUp(n *Node) {
	for m := n; m != nil; m = m.parent {
		e := m.lastByte()
		if m.left != nil && m.left.maxEnd > e {
			e = m.left.maxEnd
		}
		if m.right != nil && m.right.maxEnd > e {
			e = m.right.maxEnd
		}
		if m.maxEnd == e && m != n {
			break
		}
		m.maxEnd = e
	}
}

func (t *Tree) insertNode(n *Node) {
	n.maxEnd = n.lastByte()
	if t.root == nil {
		n.red = false
		t.root = n
		return
	}
	cur := t.root
	for {
		if cur.maxEnd < n.maxEnd {
			cur.maxEnd = n.maxEnd
		}
		if n.Low < cur.Low {
			if cur.left == nil {
				cur.left = n
				n.parent = cur
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				n.parent = cur
				break
			}
			cur = cur.right
		}
	}
	t.rebalance(n)
}

func (t *Tree) rotateLeft(x *Node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	y.maxEnd = x.maxEnd
	t.recomputeMaxEnd(x)
}

func (t *Tree) rotateRight(x *Node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	y.maxEnd = x.maxEnd
	t.recomputeMaxEnd(x)
}

func (t *Tree) recomputeMaxEnd(n *Node) {
	e := n.lastByte()
	if n.left != nil && n.left.maxEnd > e {
		e = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > e {
		e = n.right.maxEnd
	}
	n.maxEnd = e
}

func (t *Tree) rebalance(n *Node) {
	for n != t.root && n.parent.red {
		g := n.parent.parent
		if n.parent == g.left {
			uncle := g.right
			if uncle != nil && uncle.red {
				n.parent.red = false
				uncle.red = false
				g.red = true
				n = g
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.red = false
			g.red = true
			t.rotateRight(g)
		} else {
			uncle := g.left
			if uncle != nil && uncle.red {
				n.parent.red = false
				uncle.red = false
				g.red = true
				n = g
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.red = false
			g.red = true
			t.rotateLeft(g)
		}
	}
	t.root.red = false
}

// VisitOverlaps calls f for every node whose byte range [Low, High+Width-1]
// intersects [lo, hi]. It stops early if f returns false. Overlap here is a
// bounding-box test; precise strided intersection is the constraint
// solver's job.
func (t *Tree) VisitOverlaps(lo, hi uint64, f func(*Node) bool) {
	visitOverlaps(t.root, lo, hi, f)
}

func visitOverlaps(n *Node, lo, hi uint64, f func(*Node) bool) bool {
	if n == nil || n.maxEnd < lo {
		return true
	}
	if !visitOverlaps(n.left, lo, hi, f) {
		return false
	}
	if n.Low <= hi && n.lastByte() >= lo {
		if !f(n) {
			return false
		}
	}
	if n.Low > hi {
		// Every node in the right subtree has Low >= n.Low > hi.
		return true
	}
	return visitOverlaps(n.right, lo, hi, f)
}

// Visit walks all nodes in ascending Low order, stopping early if f
// returns false.
func (t *Tree) Visit(f func(*Node) bool) {
	var walk func(*Node) bool
	walk = func(n *Node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && f(n) && walk(n.right)
	}
	walk(t.root)
}

// Nodes returns every interval node in ascending Low order — the flattened
// run the sweep-based comparison engine merges instead of probing the tree
// per node. The slice is freshly allocated; the nodes stay owned by the
// tree and must not be mutated.
func (t *Tree) Nodes() []*Node {
	out := make([]*Node, 0, t.size)
	t.Visit(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Runs returns every interval's payload in ascending Low order — the same
// flattened, pointer-free run Builder.Finish produces, for code that
// consumes either construction path uniformly.
func (t *Tree) Runs() []Run {
	out := make([]Run, 0, t.size)
	t.Visit(func(n *Node) bool {
		out = append(out, n.Run)
		return true
	})
	return out
}

// Height returns the height of the tree (0 for empty), for balance checks.
func (t *Tree) Height() int {
	var h func(*Node) int
	h = func(n *Node) int {
		if n == nil {
			return 0
		}
		return 1 + max(h(n.left), h(n.right))
	}
	return h(t.root)
}

// String renders the intervals in order, one per line.
func (t *Tree) String() string {
	var b strings.Builder
	t.Visit(func(n *Node) bool {
		b.WriteString(n.String())
		b.WriteByte('\n')
		return true
	})
	return b.String()
}

// Check validates the red-black and augmentation invariants, returning an
// error describing the first violation. It is exported for tests and for
// the property-based suite.
func (t *Tree) Check() error {
	if t.root == nil {
		return nil
	}
	if t.root.red {
		return fmt.Errorf("itree: red root")
	}
	if t.root.parent != nil {
		return fmt.Errorf("itree: root has parent")
	}
	count := 0
	_, err := checkNode(t.root, &count)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("itree: size %d but %d nodes reachable", t.size, count)
	}
	return nil
}

func checkNode(n *Node, count *int) (blackHeight int, err error) {
	if n == nil {
		return 1, nil
	}
	*count++
	if n.red {
		if (n.left != nil && n.left.red) || (n.right != nil && n.right.red) {
			return 0, fmt.Errorf("itree: red node %s has red child", n)
		}
	}
	if n.left != nil {
		if n.left.parent != n {
			return 0, fmt.Errorf("itree: broken parent link at %s", n.left)
		}
		if n.left.Low > n.Low {
			return 0, fmt.Errorf("itree: order violation: %s left of %s", n.left, n)
		}
	}
	if n.right != nil {
		if n.right.parent != n {
			return 0, fmt.Errorf("itree: broken parent link at %s", n.right)
		}
		if n.right.Low < n.Low {
			return 0, fmt.Errorf("itree: order violation: %s right of %s", n.right, n)
		}
	}
	if n.Stride != 0 && (n.High-n.Low)%n.Stride != 0 {
		return 0, fmt.Errorf("itree: ragged interval %s", n)
	}
	want := n.lastByte()
	lh, err := checkNode(n.left, count)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right, count)
	if err != nil {
		return 0, err
	}
	if n.left != nil && n.left.maxEnd > want {
		want = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > want {
		want = n.right.maxEnd
	}
	if n.maxEnd != want {
		return 0, fmt.Errorf("itree: maxEnd %d != %d at %s", n.maxEnd, want, n)
	}
	if lh != rh {
		return 0, fmt.Errorf("itree: black height mismatch at %s: %d vs %d", n, lh, rh)
	}
	if n.red {
		return lh, nil
	}
	return lh + 1, nil
}

// Compact rebuilds the tree, merging mergeable neighbors that insert-time
// coalescing missed — descending sweeps, interleaved streams that
// exhausted the recent-node cache, or fragments split across flushes. Two
// nodes merge when they share attributes and their positions form one
// arithmetic progression. Returns the number of nodes eliminated.
//
// This is the paper's trace-merging step: comparison cost is O(M log M)
// in the node count, so shrinking M before pairwise comparison pays for
// itself on fragmented traces.
func (t *Tree) Compact() int {
	if t.size < 2 {
		return 0
	}
	nodes := make([]*Node, 0, t.size)
	t.Visit(func(n *Node) bool {
		nodes = append(nodes, n)
		return true
	})
	merged := make([]*Node, 0, len(nodes))
	for _, n := range nodes {
		if len(merged) > 0 {
			last := merged[len(merged)-1]
			if tryMerge(&last.Run, &n.Run) {
				continue
			}
		}
		n.left, n.right, n.parent = nil, nil, nil
		merged = append(merged, n)
	}
	eliminated := t.size - len(merged)
	if eliminated == 0 {
		// Restore a valid tree shape (links were cleared above).
		rebuilt := Tree{accum: t.accum}
		for _, n := range merged {
			n.red = true
			rebuilt.insertNode(n)
			rebuilt.size++
		}
		rebuilt.root.red = false
		*t = rebuilt
		return 0
	}
	rebuilt := Tree{accum: t.accum}
	for _, n := range merged {
		n.red = true
		rebuilt.insertNode(n)
		rebuilt.size++
	}
	rebuilt.root.red = false
	*t = rebuilt
	return eliminated
}

// tryMerge absorbs b into a when a and b share attributes and concatenate
// into a single progression (a strictly before b in Low order).
func tryMerge(a, b *Run) bool {
	if a.PC != b.PC || a.Write != b.Write || a.Atomic != b.Atomic ||
		a.Width != b.Width || a.Mutexes != b.Mutexes {
		return false
	}
	switch {
	case a.Stride == 0 && b.Stride == 0:
		if b.Low == a.Low {
			a.Count += b.Count
			return true
		}
		if b.Low > a.Low {
			a.Stride = b.Low - a.Low
			a.High = b.Low
			a.Count += b.Count
			return true
		}
		return false
	case a.Stride == 0 && b.Stride != 0:
		if b.Low > a.Low && b.Low-a.Low == b.Stride {
			a.Stride = b.Stride
			a.High = b.High
			a.Count += b.Count
			return true
		}
		return false
	case a.Stride != 0 && b.Stride == 0:
		if b.Low == a.High+a.Stride {
			a.High = b.Low
			a.Count += b.Count
			return true
		}
		return false
	default:
		if a.Stride == b.Stride && b.Low == a.High+a.Stride {
			a.High = b.High
			a.Count += b.Count
			return true
		}
		return false
	}
}
