package itree

import (
	"sync"
	"unsafe"

	"sword/internal/trace"
)

// slabPool recycles pre-sort slabs between builders: a unit's slab is
// pure scratch once Finish copies the survivors out, and the next unit —
// often the same shape — starts from a grown slab instead of re-walking
// the growth ladder. Entries are *[]Run to keep Put/Get allocation-free.
var slabPool sync.Pool

// keyPool recycles the sort-key scratch Finish and sortRunKeys use.
var keyPool sync.Pool

func getSlab() []Run {
	if p, _ := slabPool.Get().(*[]Run); p != nil {
		return (*p)[:0]
	}
	return make([]Run, 0, 256)
}

func putSlab(s []Run) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	slabPool.Put(&s)
}

func getKeys(n int) []sortKey {
	if p, _ := keyPool.Get().(*[]sortKey); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]sortKey, n)
}

func putKeys(k []sortKey) {
	if cap(k) == 0 {
		return
	}
	k = k[:0]
	keyPool.Put(&k)
}

// Builder constructs the Low-sorted summarized run the sweep engine
// consumes without going through a red-black tree. Accesses append to a
// contiguous slab of pointer-free Run payloads, coalescing into recently
// touched runs exactly as Tree.Insert does; Finish then sorts the slab
// once and applies the same neighbor-merge pass Compact performs. The
// resulting node sequence is identical, node for node, to flattening a
// Tree built from the same access stream and compacted — but with O(1)
// work per access, no rebalancing, and no per-node allocation: the slab
// carries no pointers, so the garbage collector never scans it and
// appends take no write barriers.
//
// The zero value is ready for use. Not safe for concurrent use; like the
// tree, each unit is built on a single worker.
type Builder struct {
	runs []Run
	// flat is the sorted (and merged) run Finish produced, nil until then.
	// The pre-sort slab is released when Finish returns.
	flat []Run
	// recent indexes the most recently created runs in the slab,
	// most-recent first — the same 4-entry coalescing cache Tree.Insert
	// keeps, stored as indices because slab growth moves the backing
	// array.
	recent  [4]int32
	nrecent int
	accum   uint64
}

// Summary captures unit-level facts the pair pre-filter consumes. All
// fields aggregate over the finished run; for an empty unit Low > High
// and the other fields hold their vacuous values (AllAtomic true,
// CommonMutexes all ones), so callers must test Len first.
type Summary struct {
	Low           uint64         // lowest address touched
	High          uint64         // highest byte touched (bounding box right edge)
	AnyWrite      bool           // at least one node writes
	AllAtomic     bool           // every node is atomic
	CommonMutexes trace.MutexSet // mutexes held across every node
	Bytes         uint64         // peak slab capacity in bytes, for memory accounting
}

// Len returns the current number of summarized nodes (after Finish, the
// post-merge count).
func (b *Builder) Len() int {
	if b.flat != nil {
		return len(b.flat)
	}
	return len(b.runs)
}

// Accesses returns the total number of accesses inserted (the paper's N,
// versus Len which is M).
func (b *Builder) Accesses() uint64 { return b.accum }

// Insert adds an access, coalescing it into a recently created run when
// it continues that run's arithmetic progression with identical
// attributes. The coalescing rules mirror Tree.Insert case for case so
// the pre-sort slab holds the same node multiset a tree build produces.
func (b *Builder) Insert(a Access) {
	b.accum++
	for _, idx := range b.recent[:b.nrecent] {
		r := &b.runs[idx]
		if r.PC != a.PC || r.Write != a.Write || r.Atomic != a.Atomic ||
			r.Width != a.Width || r.Mutexes != a.Mutexes {
			continue
		}
		switch {
		case a.Addr == r.High:
			r.Count++
			return
		case r.Stride == 0 && a.Addr > r.Low:
			r.Stride = a.Addr - r.Low
			r.High = a.Addr
			r.Count++
			return
		case r.Stride != 0 && a.Addr == r.High+r.Stride:
			r.High = a.Addr
			r.Count++
			return
		}
	}
	if len(b.runs) == cap(b.runs) {
		b.grow()
	}
	b.runs = append(b.runs, Run{Low: a.Addr, High: a.Addr, Width: a.Width,
		Write: a.Write, Atomic: a.Atomic, PC: a.PC, Mutexes: a.Mutexes, Count: 1})
	if b.nrecent < len(b.recent) {
		b.nrecent++
	}
	copy(b.recent[1:b.nrecent], b.recent[:b.nrecent-1])
	b.recent[0] = int32(len(b.runs) - 1)
}

// grow resizes the slab ahead of append's default policy: pointer-free
// scratch that Finish releases can afford to overshoot, and quadrupling
// while small keeps the total bytes moved across regrowths near n instead
// of append's 2n — slab regrowth was the analyzer front-end's largest
// remaining profile entry under doubling.
func (b *Builder) grow() {
	if cap(b.runs) == 0 {
		b.runs = getSlab()
		return
	}
	newCap := 4 * cap(b.runs)
	if cap(b.runs) >= 1<<16 {
		newCap = 2 * cap(b.runs)
	}
	grown := make([]Run, len(b.runs), newCap)
	copy(grown, b.runs)
	putSlab(b.runs) // outgrown slab becomes scratch for smaller units
	b.runs = grown
}

// sortKey pairs a run's Low with its slab index so the sort touches a
// packed 16-byte array instead of chasing indices into 64-byte runs.
type sortKey struct {
	low uint64
	idx int32
}

// sortRunKeys orders keys by low ascending, preserving the original
// (insertion) order among equal lows — the same order a ties-to-right BST
// yields. It is a stable LSD radix sort on low-minLow, one byte per pass,
// skipping passes no key needs: address ranges within a unit are narrow,
// so two or three counting passes replace an O(n log n) comparison sort
// whose per-comparison closure calls dominated analyzer profiles.
func sortRunKeys(keys []sortKey) {
	minLow, maxLow := keys[0].low, keys[0].low
	for _, k := range keys[1:] {
		minLow = min(minLow, k.low)
		maxLow = max(maxLow, k.low)
	}
	span := maxLow - minLow
	if span == 0 {
		return
	}
	tmp := getKeys(len(keys))
	defer putKeys(tmp)
	passes := 0
	for shift := uint(0); span>>shift != 0; shift += 8 {
		var count [257]int
		for _, k := range keys {
			count[int(byte((k.low-minLow)>>shift))+1]++
		}
		for i := 1; i < len(count); i++ {
			count[i] += count[i-1]
		}
		for _, k := range keys {
			c := byte((k.low - minLow) >> shift)
			tmp[count[c]] = k
			count[c]++
		}
		keys, tmp = tmp, keys
		passes++
	}
	// After an odd number of ping-pong swaps the sorted result sits in the
	// scratch array; copy it back into the caller's backing array (tmp now
	// aliases it).
	if passes%2 == 1 {
		copy(tmp, keys)
	}
}

// Finish sorts the slab into ascending Low order (equal-Low runs keep
// insertion order — the same order a ties-to-right BST yields) and, when
// compact is true, merges mergeable neighbors in one linear pass using
// the same rules as Tree.Compact. It returns the flattened run as a
// pointer-free Run slice the sweep engine indexes directly, and releases
// the pre-sort slab. The Builder must not be Inserted into afterwards
// until Reset.
func (b *Builder) Finish(compact bool) ([]Run, Summary) {
	keys := getKeys(len(b.runs))
	sorted := true
	for i := range b.runs {
		keys[i] = sortKey{low: b.runs[i].Low, idx: int32(i)}
		sorted = sorted && (i == 0 || keys[i-1].low <= keys[i].low)
	}
	if !sorted {
		sortRunKeys(keys)
	}
	flat := make([]Run, 0, len(b.runs))
	for _, k := range keys {
		if compact && len(flat) > 0 && tryMerge(&flat[len(flat)-1], &b.runs[k.idx]) {
			continue
		}
		flat = append(flat, b.runs[k.idx])
	}
	sum := Summary{
		AllAtomic:     true,
		CommonMutexes: ^trace.MutexSet(0),
		Bytes:         uint64(cap(b.runs)) * uint64(unsafe.Sizeof(Run{})),
	}
	if len(flat) == 0 {
		sum.Low, sum.High = 1, 0
	} else {
		sum.Low = flat[0].Low
	}
	for i := range flat {
		n := &flat[i]
		if e := n.lastByte(); e > sum.High || i == 0 {
			sum.High = e
		}
		sum.AnyWrite = sum.AnyWrite || n.Write
		sum.AllAtomic = sum.AllAtomic && n.Atomic
		sum.CommonMutexes &= n.Mutexes
	}
	putKeys(keys)
	putSlab(b.runs) // the sorted run supersedes the slab
	b.runs = nil
	b.flat = flat
	return flat, sum
}

// Reset drops the slab and returns the Builder to its zero state,
// releasing the node memory for the garbage collector (resident-cache
// eviction relies on this).
func (b *Builder) Reset() { *b = Builder{} }
