package itree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sword/internal/trace"
)

func insertSeq(t *Tree, base, stride, n uint64, width uint64, write bool, pc uint64) {
	for i := uint64(0); i < n; i++ {
		t.Insert(Access{Addr: base + i*stride, Width: width, Write: write, PC: pc})
	}
}

func TestCoalescingSweep(t *testing.T) {
	var tr Tree
	insertSeq(&tr, 0x1000, 8, 1000, 8, true, 1)
	if tr.Len() != 1 {
		t.Fatalf("ascending sweep produced %d nodes, want 1\n%s", tr.Len(), tr.String())
	}
	if tr.Accesses() != 1000 {
		t.Fatalf("Accesses = %d", tr.Accesses())
	}
	var n *Node
	tr.Visit(func(m *Node) bool { n = m; return false })
	if n.Low != 0x1000 || n.High != 0x1000+999*8 || n.Stride != 8 || n.Count != 1000 {
		t.Fatalf("node %s count=%d", n, n.Count)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingBreaksOnAttrChange(t *testing.T) {
	var tr Tree
	tr.Insert(Access{Addr: 0, Width: 8, Write: true, PC: 1})
	tr.Insert(Access{Addr: 8, Width: 8, Write: true, PC: 1})
	tr.Insert(Access{Addr: 16, Width: 8, Write: false, PC: 1}) // read breaks run
	tr.Insert(Access{Addr: 24, Width: 8, Write: true, PC: 2})  // pc breaks run
	tr.Insert(Access{Addr: 32, Width: 4, Write: true, PC: 2})  // width breaks run
	tr.Insert(Access{Addr: 40, Width: 4, Write: true, PC: 2, Mutexes: trace.MutexSet(1)})
	tr.Insert(Access{Addr: 44, Width: 4, Write: true, PC: 2, Atomic: true})
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6\n%s", tr.Len(), tr.String())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingSamePosition(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		tr.Insert(Access{Addr: 0x2000, Width: 8, PC: 3})
	}
	if tr.Len() != 1 {
		t.Fatalf("repeated same-position access produced %d nodes", tr.Len())
	}
	var n *Node
	tr.Visit(func(m *Node) bool { n = m; return false })
	if n.Count != 100 || n.Stride != 0 || n.Low != n.High {
		t.Fatalf("node %s count=%d", n, n.Count)
	}
}

func TestCoalescingStrideMismatch(t *testing.T) {
	var tr Tree
	tr.Insert(Access{Addr: 0, Width: 8, PC: 1})
	tr.Insert(Access{Addr: 8, Width: 8, PC: 1})
	tr.Insert(Access{Addr: 24, Width: 8, PC: 1}) // gap 16 != stride 8: new node
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2\n%s", tr.Len(), tr.String())
	}
}

func TestDescendingSweepStaysCorrect(t *testing.T) {
	var tr Tree
	for i := 99; i >= 0; i-- {
		tr.Insert(Access{Addr: uint64(i) * 8, Width: 8, PC: 1})
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// No forward coalescing possible, but every access must be represented.
	total := uint64(0)
	tr.Visit(func(n *Node) bool { total += n.Count; return true })
	if total != 100 {
		t.Fatalf("represented %d accesses, want 100", total)
	}
}

func TestVisitOverlaps(t *testing.T) {
	var tr Tree
	// Three separate runs: [0,792], [10000,10792], [20000,20792].
	insertSeq(&tr, 0, 8, 100, 8, false, 1)
	insertSeq(&tr, 10000, 8, 100, 8, true, 2)
	insertSeq(&tr, 20000, 8, 100, 8, false, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d\n%s", tr.Len(), tr.String())
	}
	var hits []uint64
	tr.VisitOverlaps(10100, 20100, func(n *Node) bool {
		hits = append(hits, n.PC)
		return true
	})
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 3 {
		t.Fatalf("overlap pcs = %v, want [2 3]", hits)
	}
	hits = nil
	tr.VisitOverlaps(900, 9000, func(n *Node) bool {
		hits = append(hits, n.PC)
		return true
	})
	if len(hits) != 0 {
		t.Fatalf("gap query hit %v", hits)
	}
	// Early stop.
	calls := 0
	tr.VisitOverlaps(0, 1<<40, func(n *Node) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestOverlapBoundary(t *testing.T) {
	var tr Tree
	tr.Insert(Access{Addr: 100, Width: 8, PC: 1}) // bytes [100,107]
	for _, tc := range []struct {
		lo, hi uint64
		want   int
	}{
		{0, 99, 0}, {0, 100, 1}, {107, 200, 1}, {108, 200, 0}, {103, 103, 1},
	} {
		got := 0
		tr.VisitOverlaps(tc.lo, tc.hi, func(*Node) bool { got++; return true })
		if got != tc.want {
			t.Errorf("VisitOverlaps(%d,%d) = %d nodes, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestProgression(t *testing.T) {
	var tr Tree
	insertSeq(&tr, 10, 8, 6, 4, true, 1)
	var n *Node
	tr.Visit(func(m *Node) bool { n = m; return false })
	p := n.Progression()
	if p.Base != 10 || p.Stride != 8 || p.Count != 5 || p.Width != 4 {
		t.Fatalf("Progression = %+v", p)
	}
	if !p.Contains(10) || !p.Contains(50) || p.Contains(14) {
		t.Fatal("progression membership wrong")
	}
}

// TestIntervalTreeExample reproduces the paper's Figure 5 scenario: the
// loop a[i] = a[i-1] run by two threads splits into per-thread read and
// write intervals whose read/write ranges overlap at the chunk boundary.
func TestIntervalTreeExample(t *testing.T) {
	const elem = 4 // int32 array a[1000]
	base := uint64(0x10000)
	addr := func(i int) uint64 { return base + uint64(i)*elem }
	var t0, t1 Tree
	// Thread 0: iterations 1..499 — writes a[1..499], reads a[0..498].
	for i := 1; i < 500; i++ {
		t0.Insert(Access{Addr: addr(i - 1), Width: elem, PC: 10})
		t0.Insert(Access{Addr: addr(i), Width: elem, Write: true, PC: 11})
	}
	// Thread 1: iterations 500..999.
	for i := 500; i < 1000; i++ {
		t1.Insert(Access{Addr: addr(i - 1), Width: elem, PC: 10})
		t1.Insert(Access{Addr: addr(i), Width: elem, Write: true, PC: 11})
	}
	// Interleaved R/W per iteration defeats single-node coalescing, but
	// trees must stay far smaller than 2×500 accesses... they alternate
	// between two growing runs, so expect exactly 2 nodes once warm.
	if t0.Len() > 500 || t1.Len() > 500 {
		t.Fatalf("trees did not summarize: %d, %d nodes", t0.Len(), t1.Len())
	}
	if err := t0.Check(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Check(); err != nil {
		t.Fatal(err)
	}
	// The cross-thread conflict: T1 reads a[499] which T0 writes.
	conflict := false
	t0.Visit(func(w *Node) bool {
		if !w.Write {
			return true
		}
		t1.VisitOverlaps(w.Low, w.lastByte(), func(r *Node) bool {
			conflict = true
			return false
		})
		return !conflict
	})
	if !conflict {
		t.Fatal("boundary conflict between thread trees not found")
	}
}

func TestRandomizedInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var tr Tree
	for i := 0; i < 20000; i++ {
		tr.Insert(Access{
			Addr:  uint64(r.Intn(1 << 20)),
			Width: 1 << r.Intn(4),
			Write: r.Intn(2) == 0,
			PC:    uint64(r.Intn(32)),
		})
		if i%997 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Balance: height must be O(log n). 2·log2(n+1) is the RB bound.
	if h := tr.Height(); h > 2*21 {
		t.Fatalf("height %d too large for %d nodes", h, tr.Len())
	}
}

// TestQuickOverlapMatchesLinearScan cross-checks VisitOverlaps against a
// full traversal filter.
func TestQuickOverlapMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Tree
		for i := 0; i < 300; i++ {
			tr.Insert(Access{
				Addr:  uint64(r.Intn(4096)),
				Width: 1 << r.Intn(4),
				PC:    uint64(r.Intn(8)),
				Write: r.Intn(2) == 0,
			})
		}
		if err := tr.Check(); err != nil {
			t.Log(err)
			return false
		}
		lo := uint64(r.Intn(4096))
		hi := lo + uint64(r.Intn(512))
		want := map[*Node]bool{}
		tr.Visit(func(n *Node) bool {
			if n.Low <= hi && n.lastByte() >= lo {
				want[n] = true
			}
			return true
		})
		got := map[*Node]bool{}
		tr.VisitOverlaps(lo, hi, func(n *Node) bool {
			got[n] = true
			return true
		})
		if len(got) != len(want) {
			t.Logf("seed %d: got %d overlaps, want %d", seed, len(got), len(want))
			return false
		}
		for n := range want {
			if !got[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAccessesConserved: the sum of node counts always equals the
// number of inserted accesses.
func TestQuickAccessesConserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Tree
		n := 100 + r.Intn(400)
		for i := 0; i < n; i++ {
			tr.Insert(Access{Addr: uint64(r.Intn(256)) * 8, Width: 8, PC: uint64(r.Intn(4))})
		}
		total := uint64(0)
		tr.Visit(func(m *Node) bool { total += m.Count; return true })
		return total == uint64(n) && tr.Accesses() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree not empty")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	called := false
	tr.VisitOverlaps(0, ^uint64(0), func(*Node) bool { called = true; return true })
	if called {
		t.Fatal("VisitOverlaps on empty tree called f")
	}
}

func BenchmarkInsertSweep(b *testing.B) {
	b.ReportAllocs()
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(Access{Addr: uint64(i) * 8, Width: 8, PC: 1})
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(Access{Addr: uint64(r.Intn(1 << 24)), Width: 8, PC: uint64(r.Intn(64))})
	}
}

func BenchmarkVisitOverlaps(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	var tr Tree
	for i := 0; i < 100000; i++ {
		tr.Insert(Access{Addr: uint64(r.Intn(1 << 24)), Width: 8, PC: uint64(r.Intn(64))})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo := uint64(r.Intn(1 << 24))
		tr.VisitOverlaps(lo, lo+4096, func(*Node) bool { return true })
	}
}
