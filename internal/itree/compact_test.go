package itree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// collect returns all intervals in order.
func collect(t *Tree) []Node {
	var out []Node
	t.Visit(func(n *Node) bool {
		c := *n
		c.left, c.right, c.parent = nil, nil, nil
		out = append(out, c)
		return true
	})
	return out
}

// covered expands a tree to the multiset of (addr, write, pc) positions.
func covered(t *Tree) map[[3]uint64]uint64 {
	out := make(map[[3]uint64]uint64)
	t.Visit(func(n *Node) bool {
		w := uint64(0)
		if n.Write {
			w = 1
		}
		stride := n.Stride
		if stride == 0 {
			stride = 1
		}
		for pos := n.Low; ; pos += stride {
			out[[3]uint64{pos, w, n.PC}]++
			if pos >= n.High {
				break
			}
		}
		return true
	})
	return out
}

func TestCompactDescendingSweep(t *testing.T) {
	var tr Tree
	for i := 99; i >= 0; i-- {
		tr.Insert(Access{Addr: uint64(i) * 8, Width: 8, PC: 1})
	}
	if tr.Len() != 100 {
		t.Fatalf("descending sweep pre-compact: %d nodes", tr.Len())
	}
	before := covered(&tr)
	eliminated := tr.Compact()
	if eliminated != 99 || tr.Len() != 1 {
		t.Fatalf("Compact eliminated %d, Len=%d, want 99/1\n%s", eliminated, tr.Len(), tr.String())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	after := covered(&tr)
	if len(before) != len(after) {
		t.Fatalf("coverage changed: %d vs %d positions", len(before), len(after))
	}
	for k := range before {
		if _, ok := after[k]; !ok {
			t.Fatalf("position %v lost", k)
		}
	}
}

func TestCompactKeepsDistinctAttrsApart(t *testing.T) {
	var tr Tree
	tr.Insert(Access{Addr: 0, Width: 8, Write: true, PC: 1})
	tr.Insert(Access{Addr: 16, Width: 8, Write: false, PC: 1}) // direction differs
	tr.Insert(Access{Addr: 32, Width: 8, Write: true, PC: 2})  // pc differs
	tr.Compact()
	if tr.Len() != 3 {
		t.Fatalf("merged incompatible nodes: %s", tr.String())
	}
}

func TestCompactJoinsProgressionPieces(t *testing.T) {
	var tr Tree
	// Two runs split artificially (e.g. across fragments): 0..40 and 48..88.
	for i := 0; i <= 5; i++ {
		tr.Insert(Access{Addr: uint64(i) * 8, Width: 8, PC: 9})
	}
	// Evict the run from the recent-node cache with four other streams.
	for k := uint64(0); k < 4; k++ {
		tr.Insert(Access{Addr: 1<<20 + k*256, Width: 8, PC: 100 + k})
	}
	for i := 6; i <= 11; i++ {
		tr.Insert(Access{Addr: uint64(i) * 8, Width: 8, PC: 9})
	}
	if tr.Len() != 6 {
		t.Fatalf("setup: %d nodes\n%s", tr.Len(), tr.String())
	}
	tr.Compact()
	if tr.Len() != 5 {
		t.Fatalf("pieces not joined: %s", tr.String())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactNoOpStaysValid(t *testing.T) {
	var tr Tree
	tr.Insert(Access{Addr: 0, Width: 8, PC: 1})
	tr.Insert(Access{Addr: 1000, Width: 4, PC: 2, Write: true})
	if got := tr.Compact(); got != 0 {
		t.Fatalf("eliminated %d from unmergeable tree", got)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The tree must remain usable for inserts and queries after Compact.
	tr.Insert(Access{Addr: 500, Width: 8, PC: 3})
	hits := 0
	tr.VisitOverlaps(0, 2000, func(*Node) bool { hits++; return true })
	if hits != 3 {
		t.Fatalf("post-compact query found %d nodes", hits)
	}
}

func TestCompactEmptyAndSingle(t *testing.T) {
	var tr Tree
	if tr.Compact() != 0 {
		t.Fatal("empty tree compacted")
	}
	tr.Insert(Access{Addr: 8, Width: 8, PC: 1})
	if tr.Compact() != 0 || tr.Len() != 1 {
		t.Fatal("single-node tree changed")
	}
}

// TestQuickCompactPreservesCoverage: compaction never changes the set of
// (position, direction, pc) tuples a tree represents, and the result is a
// valid, no-larger tree.
func TestQuickCompactPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Tree
		n := 50 + r.Intn(200)
		for i := 0; i < n; i++ {
			tr.Insert(Access{
				Addr:  uint64(r.Intn(64)) * 8,
				Width: 8,
				Write: r.Intn(2) == 0,
				PC:    uint64(r.Intn(3)),
			})
		}
		before := covered(&tr)
		sizeBefore := tr.Len()
		accBefore := tr.Accesses()
		tr.Compact()
		if err := tr.Check(); err != nil {
			t.Log(err)
			return false
		}
		if tr.Len() > sizeBefore || tr.Accesses() != accBefore {
			return false
		}
		after := covered(&tr)
		if len(after) != len(before) {
			return false
		}
		for k := range before {
			if _, ok := after[k]; !ok {
				return false
			}
		}
		// Access counts are conserved.
		total := uint64(0)
		tr.Visit(func(n *Node) bool { total += n.Count; return true })
		return total == accBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompactFragmented(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var tr Tree
		for j := 4095; j >= 0; j-- {
			tr.Insert(Access{Addr: uint64(j) * 8, Width: 8, PC: 1})
		}
		b.StartTimer()
		tr.Compact()
	}
}
