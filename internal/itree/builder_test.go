package itree

import (
	"fmt"
	"math/rand"
	"testing"

	"sword/internal/trace"
)

// payload renders the comparable payload of a run, including Count —
// stricter than String, which omits it.
func payload(r *Run) string {
	return fmt.Sprintf("%s x%d m=%x", r, r.Count, uint64(r.Mutexes))
}

// randomStream produces an access stream mixing the patterns the analyzer
// sees: ascending sweeps, descending sweeps, repeated same-address
// accesses, interleaved streams with distinct attributes, and pure noise.
func randomStream(rng *rand.Rand, n int) []Access {
	var out []Access
	mkMutex := func() trace.MutexSet {
		var m trace.MutexSet
		for _, id := range []uint64{1, 5, 9} {
			if rng.Intn(4) == 0 {
				m = m.With(id)
			}
		}
		return m
	}
	for len(out) < n {
		pc := uint64(rng.Intn(6))
		width := uint64(1 << rng.Intn(4))
		write := rng.Intn(2) == 0
		atomic := rng.Intn(8) == 0
		mu := mkMutex()
		base := uint64(rng.Intn(4096))
		stride := uint64(rng.Intn(5)) // 0 stresses the repeat case
		count := 1 + rng.Intn(12)
		switch rng.Intn(4) {
		case 0: // ascending sweep
			for i := 0; i < count; i++ {
				out = append(out, Access{Addr: base + uint64(i)*stride,
					Width: width, Write: write, Atomic: atomic, PC: pc, Mutexes: mu})
			}
		case 1: // descending sweep — insert-time coalescing misses these
			for i := count - 1; i >= 0; i-- {
				out = append(out, Access{Addr: base + uint64(i)*stride,
					Width: width, Write: write, Atomic: atomic, PC: pc, Mutexes: mu})
			}
		case 2: // two interleaved streams (read+write of one array)
			for i := 0; i < count; i++ {
				a := Access{Addr: base + uint64(i)*stride, Width: width,
					Write: false, Atomic: atomic, PC: pc, Mutexes: mu}
				b := a
				b.Write = true
				b.PC = pc + 100
				out = append(out, a, b)
			}
		default: // noise
			out = append(out, Access{Addr: base, Width: width, Write: write,
				Atomic: atomic, PC: pc, Mutexes: mu})
		}
	}
	return out[:n]
}

// TestBuilderMatchesTree asserts the sort-based builder emits exactly the
// run that building a red-black tree and flattening it produces, with and
// without the Compact pass, over randomized access streams.
func TestBuilderMatchesTree(t *testing.T) {
	for _, compact := range []bool{true, false} {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			stream := randomStream(rng, 50+rng.Intn(800))

			var tree Tree
			var b Builder
			for _, a := range stream {
				tree.Insert(a)
				b.Insert(a)
			}
			if compact {
				tree.Compact()
			}
			want := tree.Nodes()
			got, _ := b.Finish(compact)

			if len(got) != len(want) {
				t.Fatalf("compact=%v seed=%d: builder %d nodes, tree %d",
					compact, seed, len(got), len(want))
			}
			for i := range want {
				if payload(&got[i]) != payload(&want[i].Run) {
					t.Fatalf("compact=%v seed=%d node %d:\nbuilder %s\ntree    %s",
						compact, seed, i, payload(&got[i]), payload(&want[i].Run))
				}
			}
			if b.Accesses() != tree.Accesses() {
				t.Fatalf("accesses: builder %d tree %d", b.Accesses(), tree.Accesses())
			}
			if b.Len() != tree.Len() {
				t.Fatalf("len: builder %d tree %d", b.Len(), tree.Len())
			}
		}
	}
}

// TestBuilderSummary cross-checks the unit summary against a brute-force
// pass over the finished run.
func TestBuilderSummary(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		var b Builder
		for _, a := range randomStream(rng, 200) {
			b.Insert(a)
		}
		run, sum := b.Finish(true)
		if len(run) == 0 {
			t.Fatal("empty run from non-empty stream")
		}
		wantLow, wantHigh := run[0].Low, uint64(0)
		anyWrite, allAtomic := false, true
		common := ^trace.MutexSet(0)
		for _, n := range run {
			if n.Low < wantLow {
				wantLow = n.Low
			}
			if e := n.LastByte(); e > wantHigh {
				wantHigh = e
			}
			anyWrite = anyWrite || n.Write
			allAtomic = allAtomic && n.Atomic
			common &= n.Mutexes
		}
		if sum.Low != wantLow || sum.High != wantHigh {
			t.Fatalf("bbox [%d,%d] want [%d,%d]", sum.Low, sum.High, wantLow, wantHigh)
		}
		if sum.AnyWrite != anyWrite || sum.AllAtomic != allAtomic || sum.CommonMutexes != common {
			t.Fatalf("summary %+v want write=%v atomic=%v common=%x",
				sum, anyWrite, allAtomic, uint64(common))
		}
		if sum.Bytes == 0 {
			t.Fatal("summary reports zero slab bytes")
		}
	}
}

// TestBuilderEmpty: Finish on an untouched builder yields an empty,
// inverted-bbox summary so the pre-filter can never match it.
func TestBuilderEmpty(t *testing.T) {
	var b Builder
	run, sum := b.Finish(true)
	if len(run) != 0 || b.Len() != 0 || b.Accesses() != 0 {
		t.Fatalf("expected empty run, got %d nodes", len(run))
	}
	if sum.Low <= sum.High {
		t.Fatalf("empty summary bbox [%d,%d] not inverted", sum.Low, sum.High)
	}
}

// TestBuilderReset: a reset builder behaves like a fresh one.
func TestBuilderReset(t *testing.T) {
	var b Builder
	rng := rand.New(rand.NewSource(7))
	for _, a := range randomStream(rng, 100) {
		b.Insert(a)
	}
	b.Finish(true)
	b.Reset()
	if b.Len() != 0 || b.Accesses() != 0 {
		t.Fatal("reset builder not empty")
	}
	b.Insert(Access{Addr: 8, Width: 4, Write: true, PC: 1})
	run, sum := b.Finish(true)
	if len(run) != 1 || sum.Low != 8 || !sum.AnyWrite {
		t.Fatalf("post-reset run wrong: %d nodes, sum %+v", len(run), sum)
	}
}

// BenchmarkRunBuild compares the two unit-construction paths on the
// strided sweep workload that dominates the analyzer front end.
func BenchmarkRunBuild(b *testing.B) {
	const accesses = 1 << 14
	stream := make([]Access, 0, accesses)
	// Four interleaved strided streams, like a stencil loop body.
	for i := 0; i < accesses/4; i++ {
		addr := uint64(i) * 8
		stream = append(stream,
			Access{Addr: addr, Width: 8, PC: 1},
			Access{Addr: addr + 8, Width: 8, PC: 2},
			Access{Addr: addr, Width: 8, Write: true, PC: 3},
			Access{Addr: 1 << 20, Width: 8, PC: 4},
		)
	}
	b.Run("tree", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var t Tree
			for _, a := range stream {
				t.Insert(a)
			}
			t.Compact()
			_ = t.Nodes()
		}
	})
	b.Run("builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var bld Builder
			for _, a := range stream {
				bld.Insert(a)
			}
			bld.Finish(true)
		}
	})
}
