// Package osl implements offset-span labels (Mellor-Crummey, 1991) as used
// by SWORD to decide whether two OpenMP threads are concurrent.
//
// An offset-span label tags a thread's execution point with a sequence of
// [offset, span] pairs describing its lineage through the fork-join
// concurrency structure. The span of a pair is the number of threads
// spawned by the fork the pair originates from; the offset distinguishes
// the pair among siblings of the same parent and advances by the span at
// every barrier (and at every join in the parent's own frame), so that
// offset mod span recovers the thread id and offset / span counts the
// synchronization epochs the thread has crossed within its team.
//
// Two labels are sequential when either (case 1) one is a strict prefix of
// the other, or (case 2) they share a prefix and then diverge at a pair
// with equal span whose offsets are congruent modulo the span (the same
// logical thread separated by barriers or joins). Otherwise the labels are
// concurrent. See Section II of the SWORD paper.
//
// The paper's predicate does not order two *different* threads of a team
// across a barrier (their offsets are not congruent). SWORD compensates by
// pairing same-region barrier intervals through the meta-data barrier ids;
// package core does the same. This package is the faithful label algebra.
package osl

import (
	"fmt"
	"strconv"
	"strings"
)

// Pair is one [offset, span] element of an offset-span label.
type Pair struct {
	Offset uint64
	Span   uint64
}

// Label is an offset-span label: a sequence of pairs from the root of the
// fork tree (first element) down to the thread's current team (last
// element). The zero Label is invalid; use Root to start.
type Label []Pair

// Root returns the label of the initial (master) thread: [0, 1].
func Root() Label { return Label{{Offset: 0, Span: 1}} }

// Clone returns an independent copy of l.
func (l Label) Clone() Label {
	c := make(Label, len(l))
	copy(c, l)
	return c
}

// Depth returns the nesting depth (number of pairs) of the label.
func (l Label) Depth() int { return len(l) }

// ThreadID returns the thread's id within its innermost team
// (offset mod span of the last pair). It returns 0 for an empty label.
func (l Label) ThreadID() uint64 {
	if len(l) == 0 {
		return 0
	}
	p := l[len(l)-1]
	if p.Span == 0 {
		return 0
	}
	return p.Offset % p.Span
}

// Epoch returns the number of synchronization epochs (barriers and sibling
// joins) the thread has crossed in its innermost team
// (offset / span of the last pair).
func (l Label) Epoch() uint64 {
	if len(l) == 0 {
		return 0
	}
	p := l[len(l)-1]
	if p.Span == 0 {
		return 0
	}
	return p.Offset / p.Span
}

// Fork returns the label of child thread tid in a newly forked team of the
// given span. It does not modify l. Fork panics if span is zero or
// tid >= span, mirroring the impossibility of such a fork.
func (l Label) Fork(tid, span uint64) Label {
	if span == 0 {
		panic("osl: fork with zero span")
	}
	if tid >= span {
		panic(fmt.Sprintf("osl: fork tid %d out of range for span %d", tid, span))
	}
	c := make(Label, len(l)+1)
	copy(c, l)
	c[len(l)] = Pair{Offset: tid, Span: span}
	return c
}

// Barrier returns the label after the thread crosses a team barrier:
// the last pair [o, s] becomes [o+s, s]. It does not modify l.
func (l Label) Barrier() Label {
	if len(l) == 0 {
		panic("osl: barrier on empty label")
	}
	c := l.Clone()
	c[len(c)-1].Offset += c[len(c)-1].Span
	return c
}

// Join returns the parent's label after the innermost team joins: the last
// pair is dropped and the new last pair advances by its own span, ordering
// the parent's pre-fork interval before its post-join interval (the
// sequential-composition rule). Joining the root label panics.
func (l Label) Join() Label {
	if len(l) <= 1 {
		panic("osl: join on root label")
	}
	c := l[:len(l)-1].Clone()
	c[len(c)-1].Offset += c[len(c)-1].Span
	return c
}

// Equal reports whether two labels are identical.
func (l Label) Equal(m Label) bool {
	if len(l) != len(m) {
		return false
	}
	for i := range l {
		if l[i] != m[i] {
			return false
		}
	}
	return true
}

// Sequential reports whether the two labels are ordered by the fork-join
// structure, per the paper's two cases:
//
//	case 1: one label is a strict prefix of the other
//	        (ancestor and descendant of a fork);
//	case 2: the labels share a (possibly empty) prefix and diverge at a
//	        pair with equal span and offsets congruent modulo the span
//	        (the same logical thread across barriers/joins).
//
// Equal labels are the same execution point and are reported sequential.
func Sequential(a, b Label) bool {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	if i == n {
		// One is a prefix of the other (or they are equal): case 1.
		return true
	}
	pa, pb := a[i], b[i]
	if pa.Span != pb.Span || pa.Span == 0 {
		return false
	}
	return pa.Offset%pa.Span == pb.Offset%pb.Span
}

// Concurrent reports whether the two labels are concurrent, i.e. not
// ordered by Sequential.
func Concurrent(a, b Label) bool { return !Sequential(a, b) }

// String renders the label in the paper's notation, e.g. "[0,1][1,2][0,2]".
func (l Label) String() string {
	var b strings.Builder
	for _, p := range l {
		b.WriteByte('[')
		b.WriteString(strconv.FormatUint(p.Offset, 10))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(p.Span, 10))
		b.WriteByte(']')
	}
	return b.String()
}

// Parse parses a label in the notation produced by String. It accepts
// optional spaces after commas and between pairs.
func Parse(s string) (Label, error) {
	var l Label
	rest := strings.TrimSpace(s)
	for len(rest) > 0 {
		if rest[0] != '[' {
			return nil, fmt.Errorf("osl: parse %q: expected '[' at %q", s, rest)
		}
		end := strings.IndexByte(rest, ']')
		if end < 0 {
			return nil, fmt.Errorf("osl: parse %q: missing ']'", s)
		}
		body := rest[1:end]
		commaIdx := strings.IndexByte(body, ',')
		if commaIdx < 0 {
			return nil, fmt.Errorf("osl: parse %q: pair %q missing ','", s, body)
		}
		off, err := strconv.ParseUint(strings.TrimSpace(body[:commaIdx]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("osl: parse %q: bad offset: %w", s, err)
		}
		span, err := strconv.ParseUint(strings.TrimSpace(body[commaIdx+1:]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("osl: parse %q: bad span: %w", s, err)
		}
		if span == 0 {
			return nil, fmt.Errorf("osl: parse %q: zero span", s)
		}
		l = append(l, Pair{Offset: off, Span: span})
		rest = strings.TrimSpace(rest[end+1:])
	}
	if len(l) == 0 {
		return nil, fmt.Errorf("osl: parse %q: empty label", s)
	}
	return l, nil
}

// Encode appends a compact binary encoding of the label to dst and returns
// the extended slice. The format is: uvarint count, then uvarint offset and
// uvarint span per pair.
func (l Label) Encode(dst []byte) []byte {
	dst = appendUvarint(dst, uint64(len(l)))
	for _, p := range l {
		dst = appendUvarint(dst, p.Offset)
		dst = appendUvarint(dst, p.Span)
	}
	return dst
}

// Decode decodes a label previously written by Encode, returning the label
// and the number of bytes consumed.
func Decode(src []byte) (Label, int, error) {
	n, k := uvarint(src)
	if k <= 0 {
		return nil, 0, fmt.Errorf("osl: decode: bad count")
	}
	pos := k
	if n > uint64(len(src)) { // cheap sanity bound: each pair needs >= 2 bytes
		return nil, 0, fmt.Errorf("osl: decode: count %d exceeds input", n)
	}
	l := make(Label, 0, n)
	for i := uint64(0); i < n; i++ {
		off, k1 := uvarint(src[pos:])
		if k1 <= 0 {
			return nil, 0, fmt.Errorf("osl: decode: bad offset in pair %d", i)
		}
		pos += k1
		span, k2 := uvarint(src[pos:])
		if k2 <= 0 {
			return nil, 0, fmt.Errorf("osl: decode: bad span in pair %d", i)
		}
		pos += k2
		l = append(l, Pair{Offset: off, Span: span})
	}
	return l, pos, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarint(src []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, b := range src {
		if i == 10 {
			return 0, -1
		}
		if b < 0x80 {
			return v | uint64(b)<<s, i + 1
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}
