package osl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Label {
	t.Helper()
	l, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return l
}

func TestRoot(t *testing.T) {
	r := Root()
	if got, want := r.String(), "[0,1]"; got != want {
		t.Fatalf("Root() = %s, want %s", got, want)
	}
	if r.ThreadID() != 0 || r.Epoch() != 0 || r.Depth() != 1 {
		t.Fatalf("Root properties wrong: %v", r)
	}
}

func TestForkBarrierJoin(t *testing.T) {
	r := Root()
	c0 := r.Fork(0, 2)
	c1 := r.Fork(1, 2)
	if c0.String() != "[0,1][0,2]" || c1.String() != "[0,1][1,2]" {
		t.Fatalf("fork labels: %s, %s", c0, c1)
	}
	if c0.ThreadID() != 0 || c1.ThreadID() != 1 {
		t.Fatalf("thread ids: %d, %d", c0.ThreadID(), c1.ThreadID())
	}
	b := c1.Barrier()
	if b.String() != "[0,1][3,2]" {
		t.Fatalf("barrier label: %s", b)
	}
	if b.ThreadID() != 1 || b.Epoch() != 1 {
		t.Fatalf("post-barrier tid/epoch: %d/%d", b.ThreadID(), b.Epoch())
	}
	j := c0.Join()
	if j.String() != "[1,1]" {
		t.Fatalf("join label: %s", j)
	}
}

func TestForkPanics(t *testing.T) {
	for _, tc := range []struct {
		tid, span uint64
	}{{0, 0}, {2, 2}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fork(%d,%d) did not panic", tc.tid, tc.span)
				}
			}()
			Root().Fork(tc.tid, tc.span)
		}()
	}
}

func TestJoinRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Join on root did not panic")
		}
	}()
	Root().Join()
}

func TestBarrierEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Barrier on empty label did not panic")
		}
	}()
	Label{}.Barrier()
}

// TestFigure2Labels reproduces the label of Thread 3 discussed in Section II
// of the paper: [0,1][0,2][0,2] — thread 0 of an inner team of two, whose
// parent is thread 0 of an outer team of two, under the root master.
func TestFigure2Labels(t *testing.T) {
	outer0 := Root().Fork(0, 2)
	thread3 := outer0.Fork(0, 2)
	if got, want := thread3.String(), "[0,1][0,2][0,2]"; got != want {
		t.Fatalf("thread 3 label = %s, want %s", got, want)
	}
	// Thread 4 of Figure 2: thread 1 of the inner team forked by outer
	// thread 0 — concurrent with thread 3 (race R1 within the same
	// barrier interval of the inner region).
	thread4 := outer0.Fork(1, 2)
	if !Concurrent(thread3, thread4) {
		t.Fatal("sibling inner threads must be concurrent (R1)")
	}
	// Threads of the nested region forked by the *other* outer thread are
	// concurrent with thread 3 even though their barrier intervals differ
	// (races R2, R3 across concurrent parallel regions).
	outer1 := Root().Fork(1, 2)
	other := outer1.Fork(0, 2)
	if !Concurrent(thread3, other) {
		t.Fatal("threads of sibling nested regions must be concurrent (R2/R3)")
	}
}

func TestSequentialCases(t *testing.T) {
	tests := []struct {
		a, b string
		seq  bool
		why  string
	}{
		{"[0,1]", "[0,1]", true, "equal labels"},
		{"[0,1]", "[0,1][0,2]", true, "case 1: prefix (parent before fork vs child)"},
		{"[0,1][1,2]", "[0,1]", true, "case 1 symmetric"},
		{"[0,1][0,2]", "[0,1][1,2]", false, "team siblings are concurrent"},
		{"[0,1][0,2]", "[0,1][2,2]", true, "case 2: same thread across a barrier"},
		{"[0,1][1,2]", "[0,1][3,2]", true, "case 2: same thread across a barrier (tid 1)"},
		{"[0,1][0,2]", "[0,1][3,2]", false, "different threads across a barrier: OSL blind spot (documented)"},
		{"[0,1][0,2][0,2]", "[0,1][1,2][0,2]", false, "nested regions under different outer threads"},
		{"[0,1][0,2][0,2]", "[0,1][0,2][1,2]", false, "inner team siblings"},
		{"[0,1][0,2]", "[0,1][0,2][1,2]", true, "outer thread vs its own nested child (prefix)"},
		{"[1,1]", "[0,1][0,2]", true, "parent after join vs joined child (case 2 at depth 0)"},
		{"[1,1][0,2]", "[0,1][0,2]", true, "second region child vs first region child (sequential composition)"},
		{"[1,1][1,2]", "[0,1][0,2]", true, "cross-thread across sequentially composed regions"},
		{"[0,1][0,3]", "[0,1][0,2]", false, "different spans at divergence"},
		{"[0,1][1,2][2,2]", "[0,1][1,2][0,2]", true, "same inner thread across inner barrier"},
	}
	for _, tc := range tests {
		a, b := mustParse(t, tc.a), mustParse(t, tc.b)
		if got := Sequential(a, b); got != tc.seq {
			t.Errorf("Sequential(%s, %s) = %v, want %v (%s)", tc.a, tc.b, got, tc.seq, tc.why)
		}
		if got := Concurrent(a, b); got == tc.seq {
			t.Errorf("Concurrent(%s, %s) = %v, want %v", tc.a, tc.b, got, !tc.seq)
		}
	}
}

func TestSequentialSymmetric(t *testing.T) {
	labels := []Label{
		Root(),
		Root().Fork(0, 2),
		Root().Fork(1, 2),
		Root().Fork(1, 2).Barrier(),
		Root().Fork(0, 2).Fork(1, 3),
		Root().Fork(0, 2).Join(),
	}
	for _, a := range labels {
		for _, b := range labels {
			if Sequential(a, b) != Sequential(b, a) {
				t.Fatalf("Sequential not symmetric for %s, %s", a, b)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "[0,1", "0,1]", "[a,1]", "[0,b]", "[0,0]", "[0 1]", "x[0,1]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"[0,1]", "[0,1][1,2]", "[0,1][3,2][5,4]", " [0, 1] [1, 2] "} {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		l2, err := Parse(l.String())
		if err != nil || !l.Equal(l2) {
			t.Fatalf("round trip of %q failed: %v, %v", s, l2, err)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	labels := []Label{
		Root(),
		Root().Fork(1, 2).Barrier().Barrier(),
		Root().Fork(1, 4).Fork(3, 8).Barrier(),
	}
	for _, l := range labels {
		buf := l.Encode(nil)
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%s): %v", l, err)
		}
		if n != len(buf) {
			t.Fatalf("Decode(%s) consumed %d of %d bytes", l, n, len(buf))
		}
		if !got.Equal(l) {
			t.Fatalf("Decode(%s) = %s", l, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, src := range [][]byte{
		nil,
		{0xff},             // truncated count varint
		{0x02, 0x01},       // count 2 but only one byte follows
		{0x01, 0x80},       // truncated offset varint
		{0x01, 0x01},       // missing span
		{0xff, 0xff, 0xff}, // huge count
	} {
		if _, _, err := Decode(src); err == nil {
			t.Errorf("Decode(% x) succeeded, want error", src)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	l := Root().Fork(1, 2)
	c := l.Clone()
	c[0].Offset = 99
	if l[0].Offset == 99 {
		t.Fatal("Clone shares backing array")
	}
}

// randomLabel builds a random but structurally valid label.
func randomLabel(r *rand.Rand) Label {
	l := Root()
	depth := 1 + r.Intn(4)
	for i := 0; i < depth; i++ {
		span := uint64(1 + r.Intn(6))
		l = l.Fork(uint64(r.Intn(int(span))), span)
		for b := r.Intn(3); b > 0; b-- {
			l = l.Barrier()
		}
	}
	return l
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLabel(r)
		got, n, err := Decode(l.Encode(nil))
		return err == nil && n == len(l.Encode(nil)) && got.Equal(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixSequential: any label is sequential with every label built
// by extending it with forks (ancestor ordering, case 1).
func TestQuickPrefixSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLabel(r)
		span := uint64(1 + r.Intn(5))
		child := l.Fork(uint64(r.Intn(int(span))), span)
		return Sequential(l, child) && Sequential(child, l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBarrierSameThreadSequential: a thread is always sequential with
// its own future self across barriers (case 2).
func TestQuickBarrierSameThreadSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLabel(r)
		later := l.Barrier()
		for i := r.Intn(4); i > 0; i-- {
			later = later.Barrier()
		}
		return Sequential(l, later)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSiblingsConcurrent: two distinct siblings of the same fork are
// always concurrent.
func TestQuickSiblingsConcurrent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLabel(r)
		span := uint64(2 + r.Intn(5))
		i := uint64(r.Intn(int(span)))
		j := uint64(r.Intn(int(span)))
		if i == j {
			j = (j + 1) % span
		}
		return Concurrent(l.Fork(i, span), l.Fork(j, span))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequential(b *testing.B) {
	a := Root().Fork(0, 24).Fork(3, 8).Barrier().Barrier()
	c := Root().Fork(1, 24).Fork(3, 8).Barrier()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sequential(a, c)
	}
}

func BenchmarkEncode(b *testing.B) {
	l := Root().Fork(0, 24).Fork(3, 8).Barrier().Barrier()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = l.Encode(buf[:0])
	}
}
