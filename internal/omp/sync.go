package omp

import (
	"sync"

	"sword/internal/trace"
)

// Lock is an OpenMP lock (omp_lock_t). Tools observe acquisitions and
// releases through MutexAcquired/MutexReleased callbacks; the lock's id
// feeds held-mutex sets in trace logs.
type Lock struct {
	id uint64
	mu sync.Mutex
}

// NewLock creates a lock with a fresh mutex id. The reproduction bounds
// distinct mutexes per run at trace.MaxMutexes so held sets fit one word;
// ids beyond the bound alias (conservatively hiding some races), which no
// bundled workload approaches.
func (r *Runtime) NewLock() *Lock {
	return &Lock{id: r.mutexSeq.Add(1) - 1}
}

// ID returns the lock's mutex id.
func (l *Lock) ID() uint64 { return l.id }

// Acquire locks l, recording the acquisition for tools and the held set.
func (t *Thread) Acquire(l *Lock) {
	l.mu.Lock()
	t.held = t.held.With(l.id)
	// Dropped accesses rematerialize with an empty mutex set; once a lock
	// is held, dropping must end or the replay would invent races.
	t.certStop()
	t.rt.tools.mutexAcquired(t, l.id)
}

// Release unlocks l.
func (t *Thread) Release(l *Lock) {
	if !t.held.Has(l.id) {
		panic("omp: release of a lock not held")
	}
	t.rt.tools.mutexReleased(t, l.id)
	t.held = t.held.Without(l.id)
	l.mu.Unlock()
}

// WithLock runs f while holding l.
func (t *Thread) WithLock(l *Lock, f func()) {
	t.Acquire(l)
	defer t.Release(l)
	f()
}

// Critical executes f inside the named critical section, creating the
// section's lock on first use. The empty name is the anonymous critical
// section, shared program-wide like OpenMP's unnamed critical.
func (t *Thread) Critical(name string, f func()) {
	l := t.rt.criticalLock(name)
	t.WithLock(l, f)
}

func (r *Runtime) criticalLock(name string) *Lock {
	if v, ok := r.criticals.Load(name); ok {
		return v.(*Lock)
	}
	v, _ := r.criticals.LoadOrStore(name, r.NewLock())
	return v.(*Lock)
}

// atomicStripes serialize simulated atomic read-modify-write operations.
// Striping by address keeps contention realistic without a lock per
// location.
var atomicStripes [64]sync.Mutex

func atomicStripe(addr uint64) *sync.Mutex {
	return &atomicStripes[(addr>>3)%64]
}

// Sequencer forces a specific interleaving across threads for litmus
// tests, such as the two schedules of Figure 1. It is test scaffolding
// only: it produces no tool-visible synchronization, exactly like
// scheduler timing in a real execution, so happens-before tools see the
// interleaving but no extra edges.
type Sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	step int
}

// NewSequencer returns a sequencer at step 0.
func NewSequencer() *Sequencer {
	s := &Sequencer{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Await blocks until the sequencer reaches step.
func (s *Sequencer) Await(step int) {
	s.mu.Lock()
	for s.step < step {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Advance moves to the next step, waking waiters.
func (s *Sequencer) Advance() {
	s.mu.Lock()
	s.step++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Do waits for step, runs f, and advances — one numbered slice of a forced
// interleaving.
func (s *Sequencer) Do(step int, f func()) {
	s.Await(step)
	f()
	s.Advance()
}

// MutexCount reports how many distinct mutexes (locks and critical
// sections) the runtime has created.
func (r *Runtime) MutexCount() uint64 { return r.mutexSeq.Load() }

var _ = trace.MaxMutexes // documented bound; see NewLock
