package omp

import (
	"sync"
	"sync/atomic"
)

// OpenMP tasking — the extension the paper relegates to future work
// (§III-C: "we also plan to ... accommodate tasking"). A task is an
// asynchronous size-1 region: the encountering thread continues past the
// spawn, so the task's accesses are concurrent with the spawner's
// continuation until a taskwait (or the next team barrier, where all
// outstanding tasks of the binding region complete, per the OpenMP
// specification).
//
// Completion semantics are taskgroup-like: a task's end waits for its own
// child tasks, and taskwait therefore joins the whole subtree of the
// waited tasks. This is deeper than base OpenMP's taskwait (which joins
// direct children only); the approximation is documented in DESIGN.md and
// errs toward missing the exotic unwaited-grandchild races rather than
// reporting false ones.

// taskHandle tracks one outstanding child task of a thread.
type taskHandle struct {
	id   uint64
	done chan struct{}
}

// taskState is the per-team task bookkeeping.
type taskState struct {
	wg sync.WaitGroup // all tasks bound to the region, incl. descendants

	mu      sync.Mutex
	episode []uint64 // tasks completed since the last barrier episode
}

// Task spawns body as an OpenMP task. Inside a parallel region the task
// runs asynchronously on its own thread slot; the spawner continues
// immediately. Outside any parallel region the task is undeferred and runs
// inline, as the specification prescribes when there is no team.
func (t *Thread) Task(body func(*Thread)) {
	if t.team.info.Level == 0 {
		// Undeferred: a synchronous nested size-1 region.
		t.Parallel(1, body)
		return
	}
	info := RegionInfo{
		ID:        t.rt.regionSeq.Add(1) - 1,
		ParentID:  t.team.info.ID,
		Size:      1,
		Level:     t.team.info.Level + 1,
		ParentTID: uint64(t.id),
		ParentBID: t.bid,
		Seq:       t.seq,
		Async:     true,
	}
	t.seq++
	t.certStop() // a task spawn splits the interval; stop dropping
	t.rt.tools.taskSpawn(t, info)

	tm := &team{
		info:       info,
		barrier:    newTeamBarrier(1),
		tasks:      &taskState{},
		singleDone: make(map[uint64]bool),
		sectionIdx: make(map[uint64]*atomic.Int64),
		forChunk:   make(map[uint64]*atomic.Int64),
		reduceBuf:  make([]float64, 1),
		reduceI64:  make([]int64, 1),
	}
	binding := t.team.tasks
	binding.wg.Add(1)
	h := taskHandle{id: info.ID, done: make(chan struct{})}
	t.pendingTasks = append(t.pendingTasks, h)

	parentLabel := t.label
	go func() {
		worker := &Thread{
			rt:     t.rt,
			team:   tm,
			id:     0,
			slot:   t.rt.slots.acquire(),
			label:  parentLabel.Fork(0, 1),
			parent: t,
		}
		defer t.rt.slots.release(worker.slot)
		worker.runMember(body)
		binding.mu.Lock()
		binding.episode = append(binding.episode, info.ID)
		binding.mu.Unlock()
		close(h.done)
		binding.wg.Done()
	}()
}

// TaskWait blocks until every task spawned by this thread (and, per the
// completion semantics above, their descendants) has finished — the
// #pragma omp taskwait construct.
func (t *Thread) TaskWait() {
	if len(t.pendingTasks) == 0 {
		return
	}
	ids := make([]uint64, len(t.pendingTasks))
	for i, h := range t.pendingTasks {
		<-h.done
		ids[i] = h.id
	}
	t.pendingTasks = nil
	t.rt.tools.taskWaited(t, ids)
}

// drainTasksAtBarrier runs inside the barrier's last-arriver action: all
// team members have arrived, so no further spawns can occur; wait for the
// region's outstanding tasks and publish their completion to the tools.
func (t *Thread) drainTasksAtBarrier() {
	ts := t.team.tasks
	ts.wg.Wait()
	ts.mu.Lock()
	episode := ts.episode
	ts.episode = nil
	ts.mu.Unlock()
	if len(episode) > 0 {
		t.rt.tools.barrierTasksDone(t, episode)
	}
}
