// Package omp is the reproduction's OpenMP runtime substrate: fork-join
// parallel regions over goroutines with nested parallelism, barriers,
// worksharing loops, critical sections, locks, atomics, single/master
// constructs and reductions. Analysis tools observe executions through the
// Tool interface (the OMPT substitute) and workload kernels report memory
// accesses through the instrumented load/store helpers, replacing the
// paper's LLVM instrumentation pass.
//
// Tasking is intentionally unsupported, matching the paper's stated
// limitation (§III-C): offset-span labels cannot order tasks.
package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sword/internal/osl"
	"sword/internal/pcreg"
	"sword/internal/trace"
)

// RegionInfo describes one parallel region instance, as surfaced to tools
// and recorded (via the collector) into meta-data files.
type RegionInfo struct {
	ID        uint64 // unique region instance id (the paper's pid)
	ParentID  uint64 // parent region instance id; trace.NoParent at the root
	Size      int    // team size (the offset-span span)
	Level     uint32 // nesting level, 1 for outermost parallel regions
	ParentTID uint64 // thread id of the encountering thread in its region
	ParentBID uint64 // barrier interval of the encountering thread at the fork
	Seq       uint64 // index among regions forked from that same interval
	Async     bool   // an OpenMP task: the encountering thread does not wait
}

// Runtime executes OpenMP-style programs. Create one per analyzed run.
type Runtime struct {
	tools        tools
	hasCertTools bool // any tool implements CertTool (affine.go)
	slots        *slotPool
	regionSeq    atomic.Uint64
	mutexSeq     atomic.Uint64
	criticals    sync.Map // name -> *Lock
	pcs          *pcreg.Table
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithTool attaches an analysis tool; several tools may observe one run.
func WithTool(t Tool) Option {
	return func(r *Runtime) { r.tools = append(r.tools, t) }
}

// WithPCTable overrides the program-counter table (Default otherwise).
func WithPCTable(t *pcreg.Table) Option {
	return func(r *Runtime) { r.pcs = t }
}

// New returns a runtime with the given options.
func New(opts ...Option) *Runtime {
	r := &Runtime{slots: newSlotPool(), pcs: pcreg.Default}
	for _, o := range opts {
		o(r)
	}
	for _, t := range r.tools {
		if _, ok := t.(CertTool); ok {
			r.hasCertTools = true
		}
	}
	return r
}

// PCs returns the runtime's program-counter table.
func (r *Runtime) PCs() *pcreg.Table { return r.pcs }

// MaxSlot returns the highest thread slot ever assigned plus one — the
// number of per-thread logs a collector produced.
func (r *Runtime) MaxSlot() int { return r.slots.maxUsed() }

// Thread is the execution context of one OpenMP thread within a team.
// Exactly one goroutine uses a Thread; it is not safe to share.
type Thread struct {
	rt     *Runtime
	team   *team
	id     int
	slot   int
	label  osl.Label
	bid    uint64
	seq    uint64
	held   trace.MutexSet
	parent *Thread

	// Worksharing state.
	singleSeq  uint64
	sectionSeq uint64
	forSeq     uint64

	// Outstanding child tasks of this thread (spawn order).
	pendingTasks []taskHandle

	// barrierAction is the lazily built, reused last-arriver callback for
	// team barriers (see Thread.barrier).
	barrierAction func()

	// Static-certificate state (affine.go): the active certified loop,
	// the pooled per-thread scratch, and the count of instrumented
	// accesses recorded since the last barrier.
	cert         *certState
	certScratch  *certState
	sinceBarrier uint64
}

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// ID returns the thread's id within its team (0 = master).
func (t *Thread) ID() int { return t.id }

// NumThreads returns the team size.
func (t *Thread) NumThreads() int { return t.team.info.Size }

// Slot returns the thread's global log slot.
func (t *Thread) Slot() int { return t.slot }

// Label returns the thread's current offset-span label. The returned
// slice must not be modified.
func (t *Thread) Label() osl.Label { return t.label }

// BID returns the thread's current barrier interval id within its region.
func (t *Thread) BID() uint64 { return t.bid }

// Seq returns the number of nested regions this thread has forked in its
// current barrier interval.
func (t *Thread) Seq() uint64 { return t.seq }

// Region returns the thread's region descriptor.
func (t *Thread) Region() RegionInfo { return t.team.info }

// Level returns the nesting level (0 for the initial thread).
func (t *Thread) Level() int { return int(t.team.info.Level) }

// Parent returns the thread that forked this thread's team; for the
// initial thread it returns nil.
func (t *Thread) Parent() *Thread { return t.parent }

// Held returns the set of mutexes currently held.
func (t *Thread) Held() trace.MutexSet { return t.held }

// InParallel reports whether the thread is inside a parallel region; the
// initial thread outside any region is not.
func (t *Thread) InParallel() bool { return t.team.info.Level > 0 }

// team is one parallel region instance's thread team.
type team struct {
	info    RegionInfo
	barrier *teamBarrier
	tasks   *taskState

	mu         sync.Mutex
	singleDone map[uint64]bool
	sectionIdx map[uint64]*atomic.Int64
	forChunk   map[uint64]*atomic.Int64
	ordered    map[uint64]*orderedState
	reduceBuf  []float64
	reduceI64  []int64
	curCert    *teamCert // pooled certificate slot (affine.go)
}

// Run executes f on the runtime's initial thread: the sequential context
// that encounters parallel regions. Accesses made at this level are not
// instrumented (sequential code cannot race).
func (r *Runtime) Run(f func(*Thread)) {
	slot := r.slots.acquire()
	initial := &Thread{
		rt:    r,
		slot:  slot,
		label: osl.Root(),
		team: &team{
			info: RegionInfo{
				ID:       r.regionSeq.Add(1) - 1, // id 0: the implicit initial "region"
				ParentID: trace.NoParent,
				Size:     1,
				Level:    0,
			},
			tasks: &taskState{},
		},
	}
	defer r.slots.release(slot)
	f(initial)
}

// Parallel runs body on a fresh team of n threads forked from the initial
// thread, the common entry point for workloads:
// rt.Parallel(8, func(th *omp.Thread) { ... }).
func (r *Runtime) Parallel(n int, body func(*Thread)) {
	r.Run(func(initial *Thread) { initial.Parallel(n, body) })
}

// Parallel forks a nested team of n threads, each running body, and joins
// it. The encountering thread becomes the new team's master (thread 0) and
// an implicit barrier ends the region, per OpenMP semantics.
func (t *Thread) Parallel(n int, body func(*Thread)) {
	if n <= 0 {
		panic(fmt.Sprintf("omp: parallel region of %d threads", n))
	}
	info := RegionInfo{
		ID:        t.rt.regionSeq.Add(1) - 1,
		ParentID:  t.team.info.ID,
		Size:      n,
		Level:     t.team.info.Level + 1,
		ParentTID: uint64(t.id),
		ParentBID: t.bid,
		Seq:       t.seq,
	}
	if t.team.info.Level == 0 {
		info.ParentID = trace.NoParent
	}
	t.seq++
	t.certStop() // a nested fork splits the interval; stop dropping
	t.rt.tools.regionFork(t, info)

	tm := &team{
		info:       info,
		barrier:    newTeamBarrier(n),
		tasks:      &taskState{},
		singleDone: make(map[uint64]bool),
		sectionIdx: make(map[uint64]*atomic.Int64),
		forChunk:   make(map[uint64]*atomic.Int64),
		reduceBuf:  make([]float64, n),
		reduceI64:  make([]int64, n),
	}

	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			worker := &Thread{
				rt:     t.rt,
				team:   tm,
				id:     tid,
				slot:   t.rt.slots.acquire(),
				label:  t.label.Fork(uint64(tid), uint64(n)),
				parent: t,
			}
			defer t.rt.slots.release(worker.slot)
			worker.runMember(body)
		}(i)
	}
	// The encountering thread becomes the master, reusing its slot (the
	// same OS thread keeps writing the same log file, as with a real
	// OpenMP thread pool).
	master := &Thread{
		rt:     t.rt,
		team:   tm,
		id:     0,
		slot:   t.slot,
		label:  t.label.Fork(0, uint64(n)),
		parent: t,
		held:   t.held, // the encountering OS thread keeps its locks
	}
	master.runMember(body)
	wg.Wait()
	t.rt.tools.regionJoin(t, info)
}

func (t *Thread) runMember(body func(*Thread)) {
	t.rt.tools.threadBegin(t)
	t.rt.tools.parallelBegin(t)
	body(t)
	// Implicit barrier at region end.
	t.barrier(true)
	t.rt.tools.parallelEnd(t)
	t.rt.tools.threadEnd(t)
}

// Barrier executes an explicit team barrier.
func (t *Thread) Barrier() { t.barrier(false) }

func (t *Thread) barrier(implicit bool) {
	if !t.held.Empty() {
		panic("omp: barrier inside a critical section or lock")
	}
	t.certStop() // a barrier inside a certified loop body ends the interval
	t.rt.tools.barrierArrive(t, implicit)
	if t.barrierAction == nil {
		// Built once per thread — a fresh closure per call would allocate
		// on every certified loop's join barrier, a path the static filter
		// otherwise keeps allocation-free.
		t.barrierAction = func() {
			// Exactly one thread per episode runs this while the team is
			// parked: clear worksharing bookkeeping and complete the region's
			// outstanding tasks, which the OpenMP specification ties to
			// barriers.
			clear(t.team.singleDone)
			t.drainTasksAtBarrier()
		}
	}
	t.team.barrier.await(t.barrierAction)
	t.bid++
	t.seq = 0
	t.label = t.label.Barrier()
	t.pendingTasks = nil // all complete as of the barrier
	t.sinceBarrier = 0
	t.rt.tools.barrierDepart(t, implicit)
}

// teamBarrier is a generation (sense-counting) barrier.
type teamBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	size  int
	count int
	gen   uint64
}

func newTeamBarrier(n int) *teamBarrier {
	b := &teamBarrier{size: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all team members arrive. The last arriver runs
// lastAction (if non-nil) before waking the others.
func (b *teamBarrier) await(lastAction func()) {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.size {
		if lastAction != nil {
			lastAction()
		}
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// slotPool assigns the smallest free log slot to each live thread,
// approximating an OpenMP implementation's bounded thread pool: the number
// of distinct slots equals the maximum thread concurrency, not the total
// number of goroutines ever created.
type slotPool struct {
	mu   sync.Mutex
	free []int // sorted ascending
	next int
	max  int
}

func newSlotPool() *slotPool { return &slotPool{} }

func (p *slotPool) acquire() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) > 0 {
		s := p.free[0]
		p.free = p.free[1:]
		return s
	}
	s := p.next
	p.next++
	if p.next > p.max {
		p.max = p.next
	}
	return s
}

func (p *slotPool) release(s int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Insert keeping ascending order; pools are small.
	i := 0
	for i < len(p.free) && p.free[i] < s {
		i++
	}
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = s
}

func (p *slotPool) maxUsed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.max
}

// Here interns the caller's source location as a program counter id in the
// default table. Call once per instrumentation site, outside hot loops.
func Here() uint64 { return pcreg.Default.Here(1) }

// Site interns a symbolic site name as a program counter id.
func Site(name string) uint64 { return pcreg.Site(name) }
