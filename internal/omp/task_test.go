package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sword/internal/trace"
)

// taskRecorder captures task lifecycle callbacks.
type taskRecorder struct {
	NopTool
	mu      sync.Mutex
	spawned []RegionInfo
	waited  [][]uint64
	drained [][]uint64
}

func (r *taskRecorder) TaskSpawn(_ *Thread, info RegionInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spawned = append(r.spawned, info)
}

func (r *taskRecorder) TaskWaited(_ *Thread, ids []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.waited = append(r.waited, append([]uint64(nil), ids...))
}

func (r *taskRecorder) BarrierTasksDone(_ *Thread, ids []uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drained = append(r.drained, append([]uint64(nil), ids...))
}

func TestTaskRunsAsynchronously(t *testing.T) {
	rt := New()
	started := make(chan struct{})
	release := make(chan struct{})
	var order []string
	var mu sync.Mutex
	rt.Parallel(1, func(th *Thread) {
		th.Task(func(tt *Thread) {
			close(started)
			<-release
			mu.Lock()
			order = append(order, "task")
			mu.Unlock()
		})
		<-started // the spawner is running concurrently with the task
		mu.Lock()
		order = append(order, "continuation")
		mu.Unlock()
		close(release)
		th.TaskWait()
		mu.Lock()
		order = append(order, "after-wait")
		mu.Unlock()
	})
	if len(order) != 3 || order[0] != "continuation" || order[1] != "task" || order[2] != "after-wait" {
		t.Fatalf("order = %v", order)
	}
}

func TestTaskWaitJoinsAllPending(t *testing.T) {
	rt := New()
	var done atomic.Int32
	rt.Parallel(2, func(th *Thread) {
		for i := 0; i < 5; i++ {
			th.Task(func(tt *Thread) {
				time.Sleep(time.Millisecond)
				done.Add(1)
			})
		}
		th.TaskWait()
		if got := done.Load(); got < 5 {
			// Each thread waits only its own 5, but at least its own must
			// be complete; with 2 threads the total is 5..10 here.
			t.Errorf("taskwait returned with %d tasks done", got)
		}
	})
	if done.Load() != 10 {
		t.Fatalf("region ended with %d tasks done, want 10", done.Load())
	}
}

func TestBarrierCompletesTasks(t *testing.T) {
	rt := New()
	var done atomic.Int32
	rt.Parallel(4, func(th *Thread) {
		th.Task(func(tt *Thread) {
			time.Sleep(time.Millisecond)
			done.Add(1)
		})
		th.Barrier()
		if got := done.Load(); got != 4 {
			t.Errorf("after barrier only %d tasks done", got)
		}
	})
}

func TestRegionEndCompletesTasks(t *testing.T) {
	rt := New()
	var done atomic.Int32
	rt.Parallel(3, func(th *Thread) {
		th.Task(func(tt *Thread) {
			time.Sleep(time.Millisecond)
			done.Add(1)
		})
	})
	if done.Load() != 3 {
		t.Fatalf("region ended with %d tasks done, want 3", done.Load())
	}
}

func TestNestedTasksCompleteWithParent(t *testing.T) {
	rt := New()
	var done atomic.Int32
	rt.Parallel(1, func(th *Thread) {
		th.Task(func(outer *Thread) {
			outer.Task(func(inner *Thread) {
				time.Sleep(time.Millisecond)
				done.Add(1)
			})
			// Taskgroup-like completion: the outer task's end waits for
			// the inner (see task.go's documented semantics).
		})
		th.TaskWait()
		if done.Load() != 1 {
			t.Errorf("taskwait did not cover the nested task")
		}
	})
}

func TestTaskCallbacksAndInfo(t *testing.T) {
	rec := &taskRecorder{}
	rt := New(WithTool(rec))
	rt.Parallel(2, func(th *Thread) {
		th.Task(func(tt *Thread) {
			if !tt.Region().Async {
				t.Error("task thread's region not async")
			}
			if tt.NumThreads() != 1 || tt.ID() != 0 {
				t.Error("task team shape wrong")
			}
		})
		th.TaskWait()
		th.Barrier()
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.spawned) != 2 {
		t.Fatalf("%d spawns recorded", len(rec.spawned))
	}
	for _, info := range rec.spawned {
		if !info.Async || info.Size != 1 || info.Level != 2 {
			t.Fatalf("spawn info %+v", info)
		}
	}
	if len(rec.waited) != 2 {
		t.Fatalf("%d taskwaits recorded", len(rec.waited))
	}
	for _, ids := range rec.waited {
		if len(ids) != 1 {
			t.Fatalf("taskwait ids %v", ids)
		}
	}
}

func TestBarrierTasksDoneEpisodes(t *testing.T) {
	rec := &taskRecorder{}
	rt := New(WithTool(rec))
	rt.Parallel(2, func(th *Thread) {
		th.Task(func(*Thread) {})
		th.Barrier() // episode 1: 2 tasks
		th.Task(func(*Thread) {})
		// implicit region-end barrier: episode 2: 2 tasks
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	total := 0
	for _, ids := range rec.drained {
		total += len(ids)
	}
	if total != 4 {
		t.Fatalf("drained %d task completions, want 4 (%v)", total, rec.drained)
	}
}

func TestTaskOutsideParallelIsUndeferred(t *testing.T) {
	rt := New()
	ran := false
	rt.Run(func(initial *Thread) {
		initial.Task(func(tt *Thread) {
			ran = true
			if tt.Region().Async {
				t.Error("undeferred task flagged async")
			}
		})
		if !ran {
			t.Error("undeferred task did not run inline")
		}
	})
}

func TestTaskWaitWithoutTasksIsNoop(t *testing.T) {
	rec := &taskRecorder{}
	rt := New(WithTool(rec))
	rt.Parallel(1, func(th *Thread) {
		th.TaskWait()
	})
	if len(rec.waited) != 0 {
		t.Fatal("empty taskwait fired a callback")
	}
}

func TestTaskGetsOwnSlot(t *testing.T) {
	rt := New()
	rt.Parallel(1, func(th *Thread) {
		spawnerSlot := th.Slot()
		slotCh := make(chan int, 1)
		th.Task(func(tt *Thread) {
			slotCh <- tt.Slot()
		})
		th.TaskWait()
		if got := <-slotCh; got == spawnerSlot {
			t.Error("task shares the spawner's slot while both are live")
		}
	})
}

func TestTaskSeqAdvances(t *testing.T) {
	rec := &taskRecorder{}
	rt := New(WithTool(rec))
	rt.Parallel(1, func(th *Thread) {
		th.Task(func(*Thread) {})
		th.Task(func(*Thread) {})
		th.TaskWait()
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.spawned) != 2 || rec.spawned[0].Seq == rec.spawned[1].Seq {
		t.Fatalf("task seqs: %+v", rec.spawned)
	}
	if rec.spawned[0].ParentID == trace.NoParent {
		t.Fatal("task parent region missing")
	}
}
