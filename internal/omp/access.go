package omp

import (
	"math"
	"sync/atomic"
	"unsafe"

	"sword/internal/memsim"
)

// Instrumented memory operations. These helpers stand in for the LLVM
// pass: each performs the real data movement on the backing Go slice and
// reports the simulated address, width, direction and program counter to
// every attached tool. Accesses made outside parallel regions are executed
// but not reported, matching the paper's instrumentation which skips
// sequential instructions.
//
// The data plane uses atomic loads and stores on the backing words: the
// *simulated* program still races (that is what the detectors analyze),
// but the Go process itself stays well-defined, so the repository's own
// test suite runs clean under `go test -race`. Workload results remain
// deterministic up to the benign nondeterminism real racy programs have.

func loadWord(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

func storeWord(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}

// observeAccess is the single funnel for recorded (non-dropped)
// instrumented accesses: it maintains the interval's access count, voids
// any armed certificate's clean claim (the access is content the
// certificate does not cover), and fans out to the tools.
func (t *Thread) observeAccess(addr uint64, size uint8, write, atomic bool, pc uint64) {
	t.sinceBarrier++
	t.certRaw()
	t.rt.tools.access(t, addr, size, write, atomic, pc)
}

// Read reports an instrumented load of size bytes at addr from site pc.
// Use it directly for access patterns the typed helpers don't cover.
func (t *Thread) Read(addr uint64, size uint8, pc uint64) {
	if t.InParallel() {
		t.observeAccess(addr, size, false, false, pc)
	}
}

// Write reports an instrumented store.
func (t *Thread) Write(addr uint64, size uint8, pc uint64) {
	if t.InParallel() {
		t.observeAccess(addr, size, true, false, pc)
	}
}

// LoadF64 reads element i of a.
func (t *Thread) LoadF64(a *memsim.F64, i int, pc uint64) float64 {
	t.Read(a.Addr(i), 8, pc)
	return loadWord(&a.Data[i])
}

// StoreF64 writes element i of a.
func (t *Thread) StoreF64(a *memsim.F64, i int, v float64, pc uint64) {
	t.Write(a.Addr(i), 8, pc)
	storeWord(&a.Data[i], v)
}

// LoadI64 reads element i of a.
func (t *Thread) LoadI64(a *memsim.I64, i int, pc uint64) int64 {
	t.Read(a.Addr(i), 8, pc)
	return atomic.LoadInt64(&a.Data[i])
}

// StoreI64 writes element i of a.
func (t *Thread) StoreI64(a *memsim.I64, i int, v int64, pc uint64) {
	t.Write(a.Addr(i), 8, pc)
	atomic.StoreInt64(&a.Data[i], v)
}

// LoadI32 reads element i of a.
func (t *Thread) LoadI32(a *memsim.I32, i int, pc uint64) int32 {
	t.Read(a.Addr(i), 4, pc)
	return atomic.LoadInt32(&a.Data[i])
}

// StoreI32 writes element i of a.
func (t *Thread) StoreI32(a *memsim.I32, i int, v int32, pc uint64) {
	t.Write(a.Addr(i), 4, pc)
	atomic.StoreInt32(&a.Data[i], v)
}

// LoadByte reads element i of a.
func (t *Thread) LoadByte(a *memsim.Bytes, i int, pc uint64) byte {
	t.Read(a.Addr(i), 1, pc)
	mu := atomicStripe(a.Addr(i))
	mu.Lock()
	v := a.Data[i]
	mu.Unlock()
	return v
}

// StoreByte writes element i of a.
func (t *Thread) StoreByte(a *memsim.Bytes, i int, v byte, pc uint64) {
	t.Write(a.Addr(i), 1, pc)
	mu := atomicStripe(a.Addr(i))
	mu.Lock()
	a.Data[i] = v
	mu.Unlock()
}

// AtomicAddF64 atomically adds v to element i of a (#pragma omp atomic).
// Atomic accesses are reported with the atomic flag; two atomics on the
// same location do not race.
func (t *Thread) AtomicAddF64(a *memsim.F64, i int, v float64, pc uint64) float64 {
	mu := atomicStripe(a.Addr(i))
	mu.Lock()
	out := loadWord(&a.Data[i]) + v
	storeWord(&a.Data[i], out)
	mu.Unlock()
	if t.InParallel() {
		t.observeAccess(a.Addr(i), 8, true, true, pc)
	}
	return out
}

// AtomicAddI64 atomically adds v to element i of a.
func (t *Thread) AtomicAddI64(a *memsim.I64, i int, v int64, pc uint64) int64 {
	out := atomic.AddInt64(&a.Data[i], v)
	if t.InParallel() {
		t.observeAccess(a.Addr(i), 8, true, true, pc)
	}
	return out
}

// AtomicLoadF64 atomically reads element i of a (#pragma omp atomic read).
func (t *Thread) AtomicLoadF64(a *memsim.F64, i int, pc uint64) float64 {
	out := loadWord(&a.Data[i])
	if t.InParallel() {
		t.observeAccess(a.Addr(i), 8, false, true, pc)
	}
	return out
}

// AtomicStoreF64 atomically writes element i of a
// (#pragma omp atomic write).
func (t *Thread) AtomicStoreF64(a *memsim.F64, i int, v float64, pc uint64) {
	storeWord(&a.Data[i], v)
	if t.InParallel() {
		t.observeAccess(a.Addr(i), 8, true, true, pc)
	}
}
