package omp

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"sword/internal/memsim"
	"sword/internal/osl"
	"sword/internal/trace"
)

// recordingTool captures callbacks for structural assertions.
type recordingTool struct {
	NopTool
	mu       sync.Mutex
	accesses []recordedAccess
	regions  []RegionInfo
	barriers int
	begins   int
	ends     int
	mutexOps int
}

type recordedAccess struct {
	slot   int
	addr   uint64
	size   uint8
	write  bool
	atomic bool
	pc     uint64
	held   trace.MutexSet
	tid    int
	region uint64
	bid    uint64
	label  string
}

func (r *recordingTool) Access(th *Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accesses = append(r.accesses, recordedAccess{
		slot: th.Slot(), addr: addr, size: size, write: write, atomic: atomic,
		pc: pc, held: th.Held(), tid: th.ID(), region: th.Region().ID,
		bid: th.BID(), label: th.Label().String(),
	})
}

func (r *recordingTool) RegionFork(_ *Thread, info RegionInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regions = append(r.regions, info)
}

func (r *recordingTool) BarrierDepart(*Thread, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.barriers++
}

func (r *recordingTool) ParallelBegin(*Thread) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.begins++
}

func (r *recordingTool) ParallelEnd(*Thread) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ends++
}

func (r *recordingTool) MutexAcquired(*Thread, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mutexOps++
}

func TestParallelBasics(t *testing.T) {
	rt := New()
	var mu sync.Mutex
	ids := map[int]bool{}
	var labels []string
	rt.Parallel(4, func(th *Thread) {
		mu.Lock()
		defer mu.Unlock()
		ids[th.ID()] = true
		labels = append(labels, th.Label().String())
		if th.NumThreads() != 4 {
			t.Errorf("NumThreads = %d", th.NumThreads())
		}
		if th.Level() != 1 {
			t.Errorf("Level = %d", th.Level())
		}
		if !th.InParallel() {
			t.Error("InParallel false inside region")
		}
	})
	if len(ids) != 4 {
		t.Fatalf("saw %d distinct ids, want 4", len(ids))
	}
	sort.Strings(labels)
	want := []string{"[0,1][0,4]", "[0,1][1,4]", "[0,1][2,4]", "[0,1][3,4]"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
}

func TestNestedLabelsFigure2(t *testing.T) {
	rt := New()
	var mu sync.Mutex
	inner := map[string]bool{}
	rt.Parallel(2, func(outer *Thread) {
		outer.Parallel(2, func(in *Thread) {
			mu.Lock()
			inner[in.Label().String()] = true
			mu.Unlock()
		})
	})
	for _, want := range []string{
		"[0,1][0,2][0,2]", "[0,1][0,2][1,2]",
		"[0,1][1,2][0,2]", "[0,1][1,2][1,2]",
	} {
		if !inner[want] {
			t.Errorf("missing inner label %s; got %v", want, inner)
		}
	}
	// Cross-region labels must be concurrent per the OSL predicate.
	a, _ := osl.Parse("[0,1][0,2][0,2]")
	b, _ := osl.Parse("[0,1][1,2][1,2]")
	if !osl.Concurrent(a, b) {
		t.Fatal("nested sibling-region labels not concurrent")
	}
}

func TestBarrierAdvancesState(t *testing.T) {
	rt := New()
	var mu sync.Mutex
	type snap struct{ bid0, bid1 uint64 }
	var snaps []snap
	rt.Parallel(2, func(th *Thread) {
		b0 := th.BID()
		th.Barrier()
		b1 := th.BID()
		if th.Label().Epoch() != 1 {
			t.Errorf("epoch after one barrier = %d", th.Label().Epoch())
		}
		mu.Lock()
		snaps = append(snaps, snap{b0, b1})
		mu.Unlock()
	})
	for _, s := range snaps {
		if s.bid0 != 0 || s.bid1 != 1 {
			t.Fatalf("bids %+v", s)
		}
	}
}

func TestBarrierInCriticalPanics(t *testing.T) {
	rt := New()
	defer func() {
		if recover() == nil {
			t.Fatal("barrier inside critical did not panic")
		}
	}()
	rt.Parallel(1, func(th *Thread) {
		th.Critical("c", func() { th.Barrier() })
	})
}

func TestForSchedulesCoverIterationSpace(t *testing.T) {
	for _, opts := range []ForOpts{
		{},
		{Schedule: ScheduleStaticCyclic, Chunk: 3},
		{Schedule: ScheduleDynamic, Chunk: 2},
		{Schedule: ScheduleGuided},
		{NoWait: true},
		{Schedule: ScheduleDynamic, Chunk: 5, NoWait: true},
	} {
		rt := New()
		const n = 1000
		counts := make([]atomic.Int32, n)
		rt.Parallel(5, func(th *Thread) {
			th.ForOpt(0, n, opts, func(i int) {
				counts[i].Add(1)
			})
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("%v: iteration %d ran %d times", opts, i, c)
			}
		}
	}
}

func TestForEmptyAndTinyRanges(t *testing.T) {
	rt := New()
	rt.Parallel(8, func(th *Thread) {
		ran := 0
		th.For(5, 5, func(i int) { ran++ })
		if ran != 0 {
			t.Errorf("empty range ran %d iterations", ran)
		}
		th.For(0, 3, func(i int) {}) // fewer iterations than threads
	})
}

func TestStaticDeterministicPartition(t *testing.T) {
	rt := New()
	var mu sync.Mutex
	assign := map[int]int{}
	rt.Parallel(4, func(th *Thread) {
		th.For(0, 10, func(i int) {
			mu.Lock()
			assign[i] = th.ID()
			mu.Unlock()
		})
	})
	// 10 iterations over 4 threads: 3,3,2,2 contiguous blocks.
	want := map[int]int{0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 2, 7: 2, 8: 3, 9: 3}
	for i, tid := range want {
		if assign[i] != tid {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestSingleRunsOnce(t *testing.T) {
	rt := New()
	var n atomic.Int32
	rt.Parallel(6, func(th *Thread) {
		for k := 0; k < 10; k++ {
			th.Single(func() { n.Add(1) })
		}
	})
	if n.Load() != 10 {
		t.Fatalf("single bodies ran %d times, want 10", n.Load())
	}
}

func TestSingleNoWaitRunsOnce(t *testing.T) {
	rt := New()
	var n atomic.Int32
	rt.Parallel(4, func(th *Thread) {
		th.SingleNoWait(func() { n.Add(1) })
		th.Barrier()
	})
	if n.Load() != 1 {
		t.Fatalf("single ran %d times", n.Load())
	}
}

func TestMasterOnlyThreadZero(t *testing.T) {
	rt := New()
	var ran atomic.Int32
	rt.Parallel(4, func(th *Thread) {
		th.Master(func() {
			ran.Add(1)
			if th.ID() != 0 {
				t.Errorf("master ran on thread %d", th.ID())
			}
		})
	})
	if ran.Load() != 1 {
		t.Fatalf("master ran %d times", ran.Load())
	}
}

func TestSectionsEachOnce(t *testing.T) {
	rt := New()
	var counts [5]atomic.Int32
	var bodies []func()
	for i := range counts {
		i := i
		bodies = append(bodies, func() { counts[i].Add(1) })
	}
	rt.Parallel(3, func(th *Thread) {
		th.Sections(bodies...)
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("section %d ran %d times", i, c)
		}
	}
}

func TestReduce(t *testing.T) {
	rt := New()
	var mu sync.Mutex
	var results []float64
	rt.Parallel(7, func(th *Thread) {
		got := th.ReduceF64(float64(th.ID()+1), func(a, b float64) float64 { return a + b })
		mu.Lock()
		results = append(results, got)
		mu.Unlock()
		n := th.ReduceI64(int64(th.ID()), func(a, b int64) int64 { return max(a, b) })
		if n != 6 {
			t.Errorf("ReduceI64 max = %d", n)
		}
	})
	for _, r := range results {
		if r != 28 { // 1+2+...+7
			t.Fatalf("reduce results %v", results)
		}
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	rt := New()
	counter := 0
	rt.Parallel(8, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.Critical("c", func() { counter++ })
		}
	})
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (critical not exclusive)", counter)
	}
}

func TestCriticalNamesDistinct(t *testing.T) {
	rt := New()
	a := rt.criticalLock("a")
	b := rt.criticalLock("b")
	if a == b || a.ID() == b.ID() {
		t.Fatal("distinct critical names share a lock")
	}
	if rt.criticalLock("a") != a {
		t.Fatal("critical lock not cached")
	}
}

func TestHeldSetTracksLocks(t *testing.T) {
	rt := New()
	l1 := rt.NewLock()
	l2 := rt.NewLock()
	rt.Parallel(1, func(th *Thread) {
		if !th.Held().Empty() {
			t.Error("held set not empty initially")
		}
		th.Acquire(l1)
		th.Acquire(l2)
		if !th.Held().Has(l1.ID()) || !th.Held().Has(l2.ID()) {
			t.Error("held set missing lock")
		}
		th.Release(l2)
		if th.Held().Has(l2.ID()) || !th.Held().Has(l1.ID()) {
			t.Error("held set wrong after release")
		}
		th.Release(l1)
	})
}

func TestReleaseUnheldPanics(t *testing.T) {
	rt := New()
	l := rt.NewLock()
	defer func() {
		if recover() == nil {
			t.Fatal("release of unheld lock did not panic")
		}
	}()
	rt.Parallel(1, func(th *Thread) { th.Release(l) })
}

func TestAccessCallbacksCarryContext(t *testing.T) {
	rec := &recordingTool{}
	rt := New(WithTool(rec))
	space := memsim.NewSpace(nil)
	arr, err := space.AllocF64(16)
	if err != nil {
		t.Fatal(err)
	}
	pcLoad := Site("test:load")
	pcStore := Site("test:store")
	lock := rt.NewLock()
	rt.Parallel(2, func(th *Thread) {
		v := th.LoadF64(arr, th.ID(), pcLoad)
		th.StoreF64(arr, th.ID(), v+1, pcStore)
		th.WithLock(lock, func() {
			th.StoreF64(arr, 8, 1, pcStore)
		})
		th.AtomicAddF64(arr, 9, 1, pcStore)
	})
	if arr.Data[0] != 1 || arr.Data[1] != 1 || arr.Data[9] != 2 {
		t.Fatalf("data plane wrong: %v", arr.Data[:10])
	}
	var lockedWrites, atomics int
	for _, a := range rec.accesses {
		if a.size != 8 {
			t.Errorf("access size %d", a.size)
		}
		if a.addr == arr.Addr(8) {
			if !a.held.Has(lock.ID()) {
				t.Error("locked write missing lock in held set")
			}
			lockedWrites++
		}
		if a.atomic {
			atomics++
		}
	}
	if lockedWrites != 2 || atomics != 2 {
		t.Fatalf("lockedWrites=%d atomics=%d, want 2 and 2", lockedWrites, atomics)
	}
	if rec.begins != 2 || rec.ends != 2 || rec.mutexOps != 2 {
		t.Fatalf("begins=%d ends=%d mutexOps=%d", rec.begins, rec.ends, rec.mutexOps)
	}
}

func TestSequentialAccessesNotInstrumented(t *testing.T) {
	rec := &recordingTool{}
	rt := New(WithTool(rec))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(4)
	rt.Run(func(initial *Thread) {
		initial.StoreF64(arr, 0, 1, Site("seq:store"))
		initial.Parallel(2, func(th *Thread) {
			th.LoadF64(arr, 0, Site("par:load"))
		})
		initial.LoadF64(arr, 0, Site("seq:load"))
	})
	for _, a := range rec.accesses {
		if a.write {
			t.Fatalf("sequential store was instrumented: %+v", a)
		}
	}
	if len(rec.accesses) != 2 {
		t.Fatalf("recorded %d accesses, want 2 parallel loads", len(rec.accesses))
	}
}

func TestRegionInfoLineage(t *testing.T) {
	rec := &recordingTool{}
	rt := New(WithTool(rec))
	rt.Parallel(2, func(outer *Thread) {
		if outer.ID() == 1 {
			outer.Parallel(2, func(*Thread) {})
			outer.Parallel(2, func(*Thread) {})
		}
		outer.Barrier()
		if outer.ID() == 1 {
			outer.Parallel(3, func(*Thread) {})
		}
	})
	if len(rec.regions) != 4 {
		t.Fatalf("forked %d regions, want 4", len(rec.regions))
	}
	root := rec.regions[0]
	if root.ParentID != trace.NoParent || root.Level != 1 || root.Size != 2 {
		t.Fatalf("root region %+v", root)
	}
	var pre, post []RegionInfo
	for _, r := range rec.regions[1:] {
		if r.ParentID != root.ID || r.ParentTID != 1 || r.Level != 2 {
			t.Fatalf("nested region %+v", r)
		}
		if r.ParentBID == 0 {
			pre = append(pre, r)
		} else {
			post = append(post, r)
		}
	}
	if len(pre) != 2 || len(post) != 1 {
		t.Fatalf("pre=%d post=%d regions", len(pre), len(post))
	}
	if pre[0].Seq == pre[1].Seq {
		t.Fatal("sibling regions share a Seq")
	}
	if post[0].Seq != 0 {
		t.Fatalf("post-barrier region Seq = %d, want 0 (reset at barrier)", post[0].Seq)
	}
}

func TestSlotPoolBoundedAndReused(t *testing.T) {
	rt := New()
	for i := 0; i < 5; i++ {
		rt.Parallel(4, func(th *Thread) {})
	}
	if got := rt.MaxSlot(); got != 4 {
		t.Fatalf("MaxSlot = %d, want 4 (slots must be pooled)", got)
	}
	// Nested: 2 outer × (1 inner master shares + 1 new worker) = up to 4.
	rt2 := New()
	rt2.Parallel(2, func(th *Thread) {
		th.Parallel(2, func(*Thread) {})
	})
	if got := rt2.MaxSlot(); got > 4 {
		t.Fatalf("nested MaxSlot = %d, want <= 4", got)
	}
}

func TestMasterSharesSlotWithParent(t *testing.T) {
	rt := New()
	rt.Parallel(1, func(outer *Thread) {
		outerSlot := outer.Slot()
		outer.Parallel(2, func(in *Thread) {
			if in.ID() == 0 && in.Slot() != outerSlot {
				t.Errorf("inner master slot %d != parent slot %d", in.Slot(), outerSlot)
			}
			if in.ID() == 1 && in.Slot() == outerSlot {
				t.Error("inner worker shares parent slot")
			}
		})
	})
}

func TestSequencerForcesOrder(t *testing.T) {
	rt := New()
	seq := NewSequencer()
	var order []int
	var mu sync.Mutex
	rt.Parallel(2, func(th *Thread) {
		if th.ID() == 0 {
			seq.Do(0, func() { mu.Lock(); order = append(order, 0); mu.Unlock() })
			seq.Do(2, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
		} else {
			seq.Do(1, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
			seq.Do(3, func() { mu.Lock(); order = append(order, 3); mu.Unlock() })
		}
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestZeroThreadsPanics(t *testing.T) {
	rt := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Parallel(0) did not panic")
		}
	}()
	rt.Parallel(0, func(*Thread) {})
}

func TestHereAndSite(t *testing.T) {
	pc1 := Here()
	pc2 := Here()
	if pc1 == pc2 {
		t.Fatal("distinct lines interned to same pc")
	}
	if Site("x") != Site("x") {
		t.Fatal("Site not idempotent")
	}
	if rt := New(); rt.PCs().Name(pc1) == "" {
		t.Fatal("pc name empty")
	}
}

func BenchmarkParallelForStatic(b *testing.B) {
	rt := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Parallel(4, func(th *Thread) {
			th.For(0, 10000, func(i int) {})
		})
	}
}

func BenchmarkInstrumentedAccess(b *testing.B) {
	rec := &recordingTool{}
	_ = rec
	rt := New() // no tool: measures instrumentation fast path
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(1024)
	pc := Site("bench")
	b.ReportAllocs()
	rt.Parallel(1, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.StoreF64(arr, i&1023, 1, pc)
		}
	})
}

func TestForOrderedExecutesInOrder(t *testing.T) {
	rt := New()
	var order []int
	var mu sync.Mutex
	rt.Parallel(4, func(th *Thread) {
		th.ForOrdered(0, 64, ForOpts{}, func(i int, ordered func(func())) {
			ordered(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	})
	if len(order) != 64 {
		t.Fatalf("ordered ran %d times", len(order))
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("ordered sections out of order: %v", order[:i+1])
		}
	}
}

func TestForOrderedCyclicSchedule(t *testing.T) {
	rt := New()
	var order []int
	var mu sync.Mutex
	rt.Parallel(3, func(th *Thread) {
		th.ForOrdered(0, 30, ForOpts{Schedule: ScheduleStaticCyclic, Chunk: 2}, func(i int, ordered func(func())) {
			ordered(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		})
	})
	for i, v := range order {
		if i != v {
			t.Fatalf("cyclic ordered out of order at %d: %v", i, order)
		}
	}
}

func TestForOrderedSectionIsToolVisibleMutex(t *testing.T) {
	rec := &recordingTool{}
	rt := New(WithTool(rec))
	space := memsim.NewSpace(nil)
	arr, _ := space.AllocF64(16)
	pc := Site("ordered:dep")
	rt.Parallel(2, func(th *Thread) {
		th.ForOrdered(1, 8, ForOpts{}, func(i int, ordered func(func())) {
			ordered(func() {
				v := th.LoadF64(arr, i-1, pc)
				th.StoreF64(arr, i, v+1, pc)
			})
		})
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, a := range rec.accesses {
		if a.held.Empty() {
			t.Fatalf("access inside ordered section holds no mutex: %+v", a)
		}
	}
	if rec.mutexOps != 7 {
		t.Fatalf("mutex acquisitions = %d, want 7 (one per iteration)", rec.mutexOps)
	}
}
