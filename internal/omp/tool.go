package omp

// Tool is the reproduction's OMPT substitute: the callback surface through
// which analysis tools observe the runtime. SWORD's collector and the
// ARCHER baseline both implement it. Callbacks run on the goroutine of the
// thread they describe; RegionFork and RegionJoin run on the encountering
// (parent) thread's goroutine, strictly before the team starts and after
// it fully joins, giving happens-before tools a sound place to snapshot
// and merge clocks.
type Tool interface {
	// ThreadBegin fires when a thread joins a team, after its slot and
	// label are assigned and before any other callback from it.
	ThreadBegin(th *Thread)
	// ThreadEnd fires when a thread leaves its team; its final barrier
	// interval is complete.
	ThreadEnd(th *Thread)
	// RegionFork fires on the encountering thread before a parallel
	// region's team is created.
	RegionFork(parent *Thread, region RegionInfo)
	// RegionJoin fires on the encountering thread after all team members
	// finished.
	RegionJoin(parent *Thread, region RegionInfo)
	// ParallelBegin fires on each team member at region start.
	ParallelBegin(th *Thread)
	// ParallelEnd fires on each team member after the region's final
	// implicit barrier.
	ParallelEnd(th *Thread)
	// BarrierArrive fires when a thread reaches a barrier, before waiting.
	BarrierArrive(th *Thread, implicit bool)
	// BarrierDepart fires when a thread leaves a barrier; the thread's BID
	// and label have advanced.
	BarrierDepart(th *Thread, implicit bool)
	// MutexAcquired fires after a critical section or lock is entered.
	MutexAcquired(th *Thread, mutex uint64)
	// MutexReleased fires before a critical section or lock is exited.
	MutexReleased(th *Thread, mutex uint64)
	// Access fires for every instrumented load or store executed inside a
	// parallel region. Sequential accesses are not reported, mirroring the
	// paper's instrumentation which skips them.
	Access(th *Thread, addr uint64, size uint8, write, atomic bool, pc uint64)
	// TaskSpawn fires on the encountering thread when it creates a task;
	// unlike RegionFork, the thread continues immediately.
	TaskSpawn(spawner *Thread, task RegionInfo)
	// TaskWaited fires on a thread after its taskwait completed, naming
	// the joined tasks.
	TaskWaited(spawner *Thread, taskIDs []uint64)
	// BarrierTasksDone fires once per barrier episode (on the last
	// arriving thread, before any thread departs) naming the region's
	// tasks that completed during the episode — the barrier's implicit
	// task join.
	BarrierTasksDone(th *Thread, taskIDs []uint64)
}

// NopTool implements every Tool callback as a no-op; embed it to implement
// only the callbacks a tool cares about.
type NopTool struct{}

// ThreadBegin implements Tool.
func (NopTool) ThreadBegin(*Thread) {}

// ThreadEnd implements Tool.
func (NopTool) ThreadEnd(*Thread) {}

// RegionFork implements Tool.
func (NopTool) RegionFork(*Thread, RegionInfo) {}

// RegionJoin implements Tool.
func (NopTool) RegionJoin(*Thread, RegionInfo) {}

// ParallelBegin implements Tool.
func (NopTool) ParallelBegin(*Thread) {}

// ParallelEnd implements Tool.
func (NopTool) ParallelEnd(*Thread) {}

// BarrierArrive implements Tool.
func (NopTool) BarrierArrive(*Thread, bool) {}

// BarrierDepart implements Tool.
func (NopTool) BarrierDepart(*Thread, bool) {}

// MutexAcquired implements Tool.
func (NopTool) MutexAcquired(*Thread, uint64) {}

// MutexReleased implements Tool.
func (NopTool) MutexReleased(*Thread, uint64) {}

// Access implements Tool.
func (NopTool) Access(*Thread, uint64, uint8, bool, bool, uint64) {}

// TaskSpawn implements Tool.
func (NopTool) TaskSpawn(*Thread, RegionInfo) {}

// TaskWaited implements Tool.
func (NopTool) TaskWaited(*Thread, []uint64) {}

// BarrierTasksDone implements Tool.
func (NopTool) BarrierTasksDone(*Thread, []uint64) {}

// tools fans callbacks out to every registered tool in order.
type tools []Tool

func (ts tools) threadBegin(th *Thread) {
	for _, t := range ts {
		t.ThreadBegin(th)
	}
}

func (ts tools) threadEnd(th *Thread) {
	for _, t := range ts {
		t.ThreadEnd(th)
	}
}

func (ts tools) regionFork(p *Thread, r RegionInfo) {
	for _, t := range ts {
		t.RegionFork(p, r)
	}
}

func (ts tools) regionJoin(p *Thread, r RegionInfo) {
	for _, t := range ts {
		t.RegionJoin(p, r)
	}
}

func (ts tools) parallelBegin(th *Thread) {
	for _, t := range ts {
		t.ParallelBegin(th)
	}
}

func (ts tools) parallelEnd(th *Thread) {
	for _, t := range ts {
		t.ParallelEnd(th)
	}
}

func (ts tools) barrierArrive(th *Thread, implicit bool) {
	for _, t := range ts {
		t.BarrierArrive(th, implicit)
	}
}

func (ts tools) barrierDepart(th *Thread, implicit bool) {
	for _, t := range ts {
		t.BarrierDepart(th, implicit)
	}
}

func (ts tools) mutexAcquired(th *Thread, m uint64) {
	for _, t := range ts {
		t.MutexAcquired(th, m)
	}
}

func (ts tools) mutexReleased(th *Thread, m uint64) {
	for _, t := range ts {
		t.MutexReleased(th, m)
	}
}

func (ts tools) access(th *Thread, addr uint64, size uint8, write, atomic bool, pc uint64) {
	for _, t := range ts {
		t.Access(th, addr, size, write, atomic, pc)
	}
}

func (ts tools) taskSpawn(th *Thread, r RegionInfo) {
	for _, t := range ts {
		t.TaskSpawn(th, r)
	}
}

func (ts tools) taskWaited(th *Thread, ids []uint64) {
	for _, t := range ts {
		t.TaskWaited(th, ids)
	}
}

func (ts tools) barrierTasksDone(th *Thread, ids []uint64) {
	for _, t := range ts {
		t.BarrierTasksDone(th, ids)
	}
}
