package omp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sword/internal/ilp"
	"sword/internal/memsim"
	"sword/internal/trace"
)

// Static worksharing certificates — the LLOV-style static half of solver
// avoidance. A workload declares a loop's memory accesses as affine shapes
// (base + stride·i + offset over a memsim array, with read/write
// classification and an optional per-iteration block span); ForAffine then
// proves, from the schedule's thread→chunk mapping alone, that distinct
// threads touch disjoint addresses, and publishes that proof to interested
// tools as a trace.LoopCert. A tool that arms the certificate (the SWORD
// collector, when static filtering is enabled) receives no per-access
// callback for captured accesses — the runtime just counts them — while
// every other tool keeps observing the full access stream, so
// happens-before baselines and test oracles are never blinded.
//
// Soundness contract: the per-thread dropped set is always a canonical
// lexicographic prefix (chunk pieces ascending, iterations ascending,
// block elements ascending) of the declared footprint, enforced by
// per-declaration span cursors. Anything the static proof does not cover —
// raw uncaptured accesses, lock acquisitions, barriers, task spawns or
// nested forks inside the loop, leftover state from earlier in the barrier
// interval — marks the certificate dirty; a dirty certificate is published
// with Clean=false and the analyzer rematerializes the counted prefix
// exactly instead of retiring the pair class.

// CertTool is the optional tool extension for static loop certificates.
// Tools that do not implement it simply keep receiving Access callbacks.
type CertTool interface {
	// LoopCertBegin fires on each team member entering a certified
	// worksharing loop, before any iteration runs. Returning true arms the
	// certificate for this tool: captured accesses are dropped (counted,
	// not delivered) instead of reported through Access. The tool may fill
	// its per-thread row in c.Threads (trace TID, fragment cut).
	LoopCertBegin(th *Thread, c *trace.LoopCert) bool
	// LoopCertEnd fires exactly once per certified loop, on the last team
	// member to finish iterating, after c's verdict (Clean) and dropped
	// counts are final and before the loop's closing barrier.
	LoopCertEnd(th *Thread, c *trace.LoopCert)
}

// maxCertIntersects bounds the constraint-solving work a single loop
// validation may spend; loops needing more are left uncertified.
const maxCertIntersects = 4096

// AffineRef names one declared access shape of an AffineLoop.
type AffineRef struct{ idx int }

// affineDecl pairs a certificate shape with the backing array it moves
// data through. Exactly one array pointer is set.
type affineDecl struct {
	f64    *memsim.F64
	i64    *memsim.I64
	i32    *memsim.I32
	length int64 // element count of the backing array
}

type affineKey struct {
	lo, hi int64
	nt     int
	sched  uint8
	chunk  int64
}

// AffineLoop is the reusable declaration of one worksharing loop's access
// shapes. Construct it once per loop site (package init or first use),
// declare every access the loop body performs, then run the loop with
// Thread.ForAffine. Declarations are frozen by the first run.
type AffineLoop struct {
	mu     sync.Mutex
	frozen bool
	decls  []affineDecl
	cdecls []trace.CertDecl
	cache  map[affineKey]bool
}

// NewAffineLoop returns an empty loop declaration.
func NewAffineLoop() *AffineLoop {
	return &AffineLoop{cache: make(map[affineKey]bool)}
}

func (l *AffineLoop) declare(d affineDecl, cd trace.CertDecl) AffineRef {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		panic("omp: AffineLoop declaration after first use")
	}
	if cd.Span == 0 {
		panic("omp: affine declaration with zero span")
	}
	l.decls = append(l.decls, d)
	l.cdecls = append(l.cdecls, cd)
	return AffineRef{idx: len(l.decls) - 1}
}

// ReadF64 declares a read of a[stride·i+offset].
func (l *AffineLoop) ReadF64(a *memsim.F64, stride, offset int64, pc uint64) AffineRef {
	return l.ReadF64Span(a, stride, offset, 1, pc)
}

// WriteF64 declares a write of a[stride·i+offset].
func (l *AffineLoop) WriteF64(a *memsim.F64, stride, offset int64, pc uint64) AffineRef {
	return l.WriteF64Span(a, stride, offset, 1, pc)
}

// ReadF64Span declares reads of the block a[stride·i+offset+k] for
// 0 ≤ k < span, accessed in ascending k order each iteration.
func (l *AffineLoop) ReadF64Span(a *memsim.F64, stride, offset int64, span int, pc uint64) AffineRef {
	return l.declare(affineDecl{f64: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 8, Stride: stride, Offset: offset, Span: uint64(span), Write: false, PC: pc})
}

// WriteF64Span declares writes of the block a[stride·i+offset+k] for
// 0 ≤ k < span.
func (l *AffineLoop) WriteF64Span(a *memsim.F64, stride, offset int64, span int, pc uint64) AffineRef {
	return l.declare(affineDecl{f64: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 8, Stride: stride, Offset: offset, Span: uint64(span), Write: true, PC: pc})
}

// ReadI64 declares a read of a[stride·i+offset].
func (l *AffineLoop) ReadI64(a *memsim.I64, stride, offset int64, pc uint64) AffineRef {
	return l.declare(affineDecl{i64: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 8, Stride: stride, Offset: offset, Span: 1, Write: false, PC: pc})
}

// WriteI64 declares a write of a[stride·i+offset].
func (l *AffineLoop) WriteI64(a *memsim.I64, stride, offset int64, pc uint64) AffineRef {
	return l.declare(affineDecl{i64: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 8, Stride: stride, Offset: offset, Span: 1, Write: true, PC: pc})
}

// ReadI32 declares a read of a[stride·i+offset].
func (l *AffineLoop) ReadI32(a *memsim.I32, stride, offset int64, pc uint64) AffineRef {
	return l.declare(affineDecl{i32: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 4, Stride: stride, Offset: offset, Span: 1, Write: false, PC: pc})
}

// WriteI32 declares a write of a[stride·i+offset].
func (l *AffineLoop) WriteI32(a *memsim.I32, stride, offset int64, pc uint64) AffineRef {
	return l.declare(affineDecl{i32: a, length: int64(a.Len())},
		trace.CertDecl{Base: a.Base(), Elem: 4, Stride: stride, Offset: offset, Span: 1, Write: true, PC: pc})
}

func (l *AffineLoop) freeze() {
	l.mu.Lock()
	l.frozen = true
	l.mu.Unlock()
}

// certProg maps one declaration restricted to a contiguous iteration piece
// [s, e) onto an ilp progression over addresses.
func certProg(d *trace.CertDecl, s, e int64) ilp.Progression {
	return certProgStep(d, s, e, 1)
}

// certProgStep maps one declaration restricted to the iteration
// progression s, s+step, … (last value < e) onto an ilp progression over
// addresses. step must be positive; step 1 is the contiguous-piece case.
func certProgStep(d *trace.CertDecl, s, e, step int64) ilp.Progression {
	width := d.Span * d.Elem
	iters := (e - s + step - 1) / step
	if d.Stride == 0 || iters == 1 {
		lo := s
		if d.Stride < 0 {
			lo = s + (iters-1)*step
		}
		return ilp.Progression{Base: d.Addr(lo, 0), Width: width}
	}
	lo := s
	stride := d.Stride * step
	if stride < 0 {
		lo = s + (iters-1)*step
		stride = -stride
	}
	return ilp.Progression{
		Base:   d.Addr(lo, 0),
		Stride: uint64(stride) * d.Elem,
		Count:  uint64(iters - 1),
		Width:  width,
	}
}

// validate decides whether the declared shapes are provably disjoint
// across threads under the given schedule. Verdicts are cached per
// (bounds, team size, schedule) tuple.
func (l *AffineLoop) validate(lo, hi int64, nt int, sched uint8, chunk int64) bool {
	key := affineKey{lo: lo, hi: hi, nt: nt, sched: sched, chunk: chunk}
	l.mu.Lock()
	if v, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return v
	}
	l.mu.Unlock()
	v := l.validateSlow(lo, hi, nt, sched, chunk)
	l.mu.Lock()
	l.cache[key] = v
	l.mu.Unlock()
	return v
}

func (l *AffineLoop) validateSlow(lo, hi int64, nt int, sched uint8, chunk int64) bool {
	if hi <= lo {
		return true // empty loop: nothing to prove
	}
	// Every declared index must land inside its backing array — the data
	// plane would panic otherwise, and the address arithmetic below
	// assumes no wraparound.
	for j := range l.cdecls {
		d := &l.cdecls[j]
		loIdx := d.Stride*lo + d.Offset
		hiIdx := d.Stride*(hi-1) + d.Offset
		if loIdx > hiIdx {
			loIdx, hiIdx = hiIdx, loIdx
		}
		hiIdx += int64(d.Span) - 1
		if loIdx < 0 || hiIdx >= l.decls[j].length {
			return false
		}
	}
	if nt <= 1 {
		return true // a single thread cannot race with itself
	}
	shape := trace.LoopCert{Sched: sched, Chunk: chunk, Lo: lo, Hi: hi, NT: uint64(nt)}
	// Collapse each thread's footprint per declaration into address
	// progressions before intersecting. A static schedule is one
	// contiguous piece, but a cyclic schedule's pieces recur with period
	// nt*chunk, so the iterations at each intra-chunk position form a
	// single progression: min(chunk, pieces) runs per thread instead of
	// O(n/(nt*chunk)) pieces, which keeps chunk-1 cyclic loops over large
	// trip counts well inside the proof budget.
	nd := len(l.cdecls)
	runs := make([][]ilp.Progression, nt*nd)
	for t := 0; t < nt; t++ {
		pieces := shape.PiecesFor(uint64(t), nil)
		for j := range l.cdecls {
			d := &l.cdecls[j]
			rs := make([]ilp.Progression, 0, min(len(pieces), int(max(chunk, 1))))
			if c := max(chunk, 1); sched == trace.CertSchedCyclic && c < int64(len(pieces)) {
				period := int64(nt) * c
				first := lo + int64(t)*c
				for p := int64(0); p < c; p++ {
					if s := first + p; s < hi {
						rs = append(rs, certProgStep(d, s, hi, period))
					}
				}
			} else {
				for _, piece := range pieces {
					rs = append(rs, certProg(d, piece[0], piece[1]))
				}
			}
			runs[t*nd+j] = rs
		}
	}
	budget := maxCertIntersects
	for t1 := 0; t1 < nt; t1++ {
		for t2 := t1 + 1; t2 < nt; t2++ {
			for d1 := range l.cdecls {
				for d2 := range l.cdecls {
					if !l.cdecls[d1].Write && !l.cdecls[d2].Write {
						continue // two reads never race
					}
					for _, a := range runs[t1*nd+d1] {
						for _, b := range runs[t2*nd+d2] {
							budget--
							if budget < 0 {
								return false // too expensive to prove; stay dynamic
							}
							if _, hit := ilp.Intersect(a, b); hit {
								return false
							}
						}
					}
				}
			}
		}
	}
	return true
}

// teamCert is the team-wide rendezvous state of one certified loop
// instance. Certified loops always end with a barrier, so a single pooled
// slot per team suffices: by the time any thread can reach the next
// certified loop, every thread has finished with the previous one.
type teamCert struct {
	key      uint64 // barrier interval the loop arms in
	cert     trace.LoopCert
	dirty    atomic.Bool
	unarmed  atomic.Bool
	pending  atomic.Int64
	endTools []CertTool // tools armed by the creating thread
}

// certFor returns the team's certificate slot for the thread's current
// barrier interval, creating/resetting it on first arrival. The boolean
// reports whether this thread created the instance.
func (t *Thread) certFor(l *AffineLoop, lo, hi int64, sched uint8, chunk int64) (*teamCert, bool) {
	tm := t.team
	nt := tm.info.Size
	nd := len(l.cdecls)
	tm.mu.Lock()
	defer tm.mu.Unlock()
	tc := tm.curCert
	if tc != nil && tc.key == t.bid && tc.cert.BID == t.bid {
		return tc, false
	}
	if tc == nil {
		tc = &teamCert{}
		tm.curCert = tc
	}
	tc.key = t.bid
	c := &tc.cert
	c.PID, c.BID = tm.info.ID, t.bid
	c.Sched, c.Chunk, c.Lo, c.Hi, c.NT = sched, chunk, lo, hi, uint64(nt)
	c.Clean = false
	c.Decls = l.cdecls
	if cap(c.Threads) < nt {
		c.Threads = make([]trace.CertThread, nt)
	} else {
		c.Threads = c.Threads[:nt]
	}
	for i := range c.Threads {
		row := &c.Threads[i]
		row.TID, row.Cut = 0, 0
		if cap(row.Dropped) < nd {
			row.Dropped = make([]uint64, nd)
		} else {
			row.Dropped = row.Dropped[:nd]
			for j := range row.Dropped {
				row.Dropped[j] = 0
			}
		}
	}
	tc.dirty.Store(false)
	tc.unarmed.Store(false)
	tc.pending.Store(int64(nt))
	tc.endTools = tc.endTools[:0]
	return tc, true
}

// certState is one thread's view of the active certified loop; pooled on
// the Thread so steady-state certified loops allocate nothing.
type certState struct {
	l        *AffineLoop
	tc       *teamCert
	dropping bool
	iterOpen bool
	counts   []uint64 // aliases tc.cert.Threads[id].Dropped
	nextK    []uint64 // per-decl span cursor within the current iteration
	others   tools    // tools that still receive captured accesses
	pieces   [][2]int64
	it       AffineIter
}

// stop ends dropping for this thread (the already-dropped set stays a
// canonical prefix) and voids the certificate's clean verdict.
func (cs *certState) stop() {
	cs.dropping = false
	cs.tc.dirty.Store(true)
}

// advance opens iteration i: the previous iteration must have covered
// every declaration's full span, or the clean claim dies.
func (cs *certState) advance(i int64) {
	if cs.dropping {
		if cs.iterOpen {
			for r, k := range cs.nextK {
				if k != cs.l.cdecls[r].Span {
					cs.stop()
					break
				}
			}
		}
		for r := range cs.nextK {
			cs.nextK[r] = 0
		}
	}
	cs.iterOpen = true
	cs.it.i = i
}

// ForAffine runs a worksharing loop over [lo, hi) whose body accesses
// memory only through the declared affine shapes of l, with the default
// static schedule. When the loop certifies, tools that arm the
// certificate skip the captured accesses entirely.
func (t *Thread) ForAffine(l *AffineLoop, lo, hi int, body func(it *AffineIter)) {
	t.ForAffineOpt(l, lo, hi, ForOpts{}, body)
}

// ForAffineOpt is ForAffine with explicit schedule options. Dynamic and
// guided schedules, nowait loops, nested or task contexts, and shapes the
// solver cannot prove disjoint all fall back to the ordinary instrumented
// path — same accesses, no certificate.
func (t *Thread) ForAffineOpt(l *AffineLoop, lo, hi int, opts ForOpts, body func(it *AffineIter)) {
	l.freeze()
	sched, chunk, ok := certSchedule(opts)
	if !ok || t.cert != nil || !t.InParallel() ||
		t.team.info.Level != 1 || t.team.info.Async ||
		!t.rt.hasCertTools ||
		trace.CertBound(len(l.cdecls), t.NumThreads()) > trace.MaxCertRecordBytes ||
		!l.validate(int64(lo), int64(hi), t.NumThreads(), sched, chunk) {
		t.forAffinePlain(l, lo, hi, opts, body)
		return
	}

	cs := t.enterAffine(l, int64(lo), int64(hi), sched, chunk)
	it := &cs.it
	cs.pieces = cs.tc.cert.PiecesFor(uint64(t.id), cs.pieces[:0])
	for _, p := range cs.pieces {
		for i := p[0]; i < p[1]; i++ {
			cs.advance(i)
			body(it)
		}
	}
	t.exitAffine(cs)
	t.barrier(true)
}

// certSchedule maps loop options onto certificate schedules; only the
// deterministic static schedules can be certified.
func certSchedule(opts ForOpts) (sched uint8, chunk int64, ok bool) {
	if opts.NoWait {
		return 0, 0, false
	}
	switch opts.Schedule {
	case ScheduleStatic:
		return trace.CertSchedStatic, 0, true
	case ScheduleStaticCyclic:
		chunk = int64(opts.Chunk)
		if chunk <= 0 {
			chunk = 1
		}
		return trace.CertSchedCyclic, chunk, true
	default:
		return 0, 0, false
	}
}

// forAffinePlain executes the loop through the ordinary worksharing path:
// every captured access is reported like a hand-instrumented one.
func (t *Thread) forAffinePlain(l *AffineLoop, lo, hi int, opts ForOpts, body func(it *AffineIter)) {
	var it AffineIter
	it.t, it.l = t, l
	t.ForOpt(lo, hi, opts, func(i int) {
		it.i = int64(i)
		body(&it)
	})
}

// enterAffine arms the certificate on this thread: rendezvous with the
// team slot, offer the certificate to every CertTool, and decide whether
// this thread may drop.
func (t *Thread) enterAffine(l *AffineLoop, lo, hi int64, sched uint8, chunk int64) *certState {
	tc, created := t.certFor(l, lo, hi, sched, chunk)
	cs := t.certScratch
	if cs == nil {
		cs = &certState{}
		t.certScratch = cs
	}
	nd := len(l.cdecls)
	cs.l, cs.tc = l, tc
	cs.iterOpen = false
	cs.counts = tc.cert.Threads[t.id].Dropped
	if cap(cs.nextK) < nd {
		cs.nextK = make([]uint64, nd)
	} else {
		cs.nextK = cs.nextK[:nd]
	}
	cs.others = cs.others[:0]
	cs.it = AffineIter{t: t, l: l, cs: cs}

	dropping := true
	if !t.held.Empty() {
		// Dropped accesses rematerialize with an empty mutex set; holding
		// a lock across the loop would turn that into false races.
		dropping = false
		tc.dirty.Store(true)
	}
	if t.sinceBarrier != 0 || t.seq != 0 || len(t.pendingTasks) != 0 {
		// The barrier interval already has recorded content, live tasks,
		// or nested regions whose accesses are concurrent with the other
		// threads' intervals: its pair classes cannot be retired as empty.
		tc.dirty.Store(true)
	}
	for _, tool := range t.rt.tools {
		ct, isCert := tool.(CertTool)
		if !isCert {
			cs.others = append(cs.others, tool)
			continue
		}
		if ct.LoopCertBegin(t, &tc.cert) {
			if created {
				tc.endTools = append(tc.endTools, ct)
			}
		} else {
			// The tool declined: it keeps observing plainly, and the
			// certificate cannot claim its trace is empty.
			tc.unarmed.Store(true)
			dropping = false
			cs.others = append(cs.others, tool)
		}
	}
	cs.dropping = dropping
	t.cert = cs
	return cs
}

// exitAffine finishes this thread's participation; the last thread seals
// the verdict and publishes the certificate to the armed tools.
func (t *Thread) exitAffine(cs *certState) {
	if cs.dropping && cs.iterOpen {
		for r, k := range cs.nextK {
			if k != cs.l.cdecls[r].Span {
				cs.stop()
				break
			}
		}
	}
	tc := cs.tc
	t.cert = nil
	cs.tc = nil
	cs.counts = nil
	if tc.pending.Add(-1) == 0 {
		c := &tc.cert
		c.Clean = !tc.dirty.Load() && !tc.unarmed.Load()
		for _, ct := range tc.endTools {
			ct.LoopCertEnd(t, c)
		}
	}
}

// AffineIter is the loop body's handle for one iteration: it exposes the
// iteration index and the declared accessors. Do not retain it past the
// body call.
type AffineIter struct {
	t  *Thread
	l  *AffineLoop
	cs *certState // nil on the plain fallback path
	i  int64
}

// I returns the current iteration index.
func (it *AffineIter) I() int { return int(it.i) }

// Thread returns the executing thread.
func (it *AffineIter) Thread() *Thread { return it.t }

// index computes and bounds-checks the array index of element k of the
// declared block at the current iteration.
func (it *AffineIter) index(cd *trace.CertDecl, k int) int64 {
	if uint64(k) >= cd.Span {
		panic(fmt.Sprintf("omp: affine block element %d outside declared span %d", k, cd.Span))
	}
	return cd.Stride*it.i + cd.Offset + int64(k)
}

// report delivers (or drops) the instrumented access for element k of
// declaration r at the current iteration.
func (it *AffineIter) report(r int, cd *trace.CertDecl, k uint64, write bool) {
	if cs := it.cs; cs != nil && cs.dropping {
		if k == cs.nextK[r] {
			cs.nextK[r]++
			cs.counts[r]++
			if len(cs.others) > 0 {
				cs.others.access(it.t, cd.Addr(it.i, k), uint8(cd.Elem), write, false, cd.PC)
			}
			return
		}
		// Out of canonical order: keep the dropped prefix, record the
		// rest plainly.
		cs.stop()
	}
	if write {
		it.t.Write(cd.Addr(it.i, k), uint8(cd.Elem), cd.PC)
	} else {
		it.t.Read(cd.Addr(it.i, k), uint8(cd.Elem), cd.PC)
	}
}

func (it *AffineIter) declF64(r AffineRef, write bool) (*affineDecl, *trace.CertDecl) {
	d := &it.l.decls[r.idx]
	cd := &it.l.cdecls[r.idx]
	if d.f64 == nil {
		panic("omp: affine ref does not name an F64 declaration")
	}
	if cd.Write != write {
		panic("omp: affine access direction does not match its declaration")
	}
	return d, cd
}

// LoadF64 reads the declared element at the current iteration (k = 0).
func (it *AffineIter) LoadF64(r AffineRef) float64 { return it.LoadF64At(r, 0) }

// LoadF64At reads block element k of the declared span.
func (it *AffineIter) LoadF64At(r AffineRef, k int) float64 {
	d, cd := it.declF64(r, false)
	idx := it.index(cd, k)
	it.report(r.idx, cd, uint64(k), false)
	return loadWord(&d.f64.Data[idx])
}

// StoreF64 writes the declared element at the current iteration (k = 0).
func (it *AffineIter) StoreF64(r AffineRef, v float64) { it.StoreF64At(r, 0, v) }

// StoreF64At writes block element k of the declared span.
func (it *AffineIter) StoreF64At(r AffineRef, k int, v float64) {
	d, cd := it.declF64(r, true)
	idx := it.index(cd, k)
	it.report(r.idx, cd, uint64(k), true)
	storeWord(&d.f64.Data[idx], v)
}

// LoadI64 reads the declared element at the current iteration.
func (it *AffineIter) LoadI64(r AffineRef) int64 {
	d := &it.l.decls[r.idx]
	cd := &it.l.cdecls[r.idx]
	if d.i64 == nil {
		panic("omp: affine ref does not name an I64 declaration")
	}
	if cd.Write {
		panic("omp: affine access direction does not match its declaration")
	}
	idx := it.index(cd, 0)
	it.report(r.idx, cd, 0, false)
	return atomic.LoadInt64(&d.i64.Data[idx])
}

// StoreI64 writes the declared element at the current iteration.
func (it *AffineIter) StoreI64(r AffineRef, v int64) {
	d := &it.l.decls[r.idx]
	cd := &it.l.cdecls[r.idx]
	if d.i64 == nil {
		panic("omp: affine ref does not name an I64 declaration")
	}
	if !cd.Write {
		panic("omp: affine access direction does not match its declaration")
	}
	idx := it.index(cd, 0)
	it.report(r.idx, cd, 0, true)
	atomic.StoreInt64(&d.i64.Data[idx], v)
}

// LoadI32 reads the declared element at the current iteration.
func (it *AffineIter) LoadI32(r AffineRef) int32 {
	d := &it.l.decls[r.idx]
	cd := &it.l.cdecls[r.idx]
	if d.i32 == nil {
		panic("omp: affine ref does not name an I32 declaration")
	}
	if cd.Write {
		panic("omp: affine access direction does not match its declaration")
	}
	idx := it.index(cd, 0)
	it.report(r.idx, cd, 0, false)
	return atomic.LoadInt32(&d.i32.Data[idx])
}

// StoreI32 writes the declared element at the current iteration.
func (it *AffineIter) StoreI32(r AffineRef, v int32) {
	d := &it.l.decls[r.idx]
	cd := &it.l.cdecls[r.idx]
	if d.i32 == nil {
		panic("omp: affine ref does not name an I32 declaration")
	}
	if !cd.Write {
		panic("omp: affine access direction does not match its declaration")
	}
	idx := it.index(cd, 0)
	it.report(r.idx, cd, 0, true)
	atomic.StoreInt32(&d.i32.Data[idx], v)
}

// Certificate dirty/stop hooks, called from the runtime's event sites.

// certRaw notes an uncaptured instrumented access while a certificate is
// armed: the access is recorded plainly, so the loop's trace is not empty
// and the clean claim dies; the dropped prefix remains exact.
func (t *Thread) certRaw() {
	if cs := t.cert; cs != nil {
		cs.tc.dirty.Store(true)
	}
}

// certStop ends dropping on this thread: barriers, task spawns and nested
// forks restructure the interval (or, for lock acquisitions, change the
// mutex context) in ways the certificate's rematerialization cannot
// represent, so everything after the event is recorded plainly.
func (t *Thread) certStop() {
	if cs := t.cert; cs != nil {
		cs.stop()
	}
}
