package omp

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Schedule selects the iteration-distribution policy of a worksharing
// loop, mirroring OpenMP's schedule clause.
type Schedule int

const (
	// ScheduleStatic splits the iteration space into one contiguous block
	// per thread (OpenMP's default static schedule).
	ScheduleStatic Schedule = iota
	// ScheduleStaticCyclic deals iterations round-robin in chunks
	// (schedule(static, chunk)).
	ScheduleStaticCyclic
	// ScheduleDynamic hands out chunks from a shared counter on demand.
	ScheduleDynamic
	// ScheduleGuided hands out geometrically shrinking chunks.
	ScheduleGuided
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleStaticCyclic:
		return "static-cyclic"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return fmt.Sprintf("schedule(%d)", int(s))
	}
}

// ForOpts configures a worksharing loop.
type ForOpts struct {
	Schedule Schedule
	Chunk    int  // chunk size for cyclic/dynamic/guided; 0 picks a default
	NoWait   bool // omit the implicit barrier at loop end (#pragma omp for nowait)
}

// For runs the canonical worksharing loop: iterations [lo, hi) distributed
// with the default static schedule and an implicit barrier at the end.
func (t *Thread) For(lo, hi int, body func(i int)) {
	t.ForOpt(lo, hi, ForOpts{}, body)
}

// ForNoWait is For with the nowait clause: no barrier at loop end.
func (t *Thread) ForNoWait(lo, hi int, body func(i int)) {
	t.ForOpt(lo, hi, ForOpts{NoWait: true}, body)
}

// ForOpt runs a worksharing loop over [lo, hi) with explicit options.
// Every thread of the team must call it (SPMD), like an orphaned
// #pragma omp for.
func (t *Thread) ForOpt(lo, hi int, opts ForOpts, body func(i int)) {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	nt := t.NumThreads()
	switch opts.Schedule {
	case ScheduleStatic:
		// One contiguous block per thread, remainder spread left-to-right.
		chunk := n / nt
		rem := n % nt
		start := lo + t.id*chunk + min(t.id, rem)
		end := start + chunk
		if t.id < rem {
			end++
		}
		for i := start; i < end; i++ {
			body(i)
		}
	case ScheduleStaticCyclic:
		chunk := opts.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		for base := lo + t.id*chunk; base < hi; base += nt * chunk {
			for i := base; i < min(base+chunk, hi); i++ {
				body(i)
			}
		}
	case ScheduleDynamic:
		chunk := opts.Chunk
		if chunk <= 0 {
			chunk = 1
		}
		ctr := t.loopCounter()
		for {
			base := lo + int(ctr.Add(int64(chunk))) - chunk
			if base >= hi {
				break
			}
			for i := base; i < min(base+chunk, hi); i++ {
				body(i)
			}
		}
	case ScheduleGuided:
		minChunk := opts.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		ctr := t.loopCounter()
	guided:
		for {
			// Claim a chunk proportional to the remaining iterations.
			for {
				claimed := ctr.Load()
				remaining := int64(n) - claimed
				if remaining <= 0 {
					break guided
				}
				chunk := remaining / int64(2*nt)
				if chunk < int64(minChunk) {
					chunk = int64(minChunk)
				}
				if chunk > remaining {
					chunk = remaining
				}
				if ctr.CompareAndSwap(claimed, claimed+chunk) {
					for i := lo + int(claimed); i < lo+int(claimed+chunk); i++ {
						body(i)
					}
					break
				}
			}
		}
	default:
		panic(fmt.Sprintf("omp: unknown schedule %v", opts.Schedule))
	}
	if !opts.NoWait {
		t.barrier(true)
	}
}

// loopCounter returns the shared chunk counter for this thread's next
// worksharing construct; construct instances match up across the team
// because worksharing constructs must be encountered in the same order by
// all threads (an OpenMP requirement).
func (t *Thread) loopCounter() *atomic.Int64 {
	seq := t.forSeq
	t.forSeq++
	tm := t.team
	tm.mu.Lock()
	defer tm.mu.Unlock()
	key := seq | t.bid<<32
	ctr, ok := tm.forChunk[key]
	if !ok {
		ctr = new(atomic.Int64)
		tm.forChunk[key] = ctr
	}
	return ctr
}

// Single executes f on the first thread to arrive, like
// #pragma omp single; the construct ends with an implicit barrier.
func (t *Thread) Single(f func()) {
	t.singleOpt(f, false)
}

// SingleNoWait is Single with the nowait clause.
func (t *Thread) SingleNoWait(f func()) {
	t.singleOpt(f, true)
}

func (t *Thread) singleOpt(f func(), nowait bool) {
	seq := t.singleSeq
	t.singleSeq++
	key := seq | t.bid<<32
	tm := t.team
	tm.mu.Lock()
	taken := tm.singleDone[key]
	if !taken {
		tm.singleDone[key] = true
	}
	tm.mu.Unlock()
	if !taken {
		f()
	}
	if !nowait {
		t.barrier(true)
	}
}

// Master executes f on the master thread only; no barrier is implied,
// like #pragma omp master.
func (t *Thread) Master(f func()) {
	if t.id == 0 {
		f()
	}
}

// Sections distributes the given section bodies across the team
// dynamically, with an implicit barrier at the end.
func (t *Thread) Sections(sections ...func()) {
	seq := t.sectionSeq
	t.sectionSeq++
	key := seq | t.bid<<32
	tm := t.team
	tm.mu.Lock()
	ctr, ok := tm.sectionIdx[key]
	if !ok {
		ctr = new(atomic.Int64)
		tm.sectionIdx[key] = ctr
	}
	tm.mu.Unlock()
	for {
		idx := int(ctr.Add(1)) - 1
		if idx >= len(sections) {
			break
		}
		sections[idx]()
	}
	t.barrier(true)
}

// ReduceF64 combines each thread's local value with op across the team and
// returns the result on every thread, like a reduction clause. op must be
// associative and commutative. Two implicit barriers synchronize the
// exchange; reductions therefore cannot race by construction.
func (t *Thread) ReduceF64(local float64, op func(a, b float64) float64) float64 {
	tm := t.team
	tm.reduceBuf[t.id] = local
	t.barrier(true)
	acc := tm.reduceBuf[0]
	for i := 1; i < t.NumThreads(); i++ {
		acc = op(acc, tm.reduceBuf[i])
	}
	t.barrier(true)
	return acc
}

// ReduceI64 is ReduceF64 for int64 values.
func (t *Thread) ReduceI64(local int64, op func(a, b int64) int64) int64 {
	tm := t.team
	tm.reduceI64[t.id] = local
	t.barrier(true)
	acc := tm.reduceI64[0]
	for i := 1; i < t.NumThreads(); i++ {
		acc = op(acc, tm.reduceI64[i])
	}
	t.barrier(true)
	return acc
}

// OrderedState carries the cross-iteration sequencing of one ordered
// worksharing loop.
type orderedState struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
	lock *Lock
}

// ForOrdered runs a worksharing loop whose body may enter an ordered
// section: ordered(f) executes f in ascending iteration order, one
// iteration at a time, like #pragma omp ordered. The section is
// tool-visible as a mutex region (mutual exclusion) and the runtime
// additionally enforces the iteration order, so cross-iteration
// dependences inside ordered sections are race-free.
func (t *Thread) ForOrdered(lo, hi int, opts ForOpts, body func(i int, ordered func(f func()))) {
	seq := t.forSeq // peek: loopCounter advances it; ordered state shares the key
	st := t.orderedState(seq, lo)
	t.ForOpt(lo, hi, opts, func(i int) {
		body(i, func(f func()) {
			st.mu.Lock()
			for st.next != i {
				st.cond.Wait()
			}
			st.mu.Unlock()
			t.Acquire(st.lock)
			f()
			t.Release(st.lock)
			st.mu.Lock()
			st.next = i + 1
			st.mu.Unlock()
			st.cond.Broadcast()
		})
	})
}

// orderedState returns the shared sequencing state of the thread's next
// ordered loop construct.
func (t *Thread) orderedState(seq uint64, lo int) *orderedState {
	key := seq | t.bid<<32
	tm := t.team
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.ordered == nil {
		tm.ordered = make(map[uint64]*orderedState)
	}
	st, ok := tm.ordered[key]
	if !ok {
		st = &orderedState{next: lo, lock: t.rt.NewLock()}
		st.cond = sync.NewCond(&st.mu)
		tm.ordered[key] = st
	}
	return st
}
